"""Raw/npy field I/O."""

import numpy as np
import pytest

from repro.data.io import load_array, read_raw, save_array, write_raw


class TestRaw:
    def test_roundtrip(self, tmp_path):
        data = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        path = str(tmp_path / "f.f32")
        write_raw(path, data)
        out = read_raw(path, (2, 3, 4), np.float32)
        np.testing.assert_array_equal(out, data)

    def test_float64(self, tmp_path):
        data = np.random.default_rng(0).normal(size=(5, 5))
        path = str(tmp_path / "f.f64")
        write_raw(path, data)
        np.testing.assert_array_equal(read_raw(path, (5, 5), np.float64), data)

    def test_size_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "f.f32")
        write_raw(path, np.zeros(10, dtype=np.float32))
        with pytest.raises(ValueError, match="bytes"):
            read_raw(path, (11,), np.float32)


class TestDispatch:
    def test_npy_roundtrip(self, tmp_path):
        data = np.ones((4, 4), dtype=np.float32)
        path = str(tmp_path / "f.npy")
        save_array(path, data)
        np.testing.assert_array_equal(load_array(path), data)

    def test_raw_needs_shape(self, tmp_path):
        path = str(tmp_path / "f.dat")
        save_array(path, np.zeros(4, dtype=np.float32))
        with pytest.raises(ValueError, match="shape"):
            load_array(path)
        out = load_array(path, (4,))
        assert out.shape == (4,)
