"""Spectral field synthesis: determinism, spectra, normalization."""

import numpy as np
import pytest

from repro.data.generators import gaussian_random_field, spectral_noise


class TestSpectralNoise:
    @pytest.mark.parametrize("shape", [(4096,), (64, 64), (16, 16, 16)])
    def test_normalized(self, shape):
        rng = np.random.default_rng(0)
        f = spectral_noise(shape, 3.0, rng)
        assert f.shape == shape
        assert abs(f.mean()) < 1e-10
        assert f.std() == pytest.approx(1.0)

    def test_beta_zero_is_white(self):
        rng = np.random.default_rng(1)
        f = spectral_noise((8192,), 0.0, rng)
        # white noise: neighbouring samples nearly uncorrelated
        corr = np.corrcoef(f[:-1], f[1:])[0, 1]
        assert abs(corr) < 0.05

    def test_large_beta_is_smooth(self):
        rng = np.random.default_rng(2)
        f = spectral_noise((8192,), 4.0, rng)
        corr = np.corrcoef(f[:-1], f[1:])[0, 1]
        assert corr > 0.95

    def test_4d_rejected(self):
        with pytest.raises(ValueError):
            spectral_noise((4, 4, 4, 4), 2.0, np.random.default_rng(0))


class TestGaussianRandomField:
    def test_deterministic_in_seed(self):
        a = gaussian_random_field((32, 32), beta=3.0, seed=7)
        b = gaussian_random_field((32, 32), beta=3.0, seed=7)
        np.testing.assert_array_equal(a, b)
        c = gaussian_random_field((32, 32), beta=3.0, seed=8)
        assert not np.array_equal(a, c)

    def test_mix_white_roughens(self):
        smooth = gaussian_random_field((8192,), beta=3.0, seed=0, mix_white=0.0)
        rough = gaussian_random_field((8192,), beta=3.0, seed=0, mix_white=0.8)
        c_smooth = np.corrcoef(smooth[:-1], smooth[1:])[0, 1]
        c_rough = np.corrcoef(rough[:-1], rough[1:])[0, 1]
        assert c_rough < c_smooth

    def test_invalid_mix(self):
        with pytest.raises(ValueError):
            gaussian_random_field((64,), mix_white=1.5)
