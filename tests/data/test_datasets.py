"""Field registry: Table I coverage and statistical fingerprints."""

import numpy as np
import pytest

from repro.data import APPLICATIONS, application_names, field_names, load_field


class TestRegistry:
    def test_table1_applications_present(self):
        assert set(application_names()) == {"HACC", "CESM-ATM", "NYX", "Hurricane"}

    def test_dimensionalities_match_table1(self):
        dims = {"HACC": 1, "CESM-ATM": 2, "NYX": 3, "Hurricane": 3}
        for app, d in dims.items():
            for name in field_names(app):
                assert len(APPLICATIONS[app][name].shape) == d

    def test_unknown_app_and_field(self):
        with pytest.raises(KeyError, match="known"):
            load_field("BOGUS", "x")
        with pytest.raises(KeyError, match="known"):
            load_field("NYX", "bogus_field")

    def test_all_fields_generate_float32_finite(self):
        for app in application_names():
            for name in field_names(app):
                f = load_field(app, name, scale=0.25)
                assert f.dtype == np.float32
                assert np.isfinite(f).all(), f"{app}/{name} not finite"

    def test_determinism_and_seed_override(self):
        a = load_field("NYX", "temperature", scale=0.25)
        b = load_field("NYX", "temperature", scale=0.25)
        np.testing.assert_array_equal(a, b)
        c = load_field("NYX", "temperature", scale=0.25, seed=123)
        assert not np.array_equal(a, c)

    def test_scale_multiplies_axes(self):
        small = load_field("CESM-ATM", "TS", scale=0.25)
        base = APPLICATIONS["CESM-ATM"]["TS"].shape
        assert small.shape == tuple(int(s * 0.25) for s in base)


class TestFingerprints:
    """The statistics the paper's effects depend on (DESIGN.md section 2)."""

    def test_nyx_dark_matter_density(self):
        d = load_field("NYX", "dark_matter_density")
        frac = (d <= 1.0).mean()
        assert 0.80 <= frac <= 0.88  # paper: ~84% of the data in [0, 1]
        assert d.min() > 0
        assert d.max() > 100  # heavy tail

    def test_nyx_velocity_signed_and_large(self):
        v = load_field("NYX", "velocity_x")
        assert (v < 0).any() and (v > 0).any()
        assert np.abs(v).max() > 1e4

    def test_cesm_cloud_fraction_in_unit_interval_with_zeros(self):
        c = load_field("CESM-ATM", "CLDHGH")
        assert c.min() == 0.0 and c.max() == 1.0
        assert (c == 0).mean() > 0.02  # clipped zero regions exist

    def test_hurricane_cloud_mostly_zero(self):
        c = load_field("Hurricane", "CLOUDf48")
        assert (c == 0).mean() > 0.5
        assert c.min() == 0.0

    def test_hacc_velocity_rough(self):
        v = load_field("HACC", "velocity_x").astype(np.float64)
        corr = np.corrcoef(v[:-1], v[1:])[0, 1]
        assert corr < 0.9  # particle data: weak neighbour correlation

    def test_hurricane_temperature_crosses_zero(self):
        t = load_field("Hurricane", "TCf48")
        assert (t < 0).any() and (t > 0).any()
