"""Blocking utilities and timers."""

import numpy as np
import pytest

from repro.utils import Timer, block_merge, block_partition, chunk_spans, pad_to_blocks


class TestChunkSpans:
    def test_covers_range_without_overlap(self):
        spans = chunk_spans(1000, 4, 128)
        assert spans[0][0] == 0 and spans[-1][1] == 1000
        for (a, b), (c, d) in zip(spans, spans[1:]):
            assert b == c and a < b

    def test_respects_byte_budget(self):
        for n, item, budget in [(1000, 4, 128), (7, 8, 64), (100, 3, 10)]:
            for a, b in chunk_spans(n, item, budget):
                assert (b - a) * item <= budget

    def test_balanced_sizes(self):
        sizes = [b - a for a, b in chunk_spans(100, 1, 30)]
        assert max(sizes) - min(sizes) <= 1

    def test_oversized_item_gets_own_span(self):
        assert chunk_spans(3, 100, 10) == [(0, 1), (1, 2), (2, 3)]

    def test_single_span_when_all_fits(self):
        assert chunk_spans(10, 4, 1000) == [(0, 10)]

    def test_empty(self):
        assert chunk_spans(0, 4, 128) == []

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            chunk_spans(-1, 4, 128)
        with pytest.raises(ValueError):
            chunk_spans(10, 0, 128)
        with pytest.raises(ValueError):
            chunk_spans(10, 4, 0)


class TestPadding:
    def test_exact_multiple_untouched(self):
        a = np.arange(16).reshape(4, 4)
        assert pad_to_blocks(a, 4) is a

    def test_edge_padding(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        p = pad_to_blocks(a, 3)
        assert p.shape == (3, 3)
        assert p[2, 2] == 4.0  # edge-replicated

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            pad_to_blocks(np.ones(4), 0)


class TestPartitionMerge:
    @pytest.mark.parametrize("shape,block", [((17,), 4), ((9, 10), 4), ((5, 6, 7), 4), ((8, 8), 8)])
    def test_roundtrip(self, shape, block):
        rng = np.random.default_rng(0)
        a = rng.normal(size=shape)
        tiles, padded = block_partition(a, block)
        assert tiles.shape[1:] == (block,) * len(shape)
        back = block_merge(tiles, padded, block, shape)
        np.testing.assert_array_equal(back, a)

    def test_block_ordering_is_c_style(self):
        a = np.arange(16, dtype=np.float64).reshape(4, 4)
        tiles, _ = block_partition(a, 2)
        np.testing.assert_array_equal(tiles[0], [[0, 1], [4, 5]])
        np.testing.assert_array_equal(tiles[1], [[2, 3], [6, 7]])

    def test_tiles_are_contiguous(self):
        a = np.ones((8, 8))
        tiles, _ = block_partition(a, 4)
        assert tiles.flags["C_CONTIGUOUS"]


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            pass
        with t:
            pass
        assert t.entries == 2
        assert t.seconds >= 0

    def test_rate(self):
        t = Timer()
        t.seconds = 2.0
        assert t.rate_mbs(4_000_000) == pytest.approx(2.0)

    def test_rate_of_zero_time_is_finite(self):
        # 0.0, not inf: JSON exports must never contain non-finite values.
        assert Timer().rate_mbs(100) == 0.0

    def test_is_a_span_underneath(self):
        t = Timer("stage")
        with t:
            pass
        assert t.span.name == "stage"
        assert t.span.wall_s == t.seconds
        assert t.cpu_seconds >= 0.0
