"""OpenMetrics / JSON-lines renderers, round-tripped without external deps."""

import json
import math

import pytest

from repro.observe.export import (
    metric_name,
    metrics_to_jsonl,
    parse_openmetrics,
    spans_to_jsonl,
    to_openmetrics,
)
from repro.observe.metrics import MetricsRegistry


@pytest.fixture()
def reg() -> MetricsRegistry:
    r = MetricsRegistry()
    r.counter("bytes.in").inc(4096)
    r.gauge("workers").set(3)
    h = r.histogram("chunk.compress_s")
    for v in (0.5, 1.5, 2.5, 3.5):
        h.observe(v)
    return r


class TestMetricName:
    def test_dots_and_dashes_sanitized(self):
        assert metric_name("audit.max_rel") == "repro_audit_max_rel"
        assert metric_name("a-b c") == "repro_a_b_c"

    def test_prefix_optional(self):
        assert metric_name("x", prefix="") == "x"


class TestOpenMetricsRoundTrip:
    def test_full_registry_round_trips(self, reg):
        text = to_openmetrics(reg.snapshot())
        assert text.endswith("# EOF\n")
        families = parse_openmetrics(text)
        assert families["repro_bytes_in"]["type"] == "counter"
        assert families["repro_workers"]["type"] == "gauge"
        assert families["repro_chunk_compress_s"]["type"] == "histogram"

    def test_counter_gets_total_suffix(self, reg):
        families = parse_openmetrics(to_openmetrics(reg.snapshot()))
        ((name, labels, value),) = families["repro_bytes_in"]["samples"]
        assert name == "repro_bytes_in_total"
        assert value == 4096.0

    def test_histogram_buckets_cumulative_and_complete(self, reg):
        families = parse_openmetrics(to_openmetrics(reg.snapshot()))
        fam = families["repro_chunk_compress_s"]
        buckets = [(labels["le"], v) for n, labels, v in fam["samples"]
                   if n.endswith("_bucket")]
        counts = [v for _, v in buckets]
        assert counts == sorted(counts)  # cumulative
        assert buckets[-1] == ("+Inf", 4.0)
        count = [v for n, _, v in fam["samples"] if n.endswith("_count")]
        total = [v for n, _, v in fam["samples"] if n.endswith("_sum")]
        assert count == [4.0]
        assert total == [pytest.approx(8.0)]
        assert families["repro_chunk_compress_s_min"]["samples"][0][2] == 0.5
        assert families["repro_chunk_compress_s_max"]["samples"][0][2] == 3.5

    def test_histogram_quantile_gauges(self, reg):
        families = parse_openmetrics(to_openmetrics(reg.snapshot()))
        snap = reg.snapshot()["chunk.compress_s"]
        values = []
        for q in (50, 90, 99):
            fam = families[f"repro_chunk_compress_s_p{q}"]
            assert fam["type"] == "gauge"
            ((_, _, value),) = fam["samples"]
            values.append(value)
        assert values == sorted(values)  # non-decreasing by construction
        assert all(snap["min"] <= v <= snap["max"] for v in values)

    def test_quantiles_match_histogram_percentile(self, reg):
        families = parse_openmetrics(to_openmetrics(reg.snapshot()))
        h = reg.histogram("chunk.compress_s")
        for q in (50, 90, 99):
            ((_, _, value),) = families[f"repro_chunk_compress_s_p{q}"]["samples"]
            assert value == pytest.approx(h.percentile(q))

    def test_empty_histogram_emits_no_quantiles(self):
        r = MetricsRegistry()
        r.histogram("quiet")
        families = parse_openmetrics(to_openmetrics(r.snapshot()))
        assert "repro_quiet_p50" not in families

    def test_diff_snapshot_renders_too(self, reg):
        before = reg.snapshot()
        reg.counter("bytes.in").inc(10)
        families = parse_openmetrics(to_openmetrics(reg.diff(before)))
        assert families["repro_bytes_in"]["samples"][0][2] == 10.0

    def test_empty_snapshot_is_a_valid_exposition(self):
        assert parse_openmetrics(to_openmetrics({})) == {}

    def test_nonfinite_values_render(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(math.inf)
        families = parse_openmetrics(to_openmetrics(reg.snapshot()))
        assert families["repro_g"]["samples"][0][2] == math.inf


class TestParseRejectsMalformed:
    def test_missing_eof(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("# TYPE x counter\nx_total 1\n")

    def test_sample_without_type_declaration(self):
        with pytest.raises(ValueError, match="no TYPE"):
            parse_openmetrics("orphan 1\n# EOF\n")

    def test_non_numeric_value(self):
        with pytest.raises(ValueError, match="non-numeric"):
            parse_openmetrics("# TYPE x gauge\nx banana\n# EOF\n")

    def test_duplicate_type_declaration(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_openmetrics("# TYPE x gauge\n# TYPE x counter\n# EOF\n")

    def test_non_cumulative_histogram_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1.0"} 5\n'
            'h_bucket{le="2.0"} 3\n'
            "h_count 5\nh_sum 2.0\n# EOF\n"
        )
        with pytest.raises(ValueError, match="cumulative"):
            parse_openmetrics(text)

    def _hist(self, extra: str) -> str:
        return (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_count 3\nh_sum 6.0\n" + extra + "# EOF\n"
        )

    def test_quantile_subset_rejected(self):
        extra = "# TYPE h_p50 gauge\nh_p50 2.0\n# TYPE h_p99 gauge\nh_p99 3.0\n"
        with pytest.raises(ValueError, match="subset"):
            parse_openmetrics(self._hist(extra))

    def test_non_monotone_quantiles_rejected(self):
        extra = (
            "# TYPE h_p50 gauge\nh_p50 3.0\n"
            "# TYPE h_p90 gauge\nh_p90 2.0\n"
            "# TYPE h_p99 gauge\nh_p99 4.0\n"
        )
        with pytest.raises(ValueError, match="non-decreasing"):
            parse_openmetrics(self._hist(extra))

    def test_quantiles_outside_min_max_rejected(self):
        extra = (
            "# TYPE h_min gauge\nh_min 1.0\n"
            "# TYPE h_max gauge\nh_max 2.0\n"
            "# TYPE h_p50 gauge\nh_p50 1.5\n"
            "# TYPE h_p90 gauge\nh_p90 1.9\n"
            "# TYPE h_p99 gauge\nh_p99 9.0\n"
        )
        with pytest.raises(ValueError, match="min, max"):
            parse_openmetrics(self._hist(extra))

    def test_zero_sample_histogram_quantiles_accepted(self):
        """Placeholder p50/p90/p99 gauges on an empty histogram must lint.

        An aggregator exporting every known metric renders zero-sample
        histograms with 0.0 quantile gauges; those carry no observed
        range, so the monotonicity/containment lint has nothing to say.
        """
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 0\n'
            "h_count 0\nh_sum 0.0\n"
            "# TYPE h_min gauge\nh_min inf\n"
            "# TYPE h_max gauge\nh_max -inf\n"
            "# TYPE h_p50 gauge\nh_p50 0.0\n"
            "# TYPE h_p90 gauge\nh_p90 0.0\n"
            "# TYPE h_p99 gauge\nh_p99 0.0\n"
            "# EOF\n"
        )
        families = parse_openmetrics(text)
        assert families["h"]["type"] == "histogram"


class TestJsonLines:
    def test_metrics_one_object_per_line(self, reg):
        lines = metrics_to_jsonl(reg.snapshot()).splitlines()
        recs = [json.loads(ln) for ln in lines]
        assert [r["metric"] for r in recs] == sorted(r["metric"] for r in recs)
        by_name = {r["metric"]: r for r in recs}
        assert by_name["bytes.in"]["value"] == 4096
        assert by_name["chunk.compress_s"]["n"] == 4

    def test_empty_metrics_render_empty(self):
        assert metrics_to_jsonl({}) == ""

    def test_spans_flatten_with_parent_links(self):
        tree = {
            "name": "compress",
            "span_id": "a1",
            "wall_s": 2.0,
            "children": [
                {"name": "quantize", "span_id": "b2", "wall_s": 1.0, "children": []},
                {"name": "encode", "span_id": "c3", "wall_s": 0.5,
                 "children": [{"name": "huffman", "span_id": "d4", "children": []}]},
            ],
        }
        recs = [json.loads(ln) for ln in spans_to_jsonl([tree]).splitlines()]
        assert [r["span"] for r in recs] == ["compress", "quantize", "encode", "huffman"]
        assert [r["parent_id"] for r in recs] == [None, "a1", "a1", "c3"]
        assert [r["depth"] for r in recs] == [0, 1, 1, 2]

    def test_spans_accept_span_objects(self):
        from repro.observe.tracer import Tracer

        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        recs = [json.loads(ln) for ln in spans_to_jsonl(tracer.roots()).splitlines()]
        assert [r["span"] for r in recs] == ["root", "child"]
        assert recs[1]["parent_id"] == recs[0]["span_id"] != ""
