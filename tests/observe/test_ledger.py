"""Performance ledger: append/read round trips, corruption, trend report."""

import json
import os

import pytest

from repro.observe.ledger import (
    DEFAULT_LEDGER_RELPATH,
    LEDGER_ENV,
    LedgerError,
    append_entry,
    bench_series,
    machine_fingerprint,
    make_entry,
    read_ledger,
    render_trend_report,
    resolve_ledger_path,
    sparkline,
)


def _records(mb_s, ratio=4.0):
    return [
        {"test": "t1", "MB_per_s": mb_s, "ratio": ratio, "codec_path": "vectorized",
         "spans": {"name": "big-tree"}},
        {"test": "t2", "MB_per_s": mb_s * 2, "ratio": ratio + 1},
    ]


def _entry(run, mb_s, ts):
    return make_entry(
        "table3",
        _records(mb_s),
        f"run{run}",
        git={"rev": "a" * 40, "dirty": False},
        machine={"hostname": "ci", "platform": "linux", "python": "3.x"},
        normalization={"anchor_tests": ["test_preprocessing[x]"], "anchor_MB_s": 700.0},
        ts=ts,
    )


class TestRoundTrip:
    def test_append_read_round_trip(self, tmp_path):
        path = str(tmp_path / "sub" / "ledger.jsonl")
        for i in range(3):
            append_entry(path, _entry(i, 100.0 + i, ts=1000.0 + i))
        entries = read_ledger(path)
        assert [e["run_id"] for e in entries] == ["run0", "run1", "run2"]
        assert entries[0]["bench"] == "table3"
        assert entries[0]["codec_path"] == "vectorized"
        assert entries[0]["normalization"]["anchor_MB_s"] == 700.0

    def test_span_trees_trimmed(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        append_entry(path, _entry(0, 100.0, ts=1.0))
        (entry,) = read_ledger(path)
        assert all("spans" not in rec for rec in entry["records"])
        assert entry["records"][0]["MB_per_s"] == 100.0

    def test_missing_file_is_empty(self, tmp_path):
        assert read_ledger(str(tmp_path / "nope.jsonl")) == []

    def test_one_line_per_entry(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        append_entry(path, _entry(0, 100.0, ts=1.0))
        append_entry(path, _entry(1, 101.0, ts=2.0))
        with open(path) as fh:
            lines = [ln for ln in fh.read().splitlines() if ln.strip()]
        assert len(lines) == 2
        assert all(isinstance(json.loads(ln), dict) for ln in lines)


class TestCorruption:
    def test_corrupt_trailing_line_tolerated(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        for i in range(3):
            append_entry(path, _entry(i, 100.0 + i, ts=1000.0 + i))
        with open(path, "a") as fh:
            fh.write('{"version": 1, "bench": "tab')  # interrupted append
        entries = read_ledger(path)
        assert [e["run_id"] for e in entries] == ["run0", "run1", "run2"]

    def test_corrupt_interior_line_raises_when_strict(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        append_entry(path, _entry(0, 100.0, ts=1.0))
        with open(path, "a") as fh:
            fh.write("not json at all\n")
        append_entry(path, _entry(1, 101.0, ts=2.0))
        with pytest.raises(LedgerError):
            read_ledger(path)
        entries = read_ledger(path, strict=False)
        assert [e["run_id"] for e in entries] == ["run0", "run1"]

    def test_non_object_interior_line_raises(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        append_entry(path, _entry(0, 100.0, ts=1.0))
        with open(path, "a") as fh:
            fh.write("[1, 2, 3]\n")
        append_entry(path, _entry(1, 101.0, ts=2.0))
        with pytest.raises(LedgerError):
            read_ledger(path)


class TestResolvePath:
    def test_default_under_base_dir(self, monkeypatch):
        monkeypatch.delenv(LEDGER_ENV, raising=False)
        assert resolve_ledger_path("/x") == os.path.join("/x", DEFAULT_LEDGER_RELPATH)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(LEDGER_ENV, "/custom/led.jsonl")
        assert resolve_ledger_path("/x") == "/custom/led.jsonl"

    @pytest.mark.parametrize("value", ["off", "OFF", "none", "0", ""])
    def test_env_disables(self, monkeypatch, value):
        monkeypatch.setenv(LEDGER_ENV, value)
        assert resolve_ledger_path("/x") is None


class TestTrends:
    def test_bench_series_orders_and_windows(self):
        entries = [_entry(i, 100.0 + i, ts=1000.0 + i) for i in (2, 0, 1)]
        series = bench_series(entries)
        points = series["table3"]["t1"]
        assert [p["MB_per_s"] for p in points] == [100.0, 101.0, 102.0]
        windowed = bench_series(entries, last_n=2)
        assert [p["MB_per_s"] for p in windowed["table3"]["t1"]] == [101.0, 102.0]

    def test_sparkline(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▄▄"
        line = sparkline([0.0, 5.0, 10.0])
        assert len(line) == 3
        assert line[0] == "▁" and line[-1] == "█"

    def test_trend_report_from_two_runs(self):
        entries = [_entry(0, 100.0, ts=1000.0), _entry(1, 110.0, ts=2000.0)]
        report = render_trend_report(entries)
        assert report.startswith("# Performance trend report")
        assert "## bench_table3" in report
        assert "`t1`" in report and "`t2`" in report
        assert "+10.0%" in report  # 110 vs median(100)
        assert "improvement" in report  # > +2% shows in top movers
        assert "`aaaaaaaaaa`" in report  # latest rev, truncated

    def test_trend_report_empty_ledger(self):
        report = render_trend_report([])
        assert "Ledger is empty" in report

    def test_trend_report_small_moves_are_quiet(self):
        entries = [_entry(0, 100.0, ts=1000.0), _entry(1, 101.0, ts=2000.0)]
        report = render_trend_report(entries)
        assert "No test moved more than" in report


class TestStamp:
    def test_make_entry_mixed_codec_paths_is_none(self):
        recs = [
            {"test": "a", "MB_per_s": 1.0, "codec_path": "vectorized"},
            {"test": "b", "MB_per_s": 1.0, "codec_path": "reference"},
        ]
        entry = make_entry("x", recs, "r", git={}, machine={}, ts=1.0)
        assert entry["codec_path"] is None

    def test_machine_fingerprint_fields(self):
        fp = machine_fingerprint()
        assert fp["hostname"] and fp["platform"] and fp["python"]
        assert "numpy" in fp and "cpu_count" in fp
