"""Counters, gauges, histograms; snapshot / diff / merge semantics."""

import threading

import pytest

from repro.observe.metrics import MetricsRegistry, metrics


@pytest.fixture()
def reg() -> MetricsRegistry:
    return MetricsRegistry()


class TestMetricTypes:
    def test_counter_accumulates(self, reg):
        c = reg.counter("bytes")
        c.inc(10)
        c.inc(2.5)
        assert c.value == 12.5
        assert reg.counter("bytes") is c  # get-or-create

    def test_gauge_keeps_last(self, reg):
        g = reg.gauge("workers")
        g.set(4)
        g.set(2)
        assert g.value == 2.0

    def test_histogram_summary(self, reg):
        h = reg.histogram("exec_s")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.n == 3 and h.total == 6.0
        assert h.mean == 2.0
        assert (h.min, h.max) == (1.0, 3.0)

    def test_type_conflict_raises(self, reg):
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_thread_safe_counting(self, reg):
        c = reg.counter("n")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestSnapshotDiffMerge:
    def test_snapshot_is_plain_dicts(self, reg):
        reg.counter("c").inc(3)
        reg.histogram("h").observe(1.5)
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 3.0}
        assert snap["h"]["n"] == 1 and snap["h"]["min"] == 1.5

    def test_diff_reports_only_movement(self, reg):
        reg.counter("moved").inc(1)
        reg.counter("still").inc(5)
        before = reg.snapshot()
        reg.counter("moved").inc(2)
        reg.histogram("h").observe(0.5)
        delta = reg.diff(before)
        assert delta["moved"]["value"] == 2.0
        assert "still" not in delta
        assert delta["h"]["n"] == 1 and delta["h"]["total"] == 0.5

    def test_merge_folds_worker_delta(self, reg):
        reg.counter("c").inc(1)
        reg.histogram("h").observe(2.0)
        reg.merge(
            {
                "c": {"type": "counter", "value": 4.0},
                "h": {"type": "histogram", "n": 2, "total": 10.0, "min": 1.0, "max": 9.0},
                "g": {"type": "gauge", "value": 7.0},
            }
        )
        assert reg.counter("c").value == 5.0
        h = reg.histogram("h")
        assert h.n == 3 and h.total == 12.0
        assert (h.min, h.max) == (1.0, 9.0)
        assert reg.gauge("g").value == 7.0

    def test_merge_none_is_noop(self, reg):
        reg.merge(None)
        assert reg.names() == []

    def test_diff_then_merge_roundtrips(self, reg):
        other = MetricsRegistry()
        before = reg.snapshot()
        reg.counter("c").inc(3)
        reg.histogram("h").observe(1.0)
        other.merge(reg.diff(before))
        assert other.snapshot()["c"]["value"] == 3.0
        assert other.snapshot()["h"]["n"] == 1

    def test_reset(self, reg):
        reg.counter("c").inc()
        reg.reset()
        assert reg.names() == []


def test_global_registry_is_shared():
    assert metrics() is metrics()
