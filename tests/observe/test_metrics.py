"""Counters, gauges, histograms; snapshot / diff / merge semantics."""

import threading

import pytest

from repro.observe.metrics import MetricsRegistry, metrics


@pytest.fixture()
def reg() -> MetricsRegistry:
    return MetricsRegistry()


class TestMetricTypes:
    def test_counter_accumulates(self, reg):
        c = reg.counter("bytes")
        c.inc(10)
        c.inc(2.5)
        assert c.value == 12.5
        assert reg.counter("bytes") is c  # get-or-create

    def test_gauge_keeps_last(self, reg):
        g = reg.gauge("workers")
        g.set(4)
        g.set(2)
        assert g.value == 2.0

    def test_histogram_summary(self, reg):
        h = reg.histogram("exec_s")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.n == 3 and h.total == 6.0
        assert h.mean == 2.0
        assert (h.min, h.max) == (1.0, 3.0)

    def test_type_conflict_raises(self, reg):
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_thread_safe_counting(self, reg):
        c = reg.counter("n")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestSnapshotDiffMerge:
    def test_snapshot_is_plain_dicts(self, reg):
        reg.counter("c").inc(3)
        reg.histogram("h").observe(1.5)
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 3.0}
        assert snap["h"]["n"] == 1 and snap["h"]["min"] == 1.5

    def test_diff_reports_only_movement(self, reg):
        reg.counter("moved").inc(1)
        reg.counter("still").inc(5)
        before = reg.snapshot()
        reg.counter("moved").inc(2)
        reg.histogram("h").observe(0.5)
        delta = reg.diff(before)
        assert delta["moved"]["value"] == 2.0
        assert "still" not in delta
        assert delta["h"]["n"] == 1 and delta["h"]["total"] == 0.5

    def test_merge_folds_worker_delta(self, reg):
        reg.counter("c").inc(1)
        reg.histogram("h").observe(2.0)
        reg.merge(
            {
                "c": {"type": "counter", "value": 4.0},
                "h": {"type": "histogram", "n": 2, "total": 10.0, "min": 1.0, "max": 9.0},
                "g": {"type": "gauge", "value": 7.0},
            }
        )
        assert reg.counter("c").value == 5.0
        h = reg.histogram("h")
        assert h.n == 3 and h.total == 12.0
        assert (h.min, h.max) == (1.0, 9.0)
        assert reg.gauge("g").value == 7.0

    def test_merge_none_is_noop(self, reg):
        reg.merge(None)
        assert reg.names() == []

    def test_diff_then_merge_roundtrips(self, reg):
        other = MetricsRegistry()
        before = reg.snapshot()
        reg.counter("c").inc(3)
        reg.histogram("h").observe(1.0)
        other.merge(reg.diff(before))
        assert other.snapshot()["c"]["value"] == 3.0
        assert other.snapshot()["h"]["n"] == 1

    def test_reset(self, reg):
        reg.counter("c").inc()
        reg.reset()
        assert reg.names() == []


class TestHistogramPercentiles:
    def test_empty_histogram_is_well_defined(self, reg):
        h = reg.histogram("h")
        assert h.percentile(50.0) == 0.0
        assert h.percentile(0.0) == 0.0
        snap = h.snapshot()
        assert snap["n"] == 0
        assert "buckets" not in snap and "min" not in snap

    def test_out_of_range_percentile_rejected(self, reg):
        h = reg.histogram("h")
        with pytest.raises(ValueError):
            h.percentile(-0.1)
        with pytest.raises(ValueError):
            h.percentile(100.1)

    def test_percentile_clamped_to_observed_range(self, reg):
        h = reg.histogram("h")
        h.observe(3.0)  # bucket edge is 4.0, but max observed is 3.0
        assert h.percentile(0.0) == 3.0
        assert h.percentile(100.0) == 3.0

    def test_percentile_monotone_within_bucket_resolution(self, reg):
        h = reg.histogram("h")
        for v in (0.5, 1.5, 3.0, 6.0, 12.0, 24.0, 48.0, 96.0):
            h.observe(v)
        qs = [h.percentile(q) for q in (10, 25, 50, 75, 90, 100)]
        assert qs == sorted(qs)
        assert h.percentile(100.0) == 96.0
        assert h.percentile(10.0) >= 0.5

    def test_nonpositive_observations_share_underflow_bucket(self, reg):
        h = reg.histogram("h")
        h.observe(-5.0)
        h.observe(0.0)
        h.observe(2.0)
        assert h.percentile(1.0) == -5.0  # underflow bucket resolves to min
        assert h.percentile(100.0) == 2.0
        keys = [k for k, _ in h.snapshot()["buckets"]]
        assert keys == sorted(keys)
        assert len(keys) == 2  # -5 and 0 share one bucket

    def test_snapshot_buckets_sorted_and_complete(self, reg):
        h = reg.histogram("h")
        for v in (8.0, 0.25, 1.0):
            h.observe(v)
        buckets = h.snapshot()["buckets"]
        assert [k for k, _ in buckets] == sorted(k for k, _ in buckets)
        assert sum(c for _, c in buckets) == 3


class TestDiffMergeEdgeCases:
    def test_diff_key_only_in_newer_snapshot(self, reg):
        before = reg.snapshot()
        reg.counter("new.c").inc(3)
        reg.histogram("new.h").observe(2.0)
        reg.gauge("new.g").set(1.0)
        delta = reg.diff(before)
        assert delta["new.c"]["value"] == 3.0
        assert delta["new.h"]["n"] == 1 and delta["new.h"]["buckets"] == [[2, 1]]
        assert delta["new.g"]["value"] == 1.0

    def test_diff_against_pre_observation_histogram_snapshot(self, reg):
        reg.histogram("h")  # exists but empty: snapshot has no buckets/min
        before = reg.snapshot()
        reg.histogram("h").observe(4.0)
        delta = reg.diff(before)
        assert delta["h"]["n"] == 1
        assert delta["h"]["buckets"] == [[3, 1]]

    def test_diff_buckets_are_the_new_observations_only(self, reg):
        h = reg.histogram("h")
        h.observe(1.5)
        before = reg.snapshot()
        h.observe(1.5)
        h.observe(100.0)
        delta = reg.diff(before)
        assert delta["h"]["n"] == 2
        assert dict(map(tuple, delta["h"]["buckets"])) == {1: 1, 7: 1}

    def test_merged_buckets_support_percentiles(self, reg):
        other = MetricsRegistry()
        before = reg.snapshot()
        for v in (1.0, 2.0, 64.0):
            reg.histogram("h").observe(v)
        other.merge(reg.diff(before))
        h = other.histogram("h")
        assert h.n == 3
        assert h.percentile(100.0) == 64.0
        assert h.percentile(1.0) >= 1.0


def test_global_registry_is_shared():
    assert metrics() is metrics()
