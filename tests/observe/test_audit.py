"""Bound-conformance auditing: BoundAuditor, audit_stream, Theorem 3."""

import numpy as np
import pytest

from repro import RelativeBound, get_compressor
from repro.observe.audit import (
    AuditReport,
    BoundAuditor,
    audit_stream,
    auditing,
    get_auditor,
    theorem3_check,
)
from repro.observe.metrics import MetricsRegistry, metrics


class TestBoundAuditor:
    def test_observe_chunk_counts_violations(self):
        x = np.array([1.0, 2.0, -4.0, 0.0])
        xd = np.array([1.0005, 2.0, -4.0, 0.0])  # one point 5e-4 off
        aud = BoundAuditor(registry=MetricsRegistry())
        c = aud.observe_chunk(x, xd, rel_bound=1e-4, index=3, codec="SZ_T")
        assert c.violations == 1
        assert not c.ok
        assert c.n == 4
        assert c.index == 3
        assert c.max_rel == pytest.approx(5e-4)
        assert c.bounded_fraction == pytest.approx(0.75)
        assert c.zeros == 1 and c.negatives == 1

    def test_modified_zero_is_a_violation(self):
        x = np.array([0.0, 1.0])
        xd = np.array([1e-30, 1.0])
        aud = BoundAuditor(registry=MetricsRegistry())
        assert aud.observe_chunk(x, xd, rel_bound=1e-2).violations == 1

    def test_record_moves_audit_metrics(self):
        reg = MetricsRegistry()
        aud = BoundAuditor(registry=reg)
        x = np.linspace(1.0, 2.0, 100)
        aud.observe_chunk(x, x, rel_bound=1e-3)
        assert reg.counter("audit.points").value == 100
        assert reg.counter("audit.violations").value == 0
        assert reg.histogram("audit.max_rel").n == 1

    def test_compress_feeds_installed_auditor(self, smooth_positive_3d):
        with auditing() as aud:
            get_compressor("SZ_T").compress(smooth_positive_3d, RelativeBound(1e-3))
        chunks = aud.chunks()
        assert len(chunks) == 1
        (c,) = chunks
        assert c.n == smooth_positive_3d.size
        assert c.bound_value == 1e-3
        assert c.violations == 0
        assert c.lemma2_ok is True
        assert c.ok
        rep = aud.report(codec="SZ_T")
        assert rep.ok and rep.n_points == smooth_positive_3d.size

    def test_chunked_compress_feeds_one_audit_per_chunk(self, smooth_positive_3d):
        from repro.core.chunked import ChunkedCompressor

        comp = ChunkedCompressor("SZ_T", chunk_bytes=8192, executor="serial")
        with auditing() as aud:
            comp.compress(smooth_positive_3d, RelativeBound(1e-2))
        assert len(aud.chunks()) == comp.last_chunk_count > 1
        rep = aud.report()
        assert rep.n_points == smooth_positive_3d.size
        assert rep.ok

    def test_context_manager_restores_previous_auditor(self):
        prev = get_auditor()
        with auditing() as aud:
            assert get_auditor() is aud
            with auditing() as inner:
                assert get_auditor() is inner
            assert get_auditor() is aud
        assert get_auditor() is prev


class TestAuditStream:
    def test_sz_t_conforms(self, smooth_positive_3d):
        blob = get_compressor("SZ_T").compress(smooth_positive_3d, RelativeBound(1e-3))
        rep = audit_stream(blob, smooth_positive_3d)
        assert rep.ok
        assert rep.codec == "SZ_T"
        assert rep.bound_kind == "rel" and rep.bound_value == 1e-3
        assert rep.violations == 0
        assert rep.max_rel is not None and rep.max_rel <= 1e-3
        assert rep.bounded_fraction == 1.0
        # Strictly positive 3-D original: Theorem 3 must have run and passed.
        assert rep.theorem3 is not None and rep.theorem3.ok
        assert "PASS" in rep.format()

    def test_zfp_t_conforms(self, smooth_positive_3d):
        blob = get_compressor("ZFP_T").compress(smooth_positive_3d, RelativeBound(1e-3))
        rep = audit_stream(blob, smooth_positive_3d, check_theorem3=False)
        assert rep.ok
        assert rep.max_rel <= 1e-3
        assert rep.violations == 0

    def test_lemma2_fields(self, smooth_positive_3d):
        blob = get_compressor("SZ_T").compress(smooth_positive_3d, RelativeBound(1e-2))
        (c,) = audit_stream(blob, check_theorem3=False).chunks
        assert c.lemma2_ok is True
        # Shrink ordering: recorded b_a' within Lemma 2, strictly below Theorem 2.
        assert c.effective_ba <= c.lemma2_ba < c.theorem2_ba
        assert c.patched == 0  # Lemma-2 shrink leaves the patch channel empty

    def test_chunked_stream_audited_per_chunk(self, smooth_positive_3d):
        from repro.core.chunked import ChunkedCompressor

        comp = ChunkedCompressor("SZ_T", chunk_bytes=8192, executor="serial")
        blob = comp.compress(smooth_positive_3d, RelativeBound(1e-2))
        rep = audit_stream(blob, smooth_positive_3d, check_theorem3=False)
        assert rep.codec == "CHUNKED"
        assert rep.n_chunks == comp.last_chunk_count > 1
        assert [c.index for c in rep.chunks] == list(range(rep.n_chunks))
        assert rep.n_points == smooth_positive_3d.size
        assert rep.ok and rep.violations == 0
        assert rep.violating_chunks == ()

    def test_wrong_original_flags_violations(self, smooth_positive_3d):
        blob = get_compressor("SZ_T").compress(smooth_positive_3d, RelativeBound(1e-2))
        rep = audit_stream(blob, smooth_positive_3d * 1.5, check_theorem3=False)
        assert not rep.ok
        assert rep.violations > 0
        text = rep.format()
        assert "VIOLATION" in text and "FAIL" in text

    def test_without_original_checks_internals_only(self, smooth_positive_3d):
        blob = get_compressor("SZ_T").compress(smooth_positive_3d, RelativeBound(1e-2))
        rep = audit_stream(blob)
        assert rep.ok
        assert rep.max_rel is None and rep.violations == 0
        assert any("no original" in n for n in rep.notes)

    def test_size_mismatch_raises(self, smooth_positive_3d):
        blob = get_compressor("SZ_T").compress(smooth_positive_3d, RelativeBound(1e-2))
        with pytest.raises(ValueError, match="elements"):
            audit_stream(blob, smooth_positive_3d.ravel()[:100])

    def test_signed_data_skips_theorem3_with_note(self, signed_2d):
        blob = get_compressor("SZ_T").compress(signed_2d, RelativeBound(1e-2))
        rep = audit_stream(blob, signed_2d)
        assert rep.ok
        assert rep.theorem3 is None
        assert any("theorem 3" in n for n in rep.notes)
        assert rep.negatives > 0  # sign bitmap restored negatives

    def test_boundless_codec_noted(self, signed_2d):
        blob = get_compressor("GZIP").compress(signed_2d)
        rep = audit_stream(blob, signed_2d)
        assert rep.bound_kind is None
        assert any("no recoverable native bound" in n for n in rep.notes)


class TestTheorem3:
    @pytest.mark.parametrize("shape", [(4096,), (64, 64), (16, 16, 16)])
    def test_lorenzo_fixture_within_ceiling(self, shape):
        rng = np.random.default_rng(7)
        data = rng.lognormal(mean=0.0, sigma=1.0, size=shape).astype(np.float64)
        chk = theorem3_check(data, 1e-3)
        assert chk.ndim == len(shape)
        assert chk.bases == (2.0, pytest.approx(np.e), 10.0)
        assert chk.max_deviation <= chk.ceiling
        assert chk.ok

    def test_ceiling_grows_with_dimensionality(self):
        from repro.core.theory import quant_index_bound

        c1, c2, c3 = (quant_index_bound(1e-3, d) for d in (1, 2, 3))
        assert c1 < c2 < c3
        # Theorem 3: the 1,3,7 progression of Lorenzo corner counts.
        assert c2 / c1 == pytest.approx(3.0)
        assert c3 / c1 == pytest.approx(7.0)


class TestFromMetrics:
    def test_round_trip_through_isolated_registry(self):
        reg = MetricsRegistry()
        aud = BoundAuditor(registry=reg)
        before = reg.snapshot()
        rng = np.random.default_rng(5)
        for i in range(3):
            x = rng.lognormal(size=500)
            aud.observe_chunk(x, x * (1.0 + 4e-4), rel_bound=1e-3, index=i)
        rep = AuditReport.from_metrics(reg.diff(before), codec="SZ_T", bound_value=1e-3)
        assert rep.n_points == 1500
        assert rep.n_chunks == 3
        assert rep.violations == 0
        assert rep.max_rel == pytest.approx(4e-4)
        assert rep.bound_kind == "rel" and rep.bound_value == 1e-3
        assert rep.bounded_fraction == 1.0
        assert rep.ok

    def test_verify_hook_feeds_global_registry_without_auditor(self, smooth_positive_3d):
        before = metrics().snapshot()
        get_compressor("SZ_T").compress(smooth_positive_3d, RelativeBound(1e-3))
        delta = metrics().diff(before)
        rep = AuditReport.from_metrics(delta, codec="SZ_T", bound_value=1e-3)
        # Counters in the delta are exact; the histogram's max is the
        # registry's post-state max (bounds cannot be un-observed), so only
        # its presence is asserted here.
        assert rep.n_points == smooth_positive_3d.size
        assert rep.violations == 0
        assert rep.max_rel is not None
        assert rep.bounded_fraction == 1.0
        assert rep.ok

    def test_chunked_last_audit_survives_pool_boundary(self, smooth_positive_3d):
        from repro.core.chunked import ChunkedCompressor

        comp = ChunkedCompressor("SZ_T", chunk_bytes=8192, executor="process", workers=2)
        comp.compress(smooth_positive_3d, RelativeBound(1e-2))
        rep = comp.last_audit
        assert rep is not None
        assert rep.n_points == smooth_positive_3d.size
        assert rep.n_chunks == comp.last_chunk_count
        assert rep.bound_value == 1e-2
        assert rep.ok

    def test_empty_delta_is_well_defined(self):
        rep = AuditReport.from_metrics({}, codec="X")
        assert rep.n_points == 0 and rep.n_chunks == 0
        assert rep.max_rel is None and rep.bounded_fraction is None
        assert rep.ok
