"""Sampling profiler: byte-identity, span attribution, speedscope, stitching."""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro import RelativeBound, compress, decompress
from repro.core.chunked import ChunkedCompressor
from repro.observe import (
    enable_tracing,
    get_tracer,
    install_profiler,
    profiler_active,
    profiling,
    uninstall_profiler,
)
from repro.observe.profile import (
    PROFILE_ENV,
    Profile,
    SamplingProfiler,
    task_sampler,
)
from repro.observe.tracer import NULL_SPAN, span


@pytest.fixture()
def traced():
    tracer = get_tracer()
    was = tracer.enabled
    enable_tracing(True)
    tracer.clear()
    yield tracer
    tracer.clear()
    enable_tracing(was)


@pytest.fixture(autouse=True)
def no_leftover_profiler():
    yield
    uninstall_profiler()


@pytest.fixture()
def field():
    rng = np.random.default_rng(7)
    mags = rng.lognormal(mean=0.0, sigma=1.5, size=1 << 16)
    signs = rng.choice([-1.0, 1.0], size=mags.shape)
    return (mags * signs).astype(np.float64)


def _busy(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(500))


class TestSamplerBasics:
    def test_collects_samples_with_span_attribution(self, traced):
        prof = SamplingProfiler(hz=500)
        prof.start()
        with span("hot-stage", codec="XX"):
            _busy(0.08)
        profile = prof.stop()
        assert profile.n_samples > 0
        assert profile.duration_s > 0
        by_span = profile.by_span()
        assert "hot-stage[XX]" in by_span
        selfs = profile.self_time()
        assert any("_busy" in name for name in selfs)

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=0.1)
        with pytest.raises(ValueError):
            SamplingProfiler(hz=1e6)

    def test_install_sets_env_and_uninstall_clears(self, traced):
        install_profiler(hz=123)
        assert profiler_active()
        assert os.environ.get(PROFILE_ENV) == "123.0"
        profile = uninstall_profiler()
        assert profile is not None
        assert not profiler_active()
        assert PROFILE_ENV not in os.environ
        assert uninstall_profiler() is None

    def test_profiling_context_manager(self, traced):
        with profiling(hz=500) as prof:
            _busy(0.02)
        assert not profiler_active()
        assert prof.profile is not None
        assert prof.profile.n_samples >= 0

    def test_memory_mode_records_span_high_water(self, traced):
        with profiling(hz=500, memory=True) as prof:
            with span("alloc-stage"):
                blocks = [bytearray(1 << 20) for _ in range(8)]
                _busy(0.05)
                del blocks
        mem = prof.profile.memory
        assert mem.get("alloc-stage", 0) > 1 << 20


class TestByteIdentity:
    def test_streams_identical_with_and_without_profiler(self, traced, field):
        bound = RelativeBound(1e-3)
        plain = compress(field, bound, compressor="SZ_T")
        install_profiler(hz=997)
        profiled = compress(field, bound, compressor="SZ_T")
        uninstall_profiler()
        assert plain == profiled
        assert np.array_equal(decompress(plain), decompress(profiled))


class TestTaskSampler:
    def test_none_when_env_unset(self):
        os.environ.pop(PROFILE_ENV, None)
        assert task_sampler() is None

    def test_none_when_in_process_profiler_runs(self, traced):
        install_profiler(hz=100)
        assert task_sampler() is None

    def test_sampler_when_env_inherited(self, traced, monkeypatch):
        # Simulate a worker process: env set, no in-process profiler.
        monkeypatch.setenv(PROFILE_ENV, "250.0")
        sampler = task_sampler()
        assert sampler is not None and sampler.hz == 250.0
        assert not sampler.running

    def test_garbage_env_ignored(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "not-a-rate")
        assert task_sampler() is None
        monkeypatch.setenv(PROFILE_ENV, "1e9")
        assert task_sampler() is None


class TestCrossProcessStitching:
    def test_worker_samples_stitch_under_chunk_spans(self, traced):
        rng = np.random.default_rng(11)
        big = rng.lognormal(mean=0.0, sigma=1.5, size=1 << 19)
        comp = ChunkedCompressor(
            "SZ_T", chunk_bytes=big.nbytes // 2, workers=2, executor="process"
        )
        install_profiler(hz=2000)
        comp.compress(big, RelativeBound(1e-3))
        profile = uninstall_profiler()
        stitched = [
            (path, stack)
            for (_, path, stack) in profile.samples
            if "chunk" in path
        ]
        assert stitched, "no worker-process samples stitched under chunk spans"
        # Stitched paths carry the dispatch prefix, then the worker's spans.
        path, stack = stitched[0]
        assert path.index("chunk") >= 1
        assert stack  # worker frames came along


class TestProfileOutputs:
    def _profile(self, traced) -> Profile:
        with profiling(hz=500) as prof:
            with span("stage-a", codec="SZ_T"):
                _busy(0.05)
            with span("stage-b"):
                _busy(0.03)
        return prof.profile

    def test_speedscope_schema_sanity(self, traced):
        profile = self._profile(traced)
        doc = json.loads(profile.speedscope_json(name="unit"))
        assert doc["$schema"] == "https://www.speedscope.app/file-format-schema.json"
        assert doc["name"] == "unit"
        frames = doc["shared"]["frames"]
        assert frames and all(isinstance(f["name"], str) for f in frames)
        assert doc["profiles"], "no per-thread profiles"
        for p in doc["profiles"]:
            assert p["type"] == "sampled" and p["unit"] == "seconds"
            assert len(p["samples"]) == len(p["weights"])
            assert all(w > 0 for w in p["weights"])
            assert abs(sum(p["weights"]) - p["endValue"]) < 1e-9
            for stack in p["samples"]:
                assert all(0 <= i < len(frames) for i in stack)

    def test_collapsed_format(self, traced):
        profile = self._profile(traced)
        lines = profile.collapsed().strip().splitlines()
        assert lines
        for line in lines:
            stack, _, weight = line.rpartition(" ")
            assert int(weight) >= 1
            assert ";" in stack or stack
        assert any(line.startswith("span:") for line in lines)

    def test_table_mentions_spans_and_functions(self, traced):
        profile = self._profile(traced)
        text = profile.table()
        assert "stage-a[SZ_T]" in text
        assert "_busy" in text

    def test_to_dict_ingest_round_trip(self, traced):
        profile = self._profile(traced)
        clone = Profile.from_dict(profile.to_dict())
        assert clone.n_samples == profile.n_samples
        assert clone.total_weight() == pytest.approx(profile.total_weight())
        assert clone.by_span() == profile.by_span()

    def test_ingest_applies_prefix(self):
        profile = Profile(hz=97)
        profile.ingest(
            {
                "samples": [["MainThread", ["compress[SZ_T]"], ["f (x.py:1)"], 0.5]],
                "n_samples": 1,
                "duration_s": 0.5,
                "memory": {"compress[SZ_T]": 1024},
            },
            prefix=("compress[CHUNKED]", "chunk"),
        )
        (key,) = profile.samples
        assert key[1] == ("compress[CHUNKED]", "chunk", "compress[SZ_T]")
        assert profile.memory == {"compress[CHUNKED]/chunk/compress[SZ_T]": 1024}


class TestNoOpFastPath:
    def test_disabled_span_is_shared_null(self):
        tracer = get_tracer()
        was = tracer.enabled
        enable_tracing(False)
        try:
            assert span("anything", codec="SZ_T") is NULL_SPAN
            assert tracer.roots() == []
        finally:
            enable_tracing(was)

    def test_active_stacks_sees_other_threads(self, traced):
        seen = {}
        release = threading.Event()
        ready = threading.Event()

        def worker():
            with span("worker-stage"):
                ready.set()
                release.wait(timeout=5)

        t = threading.Thread(target=worker)
        t.start()
        try:
            assert ready.wait(timeout=5)
            stacks = traced.active_stacks()
            seen = {
                tid: [sp.name for sp in stack] for tid, stack in stacks.items()
            }
        finally:
            release.set()
            t.join()
        assert ["worker-stage"] in list(seen.values())
