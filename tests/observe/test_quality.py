"""Point-wise error analytics, byte attribution and explain reports."""

import numpy as np
import pytest

from repro import Container, RelativeBound, compress
from repro.core.chunked import ChunkedCompressor
from repro.observe.quality import (
    ErrorHistogram,
    attribute_bytes,
    explain_stream,
    mad_outliers,
    quality_enabled,
    record_quality_metrics,
    quality_summary_from_metrics,
    section_kind_map,
    set_quality_enabled,
)
from repro.safeguards import SafeguardedCompressor
from repro.testing import faults

BOUND = 1e-3


@pytest.fixture()
def field():
    rng = np.random.default_rng(7)
    return (rng.standard_normal(20000) * np.exp(rng.uniform(-3, 3, 20000))).astype(
        np.float32
    )


def _approx_recon(x, rel=5e-4):
    rng = np.random.default_rng(1)
    return (x * (1.0 + rel * rng.uniform(-1, 1, x.shape))).astype(np.float64)


class TestErrorHistogram:
    def test_summary_tracks_true_errors(self, field):
        recon = _approx_recon(field)
        hist = ErrorHistogram()
        hist.observe(field, recon)
        s = hist.summary()
        x64 = field.astype(np.float64)
        true_rel = np.abs(recon - x64) / np.abs(x64)
        assert s["n"] == field.size
        assert s["max_rel"] == pytest.approx(true_rel.max(), rel=1e-12)
        # log-binned digest: percentile resolution is one bucket (~9%)
        assert s["rel_p50"] == pytest.approx(np.quantile(true_rel, 0.5), rel=0.10)
        assert s["rel_p99"] == pytest.approx(np.quantile(true_rel, 0.99), rel=0.10)
        assert s["rel_bias"] == pytest.approx(
            float(((recon - x64) / np.abs(x64)).mean()), rel=1e-9
        )
        assert s["rel_p50"] <= s["rel_p90"] <= s["rel_p99"] <= s["max_rel"]

    def test_zeros_and_nonfinite_counted_separately(self):
        x = np.array([0.0, 1.0, np.nan, np.inf, 2.0])
        hist = ErrorHistogram()
        hist.observe(x, x.copy())
        snap = hist.snapshot()
        assert snap["zeros"] == 1
        assert snap["nonfinite"] == 2
        assert hist.summary()["rel_n"] == 2  # the two finite nonzeros

    def test_split_merge_matches_whole(self, field):
        recon = _approx_recon(field)
        whole = ErrorHistogram()
        whole.observe(field, recon)
        merged = ErrorHistogram()
        for sl in (slice(0, 7000), slice(7000, 13000), slice(13000, None)):
            part = ErrorHistogram()
            part.observe(field[sl], recon[sl])
            merged.merge(part)
        ws, ms = whole.summary(), merged.summary()
        # bias is a float sum: summation order may move the last ulp
        assert ms["rel_bias"] == pytest.approx(ws["rel_bias"], rel=1e-12)
        assert ms["abs_bias"] == pytest.approx(ws["abs_bias"], rel=1e-12)
        for key in ws:
            if key.endswith("bias"):
                continue
            assert ms[key] == ws[key], key

    def test_snapshot_roundtrip(self, field):
        hist = ErrorHistogram()
        hist.observe(field, _approx_recon(field))
        back = ErrorHistogram.from_snapshot(hist.snapshot())
        assert back.summary() == hist.summary()
        assert back.snapshot() == hist.snapshot()

    def test_merge_accepts_snapshots(self, field):
        recon = _approx_recon(field)
        a, b = ErrorHistogram(), ErrorHistogram()
        a.observe(field[:10000], recon[:10000])
        b.observe(field[10000:], recon[10000:])
        a.merge(b.snapshot())
        assert a.summary()["n"] == field.size

    def test_metrics_funnel_roundtrip(self, field):
        from repro.observe.metrics import MetricsRegistry

        hist = ErrorHistogram()
        hist.observe(field, _approx_recon(field))
        reg = MetricsRegistry()
        before = reg.snapshot()
        record_quality_metrics(hist, reg)
        summary = quality_summary_from_metrics(reg.diff(before))
        assert summary is not None
        assert summary["n"] == hist.summary()["n"]
        assert summary["rel_p99"] == hist.summary()["rel_p99"]

    def test_empty_metrics_delta_summarizes_to_none(self):
        assert quality_summary_from_metrics({}) is None


class TestQualityGate:
    def test_env_and_force_override(self, monkeypatch):
        assert quality_enabled()  # default on
        set_quality_enabled(False)
        try:
            assert not quality_enabled()
        finally:
            set_quality_enabled(None)
        monkeypatch.setenv("REPRO_QUALITY", "off")
        assert not quality_enabled()

    def test_streams_byte_identical_on_vs_off(self, field):
        set_quality_enabled(False)
        try:
            off = compress(field, RelativeBound(BOUND), "SZ_T")
        finally:
            set_quality_enabled(None)
        set_quality_enabled(True)
        try:
            on = compress(field, RelativeBound(BOUND), "SZ_T")
        finally:
            set_quality_enabled(None)
        assert off == on

    def test_process_pool_merges_quality(self, field):
        comp = ChunkedCompressor(
            "SZ_T", chunk_bytes=1 << 15, executor="process", workers=2
        )
        comp.compress(field, RelativeBound(BOUND))
        summary = comp.last_audit.error_summary
        assert summary is not None
        assert summary["n"] == field.size
        # The summary is rebuilt from a registry diff whose max is clamped
        # to the occupied buckets' upper edge -- allow one bucket (2^(1/8))
        # of resolution on top of the bound.
        assert summary["max_rel"] <= BOUND * 1.1


def _v1(blob):
    return Container.from_bytes(blob).to_bytes(checksums=False, version=1)


def _streams(field):
    """{label: blob} covering container versions 1-4 and the key codecs."""
    sz = compress(field, RelativeBound(BOUND), "SZ_T")
    chunked = ChunkedCompressor("SZ_T", chunk_bytes=1 << 14, executor="serial")
    parity = ChunkedCompressor(
        "SZ_T", chunk_bytes=1 << 14, executor="serial", parity=2
    )
    safe = SafeguardedCompressor("SZ_T", ["rel:1e-3"])
    return {
        "sz_v2": sz,
        "sz_v1": _v1(sz),
        "chunked_v2": chunked.compress(field, RelativeBound(BOUND)),
        "parity_v3": parity.compress(field, RelativeBound(BOUND)),
        "safe_v4": safe.compress(field, RelativeBound(BOUND)),
        "zfp_v2": compress(field, RelativeBound(BOUND), "ZFP_T"),
    }


class TestByteAttribution:
    def test_exhaustive_for_every_codec_and_version(self, field):
        for label, blob in _streams(field).items():
            tree = attribute_bytes(blob)
            tree.check_exhaustive()
            assert sum(leaf.nbytes for leaf in tree.leaves()) == len(blob), label
            assert sum(tree.kind_totals().values()) == len(blob), label
            assert not tree.damage_notes(), label

    def test_sz_stream_kinds(self, field):
        blob = compress(field, RelativeBound(BOUND), "SZ_T")
        totals = attribute_bytes(blob).kind_totals()
        # entropy-coded payload dominates; framing+CRC stay small
        assert totals["entropy"] > 0.5 * len(blob)
        assert "signs" in totals
        overhead = totals.get("framing", 0) + totals.get("checksum", 0)
        assert overhead < 0.05 * len(blob)

    def test_parity_stream_attributes_parity_bytes(self, field):
        comp = ChunkedCompressor(
            "SZ_T", chunk_bytes=1 << 14, executor="serial", parity=2
        )
        totals = attribute_bytes(comp.compress(field, RelativeBound(BOUND))).kind_totals()
        assert totals.get("parity", 0) > 0

    def test_section_kind_map_names_payload_kinds(self, field):
        blob = compress(field, RelativeBound(BOUND), "SZ_T")
        kinds = section_kind_map(attribute_bytes(blob))
        assert kinds["signs"] == "signs"
        assert kinds["inner"] == "entropy"

    def test_truncated_stream_degrades_to_partial_tree(self, field):
        blob = compress(field, RelativeBound(BOUND), "SZ_T")
        for keep in (5, 17, len(blob) // 3, len(blob) - 2):
            cut = faults.truncate(blob, keep)
            tree = attribute_bytes(cut)
            tree.check_exhaustive()
            assert sum(leaf.nbytes for leaf in tree.leaves()) == len(cut), keep

    def test_garbage_is_one_damaged_leaf(self):
        tree = attribute_bytes(b"not a stream at all")
        tree.check_exhaustive()
        assert tree.kind_totals() == {"damaged": 19}

    def test_offset_shifts_coordinates(self, field):
        blob = compress(field, RelativeBound(BOUND), "SZ_T")
        tree = attribute_bytes(blob, offset=1000)
        assert tree.start == 1000 and tree.stop == 1000 + len(blob)
        tree.check_exhaustive()


class TestMadOutliers:
    def test_flags_single_deviant(self):
        values = [1.0] * 9 + [50.0]
        flags, median, _ = mad_outliers(values, k=5.0)
        assert median == 1.0
        assert [f["index"] for f in flags] == [9]

    def test_needs_three_points(self):
        assert mad_outliers([1.0, 99.0], k=5.0)[0] == []

    def test_uniform_values_produce_no_flags(self):
        assert mad_outliers([2.0] * 8, k=5.0)[0] == []


class TestExplain:
    def test_clean_stream_reports_ok(self, field):
        for label, blob in _streams(field).items():
            report = explain_stream(blob)
            assert report.ok, (label, report.notes)
            assert report.nbytes == len(blob)
            assert sum(report.kind_totals.values()) == len(blob)
            text = report.format()
            assert "Byte attribution" in text

    def test_original_enables_quality_and_audit(self, field):
        blob = compress(field, RelativeBound(BOUND), "SZ_T")
        report = explain_stream(blob, field)
        assert report.audit_ok
        assert report.quality is not None
        assert report.quality["rel_p99"] <= BOUND * (1 + 1e-9)
        assert "Point-wise error quality" in report.format()

    def test_chunked_stream_lists_chunks(self, field):
        comp = ChunkedCompressor("SZ_T", chunk_bytes=1 << 14, executor="serial")
        report = explain_stream(comp.compress(field, RelativeBound(BOUND)), field)
        assert len(report.chunks) >= 3
        assert all(c["nbytes"] > 0 for c in report.chunks)

    def test_truncated_stream_never_crashes(self, field):
        for label, blob in _streams(field).items():
            for keep in (6, len(blob) // 2, len(blob) - 3):
                report = explain_stream(faults.truncate(blob, keep))
                assert not report.ok, (label, keep)
                assert any(n.startswith("StreamError") for n in report.notes)
                report.format()  # renders without raising
                report.to_dict()

    def test_bit_flipped_stream_never_crashes(self, field):
        for label, blob in _streams(field).items():
            flipped = faults.flip_random_bits(blob, n=4, seed=3)
            report = explain_stream(flipped, field)
            report.format()
            report.to_dict()
            assert sum(report.kind_totals.values()) == len(flipped), label

    def test_to_dict_is_json_clean(self, field):
        import json

        blob = compress(field, RelativeBound(BOUND), "SZ_T")
        payload = json.dumps(explain_stream(blob, field).to_dict())
        assert "attribution" in payload
