"""Structured event log: install / env activation / span correlation."""

import os

import numpy as np
import pytest

from repro import RelativeBound, get_compressor
from repro.observe import events
from repro.observe.events import (
    emit,
    event_log_enabled,
    install_event_log,
    read_events,
)


@pytest.fixture(autouse=True)
def _no_leftover_log():
    yield
    install_event_log(None)


class TestEventLog:
    def test_install_emit_read(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        install_event_log(path)
        assert event_log_enabled()
        emit("ping", codec="SZ_T", skipped=None)
        emit("pong", n=2)
        install_event_log(None)
        assert not event_log_enabled()
        recs = read_events(path)
        assert [r["event"] for r in recs] == ["ping", "pong"]
        assert [r["seq"] for r in recs] == [1, 2]
        assert recs[0]["codec"] == "SZ_T"
        assert "skipped" not in recs[0]  # None-valued fields are dropped
        assert all(r["pid"] == os.getpid() and r["t"] > 0 for r in recs)

    def test_emit_without_log_is_a_noop(self):
        install_event_log(None)
        emit("nobody-listening", x=1)  # must not raise or write anywhere

    def test_env_var_opens_lazily(self, tmp_path, monkeypatch):
        path = str(tmp_path / "env-events.jsonl")
        monkeypatch.setattr(events, "_LOG", None)
        monkeypatch.setattr(events, "_CHECKED_ENV", False)
        monkeypatch.setenv("REPRO_EVENTS", path)
        assert event_log_enabled()
        emit("from-env")
        install_event_log(None)
        assert [r["event"] for r in read_events(path)] == ["from-env"]

    def test_unwritable_env_path_stays_silent(self, tmp_path, monkeypatch):
        monkeypatch.setattr(events, "_LOG", None)
        monkeypatch.setattr(events, "_CHECKED_ENV", False)
        monkeypatch.setenv("REPRO_EVENTS", str(tmp_path / "no" / "such" / "dir" / "x"))
        assert not event_log_enabled()
        emit("dropped")  # still a no-op, no exception


class TestSpanCorrelation:
    def test_pipeline_event_span_ids_resolve_against_trace_tree(self, tmp_path):
        """Every span_id in the event log joins the captured trace tree."""
        from repro.observe.tracer import enable_tracing, get_tracer

        data = np.exp(
            np.random.default_rng(0).normal(0, 1, (16, 16, 16))
        ).astype(np.float32)
        path = str(tmp_path / "run-events.jsonl")
        install_event_log(path)
        enable_tracing(True)
        try:
            with get_tracer().capture() as spans:
                comp = get_compressor("SZ_T")
                blob = comp.compress(data, RelativeBound(1e-2))
                comp.decompress(blob)
        finally:
            enable_tracing(False)
            install_event_log(None)

        recs = read_events(path)
        names = [r["event"] for r in recs]
        assert "compress" in names and "decompress" in names
        known_ids = {sid for sp in spans for sid in sp.iter_ids()}
        stamped = [r for r in recs if "span_id" in r]
        assert stamped, "pipeline events must carry span ids while tracing is on"
        for rec in stamped:
            assert rec["span_id"] in known_ids

    def test_events_flow_without_tracing(self, tmp_path):
        """With tracing off, events are still logged -- just without span ids."""
        data = np.linspace(1.0, 2.0, 4096).astype(np.float32)
        path = str(tmp_path / "untraced.jsonl")
        install_event_log(path)
        get_compressor("SZ_T").compress(data, RelativeBound(1e-2))
        install_event_log(None)
        recs = read_events(path)
        assert any(r["event"] == "compress" for r in recs)
        assert all("span_id" not in r for r in recs)

    def test_chunk_retry_event(self, tmp_path, monkeypatch):
        """A crashing worker chunk emits a chunk-retry event."""
        from repro.core import chunked as chunked_mod
        from repro.core.chunked import ChunkedCompressor

        data = np.exp(
            np.random.default_rng(1).normal(0, 1, (16, 16, 16))
        ).astype(np.float32)
        comp = ChunkedCompressor("SZ_T", chunk_bytes=8192, executor="thread", workers=2)
        calls = {"n": 0}
        orig = chunked_mod._compress_chunk

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("simulated worker crash")
            return orig(*args, **kwargs)

        monkeypatch.setattr(chunked_mod, "_compress_chunk", flaky)
        path = str(tmp_path / "retry.jsonl")
        install_event_log(path)
        blob = comp.compress(data, RelativeBound(1e-2))
        install_event_log(None)
        retries = [r for r in read_events(path) if r["event"] == "chunk-retry"]
        assert len(retries) == 1
        assert retries[0]["codec"] == "CHUNKED"
        np.testing.assert_allclose(
            comp.decompress(blob), data, rtol=1e-2
        )
