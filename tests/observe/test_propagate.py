"""Telemetry across pool boundaries: run_traced, absorb, chunked pipeline."""

import os

import numpy as np
import pytest

from repro import RelativeBound
from repro.core.chunked import ChunkedCompressor
from repro.observe import (
    Span,
    TaskTelemetry,
    absorb,
    enable_tracing,
    get_tracer,
    metrics,
    run_traced,
    tracing_enabled,
)


@pytest.fixture()
def traced():
    """Tracing on with a clean buffer; restores the prior state afterwards."""
    tracer = get_tracer()
    was = tracer.enabled
    enable_tracing(True)
    tracer.clear()
    yield tracer
    tracer.clear()
    enable_tracing(was)


def _task(n: int):
    from repro.observe import span

    with span("work", n=n):
        pass
    metrics().counter("test.propagate.calls").inc()
    return n * 2


class TestRunTraced:
    def test_result_and_telemetry(self, traced):
        result, telem = run_traced(_task, 21)
        assert result == 42
        assert isinstance(telem, TaskTelemetry)
        assert telem.pid == os.getpid()
        assert telem.wall_s >= 0 and telem.cpu_s >= 0
        assert [sp["name"] for sp in telem.spans] == ["work"]
        assert telem.metrics["test.propagate.calls"]["value"] == 1.0
        # captured spans must NOT leak into the shared buffer
        assert traced.roots() == []

    def test_disabled_tracer_still_measures(self, traced):
        enable_tracing(False)
        result, telem = run_traced(_task, 1)
        assert result == 2
        assert telem.spans == []
        assert telem.metrics["test.propagate.calls"]["value"] == 1.0

    def test_exception_propagates(self, traced):
        def boom():
            raise ValueError("no")

        with pytest.raises(ValueError):
            run_traced(boom)


class TestAbsorb:
    def test_stitches_spans_and_queue_wait(self, traced):
        _, telem = run_traced(_task, 3)
        parent = Span("dispatch")
        wait = absorb(parent, telem, label="chunk", t_submit=telem.t_start - 0.25, index=7)
        (child,) = parent.children
        assert child.name == "chunk"
        assert child.attrs["index"] == 7
        assert child.attrs["queue_wait_s"] == pytest.approx(0.25, abs=1e-3)
        assert wait == pytest.approx(0.25, abs=1e-3)
        assert [c.name for c in child.children] == ["work"]

    def test_same_pid_metrics_not_double_counted(self, traced):
        # Thread-pool workers share the parent registry: the counter was
        # already incremented once by the task itself; absorb must not
        # merge the delta a second time.
        before = metrics().snapshot()
        _, telem = run_traced(_task, 1)
        absorb(Span("dispatch"), telem)
        delta = metrics().diff(before)
        assert delta["test.propagate.calls"]["value"] == 1.0

    def test_foreign_pid_metrics_merged(self, traced):
        before = metrics().snapshot()
        telem = TaskTelemetry(
            pid=os.getpid() + 1, t_start=0.0, wall_s=0.1, cpu_s=0.1,
            metrics={"test.propagate.remote": {"type": "counter", "value": 5.0}},
        )
        absorb(Span("dispatch"), telem)
        delta = metrics().diff(before)
        assert delta["test.propagate.remote"]["value"] == 5.0


@pytest.fixture()
def field() -> np.ndarray:
    rng = np.random.default_rng(7)
    data = rng.lognormal(0.0, 1.0, size=4096).astype(np.float32)
    return data * rng.choice([-1.0, 1.0], size=data.shape).astype(np.float32)


class TestChunkedPropagation:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_pool_roundtrip_stitches_chunk_spans(self, traced, field, executor):
        comp = ChunkedCompressor(
            "SZ_T", chunk_bytes=4096, workers=2, executor=executor
        )
        blob = comp.compress(field, RelativeBound(1e-3))
        roots = [sp for sp in traced.roots() if sp.name == "compress"]
        assert roots, "chunked compress must produce a root span"
        root = roots[-1]
        chunks = [c for c in root.children if c.name == "chunk"]
        assert len(chunks) == comp.last_chunk_count
        assert sorted(c.attrs["index"] for c in chunks) == list(range(len(chunks)))
        for c in chunks:
            assert c.attrs["queue_wait_s"] >= 0.0
            # each chunk contains the worker's full inner-codec subtree
            assert any(g.name == "compress" for g in c.children)
        recon = comp.decompress(blob)
        assert np.all(np.abs(recon - field) <= 1e-3 * np.abs(field))

    def test_process_pool_merges_worker_metrics(self, traced, field):
        before = metrics().snapshot()
        comp = ChunkedCompressor(
            "SZ_T", chunk_bytes=4096, workers=2, executor="process"
        )
        comp.compress(field, RelativeBound(1e-3))
        delta = metrics().diff(before)
        # container encodes happen inside the worker processes; the only
        # way the parent registry sees them is the TaskTelemetry merge.
        assert delta["container.encode_s"]["value"] > 0.0
        assert delta["chunk.exec_s"]["n"] == comp.last_chunk_count

    def test_serial_executor_traces_inline(self, traced, field):
        comp = ChunkedCompressor("SZ_T", chunk_bytes=4096, executor="serial")
        comp.compress(field, RelativeBound(1e-3))
        root = [sp for sp in traced.roots() if sp.name == "compress"][-1]
        chunks = [c for c in root.children if c.name == "chunk"]
        assert len(chunks) == comp.last_chunk_count


def test_tracing_enabled_reflects_switch():
    tracer = get_tracer()
    was = tracer.enabled
    try:
        enable_tracing(False)
        assert not tracing_enabled()
        enable_tracing(True)
        assert tracing_enabled()
    finally:
        enable_tracing(was)
