"""Tracing spans: nesting, thread isolation, export, render."""

import json
import threading

import pytest

from repro.observe.tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    render_spans,
    spans_from_dicts,
)


@pytest.fixture()
def tracer() -> Tracer:
    return Tracer(enabled=True)


class TestSpanNesting:
    def test_children_attach_to_enclosing_span(self, tracer):
        with tracer.span("compress") as root:
            with tracer.span("quantize"):
                pass
            with tracer.span("encode"):
                with tracer.span("huffman"):
                    pass
        assert [c.name for c in root.children] == ["quantize", "encode"]
        assert [c.name for c in root.children[1].children] == ["huffman"]
        assert tracer.roots() == [root]

    def test_timings_recorded(self, tracer):
        with tracer.span("stage") as sp:
            sum(range(10_000))
        assert sp.wall_s > 0
        assert sp.cpu_s >= 0
        assert sp.child_wall_s == 0.0
        assert sp.self_s == sp.wall_s

    def test_attrs_and_bytes(self, tracer):
        with tracer.span("stage", codec="SZ_T") as sp:
            sp.set(order=1).add_bytes(in_=100, out=40)
        assert sp.attrs == {"codec": "SZ_T", "order": 1}
        assert (sp.bytes_in, sp.bytes_out) == (100, 40)

    def test_exception_marks_span_and_unwinds(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        (root,) = tracer.roots()
        assert root.name == "outer"
        assert root.children[0].attrs["error"] == "RuntimeError"
        assert tracer.current() is NULL_SPAN  # stack fully unwound

    def test_current_span(self, tracer):
        assert tracer.current() is NULL_SPAN
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
        assert tracer.current() is NULL_SPAN


class TestDisabled:
    def test_disabled_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        sp = tracer.span("anything", codec="X")
        assert sp is NULL_SPAN
        with sp as inner:
            inner.set(a=1).add_bytes(in_=5, out=5)
        assert tracer.roots() == []

    def test_env_var_disables(self, monkeypatch):
        for value in ("off", "0", "false", "NO"):
            monkeypatch.setenv("REPRO_TRACE", value)
            assert Tracer().enabled is False
        monkeypatch.setenv("REPRO_TRACE", "on")
        assert Tracer().enabled is True


class TestThreadIsolation:
    def test_concurrent_threads_build_separate_trees(self, tracer):
        n, errors = 8, []

        def work(i: int) -> None:
            try:
                with tracer.span("root", thread=i) as root:
                    for j in range(20):
                        with tracer.span("stage", j=j):
                            pass
                assert len(root.children) == 20
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        roots = tracer.roots()
        assert len(roots) == n
        assert sorted(r.attrs["thread"] for r in roots) == list(range(n))

    def test_max_roots_cap_counts_drops(self):
        tracer = Tracer(enabled=True, max_roots=3)
        for _ in range(5):
            with tracer.span("r"):
                pass
        assert len(tracer.roots()) == 3
        assert tracer.dropped == 2
        tracer.clear()
        assert tracer.roots() == [] and tracer.dropped == 0


class TestCapture:
    def test_capture_diverts_roots_from_buffer(self, tracer):
        with tracer.capture() as captured:
            with tracer.span("inside"):
                pass
        with tracer.span("outside"):
            pass
        assert [sp.name for sp in captured] == ["inside"]
        assert [sp.name for sp in tracer.roots()] == ["outside"]


class TestExport:
    def test_dict_roundtrip(self, tracer):
        with tracer.span("root", codec="SZ_T") as root:
            root.add_bytes(in_=10, out=4)
            with tracer.span("child"):
                pass
        (back,) = spans_from_dicts([root.to_dict()])
        assert back.name == "root"
        assert back.attrs == {"codec": "SZ_T"}
        assert (back.bytes_in, back.bytes_out) == (10, 4)
        assert back.wall_s == root.wall_s
        assert [c.name for c in back.children] == ["child"]

    def test_to_json_schema(self, tracer):
        with tracer.span("root"):
            pass
        doc = json.loads(tracer.to_json())
        assert doc["version"] == 1
        assert doc["spans"][0]["name"] == "root"

    def test_adopt_accepts_dicts_and_spans(self):
        parent = Span("parent")
        parent.adopt([Span("a"), {"name": "b", "wall_s": 0.5}])
        assert [c.name for c in parent.children] == ["a", "b"]
        assert parent.children[1].wall_s == 0.5


class TestRender:
    def test_tree_with_percentages_and_coverage(self):
        root = Span("compress", {"codec": "SZ_T"})
        root.wall_s = 1.0
        root.child("quantize", wall_s=0.25)
        root.child("encode", wall_s=0.70)
        text = render_spans([root])
        assert "compress[SZ_T]" in text
        assert " 25.0%" in text and " 70.0%" in text
        assert "stage coverage: 95.0%" in text

    def test_empty_render(self):
        assert render_spans([]) == ""
