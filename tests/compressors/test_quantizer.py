"""Lattice quantization: bound guarantee, risky flagging, determinism."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compressors.sz.quantizer import (
    CLIP_INDEX,
    RISKY_INDEX,
    internal_bound,
    lattice_quantize,
    lattice_reconstruct,
)


class TestQuantize:
    def test_bound_holds_for_normal_data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 100, size=10_000)
        eb = 0.01
        k, risky = lattice_quantize(x, eb)
        assert not risky.any()
        recon = lattice_reconstruct(k, eb, np.float64)
        assert np.abs(recon - x).max() <= eb

    def test_zero_maps_to_zero(self):
        k, risky = lattice_quantize(np.zeros(5), 1e-3)
        assert (k == 0).all() and not risky.any()
        assert (lattice_reconstruct(k, 1e-3, np.float32) == 0).all()

    def test_risky_flag_for_extreme_ratio(self):
        x = np.array([1e38], dtype=np.float64)
        k, risky = lattice_quantize(x, 1e-6)
        assert risky.all()
        assert np.abs(k).max() <= CLIP_INDEX

    def test_risky_threshold_location(self):
        eb = 1.0
        step = 2.0 * internal_bound(eb)
        ok = np.array([step * (RISKY_INDEX - 2)])
        bad = np.array([step * (RISKY_INDEX * 4)])
        assert not lattice_quantize(ok, eb)[1].any()
        assert lattice_quantize(bad, eb)[1].all()

    def test_internal_bound_slightly_smaller(self):
        assert 0 < internal_bound(0.5) < 0.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_bound_rejected(self, bad):
        with pytest.raises(ValueError):
            lattice_quantize(np.ones(3), bad)

    def test_deterministic_from_reconstructed_value(self):
        # A decompressor holding the verbatim value must derive the same
        # index the encoder used (the lattice invariant).
        x = np.array([1234.5678], dtype=np.float64)
        eb = 1e-4
        k1, _ = lattice_quantize(x, eb)
        k2, _ = lattice_quantize(x.copy(), eb)
        np.testing.assert_array_equal(k1, k2)

    @given(
        st.lists(st.floats(-1e30, 1e30, allow_nan=False), min_size=1, max_size=200),
        st.floats(1e-12, 1e6),
    )
    def test_property_bound_or_risky(self, raw, eb):
        x = np.array(raw, dtype=np.float64)
        k, risky = lattice_quantize(x, eb)
        recon = lattice_reconstruct(k, eb, np.float64)
        ok = ~risky
        assert (np.abs(recon[ok] - x[ok]) <= eb).all()


class TestNonFinite:
    """NaN/Inf inputs must be flagged risky, never cast to int64.

    Regression tests for the undefined-behaviour cast: a NaN index
    compares False against RISKY_INDEX, so before the fix non-finite
    points could slip through unflagged with a garbage index.
    """

    def test_nan_and_inf_flagged_risky_with_zero_index(self):
        x = np.array([np.nan, np.inf, -np.inf, 1.0, 0.0])
        k, risky = lattice_quantize(x, 1e-3)
        assert risky[:3].all()
        assert not risky[3:].any()
        assert (k[:3] == 0).all()

    def test_no_invalid_cast_warning(self):
        import warnings

        x = np.array([np.nan, np.inf, 2.5])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            k, risky = lattice_quantize(x, 1e-2)
        assert risky[:2].all() and not risky[2]

    def test_fused_lorenzo_path_keeps_residuals_finite(self):
        from repro.compressors.sz.quantizer import quantize_lorenzo

        x = np.array([[1.0, np.nan], [np.inf, 4.0]])
        k, q, risky = quantize_lorenzo(x, 1e-3, ndim=2)
        assert risky.sum() == 2
        assert np.isfinite(q).all()
        assert np.abs(k).max() <= CLIP_INDEX

    def test_all_nonfinite_input(self):
        x = np.full(16, np.nan)
        k, risky = lattice_quantize(x, 1.0)
        assert risky.all() and (k == 0).all()
