"""Lattice quantization: bound guarantee, risky flagging, determinism."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compressors.sz.quantizer import (
    CLIP_INDEX,
    RISKY_INDEX,
    internal_bound,
    lattice_quantize,
    lattice_reconstruct,
)


class TestQuantize:
    def test_bound_holds_for_normal_data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 100, size=10_000)
        eb = 0.01
        k, risky = lattice_quantize(x, eb)
        assert not risky.any()
        recon = lattice_reconstruct(k, eb, np.float64)
        assert np.abs(recon - x).max() <= eb

    def test_zero_maps_to_zero(self):
        k, risky = lattice_quantize(np.zeros(5), 1e-3)
        assert (k == 0).all() and not risky.any()
        assert (lattice_reconstruct(k, 1e-3, np.float32) == 0).all()

    def test_risky_flag_for_extreme_ratio(self):
        x = np.array([1e38], dtype=np.float64)
        k, risky = lattice_quantize(x, 1e-6)
        assert risky.all()
        assert np.abs(k).max() <= CLIP_INDEX

    def test_risky_threshold_location(self):
        eb = 1.0
        step = 2.0 * internal_bound(eb)
        ok = np.array([step * (RISKY_INDEX - 2)])
        bad = np.array([step * (RISKY_INDEX * 4)])
        assert not lattice_quantize(ok, eb)[1].any()
        assert lattice_quantize(bad, eb)[1].all()

    def test_internal_bound_slightly_smaller(self):
        assert 0 < internal_bound(0.5) < 0.5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_bound_rejected(self, bad):
        with pytest.raises(ValueError):
            lattice_quantize(np.ones(3), bad)

    def test_deterministic_from_reconstructed_value(self):
        # A decompressor holding the verbatim value must derive the same
        # index the encoder used (the lattice invariant).
        x = np.array([1234.5678], dtype=np.float64)
        eb = 1e-4
        k1, _ = lattice_quantize(x, eb)
        k2, _ = lattice_quantize(x.copy(), eb)
        np.testing.assert_array_equal(k1, k2)

    @given(
        st.lists(st.floats(-1e30, 1e30, allow_nan=False), min_size=1, max_size=200),
        st.floats(1e-12, 1e6),
    )
    def test_property_bound_or_risky(self, raw, eb):
        x = np.array(raw, dtype=np.float64)
        k, risky = lattice_quantize(x, eb)
        recon = lattice_reconstruct(k, eb, np.float64)
        ok = ~risky
        assert (np.abs(recon[ok] - x[ok]) <= eb).all()


class TestNonFinite:
    """NaN/Inf inputs are rejected by the lattice, routed via safeguards.

    Pinning non-finite points to index 0 (the pre-safeguards behaviour)
    poisoned the Lorenzo predictions of every neighbour; quantization of
    non-finite values is now a caller error -- ``SZCompressor`` sanitizes
    them out and restores the exact bit patterns from the safeguard patch
    channel (see ``tests/safeguards/test_sz_nonfinite.py``).
    """

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_lattice_rejects_nonfinite(self, bad):
        x = np.array([1.0, bad, 2.5])
        with pytest.raises(ValueError, match="non-finite"):
            lattice_quantize(x, 1e-3)

    def test_fused_lorenzo_path_rejects_nonfinite(self):
        from repro.compressors.sz.quantizer import quantize_lorenzo

        x = np.array([[1.0, np.nan], [np.inf, 4.0]])
        with pytest.raises(ValueError, match="non-finite"):
            quantize_lorenzo(x, 1e-3, ndim=2)

    def test_index_overflow_of_finite_input_stays_risky(self):
        # |x| / step overflows float64 -> Inf index; the point must be
        # flagged risky (stored verbatim) with a safely castable index.
        import warnings

        x = np.array([1e300, -1e300, 2.5])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            k, risky = lattice_quantize(x, 1e-10)
        assert risky[:2].all() and not risky[2]
        assert np.abs(k).max() <= CLIP_INDEX
