"""ZFP fixed-rate mode: exact budget, random-access property, quality."""

import numpy as np
import pytest

from repro import decompress, get_compressor
from repro.compressors import RateBound, ZFPCompressor
from repro.encoding import Container


def roundtrip(data, rate):
    comp = ZFPCompressor("rate")
    blob = comp.compress(data, RateBound(rate))
    return blob, comp.decompress(blob)


class TestExactRate:
    @pytest.mark.parametrize("rate", [2, 4, 8, 16])
    def test_payload_is_exactly_rate(self, smooth_positive_3d, rate):
        blob, recon = roundtrip(smooth_positive_3d, rate)
        box = Container.from_bytes(blob)
        lens = np.frombuffer(
            __import__("zlib").decompress(box.get("lens")), dtype=np.uint32
        )
        assert (lens == rate * 64).all()  # 4^3 values per block
        assert recon.shape == smooth_positive_3d.shape

    def test_fractional_rate(self, smooth_positive_3d):
        blob, _ = roundtrip(smooth_positive_3d, 2.5)
        box = Container.from_bytes(blob)
        lens = np.frombuffer(
            __import__("zlib").decompress(box.get("lens")), dtype=np.uint32
        )
        assert (lens == round(2.5 * 64)).all()

    def test_stream_size_independent_of_content(self):
        rng = np.random.default_rng(0)
        easy = np.ones((32, 32, 32), dtype=np.float32) * 5
        easy += rng.normal(0, 1e-6, easy.shape).astype(np.float32)
        hard = rng.normal(0, 1e5, (32, 32, 32)).astype(np.float32)
        b_easy, _ = roundtrip(easy, 8)
        b_hard, _ = roundtrip(hard, 8)
        box_e = Container.from_bytes(b_easy)
        box_h = Container.from_bytes(b_hard)
        assert len(box_e.get("payload")) == len(box_h.get("payload"))

    def test_rate_bound_validation(self):
        with pytest.raises(ValueError):
            RateBound(0.1)
        with pytest.raises(ValueError):
            RateBound(65)


class TestQuality:
    def test_error_shrinks_with_rate(self, smooth_positive_3d):
        errs = []
        for rate in (2, 6, 12):
            _, recon = roundtrip(smooth_positive_3d, rate)
            errs.append(
                np.abs(recon.astype(np.float64) - smooth_positive_3d.astype(np.float64)).max()
            )
        assert errs[0] > errs[1] > errs[2]

    def test_high_rate_near_lossless(self, smooth_positive_3d):
        _, recon = roundtrip(smooth_positive_3d, 24)
        rel = np.abs(recon.astype(np.float64) - smooth_positive_3d.astype(np.float64))
        rel /= np.abs(smooth_positive_3d).max()
        assert rel.max() < 1e-5

    def test_all_zero_data(self):
        data = np.zeros((16, 16), dtype=np.float32)
        blob, recon = roundtrip(data, 4)
        np.testing.assert_array_equal(recon, 0.0)

    def test_signed_2d(self, signed_2d):
        _, recon = roundtrip(signed_2d, 12)
        scale = float(np.abs(signed_2d).max())
        assert np.abs(recon - signed_2d).max() < scale * 1e-2

    def test_registry_dispatch(self, smooth_positive_3d):
        blob = get_compressor("ZFP_R").compress(smooth_positive_3d, RateBound(8))
        recon = decompress(blob)
        assert recon.shape == smooth_positive_3d.shape

    def test_wrong_bound_kind(self, smooth_positive_3d):
        from repro.compressors import AbsoluteBound, UnsupportedBound

        with pytest.raises(UnsupportedBound):
            ZFPCompressor("rate").compress(smooth_positive_3d, AbsoluteBound(1.0))
