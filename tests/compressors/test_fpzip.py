"""FPZIP: ordered mapping, precision->error law, losslessness, zeros."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compressors import FpzipCompressor, PrecisionBound
from repro.compressors.fpzip import (
    _from_ordered,
    _to_ordered,
    max_relative_error,
    precision_for_relbound,
)


def roundtrip(data, p):
    comp = FpzipCompressor()
    blob = comp.compress(data, PrecisionBound(p))
    return blob, comp.decompress(blob)


class TestOrderedMap:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_roundtrip(self, dtype):
        data = np.array([-1e30, -1.5, -0.0, 0.0, 2e-38, 1.0, 3.14, 1e30], dtype=dtype)
        out = _from_ordered(_to_ordered(data), dtype)
        np.testing.assert_array_equal(np.abs(out), np.abs(data))
        np.testing.assert_array_equal(np.signbit(out), np.signbit(data))

    def test_monotone(self):
        data = np.array([-100.0, -1.0, -1e-10, 0.0, 1e-10, 1.0, 100.0], dtype=np.float32)
        s = _to_ordered(data).astype(np.uint64)
        assert (np.diff(s.astype(np.int64)) > 0).all()

    @given(st.lists(st.floats(width=32, allow_nan=False, allow_infinity=False), min_size=1, max_size=50))
    def test_property_roundtrip(self, raw):
        data = np.array(raw, dtype=np.float32)
        out = _from_ordered(_to_ordered(data), np.float32)
        np.testing.assert_array_equal(out.view(np.uint32), data.view(np.uint32))


class TestErrorLaw:
    def test_table4_precision_values(self):
        """The paper's Table IV -p settings map to its Max E values."""
        assert max_relative_error(19, np.float32) == pytest.approx(9.77e-4, rel=0.01)
        assert max_relative_error(16, np.float32) == pytest.approx(7.8e-3, rel=0.01)
        assert max_relative_error(13, np.float32) == pytest.approx(6.2e-2, rel=0.01)

    def test_precision_for_relbound(self):
        assert precision_for_relbound(1e-3, np.float32) == 19
        assert precision_for_relbound(7.9e-3, np.float32) == 16  # 2^-7 = 7.8125e-3
        assert precision_for_relbound(1e-1, np.float32) == 13
        assert precision_for_relbound(1e-3, np.float64) == 22

    def test_precision_for_relbound_validation(self):
        with pytest.raises(ValueError):
            precision_for_relbound(0.0, np.float32)
        with pytest.raises(ValueError):
            precision_for_relbound(1.5, np.float32)

    @pytest.mark.parametrize("p", [13, 16, 19, 24])
    def test_measured_error_within_law(self, smooth_positive_3d, p):
        _, recon = roundtrip(smooth_positive_3d, p)
        x = smooth_positive_3d.astype(np.float64)
        rel = np.abs(recon.astype(np.float64) - x) / np.abs(x)
        assert rel.max() <= max_relative_error(p, np.float32)

    def test_error_law_is_tight(self, smooth_positive_3d):
        """Truncation should actually approach the advertised maximum."""
        p = 16
        _, recon = roundtrip(smooth_positive_3d, p)
        x = smooth_positive_3d.astype(np.float64)
        rel = np.abs(recon.astype(np.float64) - x) / np.abs(x)
        assert rel.max() >= 0.5 * max_relative_error(p, np.float32)


class TestRoundtrip:
    def test_lossless_at_full_precision(self, signed_2d):
        _, recon = roundtrip(signed_2d, 32)
        np.testing.assert_array_equal(recon, signed_2d)

    def test_zeros_exact(self, zero_heavy_3d):
        _, recon = roundtrip(zero_heavy_3d, 16)
        np.testing.assert_array_equal(recon[zero_heavy_3d == 0], 0.0)

    def test_negative_zero_normalized(self):
        data = np.array([-0.0, 1.0], dtype=np.float32)
        _, recon = roundtrip(data, 16)
        assert recon[0] == 0.0

    def test_float64_path(self, wide_range_3d):
        _, recon = roundtrip(wide_range_3d, 40)
        rel = np.abs(recon - wide_range_3d) / np.abs(wide_range_3d)
        assert rel.max() <= max_relative_error(40, np.float64)

    def test_float64_precision_capped(self, wide_range_3d):
        blob, recon = roundtrip(wide_range_3d, 64)  # capped to 58 internally
        rel = np.abs(recon - wide_range_3d) / np.abs(wide_range_3d)
        assert rel.max() <= 2.0**-46

    def test_precision_controls_size(self, smooth_positive_3d):
        sizes = [len(roundtrip(smooth_positive_3d, p)[0]) for p in (12, 20, 28)]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_signed_rough_data(self, rough_1d):
        _, recon = roundtrip(rough_1d, 19)
        nz = rough_1d != 0
        rel = np.abs(recon[nz].astype(np.float64) - rough_1d[nz].astype(np.float64))
        rel /= np.abs(rough_1d[nz].astype(np.float64))
        assert rel.max() <= max_relative_error(19, np.float32)

    @pytest.mark.parametrize("entropy", ["huffman", "range"])
    def test_entropy_stages_equivalent_fidelity(self, smooth_positive_3d, entropy):
        comp = FpzipCompressor(entropy=entropy)
        blob = comp.compress(smooth_positive_3d, PrecisionBound(19))
        recon = comp.decompress(blob)
        x = smooth_positive_3d.astype(np.float64)
        rel = np.abs(recon.astype(np.float64) - x) / np.abs(x)
        assert rel.max() <= max_relative_error(19, np.float32)

    def test_entropy_stages_cross_decode(self, smooth_positive_3d):
        """The stage is recorded in the stream: any instance decodes it."""
        blob = FpzipCompressor(entropy="range").compress(
            smooth_positive_3d, PrecisionBound(16)
        )
        recon = FpzipCompressor(entropy="huffman").decompress(blob)
        assert recon.shape == smooth_positive_3d.shape

    def test_invalid_entropy(self):
        with pytest.raises(ValueError):
            FpzipCompressor(entropy="bogus")

    @given(st.integers(10, 32), st.integers(0, 2**31 - 1))
    def test_property_bound(self, p, seed):
        rng = np.random.default_rng(seed)
        data = np.exp(rng.normal(0, 3, size=123)).astype(np.float32)
        _, recon = roundtrip(data, p)
        rel = np.abs(recon.astype(np.float64) - data.astype(np.float64))
        rel /= np.abs(data.astype(np.float64))
        assert rel.max() <= max_relative_error(p, np.float32)
