"""ZFP end-to-end: accuracy-mode bound, over-preservation, precision mode."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compressors import AbsoluteBound, PrecisionBound, ZFPCompressor


def roundtrip(data, bound, mode="accuracy"):
    comp = ZFPCompressor(mode)
    blob = comp.compress(data, bound)
    return blob, comp.decompress(blob)


class TestAccuracyMode:
    @pytest.mark.parametrize("eb", [1e-5, 1e-2, 1.0])
    def test_archetypes_bounded(self, all_archetypes, eb):
        for name, data in all_archetypes.items():
            scaled = eb * max(float(np.abs(data).max()), 1e-30)
            _, recon = roundtrip(data, AbsoluteBound(scaled))
            err = np.abs(recon.astype(np.float64) - data.astype(np.float64))
            assert err.max() <= scaled, f"{name} violates eb={scaled}"

    def test_over_preservation(self, smooth_positive_3d):
        """ZFP characteristically lands well below the requested bound."""
        eb = float(smooth_positive_3d.max()) * 1e-3
        _, recon = roundtrip(smooth_positive_3d, AbsoluteBound(eb))
        err = np.abs(recon.astype(np.float64) - smooth_positive_3d.astype(np.float64))
        assert err.max() <= eb / 2

    def test_larger_bound_smaller_stream(self, smooth_positive_3d):
        m = float(smooth_positive_3d.max())
        sizes = [
            len(roundtrip(smooth_positive_3d, AbsoluteBound(m * eb))[0])
            for eb in (1e-6, 1e-4, 1e-2)
        ]
        assert sizes[0] > sizes[1] > sizes[2]

    def test_all_zero_blocks_almost_free(self):
        data = np.zeros((32, 32, 32), dtype=np.float32)
        blob, recon = roundtrip(data, AbsoluteBound(1e-6))
        np.testing.assert_array_equal(recon, 0.0)
        assert len(blob) < data.nbytes / 100

    def test_partial_blocks_cropped(self):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 1, size=(13, 6)).astype(np.float32)
        _, recon = roundtrip(data, AbsoluteBound(1e-3))
        assert recon.shape == data.shape
        assert np.abs(recon - data).max() <= 1e-3

    def test_float64(self):
        rng = np.random.default_rng(1)
        data = rng.normal(0, 1, size=(16, 16, 16))
        _, recon = roundtrip(data, AbsoluteBound(1e-9))
        assert np.abs(recon - data).max() <= 1e-9

    @given(st.integers(0, 2**31 - 1), st.floats(1e-6, 1e2))
    def test_property_bound_1d(self, seed, eb):
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 10, size=37).astype(np.float32)
        _, recon = roundtrip(data, AbsoluteBound(eb))
        assert np.abs(recon.astype(np.float64) - data.astype(np.float64)).max() <= eb


class TestPrecisionMode:
    def test_mode_bound_kinds(self):
        data = np.ones(8, dtype=np.float32)
        with pytest.raises(TypeError):
            ZFPCompressor("precision").compress(data, AbsoluteBound(1.0))
        with pytest.raises(TypeError):
            ZFPCompressor("accuracy").compress(data, PrecisionBound(16))

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            ZFPCompressor("fixed-rate")

    def test_more_planes_more_accuracy(self, smooth_positive_3d):
        errs = []
        for p in (8, 16, 24):
            _, recon = roundtrip(smooth_positive_3d, PrecisionBound(p), "precision")
            errs.append(
                np.abs(recon.astype(np.float64) - smooth_positive_3d.astype(np.float64)).max()
            )
        assert errs[0] > errs[1] > errs[2]

    def test_wide_dynamic_range_breaks_relative_bound(self):
        """The paper's core criticism of ZFP_P: small values inside a
        large-magnitude block lose all their planes."""
        data = np.full((4, 4, 4), 1e4, dtype=np.float32)
        data[0, 0, 0] = 1e-4
        _, recon = roundtrip(data, PrecisionBound(16), "precision")
        rel = abs(float(recon[0, 0, 0]) - 1e-4) / 1e-4
        assert rel > 0.5  # hopelessly unbounded relative error

    def test_names(self):
        assert ZFPCompressor("accuracy").name == "ZFP_A"
        assert ZFPCompressor("precision").name == "ZFP_P"
