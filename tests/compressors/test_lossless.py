"""Lossless DEFLATE baseline."""

import numpy as np
import pytest

from repro import AbsoluteBound, decompress
from repro.compressors.lossless import LosslessDeflate


class TestLossless:
    def test_bit_exact_roundtrip(self, all_archetypes):
        comp = LosslessDeflate()
        for name, data in all_archetypes.items():
            recon = comp.decompress(comp.compress(data))
            np.testing.assert_array_equal(recon, data, err_msg=name)
            assert recon.dtype == data.dtype

    def test_bound_argument_accepted_and_irrelevant(self, smooth_positive_3d):
        comp = LosslessDeflate()
        b1 = comp.compress(smooth_positive_3d, AbsoluteBound(1e-12))
        b2 = comp.compress(smooth_positive_3d)
        assert len(b1) == len(b2)

    def test_shuffle_helps_on_smooth_floats(self, smooth_positive_3d):
        plain = LosslessDeflate(shuffle=False).compress(smooth_positive_3d)
        shuffled = LosslessDeflate(shuffle=True).compress(smooth_positive_3d)
        assert len(shuffled) < len(plain)

    def test_intro_claim_ratio_under_two(self):
        """The paper's motivating claim on float data with random mantissas."""
        from repro.data import load_field

        data = load_field("NYX", "dark_matter_density", scale=0.5)
        blob = LosslessDeflate().compress(data)
        assert data.nbytes / len(blob) < 2.0

    def test_registry_dispatch(self, signed_2d):
        from repro import get_compressor

        blob = get_compressor("GZIP").compress(signed_2d)
        np.testing.assert_array_equal(decompress(blob), signed_2d)

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            LosslessDeflate(level=0)

    def test_float64_roundtrip(self, wide_range_3d):
        comp = LosslessDeflate()
        recon = comp.decompress(comp.compress(wide_range_3d))
        np.testing.assert_array_equal(recon, wide_range_3d)
