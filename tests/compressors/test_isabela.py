"""ISABELA: bound guarantee, index overhead ceiling, window handling."""

import numpy as np
import pytest

from repro.compressors import IsabelaCompressor, RelativeBound
from repro.encoding import Container


def roundtrip(data, br, **kw):
    comp = IsabelaCompressor(**kw)
    blob = comp.compress(data, RelativeBound(br))
    return blob, comp.decompress(blob)


class TestBound:
    @pytest.mark.parametrize("br", [1e-3, 1e-2, 1e-1])
    def test_archetypes_bounded(self, all_archetypes, br):
        for name, data in all_archetypes.items():
            _, recon = roundtrip(data, br)
            x = data.astype(np.float64)
            xd = recon.astype(np.float64)
            nz = x != 0
            rel = np.abs(xd[nz] - x[nz]) / np.abs(x[nz])
            assert rel.max() <= br, f"{name} violates {br}"

    def test_zeros_preserved(self, zero_heavy_3d):
        _, recon = roundtrip(zero_heavy_3d, 1e-2)
        np.testing.assert_array_equal(recon[zero_heavy_3d == 0], 0.0)

    def test_shapes_and_dtype_restored(self, signed_2d):
        _, recon = roundtrip(signed_2d, 1e-2)
        assert recon.shape == signed_2d.shape
        assert recon.dtype == signed_2d.dtype


class TestIndexOverhead:
    def test_ratio_ceiling_from_index(self, smooth_positive_3d):
        """log2(window) index bits per point cap ISABELA's ratio: the
        paper never observes it much above ~3."""
        blob, _ = roundtrip(smooth_positive_3d, 1e-1)
        ratio = smooth_positive_3d.nbytes / len(blob)
        assert ratio < 3.5

    def test_ratio_insensitive_to_bound(self, smooth_positive_3d):
        sizes = [len(roundtrip(smooth_positive_3d, br)[0]) for br in (1e-3, 1e-1)]
        # bound changes affect only the small correction stream
        assert sizes[0] < 2.0 * sizes[1]

    def test_index_section_dominates(self, smooth_positive_3d):
        blob, _ = roundtrip(smooth_positive_3d, 1e-2)
        box = Container.from_bytes(blob)
        index_bytes = len(box.get("index"))
        assert index_bytes > 0.4 * len(blob)


class TestWindows:
    def test_non_multiple_length(self):
        rng = np.random.default_rng(0)
        data = np.exp(rng.normal(0, 1, size=1234)).astype(np.float32)
        _, recon = roundtrip(data, 1e-2, window=256)
        rel = np.abs(recon.astype(np.float64) - data.astype(np.float64))
        rel /= np.abs(data.astype(np.float64))
        assert rel.max() <= 1e-2

    def test_window_smaller_than_default(self, rough_1d):
        _, recon = roundtrip(rough_1d, 1e-2, window=128, ncoeff=16)
        nz = rough_1d != 0
        rel = np.abs(recon[nz].astype(np.float64) - rough_1d[nz].astype(np.float64))
        rel /= np.abs(rough_1d[nz].astype(np.float64))
        assert rel.max() <= 1e-2

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            IsabelaCompressor(window=100)  # not a power of two
        with pytest.raises(ValueError):
            IsabelaCompressor(window=32)  # too small
        with pytest.raises(ValueError):
            IsabelaCompressor(ncoeff=4)
        with pytest.raises(ValueError):
            IsabelaCompressor(window=128, ncoeff=64)

    def test_sorting_makes_rough_data_splineable(self, rough_1d):
        """The defining trick: sorted windows fit a low-order spline even
        when the raw signal is noise."""
        blob, _ = roundtrip(rough_1d, 1e-2)
        box = Container.from_bytes(blob)
        # correction codes should be cheap (< 4 bits/point on average)
        assert len(box.get("codes")) < rough_1d.size / 2
