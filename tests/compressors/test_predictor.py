"""Lorenzo predictor: stencil correctness, invertibility, batching."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compressors.sz.predictor import (
    lorenzo_predict,
    lorenzo_reconstruct,
    lorenzo_residual,
)


class TestStencils:
    def test_1d_residual_is_first_difference(self):
        k = np.array([3, 5, 4, 4], dtype=np.int64)
        np.testing.assert_array_equal(lorenzo_residual(k, 1), [3, 2, -1, 0])

    def test_2d_stencil_matches_paper(self):
        # q[i,j] = k[i,j] - k[i-1,j] - k[i,j-1] + k[i-1,j-1]
        rng = np.random.default_rng(0)
        k = rng.integers(-100, 100, size=(6, 7)).astype(np.int64)
        q = lorenzo_residual(k, 2)
        kp = np.pad(k, ((1, 0), (1, 0)))
        expected = kp[1:, 1:] - kp[:-1, 1:] - kp[1:, :-1] + kp[:-1, :-1]
        np.testing.assert_array_equal(q, expected)

    def test_3d_stencil_is_seven_neighbour_lorenzo(self):
        rng = np.random.default_rng(1)
        k = rng.integers(-50, 50, size=(4, 5, 6)).astype(np.int64)
        q = lorenzo_residual(k, 3)
        kp = np.pad(k, ((1, 0),) * 3)
        expected = (
            kp[1:, 1:, 1:]
            - kp[:-1, 1:, 1:] - kp[1:, :-1, 1:] - kp[1:, 1:, :-1]
            + kp[:-1, :-1, 1:] + kp[:-1, 1:, :-1] + kp[1:, :-1, :-1]
            - kp[:-1, :-1, :-1]
        )
        np.testing.assert_array_equal(q, expected)

    def test_prediction_plus_residual_identity(self):
        rng = np.random.default_rng(2)
        k = rng.integers(-10, 10, size=(8, 8)).astype(np.int64)
        np.testing.assert_array_equal(lorenzo_predict(k, 2) + lorenzo_residual(k, 2), k)


class TestInvertibility:
    @pytest.mark.parametrize("shape,ndim", [((64,), 1), ((9, 11), 2), ((4, 5, 6), 3)])
    def test_roundtrip(self, shape, ndim):
        rng = np.random.default_rng(3)
        k = rng.integers(-(2**40), 2**40, size=shape).astype(np.int64)
        np.testing.assert_array_equal(lorenzo_reconstruct(lorenzo_residual(k, ndim), ndim), k)

    def test_batched_leading_axis(self):
        rng = np.random.default_rng(4)
        k = rng.integers(-100, 100, size=(10, 6, 6)).astype(np.int64)
        q = lorenzo_residual(k, 2)  # leading axis = batch of 10 blocks
        for b in range(10):
            np.testing.assert_array_equal(q[b], lorenzo_residual(k[b], 2))
        np.testing.assert_array_equal(lorenzo_reconstruct(q, 2), k)

    @given(
        hnp.arrays(
            np.int64,
            hnp.array_shapes(min_dims=3, max_dims=3, min_side=1, max_side=6),
            elements=st.integers(-(2**45), 2**45),
        )
    )
    def test_property_roundtrip_3d(self, k):
        np.testing.assert_array_equal(lorenzo_reconstruct(lorenzo_residual(k, 3), 3), k)


class TestValidation:
    def test_bad_ndim(self):
        with pytest.raises(ValueError):
            lorenzo_residual(np.zeros(4, dtype=np.int64), 4)
        with pytest.raises(ValueError):
            lorenzo_reconstruct(np.zeros(4, dtype=np.int64), 0)

    def test_array_shorter_than_ndim(self):
        with pytest.raises(ValueError):
            lorenzo_residual(np.zeros(4, dtype=np.int64), 2)
