"""ZFP fixed-point layer: exponents, quantization, negabinary."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compressors.zfp.fixedpoint import (
    EMPTY_EMAX,
    block_exponents,
    dequantize_blocks,
    intprec_for,
    negabinary_decode,
    negabinary_encode,
    quantize_blocks,
)


class TestExponents:
    def test_power_of_two_exact(self):
        blocks = np.array([[8.0, 1.0], [0.5, 0.25]])
        np.testing.assert_array_equal(block_exponents(blocks), [3, -1])

    def test_zero_block_sentinel(self):
        blocks = np.array([[0.0, 0.0], [1.0, 0.0]])
        emax = block_exponents(blocks)
        assert emax[0] == EMPTY_EMAX
        assert emax[1] == 0

    def test_negative_values_use_magnitude(self):
        np.testing.assert_array_equal(block_exponents(np.array([[-7.9, 1.0]])), [2])

    @given(st.floats(1e-300, 1e300))
    def test_property_bracket(self, v):
        e = int(block_exponents(np.array([[v]]))[0])
        assert 2.0**e <= v < 2.0 ** (e + 1)


class TestQuantize:
    @pytest.mark.parametrize("dtype,intprec", [(np.float32, 32), (np.float64, 62)])
    def test_intprec_for(self, dtype, intprec):
        assert intprec_for(dtype) == intprec

    def test_unsupported_dtype(self):
        with pytest.raises(TypeError):
            intprec_for(np.int32)

    def test_roundtrip_within_scale(self):
        rng = np.random.default_rng(0)
        blocks = rng.normal(0, 100, size=(20, 4, 4)).astype(np.float64)
        emax = block_exponents(blocks)
        q = quantize_blocks(blocks, emax, 62)
        back = dequantize_blocks(q, emax, 62, np.float64)
        # quantization grid is 2**(emax-58): relative error ~1e-17
        assert np.abs(back - blocks).max() <= 2.0 ** (float(emax.max()) - 57)

    def test_values_fit_headroom(self):
        blocks = np.array([[[1.999, -1.999, 0.001, 1.0]]] * 3, dtype=np.float64)
        emax = block_exponents(blocks)
        q = quantize_blocks(blocks, emax, 62)
        assert np.abs(q).max() < 2**59

    def test_zero_block_survives(self):
        blocks = np.zeros((2, 4), dtype=np.float64)
        emax = block_exponents(blocks)
        q = quantize_blocks(blocks, emax, 62)
        np.testing.assert_array_equal(q, 0)
        back = dequantize_blocks(q, emax, 62, np.float32)
        np.testing.assert_array_equal(back, 0.0)
        assert np.isfinite(back).all()


class TestNegabinary:
    def test_known_values(self):
        # negabinary of 0 is 0; sign lives in alternating bit weights
        x = np.array([0], dtype=np.int64)
        assert negabinary_encode(x)[0] == 0

    def test_roundtrip_extremes(self):
        x = np.array([0, 1, -1, 2**61, -(2**61)], dtype=np.int64)
        np.testing.assert_array_equal(negabinary_decode(negabinary_encode(x)), x)

    @given(st.lists(st.integers(-(2**62), 2**62), max_size=100))
    def test_property_roundtrip(self, raw):
        x = np.array(raw, dtype=np.int64)
        np.testing.assert_array_equal(negabinary_decode(negabinary_encode(x)), x)

    def test_small_magnitudes_use_low_planes(self):
        # |x| < 2**k implies negabinary fits in ~k+2 bits -- the property
        # embedded coding relies on to drop low planes safely.
        x = np.arange(-128, 129, dtype=np.int64)
        nb = negabinary_encode(x)
        assert int(nb.max()) < 1 << 10
