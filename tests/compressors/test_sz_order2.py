"""Second-order Lorenzo prediction (SZ 1.4's layer-2 option)."""

import numpy as np
import pytest

from repro.compressors import AbsoluteBound, SZCompressor
from repro.compressors.sz.predictor import lorenzo_predict, lorenzo_reconstruct, lorenzo_residual


class TestPredictorOrder2:
    def test_1d_stencil_is_second_difference(self):
        k = np.array([0, 1, 4, 9, 16], dtype=np.int64)  # i^2
        q = lorenzo_residual(k, 1, order=2)
        # second difference of i^2 is the constant 2 (after boundary terms)
        np.testing.assert_array_equal(q[2:], 2)

    def test_linear_data_predicted_exactly(self):
        k = (7 * np.arange(100)).astype(np.int64)
        q = lorenzo_residual(k, 1, order=2)
        assert (q[2:] == 0).all()
        pred = lorenzo_predict(k, 1, order=2)
        np.testing.assert_array_equal(pred[2:], k[2:])

    @pytest.mark.parametrize("shape,ndim", [((64,), 1), ((9, 11), 2), ((4, 5, 6), 3)])
    def test_roundtrip(self, shape, ndim):
        rng = np.random.default_rng(0)
        k = rng.integers(-(2**30), 2**30, size=shape).astype(np.int64)
        q = lorenzo_residual(k, ndim, order=2)
        np.testing.assert_array_equal(lorenzo_reconstruct(q, ndim, order=2), k)

    def test_bad_order(self):
        with pytest.raises(ValueError):
            lorenzo_residual(np.zeros(4, dtype=np.int64), 1, order=3)
        with pytest.raises(ValueError):
            SZCompressor(order=0)


class TestSZOrder2:
    def test_bound_holds(self, all_archetypes):
        comp = SZCompressor(order=2)
        for name, data in all_archetypes.items():
            eb = 1e-3 * max(float(np.abs(data).max()), 1e-30)
            recon = comp.decompress(comp.compress(data, AbsoluteBound(eb)))
            err = np.abs(recon.astype(np.float64) - data.astype(np.float64))
            assert err.max() <= eb, name

    def test_order2_wins_on_smooth_ramps(self):
        i = np.arange(1 << 15, dtype=np.float64)
        data = (1e-5 * i * i).astype(np.float32)
        b1 = SZCompressor(order=1).compress(data, AbsoluteBound(1e-2))
        b2 = SZCompressor(order=2).compress(data, AbsoluteBound(1e-2))
        assert len(b2) < len(b1)

    def test_order1_wins_on_noisy_data(self, rough_1d):
        eb = float(rough_1d.std()) * 1e-3
        b1 = SZCompressor(order=1).compress(rough_1d, AbsoluteBound(eb))
        b2 = SZCompressor(order=2).compress(rough_1d, AbsoluteBound(eb))
        assert len(b1) < len(b2)  # differencing amplifies noise

    def test_order_recorded_in_stream(self, smooth_positive_3d):
        from repro.encoding import Container

        comp = SZCompressor(order=2)
        blob = comp.compress(smooth_positive_3d, AbsoluteBound(1e-3))
        assert Container.from_bytes(blob).get_u64("order") == 2
        # a fresh order-1 instance still decodes it correctly (stream wins)
        recon = SZCompressor(order=1).decompress(blob)
        assert np.abs(recon - smooth_positive_3d).max() <= 1e-3
