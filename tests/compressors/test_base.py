"""Bound types, input validation, registry."""

import numpy as np
import pytest

from repro import available_compressors, get_compressor, register_compressor
from repro.compressors import (
    AbsoluteBound,
    PrecisionBound,
    RelativeBound,
    SZCompressor,
    UnsupportedBound,
)
from repro.compressors.base import Compressor


class TestBounds:
    @pytest.mark.parametrize("cls", [AbsoluteBound, RelativeBound])
    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_nonpositive_rejected(self, cls, bad):
        with pytest.raises(ValueError):
            cls(bad)

    def test_relative_bound_below_one(self):
        with pytest.raises(ValueError, match="< 1"):
            RelativeBound(1.0)
        RelativeBound(0.999)  # fine

    def test_precision_bound_integral(self):
        with pytest.raises(ValueError):
            PrecisionBound(3.5)
        with pytest.raises(ValueError):
            PrecisionBound(1)
        with pytest.raises(ValueError):
            PrecisionBound(65)
        assert PrecisionBound(19).bits == 19

    def test_bounds_are_frozen(self):
        b = AbsoluteBound(0.5)
        with pytest.raises(AttributeError):
            b.value = 1.0


class TestInputValidation:
    def setup_method(self):
        self.comp = SZCompressor()
        self.bound = AbsoluteBound(1e-3)

    def test_wrong_bound_kind(self):
        data = np.ones(10, dtype=np.float32)
        with pytest.raises(UnsupportedBound, match="SZ_ABS"):
            self.comp.compress(data, RelativeBound(1e-3))

    def test_integer_dtype_rejected(self):
        with pytest.raises(TypeError):
            self.comp.compress(np.ones(10, dtype=np.int32), self.bound)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            self.comp.compress(np.zeros(0, dtype=np.float32), self.bound)

    def test_4d_rejected(self):
        with pytest.raises(ValueError):
            self.comp.compress(np.zeros((2, 2, 2, 2), dtype=np.float32), self.bound)

    def test_nan_preserved_bit_exactly(self):
        # SZ_ABS routes non-finite points through the safeguard patch
        # channel instead of rejecting them (see tests/safeguards/
        # test_sz_nonfinite.py for the full matrix).
        data = np.ones(10, dtype=np.float32)
        data[3] = np.nan
        recon = self.comp.decompress(self.comp.compress(data, self.bound))
        assert np.isnan(recon[3])
        assert np.abs(recon[~np.isnan(data)] - 1.0).max() <= 1e-3

    def test_inf_preserved_bit_exactly(self):
        data = np.ones(10, dtype=np.float64)
        data[0] = np.inf
        recon = self.comp.decompress(self.comp.compress(data, self.bound))
        assert recon[0] == np.inf
        assert np.abs(recon[1:] - 1.0).max() <= 1e-3

    def test_noncontiguous_input_accepted(self):
        data = np.ones((20, 20), dtype=np.float32)[::2, ::2]
        blob = self.comp.compress(data, self.bound)
        assert self.comp.decompress(blob).shape == (10, 10)

    def test_wrong_codec_stream_rejected(self):
        data = np.ones(16, dtype=np.float32)
        blob = self.comp.compress(data, self.bound)
        from repro.compressors.zfp import ZFPCompressor

        with pytest.raises(ValueError, match="SZ_ABS"):
            ZFPCompressor("accuracy").decompress(blob)


class TestRegistry:
    def test_paper_compressors_registered(self):
        names = available_compressors()
        for expected in ("SZ_ABS", "SZ_PWR", "SZ_T", "ZFP_A", "ZFP_P", "ZFP_T",
                         "FPZIP", "ISABELA"):
            assert expected in names

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="known"):
            get_compressor("NOPE")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_compressor("SZ_ABS", SZCompressor)

    def test_factories_return_fresh_instances(self):
        assert get_compressor("SZ_T") is not get_compressor("SZ_T")

    def test_every_factory_is_a_compressor(self):
        for name in available_compressors():
            assert isinstance(get_compressor(name), Compressor)
