"""ZFP lifting transform: near-invertibility, energy compaction, ordering."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compressors.zfp.transform import (
    fwd_lift,
    fwd_xform,
    inv_lift,
    inv_xform,
    sequency_order,
)


class TestLift:
    def test_requires_length_four_axis(self):
        with pytest.raises(ValueError):
            fwd_lift(np.zeros((2, 5), dtype=np.int64), 1)
        with pytest.raises(ValueError):
            inv_lift(np.zeros((3,), dtype=np.int64), 0)

    def test_constant_block_maps_to_dc_only(self):
        a = np.full((1, 4), 1 << 20, dtype=np.int64)
        out = fwd_xform(a)
        assert out[0, 0] != 0
        np.testing.assert_array_equal(out[0, 1:], 0)

    def test_roundtrip_error_is_tiny(self):
        # The integer lift discards low bits; inv(fwd(x)) must stay within
        # a few units of x (ZFP's 2*(d+1) spare planes absorb this).
        rng = np.random.default_rng(0)
        for ndim in (1, 2, 3):
            a = rng.integers(-(2**40), 2**40, size=(50,) + (4,) * ndim).astype(np.int64)
            back = inv_xform(fwd_xform(a))
            assert np.abs(back - a).max() <= 2 ** (2 * ndim)

    def test_linear_ramp_compacts_energy(self):
        ramp = np.arange(4, dtype=np.int64)[None, :] * (1 << 16)
        out = fwd_xform(ramp)
        # DC and first AC dominate; highest-frequency coefficient is small.
        assert abs(int(out[0, 3])) < abs(int(out[0, 1]))

    @given(
        hnp.arrays(
            np.int64, (3, 4, 4),
            elements=st.integers(-(2**50), 2**50),
        )
    )
    def test_property_roundtrip_2d(self, a):
        back = inv_xform(fwd_xform(a))
        assert np.abs(back - a).max() <= 16


class TestSequencyOrder:
    @pytest.mark.parametrize("ndim,n", [(1, 4), (2, 16), (3, 64)])
    def test_is_permutation(self, ndim, n):
        perm, inv = sequency_order(ndim)
        assert sorted(perm.tolist()) == list(range(n))
        np.testing.assert_array_equal(perm[inv], np.arange(n))

    def test_dc_coefficient_first(self):
        for ndim in (1, 2, 3):
            perm, _ = sequency_order(ndim)
            assert perm[0] == 0

    def test_total_sequency_nondecreasing(self):
        perm, _ = sequency_order(3)
        idx = np.indices((4, 4, 4)).reshape(3, -1)
        total = idx.sum(axis=0)[perm]
        assert (np.diff(total) >= 0).all()

    def test_bad_ndim(self):
        with pytest.raises(ValueError):
            sequency_order(4)
