"""SZ_PWR blockwise mode: per-block bounds, zeros, spiky-block weakness."""

import numpy as np
import pytest

from repro.compressors import RelativeBound, SZPointwiseRelative
from repro.encoding import Container


def roundtrip(data, br, **kw):
    comp = SZPointwiseRelative(**kw)
    blob = comp.compress(data, RelativeBound(br))
    return blob, comp.decompress(blob)


class TestBound:
    @pytest.mark.parametrize("br", [1e-4, 1e-2, 1e-1])
    def test_relative_bound_on_nonzero_points(self, all_archetypes, br):
        for name, data in all_archetypes.items():
            _, recon = roundtrip(data, br)
            x = data.astype(np.float64)
            xd = recon.astype(np.float64)
            nz = x != 0
            rel = np.abs(xd[nz] - x[nz]) / np.abs(x[nz])
            assert rel.max() <= br, f"{name} violates pw-rel bound {br}"

    def test_zeros_preserved_exactly(self, zero_heavy_3d):
        _, recon = roundtrip(zero_heavy_3d, 1e-2)
        np.testing.assert_array_equal(recon[zero_heavy_3d == 0], 0.0)

    def test_all_zero_input(self):
        # 32x32 rather than 16x16: the v2 container's fixed checksum
        # overhead (~4 B/section) would dominate a 1 KiB input.
        data = np.zeros((32, 32), dtype=np.float32)
        blob, recon = roundtrip(data, 1e-3)
        np.testing.assert_array_equal(recon, data)
        assert len(blob) < data.nbytes / 3


class TestBlockwiseWeakness:
    """The paper's criticisms of the blockwise design, reproduced."""

    def test_spiky_block_degrades_ratio(self):
        rng = np.random.default_rng(0)
        base = np.exp(rng.normal(3, 0.1, size=(32, 32, 32))).astype(np.float32)
        spiky = base.copy()
        # One tiny value per block collapses that block's bound.
        spiky[::8, ::8, ::8] = 1e-6
        br = 1e-2
        blob_smooth, _ = roundtrip(base, br)
        blob_spiky, _ = roundtrip(spiky, br)
        assert len(blob_spiky) > 1.5 * len(blob_smooth)

    def test_sz_t_beats_sz_pwr_on_smooth_data(self, smooth_positive_3d):
        from repro import RelativeBound as RB, get_compressor

        br = 1e-3
        blob_pwr, _ = roundtrip(smooth_positive_3d, br)
        sz_t = get_compressor("SZ_T")
        blob_t = sz_t.compress(smooth_positive_3d, RB(br))
        assert len(blob_t) < len(blob_pwr)

    def test_block_bound_table_scales_with_blocks(self, smooth_positive_3d):
        blob, _ = roundtrip(smooth_positive_3d, 1e-2, block=4)
        box = Container.from_bytes(blob)
        edge = box.get_u64("edge")
        assert edge == 4
        nblocks = box.get_u64("nblocks")
        assert nblocks == np.prod([-(-s // 4) for s in smooth_positive_3d.shape])


class TestConfiguration:
    def test_default_edges_by_ndim(self):
        comp = SZPointwiseRelative()
        assert comp._edge(1) == 256
        assert comp._edge(2) == 16
        assert comp._edge(3) == 8

    def test_explicit_block_edge(self, signed_2d):
        _, recon = roundtrip(signed_2d, 1e-2, block=8)
        assert recon.shape == signed_2d.shape

    def test_invalid_block_edge(self):
        with pytest.raises(ValueError):
            SZPointwiseRelative(block=1)

    def test_non_multiple_shapes_padded_and_cropped(self):
        rng = np.random.default_rng(1)
        data = np.abs(rng.normal(5, 1, size=(13, 17))).astype(np.float32)
        _, recon = roundtrip(data, 1e-2, block=8)
        assert recon.shape == data.shape
        rel = np.abs(recon - data) / np.abs(data)
        assert rel.max() <= 1e-2
