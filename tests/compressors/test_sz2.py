"""SZ2 hybrid predictor: bound, selector behaviour, SZ2_T wrapping."""

import numpy as np
import pytest

from repro import RelativeBound, decompress, get_compressor
from repro.compressors import AbsoluteBound, SZ2Compressor, SZCompressor
from repro.encoding import Container


def roundtrip(data, eb, **kw):
    comp = SZ2Compressor(**kw)
    blob = comp.compress(data, AbsoluteBound(eb))
    return blob, comp.decompress(blob)


@pytest.fixture(scope="module")
def gradient_3d():
    rng = np.random.default_rng(0)
    idx = np.indices((32, 32, 32)).astype(np.float64)
    return (3 * idx[0] + 2 * idx[1] - idx[2]
            + rng.normal(0, 0.4, (32, 32, 32))).astype(np.float32)


class TestBound:
    @pytest.mark.parametrize("eb", [1e-4, 1e-2, 1.0])
    def test_archetypes_bounded(self, all_archetypes, eb):
        for name, data in all_archetypes.items():
            scaled = eb * max(float(np.abs(data).max()), 1e-30)
            _, recon = roundtrip(data, scaled)
            err = np.abs(recon.astype(np.float64) - data.astype(np.float64))
            assert err.max() <= scaled, f"{name} violates eb={scaled}"
            assert recon.shape == data.shape and recon.dtype == data.dtype

    def test_gradient_data_bounded(self, gradient_3d):
        _, recon = roundtrip(gradient_3d, 0.05)
        assert np.abs(recon.astype(np.float64) - gradient_3d.astype(np.float64)).max() <= 0.05

    def test_partial_blocks(self):
        rng = np.random.default_rng(1)
        data = rng.normal(0, 1, size=(13, 7)).astype(np.float32)
        _, recon = roundtrip(data, 1e-3)
        assert recon.shape == data.shape
        assert np.abs(recon - data).max() <= 1e-3


class TestSelector:
    def test_regression_chosen_on_gradient_blocks(self, gradient_3d):
        blob, _ = roundtrip(gradient_3d, 0.1)
        box = Container.from_bytes(blob)
        nblocks = box.get_u64("nblocks")
        use_reg = np.unpackbits(
            np.frombuffer(__import__("zlib").decompress(box.get("selector")), np.uint8),
            count=nblocks,
        )
        assert use_reg.mean() > 0.5  # gradients: regression dominates

    def test_lorenzo_chosen_on_steplike_blocks(self):
        # piecewise-constant data: Lorenzo residuals are ~zero, regression
        # cannot represent the steps
        data = np.repeat(np.arange(16, dtype=np.float32), 256).reshape(64, 64)
        blob, _ = roundtrip(data, 1e-3)
        box = Container.from_bytes(blob)
        nblocks = box.get_u64("nblocks")
        use_reg = np.unpackbits(
            np.frombuffer(__import__("zlib").decompress(box.get("selector")), np.uint8),
            count=nblocks,
        )
        assert use_reg.mean() < 0.5

    def test_beats_plain_sz_on_gradients(self, gradient_3d):
        eb = 0.1
        blob2, _ = roundtrip(gradient_3d, eb)
        blob1 = SZCompressor().compress(gradient_3d, AbsoluteBound(eb))
        assert len(blob2) < len(blob1)

    def test_custom_edge(self, gradient_3d):
        _, recon = roundtrip(gradient_3d, 0.1, edge=8)
        assert recon.shape == gradient_3d.shape

    def test_invalid_edge(self):
        with pytest.raises(ValueError):
            SZ2Compressor(edge=2)


class TestSZ2T:
    def test_registered_and_bounded(self, smooth_positive_3d):
        comp = get_compressor("SZ2_T")
        assert comp.name == "SZ2_T"
        blob = comp.compress(smooth_positive_3d, RelativeBound(1e-2))
        recon = decompress(blob)
        x = smooth_positive_3d.astype(np.float64)
        xd = recon.astype(np.float64)
        nz = x != 0
        assert (np.abs(xd[nz] - x[nz]) / np.abs(x[nz])).max() <= 1e-2

    def test_sz2_t_wins_on_exponential_ramps(self):
        """Exponential ramps are linear in log space: SZ2_T's regression
        blocks should beat SZ_T's Lorenzo coding."""
        idx = np.indices((32, 32, 32)).astype(np.float64)
        rng = np.random.default_rng(2)
        data = np.exp(0.1 * idx[0] + 0.05 * idx[1]
                      + rng.normal(0, 0.02, (32, 32, 32))).astype(np.float32)
        br = RelativeBound(1e-3)
        blob2 = get_compressor("SZ2_T").compress(data, br)
        blob1 = get_compressor("SZ_T").compress(data, br)
        assert len(blob2) < len(blob1)
