"""Embedded group-tested coder: exactness at full precision, prefix property."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compressors.zfp.embedded import decode_blocks, encode_blocks


def roundtrip(nb, nplanes, intprec):
    payload, lens = encode_blocks(nb, nplanes, intprec)
    return decode_blocks(payload, lens, nplanes, intprec, nb.shape[1]), lens


class TestExactRoundtrip:
    def test_full_planes_lossless(self):
        rng = np.random.default_rng(0)
        nb = rng.integers(0, 2**32, size=(40, 16)).astype(np.uint64)
        nplanes = np.full(40, 32, dtype=np.int64)
        out, _ = roundtrip(nb, nplanes, 32)
        np.testing.assert_array_equal(out, nb)

    def test_64_coefficients_3d_blocks(self):
        rng = np.random.default_rng(1)
        nb = rng.integers(0, 2**30, size=(10, 64)).astype(np.uint64)
        nplanes = np.full(10, 30, dtype=np.int64)
        out, _ = roundtrip(nb, nplanes, 30)
        np.testing.assert_array_equal(out, nb)

    def test_empty_blocks_emit_nothing(self):
        nb = np.zeros((5, 16), dtype=np.uint64)
        nplanes = np.zeros(5, dtype=np.int64)
        payload, lens = encode_blocks(nb, nplanes, 32)
        assert payload == b""
        np.testing.assert_array_equal(lens, 0)
        out = decode_blocks(payload, lens, nplanes, 32, 16)
        np.testing.assert_array_equal(out, 0)

    def test_mixed_plane_counts(self):
        rng = np.random.default_rng(2)
        nb = rng.integers(0, 2**20, size=(8, 16)).astype(np.uint64)
        nplanes = np.array([0, 5, 10, 20, 20, 3, 0, 20], dtype=np.int64)
        out, _ = roundtrip(nb, nplanes, 20)
        for b in range(8):
            kmin = 20 - nplanes[b]
            mask = ~np.uint64((1 << kmin) - 1)
            np.testing.assert_array_equal(out[b], nb[b] & mask)

    def test_single_block_single_coeff(self):
        nb = np.array([[7]], dtype=np.uint64)
        out, _ = roundtrip(nb, np.array([3]), 3)
        np.testing.assert_array_equal(out, nb)

    @given(
        st.integers(0, 2**31 - 1),
        st.integers(1, 12),
        st.sampled_from([4, 16, 64]),
    )
    def test_property_truncation_prefix(self, seed, planes, ncoef):
        """Decoding p planes recovers exactly the top-p bit planes."""
        intprec = 16
        rng = np.random.default_rng(seed)
        nb = rng.integers(0, 1 << intprec, size=(6, ncoef)).astype(np.uint64)
        nplanes = np.full(6, planes, dtype=np.int64)
        out, _ = roundtrip(nb, nplanes, intprec)
        kmin = intprec - planes
        mask = ~np.uint64((1 << kmin) - 1)
        np.testing.assert_array_equal(out, nb & mask)


class TestBitBudget:
    def test_sparse_planes_cost_little(self):
        # One significant coefficient: group testing should emit far fewer
        # bits than verbatim coding would.
        nb = np.zeros((1, 64), dtype=np.uint64)
        nb[0, 0] = 1 << 29
        nplanes = np.array([30], dtype=np.int64)
        _, lens = encode_blocks(nb, nplanes, 30)
        assert int(lens[0]) < 30 * 64 / 4

    def test_dense_blocks_cost_more_than_sparse(self):
        rng = np.random.default_rng(3)
        sparse = np.zeros((1, 64), dtype=np.uint64)
        sparse[0, :2] = rng.integers(1 << 28, 1 << 29, 2)
        dense = rng.integers(1 << 28, 1 << 29, size=(1, 64)).astype(np.uint64)
        nplanes = np.array([30], dtype=np.int64)
        _, lens_sparse = encode_blocks(sparse, nplanes, 30)
        _, lens_dense = encode_blocks(dense, nplanes, 30)
        assert int(lens_dense[0]) > int(lens_sparse[0])

    def test_too_many_coefficients_rejected(self):
        with pytest.raises(ValueError):
            encode_blocks(np.zeros((1, 65), dtype=np.uint64), np.array([1]), 32)

    def test_lens_match_payload(self):
        rng = np.random.default_rng(4)
        nb = rng.integers(0, 2**16, size=(12, 16)).astype(np.uint64)
        nplanes = np.full(12, 16, dtype=np.int64)
        payload, lens = encode_blocks(nb, nplanes, 16)
        assert len(payload) == -(-int(lens.sum()) // 8)
