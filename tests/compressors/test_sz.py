"""SZ absolute-error mode: bound guarantees, side channels, stages."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compressors import AbsoluteBound, SZCompressor
from repro.encoding import Container


def roundtrip(data, eb, **kw):
    comp = SZCompressor(**kw)
    blob = comp.compress(data, AbsoluteBound(eb))
    return blob, comp.decompress(blob)


class TestBoundGuarantee:
    @pytest.mark.parametrize("eb", [1e-6, 1e-3, 1e-1, 10.0])
    def test_archetypes_strictly_bounded(self, all_archetypes, eb):
        for name, data in all_archetypes.items():
            blob, recon = roundtrip(data, eb)
            err = np.abs(recon.astype(np.float64) - data.astype(np.float64))
            assert err.max() <= eb, f"{name} violates bound at eb={eb}"
            assert recon.shape == data.shape and recon.dtype == data.dtype

    def test_float64_data(self):
        rng = np.random.default_rng(0)
        data = rng.normal(0, 1, size=(16, 16, 16))
        _, recon = roundtrip(data, 1e-9)
        assert np.abs(recon - data).max() <= 1e-9

    def test_extreme_values_via_patch_channel(self):
        data = np.array([1e300, -1e300, 0.0, 1.0], dtype=np.float64)
        blob, recon = roundtrip(data, 1e-6)
        # risky points are stored verbatim -> exact
        np.testing.assert_array_equal(recon[:2], data[:2])
        assert np.abs(recon - data).max() <= 1e-6

    def test_constant_data(self):
        data = np.full((32, 32), 3.25, dtype=np.float32)
        blob, recon = roundtrip(data, 1e-4)
        assert np.abs(recon - data).max() <= 1e-4
        assert len(blob) < data.nbytes / 10  # constant compresses hard

    @given(
        st.floats(1e-8, 1e3),
        st.integers(0, 2**31 - 1),
    )
    def test_property_bound(self, eb, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 10, size=257).astype(np.float32)
        _, recon = roundtrip(data, eb)
        assert np.abs(recon.astype(np.float64) - data.astype(np.float64)).max() <= eb


class TestCompressionBehaviour:
    def test_smooth_data_beats_rough_data(self, smooth_positive_3d, rough_1d):
        eb_smooth = float(smooth_positive_3d.std()) * 1e-3
        eb_rough = float(rough_1d.std()) * 1e-3
        blob_s, _ = roundtrip(smooth_positive_3d, eb_smooth)
        blob_r, _ = roundtrip(rough_1d, eb_rough)
        cr_s = smooth_positive_3d.nbytes / len(blob_s)
        cr_r = rough_1d.nbytes / len(blob_r)
        assert cr_s > cr_r

    def test_larger_bound_compresses_more(self, smooth_positive_3d):
        sizes = []
        for eb in (1e-5, 1e-3, 1e-1):
            blob, _ = roundtrip(smooth_positive_3d, eb)
            sizes.append(len(blob))
        assert sizes[0] > sizes[1] > sizes[2]

    def test_small_radius_forces_escapes(self, rough_1d):
        eb = 1e-4
        blob_small, recon = roundtrip(rough_1d, eb, radius=3)
        err = np.abs(recon.astype(np.float64) - rough_1d.astype(np.float64))
        assert err.max() <= eb  # escapes keep the bound
        box = Container.from_bytes(blob_small)
        assert box.get_u64("n_esc") > 0

    def test_stage3_flag_recorded(self, smooth_positive_3d):
        blob, _ = roundtrip(smooth_positive_3d, 1e-3, use_stage3=False)
        assert Container.from_bytes(blob).get_u64("stage3") == 0

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            SZCompressor(radius=0)


class TestStreamIntegrity:
    def test_corrupt_escape_channel_detected(self, signed_2d):
        comp = SZCompressor(radius=3)
        blob = comp.compress(signed_2d, AbsoluteBound(1e-3))
        box = Container.from_bytes(blob)
        bad = Container(box.codec)
        for key in box.keys():
            if key == "n_esc":
                bad.put_u64("n_esc", box.get_u64("n_esc") + 1)
            else:
                bad.put(key, box.get(key))
        with pytest.raises(ValueError, match="escape"):
            comp.decompress(bad.to_bytes())

    def test_decompress_is_deterministic(self, smooth_positive_3d):
        comp = SZCompressor()
        blob = comp.compress(smooth_positive_3d, AbsoluteBound(1e-3))
        a = comp.decompress(blob)
        b = comp.decompress(blob)
        np.testing.assert_array_equal(a, b)

    def test_compress_is_deterministic(self, signed_2d):
        comp = SZCompressor()
        b1 = comp.compress(signed_2d, AbsoluteBound(1e-2))
        b2 = comp.compress(signed_2d, AbsoluteBound(1e-2))
        assert b1 == b2


class TestCoderEquivalence:
    """Whole-pipeline byte identity under the retained reference coder.

    Streams written with the vectorized Huffman codec must be identical,
    byte for byte, to streams written with the pre-vectorization
    reference implementation -- across dimensionalities, predictor
    orders and dtypes -- so old archives decode and new archives are
    reproducible by either implementation.
    """

    @pytest.mark.parametrize("shape", [(4000,), (64, 64), (16, 16, 16)])
    @pytest.mark.parametrize("order", [1, 2])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_blob_byte_identical(self, shape, order, dtype):
        from repro.encoding.huffman_ref import ReferenceHuffmanCodec

        rng = np.random.default_rng(int(np.prod(shape)) + order)
        data = np.cumsum(rng.normal(0, 1, size=shape), axis=-1).astype(dtype)
        fast = SZCompressor(order=order)
        ref = SZCompressor(order=order)
        ref._huffman = ReferenceHuffmanCodec()
        blob_fast = fast.compress(data, AbsoluteBound(1e-3))
        blob_ref = ref.compress(data, AbsoluteBound(1e-3))
        assert blob_fast == blob_ref
        # Each decoder reads the other's stream to the same array.
        np.testing.assert_array_equal(fast.decompress(blob_ref),
                                      ref.decompress(blob_fast))

    def test_compress_verified_matches_decompress(self):
        rng = np.random.default_rng(7)
        data = rng.normal(0, 50, size=(32, 32)).astype(np.float32)
        comp = SZCompressor()
        blob, recon = comp.compress_verified(data, AbsoluteBound(1e-2))
        np.testing.assert_array_equal(recon, comp.decompress(blob))
