"""Integration matrix: every compressor x every data archetype x dtypes.

This is the broad safety net: whatever combination a downstream user
throws at the library, the advertised error semantics must hold and the
stream must round-trip through the generic ``decompress`` dispatch.
"""

import numpy as np
import pytest

from repro import (
    AbsoluteBound,
    PrecisionBound,
    RateBound,
    RelativeBound,
    available_compressors,
    decompress,
    get_compressor,
)
from repro.compressors.fpzip import max_relative_error

REL = 1e-2
PREC = 16


def compressor_for(name: str):
    """A compress-capable instance of every registry entry.

    ``SAFE``'s registry entry is decode-only (it cannot know the inner
    codec or safeguard stack); the matrix exercises it wrapped around
    ``SZ_T`` with a matching rel safeguard.
    """
    if name == "SAFE":
        from repro.safeguards import SafeguardedCompressor

        return SafeguardedCompressor("SZ_T", [f"rel:{REL!r}"])
    return get_compressor(name)


def default_bound(name: str, data: np.ndarray):
    """A sensible mid-strength bound of each compressor's native kind."""
    comp = compressor_for(name)
    if RelativeBound in comp.supported_bounds:
        return RelativeBound(REL)
    if AbsoluteBound in comp.supported_bounds:
        scale = float(np.abs(data).max()) or 1.0
        return AbsoluteBound(REL * scale)
    if RateBound in comp.supported_bounds:
        return RateBound(16)
    return PrecisionBound(PREC)


@pytest.mark.parametrize("name", sorted(set(available_compressors())))
def test_every_compressor_on_every_archetype(name, all_archetypes):
    comp = compressor_for(name)
    for arch, data in all_archetypes.items():
        if name == "ZFP_P" and arch == "zero_heavy_3d":
            pass  # precision mode legitimately mangles mixed-range blocks
        bound = default_bound(name, data)
        blob = comp.compress(data, bound)
        recon = decompress(blob)  # generic dispatch must resolve the codec
        assert recon.shape == data.shape
        assert recon.dtype == data.dtype
        assert np.isfinite(recon).all(), f"{name} on {arch} produced non-finite values"

        x = data.astype(np.float64)
        xd = recon.astype(np.float64)
        if isinstance(bound, AbsoluteBound):
            assert np.abs(xd - x).max() <= bound.value, f"{name} on {arch}"
        elif isinstance(bound, RelativeBound):
            nz = x != 0
            rel = np.abs(xd[nz] - x[nz]) / np.abs(x[nz])
            assert rel.max() <= bound.value, f"{name} on {arch}"
        elif name == "FPZIP":
            nz = x != 0
            rel = np.abs(xd[nz] - x[nz]) / np.abs(x[nz])
            assert rel.max() <= max_relative_error(PREC, data.dtype), f"{name} on {arch}"


@pytest.mark.parametrize("name", ["SZ_T", "ZFP_T", "SZ_PWR", "ISABELA"])
def test_relative_compressors_scale_invariance(name, smooth_positive_3d):
    """Point-wise relative control must be (nearly) scale-free: rescaling
    the data by a power of two leaves the relative errors bounded and the
    stream size almost unchanged."""
    comp = get_compressor(name)
    blob1 = comp.compress(smooth_positive_3d, RelativeBound(REL))
    scaled = smooth_positive_3d * np.float32(2.0**20)
    blob2 = comp.compress(scaled, RelativeBound(REL))
    assert abs(len(blob1) - len(blob2)) / len(blob1) < 0.05
    recon = get_compressor(name).decompress(blob2)
    rel = np.abs(recon.astype(np.float64) - scaled.astype(np.float64))
    rel /= np.abs(scaled.astype(np.float64))
    assert rel.max() <= REL


@pytest.mark.parametrize("name", sorted(set(available_compressors())))
def test_streams_self_identify(name, smooth_positive_3d):
    from repro import Container

    comp = compressor_for(name)
    blob = comp.compress(smooth_positive_3d, default_bound(name, smooth_positive_3d))
    assert Container.from_bytes(blob).codec == name
