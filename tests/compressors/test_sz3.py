"""SZ3 hierarchical-interpolation compressor."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import RelativeBound, decompress, get_compressor
from repro.compressors import AbsoluteBound, SZ3Compressor, SZCompressor
from repro.compressors.sz.sz3 import _predict_line, _root_level, _traverse
from repro.encoding import Container


def roundtrip(data, eb, **kw):
    comp = SZ3Compressor(**kw)
    blob = comp.compress(data, AbsoluteBound(eb))
    return blob, comp.decompress(blob)


class TestTraversal:
    @pytest.mark.parametrize(
        "shape", [(37,), (13, 29), (9, 17, 21), (64, 64), (4, 4, 4), (3, 5)]
    )
    def test_full_coverage_exact_reconstruction(self, shape):
        """The traversal must reproduce k exactly for any shape (no index
        visited twice inconsistently, none missed)."""
        rng = np.random.default_rng(0)
        k = rng.integers(-(2**40), 2**40, size=shape).astype(np.int64)
        level = _root_level(shape)
        q = np.zeros_like(k)
        _traverse(k, q, level, cubic=True, encode=True)
        k2 = np.zeros_like(k)
        _traverse(k2, q, level, cubic=True, encode=False)
        np.testing.assert_array_equal(k2, k)

    def test_linear_kernel_coverage(self):
        rng = np.random.default_rng(1)
        k = rng.integers(-1000, 1000, size=(11, 23)).astype(np.int64)
        q = np.zeros_like(k)
        _traverse(k, q, _root_level(k.shape), cubic=False, encode=True)
        k2 = np.zeros_like(k)
        _traverse(k2, q, _root_level(k.shape), cubic=False, encode=False)
        np.testing.assert_array_equal(k2, k)

    def test_predict_line_linear_exact_on_ramps(self):
        E = (10 * np.arange(8, dtype=np.int64))[None, :]
        pred = _predict_line(E, 7, cubic=False)
        np.testing.assert_array_equal(pred[0], 10 * np.arange(7) + 5)

    def test_predict_line_cubic_exact_on_cubics(self):
        # cubic kernel reproduces polynomials of degree <= 3 at midpoints
        i = np.arange(0, 32, 2, dtype=np.int64)
        E = (i**3)[None, :] * 8  # scaled so midpoint values are integers
        pred = _predict_line(E, E.shape[-1] - 1, cubic=True)
        mid = np.arange(1, 31, 2, dtype=np.int64)
        exact = (mid**3)[None, :] * 8
        interior = slice(1, E.shape[-1] - 3 + 1)
        np.testing.assert_array_equal(pred[0, interior], exact[0, interior])

    def test_root_level_bounds(self):
        assert _root_level((64, 64, 64)) >= 4
        assert _root_level((3, 3)) >= 0
        assert _root_level((1 << 20,)) <= 6


class TestBound:
    @pytest.mark.parametrize("interp", ["cubic", "linear"])
    @pytest.mark.parametrize("eb", [1e-4, 1e-2, 1.0])
    def test_archetypes_bounded(self, all_archetypes, interp, eb):
        for name, data in all_archetypes.items():
            scaled = eb * max(float(np.abs(data).max()), 1e-30)
            _, recon = roundtrip(data, scaled, interp=interp)
            err = np.abs(recon.astype(np.float64) - data.astype(np.float64))
            assert err.max() <= scaled, f"{name} {interp} eb={scaled}"

    def test_no_patches_on_normal_data(self, smooth_positive_3d):
        blob, _ = roundtrip(smooth_positive_3d, 1e-3)
        assert Container.from_bytes(blob).get_u64("n_patch") == 0

    @given(st.integers(0, 2**31 - 1))
    def test_property_bound_1d(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 10, size=201).astype(np.float32)
        _, recon = roundtrip(data, 1e-3)
        assert np.abs(recon.astype(np.float64) - data.astype(np.float64)).max() <= 1e-3


class TestQuality:
    def test_beats_lorenzo_on_nyx_density(self):
        from repro.data import load_field

        data = load_field("NYX", "dark_matter_density", scale=0.5)
        eb = 1e-2 * float(data.max())
        b3 = SZ3Compressor().compress(data, AbsoluteBound(eb))
        b1 = SZCompressor().compress(data, AbsoluteBound(eb))
        assert len(b3) < len(b1)

    def test_cubic_beats_linear_on_smooth_data(self, smooth_positive_3d):
        eb = 1e-3
        bc, _ = roundtrip(smooth_positive_3d, eb, interp="cubic")
        bl, _ = roundtrip(smooth_positive_3d, eb, interp="linear")
        assert len(bc) < len(bl)

    def test_invalid_interp(self):
        with pytest.raises(ValueError):
            SZ3Compressor(interp="quintic")


class TestSZ3T:
    def test_registered_and_bounded(self, smooth_positive_3d):
        comp = get_compressor("SZ3_T")
        assert comp.name == "SZ3_T"
        blob = comp.compress(smooth_positive_3d, RelativeBound(1e-2))
        recon = decompress(blob)
        x = smooth_positive_3d.astype(np.float64)
        xd = recon.astype(np.float64)
        nz = x != 0
        assert (np.abs(xd[nz] - x[nz]) / np.abs(x[nz])).max() <= 1e-2

    def test_sz3_t_beats_sz_t_on_nyx(self):
        from repro.data import load_field

        data = load_field("NYX", "dark_matter_density", scale=0.5)
        br = RelativeBound(1e-2)
        b3 = get_compressor("SZ3_T").compress(data, br)
        b1 = get_compressor("SZ_T").compress(data, br)
        assert len(b3) < len(b1)
