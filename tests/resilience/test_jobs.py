"""Journaled jobs: byte-identity, kill/resume, fingerprint guard."""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro
from repro.compressors.base import RelativeBound
from repro.core.chunked import ChunkedCompressor
from repro.resilience import (
    JournalError,
    resume_job,
    run_compress_job,
    run_decompress_job,
)
from repro.testing import CrashPoint, kill_at

BOUND = RelativeBound(1e-3)


def compress_spec(**extra):
    spec = {"compressor": "SZ_T", "chunk_bytes": 1024, "executor": "serial",
            "workers": 1}
    spec.update(extra)
    return spec


class TestCompressJob:
    def test_byte_identical_to_plain_compress(self, tmp_path, field_2d, field_file):
        out = str(tmp_path / "out.rpz")
        result = run_compress_job(field_file, out, BOUND,
                                  shape=field_2d.shape, **compress_spec())
        assert result.n_chunks == 4 and result.redone == 4 and not result.resumed
        plain = ChunkedCompressor(
            "SZ_T", chunk_bytes=1024, executor="serial"
        ).compress(field_2d, BOUND)
        with open(out, "rb") as fh:
            assert fh.read() == plain
        assert not os.path.exists(out + ".journal")

    def test_journal_dir_override(self, tmp_path, field_2d, field_file):
        out = str(tmp_path / "out.rpz")
        jdir = str(tmp_path / "elsewhere.journal")
        run_compress_job(field_file, out, BOUND, journal_dir=jdir,
                         shape=field_2d.shape, **compress_spec())
        assert os.path.exists(out) and not os.path.exists(jdir)

    def test_killed_job_resumes_only_pending_chunks(self, tmp_path, field_2d,
                                                    field_file):
        out = str(tmp_path / "out.rpz")
        jdir = out + ".journal"
        # Kill after the first wave's manifest append: chunk 0 recorded.
        with pytest.raises(CrashPoint):
            with kill_at(5):
                run_compress_job(field_file, out, BOUND,
                                 shape=field_2d.shape, **compress_spec())
        assert os.path.exists(jdir) and not os.path.exists(out)
        result = resume_job(jdir)
        assert result.resumed
        assert result.redone < result.n_chunks  # journaled chunks reused
        assert "reused from journal" in result.summary()
        reference = ChunkedCompressor(
            "SZ_T", chunk_bytes=1024, executor="serial"
        ).compress(field_2d, BOUND)
        with open(out, "rb") as fh:
            assert fh.read() == reference
        assert not os.path.exists(jdir)

    def test_resume_after_commit_is_idempotent_cleanup(self, tmp_path, field_2d,
                                                       field_file):
        out = str(tmp_path / "out.rpz")
        jdir = out + ".journal"
        # Enumerate points to find the commit-recorded index dynamically,
        # then kill right after it: output complete, journal left behind.
        from repro.testing import record_crash_points

        ref_out = str(tmp_path / "ref.rpz")
        _, points = record_crash_points(
            run_compress_job, field_file, ref_out, BOUND,
            shape=field_2d.shape, **compress_spec(),
        )
        idx = points.index("journal.commit-recorded")
        with pytest.raises(CrashPoint):
            with kill_at(idx):  # commit record durable, cleanup never runs
                run_compress_job(field_file, out, BOUND,
                                 shape=field_2d.shape, **compress_spec())
        result = resume_job(jdir)
        assert result.redone == 0
        with open(out, "rb") as fh, open(ref_out, "rb") as ref:
            assert fh.read() == ref.read()
        assert not os.path.exists(jdir)

    def test_refuses_resume_against_changed_input(self, tmp_path, field_2d,
                                                  field_file):
        out = str(tmp_path / "out.rpz")
        with pytest.raises(CrashPoint):
            with kill_at(3):
                run_compress_job(field_file, out, BOUND,
                                 shape=field_2d.shape, **compress_spec())
        (field_2d + 1.0).tofile(field_file)
        with pytest.raises(JournalError, match="changed since the journal"):
            resume_job(out + ".journal")

    def test_refuses_resume_with_missing_input(self, tmp_path, field_2d,
                                               field_file):
        out = str(tmp_path / "out.rpz")
        with pytest.raises(CrashPoint):
            with kill_at(3):
                run_compress_job(field_file, out, BOUND,
                                 shape=field_2d.shape, **compress_spec())
        os.remove(field_file)
        with pytest.raises(JournalError, match="missing input"):
            resume_job(out + ".journal")

    def test_ladder_and_policy_survive_resume(self, tmp_path, field_2d,
                                              field_file, brittle):
        """The journal header rebuilds the full pipeline: a resumed job
        uses the same ladder, and the container records it."""
        from repro.encoding.container import Container

        out = str(tmp_path / "out.rpz")
        spec = compress_spec(compressor="BRITTLE", ladder=["GZIP"])
        with pytest.raises(CrashPoint):
            with kill_at(6):
                run_compress_job(field_file, out, BOUND,
                                 shape=field_2d.shape, **spec)
        resume_job(out + ".journal")
        box = Container.from_bytes(open(out, "rb").read())
        assert box.get_str("ladder") == "BRITTLE>GZIP"
        np.testing.assert_array_equal(repro.decompress(open(out, "rb").read()),
                                      field_2d)


class TestDecompressJob:
    def test_round_trip_raw_output(self, tmp_path, field_2d, field_file):
        rpz = str(tmp_path / "a.rpz")
        run_compress_job(field_file, rpz, BOUND,
                         shape=field_2d.shape, **compress_spec())
        out = str(tmp_path / "back.raw")
        result = run_decompress_job(rpz, out)
        assert result.n_chunks == 4
        recon = np.fromfile(out, dtype=np.float32).reshape(field_2d.shape)
        assert np.all(np.abs(recon - field_2d) <= BOUND.value * np.abs(field_2d))
        assert not os.path.exists(out + ".journal")

    def test_round_trip_npy_output(self, tmp_path, field_2d, field_file):
        rpz = str(tmp_path / "a.rpz")
        run_compress_job(field_file, rpz, BOUND,
                         shape=field_2d.shape, **compress_spec())
        out = str(tmp_path / "back.npy")
        run_decompress_job(rpz, out)
        recon = np.load(out)
        assert recon.shape == field_2d.shape and recon.dtype == np.float32

    def test_monolithic_stream_decompress_job(self, tmp_path, field_2d):
        rpz = str(tmp_path / "mono.rpz")
        with open(rpz, "wb") as fh:
            fh.write(repro.compress(field_2d, BOUND))
        out = str(tmp_path / "back.raw")
        result = run_decompress_job(rpz, out)
        assert result.n_chunks == 1
        recon = np.fromfile(out, dtype=np.float32).reshape(field_2d.shape)
        assert np.all(np.abs(recon - field_2d) <= BOUND.value * np.abs(field_2d))

    def test_killed_decompress_resumes(self, tmp_path, field_2d, field_file):
        rpz = str(tmp_path / "a.rpz")
        run_compress_job(field_file, rpz, BOUND,
                         shape=field_2d.shape, **compress_spec())
        out = str(tmp_path / "back.raw")
        with pytest.raises(CrashPoint):
            with kill_at(6):
                run_decompress_job(rpz, out)
        result = resume_job(out + ".journal")
        assert result.resumed
        recon = np.fromfile(out, dtype=np.float32).reshape(field_2d.shape)
        assert np.all(np.abs(recon - field_2d) <= BOUND.value * np.abs(field_2d))


class TestResumeErrors:
    def test_unknown_kind_raises(self, tmp_path):
        from repro.resilience import JobJournal

        src = tmp_path / "input.bin"
        src.write_bytes(b"x")
        JobJournal.create(str(tmp_path / "j"),
                          {"kind": "transmogrify", "input": str(src)})
        with pytest.raises(JournalError, match="unknown job kind"):
            resume_job(str(tmp_path / "j"))
