"""DegradationLadder: fallback semantics, bound preservation, visibility."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.compressors.base import PrecisionBound, RelativeBound, UnsupportedBound
from repro.core.chunked import ChunkedCompressor
from repro.encoding.container import Container, peek_codec
from repro.observe.events import install_event_log, read_events
from repro.observe.metrics import metrics
from repro.resilience import DegradationLadder, LadderExhaustedError


class TestFallback:
    def test_primary_wins_when_healthy(self, brittle, field_2d):
        ladder = DegradationLadder(["BRITTLE", "GZIP"])
        blob = ladder.compress(field_2d, RelativeBound(1e-3))
        assert peek_codec(blob) == "BRITTLE"
        assert ladder.last_fallbacks == 0
        np.testing.assert_array_equal(ladder.decompress(blob), field_2d)

    def test_falls_through_on_failure(self, brittle, field_2d):
        brittle.fail_on = frozenset({1})
        ladder = DegradationLadder(["BRITTLE", "GZIP"])
        before = metrics().counter("resilience.fallbacks").value
        blob = ladder.compress(field_2d, RelativeBound(1e-3))
        assert peek_codec(blob) == "GZIP"
        assert ladder.last_fallbacks == 1
        assert metrics().counter("resilience.fallbacks").value == before + 1
        np.testing.assert_array_equal(repro.decompress(blob), field_2d)

    def test_fallback_emits_event(self, brittle, field_2d, tmp_path):
        brittle.fail_on = frozenset({1})
        log_path = str(tmp_path / "events.jsonl")
        install_event_log(log_path)
        try:
            DegradationLadder(["BRITTLE", "GZIP"]).compress(
                field_2d, RelativeBound(1e-3)
            )
        finally:
            install_event_log(None)
        events = read_events(log_path)
        fallback = [e for e in events if e.get("event") == "codec-fallback"]
        assert fallback and fallback[0]["from_codec"] == "BRITTLE"
        assert fallback[0]["to_codec"] == "GZIP"
        assert "scripted failure" in fallback[0]["reason"]

    def test_exhausted_ladder_raises_with_all_reasons(self, brittle, field_2d):
        brittle.fail_on = frozenset({1, 2})
        ladder = DegradationLadder(["BRITTLE", "BRITTLE"])
        with pytest.raises(LadderExhaustedError, match="every rung"):
            ladder.compress(field_2d, RelativeBound(1e-3))

    def test_rung_not_supporting_bound_is_skipped(self, field_2d):
        # ZFP_P takes only PrecisionBound: under a RelativeBound it must
        # be skipped (counted as a fallback), landing on GZIP.
        ladder = DegradationLadder(["ZFP_P", "GZIP"])
        blob = ladder.compress(field_2d, RelativeBound(1e-3))
        assert peek_codec(blob) == "GZIP"
        assert ladder.last_fallbacks == 1

    def test_ladder_union_of_supported_bounds(self):
        ladder = DegradationLadder(["ZFP_P", "SZ_T"])
        assert isinstance(RelativeBound(1e-3), ladder.supported_bounds)
        assert isinstance(PrecisionBound(16), ladder.supported_bounds)
        with pytest.raises(UnsupportedBound):
            DegradationLadder(["ZFP_P"])._check_bound(RelativeBound(1e-3))

    def test_verify_mode_rejects_bound_violations(self, field_2d):
        # A very loose SZ_T stream is fine; verify must not reject it.
        ladder = DegradationLadder(["SZ_T", "GZIP"], verify=True)
        blob = ladder.compress(field_2d, RelativeBound(1e-2))
        assert peek_codec(blob) == "SZ_T"

    def test_attempt_timeout_falls_through(self, brittle, field_2d):
        brittle.hang_on = frozenset({1})
        brittle.hang_s = 5.0
        ladder = DegradationLadder(["BRITTLE", "GZIP"], attempt_timeout_s=0.2)
        blob = ladder.compress(field_2d, RelativeBound(1e-3))
        assert peek_codec(blob) == "GZIP"
        assert ladder.last_fallbacks == 1


class TestChunkedIntegration:
    def bound(self):
        return RelativeBound(1e-3)

    def compress_mixed(self, brittle, field_2d):
        """4 chunks, calls 2 and 3 fail -> chunks 1,2 degrade to GZIP."""
        brittle.fail_on = frozenset({2, 3})
        ck = ChunkedCompressor("BRITTLE", chunk_bytes=1024, executor="serial",
                               policy="ladder=GZIP")
        return ck, ck.compress(field_2d, self.bound())

    def test_mixed_stream_records_codecs_and_ladder(self, brittle, field_2d):
        ck, blob = self.compress_mixed(brittle, field_2d)
        box = Container.from_bytes(blob)
        assert box.get_str("ladder") == "BRITTLE>GZIP"
        assert box.get_str("chunk_codecs").split(";") == [
            "BRITTLE", "GZIP", "GZIP", "BRITTLE",
        ]
        np.testing.assert_array_equal(repro.decompress(blob), field_2d)

    def test_resilience_report_counts_fallbacks(self, brittle, field_2d):
        ck, _ = self.compress_mixed(brittle, field_2d)
        rep = ck.last_resilience
        assert rep is not None and rep.fallbacks == 2
        assert [i.index for i in rep.incidents if i.kind == "fallback"] == [1, 2]
        assert "2 fell back" in rep.summary()

    def test_policy_ladder_dedupes_primary(self, brittle, field_2d):
        # policy ladder naming the primary again must not double it.
        ck = ChunkedCompressor("BRITTLE", chunk_bytes=1024, executor="serial",
                               policy="ladder=BRITTLE>GZIP")
        assert ck.inner.rung_names == ("BRITTLE", "GZIP")

    def test_quiet_run_adds_no_ladder_sections(self, field_2d):
        blob = ChunkedCompressor("SZ_T", chunk_bytes=1024,
                                 executor="serial").compress(field_2d, self.bound())
        box = Container.from_bytes(blob)
        assert "ladder" not in box and "chunk_codecs" not in box


class TestVisibility:
    def test_stats_explain_verify_audit_surface_fallbacks(self, brittle, field_2d):
        from repro.integrity import verify_stream
        from repro.observe.quality import explain_stream
        from repro.report import audit_report, build_report

        brittle.fail_on = frozenset({2})
        ck = ChunkedCompressor("BRITTLE", chunk_bytes=1024, executor="serial",
                               policy="ladder=GZIP")
        blob = ck.compress(field_2d, RelativeBound(1e-3))

        stats = build_report(blob)
        assert stats.ladder == "BRITTLE>GZIP"
        assert stats.codec_mix == {"BRITTLE": 3, "GZIP": 1}
        assert stats.degraded_chunks == 1
        assert "codec mix" in stats.format()

        explain = explain_stream(blob, original=field_2d)
        assert explain.ladder == "BRITTLE>GZIP"
        fallbacks = [a for a in explain.anomalies if a["metric"] == "fallback"]
        assert [a["index"] for a in fallbacks] == [1]
        assert explain.chunks[1]["codec"] == "GZIP"
        assert explain.format()  # string anomaly values must render

        verify = verify_stream(blob)
        assert verify.ok
        assert any("fallback rung" in note for note in verify.notes)

        # The point-wise bound survives degradation: audit exits clean.
        audit = audit_report(blob, field_2d)
        assert audit.ok
