"""Satellite: a worker that hangs, then crashes on retry, must neither
hang the job nor escape the retry budget."""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro
from repro.compressors.base import RelativeBound
from repro.core.chunked import ChunkedCompressor, ChunkTimeoutError

BOUND = RelativeBound(1e-3)


@pytest.fixture
def one_chunk_field():
    """Small enough for a single chunk, so BRITTLE call numbers are exact."""
    rng = np.random.default_rng(7)
    return rng.random((32, 8)).astype(np.float32) + 0.5


class TestHungThenCrashingWorker:
    def test_hang_then_crash_then_recover(self, brittle, one_chunk_field):
        """Call 1 hangs past the watchdog, the fresh-worker retry (call 2)
        crashes outright, and the in-process fallback (call 3) succeeds.
        The job must finish promptly with the bound intact."""
        brittle.hang_on = frozenset({1})
        brittle.hang_s = 5.0
        brittle.fail_on = frozenset({2})
        ck = ChunkedCompressor(
            "BRITTLE", chunk_bytes=1 << 20, executor="thread",
            policy="retries=2;chunk-timeout=0.25;backoff=0.01",
        )
        t0 = time.perf_counter()
        blob = ck.compress(one_chunk_field, BOUND)
        elapsed = time.perf_counter() - t0
        assert elapsed < 4.0, "job waited for the hung worker"
        np.testing.assert_array_equal(repro.decompress(blob), one_chunk_field)
        rep = ck.last_resilience
        assert rep is not None and not rep.quiet
        assert any(i.kind == "timeout" for i in rep.incidents)

    def test_retry_budget_is_honored(self, brittle, one_chunk_field):
        """Every attempt hangs: the watchdog must give up after exactly
        ``retries`` fresh workers instead of retrying forever."""
        brittle.hang_on = frozenset(range(1, 10))
        brittle.hang_s = 5.0
        ck = ChunkedCompressor(
            "BRITTLE", chunk_bytes=1 << 20, executor="thread",
            policy="retries=2;chunk-timeout=0.2;backoff=0.01",
        )
        t0 = time.perf_counter()
        with pytest.raises(ChunkTimeoutError, match="2 retries"):
            ck.compress(one_chunk_field, BOUND)
        assert time.perf_counter() - t0 < 4.0, "retry loop did not terminate"
        assert brittle.calls == 3  # initial + 2 retries, not one more

    def test_zero_retries_fails_on_first_timeout(self, brittle, one_chunk_field):
        brittle.hang_on = frozenset(range(1, 10))
        brittle.hang_s = 5.0
        ck = ChunkedCompressor(
            "BRITTLE", chunk_bytes=1 << 20, executor="thread",
            policy="retries=0;chunk-timeout=0.2",
        )
        with pytest.raises(ChunkTimeoutError):
            ck.compress(one_chunk_field, BOUND)
        assert brittle.calls == 1
