"""Shared fixtures for the resilience suite: a controllable test codec.

``BRITTLE`` is a lossless codec whose failures are scripted per call
(raise, or hang then raise on retry), so ladder/watchdog/chaos tests can
stage exact failure sequences.  It emits containers under its own codec
name, so ``chunk_codecs`` attribution distinguishes it from fallback
rungs.  Class-level state means the scripting only works with in-process
executors (serial/thread) -- which is what every test here uses.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.compressors.base import (
    AbsoluteBound,
    Compressor,
    PrecisionBound,
    RelativeBound,
)


class BrittleCodec(Compressor):
    name = "BRITTLE"
    supported_bounds = (RelativeBound, AbsoluteBound, PrecisionBound)

    #: 1-based compress-call numbers that raise RuntimeError.
    fail_on: frozenset[int] = frozenset()
    #: 1-based compress-call numbers that sleep ``hang_s`` first.
    hang_on: frozenset[int] = frozenset()
    hang_s: float = 0.0
    calls: int = 0

    def compress(self, data, bound):
        cls = BrittleCodec
        cls.calls += 1
        n = cls.calls
        if n in cls.hang_on:
            time.sleep(cls.hang_s)
        if n in cls.fail_on:
            raise RuntimeError(f"scripted failure on call {n}")
        data = self._check_input(data)
        box = self._new_container(self.name, data)
        box.put("raw", data.tobytes())
        return box.to_bytes()

    def decompress(self, blob):
        box, shape, dtype = self._open_container(blob, "BRITTLE")
        return np.frombuffer(box.get("raw"), dtype=dtype).reshape(shape).copy()


@pytest.fixture(scope="package", autouse=True)
def _register_brittle():
    """Register BRITTLE for this package only, so registry-completeness
    checks elsewhere in the suite never see the test codec."""
    from repro.compressors.base import _REGISTRY

    _REGISTRY.setdefault("BRITTLE", BrittleCodec)
    yield
    _REGISTRY.pop("BRITTLE", None)


@pytest.fixture
def brittle():
    """A reset BRITTLE codec class; script failures via its class attrs."""
    BrittleCodec.fail_on = frozenset()
    BrittleCodec.hang_on = frozenset()
    BrittleCodec.hang_s = 0.0
    BrittleCodec.calls = 0
    yield BrittleCodec
    BrittleCodec.fail_on = frozenset()
    BrittleCodec.hang_on = frozenset()
    BrittleCodec.hang_s = 0.0


@pytest.fixture
def field_2d() -> np.ndarray:
    """Small strictly-positive field; 4 chunks at chunk_bytes=1024."""
    rng = np.random.default_rng(12)
    return (rng.random((64, 16)).astype(np.float32) + 0.5)


@pytest.fixture
def field_file(tmp_path, field_2d):
    path = tmp_path / "field.raw"
    field_2d.tofile(path)
    return str(path)
