"""Crash-point chaos harness, plus the atomic-write durability contract."""

from __future__ import annotations

import os
import stat

import pytest

from repro.compressors.base import RelativeBound
from repro.parallel.runner import atomic_write_bytes
from repro.testing import CrashPoint, chaos_compress, kill_at, record_crash_points

BOUND = RelativeBound(1e-3)


def job_spec(**extra):
    spec = {"compressor": "SZ_T", "chunk_bytes": 1024, "executor": "serial",
            "workers": 1}
    spec.update(extra)
    return spec


class TestChaosCompress:
    def test_every_crash_point_recovers(self, tmp_path, field_2d, field_file):
        report = chaos_compress(field_file, BOUND, str(tmp_path / "chaos"),
                                shape=field_2d.shape, **job_spec())
        assert report.ok, report.summary()
        assert report.n_points == len(report.crash_points)
        assert len(report.outcomes) == report.n_points
        assert all(o.killed for o in report.outcomes)
        assert "byte-identical" in report.summary()
        # The enumeration must cover every durability boundary class.
        for name in (
            "journal.created", "journal.part-written", "journal.chunks-recorded",
            "journal.commit-recorded", "journal.cleanup", "job.assembled",
            "job.output-written", "io.tmp-written", "io.renamed", "io.dir-synced",
        ):
            assert name in report.crash_points, name

    def test_sampled_enumeration_is_reproducible(self, tmp_path, field_2d,
                                                 field_file):
        a = chaos_compress(field_file, BOUND, str(tmp_path / "a"), sample=5,
                           seed=3, shape=field_2d.shape, **job_spec())
        b = chaos_compress(field_file, BOUND, str(tmp_path / "b"), sample=5,
                           seed=3, shape=field_2d.shape, **job_spec())
        assert a.ok and b.ok
        assert [o.point for o in a.outcomes] == [o.point for o in b.outcomes]
        assert len(a.outcomes) == 5 < a.n_points

    def test_enumeration_with_ladder_policy(self, tmp_path, field_2d, field_file):
        report = chaos_compress(
            field_file, BOUND, str(tmp_path / "chaos"), shape=field_2d.shape,
            **job_spec(ladder=["GZIP"], policy="retries=1"),
        )
        assert report.ok, report.summary()

    def test_report_to_dict(self, tmp_path, field_2d, field_file):
        report = chaos_compress(field_file, BOUND, str(tmp_path / "chaos"),
                                sample=2, shape=field_2d.shape, **job_spec())
        d = report.to_dict()
        assert d["ok"] is True
        assert d["n_points"] == report.n_points
        assert len(d["outcomes"]) == 2
        assert {"point", "name", "killed", "resumed", "identical"} <= set(
            d["outcomes"][0]
        )


class TestAtomicWriteDurability:
    """Satellite regression tests for the ``atomic_write_bytes`` contract:
    tmp fsync -> rename -> parent-dir fsync, kill-safe at every boundary."""

    def test_crash_point_sequence(self, tmp_path):
        dest = str(tmp_path / "x.bin")
        _, names = record_crash_points(atomic_write_bytes, dest, b"payload")
        assert names == ["io.tmp-written", "io.renamed", "io.dir-synced"]

    def test_parent_dir_fsynced_after_rename(self, tmp_path, monkeypatch):
        """The dir-fsync regression: without fsyncing the parent directory
        after ``os.replace`` the rename itself is not durable.  Assert a
        directory fd is fsynced, and only after the rename."""
        events = []
        real_fsync, real_replace = os.fsync, os.replace

        def spy_fsync(fd):
            kind = "dir" if stat.S_ISDIR(os.fstat(fd).st_mode) else "file"
            events.append(("fsync", kind))
            real_fsync(fd)

        def spy_replace(src, dst):
            events.append(("rename", None))
            real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", spy_fsync)
        monkeypatch.setattr(os, "replace", spy_replace)
        atomic_write_bytes(str(tmp_path / "x.bin"), b"payload")
        assert ("fsync", "file") in events  # tmp file synced before rename
        assert ("fsync", "dir") in events  # parent directory synced
        assert events.index(("fsync", "file")) < events.index(("rename", None))
        assert events.index(("rename", None)) < events.index(("fsync", "dir"))

    @pytest.mark.parametrize("point", [0, 1, 2])
    def test_kill_at_any_point_never_tears_destination(self, tmp_path, point):
        dest = str(tmp_path / "x.bin")
        with open(dest, "wb") as fh:
            fh.write(b"old contents")
        with pytest.raises(CrashPoint):
            with kill_at(point):
                atomic_write_bytes(dest, b"new contents!")
        with open(dest, "rb") as fh:
            assert fh.read() in (b"old contents", b"new contents!")

    def test_kill_before_rename_leaves_no_destination(self, tmp_path):
        dest = str(tmp_path / "fresh.bin")
        with pytest.raises(CrashPoint):
            with kill_at(0):  # io.tmp-written: tmp exists, dest must not
                atomic_write_bytes(dest, b"payload")
        assert not os.path.exists(dest)
        assert os.path.exists(dest + ".tmp")
