"""ResiliencePolicy: spec grammar, backoff, memory budget, breaker."""

from __future__ import annotations

import pytest

from repro.resilience import (
    CircuitBreaker,
    MemoryBudgetError,
    ResiliencePolicy,
    ResilienceReport,
    parse_policy,
)
from repro.resilience.policy import ChunkIncident


class TestSpecGrammar:
    def test_empty_spec_is_defaults(self):
        assert parse_policy("") == ResiliencePolicy()
        assert ResiliencePolicy().spec() == ""

    def test_full_spec_round_trips(self):
        text = ("retries=3;backoff=0.1;jitter=0.5;chunk-timeout=2;"
                "job-timeout=60;memory=256M;breaker=0.5/8;ladder=SZ_T>GZIP;seed=7")
        pol = parse_policy(text)
        assert pol.retries == 3
        assert pol.backoff_s == pytest.approx(0.1)
        assert pol.jitter == pytest.approx(0.5)
        assert pol.chunk_timeout_s == pytest.approx(2.0)
        assert pol.job_timeout_s == pytest.approx(60.0)
        assert pol.memory_budget == 256 * 2**20
        assert pol.breaker_threshold == pytest.approx(0.5)
        assert pol.breaker_window == 8
        assert pol.ladder == ("SZ_T", "GZIP")
        assert pol.seed == 7
        assert parse_policy(pol.spec()) == pol

    def test_spec_emits_only_non_defaults(self):
        assert parse_policy("retries=5").spec() == "retries=5"
        assert parse_policy("breaker=0.25").spec() == "breaker=0.25/10"

    def test_memory_suffixes(self):
        assert parse_policy("memory=4K").memory_budget == 4096
        assert parse_policy("memory=1G").memory_budget == 2**30
        assert parse_policy("memory=1048576").memory_budget == 2**20

    @pytest.mark.parametrize("bad", [
        "retries=-1",
        "jitter=2",
        "chunk-timeout=0",
        "job-timeout=-5",
        "memory=0",
        "memory=lots",
        "breaker=0",
        "breaker=1.5",
        "ladder=",
        "nonsense=1",
        "justaword",
    ])
    def test_bad_specs_raise_value_error(self, bad):
        with pytest.raises(ValueError, match="bad resilience policy"):
            parse_policy(bad)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(breaker_window=0)


class TestBackoff:
    def test_exponential_without_jitter(self):
        pol = ResiliencePolicy(backoff_s=0.1)
        assert pol.backoff_for(1) == pytest.approx(0.1)
        assert pol.backoff_for(2) == pytest.approx(0.2)
        assert pol.backoff_for(3) == pytest.approx(0.4)

    def test_jitter_is_deterministic_and_bounded(self):
        pol = ResiliencePolicy(backoff_s=0.1, jitter=0.5, seed=3)
        for attempt in (1, 2, 3):
            for index in (0, 1, 17):
                base = 0.1 * 2 ** (attempt - 1)
                got = pol.backoff_for(attempt, index)
                assert got == pol.backoff_for(attempt, index)  # deterministic
                assert base * 0.5 <= got <= base * 1.5

    def test_jitter_decorrelates_chunks(self):
        pol = ResiliencePolicy(backoff_s=0.1, jitter=0.9, seed=1)
        values = {pol.backoff_for(1, index) for index in range(16)}
        assert len(values) > 8

    def test_seed_changes_schedule(self):
        a = ResiliencePolicy(backoff_s=0.1, jitter=0.9, seed=1)
        b = ResiliencePolicy(backoff_s=0.1, jitter=0.9, seed=2)
        assert any(a.backoff_for(1, i) != b.backoff_for(1, i) for i in range(8))


class TestMemoryBudget:
    def test_unbudgeted_is_identity(self):
        assert ResiliencePolicy().max_workers(8, 1 << 20) == 8

    def test_budget_caps_workers(self):
        pol = ResiliencePolicy(memory_budget=8 * (1 << 20))
        # 4x charge per worker: 8M budget / 4M per 1M-chunk worker = 2.
        assert pol.max_workers(8, 1 << 20) == 2

    def test_budget_below_one_worker_raises(self):
        pol = ResiliencePolicy(memory_budget=1 << 20)
        with pytest.raises(MemoryBudgetError, match="below one"):
            pol.max_workers(4, 1 << 20)


class TestCircuitBreaker:
    def test_needs_full_window_before_tripping(self):
        br = CircuitBreaker(threshold=0.5, window=4)
        assert not br.record(False)
        assert not br.record(False)
        assert not br.record(False)  # only 3 observed: never trips early
        assert br.record(False)  # 4/4 failures > 0.5

    def test_trips_on_rate_not_count(self):
        br = CircuitBreaker(threshold=0.5, window=4)
        for ok in (True, True, True, False, True, True):
            assert not br.record(ok)  # 1/4 recent failures <= 0.5
        assert not br.tripped

    def test_never_self_closes(self):
        br = CircuitBreaker(threshold=0.1, window=2)
        br.record(False)
        assert br.record(False)
        for _ in range(8):
            assert br.record(True)  # stays tripped through recovery
        assert "breaker threshold" in br.describe()

    def test_policy_breaker_factory(self):
        assert ResiliencePolicy().breaker() is None
        br = ResiliencePolicy(breaker_threshold=0.5, breaker_window=3).breaker()
        assert br.window == 3


class TestResilienceReport:
    def test_quiet_report(self):
        rep = ResilienceReport(n_chunks=5)
        assert rep.quiet
        assert "clean" in rep.summary()

    def test_noisy_report(self):
        rep = ResilienceReport(
            n_chunks=5, retried=1, timed_out=2, fallbacks=3, breaker_tripped=True,
            incidents=(ChunkIncident(0, "timeout", "hung"),),
        )
        assert not rep.quiet
        text = rep.summary()
        assert "2 timed out" in text and "3 fell back" in text
        d = rep.to_dict()
        assert d["incidents"] == [{"index": 0, "kind": "timeout", "detail": "hung"}]
