"""JobJournal: durability discipline, torn tails, CRC re-validation."""

from __future__ import annotations

import json
import os

import pytest

from repro.resilience import JobJournal, JournalError


@pytest.fixture
def journal(tmp_path):
    return JobJournal.create(str(tmp_path / "j"), {"kind": "compress", "x": 1})


class TestLifecycle:
    def test_create_writes_durable_header(self, journal):
        reopened = JobJournal.open(journal.root)
        assert reopened.header == {"kind": "compress", "x": 1}
        assert reopened.chunks == {}
        assert not reopened.committed

    def test_double_create_refuses(self, journal):
        with pytest.raises(JournalError, match="already exists"):
            JobJournal.create(journal.root, {"kind": "compress"})

    def test_open_missing_raises(self, tmp_path):
        with pytest.raises(JournalError, match="no readable journal"):
            JobJournal.open(str(tmp_path / "nope"))

    def test_remove_deletes_directory(self, journal):
        journal.remove()
        assert not os.path.exists(journal.root)


class TestChunks:
    def test_record_and_read_back(self, journal):
        journal.record_chunks([(0, b"alpha"), (2, b"gamma")])
        assert journal.chunk_blob(0) == b"alpha"
        assert journal.chunk_blob(1) is None
        assert journal.chunk_blob(2) == b"gamma"
        reopened = JobJournal.open(journal.root)
        assert reopened.chunk_blob(2) == b"gamma"
        assert reopened.finished(3) == [0, 2]

    def test_corrupt_part_file_reads_as_unfinished(self, journal):
        journal.record_chunks([(0, b"alpha")])
        part = os.path.join(journal.root, "chunk_00000.bin")
        with open(part, "wb") as fh:
            fh.write(b"alpha".swapcase())  # same length, wrong CRC
        assert JobJournal.open(journal.root).chunk_blob(0) is None

    def test_short_part_file_reads_as_unfinished(self, journal):
        journal.record_chunks([(0, b"alphabet")])
        part = os.path.join(journal.root, "chunk_00000.bin")
        with open(part, "wb") as fh:
            fh.write(b"alp")
        assert JobJournal.open(journal.root).chunk_blob(0) is None

    def test_missing_part_file_reads_as_unfinished(self, journal):
        journal.record_chunks([(0, b"alpha")])
        os.remove(os.path.join(journal.root, "chunk_00000.bin"))
        assert JobJournal.open(journal.root).chunk_blob(0) is None


class TestManifestDamage:
    def test_torn_trailing_line_is_ignored(self, journal):
        journal.record_chunks([(0, b"alpha")])
        manifest = os.path.join(journal.root, "manifest.jsonl")
        with open(manifest, "ab") as fh:
            fh.write(b'{"rec": "chunk", "index": 1, "le')  # mid-append kill
        reopened = JobJournal.open(journal.root)
        assert reopened.chunk_blob(0) == b"alpha"
        assert 1 not in reopened.chunks

    def test_corruption_before_the_tail_raises(self, journal):
        manifest = os.path.join(journal.root, "manifest.jsonl")
        with open(manifest, "ab") as fh:
            fh.write(b"garbage not json\n")
            for i in range(3):
                fh.write(json.dumps({"rec": "chunk", "index": i, "len": 0,
                                     "crc": 0}).encode() + b"\n")
        with pytest.raises(JournalError, match="corrupt at line"):
            JobJournal.open(journal.root)

    def test_header_must_come_first(self, tmp_path):
        root = tmp_path / "j2"
        root.mkdir()
        (root / "manifest.jsonl").write_text('{"rec": "chunk", "index": 0}\n')
        with pytest.raises(JournalError, match="no job header"):
            JobJournal.open(str(root))


class TestCommit:
    def test_commit_round_trips(self, journal):
        journal.record_commit(nbytes=123)
        assert JobJournal.open(journal.root).committed

    def test_part_file_precedes_manifest_record(self, journal, monkeypatch):
        """The write-ahead invariant: a manifest record implies its part
        file is already durable on disk."""
        order = []
        real_append = JobJournal._append

        def spying_append(self, records):
            for rec in records:
                if rec.get("rec") == "chunk":
                    part = os.path.join(
                        self.root, f"chunk_{int(rec['index']):05d}.bin"
                    )
                    order.append(("record", rec["index"], os.path.exists(part)))
            real_append(self, records)

        monkeypatch.setattr(JobJournal, "_append", spying_append)
        journal.record_chunks([(0, b"a"), (1, b"b")])
        assert order == [("record", 0, True), ("record", 1, True)]
