"""Experiment plumbing: tables, bound mapping, ZFP_P tuning, sweeps."""

import numpy as np
import pytest

from repro import get_compressor
from repro.experiments.common import (
    PAPER_BOUNDS,
    PWR_COMPRESSORS,
    Table,
    compress_for_relbound,
    sweep_records,
    tune_zfp_precision,
)
from repro.metrics import bounded_fraction


class TestTable:
    def test_format_contains_all_cells(self):
        t = Table("demo", ["a", "b"])
        t.add("x", 1.5)
        t.add("longer", 2.0)
        text = t.format()
        assert "demo" in text and "longer" in text and "1.5" in text

    def test_row_width_checked(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add("only-one")

    def test_csv(self):
        t = Table("demo", ["a", "b"])
        t.add("x", 2)
        lines = t.to_csv().strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "x,2"

    def test_notes_rendered(self):
        t = Table("demo", ["a"])
        t.notes.append("hello note")
        assert "hello note" in t.format()


class TestBoundMapping:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(0)
        return np.exp(rng.normal(0, 2, size=(16, 16, 16))).astype(np.float32)

    @pytest.mark.parametrize("name", PWR_COMPRESSORS)
    def test_every_compressor_respects_its_mapping(self, data, name):
        br = 1e-2
        blob, setting = compress_for_relbound(name, data, br)
        recon = get_compressor(name).decompress(blob)
        stats = bounded_fraction(data, recon, br)
        assert stats.strictly_bounded, f"{name} ({setting}) not bounded"

    def test_fpzip_setting_string(self, data):
        _, setting = compress_for_relbound("FPZIP", data, 1e-3)
        assert setting == "-p 19"

    def test_zfp_p_tuning_hits_target(self, data):
        br = 1e-2
        p = tune_zfp_precision(data, br, target=0.999)
        comp = get_compressor("ZFP_P")
        from repro.compressors import PrecisionBound

        blob = comp.compress(data, PrecisionBound(p))
        stats = bounded_fraction(data, comp.decompress(blob), br)
        assert stats.bounded_fraction >= 0.999
        if p > 5:
            blob_lo = comp.compress(data, PrecisionBound(p - 1))
            stats_lo = bounded_fraction(data, comp.decompress(blob_lo), br)
            assert stats_lo.bounded_fraction < 0.999  # p is minimal


class TestSweep:
    def test_small_sweep_structure(self):
        records = sweep_records(
            apps=("NYX",),
            compressors=("SZ_T", "FPZIP"),
            bounds=(1e-2,),
            scale=0.25,
            fields_per_app=2,
        )
        assert len(records) == 4
        for r in records:
            assert r.ratio > 0.5
            assert r.compress_mbs > 0 and r.decompress_mbs > 0
            assert r.bounded == 1.0
        assert PAPER_BOUNDS == (1e-4, 1e-3, 1e-2, 1e-1)
