"""End-to-end experiment smoke tests at tiny scale.

Each experiment must run, produce its table(s), and satisfy the paper's
*qualitative* claims even on quarter-scale synthetic data.
"""

import numpy as np
import pytest

from repro.experiments import EXPERIMENT_NAMES
from repro.experiments import (
    errordist,
    extensions,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    intro,
    roundoff,
    table2,
    table3,
    table4,
)
from repro.experiments.common import sweep_records

SCALE = 0.25


@pytest.fixture(scope="module")
def tiny_sweep():
    return sweep_records(scale=SCALE, bounds=(1e-3, 1e-2), fields_per_app=2)


class TestTable2:
    def test_base_invariance(self):
        t = table2.run(scale=SCALE, bounds=(1e-3, 1e-1))
        assert len(t.rows) == 4
        for row in t.rows:
            spread = row[-1]
            assert spread < 10.0  # per-base CR spread stays small (%)


class TestFig1:
    def test_base_curves_coincide(self):
        """Bases shift points *along* one rate-distortion curve (the paper
        notes the bit-plane cutoff moves with the base) -- so all bases'
        (bit-rate, PSNR) points must lie on a common line."""
        t = fig1.run(scale=SCALE, bounds=(1e-3, 1e-2, 1e-1))
        by_field = {}
        for field, base, br, rate, psnr in t.rows:
            by_field.setdefault(field, []).append((rate, psnr))
        for field, pts in by_field.items():
            rates = np.array([p[0] for p in pts])
            psnrs = np.array([p[1] for p in pts])
            slope, intercept = np.polyfit(rates, psnrs, 1)
            residuals = psnrs - (slope * rates + intercept)
            assert np.abs(residuals).max() < 3.0, field


class TestTable3:
    def test_rows_and_positive_times(self):
        t = table3.run(scale=SCALE, repeats=1)
        assert len(t.rows) == 6
        for _, base, pre, post in t.rows:
            assert pre > 0 and post > 0


class TestTable4:
    @pytest.fixture(scope="class")
    def table(self):
        return table4.run(scale=SCALE, bounds=(1e-2,))

    def test_transformed_compressors_strictly_bounded(self, table):
        for row in table.rows:
            name, bounded = row[3], row[5]
            if name in ("SZ_T", "ZFP_T", "FPZIP"):
                assert bounded == "100%", row

    def test_zfp_p_not_bounded(self, table):
        rows = [r for r in table.rows if r[3] == "ZFP_P"]
        assert rows
        for row in rows:
            assert row[5] != "100%"
            assert row[7] > 1e-2  # Max E exceeds the bound

    def test_sz_t_best_ratio_among_bounded(self, table):
        for field in {r[0] for r in table.rows}:
            rows = {r[3]: r for r in table.rows if r[0] == field}
            bounded_crs = {
                n: r[8] for n, r in rows.items() if r[5] == "100%" and n != "ZFP_T"
            }
            assert max(bounded_crs, key=bounded_crs.get) == "SZ_T", field


class TestFig2:
    def test_sz_t_wins_nearly_everywhere(self, tiny_sweep):
        t = fig2.run(records=tiny_sweep)
        winners = [row[-1] for row in t.rows]
        assert winners.count("SZ_T") >= len(winners) * 0.6

    def test_isabela_flat_and_low(self, tiny_sweep):
        ratios = fig2.aggregate_ratio(tiny_sweep)
        isabela = [v for (app, c, br), v in ratios.items() if c == "ISABELA"]
        assert max(isabela) < 4.0


class TestFig3:
    def test_tables_and_isabela_slowest(self, tiny_sweep):
        tables = fig3.run(records=tiny_sweep)
        assert len(tables) == 2
        rates = fig3.aggregate_rates(tiny_sweep)
        by_comp = {}
        for (app, comp, br), (c_mbs, d_mbs) in rates.items():
            by_comp.setdefault(comp, []).append(c_mbs)
        mean = {c: float(np.mean(v)) for c, v in by_comp.items()}
        assert mean["ISABELA"] < mean["FPZIP"]


class TestFig4:
    def test_runs_and_sz_t_has_tightest_equivalent_bound(self, tmp_path):
        t = fig4.run(scale=SCALE, out_dir=str(tmp_path), target=5.0)
        rows = {r[0]: r for r in t.rows}
        assert set(rows) == {"SZ_ABS", "FPZIP", "SZ_T"}
        # every compressor roughly hit the ratio target
        for r in t.rows:
            assert r[1] >= 4.0
        # SZ_T's max relative error beats FPZIP's at equal ratio
        assert rows["SZ_T"][3] < rows["FPZIP"][3]
        assert (tmp_path / "fig4_SZ_T.pgm").exists()
        assert (tmp_path / "fig4_original_zoom.pgm").exists()


class TestFig5:
    def test_runs_and_sz_t_skews_least(self, tmp_path):
        t = fig5.run(scale=0.125, out_dir=str(tmp_path), target=6.0)
        rows = {r[0]: r for r in t.rows}
        # SZ_T skews least of the three at the common ratio (Fig. 5).
        assert rows["SZ_T"][3] < rows["SZ_ABS"][3]
        assert rows["SZ_T"][3] < rows["FPZIP"][3]
        # The absolute bound produces the worst tail cells.
        assert rows["SZ_ABS"][4] > rows["SZ_T"][4]
        assert (tmp_path / "fig5_SZ_ABS.pgm").exists()


class TestFig6:
    def test_sz_t_speedup_grows_with_scale(self):
        t = fig6.run(scale=SCALE, rank_counts=(1024, 4096))
        sz_t_rows = [r for r in t.rows if r[1] == "SZ_T"]
        assert len(sz_t_rows) == 2
        dump_speedups = [r[-2] for r in sz_t_rows]
        assert all(s > 1.0 for s in dump_speedups)
        assert dump_speedups[1] >= dump_speedups[0]


class TestRoundoff:
    def test_lemma2_prevents_all_violations(self):
        t = roundoff.run(scale=SCALE, bounds=(1e-4,))
        for row in t.rows:
            assert row[2] == 0  # with Lemma 2: zero violations


class TestIntro:
    def test_lossless_ceiling_vs_lossy(self):
        t = intro.run(scale=SCALE)
        for app, gzip_cr, shuf_cr, fpz_cr, sz_t_cr in t.rows:
            assert gzip_cr < 2.0  # the paper's "no more than 2:1"
            assert sz_t_cr > gzip_cr


class TestErrorDist:
    def test_sz_uniform_zfp_normal(self):
        t = errordist.run(scale=SCALE)
        rows = {(r[0], r[1]): r for r in t.rows}
        # temperature is the clean positive smooth field: textbook shapes
        assert rows[("temperature", "SZ_ABS")][7] == "uniform"
        assert rows[("temperature", "ZFP_A")][7] == "normal-ish"
        # ZFP over-preserves: its budget fill is far below SZ's
        assert rows[("temperature", "ZFP_A")][8] < 0.5 * rows[("temperature", "SZ_ABS")][8]


class TestExtensions:
    def test_transformed_successors_stay_bounded_and_ranked(self):
        t = extensions.run(scale=SCALE, bounds=(1e-2,))
        assert len(t.rows) == 4  # one per application
        for row in t.rows:
            ratios = row[2:6]
            assert all(r > 1.0 for r in ratios)
            # ZFP_T (over-preserving) never wins the ratio contest
            assert row[-1] != "ZFP_T"


class TestRegistryCompleteness:
    def test_experiment_list_matches_modules(self):
        assert set(EXPERIMENT_NAMES) == {
            "intro", "table2", "fig1", "table3", "table4", "fig2",
            "fig3", "fig4", "fig5", "fig6", "roundoff", "errordist",
            "extensions",
        }
