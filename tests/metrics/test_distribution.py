"""Error-distribution characterization."""

import numpy as np
import pytest

from repro.metrics.distribution import ErrorDistribution, error_distribution


class TestErrorDistribution:
    def test_uniform_errors_detected(self):
        rng = np.random.default_rng(0)
        x = np.zeros(50_000)
        recon = rng.uniform(-1e-3, 1e-3, size=x.size)
        dist = error_distribution(x, recon, 1e-3)
        assert dist.looks_uniform
        assert dist.std == pytest.approx(1 / np.sqrt(3), rel=0.05)
        assert dist.excess_kurtosis == pytest.approx(-1.2, abs=0.1)
        assert dist.fill == pytest.approx(1.0, abs=0.01)

    def test_gaussian_errors_detected(self):
        rng = np.random.default_rng(1)
        x = np.zeros(50_000)
        recon = np.clip(rng.normal(0, 2e-4, size=x.size), -1e-3, 1e-3)
        dist = error_distribution(x, recon, 1e-3)
        assert dist.looks_normal
        assert dist.fill < 1.01

    def test_exact_reconstruction_degenerate(self):
        x = np.arange(100, dtype=np.float64)
        dist = error_distribution(x, x, 1e-3)
        assert dist == ErrorDistribution(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def test_bias_visible_in_mean(self):
        x = np.zeros(1000)
        recon = np.full(1000, 5e-4) + np.random.default_rng(2).uniform(-1e-4, 1e-4, 1000)
        dist = error_distribution(x, recon, 1e-3)
        assert dist.mean > 0.3  # one-sided error shows up as bias

    def test_validation(self):
        with pytest.raises(ValueError):
            error_distribution(np.zeros(100), np.zeros(100), 0.0)
        with pytest.raises(ValueError):
            error_distribution(np.zeros(3), np.zeros(3), 1.0)

    def test_autocorrelation_white_vs_correlated(self, smooth_positive_3d):
        from repro.compressors import AbsoluteBound, SZCompressor, ZFPCompressor
        from repro.metrics.distribution import error_autocorrelation

        eb = float(smooth_positive_3d.max()) * 1e-3
        sz = SZCompressor()
        zfp = ZFPCompressor("accuracy")
        ac_sz = error_autocorrelation(
            smooth_positive_3d,
            sz.decompress(sz.compress(smooth_positive_3d, AbsoluteBound(eb))),
            4,
        )
        ac_zfp = error_autocorrelation(
            smooth_positive_3d,
            zfp.decompress(zfp.compress(smooth_positive_3d, AbsoluteBound(eb))),
            4,
        )
        assert np.abs(ac_sz).max() < 0.05  # quantization noise is white
        assert np.abs(ac_zfp).max() > 0.1  # transform errors correlate

    def test_autocorrelation_validation(self):
        from repro.metrics.distribution import error_autocorrelation

        with pytest.raises(ValueError):
            error_autocorrelation(np.zeros(10), np.zeros(10), 0)
        with pytest.raises(ValueError):
            error_autocorrelation(np.zeros(10), np.zeros(10), 10)
        # exact reconstruction: zero correlation by convention
        out = error_autocorrelation(np.arange(10.0), np.arange(10.0), 3)
        np.testing.assert_array_equal(out, 0.0)

    def test_sz_errors_are_uniform_zfp_bell_shaped(self, smooth_positive_3d):
        """The library-level reproduction of the paper's reference [7]."""
        from repro.compressors import AbsoluteBound, SZCompressor, ZFPCompressor

        eb = float(smooth_positive_3d.max()) * 1e-3
        sz = SZCompressor()
        zfp = ZFPCompressor("accuracy")
        d_sz = error_distribution(
            smooth_positive_3d, sz.decompress(sz.compress(smooth_positive_3d, AbsoluteBound(eb))), eb
        )
        d_zfp = error_distribution(
            smooth_positive_3d, zfp.decompress(zfp.compress(smooth_positive_3d, AbsoluteBound(eb))), eb
        )
        assert d_sz.looks_uniform
        assert d_sz.fill > 0.9
        assert d_zfp.looks_normal
        assert d_zfp.fill < 0.6  # over-preservation
