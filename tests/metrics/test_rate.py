"""Rate metrics: CR, bit-rate, PSNR flavours."""

import math

import numpy as np
import pytest

from repro.metrics import bit_rate, compression_ratio, psnr, relative_psnr


class TestRatio:
    def test_basic(self):
        assert compression_ratio(1000, 100) == 10.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            compression_ratio(10, 0)


class TestBitRate:
    def test_float32_uncompressed_is_32bits(self):
        assert bit_rate(4 * 1000, 1000) == 32.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            bit_rate(10, 0)


class TestPsnr:
    def test_known_value(self):
        x = np.array([0.0, 1.0])
        xd = np.array([0.1, 1.0])
        # range 1, mse = 0.005
        assert psnr(x, xd) == pytest.approx(-10 * math.log10(0.005))

    def test_exact_is_infinite(self):
        x = np.array([0.0, 1.0])
        assert psnr(x, x) == math.inf

    def test_constant_data_rejected(self):
        with pytest.raises(ValueError):
            psnr(np.ones(4), np.zeros(4))


class TestRelativePsnr:
    def test_uniform_relative_error(self):
        x = np.array([1.0, 100.0, 1e6])
        xd = x * 1.01
        assert relative_psnr(x, xd) == pytest.approx(-20 * math.log10(0.01))

    def test_zeros_excluded(self):
        x = np.array([0.0, 2.0])
        xd = np.array([0.0, 2.02])
        assert relative_psnr(x, xd) == pytest.approx(-20 * math.log10(0.01))

    def test_scale_invariance(self):
        """The paper's metric judges relative fidelity: rescaling the data
        must not move it (unlike classic PSNR)."""
        rng = np.random.default_rng(0)
        x = np.exp(rng.normal(0, 1, 100))
        xd = x * (1 + 0.001 * rng.standard_normal(100))
        assert relative_psnr(x, xd) == pytest.approx(relative_psnr(1e6 * x, 1e6 * xd))

    def test_exact_is_infinite(self):
        x = np.array([3.0])
        assert relative_psnr(x, x) == math.inf
