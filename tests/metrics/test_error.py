"""Error statistics (Table IV columns)."""

import numpy as np
import pytest

from repro.metrics import bounded_fraction, relative_errors


class TestRelativeErrors:
    def test_excludes_zeros(self):
        x = np.array([0.0, 2.0, -4.0])
        xd = np.array([0.5, 2.2, -4.4])
        rel = relative_errors(x, xd)
        np.testing.assert_allclose(rel, [0.1, 0.1])

    def test_exact_reconstruction(self):
        x = np.array([1.0, 2.0])
        assert relative_errors(x, x).max() == 0.0


class TestBoundedFraction:
    def test_all_bounded(self):
        x = np.array([1.0, -2.0, 4.0])
        xd = x * 1.0005
        stats = bounded_fraction(x, xd, 1e-3)
        assert stats.strictly_bounded
        assert stats.bounded_label() == "100%"
        assert stats.max_rel == pytest.approx(5e-4)
        assert stats.n == 3

    def test_partial_violation(self):
        x = np.ones(1000)
        xd = x.copy()
        xd[0] = 1.5
        stats = bounded_fraction(x, xd, 1e-2)
        assert stats.bounded_fraction == pytest.approx(0.999)
        assert not stats.strictly_bounded
        assert stats.bounded_label() == "99.90%"

    def test_nearly_bounded_label(self):
        x = np.ones(100_000)
        xd = x.copy()
        xd[0] = 1.5
        assert bounded_fraction(x, xd, 1e-2).bounded_label() == "~100%"

    def test_modified_zero_marker(self):
        x = np.array([0.0, 1.0])
        xd = np.array([1e-9, 1.0])
        stats = bounded_fraction(x, xd, 1e-2)
        assert stats.zeros_modified == 1
        assert stats.bounded_label().endswith("*")
        assert stats.bounded_fraction == 0.5

    def test_preserved_zero_counts_as_bounded(self):
        x = np.array([0.0, 1.0])
        stats = bounded_fraction(x, x, 1e-3)
        assert stats.strictly_bounded
        assert stats.zeros_modified == 0

    def test_avg_excludes_zeros(self):
        x = np.array([0.0, 2.0])
        xd = np.array([0.0, 2.02])
        assert bounded_fraction(x, xd, 0.5).avg_rel == pytest.approx(0.01)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            bounded_fraction(np.ones(3), np.ones(4), 0.1)

    def test_max_abs(self):
        x = np.array([10.0, -5.0])
        xd = np.array([10.5, -5.0])
        assert bounded_fraction(x, xd, 0.9).max_abs == pytest.approx(0.5)
