"""Angle-skew metric (Figure 5)."""

import numpy as np
import pytest

from repro.metrics import blockwise_mean_skew, skew_angles


def triple(vx, vy, vz):
    return (np.asarray(vx, float), np.asarray(vy, float), np.asarray(vz, float))


class TestSkewAngles:
    def test_identical_velocities_zero_skew(self):
        v = triple([1.0, 2.0], [0.5, -1.0], [3.0, 0.1])
        np.testing.assert_allclose(skew_angles(v, v), 0.0, atol=1e-6)

    def test_orthogonal_is_90_degrees(self):
        v = triple([1.0], [0.0], [0.0])
        w = triple([0.0], [1.0], [0.0])
        assert skew_angles(v, w)[0] == pytest.approx(90.0)

    def test_opposite_is_180_degrees(self):
        v = triple([1.0], [0.0], [0.0])
        w = triple([-1.0], [0.0], [0.0])
        assert skew_angles(v, w)[0] == pytest.approx(180.0)

    def test_scaling_does_not_skew(self):
        v = triple([1.0, -2.0], [2.0, 1.0], [3.0, 0.0])
        w = tuple(2.5 * c for c in v)
        np.testing.assert_allclose(skew_angles(v, w), 0.0, atol=1e-6)

    def test_zero_vector_counts_as_unskewed(self):
        v = triple([0.0], [0.0], [0.0])
        assert skew_angles(v, v)[0] == 0.0

    def test_small_relative_error_small_angle(self):
        rng = np.random.default_rng(0)
        v = tuple(rng.normal(0, 1000, 500) for _ in range(3))
        w = tuple(c * (1 + 0.001 * rng.standard_normal(500)) for c in v)
        angles = skew_angles(v, w)
        assert angles.max() < 0.5  # ~0.1% error -> well under a degree

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            skew_angles(triple([1.0], [1.0], [1.0]), triple([1, 2], [1, 2], [1, 2]))


class TestBlockwiseMean:
    def test_cell_means(self):
        angles = np.array([1.0, 3.0, 5.0, 7.0])
        np.testing.assert_allclose(blockwise_mean_skew(angles, 2), [2.0, 6.0])

    def test_truncates_tail(self):
        angles = np.arange(10, dtype=float)
        out = blockwise_mean_skew(angles, 3)  # uses first 9 values
        np.testing.assert_allclose(out, [1.0, 4.0, 7.0])

    def test_invalid_cells(self):
        with pytest.raises(ValueError):
            blockwise_mean_skew(np.ones(4), 0)
        with pytest.raises(ValueError):
            blockwise_mean_skew(np.ones(4), 5)
