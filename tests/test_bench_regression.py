"""Benchmark regression gate (scripts/check_bench_regression.py)."""

import importlib.util
import json
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression", REPO / "scripts" / "check_bench_regression.py"
)
gate = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(gate)


def write_report(directory, records, name="BENCH_x.json"):
    path = directory / name
    path.write_text(json.dumps({"version": 1, "records": records}))
    return path


def rec(test, mb_per_s=10.0, ratio=4.0, **extra):
    return {"test": test, "MB_per_s": mb_per_s, "ratio": ratio, **extra}


FIVE = [rec(f"t{i}", mb_per_s=10.0 + i) for i in range(5)]


@pytest.fixture()
def dirs(tmp_path):
    base = tmp_path / "baselines"
    fresh = tmp_path / "fresh"
    base.mkdir()
    fresh.mkdir()
    return base, fresh


def run(base, fresh, *extra):
    return gate.main(
        ["--fresh-dir", str(fresh), "--baseline-dir", str(base), *extra]
    )


class TestGateVerdicts:
    def test_identical_reports_pass(self, dirs):
        base, fresh = dirs
        write_report(base, FIVE)
        write_report(fresh, FIVE)
        assert run(base, fresh) == 0

    def test_single_test_minus_15_percent_fails(self, dirs):
        """The acceptance fixture: one benchmark, throughput down 15%."""
        base, fresh = dirs
        write_report(base, [rec("roundtrip", mb_per_s=10.0)])
        write_report(fresh, [rec("roundtrip", mb_per_s=8.5)])
        assert run(base, fresh) == 1

    def test_one_of_many_regressing_fails_despite_normalization(self, dirs):
        base, fresh = dirs
        write_report(base, FIVE)
        slow = [dict(r) for r in FIVE]
        slow[2]["MB_per_s"] *= 0.80
        write_report(fresh, slow)
        assert run(base, fresh) == 1

    def test_uniform_slowdown_reads_as_machine_speed(self, dirs, capsys):
        """A 2x across-the-board slowdown is normalized away by design."""
        base, fresh = dirs
        write_report(base, FIVE)
        write_report(fresh, [dict(r, MB_per_s=r["MB_per_s"] / 2) for r in FIVE])
        assert run(base, fresh) == 0
        assert "normalization" in capsys.readouterr().out

    def test_ratio_drop_fails_and_improvement_passes(self, dirs):
        base, fresh = dirs
        write_report(base, FIVE)
        write_report(fresh, [dict(r, ratio=r["ratio"] * 0.95) for r in FIVE])
        assert run(base, fresh) == 1
        write_report(fresh, [dict(r, ratio=r["ratio"] * 1.5) for r in FIVE])
        assert run(base, fresh) == 0

    def test_bound_violation_fails_unconditionally(self, dirs):
        """max_rel_err > rel_bound is a correctness bug, not a perf tolerance."""
        base, fresh = dirs
        good = [rec("roundtrip", max_rel_err=9e-4, rel_bound=1e-3)]
        write_report(base, good)
        write_report(fresh, [rec("roundtrip", max_rel_err=2e-3, rel_bound=1e-3)])
        assert run(base, fresh) == 1
        write_report(fresh, good)
        assert run(base, fresh) == 0

    def test_baseline_test_missing_from_fresh_fails(self, dirs):
        base, fresh = dirs
        write_report(base, FIVE)
        write_report(fresh, FIVE[:-1])  # silently skipped benchmark
        assert run(base, fresh) == 1

    def test_new_fresh_test_is_only_a_note(self, dirs, capsys):
        base, fresh = dirs
        write_report(base, FIVE)
        write_report(fresh, FIVE + [rec("brand-new")])
        assert run(base, fresh) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_missing_fresh_file_fails(self, dirs):
        base, fresh = dirs
        write_report(base, FIVE)
        assert run(base, fresh) == 1

    def test_no_baselines_at_all_fails_with_hint(self, dirs, capsys):
        base, fresh = dirs
        write_report(fresh, FIVE)
        assert run(base, fresh) == 1
        assert "--update-baselines" in capsys.readouterr().err


class TestUpdateBaselines:
    def test_promotes_fresh_reports(self, dirs):
        base, fresh = dirs
        write_report(fresh, FIVE)
        assert run(base, fresh, "--update-baselines") == 0
        assert (base / "BENCH_x.json").exists()
        assert run(base, fresh) == 0  # now in agreement

    def test_nothing_to_promote_fails(self, dirs):
        base, fresh = dirs
        assert run(base, fresh, "--update-baselines") == 1


class TestReportLoading:
    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"version": 2, "records": []}))
        with pytest.raises(ValueError, match="version"):
            gate.load_report(str(path))

    def test_bad_tolerances_rejected(self, dirs):
        base, fresh = dirs
        with pytest.raises(SystemExit):
            run(base, fresh, "--throughput-tolerance", "1.5")


def test_committed_baselines_are_self_consistent():
    """The repo's own baselines must pass the gate against themselves."""
    baselines = REPO / "benchmarks" / "baselines"
    assert list(baselines.glob("BENCH_*.json")), "no committed baselines"
    assert gate.main(
        ["--fresh-dir", str(baselines), "--baseline-dir", str(baselines)]
    ) == 0


class TestCodecPathGate:
    def test_mismatch_fails_with_update_hint(self, dirs, capsys):
        base, fresh = dirs
        write_report(base, [rec("t", codec_path="scalar")])
        write_report(fresh, [rec("t", codec_path="vectorized")])
        assert run(base, fresh) == 1
        assert "--update-baselines" in capsys.readouterr().out

    def test_matching_paths_pass(self, dirs):
        base, fresh = dirs
        write_report(base, [rec("t", codec_path="vectorized")])
        write_report(fresh, [rec("t", codec_path="vectorized")])
        assert run(base, fresh) == 0

    def test_unstamped_baseline_reads_as_scalar(self, dirs):
        """Baselines written before stamping existed imply the scalar coder."""
        base, fresh = dirs
        write_report(base, [rec("t")])
        write_report(fresh, [rec("t", codec_path="vectorized")])
        assert run(base, fresh) == 1
        write_report(fresh, [rec("t", codec_path="scalar")])
        assert run(base, fresh) == 0

    def test_unstamped_fresh_record_is_not_checked(self, dirs):
        base, fresh = dirs
        write_report(base, [rec("t", codec_path="vectorized")])
        write_report(fresh, [rec("t")])
        assert run(base, fresh) == 0


def table3_records(roundtrip_mb_s, host_factor=1.0):
    """A minimal table3-shaped report at ``host_factor`` x reference speed."""
    ref = gate._PREVEC_REFERENCE
    recs = [
        rec(t, mb_per_s=round(ref["anchor_MB_s"] * host_factor, 3), ratio=None)
        for t in ref["anchor_tests"]
    ]
    recs.append(rec(ref["test"], mb_per_s=roundtrip_mb_s))
    return recs


class TestSpeedupGate:
    """The table3 round trip is gated against a frozen scalar-coder reference."""

    NAME = "BENCH_table3.json"

    def test_fast_roundtrip_passes(self, dirs, capsys):
        base, fresh = dirs
        recs = table3_records(roundtrip_mb_s=12.0)  # 10x the 1.199 reference
        write_report(base, recs, name=self.NAME)
        write_report(fresh, recs, name=self.NAME)
        assert run(base, fresh) == 0
        assert "speedup gate" in capsys.readouterr().out

    def test_scalar_era_throughput_fails(self, dirs, capsys):
        base, fresh = dirs
        recs = table3_records(roundtrip_mb_s=1.2)  # ~1x: the vectorization lost
        write_report(base, recs, name=self.NAME)
        write_report(fresh, recs, name=self.NAME)
        assert run(base, fresh) == 1
        assert "speedup regression" in capsys.readouterr().out

    def test_normalized_by_host_speed(self, dirs):
        """On a half-speed host, half the absolute throughput still passes."""
        base, fresh = dirs
        recs = table3_records(roundtrip_mb_s=6.0, host_factor=0.5)
        write_report(base, recs, name=self.NAME)
        write_report(fresh, recs, name=self.NAME)
        assert run(base, fresh) == 0  # 6.0 / (1.199 * 0.5) ~ 10x
        slow = table3_records(roundtrip_mb_s=6.0, host_factor=2.0)
        write_report(base, slow, name=self.NAME)
        write_report(fresh, slow, name=self.NAME)
        assert run(base, fresh) == 1  # 6.0 / (1.199 * 2.0) ~ 2.5x

    def test_zero_disables_the_gate(self, dirs):
        base, fresh = dirs
        recs = table3_records(roundtrip_mb_s=1.2)
        write_report(base, recs, name=self.NAME)
        write_report(fresh, recs, name=self.NAME)
        assert run(base, fresh, "--min-speedup", "0") == 0

    def test_missing_roundtrip_record_fails(self, dirs):
        base, fresh = dirs
        recs = table3_records(roundtrip_mb_s=12.0)[:-1]
        write_report(base, recs, name=self.NAME)
        write_report(fresh, recs, name=self.NAME)
        assert run(base, fresh) == 1

    def test_other_reports_not_gated(self, dirs):
        base, fresh = dirs
        recs = table3_records(roundtrip_mb_s=1.2)
        write_report(base, recs, name="BENCH_other.json")
        write_report(fresh, recs, name="BENCH_other.json")
        assert run(base, fresh) == 0


def write_stamped_report(directory, records, bench="x", run_id="fresh-run",
                         name="BENCH_x.json"):
    """A fresh report the way benchmarks/_emit.py writes them post-stamping."""
    path = directory / name
    path.write_text(json.dumps({
        "version": 1,
        "bench": bench,
        "records": records,
        "stamp": {"run_id": run_id},
    }))
    return path


def write_ledger(path, runs, bench="x"):
    """Each run is ``(run_id, ts, records)``, appended as one entry."""
    import sys

    sys.path.insert(0, str(REPO / "src"))
    try:
        from repro.observe.ledger import append_entry, make_entry
    finally:
        sys.path.pop(0)
    for run_id, ts, records in runs:
        append_entry(str(path), make_entry(
            bench, records, run_id, git={}, machine={}, ts=ts,
        ))


class TestLedgerTrendGate:
    def history(self, tmp_path, mb_values, bench="x"):
        ledger = tmp_path / "ledger.jsonl"
        write_ledger(ledger, [
            (f"old{i}", 1000.0 + i, [rec("t1", mb_per_s=v)])
            for i, v in enumerate(mb_values)
        ], bench=bench)
        return ledger

    def test_steady_trend_passes(self, dirs, tmp_path, capsys):
        base, fresh = dirs
        ledger = self.history(tmp_path, [9.8, 10.0, 10.2])
        write_report(base, [rec("t1", mb_per_s=10.0)])
        write_stamped_report(fresh, [rec("t1", mb_per_s=10.0)])
        assert run(base, fresh, "--ledger", str(ledger)) == 0
        assert "ledger trend" in capsys.readouterr().out

    def test_trend_regression_fails(self, dirs, tmp_path, capsys):
        base, fresh = dirs
        ledger = self.history(tmp_path, [10.0, 10.0, 10.0])
        write_report(base, [rec("t1", mb_per_s=6.0)])  # stale frozen baseline
        write_stamped_report(fresh, [rec("t1", mb_per_s=6.0)])
        assert run(base, fresh, "--ledger", str(ledger)) == 1
        assert "ledger trend: throughput regression" in capsys.readouterr().out

    def test_fresh_runs_own_entry_excluded(self, dirs, tmp_path):
        """The bench run appends itself before the gate reads the ledger."""
        base, fresh = dirs
        ledger = self.history(tmp_path, [10.0, 10.0])
        write_ledger(ledger, [("fresh-run", 2000.0, [rec("t1", mb_per_s=6.0)])])
        write_report(base, [rec("t1", mb_per_s=6.0)])
        write_stamped_report(fresh, [rec("t1", mb_per_s=6.0)], run_id="fresh-run")
        # Median must come from the two old runs (10.0), not be dragged to
        # 6.0 by the fresh run's own line: 6/10 < 0.85 fails.
        assert run(base, fresh, "--ledger", str(ledger)) == 1

    def test_empty_ledger_is_a_note_not_a_failure(self, dirs, tmp_path, capsys):
        base, fresh = dirs
        write_report(base, [rec("t1")])
        write_stamped_report(fresh, [rec("t1")])
        assert run(base, fresh, "--ledger", str(tmp_path / "none.jsonl")) == 0
        assert "no prior runs" in capsys.readouterr().out

    def test_ledger_only_mode_without_baselines(self, dirs, tmp_path, capsys):
        base, fresh = dirs  # baseline dir left empty
        ledger = self.history(tmp_path, [10.0, 10.0, 10.0])
        write_stamped_report(fresh, [rec("t1", mb_per_s=10.0)])
        assert run(base, fresh, "--ledger", str(ledger)) == 0
        out = capsys.readouterr().out
        assert "gating on the ledger trend only" in out
        write_stamped_report(fresh, [rec("t1", mb_per_s=6.0)])
        assert run(base, fresh, "--ledger", str(ledger)) == 1

    def test_mismatched_codec_path_history_skipped(self, dirs, tmp_path, capsys):
        base, fresh = dirs
        ledger = tmp_path / "ledger.jsonl"
        write_ledger(ledger, [
            ("old0", 1000.0, [rec("t1", mb_per_s=60.0, codec_path="vectorized")]),
            ("old1", 1001.0, [rec("t1", mb_per_s=10.0, codec_path="scalar")]),
        ])
        fresh_rec = rec("t1", mb_per_s=9.5, codec_path="scalar")
        write_report(base, [fresh_rec])
        write_stamped_report(fresh, [fresh_rec])
        # Against the scalar history (10.0) this passes; folding the
        # vectorized 60.0 into the median would fail it.
        assert run(base, fresh, "--ledger", str(ledger)) == 0

    def test_window_limits_history(self, dirs, tmp_path):
        base, fresh = dirs
        # A slow early era, then a fast recent era the window isolates.
        ledger = self.history(tmp_path, [5.0, 5.0, 5.0, 10.0, 10.0])
        write_report(base, [rec("t1", mb_per_s=6.0)])
        write_stamped_report(fresh, [rec("t1", mb_per_s=6.0)])
        assert run(base, fresh, "--ledger", str(ledger),
                   "--ledger-window", "2") == 1  # vs recent 10.0: 0.6x
        assert run(base, fresh, "--ledger", str(ledger),
                   "--ledger-window", "5") == 0  # vs overall median 5.0: 1.2x

    def test_bad_ledger_args_rejected(self, dirs):
        base, fresh = dirs
        with pytest.raises(SystemExit):
            run(base, fresh, "--ledger", "x", "--ledger-window", "0")
        with pytest.raises(SystemExit):
            run(base, fresh, "--ledger", "x", "--ledger-tolerance", "1.5")


class TestQualityGate:
    def quality_rec(self, rel_p99=1e-3, rel_bias=-2e-6):
        return rec("roundtrip", rel_p99=rel_p99, rel_bias=rel_bias)

    def test_unchanged_quality_passes_with_note(self, dirs, capsys):
        base, fresh = dirs
        write_report(base, [self.quality_rec()])
        write_report(fresh, [self.quality_rec()])
        assert run(base, fresh) == 0
        assert "quality gate" in capsys.readouterr().out

    def test_p99_growth_beyond_tolerance_fails(self, dirs, capsys):
        base, fresh = dirs
        write_report(base, [self.quality_rec(rel_p99=1e-3)])
        write_report(fresh, [self.quality_rec(rel_p99=1.5e-3)])
        assert run(base, fresh) == 1
        assert "p99 rel error" in capsys.readouterr().out

    def test_p99_improvement_passes(self, dirs):
        base, fresh = dirs
        write_report(base, [self.quality_rec(rel_p99=1e-3)])
        write_report(fresh, [self.quality_rec(rel_p99=5e-4)])
        assert run(base, fresh) == 0

    def test_bias_magnitude_growth_fails(self, dirs, capsys):
        base, fresh = dirs
        write_report(base, [self.quality_rec(rel_bias=-2e-6)])
        write_report(fresh, [self.quality_rec(rel_bias=+4e-6)])  # |bias| doubled
        assert run(base, fresh) == 1
        assert "signed rel bias" in capsys.readouterr().out

    def test_near_zero_baseline_bias_uses_floor(self, dirs):
        """A tiny baseline bias must not make any nonzero fresh bias fail."""
        base, fresh = dirs
        write_report(base, [self.quality_rec(rel_bias=1e-16)])
        write_report(fresh, [self.quality_rec(rel_bias=5e-10)])
        assert run(base, fresh) == 0

    def test_baseline_without_quality_keys_is_skipped(self, dirs):
        """Pre-stamping baselines bootstrap cleanly: no keys, no gate."""
        base, fresh = dirs
        write_report(base, [rec("roundtrip")])
        write_report(fresh, [self.quality_rec(rel_p99=9e-3)])
        assert run(base, fresh) == 0

    def test_custom_tolerance(self, dirs):
        base, fresh = dirs
        write_report(base, [self.quality_rec(rel_p99=1e-3)])
        write_report(fresh, [self.quality_rec(rel_p99=1.1e-3)])
        assert run(base, fresh) == 0  # +10% inside the default 25%
        assert run(base, fresh, "--quality-tolerance", "0.05") == 1

    def test_bad_quality_tolerance_rejected(self, dirs):
        base, fresh = dirs
        with pytest.raises(SystemExit):
            run(base, fresh, "--quality-tolerance", "1.5")


class TestOverheadPairGate:
    def pair(self, base_extra, safe_extra):
        return [
            rec("ov[off]", overhead_pair="p", overhead_role="baseline",
                **base_extra),
            rec("ov[on]", overhead_pair="p", overhead_role="safeguarded",
                overhead_budget=0.05, **safe_extra),
        ]

    def test_within_budget_passes(self, dirs, capsys):
        base, fresh = dirs
        write_report(base, FIVE)
        records = FIVE + self.pair({"min_s": 1.0}, {"min_s": 1.03})
        write_report(fresh, records)
        assert run(base, fresh) == 0
        assert "safeguard overhead" in capsys.readouterr().out

    def test_over_budget_fails(self, dirs, capsys):
        base, fresh = dirs
        write_report(base, FIVE)
        write_report(fresh, FIVE + self.pair({"min_s": 1.0}, {"min_s": 1.2}))
        assert run(base, fresh) == 1
        assert "overhead regression" in capsys.readouterr().out

    def test_overhead_time_s_preferred_over_min_s(self, dirs):
        """A paired-design estimate outranks each side's own min.

        The mins here disagree with the paired deltas by design: trusting
        min_s would fail the budget, the explicit estimate passes.
        """
        base, fresh = dirs
        write_report(base, FIVE)
        records = FIVE + self.pair(
            {"min_s": 1.0, "overhead_time_s": 1.0},
            {"min_s": 1.2, "overhead_time_s": 1.02},
        )
        write_report(fresh, records)
        assert run(base, fresh) == 0

    def test_incomplete_pair_fails(self, dirs, capsys):
        base, fresh = dirs
        write_report(base, FIVE)
        write_report(fresh, FIVE + self.pair({"min_s": 1.0}, {})[:1])
        assert run(base, fresh) == 1
        assert "incomplete" in capsys.readouterr().out
