"""Fault-injection suite: checksums, recovery, retry, and the injectors.

Deterministic by construction: every random choice derives from
``REPRO_FAULT_SEED`` (default 0), which CI sweeps over a small matrix.  A
failure reproduces exactly by exporting the same seed locally.
"""

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import (
    ChecksumError,
    RelativeBound,
    StreamError,
    compress,
    decompress,
    recover_array,
    verify_stream,
)
from repro.core.chunked import ChunkedCompressor
from repro.parallel.runner import atomic_write_bytes, dump_file_per_process
from repro.testing import (
    CrashingExecutor,
    FlakyFilesystem,
    StallingExecutor,
    corrupt_chunk,
    corrupt_section,
    drop_section,
    flip_bit,
    flip_random_bits,
    truncate,
)

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))
BOUND = RelativeBound(1e-2)


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(SEED)
    return rng.lognormal(0.0, 1.0, size=4000).astype(np.float32)


@pytest.fixture(scope="module")
def chunked_blob(field):
    cc = ChunkedCompressor(chunk_bytes=4000, executor="serial")
    blob = cc.compress(field, BOUND)
    assert cc.last_chunk_count >= 3
    return blob


class TestBitFlipDetection:
    def test_every_single_bit_flip_is_caught(self, field):
        """Acceptance: no single-bit flip in a v2 stream decodes silently.

        Bits inside the 5-byte magic/version header fail structurally
        (ContainerError); every bit from byte 5 onward is covered by the
        stream CRC and must surface as ChecksumError.
        """
        blob = compress(field[:200], BOUND)
        baseline = decompress(blob)
        for bit in range(8 * len(blob)):
            damaged = flip_bit(blob, bit)
            if bit < 8 * 5:
                with pytest.raises(StreamError):
                    decompress(damaged)
            else:
                with pytest.raises(ChecksumError):
                    decompress(damaged)
        np.testing.assert_array_equal(decompress(blob), baseline)

    def test_multi_bit_flips_caught(self, chunked_blob):
        damaged = flip_random_bits(chunked_blob, n=8, seed=SEED, start=5)
        with pytest.raises(ChecksumError):
            decompress(damaged)
        assert not verify_stream(damaged).ok

    def test_flip_bit_is_an_involution(self, chunked_blob):
        bit = (SEED * 2654435761 + 7) % (8 * len(chunked_blob))
        assert flip_bit(flip_bit(chunked_blob, bit), bit) == chunked_blob


class TestChunkRecovery:
    @pytest.mark.parametrize("lost", [0, 1, 2])
    def test_one_corrupt_chunk_recovers_the_rest(self, field, chunked_blob, lost):
        """Acceptance: damage to chunk N loses only chunk N's span."""
        damaged = corrupt_chunk(chunked_blob, lost, n_bits=3, seed=SEED)
        with pytest.raises(ChecksumError):
            decompress(damaged)
        cc = ChunkedCompressor(executor="serial")
        arr, report = cc.decompress_partial(damaged)
        assert report.n_lost_chunks == 1
        assert report.failures[0].index == lost
        start, stop = report.failures[0].span
        assert report.lost_elements == stop - start
        assert np.isnan(arr[start:stop]).all()
        intact = np.ones(arr.size, dtype=bool)
        intact[start:stop] = False
        clean = decompress(chunked_blob)
        np.testing.assert_array_equal(arr[intact], clean[intact])

    def test_recover_array_on_clean_stream(self, chunked_blob):
        arr, report = recover_array(chunked_blob)
        assert report is None
        np.testing.assert_array_equal(arr, decompress(chunked_blob))

    def test_recover_array_custom_fill(self, chunked_blob):
        damaged = corrupt_chunk(chunked_blob, 1, seed=SEED)
        arr, report = recover_array(damaged, fill=-1.0)
        start, stop = report.failures[0].span
        assert (arr.ravel()[start:stop] == -1.0).all()

    def test_corrupt_metadata_is_not_recoverable(self, chunked_blob):
        # Damage to the chunk table itself must refuse, not fabricate data.
        damaged = corrupt_section(chunked_blob, "lens", n_bits=1, seed=SEED)
        cc = ChunkedCompressor(executor="serial")
        with pytest.raises(StreamError):
            cc.decompress_partial(damaged)

    def test_report_summary_mentions_loss(self, chunked_blob):
        _, report = recover_array(corrupt_chunk(chunked_blob, 0, seed=SEED))
        assert "lost 1/" in report.summary()
        assert not report.complete
        assert report.recovered_elements + report.lost_elements == report.total_elements


class TestPrefixTruncation:
    def test_every_prefix_fails_or_recovers(self, field):
        """Property: any prefix of a CHUNKED stream either raises a
        StreamError or partially recovers -- never crashes, hangs, or
        returns undamaged-looking data from damaged bytes."""
        cc = ChunkedCompressor(chunk_bytes=1200, executor="serial")
        blob = cc.compress(field[:1200], BOUND)
        clean = decompress(blob)
        for keep in range(len(blob)):
            cut = truncate(blob, keep)
            with pytest.raises(StreamError):
                decompress(cut)
            arr, report = recover_array(cut)
            if arr is None:
                assert report.failures[0].span is None
                continue
            assert arr.shape == clean.shape
            # every element is either recovered exactly or filled with NaN
            good = ~np.isnan(arr)
            np.testing.assert_array_equal(arr[good], clean[good])
            assert report is not None

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_sampled_prefixes_across_dtypes_and_executors(self, dtype, executor):
        rng = np.random.default_rng(SEED + 17)
        data = rng.lognormal(size=900).astype(dtype)
        cc = ChunkedCompressor(chunk_bytes=1500, workers=2, executor=executor)
        blob = cc.compress(data, BOUND)
        for keep in rng.integers(0, len(blob), size=40):
            cut = truncate(blob, int(keep))
            with pytest.raises(StreamError):
                decompress(cut)
            arr, _ = recover_array(cut)
            if arr is not None:
                assert arr.dtype == dtype


class TestSectionFaults:
    @pytest.mark.parametrize(
        "key", ["dtype", "shape", "n_chunks", "offs", "lens", "elems", "payload"]
    )
    def test_dropped_section_raises_stream_error(self, chunked_blob, key):
        with pytest.raises(StreamError):
            decompress(drop_section(chunked_blob, key))

    def test_drop_unknown_section_rejected(self, chunked_blob):
        with pytest.raises(StreamError):
            drop_section(chunked_blob, "no_such_section")

    def test_corrupt_section_localized_by_verify(self, chunked_blob):
        report = verify_stream(corrupt_section(chunked_blob, "elems", seed=SEED))
        assert any("'elems'" in p for p in report.problems)


class TestWorkerCrashRetry:
    def test_compression_survives_worker_crash(self, field):
        """Acceptance: a crashed chunk worker degrades to serial retry and
        the bytes are identical to an undisturbed run."""
        reference = ChunkedCompressor(chunk_bytes=4000, executor="serial")
        want = reference.compress(field, BOUND)

        crash_on = 1 + SEED % reference.last_chunk_count
        cc = ChunkedCompressor(
            chunk_bytes=4000,
            workers=2,
            executor=lambda n: CrashingExecutor(
                ThreadPoolExecutor(max_workers=n), crash_on=crash_on
            ),
        )
        assert cc.compress(field, BOUND) == want
        assert cc.last_retried_chunks == 1

    def test_decompression_survives_worker_crash(self, field, chunked_blob):
        cc = ChunkedCompressor(
            workers=2,
            executor=lambda n: CrashingExecutor(
                ThreadPoolExecutor(max_workers=n), crash_on=(1, 2)
            ),
        )
        np.testing.assert_allclose(
            cc.decompress(chunked_blob), field, rtol=1.01e-2
        )
        assert cc.last_retried_chunks == 2

    def test_corrupt_chunk_still_raises_under_crashy_pool(self, chunked_blob):
        # Deterministic damage must not be mistaken for a transient fault.
        damaged = corrupt_chunk(chunked_blob, 0, seed=SEED)
        cc = ChunkedCompressor(
            workers=2,
            executor=lambda n: CrashingExecutor(
                ThreadPoolExecutor(max_workers=n), crash_on=2
            ),
        )
        with pytest.raises(ChecksumError):
            cc.decompress(damaged)


class TestFlakyFilesystem:
    def test_atomic_write_retries_through_transient_failures(self, tmp_path, chunked_blob):
        path = str(tmp_path / "x.rpz")
        with FlakyFilesystem(failures=2) as fs:
            atomic_write_bytes(path, chunked_blob, retries=3, backoff_s=0.0,
                               _sleep=lambda s: None)
        assert fs.calls == 3
        with open(path, "rb") as fh:
            assert fh.read() == chunked_blob

    def test_exhausted_retries_propagate(self, tmp_path, chunked_blob):
        with FlakyFilesystem(failures=10):
            with pytest.raises(OSError, match="injected"):
                atomic_write_bytes(str(tmp_path / "y.rpz"), chunked_blob,
                                   retries=2, backoff_s=0.0, _sleep=lambda s: None)

    def test_no_partial_file_left_behind(self, tmp_path, chunked_blob):
        target = tmp_path / "z.rpz"
        with FlakyFilesystem(failures=10):
            with pytest.raises(OSError):
                atomic_write_bytes(str(target), chunked_blob, retries=1,
                                   backoff_s=0.0, _sleep=lambda s: None)
        assert not target.exists()

    def test_dump_survives_flaky_writes(self, tmp_path, field):
        from repro import get_compressor

        shards = [field[:2000], field[2000:]]
        with FlakyFilesystem(failures=1):
            dump_file_per_process(shards, get_compressor("SZ_T"), BOUND,
                                  str(tmp_path), io_backoff_s=0.0)
        for rank in range(2):
            assert (tmp_path / f"rank_{rank}.rpz").exists()


class TestNonFiniteInput:
    def test_nan_and_inf_counted_up_front(self, field):
        data = field.copy()
        data[10] = np.nan
        data[20] = np.nan
        data[30] = np.inf
        with pytest.raises(ValueError, match=r"2 NaN and 1 Inf .*of 4000"):
            compress(data, BOUND)

    def test_chunked_rejects_non_finite_before_splitting(self, field):
        data = field.copy()
        data[-1] = -np.inf
        cc = ChunkedCompressor(chunk_bytes=4000, executor="serial")
        with pytest.raises(ValueError, match="non-finite"):
            cc.compress(data, BOUND)


class TestVerifyStream:
    def test_clean_chunked_stream_verifies(self, chunked_blob):
        report = verify_stream(chunked_blob)
        assert report.ok
        assert report.codec == "CHUNKED"
        assert report.checksummed
        assert report.n_chunks >= 3
        assert "OK" in report.summary()

    def test_v1_stream_verifies_with_note(self, field):
        from repro.encoding.container import Container

        blob = compress(field[:100], BOUND)
        box = Container.from_bytes(blob)
        v1 = box.to_bytes(checksums=False)
        report = verify_stream(v1)
        assert report.ok and not report.checksummed
        assert any("no checksums" in n for n in report.notes)

    def test_archive_fields_verified_recursively(self, field):
        from repro.archive import compress_dataset

        blob = compress_dataset({"a": field[:500], "b": field[500:900]}, BOUND)
        assert verify_stream(blob).ok
        damaged = corrupt_section(blob, "field:b", n_bits=1, seed=SEED)
        report = verify_stream(damaged)
        assert not report.ok
        assert any("field 'b'" in p for p in report.problems)

    def test_garbage_is_a_structure_problem(self):
        report = verify_stream(b"not a stream at all")
        assert not report.ok
        assert report.problems[0].startswith("structure:")

class TestStallingExecutor:
    def test_stalled_future_is_pending_and_cancellable(self):
        ex = StallingExecutor(ThreadPoolExecutor(1), stall_on=1)
        fut = ex.submit(lambda: 42)
        assert not fut.done()
        assert fut.cancel()
        assert ex.submit(lambda: 42).result(timeout=5) == 42
        ex.shutdown()

    def test_stall_on_tuple_counts_submissions(self):
        ex = StallingExecutor(ThreadPoolExecutor(2), stall_on=(2, 3))
        futs = [ex.submit(lambda i=i: i) for i in range(4)]
        assert futs[0].result(timeout=5) == 0
        assert futs[3].result(timeout=5) == 3
        assert not futs[1].done() and not futs[2].done()
        for f in futs[1:3]:
            f.cancel()
        ex.shutdown()

    def test_delay_mode_eventually_completes(self):
        ex = StallingExecutor(ThreadPoolExecutor(1), stall_on=1, delay_s=0.05)
        assert ex.submit(lambda: "late").result(timeout=5) == "late"
        ex.shutdown()


class TestFillModes:
    def test_fill_zero(self, chunked_blob):
        damaged = corrupt_chunk(chunked_blob, 1, seed=SEED)
        cc = ChunkedCompressor(executor="serial")
        arr, report = cc.decompress_partial(damaged, fill="zero")
        start, stop = report.failures[0].span
        assert (arr.ravel()[start:stop] == 0.0).all()
        assert not np.isnan(arr).any()
        assert report.fill_mode == "zero"
        assert report.filled_elements == stop - start

    def test_fill_nearest_copies_survivors(self, field, chunked_blob):
        damaged = corrupt_chunk(chunked_blob, 1, seed=SEED)
        cc = ChunkedCompressor(executor="serial")
        arr, report = cc.decompress_partial(damaged, fill="nearest")
        start, stop = report.failures[0].span
        assert not np.isnan(arr).any()
        # Each filled element equals its nearest surviving neighbour.
        assert arr.ravel()[start] == arr.ravel()[start - 1]
        assert report.fill_mode == "nearest"

    def test_fill_float_via_recover_array(self, chunked_blob):
        damaged = corrupt_chunk(chunked_blob, 0, seed=SEED)
        arr, report = recover_array(damaged, fill=7.5)
        start, stop = report.failures[0].span
        assert (arr.ravel()[start:stop] == 7.5).all()
        assert report.fill_mode == "7.5"

    def test_bad_fill_mode_rejected(self, chunked_blob):
        cc = ChunkedCompressor(executor="serial")
        with pytest.raises(ValueError, match="fill"):
            cc.decompress_partial(chunked_blob, fill="interpolate")

    def test_nearest_on_whole_stream_loss_keeps_nan(self, field):
        blob = compress(field[:200], BOUND)
        arr, report = recover_array(truncate(blob, len(blob) - 2), fill="nearest")
        assert arr is not None and np.isnan(arr).all()
        assert report is not None and not report.complete


class TestDropSectionVersions:
    def test_drop_section_preserves_v3(self, field):
        from repro.encoding.container import Container

        cc = ChunkedCompressor(chunk_bytes=4000, parity=1, executor="serial")
        blob = cc.compress(field, BOUND)
        assert Container.from_bytes(blob).version == 3
        out = drop_section(blob, "parity_lens")
        box = Container.from_bytes(out, partial=True)
        assert box.version == 3
        assert "parity_lens" not in box


class TestFailingFilesystem:
    def test_budget_counts_down(self, tmp_path):
        from repro.testing import FailingFilesystem

        path = str(tmp_path / "x.bin")
        with FailingFilesystem(failures=2) as fs:
            with pytest.raises(OSError) as exc:
                with open(path, "wb") as fh:
                    fh.write(b"a")
            assert exc.value.errno == 28  # ENOSPC
            with pytest.raises(OSError):
                with open(path, "wb") as fh:
                    fh.write(b"b")
            with open(path, "wb") as fh:  # budget spent: writes succeed
                fh.write(b"c")
        assert fs.write_calls == 3
        assert open(path, "rb").read() == b"c"

    def test_eio_code(self, tmp_path):
        import errno

        from repro.testing import FailingFilesystem

        with FailingFilesystem(failures=1, code=errno.EIO):
            with pytest.raises(OSError) as exc:
                with open(str(tmp_path / "x"), "wb") as fh:
                    fh.write(b"a")
        assert exc.value.errno == errno.EIO

    def test_match_filters_paths(self, tmp_path):
        from repro.testing import FailingFilesystem

        safe, doomed = str(tmp_path / "safe.bin"), str(tmp_path / "doomed.bin")
        with FailingFilesystem(failures=9, match="doomed"):
            with open(safe, "wb") as fh:
                fh.write(b"fine")
            with pytest.raises(OSError):
                with open(doomed, "wb") as fh:
                    fh.write(b"nope")
        assert open(safe, "rb").read() == b"fine"

    def test_reads_never_fail(self, tmp_path):
        from repro.testing import FailingFilesystem

        path = str(tmp_path / "x.bin")
        with open(path, "wb") as fh:
            fh.write(b"payload")
        with FailingFilesystem(failures=9):
            with open(path, "rb") as fh:
                assert fh.read() == b"payload"

    def test_atomic_write_retries_through_transient_enospc(self, tmp_path):
        from repro.testing import FailingFilesystem

        dest = str(tmp_path / "x.bin")
        with FailingFilesystem(failures=1, match="x.bin"):
            atomic_write_bytes(dest, b"payload", backoff_s=0.001)
        assert open(dest, "rb").read() == b"payload"

    def test_atomic_write_propagates_persistent_enospc(self, tmp_path):
        from repro.testing import FailingFilesystem

        dest = str(tmp_path / "x.bin")
        with FailingFilesystem(failures=99, match="x.bin"):
            with pytest.raises(OSError) as exc:
                atomic_write_bytes(dest, b"payload", backoff_s=0.001)
        assert exc.value.errno == 28
        assert not os.path.exists(dest)
