"""Shared fixtures: deterministic field archetypes exercising every code path.

The archetypes mirror the value distributions the paper's applications
exhibit (DESIGN.md section 2): smooth positive, log-normal heavy-tailed,
signed, zero-heavy, rough/spiky, and tiny-magnitude data.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")


def _smooth(shape, seed, sigma=3):
    from scipy.ndimage import gaussian_filter

    rng = np.random.default_rng(seed)
    f = gaussian_filter(rng.normal(size=shape), sigma)
    s = f.std()
    return f / (s if s else 1.0)


@pytest.fixture(scope="session")
def smooth_positive_3d() -> np.ndarray:
    """Smooth strictly-positive 3-D field (log-normal-ish)."""
    return np.exp(1.5 * _smooth((24, 24, 24), 1)).astype(np.float32)


@pytest.fixture(scope="session")
def signed_2d() -> np.ndarray:
    """Smooth signed 2-D field crossing zero."""
    return (1000.0 * _smooth((48, 64), 2)).astype(np.float32)


@pytest.fixture(scope="session")
def zero_heavy_3d() -> np.ndarray:
    """Mostly-zero condensate-style field (exercises zero handling)."""
    f = _smooth((20, 24, 24), 3)
    return (np.maximum(f - 0.8, 0.0) * 1e-3).astype(np.float32)


@pytest.fixture(scope="session")
def rough_1d() -> np.ndarray:
    """Hard-to-predict 1-D particle-style data."""
    rng = np.random.default_rng(4)
    smooth = np.cumsum(rng.normal(size=8192)) / 20.0
    return (500.0 * (smooth + rng.normal(size=8192))).astype(np.float32)


@pytest.fixture(scope="session")
def wide_range_3d() -> np.ndarray:
    """Heavy-tailed positive data spanning ~10 decades (float64)."""
    return np.exp(8.0 * _smooth((16, 16, 16), 5)).astype(np.float64)


@pytest.fixture(scope="session")
def all_archetypes(
    smooth_positive_3d, signed_2d, zero_heavy_3d, rough_1d, wide_range_3d
) -> dict[str, np.ndarray]:
    return {
        "smooth_positive_3d": smooth_positive_3d,
        "signed_2d": signed_2d,
        "zero_heavy_3d": zero_heavy_3d,
        "rough_1d": rough_1d,
        "wide_range_3d": wide_range_3d,
    }
