"""Adaptive chunk-parallel range coder."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding import RangeCodec


class TestRoundtrip:
    def test_empty(self):
        codec = RangeCodec(16)
        assert codec.decode(codec.encode(np.zeros(0, dtype=np.int64))).size == 0

    def test_single_symbol(self):
        codec = RangeCodec(4)
        syms = np.array([3], dtype=np.int64)
        np.testing.assert_array_equal(codec.decode(codec.encode(syms)), syms)

    def test_constant_stream_compresses_hard(self):
        codec = RangeCodec(64)
        syms = np.full(100_000, 17, dtype=np.int64)
        blob = codec.encode(syms)
        np.testing.assert_array_equal(codec.decode(blob), syms)
        assert 8 * len(blob) / syms.size < 0.2  # far below 1 bit/symbol

    def test_uniform_stream_near_log2(self):
        rng = np.random.default_rng(0)
        codec = RangeCodec(32)
        syms = rng.integers(0, 32, size=100_000)
        blob = codec.encode(syms)
        np.testing.assert_array_equal(codec.decode(blob), syms)
        assert 8 * len(blob) / syms.size < 5.0 * 1.05  # ~log2(32) bits

    def test_skewed_stream_near_entropy(self):
        rng = np.random.default_rng(1)
        probs = np.exp(-0.5 * np.arange(16))
        probs /= probs.sum()
        syms = rng.choice(16, size=150_000, p=probs)
        codec = RangeCodec(16)
        blob = codec.encode(syms)
        np.testing.assert_array_equal(codec.decode(blob), syms)
        entropy = -(probs * np.log2(probs)).sum()
        assert 8 * len(blob) / syms.size < entropy * 1.08 + 0.1

    def test_chunk_boundaries(self):
        rng = np.random.default_rng(2)
        codec = RangeCodec(8, chunk_size=64)
        for n in (1, 63, 64, 65, 129, 1000):
            syms = rng.integers(0, 8, size=n)
            np.testing.assert_array_equal(codec.decode(codec.encode(syms)), syms)

    @given(
        st.lists(st.integers(0, 15), max_size=600),
        st.sampled_from([16, 256, 4096]),
    )
    def test_property_roundtrip(self, raw, chunk):
        syms = np.array(raw, dtype=np.int64)
        codec = RangeCodec(16, chunk_size=chunk)
        np.testing.assert_array_equal(codec.decode(codec.encode(syms)), syms)

    def test_adversarial_alternation(self):
        # Rapid alternation stresses renormalization and model updates.
        syms = np.tile(np.array([0, 15, 7, 15, 0, 3], dtype=np.int64), 5000)
        codec = RangeCodec(16, chunk_size=256)
        np.testing.assert_array_equal(codec.decode(codec.encode(syms)), syms)


class TestAdaptivity:
    def test_beats_huffman_on_drifting_distribution(self):
        """Two regimes with different dominant symbols: the adaptive model
        tracks the drift, a single static Huffman table cannot."""
        from repro.encoding import HuffmanCodec

        rng = np.random.default_rng(3)
        a = rng.choice(16, size=100_000, p=_peaked(16, 0))
        b = rng.choice(16, size=100_000, p=_peaked(16, 8))
        syms = np.concatenate([a, b])
        blob_range = RangeCodec(16).encode(syms)
        blob_huff = HuffmanCodec().encode(syms)
        np.testing.assert_array_equal(RangeCodec(16).decode(blob_range), syms)
        assert len(blob_range) < len(blob_huff)


class TestValidation:
    def test_alphabet_bounds(self):
        with pytest.raises(ValueError):
            RangeCodec(1)
        with pytest.raises(ValueError):
            RangeCodec(300)
        with pytest.raises(ValueError):
            RangeCodec(8, chunk_size=0)

    def test_out_of_range_symbols_rejected(self):
        codec = RangeCodec(4)
        with pytest.raises(ValueError):
            codec.encode(np.array([4], dtype=np.int64))
        with pytest.raises(ValueError):
            codec.encode(np.array([-1], dtype=np.int64))


def _peaked(n, center):
    p = np.full(n, 0.01)
    p[center] = 1.0
    return p / p.sum()
