"""GF(256) Reed-Solomon erasure codec: algebra, round trips, limits."""

import itertools

import numpy as np
import pytest

from repro.encoding.rs import (
    MAX_GROUP_BLOCKS,
    InsufficientParityError,
    decode_blocks,
    encode_parity,
    gf_inv,
    gf_mul,
)


class TestFieldAlgebra:
    def test_multiplication_matches_reference(self):
        """Spot-check against slow carry-less multiply mod 0x11D."""

        def slow_mul(a, b):
            r = 0
            while b:
                if b & 1:
                    r ^= a
                a <<= 1
                if a & 0x100:
                    a ^= 0x11D
                b >>= 1
            return r

        rng = np.random.default_rng(0)
        for a, b in rng.integers(0, 256, size=(200, 2)):
            assert gf_mul(int(a), int(b)) == slow_mul(int(a), int(b))

    def test_zero_and_one(self):
        for a in range(256):
            assert gf_mul(a, 0) == 0
            assert gf_mul(a, 1) == a

    def test_inverse(self):
        for a in range(1, 256):
            assert gf_mul(a, gf_inv(a)) == 1
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    def test_distributive(self):
        rng = np.random.default_rng(1)
        for a, b, c in rng.integers(0, 256, size=(100, 3)):
            a, b, c = int(a), int(b), int(c)
            assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)


class TestEncodeParity:
    def test_k_zero_is_empty(self):
        assert encode_parity([b"abc"], 0) == []

    def test_parity_block_length_is_group_max(self):
        parity = encode_parity([b"ab", b"abcdef", b"a"], 2)
        assert len(parity) == 2
        assert all(len(p) == 6 for p in parity)

    def test_rejects_empty_group_and_oversize(self):
        with pytest.raises(ValueError):
            encode_parity([], 1)
        with pytest.raises(ValueError):
            encode_parity([b"x"] * 250, 6)
        with pytest.raises(ValueError):
            encode_parity([b"x"], -1)

    def test_deterministic(self):
        blocks = [bytes([i] * (i + 1)) for i in range(5)]
        assert encode_parity(blocks, 3) == encode_parity(blocks, 3)


class TestDecodeBlocks:
    def test_no_loss_passthrough(self):
        blocks = [b"aa", b"bbb"]
        assert decode_blocks(blocks, [None], [2, 3]) == blocks

    def test_single_loss_every_position(self):
        rng = np.random.default_rng(2)
        blocks = [rng.bytes(20 + 7 * i) for i in range(6)]
        parity = encode_parity(blocks, 1)
        lens = [len(b) for b in blocks]
        for lost in range(6):
            damaged = [None if i == lost else b for i, b in enumerate(blocks)]
            assert decode_blocks(damaged, parity, lens) == blocks

    def test_double_loss_every_pair_any_parity_mix(self):
        """Any 2 of (data + parity) losses with k=2 still reconstruct."""
        rng = np.random.default_rng(3)
        blocks = [rng.bytes(30) for _ in range(8)]
        parity = encode_parity(blocks, 2)
        lens = [len(b) for b in blocks]
        for i, j in itertools.combinations(range(8), 2):
            damaged = [None if x in (i, j) else b for x, b in enumerate(blocks)]
            assert decode_blocks(damaged, parity, lens) == blocks
        # one data block + one parity block lost
        for i in range(8):
            for pj in range(2):
                damaged = [None if x == i else b for x, b in enumerate(blocks)]
                p = [None if y == pj else q for y, q in enumerate(parity)]
                assert decode_blocks(damaged, p, lens) == blocks

    def test_random_property(self):
        rng = np.random.default_rng(4)
        for _ in range(50):
            m = int(rng.integers(1, 10))
            k = int(rng.integers(0, 4))
            blocks = [rng.bytes(int(rng.integers(1, 64))) for _ in range(m)]
            parity = encode_parity(blocks, k)
            lens = [len(b) for b in blocks]
            n_lost = int(rng.integers(0, k + 1))
            lost = rng.choice(m, size=min(n_lost, m), replace=False)
            damaged = [None if i in lost else b for i, b in enumerate(blocks)]
            assert decode_blocks(damaged, list(parity), lens) == blocks

    def test_insufficient_parity_raises(self):
        blocks = [b"aaaa", b"bbbb", b"cccc"]
        parity = encode_parity(blocks, 1)
        damaged = [None, None, blocks[2]]
        with pytest.raises(InsufficientParityError):
            decode_blocks(damaged, parity, [4, 4, 4])

    def test_lens_mismatch_raises(self):
        with pytest.raises(ValueError):
            decode_blocks([b"aa", None], [b"xx"], [2])

    def test_max_group_limit_constant(self):
        assert MAX_GROUP_BLOCKS == 255
