"""Bit stream primitives: scalar streams, fixed-width and var-width packing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding import (
    BitReader,
    BitWriter,
    pack_fixed_width,
    pack_varbits,
    unpack_fixed_width,
    unpack_varbits,
)


class TestBitWriter:
    def test_empty_stream(self):
        w = BitWriter()
        assert len(w) == 0
        assert w.getvalue() == b""

    def test_single_bits_msb_first(self):
        w = BitWriter()
        for bit in (1, 0, 1, 1):
            w.write_bit(bit)
        assert w.getvalue() == bytes([0b10110000])
        assert w.nbits == 4

    def test_write_bits_field(self):
        w = BitWriter()
        w.write_bits(0b101, 3)
        w.write_bits(0b11111, 5)
        assert w.getvalue() == bytes([0b10111111])

    def test_write_bits_masks_extra_high_bits(self):
        w = BitWriter()
        w.write_bits(0xFF, 4)  # only low 4 bits taken
        assert w.getvalue() == bytes([0b11110000])

    def test_write_zero_bits_is_noop(self):
        w = BitWriter()
        w.write_bits(123, 0)
        assert len(w) == 0

    def test_negative_nbits_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(1, -1)

    def test_bit_array_aligned_fast_path(self):
        w = BitWriter()
        bits = np.array([1, 0, 1, 0, 1, 0, 1, 0, 1, 1], dtype=np.uint8)
        w.write_bit_array(bits)
        w.write_bits(0b01, 2)
        r = BitReader(w.getvalue(), nbits=w.nbits)
        assert r.read_bit_array(10).tolist() == bits.tolist()
        assert r.read_bits(2) == 0b01

    def test_bit_array_unaligned(self):
        w = BitWriter()
        w.write_bit(1)
        w.write_bit_array(np.array([0, 1, 1], dtype=np.uint8))
        assert w.getvalue() == bytes([0b10110000])


class TestBitReader:
    def test_roundtrip_mixed_fields(self):
        w = BitWriter()
        fields = [(0b1, 1), (0x5A, 8), (0x1234, 16), (0, 3), (7, 3)]
        for v, n in fields:
            w.write_bits(v, n)
        r = BitReader(w.getvalue(), nbits=w.nbits)
        for v, n in fields:
            assert r.read_bits(n) == v
        assert r.remaining == 0

    def test_eof_raises(self):
        r = BitReader(b"\xff", nbits=3)
        r.read_bits(3)
        with pytest.raises(EOFError):
            r.read_bit()

    def test_nbits_larger_than_stream_rejected(self):
        with pytest.raises(ValueError):
            BitReader(b"\x00", nbits=9)

    def test_seek(self):
        r = BitReader(bytes([0b10100000]), nbits=8)
        r.read_bits(3)
        r.seek(1)
        assert r.read_bit() == 0
        with pytest.raises(ValueError):
            r.seek(9)

    @given(st.lists(st.tuples(st.integers(0, 2**32 - 1), st.integers(1, 32)), max_size=50))
    def test_property_roundtrip(self, fields):
        w = BitWriter()
        for v, n in fields:
            w.write_bits(v & ((1 << n) - 1), n)
        r = BitReader(w.getvalue(), nbits=w.nbits)
        for v, n in fields:
            assert r.read_bits(n) == v & ((1 << n) - 1)


class TestFixedWidth:
    def test_roundtrip(self):
        values = np.array([0, 1, 1023, 512, 7], dtype=np.uint64)
        blob = pack_fixed_width(values, 10)
        out = unpack_fixed_width(blob, 10, values.size)
        np.testing.assert_array_equal(out, values)

    def test_width_zero_only_zeros(self):
        assert pack_fixed_width(np.zeros(5, dtype=np.uint64), 0) == b""
        np.testing.assert_array_equal(
            unpack_fixed_width(b"", 0, 5), np.zeros(5, dtype=np.uint64)
        )
        with pytest.raises(ValueError):
            pack_fixed_width(np.array([1], dtype=np.uint64), 0)

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValueError):
            pack_fixed_width(np.array([16], dtype=np.uint64), 4)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            pack_fixed_width(np.array([1], dtype=np.uint64), 65)

    @given(
        st.integers(1, 63),
        st.lists(st.integers(0, 2**63 - 1), min_size=1, max_size=100),
    )
    def test_property_roundtrip(self, width, raw):
        values = np.array([v & ((1 << width) - 1) for v in raw], dtype=np.uint64)
        out = unpack_fixed_width(pack_fixed_width(values, width), width, values.size)
        np.testing.assert_array_equal(out, values)


class TestVarBits:
    def test_roundtrip_mixed_widths(self):
        values = np.array([0, 5, 1, 255, 2**40], dtype=np.uint64)
        widths = np.array([0, 3, 1, 8, 41], dtype=np.int64)
        out = unpack_varbits(pack_varbits(values, widths), widths)
        np.testing.assert_array_equal(out, values)

    def test_empty(self):
        assert pack_varbits(np.zeros(0, np.uint64), np.zeros(0, np.int64)) == b""
        assert unpack_varbits(b"", np.zeros(0, np.int64)).size == 0

    def test_zero_width_field_at_word_boundary(self):
        # A zero-width field starting exactly at a 64-bit boundary at the
        # end of the stream used to scatter one word past the accumulator.
        values = np.array([7, 0], dtype=np.uint64)
        widths = np.array([64, 0], dtype=np.int64)
        out = unpack_varbits(pack_varbits(values, widths), widths)
        np.testing.assert_array_equal(out, values)
        values = np.array([1, 0, 3, 0], dtype=np.uint64)
        widths = np.array([32, 0, 96 - 32, 0], dtype=np.int64)
        out = unpack_varbits(pack_varbits(values, widths), widths)
        np.testing.assert_array_equal(out, values)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pack_varbits(np.zeros(2, np.uint64), np.zeros(3, np.int64))

    @given(st.lists(st.integers(0, 2**62 - 1), max_size=60))
    def test_property_roundtrip_with_bitlength_widths(self, raw):
        values = np.array(raw, dtype=np.uint64)
        widths = np.array([max(int(v).bit_length(), 0) for v in raw], dtype=np.int64)
        out = unpack_varbits(pack_varbits(values, widths), widths)
        np.testing.assert_array_equal(out, values)
