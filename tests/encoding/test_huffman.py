"""Canonical Huffman codec: optimality basics, limits, parallel decode."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding import HuffmanCodec
from repro.encoding.huffman import huffman_code_lengths
from repro.encoding.huffman_ref import ReferenceHuffmanCodec, reference_code_lengths


class TestCodeLengths:
    def test_uniform_counts_balanced_tree(self):
        lengths = huffman_code_lengths(np.array([10, 10, 10, 10]))
        assert lengths.tolist() == [2, 2, 2, 2]

    def test_skewed_counts_short_code_for_frequent(self):
        lengths = huffman_code_lengths(np.array([1000, 1, 1, 1]))
        assert lengths[0] == 1
        assert lengths[1:].max() <= 3

    def test_zero_count_symbols_get_no_code(self):
        lengths = huffman_code_lengths(np.array([5, 0, 5]))
        assert lengths[1] == 0
        assert lengths[0] > 0 and lengths[2] > 0

    def test_single_symbol_gets_one_bit(self):
        lengths = huffman_code_lengths(np.array([0, 42, 0]))
        assert lengths.tolist() == [0, 1, 0]

    def test_all_zero_counts(self):
        assert huffman_code_lengths(np.zeros(4, dtype=np.int64)).tolist() == [0] * 4

    def test_length_limit_enforced(self):
        # Fibonacci-like counts force a deep optimal tree.
        counts = np.array([1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377,
                           610, 987, 1597, 2584, 4181, 6765])
        lengths = huffman_code_lengths(counts, length_limit=8)
        assert lengths.max() <= 8
        # Kraft inequality must still hold (codes remain decodable).
        kraft = sum(2.0 ** -int(l) for l in lengths if l)
        assert kraft <= 1.0 + 1e-12

    def test_kraft_equality_for_optimal_tree(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(1, 1000, size=50)
        lengths = huffman_code_lengths(counts)
        assert sum(2.0 ** -int(l) for l in lengths) == pytest.approx(1.0)


class TestRoundtrip:
    def test_empty(self):
        codec = HuffmanCodec()
        assert codec.decode(codec.encode(np.zeros(0, dtype=np.int64))).size == 0

    def test_single_distinct_symbol(self):
        codec = HuffmanCodec()
        syms = np.full(1000, 7, dtype=np.int64)
        np.testing.assert_array_equal(codec.decode(codec.encode(syms)), syms)

    def test_two_symbols(self):
        codec = HuffmanCodec(chunk_size=16)
        syms = np.array([0, 1] * 100, dtype=np.int64)
        np.testing.assert_array_equal(codec.decode(codec.encode(syms)), syms)

    def test_skewed_distribution_compresses(self):
        rng = np.random.default_rng(1)
        syms = np.where(rng.random(100_000) < 0.95, 5, rng.integers(0, 64, 100_000))
        codec = HuffmanCodec()
        blob = codec.encode(syms)
        assert len(blob) < syms.size  # well under 8 bits/symbol
        np.testing.assert_array_equal(codec.decode(blob), syms)

    def test_large_alphabet(self):
        rng = np.random.default_rng(2)
        syms = rng.integers(0, 60_000, size=50_000)
        codec = HuffmanCodec()
        np.testing.assert_array_equal(codec.decode(codec.encode(syms)), syms)

    def test_long_code_fallback_path(self):
        # Force codes longer than the 14-bit first-level table: a huge
        # alphabet of equally-rare symbols plus one dominant one.
        syms = np.concatenate([
            np.zeros(1 << 18, dtype=np.int64),
            np.arange(1, 40_000, dtype=np.int64),
        ])
        codec = HuffmanCodec()
        np.testing.assert_array_equal(codec.decode(codec.encode(syms)), syms)

    def test_chunk_boundary_sizes(self):
        codec = HuffmanCodec(chunk_size=64)
        rng = np.random.default_rng(3)
        for n in (1, 63, 64, 65, 128, 129):
            syms = rng.integers(0, 7, size=n)
            np.testing.assert_array_equal(codec.decode(codec.encode(syms)), syms)

    def test_negative_symbols_rejected(self):
        with pytest.raises(ValueError):
            HuffmanCodec().encode(np.array([-1], dtype=np.int64))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            HuffmanCodec(chunk_size=0)
        with pytest.raises(ValueError):
            HuffmanCodec(length_limit=1)

    @given(
        st.lists(st.integers(0, 300), min_size=1, max_size=2000),
        st.sampled_from([7, 64, 4096]),
    )
    def test_property_roundtrip(self, raw, chunk):
        syms = np.array(raw, dtype=np.int64)
        codec = HuffmanCodec(chunk_size=chunk)
        np.testing.assert_array_equal(codec.decode(codec.encode(syms)), syms)

    def test_corrupt_payload_raises_value_error(self):
        codec = HuffmanCodec()
        syms = np.arange(64).repeat(np.arange(1, 65))
        blob = bytearray(codec.encode(syms))
        blob[-3] ^= 0xFF  # damage the bit payload, not the tables
        with pytest.raises(ValueError):
            codec.decode(bytes(blob))

    def test_truncated_payload_raises_value_error(self):
        codec = HuffmanCodec()
        syms = np.arange(256).repeat(np.arange(1, 257))
        blob = codec.encode(syms)
        with pytest.raises(ValueError):
            codec.decode(blob[:-4])

    def test_rate_close_to_entropy(self):
        rng = np.random.default_rng(4)
        probs = np.array([0.5, 0.25, 0.125, 0.0625, 0.0625])
        syms = rng.choice(5, size=200_000, p=probs)
        blob = HuffmanCodec().encode(syms)
        entropy = -(probs * np.log2(probs)).sum()
        bits_per_symbol = 8 * len(blob) / syms.size
        assert bits_per_symbol < entropy * 1.1 + 0.1  # dyadic probs: ~optimal


class TestReferenceEquivalence:
    """The vectorized codec against the retained pre-vectorization one.

    ``huffman_ref`` is the frozen specification of the blob format:
    every stream the fast codec writes must be byte-identical to what the
    reference writes, and each decoder must read the other's output.
    """

    def assert_equivalent(self, syms, chunk=256):
        fast = HuffmanCodec(chunk_size=chunk)
        ref = ReferenceHuffmanCodec(chunk_size=chunk)
        blob_fast = fast.encode(syms)
        blob_ref = ref.encode(syms)
        assert blob_fast == blob_ref
        expect = np.asarray(syms, dtype=np.int64).ravel()
        np.testing.assert_array_equal(fast.decode(blob_ref), expect)
        np.testing.assert_array_equal(ref.decode(blob_fast), expect)

    def test_empty_stream(self):
        self.assert_equivalent(np.zeros(0, dtype=np.int64))

    def test_single_distinct_symbol(self):
        self.assert_equivalent(np.full(1000, 7, dtype=np.int64))
        self.assert_equivalent(np.array([3], dtype=np.int64), chunk=16)

    def test_skewed_distribution(self):
        rng = np.random.default_rng(10)
        syms = np.where(rng.random(50_000) < 0.9, 2, rng.integers(0, 512, 50_000))
        self.assert_equivalent(syms)

    def test_large_alphabet(self):
        rng = np.random.default_rng(11)
        self.assert_equivalent(rng.integers(0, 40_000, size=30_000))

    @pytest.mark.parametrize("dtype", [np.int64, np.int32, np.uint16])
    def test_input_dtypes(self, dtype):
        rng = np.random.default_rng(12)
        self.assert_equivalent(rng.integers(0, 200, size=5000).astype(dtype))

    def test_codes_longer_than_decode_table(self):
        # Fibonacci counts force codeword lengths past the fast decoder's
        # first-level table, exercising its canonical-extension path
        # against the reference's bit-by-bit walk.
        counts = [1, 1]
        while len(counts) < 25:
            counts.append(counts[-1] + counts[-2])
        syms = np.repeat(np.arange(len(counts)), counts)
        lengths = huffman_code_lengths(np.bincount(syms))
        assert lengths.max() > 16  # the premise of this test
        self.assert_equivalent(syms)

    def test_code_lengths_match_reference(self):
        rng = np.random.default_rng(13)
        for _ in range(20):
            counts = rng.integers(0, 2000, size=rng.integers(2, 400))
            np.testing.assert_array_equal(
                huffman_code_lengths(counts), reference_code_lengths(counts)
            )

    @given(
        st.lists(st.integers(0, 1000), min_size=0, max_size=1500),
        st.sampled_from([7, 64, 256, 4096]),
    )
    def test_property_byte_identical(self, raw, chunk):
        self.assert_equivalent(np.array(raw, dtype=np.int64), chunk=chunk)
