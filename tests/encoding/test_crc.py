"""CRC-32C implementation: known vectors, incrementality, and the
vectorized path vs a bitwise reference."""

import numpy as np
import pytest

from repro.encoding.crc import crc32c, crc32c_combine


def crc32c_reference(data: bytes, value: int = 0) -> int:
    """Textbook reflected bitwise CRC-32C (slow, obviously correct)."""
    crc = value ^ 0xFFFFFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            crc = (crc >> 1) ^ (0x82F63B78 if crc & 1 else 0)
    return crc ^ 0xFFFFFFFF


class TestKnownVectors:
    def test_empty(self):
        assert crc32c(b"") == 0

    def test_rfc3720_all_zeros(self):
        # RFC 3720 B.4 test pattern: 32 bytes of zeros.
        assert crc32c(b"\x00" * 32) == 0x8A9136AA

    def test_rfc3720_all_ones(self):
        assert crc32c(b"\xff" * 32) == 0x62A8AB43

    def test_rfc3720_ascending(self):
        assert crc32c(bytes(range(32))) == 0x46DD794E

    def test_123456789(self):
        # The classic CRC catalogue check value for CRC-32C.
        assert crc32c(b"123456789") == 0xE3069283

    def test_hello_world(self):
        assert crc32c(b"hello world") == 0xC99465AA


class TestIncremental:
    @pytest.mark.parametrize("split", [0, 1, 7, 64, 1000])
    def test_chained_equals_whole(self, split):
        data = np.random.default_rng(0).integers(0, 256, 3000, np.uint8).tobytes()
        split = min(split, len(data))
        assert crc32c(data[split:], crc32c(data[:split])) == crc32c(data)

    def test_zlib_style_initial_value(self):
        # value=0 is the conventional start, like zlib.crc32.
        assert crc32c(b"abc", 0) == crc32c(b"abc")


class TestAgainstReference:
    @pytest.mark.parametrize(
        "length",
        # Straddle the scalar/vector threshold (64) and the 8192-byte block
        # boundary, including off-by-one lengths on both sides.
        [1, 2, 63, 64, 65, 100, 8191, 8192, 8193, 20000],
    )
    def test_matches_bitwise(self, length):
        data = np.random.default_rng(length).integers(0, 256, length, np.uint8).tobytes()
        assert crc32c(data) == crc32c_reference(data)

    def test_matches_bitwise_chained(self):
        rng = np.random.default_rng(9)
        a = rng.integers(0, 256, 500, np.uint8).tobytes()
        b = rng.integers(0, 256, 500, np.uint8).tobytes()
        assert crc32c(b, crc32c(a)) == crc32c_reference(a + b)

    def test_single_bit_sensitivity(self):
        data = bytes(1000)
        baseline = crc32c(data)
        for bit in (0, 500 * 8 + 3, 999 * 8 + 7):
            flipped = bytearray(data)
            flipped[bit // 8] ^= 0x80 >> (bit % 8)
            assert crc32c(bytes(flipped)) != baseline


class TestCombine:
    """crc32c_combine must agree with hashing the concatenation."""

    @pytest.mark.parametrize("len_a, len_b", [
        (0, 0), (0, 100), (100, 0), (1, 1), (3, 61),
        (63, 64), (64, 65), (500, 1024), (1025, 4096), (10_000, 7),
    ])
    def test_combine_equals_whole(self, len_a, len_b):
        rng = np.random.default_rng(len_a * 131 + len_b)
        a = rng.integers(0, 256, len_a, np.uint8).tobytes()
        b = rng.integers(0, 256, len_b, np.uint8).tobytes()
        assert crc32c_combine(crc32c(a), crc32c(b), len(b)) == crc32c(a + b)

    def test_three_way_combine(self):
        rng = np.random.default_rng(42)
        parts = [rng.integers(0, 256, n, np.uint8).tobytes() for n in (200, 3000, 77)]
        crc = crc32c(parts[0])
        for part in parts[1:]:
            crc = crc32c_combine(crc, crc32c(part), len(part))
        assert crc == crc32c(b"".join(parts))

    def test_matches_bitwise_reference(self):
        a, b = b"hello ", b"world"
        assert crc32c_combine(crc32c(a), crc32c(b), len(b)) == crc32c_reference(a + b)
