"""Integer/byte codecs: zigzag, varint, sign bitmaps, DEFLATE wrappers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding import (
    decode_sign_bitmap,
    deflate,
    encode_sign_bitmap,
    inflate,
    read_varint,
    write_varint,
    zigzag_decode,
    zigzag_encode,
)


class TestZigzag:
    def test_small_values_interleave(self):
        v = np.array([0, -1, 1, -2, 2], dtype=np.int64)
        np.testing.assert_array_equal(zigzag_encode(v), [0, 1, 2, 3, 4])

    def test_extremes(self):
        v = np.array([np.iinfo(np.int64).min, np.iinfo(np.int64).max], dtype=np.int64)
        np.testing.assert_array_equal(zigzag_decode(zigzag_encode(v)), v)

    @given(st.lists(st.integers(-(2**63), 2**63 - 1), max_size=100))
    def test_property_roundtrip(self, raw):
        v = np.array(raw, dtype=np.int64)
        np.testing.assert_array_equal(zigzag_decode(zigzag_encode(v)), v)

    def test_encode_tracks_magnitude(self):
        v = np.array([0, 1, -1, 5, -5, 100], dtype=np.int64)
        enc = zigzag_encode(v).astype(np.int64)
        # 2|v|-1 <= enc <= 2|v|: small magnitudes stay small.
        assert (enc <= 2 * np.abs(v)).all()
        assert (enc >= 2 * np.abs(v) - 1).all()


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**63])
    def test_roundtrip(self, value):
        blob = write_varint(value)
        out, pos = read_varint(blob)
        assert out == value
        assert pos == len(blob)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            write_varint(-1)

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            read_varint(b"\x80")

    def test_sequence_with_offsets(self):
        blob = write_varint(5) + write_varint(1000)
        v1, pos = read_varint(blob)
        v2, pos = read_varint(blob, pos)
        assert (v1, v2) == (5, 1000)


class TestSignBitmap:
    def test_all_nonnegative_skips_payload(self):
        flag, payload = encode_sign_bitmap(np.array([0.0, 1.0, 2.0], dtype=np.float32))
        assert flag is True
        assert payload == b""
        assert not decode_sign_bitmap(True, b"", 3).any()

    def test_mixed_signs_roundtrip(self):
        data = np.array([1.0, -2.0, 0.0, -0.5, 3.0], dtype=np.float32)
        flag, payload = encode_sign_bitmap(data)
        assert flag is False
        negatives = decode_sign_bitmap(flag, payload, data.size)
        np.testing.assert_array_equal(negatives, [False, True, False, True, False])

    def test_negative_zero_counts_as_negative(self):
        flag, payload = encode_sign_bitmap(np.array([-0.0, 1.0], dtype=np.float64))
        assert flag is False
        assert decode_sign_bitmap(flag, payload, 2)[0]

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_property_roundtrip(self, negs):
        data = np.where(np.array(negs), -1.0, 1.0).astype(np.float32)
        flag, payload = encode_sign_bitmap(data)
        out = decode_sign_bitmap(flag, payload, data.size)
        np.testing.assert_array_equal(out, np.array(negs))


class TestDeflate:
    def test_roundtrip(self):
        payload = b"abc" * 1000
        squeezed = deflate(payload)
        assert len(squeezed) < len(payload)
        assert inflate(squeezed) == payload

    def test_empty(self):
        assert inflate(deflate(b"")) == b""
