"""Container framing: typed sections, serialization, corruption handling."""

import numpy as np
import pytest

from repro.encoding import (
    ChecksumError,
    Container,
    ContainerError,
    StreamError,
    TruncatedStreamError,
    section_byte_ranges,
)


class TestSections:
    def test_basic_roundtrip(self):
        box = Container("TEST")
        box.put("a", b"hello")
        box.put("b", b"")
        out = Container.from_bytes(box.to_bytes())
        assert out.codec == "TEST"
        assert out.get("a") == b"hello"
        assert out.get("b") == b""
        assert list(out.keys()) == ["a", "b"]

    def test_duplicate_key_rejected(self):
        box = Container("TEST")
        box.put("a", b"x")
        with pytest.raises(ContainerError):
            box.put("a", b"y")

    def test_missing_key_raises_with_codec_name(self):
        box = Container("MYCODEC")
        with pytest.raises(ContainerError, match="MYCODEC"):
            box.get("nope")

    def test_contains_and_iter(self):
        box = Container("TEST")
        box.put("k", b"v")
        assert "k" in box and "x" not in box
        assert list(box) == ["k"]

    def test_empty_codec_rejected(self):
        with pytest.raises(ValueError):
            Container("")


class TestTypedHelpers:
    def test_scalars(self):
        box = Container("T")
        box.put_u64("u", 2**40)
        box.put_i64("i", -7)
        box.put_f64("f", 3.5)
        box.put_str("s", "héllo")
        out = Container.from_bytes(box.to_bytes())
        assert out.get_u64("u") == 2**40
        assert out.get_i64("i") == -7
        assert out.get_f64("f") == 3.5
        assert out.get_str("s") == "héllo"

    def test_shape_and_dtype(self):
        box = Container("T")
        box.put_shape("sh", (3, 4, 5))
        box.put_shape("sh0", ())
        box.put_dtype("dt", np.float32)
        out = Container.from_bytes(box.to_bytes())
        assert out.get_shape("sh") == (3, 4, 5)
        assert out.get_shape("sh0") == ()
        assert out.get_dtype("dt") == np.float32

    def test_unsupported_dtype_rejected(self):
        box = Container("T")
        with pytest.raises(ContainerError):
            box.put_dtype("dt", np.complex128)

    def test_array_roundtrip(self):
        box = Container("T")
        arr = np.array([1.5, -2.5, 0.0], dtype=np.float64)
        box.put_array("a", arr)
        out = Container.from_bytes(box.to_bytes()).get_array("a")
        np.testing.assert_array_equal(out, arr)
        assert out.dtype == np.float64


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(ContainerError, match="magic"):
            Container.from_bytes(b"XXXX\x01")

    def test_bad_version(self):
        blob = bytearray(Container("T").to_bytes())
        blob[4] = 99
        with pytest.raises(ContainerError, match="version"):
            Container.from_bytes(bytes(blob))

    def test_truncated_section_v1(self):
        box = Container("T")
        box.put("a", b"0123456789")
        blob = box.to_bytes(checksums=False)[:-5]
        with pytest.raises(ContainerError, match="truncated"):
            Container.from_bytes(blob)

    def test_truncated_v2_fails_checksum(self):
        box = Container("T")
        box.put("a", b"0123456789")
        blob = box.to_bytes()[:-5]
        with pytest.raises(ChecksumError):
            Container.from_bytes(blob)

    def test_truncated_v2_structural_without_verification(self):
        box = Container("T")
        box.put("a", b"0123456789")
        blob = box.to_bytes()[:-5]
        with pytest.raises(TruncatedStreamError):
            Container.from_bytes(blob, verify_checksums=False)

    def test_nbytes_matches_serialization(self):
        box = Container("T")
        box.put("a", b"abc")
        assert box.nbytes == len(box.to_bytes())
