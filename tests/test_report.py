"""Quality-report and stream-statistics assembly."""

import math

import numpy as np
import pytest

from repro import AbsoluteBound, RelativeBound, compress
from repro.report import build_report, quality_report


class TestQualityReport:
    def test_relative_codec_report(self, smooth_positive_3d):
        blob = compress(smooth_positive_3d, RelativeBound(1e-2))
        rep = quality_report(smooth_positive_3d, blob)
        assert rep.codec == "SZ_T"
        assert rep.bound_kind == "rel"
        assert rep.bound_value == 1e-2
        assert rep.errors.strictly_bounded
        assert rep.errors.max_rel <= 1e-2
        assert rep.ratio > 1
        assert rep.bits_per_value == pytest.approx(
            8 * rep.compressed_nbytes / smooth_positive_3d.size
        )
        assert rep.distribution is not None and rep.distribution.looks_uniform

    def test_absolute_codec_report(self, signed_2d):
        blob = compress(signed_2d, AbsoluteBound(0.5), compressor="SZ_ABS")
        rep = quality_report(signed_2d, blob)
        assert rep.bound_kind == "abs"
        assert rep.errors.max_abs <= 0.5
        assert rep.errors.bounded_fraction == 1.0

    def test_precision_codec_reports_knob_without_grading(self, smooth_positive_3d):
        from repro import PrecisionBound

        blob = compress(smooth_positive_3d, PrecisionBound(19), compressor="FPZIP")
        rep = quality_report(smooth_positive_3d, blob)
        assert rep.bound_kind == "prec"
        assert rep.bound_value == 19.0
        assert rep.errors is None  # precision parameterizes fidelity, no guarantee
        assert math.isfinite(rep.psnr_db)
        assert "fidelity knob, no point-wise guarantee" in rep.format()

    def test_format_is_human_readable(self, smooth_positive_3d):
        blob = compress(smooth_positive_3d, RelativeBound(1e-2))
        text = quality_report(smooth_positive_3d, blob).format()
        assert "SZ_T" in text
        assert "bounded: 100%" in text
        assert "bits/value" in text
        assert "error shape" in text

    def test_shape_mismatch_rejected(self, smooth_positive_3d):
        blob = compress(smooth_positive_3d, RelativeBound(1e-2))
        with pytest.raises(ValueError, match="shape"):
            quality_report(smooth_positive_3d.ravel(), blob)

    def test_cli_report_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.data.io import write_raw

        data = np.exp(np.random.default_rng(0).normal(0, 1, (16, 16))).astype(np.float32)
        src = str(tmp_path / "f.f32")
        write_raw(src, data)
        main(["compress", src, str(tmp_path / "f.rpz"), "--shape", "16,16",
              "--rel-bound", "1e-2", "--report"])
        out = capsys.readouterr().out
        assert "error shape" in out and "PSNR" in out


class TestStreamBoundEveryCodec:
    """Every registered codec either exposes its bound or is known boundless."""

    #: Codecs with deliberately no recoverable bound: lossless, the
    #: CHUNKED wrapper (its per-chunk inner streams carry the bounds),
    #: and the adversarial EVIL codec registered by the safeguards suite
    #: when it runs in the same session.
    BOUNDLESS = {"GZIP", "CHUNKED", "EVIL"}
    #: Codecs whose bound is derived from another stream section rather
    #: than a ``_BOUND_KEYS`` entry: SAFE reads its ``safeguards`` list.
    DERIVED = {"SAFE"}
    EXPECTED_VALUE = {"abs": 0.5, "rel": 1e-2, "prec": 19.0, "rate": 8.0}

    def test_registry_and_bound_keys_in_sync(self):
        from repro.compressors.base import available_compressors
        from repro.report import _BOUND_KEYS

        unmapped = (
            set(available_compressors())
            - set(_BOUND_KEYS)
            - self.BOUNDLESS
            - self.DERIVED
        )
        assert not unmapped, (
            f"codecs {sorted(unmapped)} are registered but have no _BOUND_KEYS "
            "entry; add one (or list them as deliberately boundless)"
        )

    @staticmethod
    def _bound_for(kind):
        from repro import PrecisionBound, RateBound

        return {
            "abs": AbsoluteBound(0.5),
            "rel": RelativeBound(1e-2),
            "prec": PrecisionBound(19),
            "rate": RateBound(8),
        }[kind]

    def _all_codecs():
        import repro  # noqa: F401 - triggers codec registration
        from repro.compressors.base import available_compressors

        return available_compressors()

    @pytest.mark.parametrize("codec", _all_codecs())
    def test_stream_bound_recovered_from_stream(self, codec, smooth_positive_3d):
        from repro import get_compressor
        from repro.encoding.container import Container
        from repro.report import _BOUND_KEYS, stream_bound

        if codec == "SAFE":
            from repro.safeguards import SafeguardedCompressor

            comp = SafeguardedCompressor("SZ_T", ["rel:1e-2"])
        else:
            comp = get_compressor(codec)
        if codec == "GZIP":
            blob = comp.compress(smooth_positive_3d)
        elif codec == "SAFE":
            blob = comp.compress(smooth_positive_3d, self._bound_for("rel"))
        else:
            kind = _BOUND_KEYS[codec][1] if codec in _BOUND_KEYS else "rel"
            blob = comp.compress(smooth_positive_3d, self._bound_for(kind))
        got_kind, got_value = stream_bound(Container.from_bytes(blob))
        if codec in self.BOUNDLESS:
            assert (got_kind, got_value) == (None, None)
        elif codec in self.DERIVED:
            assert (got_kind, got_value) == ("rel", 1e-2)
        else:
            want_kind = _BOUND_KEYS[codec][1]
            assert got_kind == want_kind
            assert got_value == self.EXPECTED_VALUE[want_kind]


class TestStreamStats:
    def test_plain_stream(self, smooth_positive_3d):
        blob = compress(smooth_positive_3d, RelativeBound(1e-2))
        stats = build_report(blob)
        assert stats.codec == "SZ_T"
        assert stats.nbytes == len(blob)
        assert stats.shape == smooth_positive_3d.shape
        assert stats.dtype == smooth_positive_3d.dtype.name
        assert stats.decoded_nbytes == smooth_positive_3d.nbytes
        assert stats.n_chunks is None
        assert stats.decode_s > 0
        assert stats.crc_verify_s >= 0
        assert sum(stats.sections.values()) <= len(blob)
        assert "inner" in stats.sections

    def test_chunked_stream(self, smooth_positive_3d):
        from repro.core.chunked import ChunkedCompressor

        comp = ChunkedCompressor("SZ_T", chunk_bytes=4096, executor="serial")
        blob = comp.compress(smooth_positive_3d, RelativeBound(1e-2))
        stats = build_report(blob)
        assert stats.codec == "CHUNKED"
        assert stats.inner_codec == "SZ_T"
        assert stats.n_chunks == comp.last_chunk_count
        assert stats.crc_verify_s > 0
        assert stats.metrics["chunks.decompressed"]["value"] == comp.last_chunk_count

    def test_format_lists_sections_and_crc(self, smooth_positive_3d):
        blob = compress(smooth_positive_3d, RelativeBound(1e-2))
        text = build_report(blob).format()
        assert "CRC verification" in text
        assert "sections:" in text
        assert "inner" in text


class TestTolerateCorruption:
    """build_report(tolerate_corruption=True) on damaged CHUNKED v2 streams."""

    @pytest.fixture()
    def chunked_blob(self, smooth_positive_3d):
        from repro.core.chunked import ChunkedCompressor

        comp = ChunkedCompressor("SZ_T", chunk_bytes=8192, executor="serial")
        return comp.compress(smooth_positive_3d, RelativeBound(1e-2))

    def test_clean_stream_has_no_recovery(self, chunked_blob):
        stats = build_report(chunked_blob, tolerate_corruption=True)
        assert stats.recovery is None
        assert "recovery:" not in stats.format()
        assert stats.codec == "CHUNKED" and stats.n_chunks > 1

    def test_corrupt_chunk_recovered_and_reported(self, chunked_blob):
        from repro import StreamError
        from repro.testing.faults import corrupt_chunk

        bad = corrupt_chunk(chunked_blob, index=1)
        with pytest.raises(StreamError):
            build_report(bad)  # strict decode still refuses damaged bytes
        stats = build_report(bad, tolerate_corruption=True)
        assert stats.codec == "CHUNKED"
        assert stats.recovery is not None and not stats.recovery.complete
        assert stats.recovery.n_lost_chunks == 1
        assert stats.recovery.failures[0].index == 1
        assert stats.n_chunks == stats.recovery.n_chunks
        assert "payload" in stats.sections and "lens" in stats.sections
        text = stats.format()
        assert "recovery:" in text and "lost 1/" in text

    def test_unrecoverable_stream_still_raises(self):
        from repro.encoding.container import ContainerError

        with pytest.raises(ContainerError, match="unrecoverable"):
            build_report(b"this is not a stream at all", tolerate_corruption=True)


class TestParityStats:
    def test_v3_stream_reports_parity_geometry(self):
        from repro.core.chunked import ChunkedCompressor

        rng = np.random.default_rng(0)
        data = rng.lognormal(size=4000).astype(np.float32)
        blob = ChunkedCompressor(
            chunk_bytes=4000, parity=2, group_size=4, executor="serial"
        ).compress(data, RelativeBound(1e-2))
        stats = build_report(blob)
        assert stats.version == 3
        assert stats.parity == (2, 4)
        assert "k=2 per group of 4" in stats.format()
        assert "parity" in stats.sections

    def test_plain_stream_has_no_parity(self):
        rng = np.random.default_rng(0)
        data = rng.lognormal(size=500).astype(np.float32)
        stats = build_report(compress(data, RelativeBound(1e-2)))
        assert stats.parity is None
