"""Quality-report and stream-statistics assembly."""

import math

import numpy as np
import pytest

from repro import AbsoluteBound, RelativeBound, compress
from repro.report import build_report, quality_report


class TestQualityReport:
    def test_relative_codec_report(self, smooth_positive_3d):
        blob = compress(smooth_positive_3d, RelativeBound(1e-2))
        rep = quality_report(smooth_positive_3d, blob)
        assert rep.codec == "SZ_T"
        assert rep.bound_kind == "rel"
        assert rep.bound_value == 1e-2
        assert rep.errors.strictly_bounded
        assert rep.errors.max_rel <= 1e-2
        assert rep.ratio > 1
        assert rep.bits_per_value == pytest.approx(
            8 * rep.compressed_nbytes / smooth_positive_3d.size
        )
        assert rep.distribution is not None and rep.distribution.looks_uniform

    def test_absolute_codec_report(self, signed_2d):
        blob = compress(signed_2d, AbsoluteBound(0.5), compressor="SZ_ABS")
        rep = quality_report(signed_2d, blob)
        assert rep.bound_kind == "abs"
        assert rep.errors.max_abs <= 0.5
        assert rep.errors.bounded_fraction == 1.0

    def test_unknown_bound_codec_still_reports_rates(self, smooth_positive_3d):
        from repro import PrecisionBound

        blob = compress(smooth_positive_3d, PrecisionBound(19), compressor="FPZIP")
        rep = quality_report(smooth_positive_3d, blob)
        assert rep.bound_kind is None
        assert rep.errors is None
        assert math.isfinite(rep.psnr_db)

    def test_format_is_human_readable(self, smooth_positive_3d):
        blob = compress(smooth_positive_3d, RelativeBound(1e-2))
        text = quality_report(smooth_positive_3d, blob).format()
        assert "SZ_T" in text
        assert "bounded: 100%" in text
        assert "bits/value" in text
        assert "error shape" in text

    def test_shape_mismatch_rejected(self, smooth_positive_3d):
        blob = compress(smooth_positive_3d, RelativeBound(1e-2))
        with pytest.raises(ValueError, match="shape"):
            quality_report(smooth_positive_3d.ravel(), blob)

    def test_cli_report_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.data.io import write_raw

        data = np.exp(np.random.default_rng(0).normal(0, 1, (16, 16))).astype(np.float32)
        src = str(tmp_path / "f.f32")
        write_raw(src, data)
        main(["compress", src, str(tmp_path / "f.rpz"), "--shape", "16,16",
              "--rel-bound", "1e-2", "--report"])
        out = capsys.readouterr().out
        assert "error shape" in out and "PSNR" in out


class TestStreamStats:
    def test_plain_stream(self, smooth_positive_3d):
        blob = compress(smooth_positive_3d, RelativeBound(1e-2))
        stats = build_report(blob)
        assert stats.codec == "SZ_T"
        assert stats.nbytes == len(blob)
        assert stats.shape == smooth_positive_3d.shape
        assert stats.dtype == smooth_positive_3d.dtype.name
        assert stats.decoded_nbytes == smooth_positive_3d.nbytes
        assert stats.n_chunks is None
        assert stats.decode_s > 0
        assert stats.crc_verify_s >= 0
        assert sum(stats.sections.values()) <= len(blob)
        assert "inner" in stats.sections

    def test_chunked_stream(self, smooth_positive_3d):
        from repro.core.chunked import ChunkedCompressor

        comp = ChunkedCompressor("SZ_T", chunk_bytes=4096, executor="serial")
        blob = comp.compress(smooth_positive_3d, RelativeBound(1e-2))
        stats = build_report(blob)
        assert stats.codec == "CHUNKED"
        assert stats.inner_codec == "SZ_T"
        assert stats.n_chunks == comp.last_chunk_count
        assert stats.crc_verify_s > 0
        assert stats.metrics["chunks.decompressed"]["value"] == comp.last_chunk_count

    def test_format_lists_sections_and_crc(self, smooth_positive_3d):
        blob = compress(smooth_positive_3d, RelativeBound(1e-2))
        text = build_report(blob).format()
        assert "CRC verification" in text
        assert "sections:" in text
        assert "inner" in text
