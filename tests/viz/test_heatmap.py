"""Grayscale renderers."""

import numpy as np
import pytest

from repro.viz import ascii_heatmap, save_pgm, to_gray


class TestToGray:
    def test_full_range_mapping(self):
        a = np.array([[0.0, 0.5], [1.0, 0.25]])
        g = to_gray(a)
        assert g.dtype == np.uint8
        assert g[0, 0] == 0 and g[1, 0] == 255

    def test_clipping(self):
        a = np.array([[-1.0, 2.0]])
        g = to_gray(a, vmin=0.0, vmax=1.0)
        assert g[0, 0] == 0 and g[0, 1] == 255

    def test_constant_input(self):
        g = to_gray(np.ones((3, 3)))
        np.testing.assert_array_equal(g, 0)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            to_gray(np.zeros(5))


class TestPgm:
    def test_writes_valid_header(self, tmp_path):
        path = tmp_path / "img.pgm"
        save_pgm(str(path), np.arange(12, dtype=np.uint8).reshape(3, 4))
        raw = path.read_bytes()
        assert raw.startswith(b"P5\n4 3\n255\n")
        assert len(raw) == len(b"P5\n4 3\n255\n") + 12

    def test_rejects_non_2d(self, tmp_path):
        with pytest.raises(ValueError):
            save_pgm(str(tmp_path / "x.pgm"), np.zeros(4, dtype=np.uint8))


class TestAscii:
    def test_produces_rows(self):
        rng = np.random.default_rng(0)
        art = ascii_heatmap(rng.random((64, 64)), width=16)
        lines = art.splitlines()
        assert len(lines) >= 2
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_dark_and_bright_distinct(self):
        img = np.zeros((32, 32))
        img[:, 16:] = 1.0
        art = ascii_heatmap(img, width=16)
        first_row = art.splitlines()[0]
        assert first_row[0] != first_row[-1]
