"""File-level CLI (repro-compress) end-to-end."""

import numpy as np
import pytest

from repro.cli import main
from repro.data.io import load_array, write_raw


@pytest.fixture()
def field(tmp_path):
    data = np.exp(np.random.default_rng(0).normal(0, 2, size=(16, 16, 16))).astype(np.float32)
    path = str(tmp_path / "field.f32")
    write_raw(path, data)
    return path, data


class TestCompressCommand:
    def test_roundtrip_rel_bound(self, field, tmp_path, capsys):
        path, data = field
        out = str(tmp_path / "field.rpz")
        back = str(tmp_path / "back.f32")
        assert main(["compress", path, out, "--shape", "16,16,16",
                     "--rel-bound", "1e-2"]) == 0
        assert "bounded 100%" in capsys.readouterr().out
        assert main(["decompress", out, back]) == 0
        recon = load_array(back, (16, 16, 16))
        assert np.all(np.abs(recon - data) <= 1e-2 * np.abs(data))

    def test_abs_bound_and_named_compressor(self, field, tmp_path):
        path, data = field
        out = str(tmp_path / "f.rpz")
        assert main(["compress", path, out, "--shape", "16,16,16",
                     "--abs-bound", "0.5", "--compressor", "ZFP_A"]) == 0

    def test_precision_compressor(self, field, tmp_path):
        path, _ = field
        out = str(tmp_path / "f.rpz")
        assert main(["compress", path, out, "--shape", "16,16,16",
                     "--precision", "19", "--compressor", "FPZIP"]) == 0

    def test_exactly_one_bound_required(self, field, tmp_path):
        path, _ = field
        out = str(tmp_path / "f.rpz")
        with pytest.raises(SystemExit):
            main(["compress", path, out, "--shape", "16,16,16"])
        with pytest.raises(SystemExit):
            main(["compress", path, out, "--shape", "16,16,16",
                  "--rel-bound", "1e-2", "--abs-bound", "1.0"])

    def test_chunked_flags_roundtrip(self, field, tmp_path, capsys):
        path, data = field
        out = str(tmp_path / "f.rpz")
        back = str(tmp_path / "b.f32")
        assert main(["compress", path, out, "--shape", "16,16,16",
                     "--rel-bound", "1e-2", "--chunk-size", "4K",
                     "--workers", "2"]) == 0
        assert "chunks" in capsys.readouterr().out
        assert main(["decompress", out, back]) == 0
        recon = load_array(back, (16, 16, 16))
        assert np.all(np.abs(recon - data) <= 1e-2 * np.abs(data))

    def test_bad_chunk_size_rejected(self, field, tmp_path):
        path, _ = field
        with pytest.raises(SystemExit):
            main(["compress", path, str(tmp_path / "o"), "--shape", "16,16,16",
                  "--rel-bound", "1e-2", "--chunk-size", "huge"])

    def test_npy_input_no_shape_needed(self, tmp_path):
        data = np.abs(np.random.default_rng(1).normal(1, 0.1, (8, 8))).astype(np.float32)
        src = str(tmp_path / "f.npy")
        np.save(src, data)
        out = str(tmp_path / "f.rpz")
        assert main(["compress", src, out, "--rel-bound", "1e-2"]) == 0

    def test_bad_shape_rejected(self, field, tmp_path):
        path, _ = field
        with pytest.raises(SystemExit):
            main(["compress", path, str(tmp_path / "o"), "--shape", "16,x",
                  "--rel-bound", "1e-2"])


class TestInfoCommand:
    def test_describes_stream(self, field, tmp_path, capsys):
        path, _ = field
        out = str(tmp_path / "f.rpz")
        main(["compress", path, out, "--shape", "16,16,16", "--rel-bound", "1e-2"])
        capsys.readouterr()
        assert main(["info", out]) == 0
        text = capsys.readouterr().out
        assert "SZ_T" in text
        assert "(16, 16, 16)" in text
        assert "float32" in text
