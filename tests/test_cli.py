"""File-level CLI (repro-compress) end-to-end."""

import numpy as np
import pytest

from repro.cli import main
from repro.data.io import load_array, write_raw


@pytest.fixture()
def field(tmp_path):
    data = np.exp(np.random.default_rng(0).normal(0, 2, size=(16, 16, 16))).astype(np.float32)
    path = str(tmp_path / "field.f32")
    write_raw(path, data)
    return path, data


class TestCompressCommand:
    def test_roundtrip_rel_bound(self, field, tmp_path, capsys):
        path, data = field
        out = str(tmp_path / "field.rpz")
        back = str(tmp_path / "back.f32")
        assert main(["compress", path, out, "--shape", "16,16,16",
                     "--rel-bound", "1e-2"]) == 0
        assert "bounded 100%" in capsys.readouterr().out
        assert main(["decompress", out, back]) == 0
        recon = load_array(back, (16, 16, 16))
        assert np.all(np.abs(recon - data) <= 1e-2 * np.abs(data))

    def test_abs_bound_and_named_compressor(self, field, tmp_path):
        path, data = field
        out = str(tmp_path / "f.rpz")
        assert main(["compress", path, out, "--shape", "16,16,16",
                     "--abs-bound", "0.5", "--compressor", "ZFP_A"]) == 0

    def test_precision_compressor(self, field, tmp_path):
        path, _ = field
        out = str(tmp_path / "f.rpz")
        assert main(["compress", path, out, "--shape", "16,16,16",
                     "--precision", "19", "--compressor", "FPZIP"]) == 0

    def test_exactly_one_bound_required(self, field, tmp_path):
        path, _ = field
        out = str(tmp_path / "f.rpz")
        with pytest.raises(SystemExit):
            main(["compress", path, out, "--shape", "16,16,16"])
        with pytest.raises(SystemExit):
            main(["compress", path, out, "--shape", "16,16,16",
                  "--rel-bound", "1e-2", "--abs-bound", "1.0"])

    def test_chunked_flags_roundtrip(self, field, tmp_path, capsys):
        path, data = field
        out = str(tmp_path / "f.rpz")
        back = str(tmp_path / "b.f32")
        assert main(["compress", path, out, "--shape", "16,16,16",
                     "--rel-bound", "1e-2", "--chunk-size", "4K",
                     "--workers", "2"]) == 0
        assert "chunks" in capsys.readouterr().out
        assert main(["decompress", out, back]) == 0
        recon = load_array(back, (16, 16, 16))
        assert np.all(np.abs(recon - data) <= 1e-2 * np.abs(data))

    def test_bad_chunk_size_rejected(self, field, tmp_path):
        path, _ = field
        with pytest.raises(SystemExit):
            main(["compress", path, str(tmp_path / "o"), "--shape", "16,16,16",
                  "--rel-bound", "1e-2", "--chunk-size", "huge"])

    def test_npy_input_no_shape_needed(self, tmp_path):
        data = np.abs(np.random.default_rng(1).normal(1, 0.1, (8, 8))).astype(np.float32)
        src = str(tmp_path / "f.npy")
        np.save(src, data)
        out = str(tmp_path / "f.rpz")
        assert main(["compress", src, out, "--rel-bound", "1e-2"]) == 0

    def test_bad_shape_rejected(self, field, tmp_path):
        path, _ = field
        with pytest.raises(SystemExit):
            main(["compress", path, str(tmp_path / "o"), "--shape", "16,x",
                  "--rel-bound", "1e-2"])


class TestInfoCommand:
    def test_describes_stream(self, field, tmp_path, capsys):
        path, _ = field
        out = str(tmp_path / "f.rpz")
        main(["compress", path, out, "--shape", "16,16,16", "--rel-bound", "1e-2"])
        capsys.readouterr()
        assert main(["info", out]) == 0
        text = capsys.readouterr().out
        assert "SZ_T" in text
        assert "(16, 16, 16)" in text
        assert "float32" in text
        assert "checksummed" in text


@pytest.fixture()
def stream(field, tmp_path):
    """A compressed CHUNKED stream on disk, plus its source array."""
    path, data = field
    out = str(tmp_path / "field.rpz")
    assert main(["compress", path, out, "--shape", "16,16,16",
                 "--rel-bound", "1e-2", "--chunk-size", "4K"]) == 0
    return out, data


class TestExitCodes:
    """Corrupt/unreadable inputs: one-line stderr diagnostic, exit 2."""

    def test_decompress_corrupt_stream_exits_2(self, stream, tmp_path, capsys):
        out, _ = stream
        with open(out, "r+b") as fh:
            fh.seek(100)
            byte = fh.read(1)
            fh.seek(100)
            fh.write(bytes([byte[0] ^ 0xFF]))
        capsys.readouterr()
        assert main(["decompress", out, str(tmp_path / "b.f32")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "checksum" in err
        assert "Traceback" not in err

    def test_decompress_truncated_stream_exits_2(self, stream, tmp_path, capsys):
        out, _ = stream
        with open(out, "rb") as fh:
            blob = fh.read()
        cut = str(tmp_path / "cut.rpz")
        with open(cut, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        assert main(["decompress", cut, str(tmp_path / "b.f32")]) == 2

    def test_missing_input_exits_2(self, tmp_path, capsys):
        assert main(["decompress", str(tmp_path / "nope.rpz"),
                     str(tmp_path / "b.f32")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_info_on_garbage_exits_2(self, tmp_path, capsys):
        bad = str(tmp_path / "garbage.rpz")
        with open(bad, "wb") as fh:
            fh.write(b"this is not a compressed stream")
        assert main(["info", bad]) == 2
        assert "error:" in capsys.readouterr().err


class TestVerifyCommand:
    def test_clean_stream_verifies(self, stream, capsys):
        out, _ = stream
        assert main(["verify", out]) == 0
        assert "OK" in capsys.readouterr().out

    def test_damaged_stream_exits_2_with_localized_report(self, stream, tmp_path, capsys):
        out, _ = stream
        bad = str(tmp_path / "bad.rpz")
        assert main(["faults", "corrupt-chunk", out, bad, "--index", "1"]) == 0
        capsys.readouterr()
        assert main(["verify", bad]) == 2
        text = capsys.readouterr().out
        assert "problem" in text
        assert "chunk 1" in text


class TestStatsCommand:
    def test_reports_chunks_sections_and_crc_time(self, stream, capsys):
        out, _ = stream
        capsys.readouterr()
        assert main(["stats", out]) == 0
        text = capsys.readouterr().out
        assert "CHUNKED" in text
        assert "chunks:" in text
        assert "sections:" in text
        assert "payload" in text  # per-section sizes listed
        assert "CRC verification" in text

    def test_garbage_exits_2(self, tmp_path, capsys):
        bad = str(tmp_path / "garbage.rpz")
        with open(bad, "wb") as fh:
            fh.write(b"not a stream")
        assert main(["stats", bad]) == 2
        assert "error:" in capsys.readouterr().err


class TestTraceFlags:
    def test_compress_trace_prints_span_tree(self, field, tmp_path, capsys):
        path, _ = field
        out = str(tmp_path / "f.rpz")
        assert main(["compress", path, out, "--shape", "16,16,16",
                     "--rel-bound", "1e-2", "--trace"]) == 0
        text = capsys.readouterr().out
        assert "compress[SZ_T]" in text
        assert "%" in text
        assert "stage coverage" in text

    def test_stage_coverage_at_least_95_percent(self, field, tmp_path):
        from repro.observe import get_tracer

        path, _ = field
        out = str(tmp_path / "f.rpz")
        assert main(["compress", path, out, "--shape", "16,16,16",
                     "--rel-bound", "1e-2", "--trace"]) == 0
        roots = [sp for sp in get_tracer().roots() if sp.name == "compress"]
        assert roots
        assert roots[0].coverage() >= 0.95

    def test_trace_json_schema(self, field, tmp_path):
        import json

        path, _ = field
        out = str(tmp_path / "f.rpz")
        trace = str(tmp_path / "trace.json")
        assert main(["compress", path, out, "--shape", "16,16,16",
                     "--rel-bound", "1e-2", "--trace-json", trace]) == 0
        doc = json.load(open(trace))
        assert doc["version"] == 1
        names = [sp["name"] for sp in doc["spans"]]
        assert "compress" in names
        comp = doc["spans"][names.index("compress")]
        assert comp["attrs"]["codec"] == "SZ_T"
        assert comp["wall_s"] > 0
        assert any(c["name"] == "log-transform" for c in comp["children"])

    def test_decompress_trace(self, stream, tmp_path, capsys):
        out, _ = stream
        capsys.readouterr()
        assert main(["decompress", out, str(tmp_path / "b.npy"), "--trace"]) == 0
        text = capsys.readouterr().out
        assert "decompress[CHUNKED]" in text

    def test_trace_json_written_even_on_failure(self, tmp_path):
        import json

        bad = str(tmp_path / "garbage.rpz")
        with open(bad, "wb") as fh:
            fh.write(b"not a stream")
        trace = str(tmp_path / "trace.json")
        assert main(["stats", bad, "--trace-json", trace]) == 2
        assert json.load(open(trace))["version"] == 1


class TestFaultsCommand:
    def test_bit_flip_then_tolerant_decompress(self, stream, tmp_path, capsys):
        out, data = stream
        bad = str(tmp_path / "bad.rpz")
        back = str(tmp_path / "back.npy")
        assert main(["faults", "corrupt-chunk", out, bad, "--index", "0",
                     "--seed", "3"]) == 0
        assert main(["decompress", bad, back]) == 2
        assert main(["decompress", bad, back, "--tolerate-corruption"]) == 0
        recon = np.load(back).reshape(-1)
        err = capsys.readouterr().err
        assert "lost 1/" in err
        good = ~np.isnan(recon)
        assert good.any() and not good.all()
        flat = data.reshape(-1)
        assert np.all(np.abs(recon[good] - flat[good]) <= 1e-2 * np.abs(flat[good]))

    def test_truncate_fraction(self, stream, tmp_path):
        out, _ = stream
        cut = str(tmp_path / "cut.rpz")
        assert main(["faults", "truncate", out, cut, "--keep", "0.25"]) == 0
        assert main(["verify", cut]) == 2

    def test_drop_section(self, stream, tmp_path):
        out, _ = stream
        bad = str(tmp_path / "bad.rpz")
        assert main(["faults", "drop-section", out, bad, "--key", "lens"]) == 0
        assert main(["decompress", bad, str(tmp_path / "b.npy")]) == 2


class TestAuditCommand:
    def test_clean_stream_passes(self, stream, field, capsys):
        out, _ = stream
        path, _ = field
        capsys.readouterr()
        assert main(["audit", out, "--original", path, "--shape", "16,16,16"]) == 0
        text = capsys.readouterr().out
        assert "verdict:" in text and "PASS" in text
        assert "max rel error" in text

    def test_without_original_checks_internals(self, stream, capsys):
        out, _ = stream
        capsys.readouterr()
        assert main(["audit", out]) == 0
        text = capsys.readouterr().out
        assert "no original supplied" in text
        assert "PASS" in text

    def test_wrong_original_exits_2(self, stream, field, tmp_path, capsys):
        from repro.data.io import write_raw

        out, data = stream
        wrong = str(tmp_path / "wrong.f32")
        write_raw(wrong, (data * 1.5).astype(np.float32))
        capsys.readouterr()
        assert main(["audit", out, "--original", wrong, "--shape", "16,16,16"]) == 2
        text = capsys.readouterr().out
        assert "VIOLATION" in text and "FAIL" in text

    def test_json_dump(self, stream, field, tmp_path):
        import json

        out, _ = stream
        path, _ = field
        dest = str(tmp_path / "audit.json")
        assert main(["audit", out, "--original", path, "--shape", "16,16,16",
                     "--json", dest]) == 0
        doc = json.load(open(dest))
        assert doc["codec"] == "CHUNKED"
        assert doc["violations"] == 0
        assert doc["n_points"] == 16 ** 3

    def test_garbage_exits_2(self, tmp_path, capsys):
        bad = str(tmp_path / "garbage.rpz")
        with open(bad, "wb") as fh:
            fh.write(b"not a stream")
        assert main(["audit", bad]) == 2
        assert "error:" in capsys.readouterr().err


class TestExplainCommand:
    def test_clean_stream_markdown(self, stream, field, capsys):
        out, _ = stream
        path, _ = field
        capsys.readouterr()
        assert main(["explain", out, "--original", path, "--shape", "16,16,16"]) == 0
        text = capsys.readouterr().out
        assert "repro explain" in text
        assert "Byte attribution" in text
        assert "Point-wise error quality" in text

    def test_json_and_out_files(self, stream, field, tmp_path):
        import json

        out, _ = stream
        path, _ = field
        js = str(tmp_path / "explain.json")
        md = str(tmp_path / "explain.md")
        assert main(["explain", out, "--original", path, "--shape", "16,16,16",
                     "--json", js, "--out", md]) == 0
        doc = json.load(open(js))
        assert doc["codec"] == "CHUNKED"
        assert doc["ok"] is True
        assert sum(doc["kind_totals"].values()) == doc["nbytes"]
        assert "Byte attribution" in open(md).read()

    def test_truncated_stream_exits_2_but_renders(self, stream, tmp_path, capsys):
        out, _ = stream
        cut = str(tmp_path / "cut.rpz")
        with open(out, "rb") as fh:
            blob = fh.read()
        with open(cut, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        capsys.readouterr()
        assert main(["explain", cut]) == 2
        text = capsys.readouterr().out
        assert "DAMAGED" in text
        assert "StreamError" in text

    def test_info_shows_attribution_kinds(self, stream, capsys):
        out, _ = stream
        capsys.readouterr()
        assert main(["info", out]) == 0
        text = capsys.readouterr().out
        assert "container overhead" in text
        assert "[chunk-table]" in text or "[payload]" in text


class TestMetricsExportFlags:
    def test_openmetrics_to_file(self, stream, tmp_path):
        from repro.observe import parse_openmetrics

        out, _ = stream
        dest = str(tmp_path / "metrics.om")
        assert main(["stats", out, "--metrics-out", "openmetrics",
                     "--metrics-path", dest]) == 0
        families = parse_openmetrics(open(dest).read())
        assert families  # the decode moved at least one metric

    def test_jsonl_to_stdout(self, stream, tmp_path, capsys):
        import json

        out, _ = stream
        back = str(tmp_path / "b.f32")
        assert main(["decompress", out, back, "--metrics-out", "jsonl"]) == 0
        lines = [ln for ln in capsys.readouterr().out.splitlines()
                 if ln.startswith("{")]
        assert lines
        recs = [json.loads(ln) for ln in lines]
        assert all("metric" in r for r in recs)
        assert any(r["metric"].startswith("chunks.") for r in recs)

    def test_compress_exports_audit_counters(self, field, tmp_path):
        from repro.observe import parse_openmetrics

        path, _ = field
        out = str(tmp_path / "f.rpz")
        dest = str(tmp_path / "metrics.om")
        assert main(["compress", path, out, "--shape", "16,16,16",
                     "--rel-bound", "1e-2", "--metrics-out", "openmetrics",
                     "--metrics-path", dest]) == 0
        families = parse_openmetrics(open(dest).read())
        assert "repro_audit_points" in families


class TestResilienceFlags:
    """--journal/--policy/--ladder plumbing and the resume subcommand."""

    def test_journaled_compress_matches_plain(self, field, tmp_path, capsys):
        path, _ = field
        plain = str(tmp_path / "plain.rpz")
        journaled = str(tmp_path / "j.rpz")
        assert main(["compress", path, plain, "--shape", "16,16,16",
                     "--rel-bound", "1e-2", "--chunk-size", "4K",
                     "--workers", "1"]) == 0
        capsys.readouterr()
        assert main(["compress", path, journaled, "--shape", "16,16,16",
                     "--rel-bound", "1e-2", "--chunk-size", "4K",
                     "--workers", "1", "--journal",
                     str(tmp_path / "wal")]) == 0
        assert "completed" in capsys.readouterr().out
        assert open(journaled, "rb").read() == open(plain, "rb").read()
        assert not (tmp_path / "wal").exists()

    def test_kill_and_resume_via_cli(self, field, tmp_path, capsys):
        from repro.testing import CrashPoint, kill_at

        path, data = field
        out = str(tmp_path / "f.rpz")
        jdir = str(tmp_path / "wal")
        with pytest.raises(CrashPoint):
            with kill_at(5):
                main(["compress", path, out, "--shape", "16,16,16",
                      "--rel-bound", "1e-2", "--chunk-size", "4K",
                      "--workers", "1", "--journal", jdir])
        capsys.readouterr()
        assert main(["resume", jdir]) == 0
        assert "resumed" in capsys.readouterr().out
        back = str(tmp_path / "b.f32")
        assert main(["decompress", out, back]) == 0
        recon = load_array(back, (16, 16, 16))
        assert np.all(np.abs(recon - data) <= 1e-2 * np.abs(data))

    def test_policy_and_ladder_compress(self, field, tmp_path, capsys):
        path, data = field
        out = str(tmp_path / "f.rpz")
        assert main(["compress", path, out, "--shape", "16,16,16",
                     "--rel-bound", "1e-2", "--chunk-size", "4K",
                     "--policy", "retries=1;backoff=0.01",
                     "--ladder", "SZ_T>GZIP"]) == 0
        capsys.readouterr()
        assert main(["info", out]) == 0
        text = capsys.readouterr().out
        assert "SZ_T>GZIP" in text
        back = str(tmp_path / "b.f32")
        assert main(["decompress", out, back]) == 0
        recon = load_array(back, (16, 16, 16))
        assert np.all(np.abs(recon - data) <= 1e-2 * np.abs(data))

    def test_journaled_decompress(self, field, tmp_path):
        path, data = field
        out = str(tmp_path / "f.rpz")
        assert main(["compress", path, out, "--shape", "16,16,16",
                     "--rel-bound", "1e-2", "--chunk-size", "4K"]) == 0
        back = str(tmp_path / "b.f32")
        assert main(["decompress", out, back, "--journal",
                     str(tmp_path / "dwal")]) == 0
        recon = load_array(back, (16, 16, 16))
        assert np.all(np.abs(recon - data) <= 1e-2 * np.abs(data))

    def test_journal_excludes_tolerate_corruption(self, field, tmp_path, capsys):
        path, _ = field
        out = str(tmp_path / "f.rpz")
        assert main(["compress", path, out, "--shape", "16,16,16",
                     "--rel-bound", "1e-2"]) == 0
        capsys.readouterr()
        assert main(["decompress", out, str(tmp_path / "b.f32"),
                     "--journal", str(tmp_path / "w"),
                     "--tolerate-corruption"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_policy_spec_is_an_argparse_error(self, field, tmp_path):
        path, _ = field
        with pytest.raises(SystemExit):
            main(["compress", path, str(tmp_path / "o"), "--shape", "16,16,16",
                  "--rel-bound", "1e-2", "--policy", "nonsense=1"])

    def test_unknown_ladder_rung_is_an_argparse_error(self, field, tmp_path):
        path, _ = field
        with pytest.raises(SystemExit):
            main(["compress", path, str(tmp_path / "o"), "--shape", "16,16,16",
                  "--rel-bound", "1e-2", "--ladder", "SZ_T>NOPE"])


class TestFailureContract:
    """Every failure exits 1 or 2 with a one-line diagnostic -- never a
    traceback.  Exit 2 = bad data/environment; exit 1 = bad request."""

    CASES = [
        ("compress-missing-input", 2, lambda d: [
            "compress", str(d / "nope.f32"), str(d / "o.rpz"),
            "--shape", "4,4", "--rel-bound", "1e-2"]),
        ("decompress-missing-input", 2, lambda d: [
            "decompress", str(d / "nope.rpz"), str(d / "o.f32")]),
        ("decompress-garbage", 2, lambda d: [
            "decompress", str(d / "garbage.bin"), str(d / "o.f32")]),
        ("info-garbage", 2, lambda d: ["info", str(d / "garbage.bin")]),
        ("stats-garbage", 2, lambda d: ["stats", str(d / "garbage.bin")]),
        ("verify-missing", 2, lambda d: ["verify", str(d / "nope.rpz")]),
        ("resume-missing-journal", 1, lambda d: [
            "resume", str(d / "nope.journal")]),
        ("unsupported-bound", 1, lambda d: [
            "compress", str(d / "tiny.f32"), str(d / "o.rpz"),
            "--shape", "4,4", "--precision", "16"]),
    ]

    @pytest.mark.parametrize("name,code,argv", CASES,
                             ids=[c[0] for c in CASES])
    def test_exit_code_and_clean_diagnostic(self, name, code, argv,
                                            tmp_path, capsys):
        (tmp_path / "garbage.bin").write_bytes(b"not a stream at all")
        np.ones((4, 4), dtype=np.float32).tofile(tmp_path / "tiny.f32")
        assert main(argv(tmp_path)) == code
        captured = capsys.readouterr()
        assert "error:" in captured.err
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err + captured.out
