"""Top-level public API: compress/decompress, dispatch, docs example."""

import numpy as np
import pytest

import repro
from repro import RelativeBound, compress, decompress


class TestPublicApi:
    def test_readme_quickstart(self):
        data = np.random.default_rng(0).lognormal(size=(16, 16, 16)).astype(np.float32)
        blob = compress(data, RelativeBound(1e-2))
        recon = decompress(blob)
        assert np.all(np.abs(recon - data) <= 1e-2 * np.abs(data))

    def test_default_compressor_is_sz_t(self):
        data = np.ones((8, 8), dtype=np.float32)
        blob = compress(data, RelativeBound(1e-3))
        assert repro.Container.from_bytes(blob).codec == "SZ_T"

    def test_named_compressor(self):
        data = np.abs(np.random.default_rng(1).normal(1, 0.1, (8, 8))).astype(np.float32)
        blob = compress(data, RelativeBound(1e-2), compressor="ZFP_T")
        assert repro.Container.from_bytes(blob).codec == "ZFP_T"
        recon = decompress(blob)
        assert np.abs(recon - data).max() <= 1e-2 * np.abs(data).min() * 10

    def test_compressor_instance(self):
        data = np.ones((8, 8), dtype=np.float32) * 5
        comp = repro.make_sz_t()
        blob = compress(data, RelativeBound(1e-3), compressor=comp)
        np.testing.assert_allclose(decompress(blob), data, rtol=1e-3)

    def test_decompress_garbage_rejected(self):
        with pytest.raises(Exception):
            decompress(b"not a stream")

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
