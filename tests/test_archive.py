"""Multi-field archive API."""

import numpy as np
import pytest

from repro import AbsoluteBound, RelativeBound
from repro.archive import archive_manifest, compress_dataset, decompress_dataset


@pytest.fixture()
def fields(smooth_positive_3d, signed_2d):
    return {"density": smooth_positive_3d, "velocity": signed_2d}


class TestArchive:
    def test_roundtrip_uniform_settings(self, fields):
        blob = compress_dataset(fields, RelativeBound(1e-2))
        out = decompress_dataset(blob)
        assert list(out) == ["density", "velocity"]
        for name, data in fields.items():
            x = data.astype(np.float64)
            xd = out[name].astype(np.float64)
            nz = x != 0
            assert (np.abs(xd[nz] - x[nz]) / np.abs(x[nz])).max() <= 1e-2

    def test_per_field_settings(self, fields):
        blob = compress_dataset(
            fields,
            bound={"density": RelativeBound(1e-3),
                   "velocity": AbsoluteBound(1.0)},
            compressor={"density": "SZ_T", "velocity": "ZFP_A"},
        )
        manifest = archive_manifest(blob)
        assert manifest["density"]["codec"] == "SZ_T"
        assert manifest["velocity"]["codec"] == "ZFP_A"
        out = decompress_dataset(blob)
        assert np.abs(out["velocity"].astype(np.float64)
                      - fields["velocity"].astype(np.float64)).max() <= 1.0

    def test_manifest_metadata(self, fields):
        blob = compress_dataset(fields, RelativeBound(1e-2))
        manifest = archive_manifest(blob)
        assert manifest["density"]["shape"] == fields["density"].shape
        assert manifest["density"]["dtype"] == "float32"
        assert manifest["density"]["nbytes"] > 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compress_dataset({}, RelativeBound(1e-2))

    def test_non_archive_stream_rejected(self, fields):
        from repro import compress

        plain = compress(fields["density"], RelativeBound(1e-2))
        with pytest.raises(ValueError, match="archive"):
            decompress_dataset(plain)
        with pytest.raises(ValueError, match="archive"):
            archive_manifest(plain)
