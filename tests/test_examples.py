"""The runnable examples must stay runnable (fast subset, in-process)."""

import os
import runpy
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name: str, monkeypatch, argv=None):
    monkeypatch.setattr(sys, "argv", [name] + (argv or []))
    return runpy.run_path(os.path.join(EXAMPLES, name), run_name="__main__")


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        run_example("quickstart.py", monkeypatch)
        out = capsys.readouterr().out
        assert "bounded =   100%" in out

    def test_custom_compressor(self, monkeypatch, capsys):
        run_example("custom_compressor.py", monkeypatch)
        out = capsys.readouterr().out
        assert "bounded 100%" in out
        assert "zeros preserved exactly" in out

    @pytest.mark.slow
    def test_hacc_velocity_angles(self, monkeypatch, capsys):
        run_example("hacc_velocity_angles.py", monkeypatch)
        out = capsys.readouterr().out
        assert "SZ_T" in out

    def test_every_example_file_compiles(self):
        import py_compile

        for fname in sorted(os.listdir(EXAMPLES)):
            if fname.endswith(".py"):
                py_compile.compile(os.path.join(EXAMPLES, fname), doraise=True)
