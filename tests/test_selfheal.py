"""Self-healing streams: Reed-Solomon repair matrix, watchdog, deadlines.

The repair tests are the PR's acceptance proof: a v3 stream with ``k``
parity blocks per group survives any ``k`` corrupted or truncated chunks
per group with *byte-exact* ``repair_stream`` output (asserted against
the pristine stream, whose CRC trailer makes the comparison meaningful),
and degrades cleanly -- per-chunk outcomes, fill-based recovery -- when
losses exceed the parity.  Deterministic: every random choice derives
from ``REPRO_FAULT_SEED`` like the rest of the fault suite.
"""

import itertools
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import (
    AbsoluteBound,
    PrecisionBound,
    RateBound,
    RelativeBound,
    StreamError,
    available_compressors,
    decompress,
    get_compressor,
    recover_array,
    verify_stream,
)
from repro.core.chunked import ChunkedCompressor, ChunkTimeoutError
from repro.integrity import RepairReport, repair_stream
from repro.observe.metrics import metrics
from repro.parallel.runner import (
    RankDeadlineError,
    dump_file_per_process,
    load_file_per_process,
)
from repro.testing import StallingExecutor, corrupt_chunk, corrupt_section, truncate

SEED = int(os.environ.get("REPRO_FAULT_SEED", "0"))
BOUND = RelativeBound(1e-2)


def _bound_for(comp):
    sb = comp.supported_bounds
    if RelativeBound in sb:
        return RelativeBound(1e-2)
    if AbsoluteBound in sb:
        return AbsoluteBound(1e-3)
    if PrecisionBound in sb:
        return PrecisionBound(16)
    return RateBound(16)


@pytest.fixture(scope="module")
def field():
    rng = np.random.default_rng(SEED)
    return rng.lognormal(0.0, 1.0, size=8000).astype(np.float32)


@pytest.fixture(scope="module")
def parity_blob(field):
    """k=2 parity per 8-chunk group -- the acceptance-criteria geometry."""
    cc = ChunkedCompressor(chunk_bytes=4000, parity=2, group_size=8, executor="serial")
    blob = cc.compress(field, BOUND)
    assert cc.last_chunk_count == 8
    return blob


class TestSingleLossEveryCodec:
    """Corrupt every chunk position in turn, for every registered codec."""

    @pytest.mark.parametrize(
        "name", [n for n in available_compressors() if n != "CHUNKED"]
    )
    def test_single_loss_repairs_byte_exact(self, name, field):
        if name == "SAFE":
            # The registry entry is decode-only; exercise a wrapped codec.
            from repro.safeguards import SafeguardedCompressor

            inner = SafeguardedCompressor("SZ_T", ["rel:1e-2"])
        else:
            inner = get_compressor(name)
        bound = _bound_for(inner)
        data = field[:3000]
        cc = ChunkedCompressor(
            inner, chunk_bytes=3000, parity=1, group_size=4, executor="serial"
        )
        blob = cc.compress(data, bound)
        n = cc.last_chunk_count
        assert n >= 3
        for index in range(n):
            damaged = corrupt_chunk(blob, index, n_bits=4, seed=SEED)
            assert not verify_stream(damaged).ok
            fixed, report = repair_stream(damaged)
            assert report.ok and report.repaired == (index,)
            assert fixed == blob
            assert verify_stream(fixed).ok


class TestDoubleLossMatrix:
    """k=2 / m=8: any two lost chunks per group come back byte-exactly."""

    def test_every_corrupt_pair(self, field, parity_blob):
        for i, j in itertools.combinations(range(8), 2):
            damaged = corrupt_chunk(parity_blob, i, n_bits=3, seed=SEED)
            damaged = corrupt_chunk(damaged, j, n_bits=3, seed=SEED + 1)
            fixed, report = repair_stream(damaged)
            assert report.ok and set(report.repaired) == {i, j}
            assert fixed == parity_blob
            assert verify_stream(fixed).ok
            np.testing.assert_array_equal(
                decompress(fixed), decompress(parity_blob)
            )

    def test_tail_truncation_within_parity(self, parity_blob):
        """Parity precedes the payload, so a tail cut erases only chunks."""
        from repro import Container

        box = Container.from_bytes(parity_blob)
        lens = box.get_array("lens").astype(int)
        # Cut into the last chunk (one loss), then into the last two.
        for n_lost in (1, 2):
            keep = len(parity_blob) - int(lens[-n_lost:].sum()) - 4
            fixed, report = repair_stream(truncate(parity_blob, keep))
            assert report.ok and len(report.repaired) == n_lost
            assert fixed == parity_blob

    def test_losses_beyond_parity_degrade_cleanly(self, field, parity_blob):
        damaged = parity_blob
        for index, seed in ((1, SEED), (3, SEED + 1), (5, SEED + 2)):
            damaged = corrupt_chunk(damaged, index, n_bits=3, seed=seed)
        fixed, report = repair_stream(damaged)
        assert not report.ok
        assert report.n_damaged == 3 and report.n_repaired == 0
        assert set(report.lost) == {1, 3, 5}
        # Partial recovery still salvages the intact chunks of the output.
        arr, rec = recover_array(fixed)
        assert rec is not None and rec.n_lost_chunks == 3
        lost = np.isnan(arr)
        assert 0 < lost.sum() < arr.size
        np.testing.assert_allclose(
            arr[~lost], field[~lost], rtol=2e-2, atol=0
        )

    def test_corrupt_parity_section_heals_on_repair(self, parity_blob):
        """Damage to the parity bytes themselves re-encodes byte-exactly."""
        damaged = corrupt_section(parity_blob, "parity", n_bits=4, seed=SEED)
        fixed, report = repair_stream(damaged)
        assert report.ok and report.n_damaged == 0
        assert fixed == parity_blob

    def test_corrupt_chunk_plus_corrupt_parity_block(self, parity_blob):
        """A bad parity block costs attempts, not correctness (k=2, 1 loss)."""
        damaged = corrupt_chunk(parity_blob, 2, n_bits=3, seed=SEED)
        # One flipped bit damages exactly one of the two parity blocks.
        damaged = corrupt_section(damaged, "parity", n_bits=1, seed=SEED + 3)
        fixed, report = repair_stream(damaged)
        assert report.ok and report.repaired == (2,)
        assert fixed == parity_blob

    def test_repair_report_round_trips_json(self, parity_blob):
        damaged = corrupt_chunk(parity_blob, 0, seed=SEED)
        _, report = repair_stream(damaged)
        decoded = json.loads(json.dumps(report.to_dict()))
        assert decoded["ok"] and decoded["n_repaired"] == 1
        assert decoded["chunks"][0]["outcome"] == "repaired"
        assert isinstance(report, RepairReport)
        assert "rebuilt 1/1" in report.summary()

    def test_repair_requires_parity(self, field):
        plain = ChunkedCompressor(chunk_bytes=4000, executor="serial").compress(
            field, BOUND
        )
        with pytest.raises(StreamError):
            repair_stream(plain)


class TestDecompressPartialRepairs:
    def test_recover_array_uses_parity(self, field, parity_blob):
        damaged = corrupt_chunk(parity_blob, 4, n_bits=2, seed=SEED)
        arr, report = recover_array(damaged)
        assert report is not None
        assert report.complete and report.repaired_chunks == (4,)
        np.testing.assert_array_equal(arr, decompress(parity_blob))

    def test_v2_and_v1_streams_still_parse(self, field):
        v2 = ChunkedCompressor(chunk_bytes=4000, executor="serial").compress(
            field, BOUND
        )
        assert decompress(v2).shape == field.shape
        from repro import Container

        assert Container.from_bytes(v2).version == 2


class TestWatchdog:
    def test_hung_worker_retried_within_budget(self, field):
        timeout = 1.0
        cc = ChunkedCompressor(
            chunk_bytes=4000, timeout=timeout, timeout_retries=2,
            executor=lambda n: StallingExecutor(ThreadPoolExecutor(n), stall_on=2),
        )
        reference = ChunkedCompressor(chunk_bytes=4000, executor="serial").compress(
            field, BOUND
        )
        t0 = time.perf_counter()
        blob = cc.compress(field, BOUND)
        wall = time.perf_counter() - t0
        assert cc.last_timed_out_chunks == 1
        # Acceptance: killed and retried within 2x the timeout.
        assert wall < 2 * timeout
        assert blob == reference

    def test_exhausted_retries_raise_chunk_timeout(self, field):
        cc = ChunkedCompressor(
            chunk_bytes=4000, timeout=0.2, timeout_retries=1, timeout_backoff_s=0.01,
            executor=lambda n: StallingExecutor(ThreadPoolExecutor(n), stall_on=1),
        )
        cc._fresh_worker = lambda: StallingExecutor(
            ThreadPoolExecutor(1), stall_on=1
        )
        with pytest.raises(ChunkTimeoutError, match="deadline"):
            cc.compress(field, BOUND)
        assert not isinstance(ChunkTimeoutError("x"), StreamError)

    def test_delayed_straggler_completes(self, field):
        cc = ChunkedCompressor(
            chunk_bytes=4000, timeout=10.0,
            executor=lambda n: StallingExecutor(
                ThreadPoolExecutor(n), stall_on=1, delay_s=0.05
            ),
        )
        blob = cc.compress(field, BOUND)
        assert cc.last_timed_out_chunks == 0
        np.testing.assert_array_equal(decompress(blob), decompress(blob))

    def test_serial_mode_with_timeout_enforces_deadline(self, field):
        cc = ChunkedCompressor(chunk_bytes=field.nbytes, executor="serial",
                               timeout=30.0)
        blob = cc.compress(field, BOUND)
        assert decompress(blob).shape == field.shape

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            ChunkedCompressor(timeout=0.0)
        with pytest.raises(ValueError):
            ChunkedCompressor(timeout_retries=-1)
        with pytest.raises(ValueError):
            ChunkedCompressor(parity=2, group_size=254)


class TestRankDeadlines:
    def test_dump_deadline_fires(self, field, tmp_path):
        with pytest.raises(RankDeadlineError, match="deadline"):
            dump_file_per_process(
                [field, field], get_compressor("SZ_T"), BOUND,
                str(tmp_path), deadline_s=1e-9,
            )

    def test_dump_load_with_parity_and_deadline(self, field, tmp_path):
        summary = dump_file_per_process(
            [field, field[:4000]], get_compressor("SZ_T"), BOUND, str(tmp_path),
            chunk_bytes=2000, parity=1, group_size=4, chunk_timeout=60.0,
            deadline_s=120.0,
        )
        assert summary.total_bytes_out > 0
        # Damage one rank file; the parity repairs it at load time.
        path = os.path.join(str(tmp_path), "rank_0.rpz")
        with open(path, "rb") as fh:
            blob = fh.read()
        with open(path, "wb") as fh:
            fh.write(corrupt_chunk(blob, 1, seed=SEED))
        shards, _, reports = load_file_per_process(
            str(tmp_path), 2, tolerate_corruption=True, deadline_s=120.0
        )
        assert reports[0] is not None and reports[0].complete
        assert reports[0].repaired_chunks == (1,)
        np.testing.assert_array_equal(shards[0], decompress(blob))

    def test_parity_without_chunking_rejected(self, field, tmp_path):
        with pytest.raises(ValueError, match="chunk_bytes"):
            dump_file_per_process(
                [field], get_compressor("SZ_T"), BOUND, str(tmp_path), parity=1
            )


class TestParityOverheadGate:
    def test_parity_encode_under_15_percent(self):
        """Benchmark gate: parity encode < 15% of compression wall time."""
        rng = np.random.default_rng(SEED)
        data = rng.lognormal(0.0, 1.0, size=1_000_000).astype(np.float32)
        cc = ChunkedCompressor(parity=2, executor="serial")  # default geometry
        before = metrics().snapshot()
        t0 = time.perf_counter()
        cc.compress(data, BOUND)
        wall = time.perf_counter() - t0
        delta = metrics().diff(before)
        parity_s = delta.get("parity.encode_s", {}).get("value", 0.0)
        assert parity_s > 0.0
        assert parity_s < 0.15 * wall, (
            f"parity encode took {parity_s:.4f}s of {wall:.4f}s "
            f"({100 * parity_s / wall:.1f}%)"
        )


class TestRepairCli:
    def test_repair_subcommand_round_trip(self, field, parity_blob, tmp_path):
        from repro.cli import main

        src = tmp_path / "damaged.rpz"
        dst = tmp_path / "repaired.rpz"
        rpt = tmp_path / "report.json"
        src.write_bytes(corrupt_chunk(parity_blob, 6, seed=SEED))
        assert main(["repair", str(src), str(dst), "--json", str(rpt)]) == 0
        assert dst.read_bytes() == parity_blob
        report = json.loads(rpt.read_text())
        assert report["ok"] and report["n_repaired"] == 1

    def test_repair_exit_2_when_losses_remain(self, parity_blob, tmp_path):
        from repro.cli import main

        damaged = parity_blob
        for index, seed in ((0, SEED), (1, SEED + 1), (2, SEED + 2)):
            damaged = corrupt_chunk(damaged, index, seed=seed)
        src = tmp_path / "d.rpz"
        dst = tmp_path / "r.rpz"
        src.write_bytes(damaged)
        assert main(["repair", str(src), str(dst)]) == 2

    def test_compress_parity_flag_writes_v3(self, field, tmp_path):
        from repro import Container
        from repro.cli import main

        raw = tmp_path / "field.npy"
        out = tmp_path / "field.rpz"
        np.save(raw, field)
        rc = main([
            "compress", str(raw), str(out), "--rel-bound", "1e-2",
            "--chunk-size", "4K", "--parity", "2", "--chunk-timeout", "120",
        ])
        assert rc == 0
        box = Container.from_bytes(out.read_bytes())
        assert box.version == 3 and box.get_u64("parity_k") == 2

    def test_decompress_fill_zero(self, field, tmp_path):
        from repro.cli import main

        blob = ChunkedCompressor(chunk_bytes=4000, executor="serial").compress(
            field, BOUND
        )
        src = tmp_path / "d.rpz"
        dst = tmp_path / "out.npy"
        src.write_bytes(corrupt_chunk(blob, 0, seed=SEED))
        rc = main([
            "decompress", str(src), str(dst),
            "--tolerate-corruption", "--fill", "zero",
        ])
        assert rc == 0
        arr = np.load(dst)
        assert not np.isnan(arr).any()
        assert (arr[:1000] == 0.0).all()
