"""Corruption robustness: damaged streams must fail loudly, not crash.

Every decoder in the library reports damage through the
:class:`~repro.StreamError` hierarchy -- ``ContainerError`` for structure,
``ChecksumError`` for CRC mismatches, ``TruncatedStreamError`` for early
ends.  Leaked internals (``IndexError`` deep in numpy, ``zlib.error``,
``struct.error``) are bugs: they would be indistinguishable from library
defects, so they are no longer acceptable here.  Since the v2 container
checksums every stream, payload bit-flips are *detected*, not silently
decoded to a wrong array.
"""

import numpy as np
import pytest

from repro import (
    AbsoluteBound,
    ChecksumError,
    PrecisionBound,
    RelativeBound,
    StreamError,
    get_compressor,
)

ACCEPTABLE = (StreamError,)


def bounds_for(name):
    return {
        "SZ_ABS": AbsoluteBound(1e-2),
        "SZ2_ABS": AbsoluteBound(1e-2),
        "ZFP_A": AbsoluteBound(1e-2),
        "SZ_PWR": RelativeBound(1e-2),
        "ISABELA": RelativeBound(1e-2),
        "SZ_T": RelativeBound(1e-2),
        "ZFP_T": RelativeBound(1e-2),
        "FPZIP": PrecisionBound(19),
    }[name]


@pytest.fixture(scope="module")
def payloads(smooth_positive_3d):
    blobs = {}
    for name in ("SZ_ABS", "SZ_T", "ZFP_A", "FPZIP", "ISABELA", "SZ_PWR", "SZ2_ABS"):
        comp = get_compressor(name)
        blobs[name] = comp.compress(smooth_positive_3d, bounds_for(name))
    return blobs


class TestTruncation:
    @pytest.mark.parametrize("name", ["SZ_ABS", "SZ_T", "ZFP_A", "FPZIP", "ISABELA"])
    @pytest.mark.parametrize("keep", [0.25, 0.5, 0.9, 0.99])
    def test_truncated_stream_fails_cleanly(self, payloads, name, keep):
        blob = payloads[name]
        cut = blob[: int(len(blob) * keep)]
        comp = get_compressor(name)
        with pytest.raises(ACCEPTABLE):
            comp.decompress(cut)

    def test_empty_stream(self):
        with pytest.raises(ACCEPTABLE):
            get_compressor("SZ_T").decompress(b"")


class TestBitFlips:
    @pytest.mark.parametrize("name", ["SZ_ABS", "SZ_T", "ZFP_A", "FPZIP", "SZ_PWR", "SZ2_ABS"])
    def test_random_byte_corruption_always_detected(self, payloads, name):
        rng = np.random.default_rng(sum(name.encode()))
        blob = bytearray(payloads[name])
        comp = get_compressor(name)
        for _ in range(20):
            damaged = bytearray(blob)
            # distinct positions so two flips can never cancel each other
            for pos in rng.choice(np.arange(5, len(damaged)), size=3, replace=False):
                damaged[pos] ^= int(rng.integers(1, 256))
            # v2 streams are checksummed: corruption past the 5-byte header
            # always surfaces as ChecksumError, never as a wrong array.
            with pytest.raises(ChecksumError):
                comp.decompress(bytes(damaged))

    def test_header_corruption_detected(self, payloads):
        blob = bytearray(payloads["SZ_T"])
        blob[0] ^= 0xFF  # break the magic
        with pytest.raises(ACCEPTABLE):
            get_compressor("SZ_T").decompress(bytes(blob))

    def test_swapped_codec_rejected(self, payloads):
        with pytest.raises(ACCEPTABLE):
            get_compressor("ZFP_A").decompress(payloads["SZ_ABS"])
