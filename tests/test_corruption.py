"""Corruption robustness: damaged streams must fail loudly, not crash.

A decompressor fed a truncated or bit-flipped stream may either raise a
``ValueError``/``ContainerError``/``EOFError``-style exception or -- for
damage confined to payload bits -- return a (wrong) array; it must never
segfault, hang, or raise something unrelated like ``IndexError`` deep in
numpy internals that would be indistinguishable from a library bug.
"""

import zlib

import numpy as np
import pytest

from repro import (
    AbsoluteBound,
    PrecisionBound,
    RelativeBound,
    get_compressor,
)
from repro.encoding import ContainerError

ACCEPTABLE = (ValueError, ContainerError, EOFError, KeyError, zlib.error, IndexError)


def bounds_for(name):
    return {
        "SZ_ABS": AbsoluteBound(1e-2),
        "SZ2_ABS": AbsoluteBound(1e-2),
        "ZFP_A": AbsoluteBound(1e-2),
        "SZ_PWR": RelativeBound(1e-2),
        "ISABELA": RelativeBound(1e-2),
        "SZ_T": RelativeBound(1e-2),
        "ZFP_T": RelativeBound(1e-2),
        "FPZIP": PrecisionBound(19),
    }[name]


@pytest.fixture(scope="module")
def payloads(smooth_positive_3d):
    blobs = {}
    for name in ("SZ_ABS", "SZ_T", "ZFP_A", "FPZIP", "ISABELA", "SZ_PWR", "SZ2_ABS"):
        comp = get_compressor(name)
        blobs[name] = comp.compress(smooth_positive_3d, bounds_for(name))
    return blobs


class TestTruncation:
    @pytest.mark.parametrize("name", ["SZ_ABS", "SZ_T", "ZFP_A", "FPZIP", "ISABELA"])
    @pytest.mark.parametrize("keep", [0.25, 0.5, 0.9, 0.99])
    def test_truncated_stream_fails_cleanly(self, payloads, name, keep):
        blob = payloads[name]
        cut = blob[: int(len(blob) * keep)]
        comp = get_compressor(name)
        with pytest.raises(ACCEPTABLE):
            comp.decompress(cut)

    def test_empty_stream(self):
        with pytest.raises(ACCEPTABLE):
            get_compressor("SZ_T").decompress(b"")


class TestBitFlips:
    @pytest.mark.parametrize("name", ["SZ_ABS", "SZ_T", "ZFP_A", "FPZIP", "SZ_PWR", "SZ2_ABS"])
    def test_random_byte_corruption_never_crashes_hard(self, payloads, name):
        rng = np.random.default_rng(hash(name) % 2**32)
        blob = bytearray(payloads[name])
        comp = get_compressor(name)
        survived = 0
        for _ in range(20):
            damaged = bytearray(blob)
            for _ in range(3):
                pos = int(rng.integers(5, len(damaged)))
                damaged[pos] ^= int(rng.integers(1, 256))
            try:
                out = comp.decompress(bytes(damaged))
                survived += 1
                assert isinstance(out, np.ndarray)  # wrong data is allowed
            except ACCEPTABLE:
                pass
        # statistical sanity: the loop must have actually exercised both
        # paths across the suite, but any split is legal for one codec
        assert 0 <= survived <= 20

    def test_header_corruption_detected(self, payloads):
        blob = bytearray(payloads["SZ_T"])
        blob[0] ^= 0xFF  # break the magic
        with pytest.raises(ACCEPTABLE):
            get_compressor("SZ_T").decompress(bytes(blob))

    def test_swapped_codec_rejected(self, payloads):
        with pytest.raises(ACCEPTABLE):
            get_compressor("ZFP_A").decompress(payloads["SZ_ABS"])
