"""Real file-per-process dump/load."""

import os

import numpy as np
import pytest

from repro import RelativeBound, get_compressor
from repro.parallel import dump_file_per_process, load_file_per_process


@pytest.fixture()
def shards(smooth_positive_3d):
    flat = smooth_positive_3d.ravel()
    return [np.ascontiguousarray(s) for s in np.array_split(flat, 3)]


class TestDumpLoad:
    def test_roundtrip(self, shards, tmp_path):
        comp = get_compressor("SZ_T")
        dump = dump_file_per_process(shards, comp, RelativeBound(1e-2), str(tmp_path))
        assert len(dump.timings) == 3
        for r in range(3):
            assert os.path.exists(tmp_path / f"rank_{r}.rpz")
        assert dump.ratio > 1.5

        out, load = load_file_per_process(str(tmp_path), 3)
        assert len(out) == 3
        for shard, recon in zip(shards, out):
            rel = np.abs(recon.astype(np.float64) - shard.astype(np.float64))
            rel /= np.abs(shard.astype(np.float64))
            assert rel.max() <= 1e-2
        assert load.total_bytes_out == sum(s.nbytes for s in shards)

    def test_timings_populated(self, shards, tmp_path):
        comp = get_compressor("ZFP_T")
        dump = dump_file_per_process(shards, comp, RelativeBound(1e-1), str(tmp_path))
        assert dump.wall_compute_s > 0
        assert dump.wall_io_s >= 0
        assert dump.total_bytes_in == sum(s.nbytes for s in shards)

    def test_chunked_per_rank_roundtrip(self, shards, tmp_path):
        """Per-rank chunking (Fig. 6 dump/load model) preserves the bound
        and produces CHUNKED rank files that generic load decodes."""
        from repro.encoding import Container

        comp = get_compressor("SZ_T")
        dump = dump_file_per_process(
            shards, comp, RelativeBound(1e-2), str(tmp_path),
            chunk_bytes=8 * 1024, workers=2,
        )
        assert dump.total_bytes_in == sum(s.nbytes for s in shards)
        with open(tmp_path / "rank_0.rpz", "rb") as fh:
            assert Container.from_bytes(fh.read()).codec == "CHUNKED"
        out, _ = load_file_per_process(str(tmp_path), 3)
        for shard, recon in zip(shards, out):
            rel = np.abs(recon.astype(np.float64) - shard.astype(np.float64))
            rel /= np.abs(shard.astype(np.float64))
            assert rel.max() <= 1e-2

    def test_empty_shards_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            dump_file_per_process([], get_compressor("SZ_T"), RelativeBound(1e-2), str(tmp_path))

    def test_load_validation(self, tmp_path):
        with pytest.raises(ValueError):
            load_file_per_process(str(tmp_path), 0)

    def test_missing_files_raise(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_file_per_process(str(tmp_path), 2)
