"""GPFS contention model: regimes, anchoring against the paper."""

import pytest

from repro.parallel import GPFSModel


class TestRegimes:
    def test_few_ranks_link_limited(self):
        fs = GPFSModel(aggregate_write_bw=100e9, per_process_bw=1e9)
        assert fs.effective_write_bw(4) == 1e9

    def test_many_ranks_share_aggregate(self):
        fs = GPFSModel(aggregate_write_bw=1.2e9, per_process_bw=1e9)
        assert fs.effective_write_bw(4096) == pytest.approx(1.2e9 / 4096)

    def test_crossover_monotone(self):
        fs = GPFSModel()
        bws = [fs.effective_write_bw(r) for r in (1, 16, 256, 4096)]
        assert all(a >= b for a, b in zip(bws, bws[1:]))

    def test_read_slower_than_write_by_default(self):
        fs = GPFSModel()
        assert fs.effective_read_bw(4096) < fs.effective_write_bw(4096)


class TestTimes:
    def test_write_time_scales_with_bytes(self):
        fs = GPFSModel(metadata_overhead_s=0.0)
        assert fs.write_time(2e9, 1024) == pytest.approx(2 * fs.write_time(1e9, 1024))

    def test_paper_anchor_uncompressed_dump(self):
        """3 TB over 1024 ranks should take about the paper's 0.7 h."""
        fs = GPFSModel()
        hours = fs.write_time(3e9, 1024) / 3600
        assert 0.5 <= hours <= 1.0

    def test_paper_anchor_uncompressed_load(self):
        """12 TB read at 4096 ranks: about the paper's 4 h."""
        fs = GPFSModel()
        hours = fs.read_time(3e9, 4096) / 3600
        assert 3.0 <= hours <= 5.0

    def test_invalid_ranks(self):
        with pytest.raises(ValueError):
            GPFSModel().write_time(1e9, 0)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            GPFSModel(aggregate_write_bw=0.0)
