"""SPMD communicator shim: collectives, synchronization, error paths."""

import numpy as np
import pytest

from repro.parallel import FakeComm, run_spmd


class TestBasics:
    def test_rank_and_size(self):
        out = run_spmd(4, lambda comm: (comm.Get_rank(), comm.Get_size()))
        assert out == [(0, 4), (1, 4), (2, 4), (3, 4)]

    def test_single_rank(self):
        assert run_spmd(1, lambda comm: comm.Get_rank()) == [0]

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda comm: None)

    def test_exception_propagates(self):
        def fn(comm):
            if comm.Get_rank() == 2:
                raise RuntimeError("rank 2 exploded")
            comm.barrier()

        with pytest.raises(RuntimeError, match="rank 2"):
            run_spmd(4, fn)


class TestCollectives:
    def test_bcast(self):
        def fn(comm):
            data = {"n": 42} if comm.Get_rank() == 0 else None
            return comm.bcast(data, root=0)

        assert run_spmd(3, fn) == [{"n": 42}] * 3

    def test_scatter_gather_roundtrip(self):
        def fn(comm):
            rank = comm.Get_rank()
            send = list(range(comm.Get_size())) if rank == 0 else None
            mine = comm.scatter(send, root=0)
            return comm.gather(mine * 10, root=0)

        out = run_spmd(4, fn)
        assert out[0] == [0, 10, 20, 30]
        assert out[1:] == [None, None, None]

    def test_scatter_wrong_length(self):
        def fn(comm):
            send = [1, 2] if comm.Get_rank() == 0 else None
            return comm.scatter(send, root=0)

        with pytest.raises(ValueError):
            run_spmd(3, fn)

    def test_allgather(self):
        out = run_spmd(3, lambda comm: comm.allgather(comm.Get_rank() ** 2))
        assert out == [[0, 1, 4]] * 3

    def test_allreduce_default_sum(self):
        out = run_spmd(4, lambda comm: comm.allreduce(comm.Get_rank()))
        assert out == [6, 6, 6, 6]

    def test_allreduce_custom_op(self):
        out = run_spmd(4, lambda comm: comm.allreduce(comm.Get_rank() + 1, op=max))
        assert out == [4] * 4

    def test_numpy_payloads(self):
        def fn(comm):
            arr = np.full(8, comm.Get_rank(), dtype=np.float64)
            total = comm.allreduce(arr)
            return float(total.sum())

        assert run_spmd(3, fn) == [8 * 3.0] * 3

    def test_repeated_collectives_stay_synchronized(self):
        def fn(comm):
            acc = 0
            for i in range(10):
                acc += comm.allreduce(comm.Get_rank() + i)
            return acc

        out = run_spmd(2, fn)
        assert out[0] == out[1] == sum((0 + i) + (1 + i) for i in range(10))


class TestMpiStyleWorkflow:
    def test_compress_shards_spmd(self, smooth_positive_3d):
        """The library's intended MPI pattern: scatter shards, compress
        locally, gather compressed sizes."""
        from repro import AbsoluteBound, SZCompressor

        shards = np.array_split(smooth_positive_3d.ravel(), 3)

        def fn(comm):
            rank = comm.Get_rank()
            shard = comm.scatter(shards if rank == 0 else None, root=0)
            blob = SZCompressor().compress(shard, AbsoluteBound(1e-3))
            sizes = comm.gather(len(blob), root=0)
            return sizes

        out = run_spmd(3, fn)
        assert out[0] is not None and len(out[0]) == 3
        assert all(s > 0 for s in out[0])
