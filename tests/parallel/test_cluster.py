"""Simulated cluster: profiles, dump/load arithmetic, Figure-6 shape."""

import numpy as np
import pytest

from repro import AbsoluteBound, SZCompressor
from repro.parallel import (
    CompressorProfile,
    GPFSModel,
    SimulatedCluster,
    measure_profile,
)


class TestProfile:
    def test_measure_real_compressor(self, smooth_positive_3d):
        prof = measure_profile(SZCompressor(), smooth_positive_3d, AbsoluteBound(1e-3))
        assert prof.name == "SZ_ABS"
        assert prof.compress_rate > 0 and prof.decompress_rate > 0
        assert prof.ratio > 1.0

    def test_repeats_validation(self, smooth_positive_3d):
        with pytest.raises(ValueError):
            measure_profile(SZCompressor(), smooth_positive_3d, AbsoluteBound(1e-3), repeats=0)

    def test_scaled_preserves_ratio(self):
        prof = CompressorProfile("X", 1e6, 2e6, 5.0)
        s = prof.scaled(10.0)
        assert s.compress_rate == 1e7 and s.decompress_rate == 2e7
        assert s.ratio == 5.0

    def test_scaled_validation(self):
        with pytest.raises(ValueError):
            CompressorProfile("X", 1e6, 1e6, 2.0).scaled(0.0)


class TestDumpLoad:
    def setup_method(self):
        self.cluster = SimulatedCluster()
        self.fast_good = CompressorProfile("good", 2e8, 2e8, 10.0)
        self.fast_poor = CompressorProfile("poor", 4e8, 4e8, 2.0)

    def test_breakdown_arithmetic(self):
        b = self.cluster.dump_load(self.fast_good, 3e9, 1024)
        assert b.dump_s == pytest.approx(b.compress_s + b.write_s)
        assert b.load_s == pytest.approx(b.read_s + b.decompress_s)
        assert b.compress_s == pytest.approx(3e9 / 2e8)

    def test_ratio_wins_at_scale(self):
        """Figure 6's mechanism: once aggregate bandwidth saturates, the
        higher-ratio compressor dumps faster despite slower compute."""
        good = self.cluster.dump_load(self.fast_good, 3e9, 4096)
        poor = self.cluster.dump_load(self.fast_poor, 3e9, 4096)
        assert good.dump_s < poor.dump_s
        assert good.load_s < poor.load_s

    def test_advantage_grows_with_scale(self):
        speedups = []
        for ranks in (1024, 2048, 4096):
            good = self.cluster.dump_load(self.fast_good, 3e9, ranks)
            poor = self.cluster.dump_load(self.fast_poor, 3e9, ranks)
            speedups.append(poor.dump_s / good.dump_s)
        assert speedups[0] <= speedups[1] <= speedups[2]

    def test_rank_bounds(self):
        with pytest.raises(ValueError):
            self.cluster.dump_load(self.fast_good, 1e9, 0)
        with pytest.raises(ValueError):
            self.cluster.dump_load(self.fast_good, 1e9, 10_000)

    def test_bytes_validation(self):
        with pytest.raises(ValueError):
            self.cluster.dump_load(self.fast_good, 0, 1024)

    def test_uncompressed_baseline(self):
        dump, load = self.cluster.uncompressed_dump_load(3e9, 4096)
        b = self.cluster.dump_load(self.fast_good, 3e9, 4096)
        assert b.dump_s < dump and b.load_s < load

    def test_custom_fs(self):
        slow = SimulatedCluster(fs=GPFSModel(aggregate_write_bw=1e8, aggregate_read_bw=1e8))
        fast = SimulatedCluster()
        assert (
            slow.dump_load(self.fast_good, 3e9, 1024).write_s
            > fast.dump_load(self.fast_good, 3e9, 1024).write_s
        )
