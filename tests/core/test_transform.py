"""Log transform: bijectivity, sentinel separation, base fast paths."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.transform import FLOOR_LOG2, LogTransform


class TestForwardInverse:
    @pytest.mark.parametrize("base", [2.0, math.e, 10.0, 3.7])
    def test_roundtrip_positive_values(self, base):
        tf = LogTransform(base)
        x = np.array([1e-30, 1e-3, 1.0, 7.25, 1e20], dtype=np.float64)
        d = tf.forward(x, 1e-3)
        back = tf.inverse(d, 1e-3, np.float64)
        np.testing.assert_allclose(back, x, rtol=1e-12)

    def test_float32_stays_float32(self):
        tf = LogTransform(2.0)
        x = np.array([1.5, 2.5], dtype=np.float32)
        d = tf.forward(x, 1e-3)
        assert d.dtype == np.float32
        assert tf.inverse(d, 1e-3, np.float32).dtype == np.float32

    def test_base2_uses_exact_log2(self):
        tf = LogTransform(2.0)
        x = np.array([0.25, 1.0, 1024.0], dtype=np.float64)
        np.testing.assert_array_equal(tf.forward(x, 1e-3), [-2.0, 0.0, 10.0])

    def test_negative_magnitudes_rejected(self):
        with pytest.raises(ValueError):
            LogTransform().forward(np.array([-1.0]), 1e-3)

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            LogTransform(1.0)

    @given(st.floats(1e-37, 1e37), st.sampled_from([2.0, math.e, 10.0]))
    def test_property_roundtrip(self, x, base):
        tf = LogTransform(base)
        arr = np.array([x], dtype=np.float64)
        back = tf.inverse(tf.forward(arr, 1e-2), 1e-2, np.float64)
        assert back[0] == pytest.approx(x, rel=1e-12)


class TestZeroSentinel:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_zero_maps_below_floor(self, dtype):
        tf = LogTransform(2.0)
        ba = 0.01
        d = tf.forward(np.zeros(3, dtype=dtype), ba)
        assert (d < FLOOR_LOG2[np.dtype(dtype)]).all()

    def test_zero_roundtrips_to_exact_zero(self):
        tf = LogTransform(2.0)
        ba = 0.01
        x = np.array([0.0, 1.0, 0.0], dtype=np.float32)
        d = tf.forward(x, ba)
        back = tf.inverse(d, ba, np.float32)
        np.testing.assert_array_equal(back, x)

    def test_guard_band_separates_sentinel_from_data(self):
        """Even after +-ba compression noise, sentinel and genuine data
        cannot cross the zero-detection threshold."""
        tf = LogTransform(2.0)
        ba = 0.5
        dtype = np.float32
        sentinel = tf.zero_sentinel(ba, dtype)
        threshold = tf.zero_threshold(ba, dtype)
        assert sentinel + ba < threshold  # perturbed sentinel still zero
        assert FLOOR_LOG2[np.dtype(dtype)] - ba > threshold  # perturbed data never zero

    def test_denormal_input_not_swallowed(self):
        """Values at the format's floor must not decode to zero."""
        tf = LogTransform(2.0)
        ba = 0.01
        tiny = np.array([2.0**-149], dtype=np.float32)
        d = tf.forward(tiny.astype(np.float64), ba)
        back = tf.inverse(d, ba, np.float64)
        assert back[0] > 0

    def test_max_log_magnitude(self):
        tf = LogTransform(2.0)
        d = np.array([-10.0, 5.0, 0.5])
        assert tf.max_log_magnitude(d) == 10.0

    def test_max_log_magnitude_empty(self):
        assert LogTransform(2.0).max_log_magnitude(np.zeros(0)) == 0.0


class TestExponentRangeClip:
    @pytest.mark.parametrize("base", [2.0, math.e, 10.0, 3.7])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_overflowing_logs_clip_to_finite_max(self, base, dtype):
        """A +ba perturbation of log(finfo.max) must not decode to inf."""
        tf = LogTransform(base)
        ba = 0.01
        top = tf.max_finite_log(dtype)
        d = np.array([top, top + ba, top + 4 * ba], dtype=dtype)
        back = tf.inverse(d, ba, dtype)
        assert np.isfinite(back).all()
        assert (back <= np.finfo(dtype).max).all()
        assert back[0] > 0

    def test_in_range_values_unaffected_by_clip(self):
        tf = LogTransform(2.0)
        x = np.array([1e-3, 1.0, 1e30], dtype=np.float64)
        back = tf.inverse(tf.forward(x, 1e-3), 1e-3, np.float64)
        np.testing.assert_allclose(back, x, rtol=1e-12)
