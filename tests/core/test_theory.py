"""Executable theorems: uniqueness (Thm 2), index bounds (Thm 3), Lemma 4."""

import math

import numpy as np
import pytest

from repro.core.theory import (
    ZFP_TRANSFORM_MATRIX,
    coding_gain,
    decorrelation_efficiency,
    mapping_equation_deviation,
    quant_index_bound,
    quantization_indices,
    zfp_coefficient_covariance,
)
from repro.core.error_bounds import abs_bound_for


@pytest.fixture(scope="module")
def xs():
    rng = np.random.default_rng(0)
    return np.exp(rng.uniform(-20, 20, size=2000))


class TestMappingUniqueness:
    """Equation (1) singles out the log family (Theorem 2)."""

    @pytest.mark.parametrize("base", [2.0, math.e, 10.0])
    def test_log_family_satisfies_equation(self, xs, base):
        br = 1e-2
        dev = mapping_equation_deviation(
            lambda x: np.log(x) / math.log(base),
            lambda y: np.exp(y * math.log(base)),
            abs_bound_for(br, base),
            br,
            xs,
        )
        assert dev < 1e-10

    def test_log_with_constant_shift_also_satisfies(self, xs):
        """Theorem 2 allows f(x) = log x + C."""
        br = 1e-2
        dev = mapping_equation_deviation(
            lambda x: np.log2(x) + 42.0,
            lambda y: np.exp2(y - 42.0),
            abs_bound_for(br, 2.0),
            br,
            xs,
        )
        assert dev < 1e-10

    @pytest.mark.parametrize(
        "f,finv",
        [
            (np.sqrt, np.square),  # sqrt mapping
            (lambda x: x, lambda y: y),  # identity
            (np.cbrt, lambda y: y**3),  # cube root
            (lambda x: x**2, np.sqrt),  # square
        ],
    )
    def test_non_log_mappings_fail(self, xs, f, finv):
        br = 1e-2
        # give each candidate its best-case g(br): calibrate at x = 1
        g = float(f(np.array([1.0 + br]))[0] - f(np.array([1.0]))[0])
        dev = mapping_equation_deviation(f, finv, g, br, xs)
        assert dev > br  # fails Equation (1) by more than the bound itself

    def test_positive_x_required(self):
        with pytest.raises(ValueError):
            mapping_equation_deviation(np.log, np.exp, 0.1, 0.1, np.array([-1.0]))


class TestTheorem3:
    def test_bound_values(self):
        br = 1e-2
        base_term = abs(math.log(1 - br) / math.log1p(br) - 1.0)
        assert quant_index_bound(br, 1) == pytest.approx(base_term)
        assert quant_index_bound(br, 2) == pytest.approx(3 * base_term)
        assert quant_index_bound(br, 3) == pytest.approx(7 * base_term)

    def test_bound_grows_with_rel_bound(self):
        assert quant_index_bound(0.3, 3) > quant_index_bound(1e-3, 3)

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            quant_index_bound(0.0, 1)

    @pytest.mark.parametrize("ndim,shape", [(1, (4096,)), (2, (64, 64)), (3, (16, 16, 16))])
    def test_cross_base_index_deviation_within_bound(self, ndim, shape):
        """Lemma 3 + Theorem 3: indices agree across bases up to the bound."""
        rng = np.random.default_rng(1)
        data = np.exp(rng.normal(0, 2, size=shape))
        for br in (1e-3, 1e-1):
            q2 = quantization_indices(data, br, 2.0, ndim)
            qe = quantization_indices(data, br, math.e, ndim)
            q10 = quantization_indices(data, br, 10.0, ndim)
            limit = quant_index_bound(br, ndim) + 1.0  # +1 for the rounding step
            assert np.abs(q2 - qe).max() <= limit
            assert np.abs(q2 - q10).max() <= limit

    def test_positive_data_required(self):
        with pytest.raises(ValueError):
            quantization_indices(np.array([-1.0, 2.0]), 1e-2, 2.0, 1)


class TestLemma4:
    def test_transform_matrix_near_orthogonal(self):
        # ZFP's transform trades exact orthogonality for cheap lifting
        # steps; only the (1,3) row pair has a small residual correlation.
        gram = ZFP_TRANSFORM_MATRIX @ ZFP_TRANSFORM_MATRIX.T
        norm = np.sqrt(np.outer(np.diag(gram), np.diag(gram)))
        off = (gram - np.diag(np.diag(gram))) / norm
        assert np.abs(off).max() < 0.15
        # DC row exactly orthogonal to every AC row.
        assert np.abs(gram[0, 1:]).max() < 1e-12

    def test_eta_gamma_invariant_across_bases(self):
        rng = np.random.default_rng(2)
        data = np.exp(rng.normal(0, 3, size=4096))
        results = []
        for base in (2.0, math.e, 10.0):
            cov = zfp_coefficient_covariance(data, base)
            results.append((decorrelation_efficiency(cov), coding_gain(cov)))
        for eta, gamma in results[1:]:
            assert eta == pytest.approx(results[0][0], rel=1e-9)
            assert gamma == pytest.approx(results[0][1], rel=1e-9)

    def test_eta_in_unit_interval(self):
        rng = np.random.default_rng(3)
        cov = zfp_coefficient_covariance(np.exp(rng.normal(0, 1, 2048)), 2.0)
        assert 0 < decorrelation_efficiency(cov) <= 1.0

    def test_coding_gain_at_least_one_for_correlated_data(self):
        # smooth data -> strongly unequal coefficient variances -> gain > 1
        t = np.linspace(0, 20, 4096)
        data = np.exp(np.sin(t) + 2)
        cov = zfp_coefficient_covariance(data, 2.0)
        assert coding_gain(cov) > 1.0

    def test_scaling_data_in_log_space_cancels(self):
        """The 1/ln(a)^2 factor cancels: cov scaling leaves eta/gamma."""
        rng = np.random.default_rng(4)
        data = np.exp(rng.normal(0, 2, 4096))
        cov = zfp_coefficient_covariance(data, 2.0)
        scaled = 7.3 * cov
        assert decorrelation_efficiency(scaled) == pytest.approx(
            decorrelation_efficiency(cov)
        )
        assert coding_gain(scaled) == pytest.approx(coding_gain(cov))

    def test_coding_gain_rejects_singular(self):
        with pytest.raises(ValueError):
            coding_gain(np.zeros((4, 4)))
