"""Algorithm 1 wrapper: SZ_T / ZFP_T end-to-end relative bound."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import RelativeBound, decompress, get_compressor
from repro.compressors import AbsoluteBound, FpzipCompressor, UnsupportedBound
from repro.compressors.sz import SZCompressor
from repro.core import TransformedCompressor, make_sz_t, make_zfp_t
from repro.encoding import Container


def rel_errors(data, recon):
    x = data.astype(np.float64).ravel()
    xd = recon.astype(np.float64).ravel()
    nz = x != 0
    return np.abs(xd[nz] - x[nz]) / np.abs(x[nz])


def _all_transformed_factories():
    from repro import get_compressor

    return [
        make_sz_t,
        make_zfp_t,
        lambda: get_compressor("SZ2_T"),
        lambda: get_compressor("SZ3_T"),
    ]


class TestBoundGuarantee:
    @pytest.mark.parametrize("factory", _all_transformed_factories())
    @pytest.mark.parametrize("br", [1e-4, 1e-2, 0.3])
    def test_archetypes_bounded(self, all_archetypes, factory, br):
        for name, data in all_archetypes.items():
            comp = factory()
            recon = comp.decompress(comp.compress(data, RelativeBound(br)))
            assert rel_errors(data, recon).max() <= br, f"{comp.name} on {name} at {br}"

    @pytest.mark.parametrize("factory", _all_transformed_factories())
    def test_zeros_and_signs_all_generations(self, zero_heavy_3d, signed_2d, factory):
        comp = factory()
        recon = comp.decompress(comp.compress(zero_heavy_3d, RelativeBound(1e-2)))
        np.testing.assert_array_equal(recon[zero_heavy_3d == 0], 0.0)
        comp = factory()
        recon = comp.decompress(comp.compress(signed_2d, RelativeBound(1e-2)))
        nz = signed_2d != 0
        np.testing.assert_array_equal(np.sign(recon[nz]), np.sign(signed_2d[nz]))

    @pytest.mark.parametrize("factory", [make_sz_t, make_zfp_t])
    def test_zeros_decode_to_exact_zero(self, zero_heavy_3d, factory):
        comp = factory()
        recon = comp.decompress(comp.compress(zero_heavy_3d, RelativeBound(1e-2)))
        np.testing.assert_array_equal(recon[zero_heavy_3d == 0], 0.0)

    def test_signs_restored(self, signed_2d):
        comp = make_sz_t()
        recon = comp.decompress(comp.compress(signed_2d, RelativeBound(1e-3)))
        nz = signed_2d != 0
        np.testing.assert_array_equal(np.sign(recon[nz]), np.sign(signed_2d[nz]))

    def test_patch_channel_empty_with_lemma2(self, smooth_positive_3d):
        comp = make_sz_t()
        comp.compress(smooth_positive_3d, RelativeBound(1e-4))
        assert comp.last_patch_count == 0

    def test_all_zero_array(self):
        comp = make_sz_t()
        data = np.zeros((8, 8), dtype=np.float32)
        recon = comp.decompress(comp.compress(data, RelativeBound(1e-3)))
        np.testing.assert_array_equal(recon, data)

    @pytest.mark.parametrize("shape", [(0,), (0, 5), (3, 0, 2)])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_empty_array_roundtrip(self, shape, dtype):
        comp = make_sz_t()
        blob = comp.compress(np.zeros(shape, dtype=dtype), RelativeBound(1e-3))
        recon = comp.decompress(blob)
        assert recon.shape == shape and recon.dtype == dtype
        assert comp.last_patch_count == 0
        np.testing.assert_array_equal(decompress(blob), recon)

    def test_near_max_magnitudes_decode_finite_without_verify(self):
        """exp2 overflow at the exponent-range edge is clipped, so even
        verify=False streams cannot decode to inf."""
        fi = np.finfo(np.float32)
        data = np.full(512, fi.max, dtype=np.float32)
        data[1::2] = fi.max * np.float32(0.999)
        comp = make_sz_t(verify=False)
        recon = comp.decompress(comp.compress(data, RelativeBound(1e-2)))
        assert np.isfinite(recon).all()
        assert rel_errors(data, recon).max() <= 1e-2

    def test_negative_zero_sign_preserved(self):
        data = np.array([1.0, -0.0, 0.0, -2.5, -0.0], dtype=np.float32)
        comp = make_sz_t()
        recon = comp.decompress(comp.compress(data, RelativeBound(1e-3)))
        np.testing.assert_array_equal(recon == 0, data == 0)
        np.testing.assert_array_equal(np.signbit(recon), np.signbit(data))

    def test_float64_data(self, wide_range_3d):
        comp = make_sz_t()
        recon = comp.decompress(comp.compress(wide_range_3d, RelativeBound(1e-5)))
        assert rel_errors(wide_range_3d, recon).max() <= 1e-5

    @given(st.integers(0, 2**31 - 1), st.sampled_from([1e-3, 1e-1]))
    def test_property_bound_signed_with_zeros(self, seed, br):
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 100, size=300).astype(np.float32)
        data[rng.random(300) < 0.2] = 0.0
        comp = make_sz_t()
        recon = comp.decompress(comp.compress(data, RelativeBound(br)))
        assert rel_errors(data, recon).max() <= br
        np.testing.assert_array_equal(recon[data == 0], 0.0)


class TestBases:
    @pytest.mark.parametrize("base", [2.0, math.e, 10.0])
    def test_all_bases_bounded(self, smooth_positive_3d, base):
        comp = make_sz_t(base=base)
        recon = comp.decompress(comp.compress(smooth_positive_3d, RelativeBound(1e-3)))
        assert rel_errors(smooth_positive_3d, recon).max() <= 1e-3

    def test_base_mismatch_decodes_with_stream_base(self, smooth_positive_3d):
        """The base is recorded in the stream, so a differently-configured
        decompressor decodes with the stream's base instead of raising."""
        blob = make_sz_t(base=2.0).compress(smooth_positive_3d, RelativeBound(1e-2))
        recon = make_sz_t(base=10.0).decompress(blob)
        assert rel_errors(smooth_positive_3d, recon).max() <= 1e-2
        np.testing.assert_array_equal(recon, make_sz_t(base=2.0).decompress(blob))

    def test_base_choice_barely_affects_ratio(self, smooth_positive_3d):
        """Lemma 3 consequence: CR differences across bases stay small."""
        sizes = []
        for base in (2.0, math.e, 10.0):
            blob = make_sz_t(base=base).compress(smooth_positive_3d, RelativeBound(1e-3))
            sizes.append(len(blob))
        assert (max(sizes) - min(sizes)) / min(sizes) < 0.05


class TestWrapperMechanics:
    def test_names(self):
        assert make_sz_t().name == "SZ_T"
        assert make_zfp_t().name == "ZFP_T"
        assert TransformedCompressor(SZCompressor(), name="custom").name == "custom"

    def test_inner_must_support_absolute_bounds(self):
        with pytest.raises(TypeError):
            TransformedCompressor(FpzipCompressor())

    def test_rejects_absolute_bound(self, smooth_positive_3d):
        with pytest.raises(UnsupportedBound):
            make_sz_t().compress(smooth_positive_3d, AbsoluteBound(1e-3))

    def test_verify_off_skips_patch_channel(self, smooth_positive_3d):
        comp = make_sz_t(verify=False)
        blob = comp.compress(smooth_positive_3d, RelativeBound(1e-3))
        assert Container.from_bytes(blob).get_u64("n_patch") == 0
        recon = comp.decompress(blob)
        assert rel_errors(smooth_positive_3d, recon).max() <= 1e-3

    def test_registry_dispatch(self, smooth_positive_3d):
        blob = get_compressor("SZ_T").compress(smooth_positive_3d, RelativeBound(1e-2))
        recon = decompress(blob)  # generic dispatch from container codec
        assert rel_errors(smooth_positive_3d, recon).max() <= 1e-2

    def test_sign_bitmap_skipped_for_positive_data(self, smooth_positive_3d):
        blob = make_sz_t().compress(smooth_positive_3d, RelativeBound(1e-2))
        box = Container.from_bytes(blob)
        assert box.get_u64("all_nonneg") == 1
        assert box.get("signs") == b""

    def test_lemma2_off_still_bounded_thanks_to_patches(self, smooth_positive_3d):
        comp = TransformedCompressor(SZCompressor(), apply_lemma2=False)
        recon = comp.decompress(comp.compress(smooth_positive_3d, RelativeBound(1e-4)))
        assert rel_errors(smooth_positive_3d, recon).max() <= 1e-4
