"""Non-finite policy of the transformed compressors.

``nonfinite="preserve"`` routes NaN/±Inf through the patch channel so
they round-trip *exactly* -- the log transform never sees them (they are
sanitised to the exact-zero sentinel value pre-transform), and the patch
merge restores the original bit patterns on decode.  The default
``"error"`` policy keeps rejecting them loudly.
"""

import numpy as np
import pytest

from repro import RelativeBound, decompress, make_sz_t, make_zfp_t
from repro.core.chunked import ChunkedCompressor
from repro.observe.metrics import metrics

BOUND = RelativeBound(1e-2)

FACTORIES = {"SZ_T": make_sz_t, "ZFP_T": make_zfp_t}


def _field_with(values, size=3000, seed=7):
    rng = np.random.default_rng(seed)
    data = rng.lognormal(0.0, 1.0, size=size).astype(np.float32)
    idx = rng.choice(size, size=len(values), replace=False)
    data[idx] = values
    return data, np.sort(idx)


@pytest.mark.parametrize("name", ["SZ_T", "ZFP_T"])
@pytest.mark.parametrize(
    "specials",
    [
        [np.nan],
        [np.inf],
        [-np.inf],
        [np.nan, np.inf, -np.inf, np.nan, np.inf],
    ],
    ids=["nan", "posinf", "neginf", "mixed"],
)
def test_preserve_round_trips_exactly(name, specials):
    comp = FACTORIES[name](nonfinite="preserve")
    data, idx = _field_with(np.array(specials, dtype=np.float32))
    blob = comp.compress(data, BOUND)
    recon = decompress(blob)
    np.testing.assert_array_equal(recon[idx], data[idx])
    finite = np.isfinite(data)
    assert np.all(
        np.abs(recon[finite] - data[finite]) <= BOUND.value * np.abs(data[finite])
    )


@pytest.mark.parametrize("name", ["SZ_T", "ZFP_T"])
def test_error_policy_rejects(name):
    comp = FACTORIES[name]()  # default nonfinite="error"
    assert not comp.allows_nonfinite
    data, _ = _field_with(np.array([np.nan], dtype=np.float32))
    with pytest.raises(ValueError, match="non-finite"):
        comp.compress(data, BOUND)


def test_invalid_policy_rejected():
    with pytest.raises(ValueError, match="nonfinite"):
        make_sz_t(nonfinite="ignore")


def test_preserve_with_signed_data_and_zeros():
    comp = make_sz_t(nonfinite="preserve")
    data, idx = _field_with(
        np.array([np.nan, np.inf, -np.inf], dtype=np.float32), seed=11
    )
    data[::17] *= -1.0
    data[5] = 0.0
    recon = decompress(comp.compress(data, BOUND))
    np.testing.assert_array_equal(recon[idx], data[idx])
    assert recon[5] == 0.0
    finite = np.isfinite(data)
    assert np.all(
        np.abs(recon[finite] - data[finite]) <= BOUND.value * np.abs(data[finite])
    )


def test_chunked_wrapper_honours_inner_policy():
    """ChunkedCompressor defers the finite check to a preserving inner."""
    data, idx = _field_with(
        np.array([np.nan, -np.inf], dtype=np.float32), size=8000, seed=3
    )
    cc = ChunkedCompressor(
        make_sz_t(nonfinite="preserve"), chunk_bytes=4000, executor="serial"
    )
    recon = decompress(cc.compress(data, BOUND))
    np.testing.assert_array_equal(recon[idx], data[idx])
    # The default-policy wrapper still rejects.
    strict = ChunkedCompressor(chunk_bytes=4000, executor="serial")
    with pytest.raises(ValueError, match="non-finite"):
        strict.compress(data, BOUND)


def test_nonfinite_counter_moves():
    comp = make_sz_t(nonfinite="preserve")
    data, _ = _field_with(np.array([np.nan] * 5, dtype=np.float32))
    before = metrics().snapshot()
    comp.compress(data, BOUND)
    delta = metrics().diff(before)
    assert delta.get("transform.nonfinite_points", {}).get("value") == 5


def test_all_finite_preserve_is_byte_identical_to_error():
    """The policy only matters when non-finite values are present."""
    rng = np.random.default_rng(5)
    data = rng.lognormal(0.0, 1.0, size=2000).astype(np.float32)
    assert make_sz_t(nonfinite="preserve").compress(data, BOUND) == make_sz_t(
        nonfinite="error"
    ).compress(data, BOUND)
