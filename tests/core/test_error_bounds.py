"""Theorem 2 bound mapping and Lemma 2 adjustment."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.error_bounds import (
    abs_bound_for,
    adjusted_abs_bound,
    machine_eps0,
    rel_bound_from_abs,
)


class TestTheorem2Mapping:
    def test_base2_value(self):
        assert abs_bound_for(1e-2, 2.0) == pytest.approx(math.log2(1.01))

    def test_natural_base(self):
        assert abs_bound_for(0.5, math.e) == pytest.approx(math.log(1.5))

    def test_inverse_mapping(self):
        for br in (1e-4, 1e-2, 0.3):
            for base in (2.0, math.e, 10.0):
                assert rel_bound_from_abs(abs_bound_for(br, base), base) == pytest.approx(br)

    @given(st.floats(1e-8, 0.99), st.floats(1.01, 100.0))
    def test_property_roundtrip(self, br, base):
        assert rel_bound_from_abs(abs_bound_for(br, base), base) == pytest.approx(br, rel=1e-9)

    def test_smaller_base_larger_abs_bound(self):
        # log_2(1+br) > log_10(1+br): the bound scales with 1/log(base).
        assert abs_bound_for(0.1, 2.0) > abs_bound_for(0.1, 10.0)

    @pytest.mark.parametrize("bad_br", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_rel_bound(self, bad_br):
        with pytest.raises(ValueError):
            abs_bound_for(bad_br)

    @pytest.mark.parametrize("bad_base", [1.0, 0.5, -2.0])
    def test_invalid_base(self, bad_base):
        with pytest.raises(ValueError):
            abs_bound_for(0.1, bad_base)
        with pytest.raises(ValueError):
            rel_bound_from_abs(0.1, bad_base)

    def test_invalid_abs_bound(self):
        with pytest.raises(ValueError):
            rel_bound_from_abs(0.0)


class TestLemma2:
    def test_shrinks_bound(self):
        ba = abs_bound_for(1e-3)
        adj = adjusted_abs_bound(1e-3, max_log_abs=150.0, eps0=2.0**-23)
        assert 0 < adj < ba
        assert adj == pytest.approx(ba - 150.0 * 2.0**-23)

    def test_zero_roundoff_is_identity(self):
        assert adjusted_abs_bound(1e-2, 100.0, 0.0) == abs_bound_for(1e-2)

    def test_unreachable_demand_raises(self):
        # bound so tight the round-off floor swallows it
        with pytest.raises(ValueError, match="round-off floor"):
            adjusted_abs_bound(1e-7, max_log_abs=1074.0, eps0=2.0**-10)

    def test_negative_max_log_rejected(self):
        with pytest.raises(ValueError):
            adjusted_abs_bound(1e-3, -1.0, 1e-7)

    def test_machine_eps0(self):
        assert machine_eps0(np.float32) == np.finfo(np.float32).eps
        assert machine_eps0(np.float64) == np.finfo(np.float64).eps

    @given(st.floats(1e-4, 0.5), st.floats(0.0, 200.0))
    def test_property_adjustment_conservative(self, br, max_log):
        """Adjusted bound never exceeds the naive bound."""
        adj = adjusted_abs_bound(br, max_log, machine_eps0(np.float32))
        assert adj <= abs_bound_for(br)
