"""Chunked pipeline: bound preservation, determinism, v1 compatibility."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import (
    AbsoluteBound,
    ChunkedCompressor,
    RelativeBound,
    compress,
    decompress,
    get_compressor,
)
from repro.compressors import UnsupportedBound
from repro.core.chunked import chunk_patch_total, iter_chunk_blobs
from repro.encoding import Container


def rel_errors(data, recon):
    x = data.astype(np.float64).ravel()
    xd = recon.astype(np.float64).ravel()
    nz = x != 0
    return np.abs(xd[nz] - x[nz]) / np.abs(x[nz])


def edge_case_field(dtype):
    """Zeros, negative zeros, denormals, near-max and ordinary values."""
    fi = np.finfo(dtype)
    rng = np.random.default_rng(7)
    data = np.exp(rng.normal(0, 2, 4096)).astype(dtype)
    data[::7] = 0.0
    data[1::31] = -0.0
    data[2::31] = fi.tiny / 8  # denormal
    data[3::31] = fi.max
    data[4::31] = fi.max * dtype(0.999)
    data[5::31] *= -1
    return data


class TestBoundGuarantee:
    @pytest.mark.parametrize("chunk_bytes", [1024, 16 * 1024, 1 << 30])
    def test_archetypes_bounded(self, all_archetypes, chunk_bytes):
        for name, data in all_archetypes.items():
            comp = ChunkedCompressor("SZ_T", chunk_bytes=chunk_bytes, executor="serial")
            recon = comp.decompress(comp.compress(data, RelativeBound(1e-2)))
            assert rel_errors(data, recon).max() <= 1e-2, f"{name} @ {chunk_bytes}"
            np.testing.assert_array_equal(recon[data == 0], 0.0)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_edge_cases_bounded_and_finite(self, dtype):
        data = edge_case_field(dtype)
        comp = ChunkedCompressor("SZ_T", chunk_bytes=2048, executor="serial")
        recon = comp.decompress(comp.compress(data, RelativeBound(1e-2)))
        assert np.isfinite(recon).all()
        assert rel_errors(data, recon).max() <= 1e-2
        np.testing.assert_array_equal(np.signbit(recon[data == 0]),
                                      np.signbit(data[data == 0]))

    def test_patch_channels_empty_with_lemma2(self, smooth_positive_3d):
        comp = ChunkedCompressor("SZ_T", chunk_bytes=8 * 1024, executor="serial")
        blob = comp.compress(smooth_positive_3d, RelativeBound(1e-4))
        assert comp.last_chunk_count > 1
        assert chunk_patch_total(blob) == 0

    @given(st.integers(0, 2**31 - 1), st.sampled_from([512, 4096, 65536]))
    def test_property_chunked_bound_signed_with_zeros(self, seed, chunk_bytes):
        rng = np.random.default_rng(seed)
        data = rng.normal(0, 100, size=700).astype(np.float32)
        data[rng.random(700) < 0.2] = 0.0
        comp = ChunkedCompressor("SZ_T", chunk_bytes=chunk_bytes, executor="serial")
        recon = comp.decompress(comp.compress(data, RelativeBound(1e-2)))
        assert rel_errors(data, recon).max() <= 1e-2
        np.testing.assert_array_equal(recon[data == 0], 0.0)


class TestDeterminism:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_bytes_identical_across_executors_and_workers(self, dtype):
        data = edge_case_field(dtype)
        blobs = []
        for executor, workers in [("serial", 1), ("thread", 3), ("process", 2)]:
            comp = ChunkedCompressor(
                "SZ_T", chunk_bytes=4096, workers=workers, executor=executor
            )
            blobs.append(comp.compress(data, RelativeBound(1e-3)))
        assert blobs[0] == blobs[1] == blobs[2]

    def test_decode_identical_across_workers(self, signed_2d):
        blob = ChunkedCompressor("SZ_T", chunk_bytes=4096, executor="serial").compress(
            signed_2d, RelativeBound(1e-3)
        )
        recons = [
            ChunkedCompressor(workers=w, executor=ex).decompress(blob)
            for ex, w in [("serial", 1), ("thread", 3), ("process", 2)]
        ]
        np.testing.assert_array_equal(recons[0], recons[1])
        np.testing.assert_array_equal(recons[0], recons[2])


class TestCompatibility:
    def test_v1_monolithic_stream_decodes_unchanged(self, smooth_positive_3d):
        """A pre-chunking stream passes through ChunkedCompressor untouched."""
        v1 = compress(smooth_positive_3d, RelativeBound(1e-3), "SZ_T")
        via_chunked = ChunkedCompressor().decompress(v1)
        np.testing.assert_array_equal(via_chunked, decompress(v1))

    def test_registry_dispatch(self, smooth_positive_3d):
        comp = ChunkedCompressor("SZ_T", chunk_bytes=8 * 1024, executor="serial")
        blob = comp.compress(smooth_positive_3d, RelativeBound(1e-2))
        recon = decompress(blob)  # generic dispatch from container codec
        assert rel_errors(smooth_positive_3d, recon).max() <= 1e-2
        assert get_compressor("CHUNKED").name == "CHUNKED"

    def test_chunks_are_complete_streams(self, smooth_positive_3d):
        comp = ChunkedCompressor("SZ_T", chunk_bytes=8 * 1024, executor="serial")
        blob = comp.compress(smooth_positive_3d, RelativeBound(1e-2))
        parts = [decompress(c).ravel() for c in iter_chunk_blobs(blob)]
        merged = np.concatenate(parts).reshape(smooth_positive_3d.shape)
        np.testing.assert_array_equal(merged, comp.decompress(blob))


class TestMechanics:
    def test_empty_array_roundtrip(self):
        for shape in [(0,), (0, 4), (2, 0, 3)]:
            comp = ChunkedCompressor("SZ_T")
            blob = comp.compress(np.zeros(shape, dtype=np.float32), RelativeBound(1e-3))
            recon = decompress(blob)
            assert recon.shape == shape and recon.dtype == np.float32

    def test_single_chunk_when_budget_exceeds_data(self, rough_1d):
        comp = ChunkedCompressor("SZ_T", chunk_bytes=1 << 30, executor="serial")
        comp.compress(rough_1d, RelativeBound(1e-2))
        assert comp.last_chunk_count == 1

    def test_multidim_slabs_keep_dimensionality(self, signed_2d):
        comp = ChunkedCompressor("SZ_T", chunk_bytes=4096, executor="serial")
        blob = comp.compress(signed_2d, RelativeBound(1e-2))
        chunk = Container.from_bytes(next(iter_chunk_blobs(blob)))
        assert len(chunk.get_shape("shape")) == 2

    def test_oversized_row_falls_back_to_flat_spans(self):
        data = np.abs(np.random.default_rng(0).normal(1, 0.1, (1, 64, 64))).astype(np.float32)
        comp = ChunkedCompressor("SZ_T", chunk_bytes=2048, executor="serial")
        blob = comp.compress(data, RelativeBound(1e-2))
        assert comp.last_chunk_count > 1
        assert rel_errors(data, comp.decompress(blob)).max() <= 1e-2

    def test_inner_bound_kind_enforced(self, smooth_positive_3d):
        with pytest.raises(UnsupportedBound):
            ChunkedCompressor("SZ_T").compress(smooth_positive_3d, AbsoluteBound(0.5))
        comp = ChunkedCompressor("SZ_ABS", chunk_bytes=8 * 1024, executor="serial")
        recon = comp.decompress(comp.compress(smooth_positive_3d, AbsoluteBound(0.5)))
        assert np.abs(recon - smooth_positive_3d).max() <= 0.5 * (1 + 1e-9)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ChunkedCompressor(chunk_bytes=0)
        with pytest.raises(ValueError):
            ChunkedCompressor(workers=0)
        with pytest.raises(ValueError):
            ChunkedCompressor(executor="gpu")

    def test_corrupt_chunk_table_rejected(self, smooth_positive_3d):
        comp = ChunkedCompressor("SZ_T", chunk_bytes=8 * 1024, executor="serial")
        blob = comp.compress(smooth_positive_3d, RelativeBound(1e-2))
        box = Container.from_bytes(blob)
        bad = Container("CHUNKED")
        for key in box.keys():
            payload = box.get(key)
            if key == "payload":
                payload = payload[:-10]
            bad.put(key, payload)
        with pytest.raises(ValueError, match="CHUNKED"):
            ChunkedCompressor().decompress(bad.to_bytes())
