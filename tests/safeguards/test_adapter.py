"""SafeguardedCompressor vs an adversarial codec: every property, bit-exactly.

``EvilCodec`` (conftest) corrupts its reconstruction deterministically per
mode; wrapping it with the matching safeguard must restore the declared
property exactly -- across dtypes and dimensionalities -- while a compliant
codec pays only an empty patch channel.
"""

import numpy as np
import pytest

from repro import (
    AbsoluteBound,
    Container,
    RelativeBound,
    decompress,
)
from repro.safeguards import (
    MonotoneSafeguard,
    SafeguardedCompressor,
    bit_view,
)

from .conftest import EvilCodec


def field(shape, dtype, seed=0):
    rng = np.random.default_rng(seed)
    return np.exp(rng.normal(0, 1, size=shape)).astype(dtype)


BOUND = AbsoluteBound(1e30)  # loose: the safeguards do the guaranteeing


class TestAdversarial:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("shape", [(101,), (17, 13), (7, 8, 9)])
    def test_rel_bound_restored(self, dtype, shape):
        data = field(shape, dtype)
        safe = SafeguardedCompressor(EvilCodec("perturb"), ["rel:1e-3"])
        blob = safe.compress(data, BOUND)
        recon = decompress(blob)
        assert recon.shape == shape and recon.dtype == dtype
        x64 = data.astype(np.float64)
        err = np.abs(recon.astype(np.float64) - x64)
        assert (err <= 1e-3 * np.abs(x64)).all()

    def test_rel_repairs_nan_reconstructions_of_finite_points(self):
        data = field((210,), np.float32)
        safe = SafeguardedCompressor(EvilCodec("nanify"), ["rel:1e-3"])
        recon = decompress(safe.compress(data, BOUND))
        assert np.isfinite(recon).all()
        x64 = data.astype(np.float64)
        err = np.abs(recon.astype(np.float64) - x64)
        assert (err <= 1e-3 * np.abs(x64)).all()

    def test_abs_bound_restored(self):
        data = field((64,), np.float64)
        safe = SafeguardedCompressor(EvilCodec("perturb"), ["abs:1e-4"])
        recon = decompress(safe.compress(data, BOUND))
        assert np.abs(recon - data).max() <= 1e-4

    def test_ulp_zero_means_bit_exact(self):
        data = field((33, 5), np.float32)
        safe = SafeguardedCompressor(EvilCodec("perturb"), ["ulp:0"])
        recon = decompress(safe.compress(data, BOUND))
        np.testing.assert_array_equal(bit_view(recon), bit_view(data))

    def test_signs_restored(self):
        data = field((128,), np.float64) * np.where(
            np.arange(128) % 2 == 0, 1.0, -1.0
        )
        safe = SafeguardedCompressor(EvilCodec("negate"), ["sign"])
        recon = decompress(safe.compress(data, BOUND))
        np.testing.assert_array_equal(np.sign(recon), np.sign(data))

    def test_zeros_restored_bit_exactly(self):
        data = field((64,), np.float32)
        data[::4] = 0.0
        data[2::8] = -0.0
        safe = SafeguardedCompressor(EvilCodec("zero"), ["zero"])
        recon = decompress(safe.compress(data, BOUND))
        zeros = data == 0
        np.testing.assert_array_equal(
            bit_view(recon)[zeros], bit_view(data)[zeros]
        )

    @pytest.mark.parametrize("shape", [(64,), (16, 6)])
    def test_monotone_restored(self, shape):
        data = np.sort(field(shape, np.float64), axis=0)
        safe = SafeguardedCompressor(EvilCodec("swap"), ["monotone:axis=0"])
        recon = decompress(safe.compress(data, BOUND))
        assert not MonotoneSafeguard(0).violation_mask(data, recon).any()

    def test_range_restored(self):
        data = field((97,), np.float64)
        safe = SafeguardedCompressor(EvilCodec("spike"), ["range"])
        recon = decompress(safe.compress(data, BOUND))
        assert recon.min() >= data.min() and recon.max() <= data.max()

    def test_nonfinite_restored_bit_exactly(self):
        data = field((50,), np.float32)
        data[7] = np.nan
        data[13] = np.inf
        data[21] = -np.inf
        safe = SafeguardedCompressor(EvilCodec("unfinite"), ["nonfinite"])
        recon = decompress(safe.compress(data, BOUND))
        nf = ~np.isfinite(data)
        np.testing.assert_array_equal(bit_view(recon)[nf], bit_view(data)[nf])

    def test_stacked_safeguards_all_hold(self):
        data = field((256,), np.float64)
        data[::11] = 0.0
        safe = SafeguardedCompressor(
            EvilCodec("perturb"), ["rel:1e-3", "sign", "zero"]
        )
        recon = decompress(safe.compress(data, BOUND))
        nz = data != 0
        assert (np.abs(recon - data)[nz] <= 1e-3 * np.abs(data)[nz]).all()
        np.testing.assert_array_equal(np.sign(recon), np.sign(data))
        np.testing.assert_array_equal(recon[~nz], data[~nz])


class TestAdapter:
    def test_compliant_codec_leaves_channel_empty(self):
        data = field((512,), np.float64)
        safe = SafeguardedCompressor(EvilCodec("faithful"), ["rel:1e-3", "sign"])
        blob = safe.compress(data, BOUND)
        box = Container.from_bytes(blob)
        assert box.version == 4
        assert box.get_u64("n_patch") == 0
        assert box.get_str("inner_codec") == "EVIL"

    def test_transformed_compress_verified_matches_decompress(self):
        # The adapter reuses the verify pass's reconstruction instead of
        # re-decoding the stream it just produced; that is only sound if
        # compress_verified returns bit-for-bit what decompress yields --
        # including the patch channel (forced here via non-finite input).
        from repro.core.pwr import make_sz_t

        data = field((129, 31), np.float32, seed=5)
        data[::17, 3] = np.nan
        data[5, ::7] = np.inf
        sz_t = make_sz_t(nonfinite="preserve")
        blob, final = sz_t.compress_verified(data, RelativeBound(1e-3))
        ref = decompress(blob)
        assert final.dtype == ref.dtype and final.shape == ref.shape
        np.testing.assert_array_equal(bit_view(final), bit_view(ref))

    def test_safe_compress_verified_matches_decompress(self):
        data = field((4097,), np.float32, seed=6)
        safe = SafeguardedCompressor(EvilCodec("perturb"), ["rel:1e-3", "sign"])
        blob, final = safe.compress_verified(data, BOUND)
        ref = decompress(blob)
        np.testing.assert_array_equal(bit_view(final), bit_view(ref))

    def test_registry_dispatch_decodes_safe_streams(self):
        # repro.decompress resolves SAFE via the registry (decode-only
        # instance) -- no safeguard or inner-codec knowledge needed.
        data = field((40,), np.float32)
        blob = SafeguardedCompressor(EvilCodec("perturb"), ["ulp:0"]).compress(
            data, BOUND
        )
        np.testing.assert_array_equal(decompress(blob), data)

    def test_decode_only_instance_refuses_to_compress(self):
        with pytest.raises(ValueError, match="decode-only"):
            SafeguardedCompressor().compress(np.ones(4), BOUND)

    def test_inner_by_registry_name(self):
        data = field((16, 16), np.float32)
        safe = SafeguardedCompressor("SZ_ABS", ["abs:0.01"])
        recon = decompress(safe.compress(data, AbsoluteBound(0.01)))
        assert np.abs(recon - data).max() <= 0.01

    def test_nonfinite_auto_appended_and_sanitized(self):
        data = field((64,), np.float64)
        data[5] = np.nan
        data[6] = -np.inf
        safe = SafeguardedCompressor(EvilCodec("faithful"), ["rel:1e-3"])
        blob = safe.compress(data, BOUND)
        specs = Container.from_bytes(blob).get_str("safeguards")
        assert "nonfinite" in specs.split(";")
        recon = decompress(blob)
        nf = ~np.isfinite(data)
        np.testing.assert_array_equal(bit_view(recon)[nf], bit_view(data)[nf])

    def test_inner_codec_header_cross_check(self):
        data = field((32,), np.float32)
        blob = SafeguardedCompressor(EvilCodec(), ["sign"]).compress(data, BOUND)
        box = Container.from_bytes(blob)
        forged = Container(box.codec)
        forged.version = box.version
        for k in box.keys():
            forged.put(k, b"SZ_T" if k == "inner_codec" else box.get(k))
        from repro import StreamError

        with pytest.raises(StreamError, match="claims codec"):
            decompress(forged.to_bytes(version=box.version))

    def test_safeguard_metrics_and_event(self):
        from repro.observe import metrics

        data = field((200,), np.float64)
        reg = metrics()
        before = reg.snapshot()
        safe = SafeguardedCompressor(EvilCodec("negate"), ["sign"])
        safe.compress(data, BOUND)
        delta = reg.diff(before)
        assert delta["safeguard.points"]["value"] == 200
        assert delta["safeguard.patched"]["value"] > 0
        assert delta["safeguard.patched.sign"]["value"] == \
            delta["safeguard.patched"]["value"]


class TestChunkedIntegration:
    def test_chunked_safe_repairs_every_chunk(self):
        from repro.core.chunked import ChunkedCompressor

        data = field((8192,), np.float32, seed=5)
        safe = SafeguardedCompressor(EvilCodec("perturb"), ["rel:1e-3"])
        chunked = ChunkedCompressor(safe, chunk_bytes=4096, workers=2)
        blob = chunked.compress(data, BOUND)
        recon = decompress(blob)
        x64 = data.astype(np.float64)
        err = np.abs(recon.astype(np.float64) - x64)
        assert (err <= 1e-3 * np.abs(x64)).all()

    def test_last_audit_merges_safeguard_counts(self):
        from repro.core.chunked import ChunkedCompressor

        data = field((8192,), np.float32, seed=6)
        safe = SafeguardedCompressor(EvilCodec("perturb"), ["rel:1e-3"])
        chunked = ChunkedCompressor(safe, chunk_bytes=4096, workers=2)
        chunked.compress(data, BOUND)
        audit = chunked.last_audit
        assert audit is not None
        assert audit.n_points == data.size
        assert audit.patched > 0
        # The rel safeguard's declared bound stands in for the (absolute)
        # bound handed to the pipeline.
        assert audit.bound_value == 1e-3
