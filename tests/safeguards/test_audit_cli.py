"""Offline audit + CLI acceptance for the safeguards layer.

The headline acceptance case: ZFP_P under a coarse precision violates a
rel:1e-3 bound on lognormal data, while the SAFE wrap over the identical
inner codec passes the offline audit (exit 0) -- and a SAFE stream whose
patches were stripped by a buggy writer fails the audit with the violated
safeguard called out by name (exit 2).
"""

import json
import zlib

import numpy as np
import pytest

from repro import AbsoluteBound, Container, PrecisionBound, decompress
from repro.cli import main
from repro.compressors.base import get_compressor
from repro.report import audit_report, stream_bound
from repro.safeguards import SafeguardedCompressor

from .conftest import EvilCodec


@pytest.fixture()
def lognormal(tmp_path):
    rng = np.random.default_rng(4)
    data = np.exp(rng.normal(0, 2, size=(32, 32))).astype(np.float32)
    path = str(tmp_path / "field.npy")
    np.save(path, data)
    return path, data


def strip_patches(blob: bytes) -> bytes:
    """Re-serialize a SAFE stream with an emptied patch channel.

    Checksums are recomputed, so only the offline audit (against the
    original) can notice the missing repairs -- the model of a buggy or
    malicious writer, not wire damage.
    """
    box = Container.from_bytes(blob)
    out = Container(box.codec)
    out.version = box.version
    empty = zlib.compress(b"")
    for k in box.keys():
        if k in ("patch_idx", "patch_val"):
            out.put(k, empty)
        elif k == "n_patch":
            out.put_u64("n_patch", 0)
        else:
            out.put(k, box.get(k))
    return out.to_bytes(version=box.version)


class TestZfpAcceptance:
    def test_unwrapped_zfp_violates_rel_bound(self, lognormal):
        _, data = lognormal
        zfp = get_compressor("ZFP_P")
        recon = zfp.decompress(zfp.compress(data, PrecisionBound(14)))
        rel = np.abs(recon.astype(np.float64) - data) / np.abs(data)
        assert rel.max() > 1e-3  # the defect SAFE must repair

    def test_safe_wrap_passes_audit(self, lognormal):
        path, data = lognormal
        safe = SafeguardedCompressor("ZFP_P", ["rel:1e-3"])
        blob = safe.compress(data, PrecisionBound(14))
        assert stream_bound(Container.from_bytes(blob)) == ("rel", 1e-3)
        report = audit_report(blob, data)
        assert report.ok
        assert report.max_rel is not None and report.max_rel <= 1e-3
        assert "rel:0.001" in report.safeguards

    def test_cli_audit_exit_0(self, lognormal, tmp_path, capsys):
        path, _ = lognormal
        out = str(tmp_path / "f.rpz")
        assert main(["compress", path, out, "--precision", "14",
                     "--compressor", "ZFP_P", "--safeguard", "rel:1e-3"]) == 0
        assert main(["audit", out, "--original", path]) == 0
        text = capsys.readouterr().out
        assert "safeguards:" in text and "all hold" in text


class TestViolationNaming:
    def make_stripped(self, tmp_path, lognormal):
        path, data = lognormal
        signed = data * np.where(np.arange(data.size) % 5 == 0, -1.0, 1.0
                                 ).reshape(data.shape).astype(np.float32)
        orig = str(tmp_path / "signed.npy")
        np.save(orig, signed)
        blob = SafeguardedCompressor(EvilCodec("negate"), ["sign"]).compress(
            signed, AbsoluteBound(1e30)
        )
        bad = str(tmp_path / "stripped.rpz")
        with open(bad, "wb") as fh:
            fh.write(strip_patches(blob))
        return orig, bad

    def test_exit_2_names_the_safeguard(self, tmp_path, lognormal, capsys):
        orig, bad = self.make_stripped(tmp_path, lognormal)
        assert main(["audit", bad, "--original", orig]) == 2
        text = capsys.readouterr().out
        assert "safeguard sign violated" in text
        assert "FAIL" in text

    def test_json_carries_per_safeguard_counts(self, tmp_path, lognormal,
                                               capsys):
        orig, bad = self.make_stripped(tmp_path, lognormal)
        report = str(tmp_path / "audit.json")
        assert main(["audit", bad, "--original", orig, "--json", report]) == 2
        capsys.readouterr()
        payload = json.load(open(report))
        assert payload["safeguard_violations"]["sign"] > 0
        assert "sign" in payload["safeguards"]

    def test_intact_stream_counts_zero_violations(self, tmp_path, lognormal):
        path, data = lognormal
        blob = SafeguardedCompressor(EvilCodec("negate"), ["sign"]).compress(
            data, AbsoluteBound(1e30)
        )
        report = audit_report(blob, data)
        assert report.ok
        assert report.safeguard_violations.get("sign", 0) == 0


class TestCliSurface:
    def test_bad_spec_rejected_at_parse_time(self, lognormal, tmp_path):
        path, _ = lognormal
        out = str(tmp_path / "f.rpz")
        with pytest.raises(SystemExit):
            main(["compress", path, out, "--precision", "14",
                  "--compressor", "ZFP_P", "--safeguard", "frob"])

    def test_info_lists_safeguards(self, lognormal, tmp_path, capsys):
        path, _ = lognormal
        out = str(tmp_path / "f.rpz")
        assert main(["compress", path, out, "--precision", "14",
                     "--compressor", "ZFP_P", "--safeguard", "rel:1e-3",
                     "--safeguard", "sign"]) == 0
        assert main(["info", out]) == 0
        text = capsys.readouterr().out
        assert "inner:  ZFP_P" in text
        assert "rel:0.001; sign" in text
        assert "patched:" in text

    def test_stats_reports_safeguards(self, lognormal, tmp_path, capsys):
        path, _ = lognormal
        out = str(tmp_path / "f.rpz")
        assert main(["compress", path, out, "--precision", "14",
                     "--compressor", "ZFP_P", "--safeguard", "rel:1e-3"]) == 0
        assert main(["stats", out]) == 0
        text = capsys.readouterr().out
        assert "over ZFP_P" in text

    def test_compress_reports_rel_stats_under_precision_bound(
        self, lognormal, tmp_path, capsys
    ):
        path, _ = lognormal
        out = str(tmp_path / "f.rpz")
        assert main(["compress", path, out, "--precision", "14",
                     "--compressor", "ZFP_P", "--safeguard", "rel:1e-3"]) == 0
        text = capsys.readouterr().out
        assert "bounded 100%" in text

    def test_faults_corrupt_safeguards_mode(self, lognormal, tmp_path, capsys):
        path, _ = lognormal
        out = str(tmp_path / "f.rpz")
        bad = str(tmp_path / "bad.rpz")
        back = str(tmp_path / "back.npy")
        assert main(["compress", path, out, "--precision", "14",
                     "--compressor", "ZFP_P", "--safeguard", "rel:1e-3"]) == 0
        assert main(["faults", "corrupt-safeguards", out, bad, "--seed", "1"]) == 0
        assert main(["decompress", bad, back]) == 2
        assert "error:" in capsys.readouterr().err

    def test_chunked_safeguard_round_trip(self, lognormal, tmp_path, capsys):
        path, data = lognormal
        out = str(tmp_path / "f.rpz")
        assert main(["compress", path, out, "--precision", "14",
                     "--compressor", "ZFP_P", "--safeguard", "rel:1e-3",
                     "--chunk-size", "1K", "--workers", "2"]) == 0
        assert "chunks" in capsys.readouterr().out
        recon = decompress(open(out, "rb").read())
        rel = np.abs(recon.astype(np.float64) - data) / np.abs(data)
        assert rel.max() <= 1e-3
