"""Safeguard kinds: spec parsing, mask semantics, and the repair engine."""

import numpy as np
import pytest

from repro.safeguards import (
    AbsErrorSafeguard,
    MonotoneSafeguard,
    NonFiniteSafeguard,
    RangeSafeguard,
    RelErrorSafeguard,
    SAFEGUARD_KINDS,
    SignSafeguard,
    UlpSafeguard,
    ZeroSafeguard,
    compute_patch_channel,
    parse_safeguard,
    parse_safeguards,
)


class TestParsing:
    @pytest.mark.parametrize("spec", [
        "abs:0.5", "rel:0.001", "ulp:3", "sign", "zero", "nonfinite",
        "monotone:axis=2", "range:-1.0,1.0", "range",
    ])
    def test_spec_round_trip(self, spec):
        sg = parse_safeguard(spec)
        again = parse_safeguard(sg.spec())
        assert again == sg
        assert type(again) is type(sg)

    def test_float_params_round_trip_exactly(self):
        # repr(float) survives the string trip bit-for-bit.
        value = 1.0 / 3.0
        sg = parse_safeguard(RelErrorSafeguard(value).spec())
        assert sg.value == value

    def test_semicolon_list(self):
        stack = parse_safeguards("rel:0.001; sign ;zero")
        assert [sg.kind for sg in stack] == ["rel", "sign", "zero"]
        assert parse_safeguards("") == ()

    @pytest.mark.parametrize("bad", [
        "frob", "rel", "rel:2.0", "rel:-0.1", "abs:nan", "abs:-1", "ulp:-1",
        "monotone:axis=-1", "monotone:frob=1", "range:3,1", "range:1",
        "sign:1", "ulp:1.5",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_safeguard(bad)

    def test_registry_covers_all_kinds(self):
        assert set(SAFEGUARD_KINDS) == {
            "abs", "rel", "ulp", "sign", "zero", "nonfinite", "monotone",
            "range",
        }


class TestMasks:
    def test_abs_flags_only_exceeding_points(self):
        x = np.array([0.0, 1.0, 2.0])
        xd = np.array([0.05, 1.2, 2.0])
        mask = AbsErrorSafeguard(0.1).violation_mask(x, xd)
        assert mask.tolist() == [False, True, False]

    def test_rel_zero_admits_no_error(self):
        x = np.array([0.0, 0.0, 10.0])
        xd = np.array([0.0, 1e-12, 10.001])
        mask = RelErrorSafeguard(1e-3).violation_mask(x, xd)
        assert mask.tolist() == [False, True, False]

    def test_rel_and_abs_flag_nonfinite_reconstructions_of_finite_points(self):
        # NaN error must flag, not slip through a `err > tol` comparison.
        x = np.array([1.0, 2.0, 3.0])
        xd = np.array([np.nan, np.inf, 3.0])
        assert RelErrorSafeguard(1e-3).violation_mask(x, xd).tolist() == [
            True, True, False,
        ]
        assert AbsErrorSafeguard(0.1).violation_mask(x, xd).tolist() == [
            True, True, False,
        ]

    def test_rel_and_abs_leave_nonfinite_originals_to_nonfinite(self):
        x = np.array([np.nan, np.inf, -np.inf])
        xd = np.array([0.0, 0.0, 0.0])
        assert not RelErrorSafeguard(1e-3).violation_mask(x, xd).any()
        assert not AbsErrorSafeguard(0.1).violation_mask(x, xd).any()

    def test_rel_f32_screen_matches_exact_float64_mask(self):
        # Above the size cutoff, float32 arrays take the screened two-stage
        # path; its result must be bit-identical to the float64 formula on
        # boundary-adversarial content.
        br = 1e-3
        rng = np.random.default_rng(3)
        n = 40_000
        x = rng.lognormal(sigma=4.0, size=n).astype(np.float32)
        x[::5] *= -1
        # exact-boundary pairs in both directions, built in float64
        xd64 = x.astype(np.float64) * (1.0 + rng.uniform(-2 * br, 2 * br, n))
        xd = xd64.astype(np.float32)
        for row, val in (
            (7, 0.0), (11, np.nan), (13, np.inf), (17, -0.0),
            (19, 1e-40), (23, 3e38), (29, 1e-37),
        ):
            x[row::97] = val
        xd[::31] = x[::31]  # bit-identical stretches
        xd[3::101] = np.nan
        xd[5::103] = np.inf
        sg = RelErrorSafeguard(br)
        got = sg.violation_mask(x, xd)
        with np.errstate(invalid="ignore"):
            x64 = x.astype(np.float64)
            err = np.abs(xd.astype(np.float64) - x64)
            want = ~(err <= br * np.abs(x64)) & np.isfinite(x64)
        assert got.dtype == bool and got.shape == x.shape
        assert (got == want).all()

    def test_ulp_zero_signs_are_one_apart(self):
        x = np.array([0.0, 0.0])
        xd = np.array([-0.0, -0.0])
        assert UlpSafeguard(0).violation_mask(x, xd).all()
        assert not UlpSafeguard(1).violation_mask(x, xd).any()

    def test_ulp_counts_representable_steps(self):
        x = np.array([1.0], dtype=np.float32)
        two_up = np.nextafter(np.nextafter(x, np.inf), np.inf)
        assert UlpSafeguard(1).violation_mask(x, two_up).all()
        assert not UlpSafeguard(2).violation_mask(x, two_up).any()

    def test_sign_treats_zero_as_its_own_sign(self):
        x = np.array([-2.0, 0.0, 3.0])
        xd = np.array([-1.0, 1e-9, -3.0])
        mask = SignSafeguard().violation_mask(x, xd)
        assert mask.tolist() == [False, True, True]

    def test_zero_is_bit_exact_about_negative_zero(self):
        x = np.array([0.0, -0.0, 1.0])
        xd = np.array([-0.0, -0.0, 2.0])
        mask = ZeroSafeguard().violation_mask(x, xd)
        assert mask.tolist() == [True, False, False]

    def test_nonfinite_requires_identical_bits(self):
        x = np.array([np.nan, np.inf, -np.inf, 1.0])
        xd = np.array([np.nan, np.inf, np.inf, np.nan])
        mask = NonFiniteSafeguard().violation_mask(x, xd)
        assert mask.tolist() == [False, False, True, False]

    def test_monotone_flags_both_endpoints_and_ignores_ties(self):
        x = np.array([1.0, 2.0, 2.0, 3.0])
        xd = np.array([1.0, 2.0, 2.5, 2.4])  # 2.5 > 2.4 flips the 2->3 rise
        mask = MonotoneSafeguard(0).violation_mask(x, xd)
        assert mask.tolist() == [False, False, True, True]
        flat = np.array([5.0, 5.0])
        assert not MonotoneSafeguard(0).violation_mask(
            flat, np.array([9.0, 1.0])
        ).any()  # a tie imposes no ordering

    def test_monotone_axis_selects_direction(self):
        x = np.arange(6.0).reshape(2, 3)
        xd = x.copy()
        xd[0, 1], xd[0, 2] = x[0, 2], x[0, 1]  # flip within a row
        assert not MonotoneSafeguard(0).violation_mask(x, xd).any()
        assert MonotoneSafeguard(1).violation_mask(x, xd).any()

    def test_monotone_axis_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            MonotoneSafeguard(2).violation_mask(np.ones((3, 3)), np.ones((3, 3)))

    def test_range_bare_form_binds_to_data(self):
        data = np.array([-1.0, 4.0, np.nan])
        sg = RangeSafeguard().resolve(data)
        assert (sg.lo, sg.hi) == (-1.0, 4.0)
        assert "range:" in sg.spec()
        mask = sg.violation_mask(data, np.array([-1.5, 2.0, 0.0]))
        assert mask.tolist() == [True, False, False]

    def test_range_unresolved_refuses_to_evaluate(self):
        with pytest.raises(ValueError, match="resolved"):
            RangeSafeguard().violation_mask(np.ones(2), np.ones(2))

    def test_range_nan_reconstruction_is_not_a_range_violation(self):
        sg = RangeSafeguard(0.0, 1.0)
        assert not sg.violation_mask(
            np.array([0.5]), np.array([np.nan])
        ).any()


class TestEngine:
    def test_bit_identical_points_never_patch(self):
        x = np.array([np.nan, 1.0, 0.0])
        channel = compute_patch_channel(
            (NonFiniteSafeguard(), ZeroSafeguard()), x, x.copy()
        )
        assert channel.size == 0

    def test_patches_restore_original_bits(self):
        x = np.array([1.0, -2.0, 3.0], dtype=np.float32)
        xd = np.array([1.0, 2.0, 3.5], dtype=np.float32)
        channel = compute_patch_channel((SignSafeguard(),), x, xd)
        assert channel.patch_idx.tolist() == [1]
        assert channel.patch_val.dtype == np.float32
        assert channel.patch_val.view(np.int32).tolist() == \
            x[1:2].view(np.int32).tolist()

    def test_counts_are_per_spec(self):
        x = np.array([0.0, 5.0, -1.0])
        xd = np.array([1e-20, 5.0, 1.0])
        channel = compute_patch_channel((ZeroSafeguard(), SignSafeguard()), x, xd)
        assert channel.counts["zero"] == 1
        # index 0 is claimed by the zero safeguard first; sign still flags
        # the flipped point 2.
        assert channel.counts["sign"] == 1
        assert sorted(channel.patch_idx.tolist()) == [0, 2]

    def test_fixed_point_handles_patch_induced_violations(self):
        # Patching index 2 back to 3.0 creates a NEW monotone flip against
        # the (unpatched) reconstruction at index 3; the engine must iterate
        # until the property holds on the final reconstruction.
        x = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        xd = np.array([1.0, 2.0, 9.0, 8.0, 5.0])
        channel = compute_patch_channel((MonotoneSafeguard(0),), x, xd)
        repaired = xd.copy()
        repaired[channel.patch_idx.astype(np.int64)] = channel.patch_val
        assert not MonotoneSafeguard(0).violation_mask(x, repaired).any()

    def test_idx_sorted_and_unique(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=257)
        xd = x * 1.5
        channel = compute_patch_channel(
            (RelErrorSafeguard(1e-2), SignSafeguard()), x, xd
        )
        idx = channel.patch_idx
        assert (np.diff(idx.astype(np.int64)) > 0).all()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compute_patch_channel((SignSafeguard(),), np.ones(3), np.ones(4))
