"""Shared fixtures: an adversarial codec for exercising the safeguards layer.

``EvilCodec`` stores the array verbatim but corrupts its reconstruction in a
named, deterministic way at decode time -- the corruption is therefore visible
to the adapter's verify pass (``compress_verified`` round-trips) and happens
identically on every decode, exactly like a codec with a systematic defect.
"""

import zlib

import numpy as np

from repro.compressors.base import (
    AbsoluteBound,
    Compressor,
    PrecisionBound,
    RelativeBound,
    register_compressor,
)


class EvilCodec(Compressor):
    """Lossless storage + a deterministic decode-time defect.

    Modes (stored in the stream, so the registry's zero-arg instance decodes
    any of them):

    * ``faithful`` -- no corruption (the compliant-codec case),
    * ``perturb``  -- every 3rd point multiplied by 1.01 (breaks rel/abs/ulp),
    * ``negate``   -- every 5th point sign-flipped (breaks sign),
    * ``zero``     -- exact zeros replaced by 1e-30, -0.0 by +0.0 (breaks zero),
    * ``swap``     -- adjacent pairs along the first axis swapped (breaks
      monotonicity),
    * ``spike``    -- every 7th point sent to 1e30 (breaks range),
    * ``unfinite`` -- non-finite points replaced by 0 (breaks nonfinite).
    """

    name = "EVIL"
    supported_bounds = (AbsoluteBound, RelativeBound, PrecisionBound)
    allows_nonfinite = True

    def __init__(self, mode: str = "faithful") -> None:
        self.mode = mode

    def compress(self, data, bound):
        data = self._check_input(data, allow_nonfinite=True)
        box = self._new_container(self.name, data)
        box.put_str("mode", self.mode)
        box.put("payload", zlib.compress(data.tobytes()))
        return box.to_bytes()

    def decompress(self, blob):
        box, shape, dtype = self._open_container(blob, self.name)
        raw = zlib.decompress(box.get("payload"))
        x = np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
        mode = box.get_str("mode")
        flat = x.ravel()
        if mode == "perturb":
            flat[::3] = flat[::3] * np.asarray(1.01, dtype=dtype)
        elif mode == "negate":
            flat[::5] = -flat[::5]
        elif mode == "zero":
            sel = flat == 0
            flat[sel] = np.asarray(1e-30, dtype=dtype)
        elif mode == "swap":
            even = (x.shape[0] // 2) * 2
            tmp = x[0:even:2].copy()
            x[0:even:2] = x[1:even:2]
            x[1:even:2] = tmp
        elif mode == "spike":
            flat[::7] = np.asarray(1e30, dtype=dtype)
        elif mode == "nanify":
            flat[::11] = np.asarray(np.nan, dtype=dtype)
        elif mode == "unfinite":
            flat[~np.isfinite(flat)] = 0
        return x


try:
    register_compressor("EVIL", EvilCodec)
except ValueError:
    pass  # already registered by a sibling test module
