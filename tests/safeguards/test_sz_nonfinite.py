"""Non-finite values through SZ: sanitized for the lattice, patched back.

``lattice_quantize`` now rejects NaN/Inf outright (pinning them to index 0
poisoned every neighbouring Lorenzo prediction); ``SZCompressor`` sanitizes
them to 0 before quantization and restores the exact bit patterns from the
safeguard patch channel.  These tests pin the behaviour down where it is
most fragile: values sitting exactly on chunk boundaries of a
``ChunkedCompressor`` split, where each worker sees a different slice.
"""

import numpy as np
import pytest

from repro import AbsoluteBound, decompress
from repro.compressors.base import get_compressor
from repro.core.chunked import ChunkedCompressor
from repro.safeguards import SafeguardedCompressor, bit_view

BOUND = AbsoluteBound(1e-3)

#: floats per 4096-byte chunk for float32 data.
PER_CHUNK = 1024


def boundary_field(n_chunks=4, dtype=np.float32):
    """A field with NaN/+-Inf/-0.0 at the edges of every chunk split."""
    rng = np.random.default_rng(11)
    data = rng.normal(0, 1, size=n_chunks * PER_CHUNK).astype(dtype)
    for c in range(1, n_chunks):
        data[c * PER_CHUNK - 1] = [np.nan, np.inf, -np.inf][c % 3]
        data[c * PER_CHUNK] = [-np.inf, np.nan, np.inf][c % 3]
    data[0] = np.nan
    data[-1] = -np.inf
    data[PER_CHUNK // 2] = -0.0
    return data


class TestPlainSZ:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_nonfinite_round_trip_bit_exact(self, dtype):
        data = np.linspace(-4, 4, 256).astype(dtype)
        data[0] = np.nan
        data[100] = np.inf
        data[255] = -np.inf
        sz = get_compressor("SZ_ABS")
        recon = sz.decompress(sz.compress(data, BOUND))
        nf = ~np.isfinite(data)
        np.testing.assert_array_equal(bit_view(recon)[nf], bit_view(data)[nf])
        fin = ~nf
        assert np.abs(recon[fin] - data[fin]).max() <= 1e-3

    def test_all_nonfinite_input(self):
        data = np.full(32, np.nan, dtype=np.float32)
        data[::2] = np.inf
        sz = get_compressor("SZ_ABS")
        recon = sz.decompress(sz.compress(data, BOUND))
        np.testing.assert_array_equal(bit_view(recon), bit_view(data))

    def test_neighbours_of_nonfinite_stay_bounded(self):
        # The old pin-to-index-0 behaviour dragged the Lorenzo prediction
        # of the NEXT point toward zero; sanitize-and-patch must not.
        data = np.full(64, 100.0, dtype=np.float64)
        data[32] = np.nan
        sz = get_compressor("SZ_ABS")
        recon = sz.decompress(sz.compress(data, BOUND))
        fin = np.isfinite(data)
        assert np.abs(recon[fin] - data[fin]).max() <= 1e-3


class TestChunkBoundaries:
    def test_chunked_sz_nonfinite_at_splits(self):
        data = boundary_field()
        chunked = ChunkedCompressor("SZ_ABS", chunk_bytes=4096, workers=2)
        recon = decompress(chunked.compress(data, BOUND))
        nf = ~np.isfinite(data)
        assert nf.sum() >= 8
        np.testing.assert_array_equal(bit_view(recon)[nf], bit_view(data)[nf])
        fin = ~nf
        assert np.abs(recon[fin] - data[fin]).max() <= 1e-3

    def test_chunked_safe_preserves_negative_zero_at_split(self):
        # SZ's lattice reconstructs -0.0 as +0.0 (value-equal); the zero
        # safeguard upgrades that to bit-exact, also across chunk splits.
        data = boundary_field()
        data[PER_CHUNK - 1] = -0.0  # overwrite a boundary slot
        safe = SafeguardedCompressor("SZ_ABS", ["abs:1e-3", "zero"])
        chunked = ChunkedCompressor(safe, chunk_bytes=4096, workers=2)
        recon = decompress(chunked.compress(data, BOUND))
        zeros = (data == 0) & np.isfinite(data)
        np.testing.assert_array_equal(
            bit_view(recon)[zeros], bit_view(data)[zeros]
        )

    def test_single_point_chunks_tail(self):
        # A nonfinite value in a final, smaller-than-nominal chunk.
        data = np.ones(PER_CHUNK + 3, dtype=np.float32)
        data[-1] = np.nan
        data[-2] = np.inf
        chunked = ChunkedCompressor("SZ_ABS", chunk_bytes=4096, workers=2)
        recon = decompress(chunked.compress(data, BOUND))
        nf = ~np.isfinite(data)
        np.testing.assert_array_equal(bit_view(recon)[nf], bit_view(data)[nf])
