"""Fault injection against SAFE streams: corruption fails loud, never silent.

The one failure mode the safeguards layer may never exhibit is a stream that
decodes successfully but without the declared properties.  Every injected
fault must therefore surface as a clean :class:`StreamError` (or repair to a
byte-identical stream) -- no tracebacks, no silently-wrong arrays.
"""

import numpy as np
import pytest

from repro import AbsoluteBound, StreamError, decompress
from repro.safeguards import SafeguardedCompressor, bit_view
from repro.testing import faults

from .conftest import EvilCodec

BOUND = AbsoluteBound(1e30)


@pytest.fixture()
def stream():
    rng = np.random.default_rng(2)
    data = np.exp(rng.normal(0, 1, size=500)).astype(np.float32)
    data[3] = np.nan
    blob = SafeguardedCompressor(
        EvilCodec("perturb"), ["rel:1e-3", "sign"]
    ).compress(data, BOUND)
    return data, blob


class TestSafeguardSectionCorruption:
    @pytest.mark.parametrize("seed", range(8))
    def test_bit_flips_in_safeguard_sections_fail_loud(self, stream, seed):
        data, blob = stream
        bad = faults.corrupt_safeguards(blob, n_bits=2, seed=seed)
        with pytest.raises(StreamError):
            decompress(bad)

    @pytest.mark.parametrize("frac", [0.2, 0.6, 0.95])
    def test_truncation_fails_loud(self, stream, frac):
        _, blob = stream
        with pytest.raises(StreamError):
            decompress(faults.truncate(blob, frac))

    @pytest.mark.parametrize("key", ["patch_idx", "patch_val", "n_patch",
                                     "safeguards", "inner_codec"])
    def test_dropped_sections_fail_loud(self, stream, key):
        # drop_section re-serializes with VALID checksums: only structural
        # validation stands between the reader and silent property loss.
        _, blob = stream
        with pytest.raises(StreamError):
            decompress(faults.drop_section(blob, key))

    def test_inner_stream_corruption_fails_loud(self, stream):
        _, blob = stream
        with pytest.raises(StreamError):
            decompress(faults.corrupt_section(blob, "inner", n_bits=4, seed=1))

    def test_never_silent_property_loss(self, stream):
        # Sweep many faults: every outcome is either a StreamError or a
        # byte-identical decode (a flip the CRC caught and repair fixed is
        # not possible here -- SAFE streams carry no parity).
        data, blob = stream
        expected = decompress(blob)
        for seed in range(20):
            bad = faults.flip_random_bits(blob, n=1, seed=seed)
            try:
                recon = bad == blob and decompress(bad)
            except StreamError:
                continue
            if recon is not False:
                np.testing.assert_array_equal(
                    bit_view(recon), bit_view(expected)
                )

    def test_requires_safe_stream(self):
        inner = EvilCodec().compress(np.ones(8, dtype=np.float32), BOUND)
        with pytest.raises(StreamError, match="not SAFE"):
            faults.corrupt_safeguards(inner)
