"""Parallel dump/load: MPI-style ranks + the simulated supercomputer.

Run with::

    python examples/parallel_io.py

Two parts:

1. An SPMD job on this machine (4 in-process ranks, mpi4py-shaped API):
   rank 0 scatters NYX shards, every rank compresses its shard with SZ_T,
   compressed sizes are gathered back -- the exact structure of the
   paper's file-per-process experiment, portable to real ``mpi4py`` by
   swapping the communicator.
2. The Figure-6 projection: measured per-rank rates/ratios are combined
   with the GPFS contention model to estimate dump/load times for 3 GB
   per rank at 1024-4096 cores.
"""

import numpy as np

from repro import RelativeBound, get_compressor
from repro.data import load_field
from repro.experiments import fig6
from repro.parallel import run_spmd

BOUND = 1e-2
NRANKS = 4


def spmd_job() -> None:
    field = load_field("NYX", "dark_matter_density")
    shards = np.array_split(field.ravel(), NRANKS)

    def rank_main(comm):
        rank = comm.Get_rank()
        shard = comm.scatter(shards if rank == 0 else None, root=0)
        compressor = get_compressor("SZ_T")
        blob = compressor.compress(shard, RelativeBound(BOUND))
        sizes = comm.gather((shard.nbytes, len(blob)), root=0)
        if rank == 0:
            total_in = sum(s for s, _ in sizes)
            total_out = sum(c for _, c in sizes)
            print(f"  {comm.Get_size()} ranks compressed "
                  f"{total_in / 1e6:.1f} MB -> {total_out / 1e6:.1f} MB "
                  f"({total_in / total_out:.2f}x)")
            for r, (s, c) in enumerate(sizes):
                print(f"    rank {r}: {s / 1e6:6.2f} MB -> {c / 1e6:6.2f} MB")
        return len(blob)

    print(f"[1] SPMD compression on {NRANKS} in-process ranks:")
    run_spmd(NRANKS, rank_main)


def cluster_projection() -> None:
    print("\n[2] Figure-6 projection (simulated GPFS, measured rates):")
    table = fig6.run(scale=0.5)
    print(table.format())


if __name__ == "__main__":
    spmd_job()
    cluster_projection()
