"""Quickstart: compress scientific data with a point-wise relative bound.

Run with::

    python examples/quickstart.py

Demonstrates the library's core promise (the paper's contribution): pick a
relative bound, compress with SZ_T (the log-transform wrapper around SZ),
and every single reconstructed value is within that percentage of its
original -- including exact preservation of zeros and signs.
"""

import numpy as np

from repro import RelativeBound, compress, decompress
from repro.metrics import bounded_fraction


def main() -> None:
    # A NYX-like log-normal density field: mostly small values with a
    # heavy tail -- exactly the data absolute bounds handle poorly.
    rng = np.random.default_rng(42)
    data = np.exp(rng.normal(-2.5, 2.5, size=(48, 48, 48))).astype(np.float32)
    print(f"field: {data.shape} float32, values span "
          f"[{data.min():.2e}, {data.max():.2e}]")

    for br in (1e-3, 1e-2, 1e-1):
        blob = compress(data, RelativeBound(br))  # SZ_T by default
        recon = decompress(blob)
        stats = bounded_fraction(data, recon, br)
        print(
            f"b_r = {br:<7g} ratio = {data.nbytes / len(blob):6.2f}x   "
            f"bounded = {stats.bounded_label():>6}   "
            f"max rel err = {stats.max_rel:.3e}"
        )
        assert stats.strictly_bounded

    # Small values keep small errors -- the point of relative bounds.
    blob = compress(data, RelativeBound(1e-2))
    recon = decompress(blob)
    small = data < np.quantile(data, 0.1)
    print(
        f"\nsmallest decile of values: max abs error "
        f"{np.abs(recon[small] - data[small]).max():.3e} "
        f"(vs {data[small].max():.3e} max value in that decile)"
    )


if __name__ == "__main__":
    main()
