"""Rate-distortion study across every compressor family.

Run with::

    python examples/rate_distortion_study.py [out.csv]

Sweeps bounds/precisions/rates over NYX dark_matter_density and prints
(bit-rate, relative-error PSNR) series per compressor -- the analysis
behind Figure 1, extended to the whole roster including the fixed-rate
ZFP mode and the SZ2 hybrid.  Optionally writes a CSV for plotting.
"""

import sys

from repro import (
    PrecisionBound,
    RateBound,
    RelativeBound,
    get_compressor,
)
from repro.data import load_field
from repro.metrics import bit_rate, relative_psnr

SWEEPS = {
    "SZ_T": [RelativeBound(b) for b in (1e-4, 1e-3, 1e-2, 1e-1)],
    "SZ2_T": [RelativeBound(b) for b in (1e-4, 1e-3, 1e-2, 1e-1)],
    "ZFP_T": [RelativeBound(b) for b in (1e-4, 1e-3, 1e-2, 1e-1)],
    "SZ_PWR": [RelativeBound(b) for b in (1e-4, 1e-3, 1e-2, 1e-1)],
    "ISABELA": [RelativeBound(b) for b in (1e-3, 1e-2, 1e-1)],
    "FPZIP": [PrecisionBound(p) for p in (24, 19, 16, 13)],
    "ZFP_R": [RateBound(r) for r in (16, 12, 8, 4)],
}


def main(csv_path: str | None = None) -> None:
    data = load_field("NYX", "dark_matter_density")
    rows = []
    print(f"{'compressor':9s} {'setting':>14s} {'bits/val':>9s} {'rel PSNR':>9s}")
    for name, bounds in SWEEPS.items():
        comp = get_compressor(name)
        for bound in bounds:
            blob = comp.compress(data, bound)
            recon = comp.decompress(blob)
            rate = bit_rate(len(blob), data.size)
            psnr = relative_psnr(data, recon)
            setting = f"{type(bound).__name__[:-5].lower()} {bound.value:g}"
            rows.append((name, setting, rate, psnr))
            print(f"{name:9s} {setting:>14s} {rate:9.3f} {psnr:9.2f}")

    # Pareto view: which compressor gives the best PSNR below each rate?
    print("\nbest relative-error PSNR by bit budget:")
    for budget in (2, 4, 8, 16):
        feasible = [(p, n, r) for n, _, r, p in rows if r <= budget]
        if feasible:
            p, n, r = max(feasible)
            print(f"  <= {budget:2d} bits/val: {n} ({p:.1f} dB at {r:.2f} b/v)")

    if csv_path:
        with open(csv_path, "w") as fh:
            fh.write("compressor,setting,bits_per_value,rel_psnr_db\n")
            for row in rows:
                fh.write(",".join(str(c) for c in row) + "\n")
        print(f"\nwrote {csv_path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
