"""HACC velocity fidelity: angle skew under different error controls.

Run with::

    python examples/hacc_velocity_angles.py

Cosmologists care about the *direction* of particle velocities, and the
paper's Figure 5 shows that per-particle relative bounds preserve it far
better than a single absolute bound at equal storage cost.  This example
compresses the three synthetic HACC velocity components three ways at the
same ~8x ratio and reports the angle between original and reconstructed
velocity vectors.
"""

import numpy as np

from repro import AbsoluteBound, PrecisionBound, RelativeBound, get_compressor
from repro.data import load_field
from repro.metrics import blockwise_mean_skew, skew_angles

TARGET = 8.0


def compress_all(name, bound, comps):
    comp = get_compressor(name)
    blobs = [comp.compress(c, bound) for c in comps]
    recons = [comp.decompress(b) for b in blobs]
    ratio = sum(c.nbytes for c in comps) / sum(len(b) for b in blobs)
    return ratio, recons


def main() -> None:
    comps = [load_field("HACC", f"velocity_{ax}") for ax in "xyz"]
    speed = np.sqrt(sum(c.astype(np.float64) ** 2 for c in comps))
    print(f"HACC velocities: {comps[0].size} particles, "
          f"median speed {np.median(speed):.0f}, max {speed.max():.0f}")

    # Settings chosen to land all three compressors near the same ratio.
    cases = [
        ("SZ_ABS", AbsoluteBound(30.0)),
        ("FPZIP", PrecisionBound(10)),
        ("SZ_T", RelativeBound(0.12)),
    ]
    print(f"\n{'scheme':8s} {'ratio':>6s} {'mean skew':>10s} {'p99 skew':>9s}   slow-particle skew")
    slow = speed < np.quantile(speed, 0.25)
    for name, bound in cases:
        ratio, recons = compress_all(name, bound, comps)
        angles = skew_angles(tuple(comps), tuple(recons))
        cells = blockwise_mean_skew(angles, 4096)
        print(
            f"{name:8s} {ratio:6.1f} {cells.mean():9.2f}deg {np.percentile(cells, 99):8.2f}deg"
            f"   {angles[slow].mean():.2f}deg"
        )

    print("\nabsolute bounds scramble slow particles' directions; the "
          "log-transform scheme (SZ_T) keeps every particle's direction "
          "tight at the same storage cost.")


if __name__ == "__main__":
    main()
