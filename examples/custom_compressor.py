"""Wrap your own absolute-error compressor into a relative-error one.

Run with::

    python examples/custom_compressor.py

The transformation scheme is generic (Section V: "this transformation
scheme ... can work as a preprocessing stage and a postprocessing stage
for any lossy compressor").  This example builds a deliberately naive
absolute-error compressor -- uniform scalar quantization + DEFLATE, ~30
lines -- and shows that `TransformedCompressor` turns even *that* into a
guaranteed point-wise-relative compressor, no changes required.
"""

import numpy as np

from repro import (
    AbsoluteBound,
    Compressor,
    RelativeBound,
    TransformedCompressor,
)
from repro.encoding import deflate, inflate
from repro.metrics import bounded_fraction


class NaiveQuantizer(Compressor):
    """Uniform scalar quantization to int32 + DEFLATE.  Absolute bound."""

    name = "NAIVE"
    supported_bounds = (AbsoluteBound,)

    def compress(self, data, bound):
        self._check_bound(bound)
        data = self._check_input(data)
        step = 2.0 * bound.value
        q = np.rint(data.astype(np.float64) / step).astype(np.int32)
        box = self._new_container(self.name, data)
        box.put_f64("eb", bound.value)
        box.put("q", deflate(q.tobytes()))
        return box.to_bytes()

    def decompress(self, blob):
        box, shape, dtype = self._open_container(blob, self.name)
        step = 2.0 * box.get_f64("eb")
        q = np.frombuffer(inflate(box.get("q")), dtype=np.int32)
        return (q.astype(np.float64) * step).astype(dtype).reshape(shape)


def main() -> None:
    rng = np.random.default_rng(7)
    data = np.exp(rng.normal(-2, 2.5, size=(48, 48, 48))).astype(np.float32)
    data[rng.random(data.shape) < 0.05] = 0.0  # sprinkle exact zeros
    data[::7] *= -1  # and mixed signs
    br = 1e-2

    # The naive compressor alone cannot honour a relative bound: pick the
    # absolute bound from the largest value and small values are destroyed.
    naive = NaiveQuantizer()
    eb_global = br * float(np.abs(data).max())
    recon = naive.decompress(naive.compress(data, AbsoluteBound(eb_global)))
    stats = bounded_fraction(data, recon, br)
    print(f"naive abs @ {eb_global:.3g}: bounded {stats.bounded_label()}, "
          f"max rel err {stats.max_rel:.3g}")

    # Wrapped: the same codec now guarantees the relative bound point-wise.
    wrapped = TransformedCompressor(naive, name="NAIVE_T")
    blob = wrapped.compress(data, RelativeBound(br))
    recon = wrapped.decompress(blob)
    stats = bounded_fraction(data, recon, br)
    print(f"NAIVE_T  @ b_r={br:g}:  bounded {stats.bounded_label()}, "
          f"max rel err {stats.max_rel:.3g}, ratio {data.nbytes / len(blob):.2f}x, "
          f"patched {wrapped.last_patch_count} pts")
    assert stats.strictly_bounded
    assert (recon[data == 0] == 0).all()
    print("zeros preserved exactly; signs restored; bound guaranteed.")


if __name__ == "__main__":
    main()
