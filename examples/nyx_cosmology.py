"""NYX cosmology study: why relative bounds beat absolute bounds.

Run with::

    python examples/nyx_cosmology.py [output_dir]

Recreates the paper's motivating scenario (Section VI-E / Figure 4) on the
synthetic NYX ``dark_matter_density`` field: at a *matched* compression
ratio, compare an absolute-error compressor (SZ_ABS) against relative-
error compressors (FPZIP, SZ_T) and look at what happens to the dense
small-value regions cosmologists actually analyse.  Writes grayscale PGM
slice panels when an output directory is given.
"""

import sys

import numpy as np

from repro import AbsoluteBound, RelativeBound, get_compressor
from repro.data import load_field
from repro.experiments.fig4 import tune_bound_for_ratio
from repro.metrics import relative_errors
from repro.viz import ascii_heatmap

TARGET_RATIO = 7.0


def main(out_dir: str | None = None) -> None:
    density = load_field("NYX", "dark_matter_density")
    print(f"dark_matter_density: {density.shape}, "
          f"{(density <= 1).mean():.0%} of values in [0, 1], "
          f"max {density.max():.3g}")

    # --- absolute bound, tuned to the target ratio -------------------------
    sz_abs = get_compressor("SZ_ABS")
    eb, blob = tune_bound_for_ratio(
        lambda b: sz_abs.compress(density, AbsoluteBound(b)),
        1e-6 * float(density.max()), float(density.max()),
        TARGET_RATIO, density.nbytes,
    )
    recon_abs = sz_abs.decompress(blob)
    print(f"\nSZ_ABS  @ {density.nbytes / len(blob):.1f}x uses abs bound {eb:.3g}")

    # --- relative bound, tuned to the same ratio ----------------------------
    sz_t = get_compressor("SZ_T")
    br, blob_t = tune_bound_for_ratio(
        lambda b: sz_t.compress(density, RelativeBound(b)),
        1e-6, 0.9, TARGET_RATIO, density.nbytes,
    )
    recon_t = sz_t.decompress(blob_t)
    print(f"SZ_T    @ {density.nbytes / len(blob_t):.1f}x uses rel bound {br:.3g}")

    # --- what happened to the dense regions? -------------------------------
    focus = (density > 0) & (density <= 0.1)
    for name, recon in (("SZ_ABS", recon_abs), ("SZ_T", recon_t)):
        err = np.abs(recon[focus].astype(np.float64) - density[focus].astype(np.float64))
        rel = relative_errors(density, recon)
        print(
            f"{name}: dense-region [0,0.1] mean abs err {err.mean():.2e}, "
            f"global max rel err {rel.max():.3g}"
        )

    k = density.shape[0] // 2
    print("\noriginal slice (zoom to [0, 0.1]):")
    print(ascii_heatmap(density[k], width=48, vmin=0, vmax=0.1))
    print("\nSZ_ABS reconstruction (same zoom -- small structure washed out):")
    print(ascii_heatmap(recon_abs[k], width=48, vmin=0, vmax=0.1))
    print("\nSZ_T reconstruction (same zoom -- structure preserved):")
    print(ascii_heatmap(recon_t[k], width=48, vmin=0, vmax=0.1))

    if out_dir:
        from repro.experiments import fig4

        table = fig4.run(out_dir=out_dir)
        print("\n" + table.format())
        print(f"\nPGM panels written to {out_dir}/")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
