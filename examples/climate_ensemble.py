"""Climate ensemble triage: pick the right compressor per field.

Run with::

    python examples/climate_ensemble.py

A CESM-style ensemble emits many 2-D fields with very different value
structure (cloud fractions with exact zeros, smooth temperature, tiny
precipitation rates).  This example sweeps every registered point-wise-
relative compressor over every CESM-ATM field at the archive bound
(b_r = 1e-2), verifies the bound, and prints a per-field recommendation --
the workflow a data-management team would run before committing an
ensemble to archival settings.
"""

import numpy as np

from repro import get_compressor
from repro.data import field_names, load_field
from repro.experiments.common import PWR_COMPRESSORS, compress_for_relbound
from repro.metrics import bounded_fraction

BOUND = 1e-2


def main() -> None:
    print(f"CESM-ATM archive sweep at point-wise relative bound {BOUND:g}\n")
    header = f"{'field':12s}" + "".join(f"{c:>10s}" for c in PWR_COMPRESSORS)
    print(header)
    print("-" * len(header))

    totals = {c: [0, 0] for c in PWR_COMPRESSORS}
    for fname in field_names("CESM-ATM"):
        data = load_field("CESM-ATM", fname)
        ratios = {}
        for cname in PWR_COMPRESSORS:
            blob, _ = compress_for_relbound(cname, data, BOUND)
            recon = get_compressor(cname).decompress(blob)
            stats = bounded_fraction(data, recon, BOUND)
            ratios[cname] = data.nbytes / len(blob)
            totals[cname][0] += data.nbytes
            totals[cname][1] += len(blob)
            # archive policy: a compressor that breaks the bound or
            # corrupts zeros is disqualified for this field
            if cname in ("SZ_T", "ZFP_T", "FPZIP", "ISABELA"):
                assert stats.strictly_bounded, (fname, cname)
        row = f"{fname:12s}" + "".join(f"{ratios[c]:10.2f}" for c in PWR_COMPRESSORS)
        best = max(ratios, key=ratios.get)
        print(row + f"   -> {best}")

    print("\noverall (all fields):")
    for cname, (orig, comp) in totals.items():
        print(f"  {cname:8s} {orig / comp:6.2f}x")

    best_total = max(totals, key=lambda c: totals[c][0] / totals[c][1])
    saved = 1 - 1 / (totals[best_total][0] / totals[best_total][1])
    print(f"\nrecommendation: {best_total} -- stores the ensemble in "
          f"{100 * (1 - saved):.0f}% of its raw footprint")


if __name__ == "__main__":
    main()
