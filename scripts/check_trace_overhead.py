#!/usr/bin/env python
"""Fail CI when the tracing layer's disabled-mode overhead exceeds a budget.

Usage::

    python scripts/check_trace_overhead.py [--threshold 0.05] [--repeats 5] \
        [--profile-hz 97 --profile-threshold 0.05]

Times an SZ_T round-trip on a synthetic 64^3 field in every mode --
tracing disabled, tracing enabled and (with ``--profile-hz``) profiled
-- for ``--repeats`` rounds each, interleaved round-robin rather than
as back-to-back blocks.  The reported overhead is the **median of the
per-round ratios** (round i's traced time over round i's untraced
time): adjacent interleaved rounds see the same machine state, so
sustained drift (CPU frequency scaling, noisy CI neighbours) cancels
out of each ratio instead of biasing whichever block it landed on, and
the median discards rounds where a stall hit one mode only.  Exits 1
when the overhead exceeds the threshold, which is the acceptance bar
for the observability layer: instrumentation must stay out of the hot
path when ``REPRO_TRACE=off``.

Two further checks ride along:

* **no-op allocation** (always on) -- with tracing off and no profiler
  installed, disabled ``span()`` entries and the ``_traced_compress`` /
  ``_traced_decompress`` wrappers must not retain memory per call:
  tracemalloc's net traced allocation over many disabled entries must
  stay at zero (and the tracer buffer must stay empty).  This pins the
  fast path the overhead budget depends on.
* **profiler overhead** (``--profile-hz N``, used by CI with 97) -- the
  same best-of round-trip with a sampling profiler installed at N Hz
  must stay within ``--profile-threshold`` (default 5%) of the
  uninstrumented run.

The enabled-mode run keeps the tracer buffer cleared between rounds so
the measurement covers span recording, not buffer growth.
"""

from __future__ import annotations

import argparse
import sys
import time
import tracemalloc

import numpy as np

from repro import RelativeBound, compress, decompress
from repro.compressors import get_compressor
from repro.observe import (
    enable_tracing,
    get_tracer,
    install_profiler,
    run_traced,
    span,
    uninstall_profiler,
)


def make_field(n: int = 64) -> np.ndarray:
    rng = np.random.default_rng(42)
    mags = rng.lognormal(mean=0.0, sigma=1.5, size=(n, n, n))
    signs = rng.choice([-1.0, 1.0], size=mags.shape)
    return (mags * signs).astype(np.float32)


def one_roundtrip_s(data: np.ndarray) -> float:
    bound = RelativeBound(1e-3)
    get_tracer().clear()
    t0 = time.perf_counter()
    decompress(compress(data, bound, compressor="SZ_T"))
    return time.perf_counter() - t0


def measure_modes(
    data: np.ndarray, repeats: int, profile_hz: float
) -> dict[str, list[float]]:
    """``repeats`` round-trip times per mode, rounds interleaved.

    Modes: ``off`` (tracing disabled), ``on`` (tracing enabled) and --
    when ``profile_hz > 0`` -- ``prof`` (tracing enabled plus a live
    sampler at that rate).  Round i of every mode runs back-to-back, so
    ``times["on"][i] / times["off"][i]`` compares measurements taken
    under the same machine state.
    """
    modes = ["off", "on"] + (["prof"] if profile_hz > 0 else [])
    times: dict[str, list[float]] = {mode: [] for mode in modes}

    def run(mode: str) -> float:
        if mode == "off":
            enable_tracing(False)
            return one_roundtrip_s(data)
        enable_tracing(True)
        if mode == "prof":
            install_profiler(hz=profile_hz)
            try:
                return one_roundtrip_s(data)
            finally:
                uninstall_profiler()
        return one_roundtrip_s(data)

    for mode in modes:  # warm caches/allocators on every path first
        run(mode)
    for _ in range(repeats):
        for mode in modes:
            times[mode].append(run(mode))
    get_tracer().clear()
    return times


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def paired_overhead(
    numer: list[float], denom: list[float], floor_s: float
) -> float:
    """Median of per-round ``numer[i]/denom[i] - 1`` (drift-immune)."""
    return _median(
        [n / max(d, floor_s) - 1.0 for n, d in zip(numer, denom)]
    )


def _noop() -> None:
    pass


def check_noop_allocation(n_calls: int, budget_bytes: int) -> tuple[int, bool]:
    """Net bytes retained by ``n_calls`` disabled instrumentation entries.

    With tracing off and no profiler installed, ``span()`` entries, the
    compressor trace wrappers, and ``run_traced`` must not buffer
    anything: tracemalloc's net traced allocation over a measured round
    must stay under ``budget_bytes`` (a small slack for interned caches),
    and the tracer buffer must stay empty.  Returns
    ``(net_retained_bytes, ok)``.
    """
    import gc

    enable_tracing(False)
    tracer = get_tracer()
    tracer.clear()
    comp = get_compressor("SZ_T")
    data = np.linspace(1.0, 2.0, 4096).astype(np.float32)
    blob = comp.compress(data, RelativeBound(1e-3))

    def one_round() -> None:
        for _ in range(n_calls):
            with span("noop", codec="SZ_T"):
                pass
        for _ in range(64):
            run_traced(_noop)
        comp.decompress(blob)

    one_round()  # warm caches/allocators outside the measurement
    gc.collect()
    tracemalloc.start()
    try:
        before = tracemalloc.get_traced_memory()[0]
        one_round()
        gc.collect()
        retained = tracemalloc.get_traced_memory()[0] - before
    finally:
        tracemalloc.stop()
    buffered = bool(tracer.render())
    return retained, (retained <= budget_bytes and not buffered)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="max tolerated relative overhead (default 0.05 = 5%%)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="rounds per mode, best-of (default 5)")
    parser.add_argument("--floor-s", type=float, default=0.005,
                        help="absolute-seconds floor for the untraced baseline "
                             "(default 0.005); a near-zero denominator would "
                             "turn scheduler jitter into huge phantom relative "
                             "overheads, so the ratio is taken against at "
                             "least this much")
    parser.add_argument("--profile-hz", type=float, default=0.0,
                        help="also measure the sampling profiler's overhead "
                             "at this rate (0 = skip; CI uses 97)")
    parser.add_argument("--profile-threshold", type=float, default=0.05,
                        help="max tolerated profiler overhead vs the traced "
                             "run (default 0.05 = 5%%)")
    parser.add_argument("--alloc-calls", type=int, default=20000,
                        help="disabled span entries in the no-op allocation "
                             "check (default 20000)")
    parser.add_argument("--alloc-budget", type=int, default=65536,
                        help="max net bytes those entries may retain "
                             "(default 64 KiB of cache slack)")
    args = parser.parse_args(argv)
    if args.floor_s <= 0:
        parser.error("--floor-s must be positive")
    if args.profile_hz < 0:
        parser.error("--profile-hz must be >= 0")

    data = make_field()
    times = measure_modes(data, args.repeats, args.profile_hz)
    off_s, on_s = min(times["off"]), min(times["on"])

    # The --floor-s guard protects the per-round ratios against a
    # near-zero baseline: on a fast machine (or a tiny field) a round
    # can approach timer noise, where "on/off - 1" would amplify
    # microseconds of jitter into a spurious failure.
    overhead = paired_overhead(times["on"], times["off"], args.floor_s)
    print(f"round-trip over {args.repeats} interleaved rounds: "
          f"traced best {on_s * 1e3:.2f} ms, untraced best {off_s * 1e3:.2f} ms, "
          f"median paired overhead {overhead * 100:+.2f}% "
          f"(budget {args.threshold * 100:.0f}%)")
    failed = False
    if overhead > args.threshold:
        print("FAIL: tracing overhead exceeds budget", file=sys.stderr)
        failed = True

    if args.profile_hz > 0:
        # Profiler overhead vs the traced rounds (the profiler always
        # runs alongside tracing: samples need spans for attribution).
        prof_s = min(times["prof"])
        prof_overhead = paired_overhead(times["prof"], times["on"], args.floor_s)
        print(f"profiler at {args.profile_hz:g} Hz: "
              f"best {prof_s * 1e3:.2f} ms vs {on_s * 1e3:.2f} ms traced, "
              f"median paired overhead {prof_overhead * 100:+.2f}% "
              f"(budget {args.profile_threshold * 100:.0f}%)")
        if prof_overhead > args.profile_threshold:
            print("FAIL: profiler overhead exceeds budget", file=sys.stderr)
            failed = True

    retained, alloc_ok = check_noop_allocation(args.alloc_calls, args.alloc_budget)
    print(f"no-op fast path: {retained:+d} net bytes retained over "
          f"{args.alloc_calls} disabled span entries "
          f"(budget {args.alloc_budget} B)")
    if not alloc_ok:
        print("FAIL: disabled instrumentation retains memory per call "
              "(or buffered spans with tracing off)", file=sys.stderr)
        failed = True

    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
