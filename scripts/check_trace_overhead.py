#!/usr/bin/env python
"""Fail CI when the tracing layer's disabled-mode overhead exceeds a budget.

Usage::

    python scripts/check_trace_overhead.py [--threshold 0.05] [--repeats 5]

Times an SZ_T round-trip on a synthetic 64^3 field twice -- once with
tracing enabled, once disabled -- taking the best of ``--repeats`` runs
each (best-of defends against scheduler noise on shared CI runners).
Exits 1 when ``enabled/disabled - 1`` exceeds the threshold, which is the
acceptance bar for the observability layer: instrumentation must stay out
of the hot path when ``REPRO_TRACE=off``.

The enabled-mode run keeps the tracer buffer cleared between rounds so
the measurement covers span recording, not buffer growth.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro import RelativeBound, compress, decompress
from repro.observe import enable_tracing, get_tracer


def make_field(n: int = 64) -> np.ndarray:
    rng = np.random.default_rng(42)
    mags = rng.lognormal(mean=0.0, sigma=1.5, size=(n, n, n))
    signs = rng.choice([-1.0, 1.0], size=mags.shape)
    return (mags * signs).astype(np.float32)


def best_roundtrip_s(data: np.ndarray, repeats: int) -> float:
    bound = RelativeBound(1e-3)
    best = float("inf")
    for _ in range(repeats):
        get_tracer().clear()
        t0 = time.perf_counter()
        decompress(compress(data, bound, compressor="SZ_T"))
        best = min(best, time.perf_counter() - t0)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="max tolerated relative overhead (default 0.05 = 5%%)")
    parser.add_argument("--repeats", type=int, default=5,
                        help="rounds per mode, best-of (default 5)")
    parser.add_argument("--floor-s", type=float, default=0.005,
                        help="absolute-seconds floor for the untraced baseline "
                             "(default 0.005); a near-zero denominator would "
                             "turn scheduler jitter into huge phantom relative "
                             "overheads, so the ratio is taken against at "
                             "least this much")
    args = parser.parse_args(argv)
    if args.floor_s <= 0:
        parser.error("--floor-s must be positive")

    data = make_field()
    # Warm up caches/allocators on both code paths before measuring.
    enable_tracing(False)
    best_roundtrip_s(data, 1)
    enable_tracing(True)
    best_roundtrip_s(data, 1)

    enable_tracing(False)
    off_s = best_roundtrip_s(data, args.repeats)
    enable_tracing(True)
    on_s = best_roundtrip_s(data, args.repeats)
    get_tracer().clear()

    # Guard the ratio against a near-zero baseline: on a fast machine (or a
    # tiny field) off_s can approach timer noise, where "on/off - 1" would
    # amplify microseconds of jitter into a spurious failure.
    denom = max(off_s, args.floor_s)
    overhead = on_s / denom - 1.0
    floored = " (floored baseline)" if denom != off_s else ""
    print(f"round-trip best-of-{args.repeats}: "
          f"traced {on_s * 1e3:.2f} ms, untraced {off_s * 1e3:.2f} ms, "
          f"overhead {overhead * 100:+.2f}%{floored} "
          f"(budget {args.threshold * 100:.0f}%)")
    if overhead > args.threshold:
        print("FAIL: tracing overhead exceeds budget", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
