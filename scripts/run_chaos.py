#!/usr/bin/env python
"""Seeded crash-point chaos run for CI: kill, resume, verify, audit.

Builds a small multi-chunk field, then drives the chaos harness
(:func:`repro.testing.chaos.chaos_compress`) through the full
kill-at-every-crash-point enumeration of a journaled compress job:
every case is killed at one durability boundary, resumed with
``resume_job``, and checked for the recovery invariants (no torn
container, resume converges, bytes identical to an uninterrupted run).
The reference container is then audited against the original field so
the point-wise relative bound is proven to hold through the journal
path, and one interrupted journal is snapshotted for the CI artifact
before being resumed.

Usage:
    python scripts/run_chaos.py --seed 0 --report chaos-report.json \
        [--sample N] [--workdir DIR] [--ladder GZIP] [--rel-bound 1e-3]

Exit 0 when every crash point recovered and the audit is clean; exit 1
otherwise (the report records which points failed).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile

import numpy as np

from repro import RelativeBound
from repro.observe.audit import audit_stream
from repro.resilience import resume_job, run_compress_job
from repro.testing import CrashPoint, chaos_compress, kill_at


def build_field(seed: int, path: str, shape=(64, 64)) -> np.ndarray:
    rng = np.random.default_rng(seed)
    mags = rng.lognormal(mean=0.0, sigma=1.5, size=shape)
    signs = rng.choice([-1.0, 1.0], size=shape)
    field = (mags * signs).astype(np.float32)
    field.tofile(path)
    return field


def snapshot_journal(field, input_path: str, workdir: str, bound, spec) -> str:
    """Kill one job mid-flight, copy its journal for the artifact, resume."""
    out = os.path.join(workdir, "artifact.rpz")
    jdir = out + ".journal"
    try:
        with kill_at(6):  # mid first chunk wave
            run_compress_job(input_path, out, bound,
                             shape=field.shape, **spec)
    except CrashPoint:
        pass
    keep = os.path.join(workdir, "interrupted.journal")
    shutil.copytree(jdir, keep)
    resume_job(jdir)
    return keep


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--sample", type=int, default=None,
                    help="limit the enumeration to N seed-chosen points")
    ap.add_argument("--rel-bound", type=float, default=1e-3)
    ap.add_argument("--ladder", default="GZIP",
                    help="fallback rungs below SZ_T ('' = no ladder)")
    ap.add_argument("--report", default="chaos-report.json")
    ap.add_argument("--workdir", default=None,
                    help="working directory (kept; default: a temp dir)")
    args = ap.parse_args(argv)

    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    os.makedirs(workdir, exist_ok=True)
    input_path = os.path.join(workdir, "field.raw")
    field = build_field(args.seed, input_path)
    bound = RelativeBound(args.rel_bound)
    spec = {"compressor": "SZ_T", "chunk_bytes": 4096, "executor": "serial",
            "workers": 1}
    if args.ladder:
        spec["ladder"] = args.ladder.split(">")

    report = chaos_compress(input_path, bound, workdir, sample=args.sample,
                            seed=args.seed, shape=field.shape, **spec)
    print(f"chaos: {report.summary()}")

    with open(os.path.join(workdir, "reference.rpz"), "rb") as fh:
        audit = audit_stream(fh.read(), field, check_theorem3=False)
    print(f"audit: {'OK' if audit.ok else 'BOUND VIOLATED'}")

    journal_copy = snapshot_journal(field, input_path, workdir, bound, spec)

    ok = report.ok and audit.ok
    with open(args.report, "w") as fh:
        json.dump({
            "seed": args.seed,
            "ok": ok,
            "chaos": report.to_dict(),
            "audit": audit.to_dict(),
            "workdir": workdir,
            "journal_artifact": journal_copy,
        }, fh, indent=2, default=str)
    print(f"wrote {args.report} (workdir {workdir})")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
