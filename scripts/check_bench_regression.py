#!/usr/bin/env python
"""Gate CI on benchmark regressions against committed baselines.

Usage::

    python scripts/check_bench_regression.py \
        [--fresh-dir .] [--baseline-dir benchmarks/baselines] \
        [--throughput-tolerance 0.10] [--ratio-tolerance 0.02] \
        [--update-baselines]

Compares every fresh ``BENCH_<name>.json`` (written by the benchmark
suite, see ``benchmarks/_emit.py``) against the committed baseline of the
same name and fails (exit 1) on:

* **throughput** -- a test's MB/s dropping more than the tolerance
  (default 10%).  With three or more comparable tests the per-test
  fresh/baseline factors are first normalized by their median, which
  cancels a uniform machine-speed difference between the baseline host
  and the CI runner and isolates *relative* regressions (one test
  getting slower than its peers).  With fewer tests the factors are
  compared absolutely -- noisier, so prefer wider tolerances there.
* **compression ratio** -- deterministic, so compared absolutely: a drop
  beyond the tolerance (default 2%) fails; improvements always pass.
* **bound conformance** -- any fresh record carrying both
  ``max_rel_err`` and ``rel_bound`` with ``max_rel_err > rel_bound``
  fails unconditionally: the paper's guarantee is not a tolerance.
* **error quality** -- records carrying the point-wise error summary
  (``rel_p99`` / ``rel_bias``, stamped by ``benchmarks/_emit.py``'s
  ``quality_info``) are compared against the baseline's: the p99
  relative error growing beyond ``--quality-tolerance``, or the signed
  bias magnitude growing beyond the tolerance of the baseline's
  magnitude, fails.  The stream can honor the hard max-error bound
  while typical-point accuracy quietly degrades; this gate catches
  that.  Baselines recorded before quality stamping lack the keys and
  are skipped, so the gate bootstraps cleanly.
* **safeguard overhead** -- fresh records paired via ``overhead_pair`` /
  ``overhead_role`` extra-info (``benchmarks/bench_safeguards.py``): the
  ``safeguarded`` member failing to stay within its declared
  ``overhead_budget`` of its same-run ``baseline`` partner fails.  Like
  the bound check this needs no committed baseline, so it also gates
  fresh reports that lack one.
* **coverage** -- a baseline test missing from the fresh report, or a
  baseline file with no fresh counterpart (a silently skipped benchmark
  reads as "no regression" otherwise).
* **codec path** -- a test whose ``codec_path`` differs from the
  baseline's fails: timings taken with different entropy-coder
  implementations are not comparable, so a deliberate coder change must
  re-record its baselines with ``--update-baselines``.  Baselines written
  before path stamping are read as ``"scalar"``.
* **vectorization speedup** -- the ``table3`` SZ_T round trip must run at
  least ``--min-speedup`` times faster than the frozen pre-vectorization
  reference (the scalar-coder baseline committed before the batch Huffman
  + fused quantizer work), after normalizing by the preprocessing tests,
  which run code untouched by the vectorization and therefore anchor the
  host's speed relative to the reference host.

* **ledger trend** (opt-in via ``--ledger results/ledger.jsonl``) -- the
  fresh run is additionally compared against a *synthetic* baseline
  built from the perf ledger: per test, the median MB/s and ratio over
  the last ``--ledger-window`` runs (the fresh run's own appended entry
  is excluded via its ``run_id`` stamp).  This catches slow drift that a
  single frozen baseline file misses -- a 3%/PR regression never trips a
  10% point gate but moves the trailing median.  Uses the same
  median-normalized throughput comparison, with its own
  ``--ledger-tolerance``; an empty or too-short ledger is a note, not a
  failure, so the gate bootstraps cleanly.

Fresh tests without a baseline are reported but do not fail; run with
``--update-baselines`` to copy the fresh reports over the baselines
(the intended escape hatch after a deliberate perf change -- commit the
result; see CONTRIBUTING.md).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import shutil
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

DEFAULT_BASELINE_DIR = os.path.join("benchmarks", "baselines")

#: Bench-record keys that are never compared as metrics.
_META_KEYS = {"test", "group", "rounds", "spans", "codec_path"}

#: Frozen pre-vectorization reference for the speedup gate: the committed
#: BENCH_table3.json of the scalar (per-symbol loop) Huffman coder.  The
#: preprocessing tests exercise code the vectorization did not touch, so
#: (fresh preprocessing MB/s) / (reference preprocessing MB/s) estimates
#: how fast the current host is relative to the reference host, letting
#: the gate assert an algorithmic speedup rather than a hardware one.
_PREVEC_REFERENCE = {
    "report": "BENCH_table3.json",
    "test": "test_sz_t_roundtrip_traced",
    "roundtrip_MB_s": 1.199,
    "anchor_tests": (
        "test_preprocessing[base2]",
        "test_preprocessing[base_e]",
        "test_preprocessing[base10]",
    ),
    "anchor_MB_s": (722.974 + 754.153 + 764.227) / 3.0,
}


def load_payload(path: str) -> dict:
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("version") != 1:
        raise ValueError(f"{path}: unsupported report version {payload.get('version')!r}")
    return payload


def load_report(path: str) -> dict[str, dict]:
    """``{test name: record}`` from one BENCH_*.json."""
    payload = load_payload(path)
    return {rec["test"]: rec for rec in payload.get("records", []) if "test" in rec}


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def check_throughput(
    base: dict[str, dict], fresh: dict[str, dict], tolerance: float
) -> tuple[list[str], list[str]]:
    """(failures, notes) for the MB/s comparison."""
    factors: dict[str, float] = {}
    for test, b in base.items():
        f = fresh.get(test)
        if f is None:
            continue
        b_tp, f_tp = b.get("MB_per_s"), f.get("MB_per_s")
        if isinstance(b_tp, (int, float)) and isinstance(f_tp, (int, float)) and b_tp > 0:
            factors[test] = f_tp / b_tp
    if not factors:
        return [], ["no comparable throughput records"]
    notes, failures = [], []
    if len(factors) >= 3:
        norm = _median(list(factors.values()))
        if norm <= 0:
            return [f"median throughput factor is {norm:.3f} (all tests collapsed)"], []
        notes.append(
            f"machine-speed normalization: median fresh/baseline factor {norm:.3f} "
            f"over {len(factors)} tests"
        )
    else:
        norm = 1.0
        notes.append(
            f"only {len(factors)} comparable test(s): absolute throughput "
            "comparison (no machine-speed normalization)"
        )
    for test, factor in sorted(factors.items()):
        relative = factor / norm
        if relative < 1.0 - tolerance:
            failures.append(
                f"throughput regression in {test}: {relative:.3f}x of baseline "
                f"(tolerance {1.0 - tolerance:.2f}x"
                + (", median-normalized)" if norm != 1.0 else ")")
            )
    return failures, notes


def check_ratio(
    base: dict[str, dict], fresh: dict[str, dict], tolerance: float
) -> list[str]:
    failures = []
    for test, b in sorted(base.items()):
        f = fresh.get(test)
        if f is None:
            continue
        b_r, f_r = b.get("ratio"), f.get("ratio")
        if isinstance(b_r, (int, float)) and isinstance(f_r, (int, float)) and b_r > 0:
            if f_r < b_r * (1.0 - tolerance):
                failures.append(
                    f"compression-ratio regression in {test}: "
                    f"{b_r:.3f} -> {f_r:.3f} (tolerance {tolerance * 100:.0f}%)"
                )
    return failures


def check_bounds(fresh: dict[str, dict]) -> list[str]:
    """Bound violations in fresh records are failures regardless of baseline."""
    failures = []
    for test, rec in sorted(fresh.items()):
        max_rel, bound = rec.get("max_rel_err"), rec.get("rel_bound")
        if isinstance(max_rel, (int, float)) and isinstance(bound, (int, float)):
            if max_rel > bound:
                failures.append(
                    f"bound violation in {test}: max rel error {max_rel:.3e} "
                    f"exceeds the relative bound {bound:.3e}"
                )
    return failures


def check_quality(
    base: dict[str, dict], fresh: dict[str, dict], tolerance: float
) -> tuple[list[str], list[str]]:
    """(failures, notes) for point-wise error-quality drift.

    Per test, when both records carry the key (baselines recorded before
    quality stamping are skipped):

    * ``rel_p99`` growing more than ``tolerance`` beyond the baseline's
      fails -- the stream still honors the hard bound, but typical-point
      accuracy degraded;
    * ``rel_bias`` magnitude growing beyond ``tolerance`` of the
      baseline's magnitude fails, with the reference floored at 1e-9 so
      a near-zero baseline bias doesn't turn any nonzero fresh bias
      into a failure.

    Improvements (smaller p99, smaller |bias|) always pass.
    """
    failures, notes = [], []
    compared = 0
    for test, b in sorted(base.items()):
        f = fresh.get(test)
        if f is None:
            continue
        b_p99, f_p99 = b.get("rel_p99"), f.get("rel_p99")
        if (
            isinstance(b_p99, (int, float))
            and isinstance(f_p99, (int, float))
            and b_p99 > 0
        ):
            compared += 1
            if f_p99 > b_p99 * (1.0 + tolerance):
                failures.append(
                    f"quality regression in {test}: p99 rel error "
                    f"{b_p99:.3e} -> {f_p99:.3e} "
                    f"(tolerance {tolerance * 100:.0f}%)"
                )
        b_bias, f_bias = b.get("rel_bias"), f.get("rel_bias")
        if isinstance(b_bias, (int, float)) and isinstance(f_bias, (int, float)):
            floor = max(abs(b_bias), 1e-9)
            if abs(f_bias) > floor * (1.0 + tolerance):
                failures.append(
                    f"quality regression in {test}: signed rel bias "
                    f"{b_bias:+.3e} -> {f_bias:+.3e} "
                    f"(tolerance {tolerance * 100:.0f}% of baseline magnitude)"
                )
    if compared and not failures:
        notes.append(
            f"quality gate: p99 rel error and bias within tolerance "
            f"({compared} test(s))"
        )
    return failures, notes


def check_safeguard_overhead(fresh: dict[str, dict]) -> tuple[list[str], list[str]]:
    """(failures, notes) for declared baseline/safeguarded overhead pairs.

    Records tagged ``overhead_pair`` + ``overhead_role`` are compared
    within the same fresh report: the ``safeguarded`` member may not run
    more than ``overhead_budget`` (declared on it) slower than its
    ``baseline`` partner.  Both members come from the same run on the same
    host, so the comparison is baseline-file-independent -- like the bound
    check, it gates fresh reports that have no committed baseline yet.
    """
    pairs: dict[str, dict[str, dict]] = {}
    for test, rec in fresh.items():
        pair, role = rec.get("overhead_pair"), rec.get("overhead_role")
        if isinstance(pair, str) and role in ("baseline", "safeguarded"):
            pairs.setdefault(pair, {})[role] = dict(rec, test=test)
    failures, notes = [], []
    for pair, members in sorted(pairs.items()):
        if set(members) != {"baseline", "safeguarded"}:
            failures.append(
                f"overhead pair {pair!r} is incomplete: have "
                f"{sorted(members)} (both roles must run)"
            )
            continue
        # A record may carry an explicit ``overhead_time_s`` -- a
        # paired-design estimate (e.g. median off-round plus the median
        # of per-round deltas) for pairs whose true delta is far below
        # the round-to-round noise, where independent min-of-rounds per
        # side would just compare two noise draws.  Otherwise
        # min-of-rounds when available: the overhead is a ~10% effect,
        # and the mean soaks up GC/scheduler noise that the min does not.
        def _time(rec: dict):
            for key in ("overhead_time_s", "min_s", "mean_s"):
                if isinstance(rec.get(key), (int, float)):
                    return rec[key]
            return None

        base_s = _time(members["baseline"])
        safe_s = _time(members["safeguarded"])
        budget = members["safeguarded"].get("overhead_budget")
        if not all(isinstance(v, (int, float)) for v in (base_s, safe_s, budget)) \
                or base_s <= 0:
            failures.append(
                f"overhead pair {pair!r}: missing "
                f"overhead_time_s/min_s/mean_s/overhead_budget"
            )
            continue
        overhead = safe_s / base_s - 1.0
        notes.append(
            f"safeguard overhead {pair!r}: {overhead * 100:+.1f}% "
            f"(budget {budget * 100:.0f}%)"
        )
        if overhead > budget:
            failures.append(
                f"safeguard overhead regression in {pair!r}: safeguarded run "
                f"is {overhead * 100:.1f}% slower than its baseline "
                f"(budget {budget * 100:.0f}%)"
            )
    return failures, notes


def check_codec_path(base: dict[str, dict], fresh: dict[str, dict]) -> list[str]:
    """Fail tests whose entropy-coder variant differs from the baseline's.

    A throughput comparison between different coder implementations is
    meaningless -- a 10x vectorization win would mask any amount of
    regression elsewhere (and vice versa).  Baselines recorded before
    stamping existed are treated as ``"scalar"``, the only variant then.
    """
    failures = []
    for test, f in sorted(fresh.items()):
        b = base.get(test)
        f_path = f.get("codec_path")
        if b is None or f_path is None:
            continue
        b_path = b.get("codec_path", "scalar")
        if f_path != b_path:
            failures.append(
                f"codec-path mismatch in {test}: baseline recorded with "
                f"{b_path!r}, fresh run used {f_path!r}; timings are not "
                "comparable across coder implementations -- if the change is "
                "deliberate, re-record with --update-baselines"
            )
    return failures


def check_speedup(fresh: dict[str, dict], min_speedup: float) -> tuple[list[str], list[str]]:
    """(failures, notes) for the vectorization speedup gate.

    Only meaningful for the table3 report; callers gate on the file name.
    """
    ref = _PREVEC_REFERENCE
    rec = fresh.get(ref["test"])
    tp = rec.get("MB_per_s") if rec else None
    if not isinstance(tp, (int, float)) or tp <= 0:
        return [
            f"speedup gate: no fresh throughput for {ref['test']!r} "
            "(benchmark not run?)"
        ], []
    anchors = [
        f.get("MB_per_s")
        for t in ref["anchor_tests"]
        if isinstance((f := fresh.get(t, {})).get("MB_per_s"), (int, float))
        and f["MB_per_s"] > 0
    ]
    notes = []
    if anchors:
        machine = (sum(anchors) / len(anchors)) / ref["anchor_MB_s"]
        notes.append(
            f"speedup gate: host speed {machine:.3f}x of the reference host "
            f"({len(anchors)} preprocessing anchor(s))"
        )
    else:
        machine = 1.0
        notes.append(
            "speedup gate: no preprocessing anchors in the fresh report; "
            "comparing absolute throughput (unnormalized)"
        )
    speedup = tp / (ref["roundtrip_MB_s"] * machine)
    notes.append(
        f"speedup gate: round trip {tp:.3f} MB/s is {speedup:.2f}x the "
        f"pre-vectorization reference ({ref['roundtrip_MB_s']:.3f} MB/s, "
        f"machine-normalized; gate {min_speedup:.1f}x)"
    )
    failures = []
    if speedup < min_speedup:
        failures.append(
            f"vectorization speedup regression: {ref['test']} runs "
            f"{speedup:.2f}x the pre-vectorization reference, below the "
            f"required {min_speedup:.1f}x"
        )
    return failures, notes


def ledger_baseline(
    entries: list[dict],
    bench: str,
    window: int,
    exclude_run_id: str | None,
    fresh: dict[str, dict],
) -> tuple[dict[str, dict], int]:
    """Synthetic ``{test: record}`` baseline from a ledger's trailing runs.

    Per test: the median MB/s and ratio over the bench's last ``window``
    entries, skipping the fresh run's own appended entry
    (``exclude_run_id``) and any record taken with a different
    ``codec_path`` than the fresh one (not comparable).  Returns the
    synthetic baseline and how many runs fed it.
    """
    runs = [
        e for e in entries
        if e.get("bench") == bench and e.get("run_id") != exclude_run_id
    ]
    runs.sort(key=lambda e: e.get("ts") or 0.0)
    runs = runs[-window:]
    values: dict[str, dict[str, list[float]]] = {}
    for entry in runs:
        for rec in entry.get("records", ()):
            test = rec.get("test")
            if not isinstance(test, str):
                continue
            f_path = fresh.get(test, {}).get("codec_path")
            if f_path is not None and rec.get("codec_path", "scalar") != f_path:
                continue
            slot = values.setdefault(test, {"MB_per_s": [], "ratio": []})
            for key in ("MB_per_s", "ratio"):
                v = rec.get(key)
                if isinstance(v, (int, float)) and v > 0:
                    slot[key].append(float(v))
    synth: dict[str, dict] = {}
    for test, slot in values.items():
        rec: dict = {"test": test}
        for key, vals in slot.items():
            if vals:
                rec[key] = _median(vals)
        if len(rec) > 1:
            synth[test] = rec
    return synth, len(runs)


def check_ledger_trend(
    ledger_path: str,
    fresh_path: str,
    window: int,
    throughput_tol: float,
    ratio_tol: float,
) -> tuple[list[str], list[str]]:
    """(failures, notes) comparing a fresh report to its ledger trend."""
    try:
        from repro.observe.ledger import read_ledger
    except ImportError:  # pragma: no cover - src/ not on the path
        return [], ["ledger gate skipped: repro package not importable"]
    payload = load_payload(fresh_path)
    bench = payload.get("bench")
    run_id = (payload.get("stamp") or {}).get("run_id")
    fresh = {r["test"]: r for r in payload.get("records", []) if "test" in r}
    entries = read_ledger(ledger_path, strict=False)
    synth, n_runs = ledger_baseline(entries, bench, window, run_id, fresh)
    if not synth:
        return [], [
            f"ledger trend: no prior runs for bench {bench!r} in "
            f"{ledger_path} (gate bootstraps once history accumulates)"
        ]
    notes = [
        f"ledger trend: comparing against the median of the last "
        f"{n_runs} run(s), {len(synth)} test(s)"
    ]
    failures, extra = check_throughput(synth, fresh, throughput_tol)
    notes.extend(f"ledger trend: {n}" for n in extra)
    failures.extend(check_ratio(synth, fresh, ratio_tol))
    return [f"ledger trend: {f}" for f in failures], notes


def check_coverage(base: dict[str, dict], fresh: dict[str, dict]) -> tuple[list[str], list[str]]:
    missing = sorted(set(base) - set(fresh))
    new = sorted(set(fresh) - set(base))
    failures = [f"baseline test {t!r} missing from the fresh report" for t in missing]
    notes = [
        f"new test {t!r} has no baseline (run --update-baselines to record one)"
        for t in new
    ]
    return failures, notes


def compare_file(
    baseline_path: str,
    fresh_path: str,
    throughput_tol: float,
    ratio_tol: float,
    min_speedup: float = 0.0,
    quality_tol: float = 0.25,
) -> tuple[list[str], list[str]]:
    base = load_report(baseline_path)
    fresh = load_report(fresh_path)
    failures: list[str] = []
    notes: list[str] = []
    for fails, extra in (
        check_throughput(base, fresh, throughput_tol),
        check_coverage(base, fresh),
        check_quality(base, fresh, quality_tol),
    ):
        failures.extend(fails)
        notes.extend(extra)
    failures.extend(check_ratio(base, fresh, ratio_tol))
    failures.extend(check_codec_path(base, fresh))
    failures.extend(check_bounds(fresh))
    fails, extra = check_safeguard_overhead(fresh)
    failures.extend(fails)
    notes.extend(extra)
    if min_speedup > 0 and os.path.basename(fresh_path) == _PREVEC_REFERENCE["report"]:
        fails, extra = check_speedup(fresh, min_speedup)
        failures.extend(fails)
        notes.extend(extra)
    return failures, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh-dir", default=".",
                        help="directory holding the freshly generated "
                             "BENCH_*.json reports (default: repo root)")
    parser.add_argument("--baseline-dir", default=DEFAULT_BASELINE_DIR,
                        help=f"committed baselines (default {DEFAULT_BASELINE_DIR})")
    parser.add_argument("--throughput-tolerance", type=float, default=0.10,
                        help="max tolerated throughput drop after median "
                             "normalization (default 0.10 = 10%%)")
    parser.add_argument("--ratio-tolerance", type=float, default=0.02,
                        help="max tolerated compression-ratio drop "
                             "(default 0.02 = 2%%)")
    parser.add_argument("--quality-tolerance", type=float, default=0.25,
                        help="max tolerated growth of the p99 relative "
                             "error (and of the signed-bias magnitude) vs "
                             "the baseline (default 0.25 = 25%%; the bench "
                             "inputs are deterministic, so real drift means "
                             "a code change -- re-record deliberate changes "
                             "with --update-baselines)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required table3 round-trip speedup over the "
                             "frozen pre-vectorization reference, after "
                             "machine normalization (default 5.0; 0 disables). "
                             "Measured speedup on the reference workload is "
                             "7.6x-10x depending on run noise; the default "
                             "leaves headroom so the gate trips on real "
                             "regressions, not scheduler jitter")
    parser.add_argument("--update-baselines", action="store_true",
                        help="copy the fresh reports over the baselines "
                             "instead of comparing (commit the result)")
    parser.add_argument("--ledger", default=None, metavar="PATH",
                        help="also gate on the perf-ledger trend: compare "
                             "each fresh report to the median of its last "
                             "--ledger-window runs in this ledger file "
                             "(default: off)")
    parser.add_argument("--ledger-window", type=int, default=5,
                        help="ledger runs feeding the trend median "
                             "(default 5)")
    parser.add_argument("--ledger-tolerance", type=float, default=0.15,
                        help="max tolerated throughput drop vs the ledger "
                             "trend median, after normalization "
                             "(default 0.15 = 15%%; wider than the baseline "
                             "gate because the trailing median drifts)")
    args = parser.parse_args(argv)
    if not 0 < args.throughput_tolerance < 1 or not 0 < args.ratio_tolerance < 1:
        parser.error("tolerances must be in (0, 1)")
    if not 0 < args.quality_tolerance < 1:
        parser.error("--quality-tolerance must be in (0, 1)")
    if args.min_speedup < 0:
        parser.error("--min-speedup must be >= 0")
    if args.ledger is not None and args.ledger_window < 1:
        parser.error("--ledger-window must be >= 1")
    if not 0 < args.ledger_tolerance < 1:
        parser.error("--ledger-tolerance must be in (0, 1)")

    fresh_files = sorted(glob.glob(os.path.join(args.fresh_dir, "BENCH_*.json")))
    if args.update_baselines:
        if not fresh_files:
            print(f"error: no BENCH_*.json in {args.fresh_dir} to promote",
                  file=sys.stderr)
            return 1
        os.makedirs(args.baseline_dir, exist_ok=True)
        for path in fresh_files:
            dest = os.path.join(args.baseline_dir, os.path.basename(path))
            shutil.copyfile(path, dest)
            print(f"baseline updated: {dest}")
        return 0

    baseline_files = sorted(glob.glob(os.path.join(args.baseline_dir, "BENCH_*.json")))
    if not baseline_files:
        if args.ledger is None:
            print(f"error: no baselines in {args.baseline_dir}; run with "
                  "--update-baselines to record them", file=sys.stderr)
            return 1
        # Ledger-only mode: the trend gate below still applies.
        print(f"note: no baselines in {args.baseline_dir}; "
              "gating on the ledger trend only")

    all_failures: list[str] = []
    for baseline_path in baseline_files:
        name = os.path.basename(baseline_path)
        fresh_path = os.path.join(args.fresh_dir, name)
        print(f"== {name}")
        if not os.path.exists(fresh_path):
            all_failures.append(f"{name}: fresh report missing (benchmark not run?)")
            print(f"   FAIL: no fresh report at {fresh_path}")
            continue
        failures, notes = compare_file(
            baseline_path, fresh_path,
            args.throughput_tolerance, args.ratio_tolerance,
            args.min_speedup, args.quality_tolerance,
        )
        for note in notes:
            print(f"   note: {note}")
        for failure in failures:
            print(f"   FAIL: {failure}")
        if not failures:
            print("   OK")
        all_failures.extend(f"{name}: {f}" for f in failures)
    for path in fresh_files:
        name = os.path.basename(path)
        if os.path.exists(os.path.join(args.baseline_dir, name)):
            continue
        # No committed baseline yet -- the baseline-independent gates
        # (bound conformance, safeguard overhead pairs) still apply.
        print(f"== {name}\n   note: no baseline (run --update-baselines)")
        fresh = load_report(path)
        failures = check_bounds(fresh)
        fails, notes = check_safeguard_overhead(fresh)
        failures.extend(fails)
        for note in notes:
            print(f"   note: {note}")
        for failure in failures:
            print(f"   FAIL: {failure}")
        all_failures.extend(f"{name}: {f}" for f in failures)

    if args.ledger is not None:
        for path in fresh_files:
            name = os.path.basename(path)
            print(f"== {name} (ledger trend)")
            failures, notes = check_ledger_trend(
                args.ledger, path,
                args.ledger_window, args.ledger_tolerance, args.ratio_tolerance,
            )
            for note in notes:
                print(f"   note: {note}")
            for failure in failures:
                print(f"   FAIL: {failure}")
            if not failures:
                print("   OK")
            all_failures.extend(f"{name}: {f}" for f in failures)

    if all_failures:
        print(f"\nFAIL: {len(all_failures)} regression(s)", file=sys.stderr)
        return 1
    print("\nOK: all benchmarks within tolerance of their baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
