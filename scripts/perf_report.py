#!/usr/bin/env python
"""Render a markdown perf trend report from the benchmark ledger.

Usage::

    python scripts/perf_report.py [--ledger results/ledger.jsonl] \
        [--last 10] [--out perf_report.md]

Reads the append-only perf ledger that ``benchmarks/_emit.py`` grows on
every benchmark run (see ``repro.observe.ledger``) and renders the trend
report: per-bench tables of latest throughput/ratio with deltas vs the
median of prior runs, sparkline history, and the top regressions and
improvements.  Also available as ``repro perf report``.

Without ``--out`` the markdown goes to stdout.  Exit 0 even for an empty
ledger (the report says so); exit 1 only when the ledger is unreadable.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.observe.ledger import (  # noqa: E402
    LedgerError,
    read_ledger,
    render_trend_report,
    resolve_ledger_path,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ledger",
        default=None,
        help="ledger path (default: $REPRO_LEDGER or <repo>/results/ledger.jsonl)",
    )
    parser.add_argument(
        "--last", type=int, default=10,
        help="trend window: newest N runs per bench (default 10)",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the markdown here instead of stdout",
    )
    parser.add_argument(
        "--lenient", action="store_true",
        help="skip corrupt interior ledger lines instead of failing",
    )
    args = parser.parse_args(argv)
    if args.last < 1:
        parser.error("--last must be >= 1")

    repo_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    path = args.ledger or resolve_ledger_path(repo_dir)
    if not path:
        print("error: ledger disabled (REPRO_LEDGER=off) and no --ledger given",
              file=sys.stderr)
        return 1
    try:
        entries = read_ledger(path, strict=not args.lenient)
    except LedgerError as exc:
        print(f"error: {exc} (re-run with --lenient to skip)", file=sys.stderr)
        return 1
    report = render_trend_report(entries, last_n=args.last)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
        print(f"wrote {args.out} ({len(entries)} ledger entries)")
    else:
        sys.stdout.write(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
