#!/usr/bin/env python
"""Seeded fault-injection gate: repair round-trips over corrupted v3 streams.

Usage::

    PYTHONPATH=src python scripts/check_repair_roundtrip.py \
        [--seed 0] [--trials 25] [--report repair-report.json]

Each trial compresses a random field into a parity-bearing (v3) CHUNKED
stream, injects a random fault pattern whose per-group losses stay
within the parity budget -- chunk bit flips, tail truncation, or parity
damage -- and asserts that :func:`repro.integrity.repair_stream` returns
the *byte-exact* original (so the stream CRC vouches for the repair).
A final over-budget trial asserts clean degradation: losses reported,
no crash, intact chunks still recoverable.

Every random choice derives from ``--seed``, so a CI failure reproduces
exactly by re-running with the same seed locally.  The per-trial
``RepairReport`` dicts are written to ``--report`` for artifact upload.
Exit status: 0 = every trial repaired byte-exactly, 1 = any mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro import RelativeBound, verify_stream
from repro.core.chunked import ChunkedCompressor
from repro.integrity import repair_stream
from repro.testing import corrupt_chunk, corrupt_section, truncate

BOUND = RelativeBound(1e-2)


def make_stream(rng: np.random.Generator, parity: int, group_size: int):
    """A fresh v3 stream over a random lognormal field."""
    n_chunks = int(rng.integers(3, 13))
    elems_per_chunk = 1000
    data = rng.lognormal(0.0, 1.0, size=n_chunks * elems_per_chunk)
    data = data.astype(np.float32)
    cc = ChunkedCompressor(
        chunk_bytes=elems_per_chunk * 4,
        parity=parity,
        group_size=group_size,
        executor="serial",
    )
    blob = cc.compress(data, BOUND)
    return blob, cc.last_chunk_count


def inject(rng: np.random.Generator, blob: bytes, n_chunks: int,
           parity: int, group_size: int) -> tuple[bytes, str]:
    """One random repairable fault pattern: ``(damaged_bytes, label)``."""
    kind = rng.choice(["chunks", "truncate", "parity"])
    if kind == "truncate":
        # Cut into the last chunk only -- one erasure in the last group.
        cut = int(rng.integers(1, 200))
        return truncate(blob, len(blob) - cut), f"truncate[-{cut}]"
    if kind == "parity":
        damaged = corrupt_section(blob, "parity", n_bits=1,
                                  seed=int(rng.integers(2**31)))
        return damaged, "parity-bits"
    damaged = blob
    hit = []
    for g in range(0, n_chunks, group_size):
        members = list(range(g, min(g + group_size, n_chunks)))
        n_lost = int(rng.integers(1, min(parity, len(members)) + 1))
        for index in rng.choice(members, size=n_lost, replace=False):
            damaged = corrupt_chunk(damaged, int(index), n_bits=2,
                                    seed=int(rng.integers(2**31)))
            hit.append(int(index))
    return damaged, f"chunks{sorted(hit)}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trials", type=int, default=25)
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write per-trial RepairReport JSON to PATH")
    args = parser.parse_args(argv)

    rng = np.random.default_rng(args.seed)
    records = []
    failures = 0
    for trial in range(args.trials):
        parity = int(rng.integers(1, 3))
        group_size = int(rng.integers(4, 9))
        blob, n_chunks = make_stream(rng, parity, group_size)
        damaged, label = inject(rng, blob, n_chunks, parity, group_size)
        fixed, report = repair_stream(damaged)
        exact = fixed == blob
        ok = report.ok and exact and verify_stream(fixed).ok
        failures += not ok
        records.append({
            "trial": trial, "fault": label, "parity_k": parity,
            "group_size": group_size, "byte_exact": exact,
            "report": report.to_dict(),
        })
        status = "ok" if ok else "FAIL"
        print(f"trial {trial:3d}: k={parity} m={group_size} "
              f"{label:<24s} {report.summary()} [{status}]")

    # Over-budget sanity: more losses than parity must degrade, not crash.
    blob, n_chunks = make_stream(rng, parity=1, group_size=8)
    damaged = blob
    for index in range(min(3, n_chunks)):
        damaged = corrupt_chunk(damaged, index, seed=int(rng.integers(2**31)))
    fixed, report = repair_stream(damaged)
    degraded_ok = (not report.ok) and report.n_lost >= 2
    failures += not degraded_ok
    records.append({
        "trial": "over-budget", "fault": "chunks[0..2] with k=1",
        "byte_exact": False, "report": report.to_dict(),
    })
    print(f"over-budget: {report.summary()} "
          f"[{'ok' if degraded_ok else 'FAIL'}]")

    if args.report:
        with open(args.report, "w") as fh:
            json.dump({"seed": args.seed, "failures": failures,
                       "records": records}, fh, indent=2)
    if failures:
        print(f"FAILED: {failures} trial(s) did not round-trip", file=sys.stderr)
        return 1
    print(f"all {args.trials} repair trials round-tripped byte-exactly "
          f"(seed {args.seed})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
