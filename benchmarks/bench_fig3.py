"""Figure 3 bench: compression and decompression throughput per codec.

The benchmark timings themselves are the figure's content (MB/s =
bytes / mean time).  Reproduced claims (relative ordering of this
library's implementations): FPZIP and ZFP_T lead compression, SZ_T beats
SZ_PWR, ISABELA is slowest; decompression is comparable for all but
ISABELA.
"""

import pytest

from repro.compressors import get_compressor
from repro.experiments.common import PWR_COMPRESSORS, compress_for_relbound

BOUND = 1e-2


@pytest.mark.benchmark(group="fig3-compression-rate", min_rounds=3)
@pytest.mark.parametrize("name", PWR_COMPRESSORS)
def test_compression_rate(benchmark, nyx_dmd, name):
    blob, _ = benchmark(compress_for_relbound, name, nyx_dmd, BOUND)
    benchmark.extra_info["mb_processed"] = round(nyx_dmd.nbytes / 1e6, 2)
    benchmark.extra_info["nbytes"] = nyx_dmd.nbytes
    benchmark.extra_info["out_bytes"] = len(blob)


@pytest.mark.benchmark(group="fig3-decompression-rate", min_rounds=3)
@pytest.mark.parametrize("name", PWR_COMPRESSORS)
def test_decompression_rate(benchmark, nyx_dmd, name):
    blob, _ = compress_for_relbound(name, nyx_dmd, BOUND)
    comp = get_compressor(name)
    benchmark(comp.decompress, blob)
    benchmark.extra_info["mb_produced"] = round(nyx_dmd.nbytes / 1e6, 2)
    benchmark.extra_info["nbytes"] = nyx_dmd.nbytes
