"""Figure 1 bench: ZFP_T rate-distortion point per logarithm base.

Each benchmark produces one (bit-rate, relative-error PSNR) point; the
reproduced claim is that the three bases land on the same curve.
"""

import math

import pytest

from repro.compressors import RelativeBound
from repro.compressors.zfp import ZFPCompressor
from repro.core import TransformedCompressor
from repro.metrics import bit_rate, relative_psnr

BASES = {"base2": 2.0, "base_e": math.e, "base10": 10.0}
BOUND = 1e-2


@pytest.mark.benchmark(group="fig1-zfp_t-rate-distortion", min_rounds=3)
@pytest.mark.parametrize("base_name", list(BASES))
def test_zfp_t_rate_distortion_point(benchmark, nyx_dmd, base_name):
    comp = TransformedCompressor(ZFPCompressor("accuracy"), base=BASES[base_name])
    blob = benchmark(comp.compress, nyx_dmd, RelativeBound(BOUND))
    recon = comp.decompress(blob)
    benchmark.extra_info["bit_rate"] = round(bit_rate(len(blob), nyx_dmd.size), 3)
    benchmark.extra_info["rel_psnr_db"] = round(relative_psnr(nyx_dmd, recon), 2)
    benchmark.extra_info["nbytes"] = nyx_dmd.nbytes
    benchmark.extra_info["out_bytes"] = len(blob)
