"""Table II bench: SZ_T compression per logarithm base.

Regenerates the table's content: each benchmark compresses a NYX field
with one base and records the compression ratio in ``extra_info`` -- the
reproduced claim is that ratios differ by only a few percent across bases
while base 2 is never slower.
"""

import math

import pytest

from repro.compressors import RelativeBound
from repro.compressors.sz import SZCompressor
from repro.core import TransformedCompressor

BASES = {"base2": 2.0, "base_e": math.e, "base10": 10.0}
BOUND = 1e-2


@pytest.mark.benchmark(group="table2-sz_t-per-base", min_rounds=3)
@pytest.mark.parametrize("base_name", list(BASES))
def test_sz_t_compress_per_base(benchmark, nyx_dmd, base_name):
    comp = TransformedCompressor(SZCompressor(), base=BASES[base_name])
    blob = benchmark(comp.compress, nyx_dmd, RelativeBound(BOUND))
    benchmark.extra_info["compression_ratio"] = round(nyx_dmd.nbytes / len(blob), 3)
    benchmark.extra_info["field"] = "NYX/dark_matter_density"
    assert nyx_dmd.nbytes / len(blob) > 1.5


@pytest.mark.benchmark(group="table2-sz_t-velocity", min_rounds=3)
@pytest.mark.parametrize("base_name", list(BASES))
def test_sz_t_velocity_per_base(benchmark, nyx_vx, base_name):
    comp = TransformedCompressor(SZCompressor(), base=BASES[base_name])
    blob = benchmark(comp.compress, nyx_vx, RelativeBound(BOUND))
    benchmark.extra_info["compression_ratio"] = round(nyx_vx.nbytes / len(blob), 3)
    benchmark.extra_info["field"] = "NYX/velocity_x"
