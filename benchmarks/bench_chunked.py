"""Chunked pipeline bench: compress throughput vs. workers and chunk size.

The paper's headline claim is throughput -- the transform adds negligible
overhead, so dump/load speed is gated on how fast the inner codec runs.
``ChunkedCompressor`` turns the monolithic pass into a block decomposition
that scales with worker processes.  This bench reports:

* compress throughput at 1/2/4 workers on a >= 64 MB float32 field
  (process executor; asserts the >= 2x 4-vs-1 speedup whenever the host
  actually has >= 4 usable cores),
* throughput and ratio across chunk sizes 1-16 MB,
* decompress throughput at 1/2/4 workers,

while checking that every chunked stream still satisfies the point-wise
relative bound with an empty patch channel (Lemma 2 holding per chunk).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import ChunkedCompressor, RelativeBound
from repro.core.chunked import chunk_patch_total

BOUND = 1e-3
MB = 2**20


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def big_field() -> np.ndarray:
    """64 MB float32: smooth positive field with mild multi-scale structure."""
    n = 64 * MB // 4
    x = np.linspace(0.0, 200.0 * np.pi, n)
    data = 2.0 + np.sin(x) + 0.1 * np.sin(7.3 * x) + 0.01 * np.cos(131.7 * x)
    return data.astype(np.float32).reshape(4096, -1)


def _check_stream(blob: bytes, data: np.ndarray) -> None:
    recon = ChunkedCompressor(executor="serial").decompress(blob)
    assert np.all(np.abs(recon - data) <= BOUND * np.abs(data))
    assert chunk_patch_total(blob) == 0  # Lemma 2 held in every chunk


@pytest.mark.benchmark(group="chunked-worker-scaling", min_rounds=1)
def test_compress_worker_scaling(benchmark, big_field):
    times: dict[int, float] = {}
    blob = b""
    for workers in (1, 2, 4):
        comp = ChunkedCompressor(
            "SZ_T", chunk_bytes=4 * MB, workers=workers, executor="process"
        )
        t0 = time.perf_counter()
        blob = comp.compress(big_field, RelativeBound(BOUND))
        times[workers] = time.perf_counter() - t0
        benchmark.extra_info[f"MBps_w{workers}"] = round(
            big_field.nbytes / MB / times[workers], 2
        )
    _check_stream(blob, big_field)
    speedup = times[1] / times[4]
    benchmark.extra_info["speedup_4v1"] = round(speedup, 2)
    benchmark.extra_info["cpus"] = _usable_cpus()
    benchmark.extra_info["ratio"] = round(big_field.nbytes / len(blob), 2)

    comp = ChunkedCompressor("SZ_T", chunk_bytes=4 * MB, workers=4, executor="process")
    benchmark.pedantic(
        comp.compress, args=(big_field, RelativeBound(BOUND)), rounds=1, iterations=1
    )
    benchmark.extra_info["nbytes"] = big_field.nbytes
    benchmark.extra_info["out_bytes"] = len(blob)
    if _usable_cpus() >= 4:
        assert speedup >= 2.0, f"4-worker speedup only {speedup:.2f}x"


@pytest.mark.benchmark(group="chunked-chunk-size", min_rounds=1)
@pytest.mark.parametrize("chunk_mb", [1, 4, 16])
def test_compress_chunk_size(benchmark, big_field, chunk_mb):
    comp = ChunkedCompressor("SZ_T", chunk_bytes=chunk_mb * MB, executor="process")
    blob = benchmark.pedantic(
        comp.compress, args=(big_field, RelativeBound(BOUND)), rounds=1, iterations=1
    )
    _check_stream(blob, big_field)
    benchmark.extra_info["chunks"] = comp.last_chunk_count
    benchmark.extra_info["ratio"] = round(big_field.nbytes / len(blob), 2)
    benchmark.extra_info["nbytes"] = big_field.nbytes
    benchmark.extra_info["out_bytes"] = len(blob)


@pytest.mark.benchmark(group="chunked-decompress-scaling", min_rounds=1)
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_decompress_worker_scaling(benchmark, big_field, workers):
    blob = ChunkedCompressor("SZ_T", chunk_bytes=4 * MB, executor="process").compress(
        big_field, RelativeBound(BOUND)
    )
    comp = ChunkedCompressor(workers=workers, executor="process")
    recon = benchmark.pedantic(comp.decompress, args=(blob,), rounds=1, iterations=1)
    assert np.all(np.abs(recon - big_field) <= BOUND * np.abs(big_field))
