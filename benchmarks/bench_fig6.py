"""Figure 6 bench: per-rank profiling + cluster simulation.

Benchmarks the measurement half (real compress/decompress of a NYX shard)
for the three parallel candidates, then runs the GPFS simulation and
records the dump/load speedups at 4096 ranks.  Reproduced claim: SZ_T
dumps and loads fastest, with the advantage growing with rank count.
"""

import pytest

from repro.compressors import PrecisionBound, RelativeBound, get_compressor
from repro.compressors.fpzip import precision_for_relbound
from repro.parallel import SimulatedCluster, measure_profile

BOUND = 1e-2
CANDIDATES = ("SZ_PWR", "FPZIP", "SZ_T")


def _bound_for(name, data):
    if name == "FPZIP":
        return PrecisionBound(precision_for_relbound(BOUND, data.dtype))
    return RelativeBound(BOUND)


@pytest.mark.benchmark(group="fig6-rank-profile", min_rounds=2)
@pytest.mark.parametrize("name", CANDIDATES)
def test_rank_profile(benchmark, nyx_dmd, name):
    comp = get_compressor(name)
    bound = _bound_for(name, nyx_dmd)
    prof = benchmark(measure_profile, comp, nyx_dmd, bound)
    benchmark.extra_info["ratio"] = round(prof.ratio, 3)


@pytest.mark.benchmark(group="fig6-cluster-simulation", min_rounds=5)
def test_cluster_simulation(benchmark, nyx_dmd):
    profiles = [
        measure_profile(get_compressor(n), nyx_dmd, _bound_for(n, nyx_dmd))
        for n in CANDIDATES
    ]
    anchor = 1.4e8 / next(p for p in profiles if p.name == "SZ_T").compress_rate
    profiles = [p.scaled(anchor) for p in profiles]
    cluster = SimulatedCluster()

    def simulate():
        return {p.name: cluster.dump_load(p, 3e9, 4096) for p in profiles}

    result = benchmark(simulate)
    sz_t = result["SZ_T"]
    others_dump = min(b.dump_s for n, b in result.items() if n != "SZ_T")
    others_load = min(b.load_s for n, b in result.items() if n != "SZ_T")
    benchmark.extra_info["dump_speedup_4096"] = round(others_dump / sz_t.dump_s, 3)
    benchmark.extra_info["load_speedup_4096"] = round(others_load / sz_t.load_s, 3)
    assert sz_t.dump_s < others_dump
    assert sz_t.load_s < others_load
