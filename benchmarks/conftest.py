"""Shared benchmark fixtures: session-cached synthetic fields.

Benchmarks run at half linear scale (NYX 32^3, CESM 128x256, HACC 256k,
Hurricane 16x64x64) so a full ``pytest benchmarks/ --benchmark-only``
finishes in minutes while exercising the identical code paths as the
full-scale experiment harness (``repro-experiments run all``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_field

SCALE = 0.5


@pytest.fixture(scope="session")
def nyx_dmd() -> np.ndarray:
    return load_field("NYX", "dark_matter_density", scale=SCALE)


@pytest.fixture(scope="session")
def nyx_vx() -> np.ndarray:
    return load_field("NYX", "velocity_x", scale=SCALE)


@pytest.fixture(scope="session")
def cesm_cld() -> np.ndarray:
    return load_field("CESM-ATM", "CLDHGH", scale=SCALE)


@pytest.fixture(scope="session")
def hacc_vx() -> np.ndarray:
    return load_field("HACC", "velocity_x", scale=SCALE)


@pytest.fixture(scope="session")
def hurricane_cloud() -> np.ndarray:
    return load_field("Hurricane", "CLOUDf48", scale=SCALE)
