"""Shared benchmark fixtures: session-cached synthetic fields.

Benchmarks run at half linear scale (NYX 32^3, CESM 128x256, HACC 256k,
Hurricane 16x64x64) so a full ``pytest benchmarks/ --benchmark-only``
finishes in minutes while exercising the identical code paths as the
full-scale experiment harness (``repro-experiments run all``).

Every benchmark in this directory additionally lands in a machine-readable
``BENCH_<name>.json`` report (one per ``bench_<name>.py``): the
``benchmark`` fixture override below records each test's mean time and
``extra_info`` into :mod:`_emit`, and the session-finish hook writes the
files.  Set ``REPRO_BENCH_DIR`` to redirect them (default: repo root).
"""

from __future__ import annotations

import numpy as np
import pytest

import _emit
from repro.data import load_field

SCALE = 0.5


@pytest.fixture
def benchmark(benchmark, request):
    """pytest-benchmark's fixture, plus automatic BENCH_*.json recording."""
    yield benchmark
    _emit.record_from_fixture(benchmark, request)


def pytest_sessionfinish(session, exitstatus):
    for path in _emit.write_reports():
        print(f"\nwrote {path}")


@pytest.fixture(scope="session")
def nyx_dmd() -> np.ndarray:
    return load_field("NYX", "dark_matter_density", scale=SCALE)


@pytest.fixture(scope="session")
def nyx_vx() -> np.ndarray:
    return load_field("NYX", "velocity_x", scale=SCALE)


@pytest.fixture(scope="session")
def nyx_vx_full() -> np.ndarray:
    """Full-scale NYX velocity (64^3): for per-point overhead budgets.

    Half-scale fields are small enough that fixed per-call costs (metric
    folds, snapshot dicts) dominate any per-point overhead being
    measured; budgets expressed as a fraction of compress time only mean
    something once the work is throughput-bound.
    """
    return load_field("NYX", "velocity_x", scale=1.0)


@pytest.fixture(scope="session")
def cesm_cld() -> np.ndarray:
    return load_field("CESM-ATM", "CLDHGH", scale=SCALE)


@pytest.fixture(scope="session")
def hacc_vx() -> np.ndarray:
    return load_field("HACC", "velocity_x", scale=SCALE)


@pytest.fixture(scope="session")
def hurricane_cloud() -> np.ndarray:
    return load_field("Hurricane", "CLOUDf48", scale=SCALE)
