"""Table IV bench: the strict error-bound test, one benchmark per codec.

Each benchmark compresses NYX dark_matter_density at b_r = 1e-2 with the
compressor's native setting and records bounded-%, Avg/Max E and CR in
``extra_info``.  Reproduced claims: FPZIP/SZ_T/ZFP_T strictly bounded
with zeros kept, SZ_T the best ratio, ZFP_P unbounded.
"""

import pytest

from repro.compressors import get_compressor
from repro.experiments.common import compress_for_relbound
from repro.metrics import bounded_fraction

BOUND = 1e-2
COMPRESSORS = ("ISABELA", "FPZIP", "SZ_PWR", "SZ_T", "ZFP_P", "ZFP_T")


@pytest.mark.benchmark(group="table4-strict-bound", min_rounds=2)
@pytest.mark.parametrize("name", COMPRESSORS)
def test_strict_bound_row(benchmark, nyx_dmd, name):
    blob, setting = benchmark(compress_for_relbound, name, nyx_dmd, BOUND)
    recon = get_compressor(name).decompress(blob)
    stats = bounded_fraction(nyx_dmd, recon, BOUND)
    benchmark.extra_info.update(
        {
            "setting": setting,
            "bounded": stats.bounded_label(),
            "avg_rel_err": float(f"{stats.avg_rel:.3g}"),
            "max_rel_err": float(f"{stats.max_rel:.3g}"),
            "compression_ratio": round(nyx_dmd.nbytes / len(blob), 3),
        }
    )
    if name in ("FPZIP", "SZ_T", "ZFP_T"):
        assert stats.strictly_bounded
        assert stats.zeros_modified == 0
    if name == "ZFP_P":
        assert stats.max_rel > BOUND  # cannot respect point-wise bounds
