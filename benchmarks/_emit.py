"""Machine-readable benchmark reports: one ``BENCH_<name>.json`` per file.

Every benchmark module in this directory feeds records into a session-wide
buffer (the ``benchmark`` fixture override in ``conftest.py`` does it
automatically) and ``write_reports`` -- called from ``pytest_sessionfinish``
-- dumps one JSON file per ``bench_<name>.py`` next to the repo root, e.g.
``BENCH_table3.json``.  CI uploads these as artifacts; the experiment
harness and the perf-trajectory tooling diff them across commits.

Report schema (version 1)::

    {
      "version": 1,
      "bench": "table3",
      "generated_unix": 1754524800.0,
      "records": [
        {
          "test": "test_preprocessing[base2]",
          "group": "table3-preprocessing",
          "mean_s": 0.0123,
          "min_s": 0.0119,            # fastest round: noise-robust estimate
          "rounds": 5,
          "MB_per_s": 812.5,          # when the test declares nbytes
          "ratio": 2.35,              # when the test declares out_bytes
          "spans": [...],             # when the test captures a trace
          "codec_path": "vectorized", # entropy-coder variant in effect
          ...extra_info keys...
        }
      ]
    }

Throughput uses ``extra_info["nbytes"]`` (bytes processed per round) and
ratio uses ``extra_info["out_bytes"]``; tests that already publish a
``ratio``/``compression_ratio`` keep theirs.  Rates are 0.0 -- never
``inf`` -- when no time was recorded, so the files stay JSON-clean.
"""

from __future__ import annotations

import json
import os
import time
import uuid

_RECORDS: dict[str, list[dict]] = {}

#: Env override for where the BENCH_*.json files land (default: repo root).
BENCH_DIR_ENV = "REPRO_BENCH_DIR"

#: Tests whose throughput anchors machine-speed normalization: they run
#: preprocessing code no perf PR has touched, so their MB/s measures the
#: host, not the pipeline.  Stamped into reports and ledger entries as the
#: normalization reference.
_ANCHOR_PREFIX = "test_preprocessing["


def _default_dir() -> str:
    override = os.environ.get(BENCH_DIR_ENV)
    if override:
        return override
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _codec_path() -> str:
    """Entropy-coder variant in effect for this run.

    Stamped into every record so the regression gate can refuse to compare
    timings taken with different coder implementations (e.g. a baseline
    recorded before the vectorized Huffman path existed).  Reports written
    before stamping carry no key; readers treat those as ``"scalar"``.
    """
    try:
        from repro.encoding import huffman
    except Exception:  # pragma: no cover - import breakage mid-refactor
        return "unknown"
    return getattr(huffman, "CODEC_PATH", "scalar")


def record(bench: str, rec: dict) -> None:
    """Append one record to ``BENCH_<bench>.json``'s buffer."""
    _RECORDS.setdefault(bench, []).append(rec)


def record_from_fixture(benchmark, request) -> None:
    """Turn one finished pytest-benchmark fixture into a record.

    Called by the ``benchmark`` fixture override after the test body ran.
    Quietly does nothing when the test never invoked the benchmark (stats
    absent) so mixed files of benchmarks and plain tests work.
    """
    stats = getattr(benchmark, "stats", None)
    if stats is None:
        return
    inner = getattr(stats, "stats", stats)
    mean = getattr(inner, "mean", None)
    if mean is None:
        return
    module = request.node.module.__name__  # e.g. "bench_table3"
    bench = module.removeprefix("bench_")
    rec: dict = {
        "test": request.node.name,
        "group": getattr(stats, "group", None),
        "mean_s": mean,
        "rounds": getattr(inner, "rounds", None),
    }
    min_s = getattr(inner, "min", None)
    if isinstance(min_s, (int, float)):
        rec["min_s"] = min_s
    extra = dict(getattr(benchmark, "extra_info", {}) or {})
    nbytes = extra.get("nbytes")
    if isinstance(nbytes, (int, float)) and nbytes > 0:
        rec["MB_per_s"] = round(nbytes / mean / 1e6, 3) if mean > 0 else 0.0
    out_bytes = extra.get("out_bytes")
    if (
        isinstance(nbytes, (int, float))
        and isinstance(out_bytes, (int, float))
        and out_bytes > 0
    ):
        rec.setdefault("ratio", round(nbytes / out_bytes, 3))
    rec.update(extra)
    rec.setdefault("codec_path", _codec_path())
    record(bench, rec)


#: Flat extra-info keys mirrored from an audit report's error summary.
#: They ride into ``BENCH_*.json`` records and ledger entries so the
#: trend report and the regression gate can watch quality drift the same
#: way they watch throughput.
_QUALITY_KEYS = (
    "rel_p50", "rel_p90", "rel_p99", "rel_bias",
    "abs_p99", "abs_bias", "max_abs",
)


def quality_info(report) -> dict:
    """Flat quality keys from an ``AuditReport``'s point-wise error summary.

    Returns ``{}`` when the report carries no error digest (quality
    collection disabled, or no original available), so callers can merge
    unconditionally: ``benchmark.extra_info.update(quality_info(audit))``.
    """
    summary = getattr(report, "error_summary", None)
    if not isinstance(summary, dict):
        return {}
    out = {}
    for key in _QUALITY_KEYS:
        value = summary.get(key)
        if isinstance(value, (int, float)):
            out[key] = float(value)
    return out


def trace_once(fn, *args, **kwargs):
    """Run ``fn`` once with tracing on; return ``(result, span dicts)``.

    The spans are captured into a private sink, so nothing leaks into the
    process-global buffer and concurrent benchmarks cannot interleave.
    """
    from repro.observe import get_tracer

    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.enabled = True
    try:
        with tracer.capture() as captured:
            result = fn(*args, **kwargs)
    finally:
        tracer.enabled = was_enabled
    return result, [sp.to_dict() for sp in captured]


def _normalization(records: list[dict]) -> dict | None:
    """Machine-speed normalization reference from this run's anchors."""
    anchors = [
        (r["test"], r["MB_per_s"])
        for r in records
        if isinstance(r.get("test"), str)
        and r["test"].startswith(_ANCHOR_PREFIX)
        and isinstance(r.get("MB_per_s"), (int, float))
        and r["MB_per_s"] > 0
    ]
    if not anchors:
        return None
    return {
        "anchor_tests": [t for t, _ in anchors],
        "anchor_MB_s": round(sum(v for _, v in anchors) / len(anchors), 3),
    }


def write_reports(out_dir: str | None = None) -> list[str]:
    """Write one ``BENCH_<name>.json`` per benchmark module with records.

    Every report carries a ``stamp`` (git revision, machine fingerprint,
    unique ``run_id``, normalization reference) and -- unless
    ``REPRO_LEDGER=off`` -- one entry per bench is appended to the perf
    ledger (default ``<repo>/results/ledger.jsonl``) so
    ``scripts/perf_report.py`` and the ledger-trend regression gate see
    the run's history.  Ledger failures never fail the benchmark run.
    """
    from repro.observe import ledger as _ledger

    out_dir = out_dir or _default_dir()
    os.makedirs(out_dir, exist_ok=True)
    repo_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    run_id = uuid.uuid4().hex
    git = _ledger.git_revision(repo_dir)
    machine = _ledger.machine_fingerprint()
    ledger_path = _ledger.resolve_ledger_path(repo_dir)
    written = []
    for bench in sorted(_RECORDS):
        path = os.path.join(out_dir, f"BENCH_{bench}.json")
        records = _RECORDS[bench]
        stamp = {
            "run_id": run_id,
            "git": git,
            "machine": machine,
        }
        norm = _normalization(records)
        if norm:
            stamp["normalization"] = norm
        payload = {
            "version": 1,
            "bench": bench,
            "generated_unix": time.time(),
            "stamp": stamp,
            "records": records,
        }
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=False)
            fh.write("\n")
        written.append(path)
        if ledger_path:
            try:
                entry = _ledger.make_entry(
                    bench, records, run_id,
                    git=git, machine=machine, normalization=norm,
                    ts=payload["generated_unix"],
                )
                _ledger.append_entry(ledger_path, entry)
            except OSError:
                pass  # read-only checkout / full disk: reports still count
    return written


def reset() -> None:
    _RECORDS.clear()
