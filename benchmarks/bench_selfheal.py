"""Self-healing bench: parity encode overhead, repair throughput, watchdog.

Reed-Solomon parity buys chunk-level erasure tolerance; this bench puts
numbers on what it costs:

* parity encode overhead as a fraction of compression wall time at the
  default geometry (asserted < 15%, the CI gate duplicated from
  ``tests/test_selfheal.py`` at benchmark scale),
* storage overhead of the parity sections vs. the v2 stream,
* repair throughput: rebuilding two lost chunks per group from parity,
* watchdog overhead: an armed-but-never-firing per-chunk timeout must
  be free.

No BENCH baseline is committed for this module on purpose -- repair and
parity times are dominated by a handful of GF(256) table passes and too
small/noisy for the median-normalized regression gate; the hard 15%
assertion here is the actual gate.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import RelativeBound
from repro.core.chunked import ChunkedCompressor
from repro.integrity import repair_stream
from repro.observe.metrics import metrics
from repro.testing import corrupt_chunk

BOUND = 1e-3
MB = 2**20


@pytest.fixture(scope="module")
def field() -> np.ndarray:
    """32 MB float32 smooth positive field (8 default-size chunks)."""
    n = 32 * MB // 4
    x = np.linspace(0.0, 120.0 * np.pi, n)
    data = 2.0 + np.sin(x) + 0.1 * np.sin(5.7 * x)
    return data.astype(np.float32)


@pytest.mark.benchmark(group="selfheal-parity-overhead", min_rounds=1)
def test_parity_encode_overhead(benchmark, field):
    plain = ChunkedCompressor("SZ_T", executor="serial")
    with_parity = ChunkedCompressor("SZ_T", parity=2, executor="serial")

    t0 = time.perf_counter()
    v2 = plain.compress(field, RelativeBound(BOUND))
    plain_s = time.perf_counter() - t0

    before = metrics().snapshot()
    t0 = time.perf_counter()
    v3 = benchmark.pedantic(
        with_parity.compress, args=(field, RelativeBound(BOUND)),
        rounds=1, iterations=1,
    )
    wall = time.perf_counter() - t0
    parity_s = metrics().diff(before).get("parity.encode_s", {}).get("value", 0.0)

    benchmark.extra_info["nbytes"] = field.nbytes
    benchmark.extra_info["out_bytes"] = len(v3)
    benchmark.extra_info["parity_s"] = round(parity_s, 4)
    benchmark.extra_info["parity_frac_of_wall"] = round(parity_s / wall, 4)
    benchmark.extra_info["storage_overhead"] = round(len(v3) / len(v2) - 1.0, 4)
    benchmark.extra_info["plain_s"] = round(plain_s, 4)
    assert parity_s < 0.15 * wall, (
        f"parity encode {parity_s:.4f}s is {100 * parity_s / wall:.1f}% "
        f"of the {wall:.4f}s compression wall time"
    )
    # k=2/m=8 parity costs ~25% of the *compressed* bytes, and the
    # longest-chunk padding keeps it under ~35% for near-equal chunks.
    assert len(v3) / len(v2) - 1.0 < 0.35


@pytest.mark.benchmark(group="selfheal-repair", min_rounds=1)
def test_repair_two_losses_per_group(benchmark, field):
    cc = ChunkedCompressor("SZ_T", parity=2, executor="serial")
    blob = cc.compress(field, RelativeBound(BOUND))
    damaged = corrupt_chunk(blob, 1, n_bits=3, seed=0)
    damaged = corrupt_chunk(damaged, 5, n_bits=3, seed=1)

    fixed, report = benchmark.pedantic(
        repair_stream, args=(damaged,), rounds=1, iterations=1
    )
    assert report.ok and fixed == blob
    benchmark.extra_info["nbytes"] = len(damaged)
    benchmark.extra_info["n_repaired"] = report.n_repaired
    benchmark.extra_info["MB_repaired"] = round(
        sum(1 for _ in report.repaired) * len(blob) / cc.last_chunk_count / MB, 2
    )


@pytest.mark.benchmark(group="selfheal-watchdog", min_rounds=1)
def test_armed_watchdog_is_free(benchmark, field):
    """A generous never-firing timeout must not slow compression down."""
    plain = ChunkedCompressor("SZ_T", executor="serial")
    armed = ChunkedCompressor("SZ_T", executor="serial", timeout=600.0)

    t0 = time.perf_counter()
    want = plain.compress(field, RelativeBound(BOUND))
    plain_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    got = benchmark.pedantic(
        armed.compress, args=(field, RelativeBound(BOUND)), rounds=1, iterations=1
    )
    armed_s = time.perf_counter() - t0
    assert got == want
    assert armed.last_timed_out_chunks == 0
    benchmark.extra_info["nbytes"] = field.nbytes
    benchmark.extra_info["overhead_frac"] = round(armed_s / plain_s - 1.0, 4)
    # Allow generous noise; the point is "no pathological slowdown".
    assert armed_s < 2.0 * plain_s
