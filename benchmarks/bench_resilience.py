"""Resilience bench: the happy-path overhead budget, enforced.

The resilience layer's design promise is that jobs which never fail pay
almost nothing for the machinery that saves the ones that do: the journal
adds one part-file write plus an fsynced manifest append per wave, and
policy checks are a handful of float comparisons per chunk.  This module
puts a number on that promise and wires it into CI:

* ``journaled-compress`` pair -- plain chunked compress-and-write vs the
  same work through :func:`repro.resilience.run_compress_job` (journal
  created, every chunk journaled, output committed, journal removed).
  Both records carry ``overhead_pair``/``overhead_role`` extra-info;
  ``scripts/check_bench_regression.py`` pairs them and **fails when the
  journaled run exceeds the plain one by more than ``overhead_budget``**
  (3%).  The gate is baseline-file-independent, so it also runs on fresh
  reports.
* ``policy-checks`` pair -- the same compress with and without a full
  :class:`~repro.resilience.ResiliencePolicy` (retries, watchdog,
  breaker) attached, none of which fires on the happy path.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import RelativeBound, decompress
from repro.core.chunked import ChunkedCompressor
from repro.parallel.runner import atomic_write_bytes
from repro.resilience import run_compress_job

BOUND = RelativeBound(1e-3)
CHUNK_BYTES = 1 << 20

#: Allowed slowdown of the journaled/policied happy path over the plain one.
OVERHEAD_BUDGET = 0.03


@pytest.fixture(scope="module")
def field() -> np.ndarray:
    """16 MB float32 smooth positive field (multi-chunk, SZ_T happy path)."""
    n = 2**22
    x = np.linspace(0.0, 160.0 * np.pi, n)
    data = 2.0 + np.sin(x) + 0.1 * np.sin(5.7 * x)
    return data.astype(np.float32)


@pytest.fixture(scope="module")
def field_file(field, tmp_path_factory) -> str:
    path = str(tmp_path_factory.mktemp("resilience") / "field.raw")
    field.tofile(path)
    return path


@pytest.mark.benchmark(group="resilience-overhead", min_rounds=5)
def test_plain_compress_write_baseline(benchmark, field, tmp_path):
    out = str(tmp_path / "plain.rpz")
    chunked = ChunkedCompressor("SZ_T", chunk_bytes=CHUNK_BYTES, workers=1,
                                executor="serial")

    def job():
        blob = chunked.compress(field, BOUND)
        atomic_write_bytes(out, blob)
        return blob

    blob = benchmark(job)
    benchmark.extra_info["nbytes"] = field.nbytes
    benchmark.extra_info["out_bytes"] = len(blob)
    benchmark.extra_info["overhead_pair"] = "journaled-compress"
    benchmark.extra_info["overhead_role"] = "baseline"


@pytest.mark.benchmark(group="resilience-overhead", min_rounds=5)
def test_journaled_compress(benchmark, field, field_file, tmp_path):
    out = str(tmp_path / "journaled.rpz")

    def job():
        return run_compress_job(
            field_file, out, BOUND, shape=field.shape,
            compressor="SZ_T", chunk_bytes=CHUNK_BYTES, workers=1,
            executor="serial",
        )

    result = benchmark(job)
    assert result.n_chunks == field.nbytes // CHUNK_BYTES
    assert not os.path.exists(out + ".journal")
    np.testing.assert_allclose(
        decompress(open(out, "rb").read()), field, rtol=1e-3
    )
    benchmark.extra_info["nbytes"] = field.nbytes
    benchmark.extra_info["out_bytes"] = result.nbytes
    benchmark.extra_info["overhead_pair"] = "journaled-compress"
    benchmark.extra_info["overhead_role"] = "safeguarded"
    benchmark.extra_info["overhead_budget"] = OVERHEAD_BUDGET


@pytest.mark.benchmark(group="resilience-overhead", min_rounds=5)
def test_policy_free_compress_baseline(benchmark, field):
    chunked = ChunkedCompressor("SZ_T", chunk_bytes=CHUNK_BYTES, workers=1,
                                executor="serial")
    blob = benchmark(chunked.compress, field, BOUND)
    benchmark.extra_info["nbytes"] = field.nbytes
    benchmark.extra_info["out_bytes"] = len(blob)
    benchmark.extra_info["overhead_pair"] = "policy-checks"
    benchmark.extra_info["overhead_role"] = "baseline"


@pytest.mark.benchmark(group="resilience-overhead", min_rounds=5)
def test_policied_compress(benchmark, field):
    chunked = ChunkedCompressor(
        "SZ_T", chunk_bytes=CHUNK_BYTES, workers=1, executor="serial",
        policy="retries=3;backoff=0.1;job-timeout=3600;breaker=0.5/10",
    )
    blob = benchmark(chunked.compress, field, BOUND)
    assert chunked.last_resilience is not None and chunked.last_resilience.quiet
    benchmark.extra_info["nbytes"] = field.nbytes
    benchmark.extra_info["out_bytes"] = len(blob)
    benchmark.extra_info["overhead_pair"] = "policy-checks"
    benchmark.extra_info["overhead_role"] = "safeguarded"
    benchmark.extra_info["overhead_budget"] = OVERHEAD_BUDGET
