"""Figure 5 bench: velocity angle-skew pipeline at matched ratio.

Benchmarks the skew-angle computation plus the three compressors'
reconstructions on HACC velocities; mean per-cell skew lands in
``extra_info``.  Reproduced claim: SZ_T skews velocities least at the
common ratio.
"""

import numpy as np
import pytest

from repro.compressors import AbsoluteBound, PrecisionBound, RelativeBound, get_compressor
from repro.data import load_field
from repro.metrics import blockwise_mean_skew, skew_angles

SCALE = 0.25
SETTINGS = {
    "SZ_ABS": ("SZ_ABS", AbsoluteBound(20.0)),
    "FPZIP": ("FPZIP", PrecisionBound(10)),
    "SZ_T": ("SZ_T", RelativeBound(0.1)),
}


@pytest.fixture(scope="module")
def velocities():
    return [load_field("HACC", f"velocity_{ax}", scale=SCALE) for ax in "xyz"]


@pytest.mark.benchmark(group="fig5-angle-skew", min_rounds=2)
@pytest.mark.parametrize("name", list(SETTINGS))
def test_skew_pipeline(benchmark, velocities, name):
    cname, bound = SETTINGS[name]
    comp = get_compressor(cname)
    blobs = [comp.compress(c, bound) for c in velocities]

    def pipeline():
        recons = [comp.decompress(b) for b in blobs]
        angles = skew_angles(tuple(velocities), tuple(recons))
        return blockwise_mean_skew(angles, 1024)

    cells = benchmark(pipeline)
    nbytes = sum(c.nbytes for c in velocities)
    benchmark.extra_info.update(
        {
            "ratio": round(nbytes / sum(len(b) for b in blobs), 2),
            "mean_skew_deg": float(f"{np.mean(cells):.3g}"),
            "p99_skew_deg": float(f"{np.percentile(cells, 99):.3g}"),
        }
    )
