"""Extensions bench: the transform over successive inner compressors.

One benchmark per wrapped generation (SZ_T / SZ2_T / SZ3_T / ZFP_T) on the
NYX density field; ratios land in ``extra_info``.  Reproduced claim (the
scheme's design goal): a stronger absolute-error inner compressor upgrades
the point-wise-relative compressor for free -- SZ3_T posts the best ratio
on 3-D data.
"""

import pytest

from repro.compressors import RelativeBound, get_compressor

BOUND = 1e-2
GENERATIONS = ("SZ_T", "SZ2_T", "SZ3_T", "ZFP_T")


@pytest.mark.benchmark(group="extensions-inner-generations", min_rounds=2)
@pytest.mark.parametrize("name", GENERATIONS)
def test_wrapped_generation(benchmark, nyx_dmd, name):
    comp = get_compressor(name)
    blob = benchmark(comp.compress, nyx_dmd, RelativeBound(BOUND))
    benchmark.extra_info["compression_ratio"] = round(nyx_dmd.nbytes / len(blob), 3)


def test_sz3_t_wins_on_3d(nyx_dmd):
    sizes = {
        name: len(get_compressor(name).compress(nyx_dmd, RelativeBound(BOUND)))
        for name in GENERATIONS
    }
    assert sizes["SZ3_T"] == min(sizes.values())
