"""Figure 2 bench: compression ratio per application per compressor.

One benchmark per (application, compressor) cell at b_r = 1e-2; the ratio
lands in ``extra_info``.  Reproduced claim: SZ_T posts the best ratio on
every application; ISABELA is flat and low; ZFP_T trails (bound
over-preservation).
"""

import pytest

from repro.experiments.common import PWR_COMPRESSORS, compress_for_relbound

BOUND = 1e-2
FIELD_BY_APP = {
    "NYX": "nyx_dmd",
    "CESM-ATM": "cesm_cld",
    "HACC": "hacc_vx",
    "Hurricane": "hurricane_cloud",
}


@pytest.mark.benchmark(group="fig2-compression-ratio", min_rounds=2)
@pytest.mark.parametrize("app", list(FIELD_BY_APP))
@pytest.mark.parametrize("name", PWR_COMPRESSORS)
def test_ratio_cell(benchmark, request, app, name):
    data = request.getfixturevalue(FIELD_BY_APP[app])
    blob, setting = benchmark(compress_for_relbound, name, data, BOUND)
    benchmark.extra_info.update(
        {
            "app": app,
            "setting": setting,
            "compression_ratio": round(data.nbytes / len(blob), 3),
        }
    )
