"""Figure 4 bench: multiprecision distortion at matched compression ratio.

Benchmarks the three panel compressions (SZ_ABS / FPZIP / SZ_T) at
settings pinned to a common ~7x ratio on NYX dark_matter_density and
records the error statistics behind the figure.  Reproduced claim: at the
same ratio SZ_T's equivalent relative bound (and hence max relative
error) is several times tighter than FPZIP's, and SZ_ABS destroys the
dense [0, 0.1] region.
"""

import numpy as np
import pytest

from repro.compressors import AbsoluteBound, PrecisionBound, RelativeBound, get_compressor
from repro.experiments.fig4 import tune_bound_for_ratio
from repro.metrics import relative_errors

TARGET = 7.0


@pytest.fixture(scope="module")
def settings(nyx_dmd):
    """Tune each compressor to the common ratio once, outside the timer."""
    sz_abs = get_compressor("SZ_ABS")
    eb, _ = tune_bound_for_ratio(
        lambda b: sz_abs.compress(nyx_dmd, AbsoluteBound(b)),
        1e-6 * float(nyx_dmd.max()), float(nyx_dmd.max()), TARGET, nyx_dmd.nbytes,
    )
    for p in range(32, 9, -1):
        blob = get_compressor("FPZIP").compress(nyx_dmd, PrecisionBound(p))
        if nyx_dmd.nbytes / len(blob) >= TARGET:
            break
    sz_t = get_compressor("SZ_T")
    br, _ = tune_bound_for_ratio(
        lambda b: sz_t.compress(nyx_dmd, RelativeBound(b)), 1e-6, 0.9, TARGET, nyx_dmd.nbytes,
    )
    return {"SZ_ABS": AbsoluteBound(eb), "FPZIP": PrecisionBound(p), "SZ_T": RelativeBound(br)}


@pytest.mark.benchmark(group="fig4-matched-ratio-panels", min_rounds=2)
@pytest.mark.parametrize("name", ["SZ_ABS", "FPZIP", "SZ_T"])
def test_panel(benchmark, nyx_dmd, settings, name):
    comp = get_compressor(name)
    blob = benchmark(comp.compress, nyx_dmd, settings[name])
    recon = comp.decompress(blob)
    rel = relative_errors(nyx_dmd, recon)
    focus = (nyx_dmd > 0) & (nyx_dmd <= 0.1)
    abs_err = np.abs(recon.astype(np.float64) - nyx_dmd.astype(np.float64))
    benchmark.extra_info.update(
        {
            "achieved_ratio": round(nyx_dmd.nbytes / len(blob), 2),
            "max_rel_err": float(f"{rel.max():.3g}"),
            "max_abs_err_in_0_0.1": float(f"{abs_err[focus].max():.3g}"),
        }
    )
