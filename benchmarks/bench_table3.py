"""Table III bench: pre/post-processing time per logarithm base.

This *is* the table's measurement: forward mapping + sign compression
(preprocessing) and inverse mapping + sign decompression (postprocessing)
timed per base.  The reproduced claim: base 10's postprocessing is the
slowest (no dedicated exp10 kernel), base 2 the best overall choice.
"""

import math

import numpy as np
import pytest

import _emit
from repro.core import LogTransform, abs_bound_for
from repro.encoding import decode_sign_bitmap, encode_sign_bitmap

BASES = {"base2": 2.0, "base_e": math.e, "base10": 10.0}
BOUND = 1e-3


@pytest.mark.benchmark(group="table3-preprocessing", min_rounds=5)
@pytest.mark.parametrize("base_name", list(BASES))
def test_preprocessing(benchmark, nyx_vx, base_name):
    tf = LogTransform(BASES[base_name])
    ba = abs_bound_for(BOUND, tf.base)
    magnitudes = np.abs(nyx_vx)

    def pre():
        encode_sign_bitmap(nyx_vx)
        return tf.forward(magnitudes, ba)

    benchmark(pre)
    benchmark.extra_info["nbytes"] = nyx_vx.nbytes


@pytest.mark.benchmark(group="table3-postprocessing", min_rounds=5)
@pytest.mark.parametrize("base_name", list(BASES))
def test_postprocessing(benchmark, nyx_vx, base_name):
    tf = LogTransform(BASES[base_name])
    ba = abs_bound_for(BOUND, tf.base)
    d = tf.forward(np.abs(nyx_vx), ba)
    _, payload = encode_sign_bitmap(nyx_vx)

    def post():
        mags = tf.inverse(d, ba, nyx_vx.dtype)
        negatives = decode_sign_bitmap(False, payload, mags.size)
        return np.where(negatives.reshape(mags.shape), -mags, mags)

    benchmark(post)
    benchmark.extra_info["nbytes"] = nyx_vx.nbytes


@pytest.mark.benchmark(group="table3-sz_t-roundtrip", min_rounds=2)
def test_sz_t_roundtrip_traced(benchmark, nyx_vx):
    """SZ_T round-trip at the table's bound, with a per-stage span capture.

    The spans land in ``BENCH_table3.json`` so the report shows *where*
    pre/post-processing time goes inside a full pipeline, not just the
    isolated transform kernels above.
    """
    from repro import RelativeBound, compress, decompress

    def roundtrip():
        blob = compress(nyx_vx, RelativeBound(BOUND), compressor="SZ_T")
        decompress(blob)
        return blob

    blob = benchmark(roundtrip)
    _, spans = _emit.trace_once(roundtrip)
    benchmark.extra_info["nbytes"] = nyx_vx.nbytes
    benchmark.extra_info["out_bytes"] = len(blob)
    benchmark.extra_info["spans"] = spans

    # Bound conformance travels with the perf numbers so the regression
    # gate (scripts/check_bench_regression.py) can refuse any run whose
    # max point-wise relative error crept past the bound.
    from repro.observe.audit import audit_stream

    audit = audit_stream(blob, nyx_vx, check_theorem3=False)
    benchmark.extra_info["rel_bound"] = BOUND
    benchmark.extra_info["max_rel_err"] = audit.max_rel
    benchmark.extra_info["audit_ok"] = audit.ok
