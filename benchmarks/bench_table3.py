"""Table III bench: pre/post-processing time per logarithm base.

This *is* the table's measurement: forward mapping + sign compression
(preprocessing) and inverse mapping + sign decompression (postprocessing)
timed per base.  The reproduced claim: base 10's postprocessing is the
slowest (no dedicated exp10 kernel), base 2 the best overall choice.
"""

import math

import numpy as np
import pytest

import _emit
from repro.core import LogTransform, abs_bound_for
from repro.encoding import decode_sign_bitmap, encode_sign_bitmap

BASES = {"base2": 2.0, "base_e": math.e, "base10": 10.0}
BOUND = 1e-3


@pytest.mark.benchmark(group="table3-preprocessing", min_rounds=5)
@pytest.mark.parametrize("base_name", list(BASES))
def test_preprocessing(benchmark, nyx_vx, base_name):
    tf = LogTransform(BASES[base_name])
    ba = abs_bound_for(BOUND, tf.base)
    magnitudes = np.abs(nyx_vx)

    def pre():
        encode_sign_bitmap(nyx_vx)
        return tf.forward(magnitudes, ba)

    benchmark(pre)
    benchmark.extra_info["nbytes"] = nyx_vx.nbytes


@pytest.mark.benchmark(group="table3-postprocessing", min_rounds=5)
@pytest.mark.parametrize("base_name", list(BASES))
def test_postprocessing(benchmark, nyx_vx, base_name):
    tf = LogTransform(BASES[base_name])
    ba = abs_bound_for(BOUND, tf.base)
    d = tf.forward(np.abs(nyx_vx), ba)
    _, payload = encode_sign_bitmap(nyx_vx)

    def post():
        mags = tf.inverse(d, ba, nyx_vx.dtype)
        negatives = decode_sign_bitmap(False, payload, mags.size)
        return np.where(negatives.reshape(mags.shape), -mags, mags)

    benchmark(post)
    benchmark.extra_info["nbytes"] = nyx_vx.nbytes


@pytest.mark.benchmark(group="table3-sz_t-roundtrip", min_rounds=2)
def test_sz_t_roundtrip_traced(benchmark, nyx_vx):
    """SZ_T round-trip at the table's bound, with a per-stage span capture.

    The spans land in ``BENCH_table3.json`` so the report shows *where*
    pre/post-processing time goes inside a full pipeline, not just the
    isolated transform kernels above.
    """
    from repro import RelativeBound, compress, decompress

    def roundtrip():
        blob = compress(nyx_vx, RelativeBound(BOUND), compressor="SZ_T")
        decompress(blob)
        return blob

    blob = benchmark(roundtrip)
    _, spans = _emit.trace_once(roundtrip)
    benchmark.extra_info["nbytes"] = nyx_vx.nbytes
    benchmark.extra_info["out_bytes"] = len(blob)
    benchmark.extra_info["spans"] = spans

    # Bound conformance travels with the perf numbers so the regression
    # gate (scripts/check_bench_regression.py) can refuse any run whose
    # max point-wise relative error crept past the bound.
    from repro.observe.audit import audit_stream

    audit = audit_stream(blob, nyx_vx, check_theorem3=False)
    benchmark.extra_info["rel_bound"] = BOUND
    benchmark.extra_info["max_rel_err"] = audit.max_rel
    benchmark.extra_info["audit_ok"] = audit.ok
    # Error-distribution summary (p50/p90/p99, signed bias) travels with
    # the record so the ledger trend and the quality gate see drift in
    # typical-point accuracy, not just the hard max-error bound.
    benchmark.extra_info.update(_emit.quality_info(audit))


@pytest.mark.benchmark(group="table3-quality-overhead", min_rounds=1)
def test_quality_collection_overhead(benchmark, nyx_vx_full):
    """Error-digest collection must cost <5% on the SZ_T compress path.

    Each round compresses twice -- collection off, then on -- and the
    per-config timings are emitted as an ``overhead_pair`` (same gate
    mechanism as the safeguard-overhead budget), so the regression gate
    compares them within the same run on the same host: no committed
    baseline needed.  Interleaving the two configs inside one round is
    what makes the pair trustworthy: run sequentially, slow machine
    drift (thermal, noisy neighbors) lands entirely on whichever config
    runs second and reads as fake overhead.  The streams themselves are
    byte-identical either way; only the collection time may differ.
    Runs on the full-scale 64^3 field: at half scale, fixed per-call
    costs (metric folds, snapshot dicts) dominate and the per-point
    budget loses its meaning.
    """
    from time import perf_counter

    from repro import RelativeBound, compress
    from repro.observe.quality import set_quality_enabled

    times: dict[str, list[float]] = {"off": [], "on": []}
    blobs: dict[str, bytes] = {}

    def pair():
        for quality in ("off", "on"):
            set_quality_enabled(quality == "on")
            try:
                t0 = perf_counter()
                blobs[quality] = compress(
                    nyx_vx_full, RelativeBound(BOUND), compressor="SZ_T"
                )
                times[quality].append(perf_counter() - t0)
            finally:
                set_quality_enabled(None)

    benchmark.pedantic(pair, rounds=20, warmup_rounds=2)
    assert blobs["off"] == blobs["on"]  # collection never alters the stream
    benchmark.extra_info["nbytes"] = 2 * nyx_vx_full.nbytes

    # The collection cost is far below the round-to-round noise of a full
    # compress, so comparing each side's own min/mean would gate on two
    # independent noise draws.  The paired design measures the *delta*
    # inside every round, where slow drift cancels; the gate compares the
    # explicit ``overhead_time_s`` estimates built from the medians.
    def median(vals):
        vals = sorted(vals)
        mid = len(vals) // 2
        return vals[mid] if len(vals) % 2 else (vals[mid - 1] + vals[mid]) / 2

    offs = times["off"][2:]  # drop the warmup rounds
    ons = times["on"][2:]
    base = median(offs)
    delta = median([on - off for off, on in zip(offs, ons)])
    for role, quality, est in (
        ("baseline", "off", base),
        ("safeguarded", "on", base + delta),
    ):
        samples = times[quality][2:]
        mean_s = sum(samples) / len(samples)
        rec = {
            "test": f"test_quality_collection_overhead[{quality}]",
            "group": "table3-quality-overhead",
            "mean_s": mean_s,
            "min_s": min(samples),
            "rounds": len(samples),
            "overhead_time_s": est,
            "MB_per_s": round(nyx_vx_full.nbytes / mean_s / 1e6, 3),
            "nbytes": nyx_vx_full.nbytes,
            "out_bytes": len(blobs[quality]),
            "ratio": round(nyx_vx_full.nbytes / len(blobs[quality]), 3),
            "overhead_pair": "quality_collection",
            "overhead_role": role,
            "codec_path": _emit._codec_path(),
        }
        if quality == "on":
            rec["overhead_budget"] = 0.05
            rec["delta_median_s"] = delta
        _emit.record("table3", rec)
