"""Safeguards bench: the compliant-codec overhead budget, enforced.

The safeguards layer's design promise is *near-zero overhead when the
wrapped codec complies*: the verify pass's reconstruction is reused, each
safeguard costs one vectorized mask pass, and the patch channel is empty.
This module puts a number on that promise and wires it into CI:

* ``szt-roundtrip`` pair -- raw ``SZ_T`` vs ``SAFE(SZ_T, rel)`` round
  trips over the same field.  Both records carry ``overhead_pair`` /
  ``overhead_role`` extra-info; ``scripts/check_bench_regression.py``
  pairs them and **fails when the safeguarded round trip exceeds the
  baseline by more than ``overhead_budget``** (10%).  The gate is
  baseline-file-independent, so it also runs on fresh reports.
* ``SAFE(ZFP_P, rel)`` -- the non-compliant direction: a precision codec
  made rel-bounded by patching.  The record carries ``max_rel_err`` /
  ``rel_bound`` so the existing bound-conformance gate proves the wrap
  delivers the bound ZFP_P alone cannot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Container, PrecisionBound, RelativeBound, decompress
from repro.compressors.base import get_compressor
from repro.safeguards import SafeguardedCompressor

BOUND = 1e-3

#: Allowed round-trip slowdown of SAFE(SZ_T) over raw SZ_T.
OVERHEAD_BUDGET = 0.10


@pytest.fixture(scope="module")
def field() -> np.ndarray:
    """4 MB float32 smooth positive field (compresses the SZ_T happy path)."""
    n = 2**20
    x = np.linspace(0.0, 40.0 * np.pi, n)
    data = 2.0 + np.sin(x) + 0.1 * np.sin(5.7 * x)
    return data.astype(np.float32)


@pytest.mark.benchmark(group="safeguards-overhead", min_rounds=5)
def test_szt_roundtrip_baseline(benchmark, field):
    sz_t = get_compressor("SZ_T")
    bound = RelativeBound(BOUND)

    def roundtrip():
        blob = sz_t.compress(field, bound)
        decompress(blob)
        return blob

    blob = benchmark(roundtrip)
    benchmark.extra_info["nbytes"] = field.nbytes
    benchmark.extra_info["out_bytes"] = len(blob)
    benchmark.extra_info["overhead_pair"] = "szt-roundtrip"
    benchmark.extra_info["overhead_role"] = "baseline"


@pytest.mark.benchmark(group="safeguards-overhead", min_rounds=5)
def test_szt_roundtrip_safeguarded(benchmark, field):
    safe = SafeguardedCompressor("SZ_T", [f"rel:{BOUND!r}"])
    bound = RelativeBound(BOUND)

    def roundtrip():
        blob = safe.compress(field, bound)
        decompress(blob)
        return blob

    blob = benchmark(roundtrip)
    box = Container.from_bytes(blob)
    assert box.get_u64("n_patch") == 0, "SZ_T must comply with its own bound"
    benchmark.extra_info["nbytes"] = field.nbytes
    benchmark.extra_info["out_bytes"] = len(blob)
    benchmark.extra_info["overhead_pair"] = "szt-roundtrip"
    benchmark.extra_info["overhead_role"] = "safeguarded"
    benchmark.extra_info["overhead_budget"] = OVERHEAD_BUDGET
    benchmark.extra_info["n_patch"] = 0


@pytest.mark.benchmark(group="safeguards-zfp", min_rounds=3)
def test_zfp_p_safeguarded_holds_rel_bound(benchmark):
    """The non-compliant direction: precision codec -> guaranteed rel bound.

    A wide-dynamic-range field, where 20 bits of precision genuinely
    violate ``rel:1e-3`` at a minority of points (~10%, ``n_patch`` > 0
    in the record): the patches are the cost being measured.
    """
    rng = np.random.default_rng(7)
    field = rng.lognormal(mean=0.0, sigma=1.0, size=(64, 64, 64)).astype(np.float32)
    safe = SafeguardedCompressor("ZFP_P", [f"rel:{BOUND!r}"])
    bound = PrecisionBound(20)

    blob = benchmark(safe.compress, field, bound)
    recon = decompress(blob)
    x64 = field.astype(np.float64)
    nz = x64 != 0
    max_rel = float(
        (np.abs(recon.astype(np.float64) - x64)[nz] / np.abs(x64)[nz]).max()
    )
    benchmark.extra_info["nbytes"] = field.nbytes
    benchmark.extra_info["out_bytes"] = len(blob)
    benchmark.extra_info["rel_bound"] = BOUND
    benchmark.extra_info["max_rel_err"] = max_rel
    benchmark.extra_info["n_patch"] = Container.from_bytes(blob).get_u64("n_patch")
