"""Ablation benches for DESIGN.md's design decisions.

* ``lemma2``: Lemma 2's round-off shrink on vs off (violations repaired
  by the patch channel when off -- the shrink is nearly free).
* ``base-invariance``: Theorem-3 quantization-index computation across
  bases (the *analysis* cost, used by the theory tests).
* ``substrate``: throughput of the entropy/bit-plane substrates SZ and
  ZFP are built on (canonical Huffman, embedded coder), isolating the
  stage-level costs behind Figure 3.
"""

import math

import numpy as np
import pytest

from repro.compressors import RelativeBound
from repro.compressors.sz import SZCompressor
from repro.compressors.zfp.embedded import decode_blocks, encode_blocks
from repro.core import TransformedCompressor
from repro.core.theory import quantization_indices
from repro.encoding import HuffmanCodec


@pytest.mark.benchmark(group="ablation-lemma2", min_rounds=2)
@pytest.mark.parametrize("lemma2", [True, False], ids=["lemma2-on", "lemma2-off"])
def test_lemma2_cost(benchmark, nyx_dmd, lemma2):
    comp = TransformedCompressor(SZCompressor(), apply_lemma2=lemma2)
    blob = benchmark(comp.compress, nyx_dmd, RelativeBound(1e-4))
    benchmark.extra_info["violations_patched"] = comp.last_patch_count
    benchmark.extra_info["compression_ratio"] = round(nyx_dmd.nbytes / len(blob), 3)
    if lemma2:
        assert comp.last_patch_count == 0


@pytest.mark.benchmark(group="ablation-base-invariance", min_rounds=3)
@pytest.mark.parametrize("base", [2.0, math.e, 10.0], ids=["b2", "be", "b10"])
def test_quantization_index_analysis(benchmark, nyx_dmd, base):
    benchmark(quantization_indices, nyx_dmd.astype(np.float64), 1e-2, base, 3)


@pytest.mark.benchmark(group="ablation-substrate-huffman", min_rounds=3)
def test_huffman_encode(benchmark):
    rng = np.random.default_rng(0)
    symbols = np.abs(rng.normal(0, 30, size=1 << 18)).astype(np.int64)
    codec = HuffmanCodec()
    blob = benchmark(codec.encode, symbols)
    benchmark.extra_info["bits_per_symbol"] = round(8 * len(blob) / symbols.size, 3)


@pytest.mark.benchmark(group="ablation-substrate-huffman", min_rounds=3)
def test_huffman_decode(benchmark):
    rng = np.random.default_rng(0)
    symbols = np.abs(rng.normal(0, 30, size=1 << 18)).astype(np.int64)
    codec = HuffmanCodec()
    blob = codec.encode(symbols)
    out = benchmark(codec.decode, blob)
    assert (out == symbols).all()


@pytest.mark.benchmark(group="ablation-substrate-embedded", min_rounds=3)
def test_embedded_encode(benchmark):
    rng = np.random.default_rng(1)
    nb = rng.integers(0, 1 << 28, size=(4096, 64)).astype(np.uint64)
    nplanes = np.full(4096, 20, dtype=np.int64)
    payload, lens = benchmark(encode_blocks, nb, nplanes, 30)
    benchmark.extra_info["bits_per_value"] = round(8 * len(payload) / nb.size, 3)


@pytest.mark.benchmark(group="ablation-substrate-embedded", min_rounds=3)
def test_embedded_decode(benchmark):
    rng = np.random.default_rng(1)
    nb = rng.integers(0, 1 << 28, size=(4096, 64)).astype(np.uint64)
    nplanes = np.full(4096, 20, dtype=np.int64)
    payload, lens = encode_blocks(nb, nplanes, 30)
    benchmark(decode_blocks, payload, lens, nplanes, 30, 64)


@pytest.mark.benchmark(group="ablation-predictor-sz2", min_rounds=2)
@pytest.mark.parametrize("codec", ["SZ_ABS", "SZ2_ABS"], ids=["lorenzo", "hybrid"])
def test_sz2_predictor_selection(benchmark, codec):
    """SZ2 extension: the regression/Lorenzo hybrid vs plain Lorenzo on
    gradient-dominated data (regression blocks should win the ratio)."""
    from repro import AbsoluteBound, get_compressor

    idx = np.indices((48, 48, 48)).astype(np.float64)
    rng = np.random.default_rng(2)
    data = (3 * idx[0] + 2 * idx[1] - idx[2]
            + rng.normal(0, 0.4, (48, 48, 48))).astype(np.float32)
    comp = get_compressor(codec)
    blob = benchmark(comp.compress, data, AbsoluteBound(0.1))
    benchmark.extra_info["compression_ratio"] = round(data.nbytes / len(blob), 3)


@pytest.mark.benchmark(group="ablation-zfp-modes", min_rounds=2)
@pytest.mark.parametrize("mode", ["accuracy", "rate"])
def test_zfp_mode_tradeoff(benchmark, nyx_dmd, mode):
    """Fixed-rate vs fixed-accuracy ZFP at a matched ~8 bits/value."""
    from repro import AbsoluteBound, get_compressor
    from repro.compressors.base import RateBound
    from repro.metrics import relative_psnr

    if mode == "rate":
        comp = get_compressor("ZFP_R")
        bound = RateBound(8)
    else:
        comp = get_compressor("ZFP_A")
        bound = AbsoluteBound(float(nyx_dmd.max()) * 2e-4)  # lands near 8 b/v
    blob = benchmark(comp.compress, nyx_dmd, bound)
    recon = comp.decompress(blob)
    benchmark.extra_info["bits_per_value"] = round(8 * len(blob) / nyx_dmd.size, 2)
    benchmark.extra_info["rel_psnr_db"] = round(relative_psnr(nyx_dmd, recon), 1)


@pytest.mark.benchmark(group="ablation-entropy-stage", min_rounds=3)
@pytest.mark.parametrize("entropy", ["huffman", "range"])
def test_fpzip_entropy_stage(benchmark, nyx_dmd, entropy):
    """FPZIP's entropy stage: static Huffman vs adaptive range coding."""
    from repro import PrecisionBound
    from repro.compressors import FpzipCompressor

    comp = FpzipCompressor(entropy=entropy)
    blob = benchmark(comp.compress, nyx_dmd, PrecisionBound(19))
    benchmark.extra_info["compression_ratio"] = round(nyx_dmd.nbytes / len(blob), 3)


@pytest.mark.benchmark(group="ablation-huffman-chunking", min_rounds=3)
@pytest.mark.parametrize("chunk", [64, 256, 4096])
def test_huffman_decode_chunk_size(benchmark, chunk):
    """Chunk width drives the decode state machine's parallelism."""
    rng = np.random.default_rng(5)
    symbols = np.abs(rng.normal(0, 30, size=1 << 17)).astype(np.int64)
    codec = HuffmanCodec(chunk_size=chunk)
    blob = codec.encode(symbols)
    benchmark(codec.decode, blob)
    benchmark.extra_info["blob_bytes"] = len(blob)


@pytest.mark.benchmark(group="ablation-lossless-baseline", min_rounds=3)
@pytest.mark.parametrize("shuffle", [False, True], ids=["plain", "shuffle"])
def test_lossless_baseline(benchmark, nyx_dmd, shuffle):
    """The introduction's claim: lossless stays under ~2:1."""
    from repro.compressors.lossless import LosslessDeflate

    comp = LosslessDeflate(shuffle=shuffle)
    blob = benchmark(comp.compress, nyx_dmd)
    ratio = nyx_dmd.nbytes / len(blob)
    benchmark.extra_info["compression_ratio"] = round(ratio, 3)
    assert ratio < 2.0
