"""Error-bounded lossy compressors.

This subpackage implements, from scratch and in vectorized numpy, every
compressor the paper evaluates:

* :mod:`repro.compressors.sz` -- the SZ prediction-based compressor
  (absolute-error mode ``SZ_ABS`` and the blockwise point-wise-relative
  mode ``SZ_PWR``),
* :mod:`repro.compressors.zfp` -- the ZFP transform-based compressor
  (fixed-accuracy mode and the ``-p`` precision mode ``ZFP_P``),
* :mod:`repro.compressors.fpzip` -- FPZIP's precision-truncating
  predictive coder,
* :mod:`repro.compressors.isabela` -- ISABELA's sort + B-spline + index
  scheme.

The paper's own contribution -- the logarithmic transformation wrapper that
turns the absolute-error compressors into point-wise-relative ones
(``SZ_T``/``ZFP_T``) -- lives in :mod:`repro.core`.
"""

from repro.compressors.base import (
    AbsoluteBound,
    Compressor,
    ErrorBound,
    PrecisionBound,
    RateBound,
    RelativeBound,
    UnsupportedBound,
    available_compressors,
    get_compressor,
    register_compressor,
)
from repro.compressors.fpzip import FpzipCompressor
from repro.compressors.isabela import IsabelaCompressor
from repro.compressors.sz import SZ2Compressor, SZ3Compressor, SZCompressor, SZPointwiseRelative
from repro.compressors.zfp import ZFPCompressor

__all__ = [
    "AbsoluteBound",
    "Compressor",
    "ErrorBound",
    "FpzipCompressor",
    "IsabelaCompressor",
    "PrecisionBound",
    "RateBound",
    "RelativeBound",
    "SZ2Compressor",
    "SZ3Compressor",
    "SZCompressor",
    "SZPointwiseRelative",
    "UnsupportedBound",
    "ZFPCompressor",
    "available_compressors",
    "get_compressor",
    "register_compressor",
]
