"""ISABELA: sort-based B-spline compression with an inverted index.

Reimplementation of Lakshminarasimhan et al. (CC:PE 2013) as evaluated by
the paper.  ISABELA linearizes the array, cuts it into fixed windows,
*sorts* each window (sorting makes any signal monotone and therefore
spline-friendly), least-squares-fits a cubic B-spline to the sorted curve,
and stores

* the spline coefficients (a handful per window),
* the permutation index needed to undo the sort -- ``log2(window)`` bits
  per point, the overhead the paper blames for ISABELA's low ratios, and
* per-point relative-error correction codes quantizing the ratio between
  each value and its spline estimate geometrically in ``(1 + 2*eb)`` steps
  so the point-wise relative bound holds.

The encoder verifies every reconstruction and escapes failures (sign
mismatches near a window's zero crossing, exact zeros) verbatim, so the
advertised bound holds for 100% of points and zeros are preserved exactly
-- matching ISABELA's row in the paper's strict-bound table.

Compression is dominated by the per-window ``argsort``, reproducing the
paper's observation that ISABELA has the lowest compression rate.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np
from scipy.interpolate import BSpline

from repro.compressors.base import Compressor, ErrorBound, RelativeBound
from repro.encoding import (
    HuffmanCodec,
    deflate,
    inflate,
    pack_fixed_width,
    unpack_fixed_width,
    zigzag_decode,
    zigzag_encode,
)

__all__ = ["IsabelaCompressor"]

_DEFAULT_WINDOW = 1024
_DEFAULT_COEFFS = 30
#: Correction codes beyond this magnitude escape verbatim instead.
_MAX_CODE = 1 << 20


@lru_cache(maxsize=None)
def _basis(window: int, ncoeff: int) -> tuple[np.ndarray, np.ndarray]:
    """Cubic B-spline design matrix on ``0..window-1`` and its pseudo-inverse.

    The grid and knots are fixed per (window, ncoeff), so a single
    ``(window, ncoeff)`` matrix turns spline fitting for *all* windows into
    one matmul (coeffs = sorted_values @ pinv.T).
    """
    k = 3
    if ncoeff <= k + 1:
        raise ValueError(f"need more than {k + 1} coefficients, got {ncoeff}")
    interior = np.linspace(0, window - 1, ncoeff - k + 1)
    knots = np.concatenate([np.full(k, 0.0), interior, np.full(k, float(window - 1))])
    x = np.arange(window, dtype=np.float64)
    design = BSpline.design_matrix(x, knots, k).toarray()
    return design, np.linalg.pinv(design)


class IsabelaCompressor(Compressor):
    """Sort + B-spline + index compressor with relative-error correction."""

    name = "ISABELA"
    supported_bounds = (RelativeBound,)

    def __init__(self, window: int = _DEFAULT_WINDOW, ncoeff: int = _DEFAULT_COEFFS) -> None:
        if window & (window - 1) or window < 64:
            raise ValueError(f"window must be a power of two >= 64, got {window}")
        if not 5 <= ncoeff <= window // 4:
            raise ValueError(f"ncoeff must be in [5, window/4], got {ncoeff}")
        self.window = window
        self.ncoeff = ncoeff
        self._huffman = HuffmanCodec()

    # -- compression -------------------------------------------------------

    def compress(self, data: np.ndarray, bound: ErrorBound) -> bytes:
        self._check_bound(bound)
        data = self._check_input(data)
        br = float(bound.value)
        flat = data.astype(np.float64).ravel()
        n = flat.size
        w = self.window
        nwin = -(-n // w)
        padded = np.pad(flat, (0, nwin * w - n), mode="edge").reshape(nwin, w)

        order = np.argsort(padded, axis=1, kind="stable")
        sorted_vals = np.take_along_axis(padded, order, axis=1)

        design, pinv = _basis(w, self.ncoeff)
        coeffs = (sorted_vals @ pinv.T).astype(np.float32)
        approx = coeffs.astype(np.float64) @ design.T

        # Geometric ratio quantization: x_hat = s * (1 + 2 eb)^code.
        eb = br * (1.0 - 2.0**-9) / (1.0 + br)
        log_step = math.log1p(2.0 * eb)
        ratio = sorted_vals / approx
        with np.errstate(invalid="ignore", divide="ignore"):
            codes = np.rint(np.log(np.where(ratio > 0, ratio, 1.0)) / log_step).astype(np.int64)
        bad = (ratio <= 0) | ~np.isfinite(ratio) | (np.abs(codes) > _MAX_CODE)
        codes[bad] = 0

        # Verify in the output dtype (the final cast may round either way).
        recon = (approx * np.exp(codes * log_step)).astype(data.dtype).astype(np.float64)
        viol = bad | (np.abs(recon - sorted_vals) > br * np.abs(sorted_vals))
        patch_idx = np.flatnonzero(viol.ravel()).astype(np.uint64)
        patch_val = sorted_vals.ravel()[patch_idx.astype(np.int64)].astype(data.dtype)

        index_bits = int(math.log2(w))
        box = self._new_container(self.name, data)
        box.put_f64("br", br)
        box.put_u64("window", w)
        box.put_u64("ncoeff", self.ncoeff)
        box.put_u64("nwin", nwin)
        box.put("coeffs", deflate(coeffs.tobytes()))
        box.put("index", pack_fixed_width(order.ravel().astype(np.uint64), index_bits))
        box.put("codes", self._huffman.encode(zigzag_encode(codes.ravel())))
        box.put("patch_idx", deflate(patch_idx.tobytes()))
        box.put("patch_val", deflate(np.ascontiguousarray(patch_val).tobytes()))
        box.put_u64("n_patch", patch_idx.size)
        return box.to_bytes()

    # -- decompression -----------------------------------------------------

    def decompress(self, blob: bytes) -> np.ndarray:
        box, shape, dtype = self._open_container(blob, self.name)
        br = box.get_f64("br")
        w = box.get_u64("window")
        ncoeff = box.get_u64("ncoeff")
        nwin = box.get_u64("nwin")
        n = int(np.prod(shape))

        design, _ = _basis(w, ncoeff)
        coeffs = np.frombuffer(inflate(box.get("coeffs")), dtype=np.float32).reshape(nwin, ncoeff)
        approx = coeffs.astype(np.float64) @ design.T

        eb = br * (1.0 - 2.0**-9) / (1.0 + br)
        log_step = math.log1p(2.0 * eb)
        codes = zigzag_decode(self._huffman.decode(box.get("codes"))).reshape(nwin, w)
        recon = approx * np.exp(codes * log_step)

        patch_idx = np.frombuffer(inflate(box.get("patch_idx")), dtype=np.uint64)
        patch_val = np.frombuffer(inflate(box.get("patch_val")), dtype=dtype)
        if patch_idx.size != box.get_u64("n_patch") or patch_val.size != patch_idx.size:
            raise ValueError("corrupt ISABELA stream: patch channel size mismatch")
        flat_sorted = recon.reshape(-1)
        flat_sorted[patch_idx.astype(np.int64)] = patch_val.astype(np.float64)

        index_bits = int(math.log2(w))
        order = unpack_fixed_width(box.get("index"), index_bits, nwin * w)
        order = order.astype(np.int64).reshape(nwin, w)
        out = np.zeros((nwin, w), dtype=np.float64)
        np.put_along_axis(out, order, flat_sorted.reshape(nwin, w), axis=1)
        return out.reshape(-1)[:n].astype(dtype).reshape(shape)
