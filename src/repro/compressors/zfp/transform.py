"""ZFP's reversible integer lifting transform and sequency ordering.

The forward/inverse lifts are the exact integer schemes from the ZFP
reference implementation (``fwd_lift``/``inv_lift``); they approximate the
orthogonal transform ``(1/16) [[4,4,4,4],[5,1,-1,-5],[-4,4,4,-4],
[-2,6,-6,2]]`` with integer shifts.  The right shifts discard low-order
bits, so ``inv(fwd(x))`` deviates from ``x`` by a few units in the last
place of the fixed-point representation -- ZFP absorbs this in its
conservative bit-plane budget (the ``2*(d+1)`` extra planes in
:func:`repro.compressors.zfp.zfp.planes_for_tolerance`).

Multi-dimensional blocks apply the lift along each axis in turn (and in
reverse order for the inverse).  All functions operate on arrays of shape
``(nblocks, 4, ..., 4)`` so the whole dataset transforms in a handful of
numpy passes.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["fwd_lift", "inv_lift", "fwd_xform", "inv_xform", "sequency_order"]


def fwd_lift(a: np.ndarray, axis: int) -> None:
    """In-place forward lift along ``axis`` (length-4 axis required)."""
    v = np.moveaxis(a, axis, -1)
    if v.shape[-1] != 4:
        raise ValueError(f"transform axis must have length 4, got {v.shape[-1]}")
    x = v[..., 0].copy()
    y = v[..., 1].copy()
    z = v[..., 2].copy()
    w = v[..., 3].copy()
    # Non-orthogonal lifted butterflies, verbatim from ZFP.
    x += w
    x >>= 1
    w -= x
    z += y
    z >>= 1
    y -= z
    x += z
    x >>= 1
    z -= x
    w += y
    w >>= 1
    y -= w
    w += y >> 1
    y -= w >> 1
    v[..., 0] = x
    v[..., 1] = y
    v[..., 2] = z
    v[..., 3] = w


def inv_lift(a: np.ndarray, axis: int) -> None:
    """In-place inverse lift along ``axis``."""
    v = np.moveaxis(a, axis, -1)
    if v.shape[-1] != 4:
        raise ValueError(f"transform axis must have length 4, got {v.shape[-1]}")
    x = v[..., 0].copy()
    y = v[..., 1].copy()
    z = v[..., 2].copy()
    w = v[..., 3].copy()
    y += w >> 1
    w -= y >> 1
    y += w
    w <<= 1
    w -= y
    z += x
    x <<= 1
    x -= z
    y += z
    z <<= 1
    z -= y
    w += x
    x <<= 1
    x -= w
    v[..., 0] = x
    v[..., 1] = y
    v[..., 2] = z
    v[..., 3] = w


def fwd_xform(blocks: np.ndarray) -> np.ndarray:
    """Forward transform of ``(nblocks, 4, ..., 4)`` int64 blocks (copy)."""
    out = np.array(blocks, dtype=np.int64, copy=True)
    for axis in range(1, out.ndim):
        fwd_lift(out, axis)
    return out


def inv_xform(coeffs: np.ndarray) -> np.ndarray:
    """Inverse transform (axes in reverse order), returning a copy."""
    out = np.array(coeffs, dtype=np.int64, copy=True)
    for axis in range(out.ndim - 1, 0, -1):
        inv_lift(out, axis)
    return out


@lru_cache(maxsize=None)
def sequency_order(ndim: int) -> tuple[np.ndarray, np.ndarray]:
    """Total-sequency coefficient ordering for ``4**ndim`` blocks.

    Returns ``(perm, inv_perm)``: ``flat_coeffs[:, perm]`` lists
    coefficients from lowest to highest total frequency, which fronts the
    statistically-largest coefficients for the embedded coder (ZFP's PERM
    tables follow the same total-sequency key).
    """
    if ndim not in (1, 2, 3):
        raise ValueError(f"ndim must be 1, 2 or 3, got {ndim}")
    idx = np.indices((4,) * ndim).reshape(ndim, -1)
    total = idx.sum(axis=0)
    perm = np.lexsort((np.arange(total.size), total)).astype(np.int64)
    inv_perm = np.zeros_like(perm)
    inv_perm[perm] = np.arange(perm.size)
    return perm, inv_perm
