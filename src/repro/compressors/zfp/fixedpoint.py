"""Block-floating-point alignment and negabinary mapping for ZFP.

Every ``4^d`` block is scaled by a single power of two so that the largest
magnitude lands just below ``2**(INTPREC-3)``; all values then share one
exponent (``emax``) and become plain integers.  The transform output is
mapped to negabinary (base -2) so that sign information lives in the high
bit planes, which is what makes truncating low planes a graceful
degradation.

``INTPREC`` (the number of coded bit planes) follows the input dtype: 32
for float32 and 62 for float64, leaving 3 bits of headroom above the
scaled values for transform growth and the negabinary expansion.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "intprec_for",
    "block_exponents",
    "quantize_blocks",
    "dequantize_blocks",
    "negabinary_encode",
    "negabinary_decode",
    "EMPTY_EMAX",
]

#: Sentinel exponent marking an all-zero (or fully truncated) block.
EMPTY_EMAX = np.int32(-(2**31 - 1))

_NBMASK = np.uint64(0xAAAAAAAAAAAAAAAA)


def intprec_for(dtype: np.dtype) -> int:
    """Bit planes coded for the given input dtype (ZFP uses the type width)."""
    dtype = np.dtype(dtype)
    if dtype == np.float32:
        return 32
    if dtype == np.float64:
        return 62
    raise TypeError(f"unsupported dtype {dtype}")


def block_exponents(blocks: np.ndarray) -> np.ndarray:
    """``floor(log2(max |x|))`` per block; :data:`EMPTY_EMAX` for zero blocks.

    ``blocks`` has shape ``(nblocks, ...)``; the reduction runs over all
    trailing axes.
    """
    amax = np.abs(blocks).reshape(blocks.shape[0], -1).max(axis=1)
    emax = np.full(amax.shape, EMPTY_EMAX, dtype=np.int32)
    nz = amax > 0
    # frexp: |x| = m * 2**e with m in [0.5, 1)  =>  floor(log2 |x|) = e - 1
    _, e = np.frexp(amax[nz])
    emax[nz] = e.astype(np.int32) - 1
    return emax


def quantize_blocks(blocks: np.ndarray, emax: np.ndarray, intprec: int) -> np.ndarray:
    """Scale blocks to a common fixed-point grid: ``round(x * 2**(sexp-emax))``.

    ``sexp = intprec - 4`` leaves headroom so the lifted transform and the
    negabinary expansion stay inside ``intprec`` bit planes.
    """
    sexp = intprec - 4
    shift = (sexp - emax.astype(np.int64)).reshape((-1,) + (1,) * (blocks.ndim - 1))
    # Clamp so empty-block sentinels and denormal-only blocks cannot push
    # ldexp past the double range (0 * inf would poison the block with NaN).
    scale = np.ldexp(1.0, np.clip(shift, -1000, 1000))
    q = np.rint(blocks.astype(np.float64) * scale)
    return q.astype(np.int64)


def dequantize_blocks(q: np.ndarray, emax: np.ndarray, intprec: int, dtype: np.dtype) -> np.ndarray:
    """Inverse of :func:`quantize_blocks` (empty blocks come back as zero)."""
    sexp = intprec - 4
    shift = (emax.astype(np.int64) - sexp).reshape((-1,) + (1,) * (q.ndim - 1))
    # Mirror of the encoder-side clamp (empty blocks carry the sentinel
    # exponent; their coefficients are zero regardless).
    scale = np.ldexp(1.0, np.clip(shift, -1000, 1000))
    return (q.astype(np.float64) * scale).astype(dtype)


def negabinary_encode(x: np.ndarray) -> np.ndarray:
    """int64 -> base(-2) uint64, bit pattern identical to ZFP's ``int2uint``."""
    u = x.astype(np.int64).view(np.uint64)
    return (u + _NBMASK) ^ _NBMASK


def negabinary_decode(u: np.ndarray) -> np.ndarray:
    """Inverse of :func:`negabinary_encode` (ZFP's ``uint2int``)."""
    u = np.asarray(u, dtype=np.uint64)
    return ((u ^ _NBMASK) - _NBMASK).view(np.int64)
