"""ZFP: transform-based error-bounded lossy compressor (pure numpy).

Faithful reimplementation of Lindstrom's ZFP (TVCG 2014) pipeline:

1. partition into ``4^d`` blocks (:mod:`repro.utils.blocking`),
2. block-floating-point alignment to a common exponent
   (:mod:`repro.compressors.zfp.fixedpoint`),
3. the reversible integer lifting transform applied along every axis
   (:mod:`repro.compressors.zfp.transform`),
4. negabinary mapping and group-tested embedded bit-plane coding
   (:mod:`repro.compressors.zfp.embedded`).

Two modes are exposed through :class:`ZFPCompressor`:

* *accuracy* (absolute error bound; what the transformation scheme wraps
  to build ``ZFP_T``),
* *precision* (the ``-p`` mode the paper evaluates as ``ZFP_P``, which
  approximates relative-error behaviour but cannot strictly respect it).
"""

from repro.compressors.zfp.embedded import decode_blocks, encode_blocks
from repro.compressors.zfp.fixedpoint import (
    block_exponents,
    dequantize_blocks,
    negabinary_decode,
    negabinary_encode,
    quantize_blocks,
)
from repro.compressors.zfp.transform import fwd_xform, inv_xform, sequency_order
from repro.compressors.zfp.zfp import ZFPCompressor

__all__ = [
    "ZFPCompressor",
    "block_exponents",
    "decode_blocks",
    "dequantize_blocks",
    "encode_blocks",
    "fwd_xform",
    "inv_xform",
    "negabinary_decode",
    "negabinary_encode",
    "quantize_blocks",
    "sequency_order",
]
