"""Group-tested embedded bit-plane coding, data-parallel across blocks.

This is Lindstrom's ``encode_ints``/``decode_ints`` embedded coder,
bit-for-bit in semantics, executed as a masked numpy state machine over
every block simultaneously (DESIGN.md section 5.2).  Per bit plane (MSB
first) each block emits:

1. the plane bits of coefficients already known significant, verbatim
   (LSB-first within the plane word), then
2. a *group test* over the remaining coefficients: a 1 bit announces that
   at least one untested coefficient is significant in this plane, after
   which plane bits stream out until the first 1; the final group test
   emits 0 and terminates the plane.  A subtlety inherited from ZFP: when
   the scan reaches the last coefficient its 1 bit is implied, not coded.

The group phase advances one *significant coefficient* per vectorized
round: a zero-run and its terminating 1 are emitted (or, on decode,
located through a gathered 64-bit stream window) in a single ragged batch,
so the per-plane work is proportional to the number of newly significant
coefficients, not to the number of coded bits.

Blocks encode different plane counts (``nplanes``), so the emitted streams
are ragged; the encoder returns the packed concatenation plus per-block bit
lengths, and the decoder walks every block from its own offset.
"""

from __future__ import annotations

import numpy as np

from repro.utils.ragged import ragged_arange as _ragged_arange

__all__ = ["encode_blocks", "decode_blocks", "expand_fixed_rate"]

_U1 = np.uint64(1)
_U0 = np.uint64(0)


def _plane_words(nb: np.ndarray, k: int, weights: np.ndarray) -> np.ndarray:
    """Gather bit plane ``k`` of every block into one uint64 word per block."""
    bits = (nb >> np.uint64(k)) & _U1
    return (bits * weights).sum(axis=1, dtype=np.uint64)


def _trailing_zeros(x: np.ndarray) -> np.ndarray:
    """Exact count of trailing zeros for non-zero uint64 values.

    Isolates the lowest set bit (an exact power of two, hence exactly
    representable in float64) and takes its log2.
    """
    low = x & (~x + _U1)
    return np.log2(low.astype(np.float64)).astype(np.int64)


def _leading_zeros64(w: np.ndarray) -> np.ndarray:
    """Exact count of leading zeros of uint64 words (64 for zero).

    Split into 32-bit halves so float64 log2 stays exact.
    """
    hi = (w >> np.uint64(32)).astype(np.float64)
    lo = (w & np.uint64(0xFFFFFFFF)).astype(np.float64)
    z = np.full(w.shape, 64, dtype=np.int64)
    lom = lo > 0
    z[lom] = 63 - np.floor(np.log2(lo[lom])).astype(np.int64)
    him = hi > 0
    z[him] = 31 - np.floor(np.log2(hi[him])).astype(np.int64)
    return z


def encode_blocks(
    nb: np.ndarray,
    nplanes: np.ndarray,
    intprec: int,
    maxbits: int | None = None,
) -> tuple[bytes, np.ndarray]:
    """Encode negabinary coefficient blocks.

    Parameters
    ----------
    nb:
        ``(nblocks, ncoef)`` uint64 coefficients in sequency order.
    nplanes:
        Bit planes to encode per block (0 = empty block, emits nothing).
    intprec:
        Total bit planes of the fixed-point representation; plane ``p``
        of the loop is physical plane ``intprec - 1 - p``.
    maxbits:
        Fixed-rate budget: every block's stream is truncated or
        zero-padded to exactly this many bits (ZFP's fixed-rate mode; cut
        bits decode as zeros, see ``ZFPCompressor`` mode ``"rate"``).

    Returns
    -------
    (payload, lens):
        Packed concatenated bit stream and per-block bit counts (uint32).
    """
    nblocks, ncoef = nb.shape
    if ncoef > 64:
        raise ValueError("embedded coder packs plane words into uint64 (ncoef <= 64)")
    nplanes = np.asarray(nplanes, dtype=np.int64)
    max_planes = int(nplanes.max(initial=0))
    if max_planes == 0:
        if maxbits is not None:  # all-empty fixed-rate stream: zero fill
            lens = np.full(nblocks, maxbits, dtype=np.uint32)
            return bytes(-(-nblocks * maxbits // 8)), lens
        return b"", np.zeros(nblocks, dtype=np.uint32)
    weights = np.left_shift(_U1, np.arange(ncoef, dtype=np.uint64))

    cap = max_planes * (2 * ncoef + 2)
    buf = np.zeros((nblocks, cap), dtype=np.uint8)
    cur = np.zeros(nblocks, dtype=np.int64)
    n = np.zeros(nblocks, dtype=np.int64)  # significant count, persists

    for p in range(max_planes):
        k = intprec - 1 - p
        active = p < nplanes
        if not active.any():
            break
        x = _plane_words(nb, k, weights)

        # Step 1: verbatim bits for known-significant coefficients
        # (LSB-first), emitted for all blocks in one ragged batch.
        m = np.where(active, n, 0)
        sel = np.flatnonzero(m > 0)
        if sel.size:
            rows = np.repeat(sel, m[sel])
            offs = _ragged_arange(m[sel])
            vals = ((x[rows] >> offs.astype(np.uint64)) & _U1).astype(np.uint8)
            buf[rows, cur[rows] + offs] = vals
            cur[sel] += m[sel]
        shift = np.minimum(m, 63).astype(np.uint64)
        x = np.where(m >= 64, _U0, x >> shift)

        # Step 2: group testing, one significant coefficient per round.
        nn = n.copy()
        live = np.flatnonzero(active & (nn < ncoef))
        while live.size:
            # Group-test bit: anything significant left in this plane?
            t = (x[live] != 0).astype(np.uint8)
            buf[live, cur[live]] = t
            cur[live] += 1
            live = live[t == 1]
            if live.size == 0:
                break
            xs = x[live]
            tz = _trailing_zeros(xs)
            limit = ncoef - 1 - nn[live]  # scan bits writable before the
            #                               implied-1 position
            boundary = tz >= limit
            emit = np.where(boundary, limit, tz + 1)

            rows = np.repeat(live, emit)
            offs = _ragged_arange(emit)
            hit = (offs == np.repeat(emit - 1, emit)) & np.repeat(~boundary, emit)
            buf[rows, cur[rows] + offs] = hit.astype(np.uint8)
            cur[live] += emit

            adv = np.minimum(tz + 1, 63).astype(np.uint64)
            x[live] = np.where(boundary, _U0, xs >> adv)
            nn[live] += tz + 1
            live = live[nn[live] < ncoef]
        n = np.where(active, np.maximum(n, nn), n)

    if maxbits is not None:
        # Fixed rate: exact maxbits per block (truncate or zero-pad).
        if maxbits > cap:
            wide = np.zeros((nblocks, maxbits), dtype=np.uint8)
            wide[:, :cap] = buf
            buf = wide
        cur = np.full(nblocks, maxbits, dtype=np.int64)
    lens = cur.astype(np.uint32)
    mask = np.arange(buf.shape[1])[None, :] < cur[:, None]
    payload = np.packbits(buf[mask]).tobytes()
    return payload, lens


def expand_fixed_rate(
    payload: bytes,
    nblocks: int,
    maxbits: int,
    nplanes: np.ndarray,
    ncoef: int,
) -> tuple[bytes, np.ndarray]:
    """Re-pad a fixed-rate stream for :func:`decode_blocks`.

    Each block owns exactly ``maxbits`` bits; bits the encoder truncated
    must decode as zeros (a zero group test ends a plane cleanly), and the
    decoder must never read into the next block's region.  Expanding every
    block to the unlimited-stream capacity with zero fill gives both
    properties with the ordinary decoder.
    """
    cap = max(int(np.asarray(nplanes).max(initial=0)) * (2 * ncoef + 2), maxbits)
    bits = np.unpackbits(
        np.frombuffer(payload, dtype=np.uint8), count=nblocks * maxbits
    ).reshape(nblocks, maxbits)
    wide = np.zeros((nblocks, cap), dtype=np.uint8)
    wide[:, :maxbits] = bits
    lens = np.full(nblocks, cap, dtype=np.uint32)
    return np.packbits(wide.ravel()).tobytes(), lens


def decode_blocks(
    payload: bytes,
    lens: np.ndarray,
    nplanes: np.ndarray,
    intprec: int,
    ncoef: int,
) -> np.ndarray:
    """Invert :func:`encode_blocks`; returns ``(nblocks, ncoef)`` uint64."""
    lens = np.asarray(lens, dtype=np.int64)
    nplanes = np.asarray(nplanes, dtype=np.int64)
    nblocks = lens.size
    nb = np.zeros((nblocks, ncoef), dtype=np.uint64)
    max_planes = int(nplanes.max(initial=0))
    if max_planes == 0:
        return nb
    total_bits = int(lens.sum())
    bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8), count=total_bits)
    # Byte view padded for the 9-byte window gathers near the stream tail.
    raw = np.frombuffer(payload, dtype=np.uint8)
    pad = np.zeros(raw.size + 16, dtype=np.uint64)
    pad[: raw.size] = raw

    offsets = np.cumsum(lens) - lens
    cur = offsets.copy()
    ends = offsets + lens
    n = np.zeros(nblocks, dtype=np.int64)
    coef_idx = np.arange(ncoef, dtype=np.uint64)

    for p in range(max_planes):
        active = p < nplanes
        if not active.any():
            break
        k = intprec - 1 - p
        x = np.zeros(nblocks, dtype=np.uint64)

        m = np.where(active, n, 0)
        sel = np.flatnonzero(m > 0)
        if sel.size:
            counts = m[sel]
            rows = np.repeat(sel, counts)
            offs = _ragged_arange(counts)
            vals = bits[cur[rows] + offs].astype(np.uint64) << offs.astype(np.uint64)
            starts = np.cumsum(counts) - counts
            x[sel] = np.bitwise_or.reduceat(vals, starts)
            cur[sel] += counts

        nn = n.copy()
        live = np.flatnonzero(active & (nn < ncoef))
        while live.size:
            t = bits[cur[live]]
            cur[live] += 1
            live = live[t == 1]
            if live.size == 0:
                break
            # 64-bit stream window at each cursor locates the zero run.
            c = cur[live]
            byte = c >> 3
            w = np.zeros(live.size, dtype=np.uint64)
            for i in range(8):
                w |= pad[byte + i] << np.uint64(8 * (7 - i))
            sh = (c & 7).astype(np.uint64)
            w = (w << sh) | (pad[byte + 8] >> (np.uint64(8) - sh))

            z = _leading_zeros64(w)
            limit = ncoef - 1 - nn[live]
            boundary = z >= limit
            consumed = np.where(boundary, limit, z + 1)
            sigpos = np.where(boundary, ncoef - 1, nn[live] + z).astype(np.uint64)
            x[live] |= _U1 << sigpos
            cur[live] += consumed
            nn[live] = sigpos.astype(np.int64) + 1
            live = live[nn[live] < ncoef]
        n = np.where(active, np.maximum(n, nn), n)
        nb |= ((x[:, None] >> coef_idx) & _U1) << np.uint64(k)

    if (cur > ends).any():
        raise ValueError("corrupt ZFP stream: block overran its bit budget")
    return nb
