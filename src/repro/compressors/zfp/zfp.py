"""The ZFP compressor: fixed-accuracy and precision modes.

*Accuracy* mode honours an absolute error bound.  A block whose largest
exponent is ``emax`` gets ``emax - minexp + 2*(d+1)`` bit planes, where
``minexp = floor(log2 tolerance)`` -- the ``2*(d+1)`` margin absorbs the
growth of the lifted transform, which is also why ZFP characteristically
*over-preserves* the bound (the paper leans on this to explain ZFP_T's
lower ratios in Table IV and Figure 2).

*Precision* mode (``ZFP_P``, the paper's ``-p`` baseline) encodes a fixed
number of planes per block regardless of content.  Within a block this
approximates relative-error control against the block's largest magnitude,
so isolated small values in a large-magnitude block can lose all their
bits: the paper's strict-bound test shows exactly this failure (unbounded
maximum point-wise relative error), and this implementation reproduces it.

Representability caveat (shared with the reference ZFP): the accuracy-mode
guarantee requires the tolerance to be expressible in the *output* dtype,
i.e. ``tolerance >= ulp(max |x|)`` -- a float32 array with values near 1e6
cannot be reconstructed to 1e-6 absolute no matter what the codec does.
"""

from __future__ import annotations

import math

import numpy as np

from repro.compressors.base import (
    AbsoluteBound,
    Compressor,
    ErrorBound,
    PrecisionBound,
    RateBound,
)
from repro.compressors.zfp.embedded import decode_blocks, encode_blocks, expand_fixed_rate
from repro.compressors.zfp.fixedpoint import (
    EMPTY_EMAX,
    block_exponents,
    dequantize_blocks,
    intprec_for,
    negabinary_decode,
    negabinary_encode,
    quantize_blocks,
)
from repro.compressors.zfp.transform import fwd_xform, inv_xform, sequency_order
from repro.encoding import deflate, inflate
from repro.observe.tracer import span
from repro.utils.blocking import block_merge, block_partition

__all__ = ["ZFPCompressor", "planes_for_tolerance"]

_BLOCK = 4


def planes_for_tolerance(
    emax: np.ndarray, tolerance: float, ndim: int, intprec: int
) -> np.ndarray:
    """Bit planes to encode per block in fixed-accuracy mode.

    ZFP's ``precision(maxexp, ...)``: ``maxexp - minexp + 2*(d+1)`` planes,
    clamped to ``[0, intprec]``; blocks entirely below the tolerance emit
    nothing.  Our fixed-point scale is ``2**(intprec-4)`` instead of ZFP's
    ``2**(intprec-2)`` (two extra headroom bits for the lift + negabinary),
    so the same guarantee needs two additional planes here.
    """
    minexp = math.floor(math.log2(tolerance))
    raw = emax.astype(np.int64) - minexp + 2 * (ndim + 1) + 2
    raw = np.where(emax == EMPTY_EMAX, 0, raw)
    return np.clip(raw, 0, intprec)


class ZFPCompressor(Compressor):
    """Transform-based compressor (accuracy or precision mode).

    Parameters
    ----------
    mode:
        ``"accuracy"`` (absolute bound, :class:`AbsoluteBound`) or
        ``"precision"`` (fixed planes, :class:`PrecisionBound`).
    """

    def __init__(self, mode: str = "accuracy") -> None:
        if mode not in ("accuracy", "precision", "rate"):
            raise ValueError(
                f"mode must be 'accuracy', 'precision' or 'rate', got {mode!r}"
            )
        self.mode = mode
        self.name = {"accuracy": "ZFP_A", "precision": "ZFP_P", "rate": "ZFP_R"}[mode]
        self.supported_bounds = {
            "accuracy": (AbsoluteBound,),
            "precision": (PrecisionBound,),
            "rate": (RateBound,),
        }[mode]

    # -- compression -------------------------------------------------------

    def compress(self, data: np.ndarray, bound: ErrorBound) -> bytes:
        self._check_bound(bound)
        data = self._check_input(data)
        ndim = data.ndim
        intprec = intprec_for(data.dtype)

        with span("block-partition"):
            tiles, padded_shape = block_partition(data, _BLOCK)
            emax = block_exponents(tiles)
            q = quantize_blocks(tiles, emax, intprec)
        with span("block-transform"):
            coeffs = fwd_xform(q).reshape(q.shape[0], -1)
            perm, _ = sequency_order(ndim)
            nb = negabinary_encode(coeffs[:, perm])

        with span("encode-planes", mode=self.mode):
            maxbits = None
            if self.mode == "accuracy":
                nplanes = planes_for_tolerance(emax, float(bound.value), ndim, intprec)
            elif self.mode == "precision":
                nplanes = np.where(emax == EMPTY_EMAX, 0, min(bound.bits, intprec))
            else:
                # Fixed rate: code every plane, hard-cap each block's bits.
                nplanes = np.where(emax == EMPTY_EMAX, 0, intprec)
                maxbits = max(1, round(float(bound.value) * _BLOCK**ndim))
            payload, lens = encode_blocks(nb, nplanes, intprec, maxbits=maxbits)

        with span("serialize") as sp:
            box = self._new_container(self.name, data)
            box.put_f64("param", float(bound.value))
            box.put_shape("padded", padded_shape)
            box.put("emax", deflate(emax.astype(np.int32).tobytes()))
            box.put("lens", deflate(lens.tobytes()))
            box.put("payload", payload)
            blob = box.to_bytes()
            sp.add_bytes(out=len(blob))
        return blob

    # -- decompression -----------------------------------------------------

    def decompress(self, blob: bytes) -> np.ndarray:
        with span("parse") as sp:
            box, shape, dtype = self._open_container(blob, self.name)
            sp.add_bytes(in_=len(blob))
        param = box.get_f64("param")
        padded_shape = box.get_shape("padded")
        ndim = len(shape)
        intprec = intprec_for(dtype)
        ncoef = _BLOCK**ndim

        with span("decode-planes", mode=self.mode):
            emax = np.frombuffer(inflate(box.get("emax")), dtype=np.int32)
            lens = np.frombuffer(inflate(box.get("lens")), dtype=np.uint32)
            if emax.size != lens.size:
                raise ValueError("corrupt ZFP stream: block table size mismatch")

            payload = box.get("payload")
            if self.mode == "accuracy":
                nplanes = planes_for_tolerance(emax, param, ndim, intprec)
            elif self.mode == "precision":
                nplanes = np.where(emax == EMPTY_EMAX, 0, min(int(param), intprec))
            else:
                nplanes = np.where(emax == EMPTY_EMAX, 0, intprec)
                maxbits = max(1, round(param * ncoef))
                payload, lens = expand_fixed_rate(
                    payload, lens.size, maxbits, nplanes, ncoef
                )

            nb = decode_blocks(payload, lens, nplanes, intprec, ncoef)
        with span("inverse-transform"):
            _, inv_perm = sequency_order(ndim)
            coeffs = negabinary_decode(nb)[:, inv_perm]
            q = inv_xform(coeffs.reshape((-1,) + (_BLOCK,) * ndim))
            tiles = dequantize_blocks(q, emax, intprec, dtype)
        with span("block-merge"):
            return block_merge(tiles, padded_shape, _BLOCK, shape)
