"""Lossless baseline (the introduction's motivating strawman).

The paper opens with the observation that lossless compressors manage no
more than about 2:1 on scientific floating-point data because mantissa
bits are effectively random.  ``LosslessDeflate`` (registered as
``GZIP``; gzip *is* DEFLATE plus a file header) reproduces that baseline,
with an optional byte-transpose filter (shuffle, as in blosc/HDF5) that
groups the more-compressible exponent bytes together.

Being lossless, it vacuously satisfies any error bound, so it accepts
every bound kind (and ``None``).
"""

from __future__ import annotations

import numpy as np

from repro.compressors.base import (
    AbsoluteBound,
    Compressor,
    ErrorBound,
    PrecisionBound,
    RateBound,
    RelativeBound,
)
from repro.encoding import deflate, inflate

__all__ = ["LosslessDeflate"]


class LosslessDeflate(Compressor):
    """DEFLATE with optional byte shuffle; exact reconstruction."""

    name = "GZIP"
    supported_bounds = (AbsoluteBound, RelativeBound, PrecisionBound, RateBound)

    def __init__(self, shuffle: bool = True, level: int = 6) -> None:
        if not 1 <= level <= 9:
            raise ValueError(f"level must be in [1, 9], got {level}")
        self.shuffle = shuffle
        self.level = level

    def compress(self, data: np.ndarray, bound: ErrorBound | None = None) -> bytes:
        if bound is not None:
            self._check_bound(bound)
        data = self._check_input(data)
        raw = data.tobytes()
        if self.shuffle:
            raw = (
                np.frombuffer(raw, dtype=np.uint8)
                .reshape(-1, data.dtype.itemsize)
                .T.copy()
                .tobytes()
            )
        box = self._new_container(self.name, data)
        box.put_u64("shuffle", int(self.shuffle))
        box.put("payload", deflate(raw, self.level))
        return box.to_bytes()

    def decompress(self, blob: bytes) -> np.ndarray:
        box, shape, dtype = self._open_container(blob, self.name)
        raw = inflate(box.get("payload"))
        if box.get_u64("shuffle"):
            itemsize = dtype.itemsize
            raw = (
                np.frombuffer(raw, dtype=np.uint8)
                .reshape(itemsize, -1)
                .T.copy()
                .tobytes()
            )
        return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
