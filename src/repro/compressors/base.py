"""Compressor interface, error-bound types and registry.

Every compressor consumes a numpy array plus an :class:`ErrorBound` and
produces a self-describing byte stream (:class:`repro.encoding.Container`
serialized with :meth:`Container.to_bytes`).  Decompression needs only the
bytes.

Three bound flavours exist, mirroring the paper's terminology:

* :class:`AbsoluteBound` -- ``|x - x_d| <= value`` point-wise,
* :class:`RelativeBound` -- ``|x - x_d| <= value * |x|`` point-wise,
* :class:`PrecisionBound` -- "keep ``bits`` most-significant bits"
  (FPZIP's ``-p`` and ZFP's precision mode; the paper stresses these do
  not map directly onto an error bound, which is why the transformation
  scheme is needed).
"""

from __future__ import annotations

import abc
import functools
import struct
import threading
import zlib
from dataclasses import dataclass

import numpy as np

from repro.encoding.container import Container, ContainerError, StreamError
from repro.observe.events import emit as _emit_event
from repro.observe.events import get_event_log as _get_event_log
from repro.observe.tracer import get_tracer as _get_tracer
from repro.observe.tracer import span as _span

__all__ = [
    "ErrorBound",
    "AbsoluteBound",
    "RelativeBound",
    "PrecisionBound",
    "RateBound",
    "UnsupportedBound",
    "Compressor",
    "register_compressor",
    "get_compressor",
    "available_compressors",
]


class UnsupportedBound(TypeError):
    """Raised when a compressor is handed a bound kind it cannot honour."""


@dataclass(frozen=True)
class ErrorBound:
    """Base class for error-control demands."""

    value: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.value) or self.value <= 0:
            raise ValueError(f"bound must be a positive finite number, got {self.value}")


@dataclass(frozen=True)
class AbsoluteBound(ErrorBound):
    """Point-wise absolute error bound ``|x - x_d| <= value``."""

    kind = "abs"


@dataclass(frozen=True)
class RelativeBound(ErrorBound):
    """Point-wise relative error bound ``|x - x_d| <= value * |x|``."""

    kind = "rel"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.value >= 1.0:
            raise ValueError(
                f"point-wise relative bounds must be < 1 (got {self.value}); at 1 the "
                "sign of the data is no longer recoverable"
            )


@dataclass(frozen=True)
class RateBound(ErrorBound):
    """Fixed rate: exactly ``value`` bits per value (ZFP's fixed-rate mode).

    No error guarantee -- the codec spends a hard bit budget as well as it
    can (rate-distortion optimized), which is what enables random access.
    """

    kind = "rate"

    def __post_init__(self) -> None:
        if not 0.5 <= self.value <= 64:
            raise ValueError(f"rate must be in [0.5, 64] bits/value, got {self.value}")


@dataclass(frozen=True)
class PrecisionBound(ErrorBound):
    """Keep ``int(value)`` most-significant bits per value (FPZIP/ZFP -p)."""

    kind = "prec"

    def __post_init__(self) -> None:
        if self.value != int(self.value) or not 2 <= self.value <= 64:
            raise ValueError(f"precision must be an integer in [2, 64], got {self.value}")

    @property
    def bits(self) -> int:
        return int(self.value)


# Exceptions a decoder fed corrupt bytes can stumble into before noticing
# the damage: numpy shape/indexing errors, struct/zlib parse failures,
# exhausted bit streams, dict lookups on corrupt metadata, and pathological
# allocations from corrupt sizes.  Anything in this tuple leaking from a
# ``decompress`` is translated to :class:`ContainerError` so callers deal
# with one ``StreamError`` hierarchy instead of numpy internals.
_DECODE_LEAKS = (
    ValueError,
    TypeError,
    KeyError,
    IndexError,
    AttributeError,
    OverflowError,
    ZeroDivisionError,
    EOFError,
    MemoryError,
    struct.error,
    zlib.error,
)


def _translate_decode_errors(fn):
    """Wrap a ``decompress`` so corrupt streams raise only ``StreamError``s."""

    @functools.wraps(fn)
    def wrapper(self, blob, *args, **kwargs):
        try:
            return fn(self, blob, *args, **kwargs)
        except StreamError:
            raise
        except UnsupportedBound:
            raise
        except _DECODE_LEAKS as exc:
            raise ContainerError(
                f"corrupt {self.name} stream: {type(exc).__name__}: {exc}"
            ) from exc

    wrapper.__decode_guard__ = True
    return wrapper


def _traced_compress(fn):
    """Wrap a ``compress`` in a ``compress`` span carrying codec + bytes."""

    @functools.wraps(fn)
    def wrapper(self, *args, **kwargs):
        if not _get_tracer().enabled and _get_event_log() is None:
            # No-op fast path: with tracing off and no event sink there is
            # nothing to record -- skip span/event setup entirely so the
            # disabled wrapper allocates nothing per call.
            return fn(self, *args, **kwargs)
        with _span("compress", codec=self.name) as sp:
            blob = fn(self, *args, **kwargs)
            data = args[0] if args else kwargs.get("data")
            sp.add_bytes(in_=getattr(data, "nbytes", 0), out=len(blob))
            _emit_event(
                "compress",
                span=sp,
                codec=self.name,
                bytes_in=getattr(data, "nbytes", 0),
                bytes_out=len(blob),
            )
        return blob

    wrapper.__trace_wrapped__ = True
    return wrapper


def _traced_decompress(fn):
    """Wrap a ``decompress`` in a ``decompress`` span carrying codec + bytes."""

    @functools.wraps(fn)
    def wrapper(self, blob, *args, **kwargs):
        if not _get_tracer().enabled and _get_event_log() is None:
            return fn(self, blob, *args, **kwargs)
        with _span("decompress", codec=self.name) as sp:
            out = fn(self, blob, *args, **kwargs)
            sp.add_bytes(in_=len(blob), out=getattr(out, "nbytes", 0))
            _emit_event(
                "decompress",
                span=sp,
                codec=self.name,
                bytes_in=len(blob),
                bytes_out=getattr(out, "nbytes", 0),
            )
        return out

    wrapper.__trace_wrapped__ = True
    return wrapper


# Per-thread nesting depth of decompress_trusted() calls; while non-zero,
# _open_container skips re-verifying the stream CRC (the caller's own
# checksummed stream already covered the nested bytes).
_TRUST = threading.local()


def _trusted_depth() -> int:
    return getattr(_TRUST, "depth", 0)


class Compressor(abc.ABC):
    """Abstract error-bounded lossy compressor.

    Subclasses set :attr:`name` (the identifier used in experiment tables)
    and :attr:`supported_bounds` (tuple of bound classes).  Every concrete
    ``decompress`` is automatically guarded so that feeding it corrupt
    bytes raises a :class:`repro.encoding.StreamError` subclass rather
    than leaking numpy/zlib internals.
    """

    name: str = "abstract"
    supported_bounds: tuple[type, ...] = ()
    #: True when this compressor round-trips NaN/±Inf exactly (e.g. a
    #: ``TransformedCompressor`` with ``nonfinite="preserve"``).  Wrappers
    #: like ``ChunkedCompressor`` consult it before rejecting input.
    allows_nonfinite: bool = False

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        fn = cls.__dict__.get("decompress")
        if fn is not None:
            if not getattr(fn, "__decode_guard__", False):
                fn = _translate_decode_errors(fn)
            if not getattr(fn, "__trace_wrapped__", False):
                fn = _traced_decompress(fn)
            cls.decompress = fn
        fn = cls.__dict__.get("compress")
        if fn is not None and not getattr(fn, "__trace_wrapped__", False):
            cls.compress = _traced_compress(fn)

    @abc.abstractmethod
    def compress(self, data: np.ndarray, bound: ErrorBound) -> bytes:
        """Compress ``data`` under ``bound``; returns container bytes."""

    @abc.abstractmethod
    def decompress(self, blob: bytes) -> np.ndarray:
        """Reconstruct the array (original shape and dtype) from bytes."""

    def compress_verified(self, data: np.ndarray, bound: ErrorBound) -> tuple[bytes, np.ndarray]:
        """Compress and also return the exact array ``decompress`` yields.

        Verifying wrappers (e.g. the transformed compressor's bound check)
        call this instead of ``compress`` + ``decompress``.  Codecs that
        already materialize their decoder's reconstruction while encoding
        (SZ must, to patch round-off violators) override it to skip the
        redundant decode; this default simply round-trips.
        """
        blob = self.compress(data, bound)
        return blob, self.decompress(blob)

    def decompress_trusted(self, blob: bytes) -> np.ndarray:
        """Decompress bytes whose integrity the caller already verified.

        Wrappers that store an inner stream as a section of their own
        checksummed container use this for the nested decode: the outer
        stream CRC covered every byte of ``blob``, so re-hashing it here
        would detect nothing new.  Structural and per-section validation
        still run; only the whole-stream CRC check is skipped (and only
        for the duration of this call, including deeper nesting).
        """
        _TRUST.depth = _trusted_depth() + 1
        try:
            return self.decompress(blob)
        finally:
            _TRUST.depth -= 1

    # -- shared helpers ----------------------------------------------------

    def _check_bound(self, bound: ErrorBound) -> None:
        if not isinstance(bound, self.supported_bounds):
            names = ", ".join(b.__name__ for b in self.supported_bounds)
            raise UnsupportedBound(
                f"{self.name} supports bounds ({names}); got {type(bound).__name__}"
            )

    @staticmethod
    def _check_input(data: np.ndarray, allow_nonfinite: bool = False) -> np.ndarray:
        data = np.asarray(data)
        if data.dtype not in (np.float32, np.float64):
            raise TypeError(f"expected float32/float64 data, got {data.dtype}")
        if data.ndim not in (1, 2, 3):
            raise ValueError(f"expected 1-D/2-D/3-D data, got ndim={data.ndim}")
        if data.size == 0:
            raise ValueError("cannot compress an empty array")
        if not allow_nonfinite:
            finite = np.isfinite(data)
            if not finite.all():
                n_nan = int(np.isnan(data).sum())
                n_inf = int(data.size - int(finite.sum()) - n_nan)
                raise ValueError(
                    f"data contains {n_nan} NaN and {n_inf} Inf values "
                    f"(of {data.size}); error-bounded lossy compression of "
                    "non-finite values is undefined (use nonfinite='preserve' "
                    "on a transformed compressor to store them exactly)"
                )
        return np.ascontiguousarray(data)

    @staticmethod
    def _new_container(codec: str, data: np.ndarray) -> Container:
        box = Container(codec)
        box.put_dtype("dtype", data.dtype)
        box.put_shape("shape", data.shape)
        return box

    @staticmethod
    def _open_container(blob: bytes, codec: str) -> tuple[Container, tuple[int, ...], np.dtype]:
        box = Container.from_bytes(blob, verify_checksums=not _trusted_depth())
        if box.codec != codec:
            raise ContainerError(
                f"stream was produced by {box.codec!r}, expected {codec!r}"
            )
        return box, box.get_shape("shape"), box.get_dtype("dtype")


_REGISTRY: dict[str, "type[Compressor] | object"] = {}


def register_compressor(name: str, factory) -> None:
    """Register a zero-argument compressor factory under ``name``."""
    if name in _REGISTRY:
        raise ValueError(f"compressor {name!r} already registered")
    _REGISTRY[name] = factory


def get_compressor(name: str) -> Compressor:
    """Instantiate a registered compressor by experiment-table name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown compressor {name!r}; known: {known}") from None
    return factory()


def available_compressors() -> list[str]:
    return sorted(_REGISTRY)
