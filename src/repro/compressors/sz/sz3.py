"""SZ3-style multilevel interpolation compressor (``SZ3_ABS``).

A second extension beyond the paper: SZ3 (Liang et al., the successor of
the SZ evaluated in the paper, and the engine behind today's production
PW_REL mode) replaces the one-step Lorenzo stencil with *hierarchical
interpolation*: a coarse grid is stored first, then each level doubles the
resolution one axis at a time, predicting the new points by cubic (or
linear) interpolation of the surrounding already-known points.  Smooth
fields predict dramatically better because the effective prediction
neighbourhood grows with the level instead of being one cell.

The lattice formulation (DESIGN.md section 5.1) again does the heavy
lifting: predictions are integer functions of lattice indices the decoder
reconstructs exactly, so the traversal is a handful of strided-view numpy
passes per level on both sides and the absolute bound is structural.
Wrapped in the log transform this becomes ``SZ3_T``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.compressors.base import AbsoluteBound, Compressor, ErrorBound
from repro.compressors.sz.quantizer import lattice_quantize, lattice_reconstruct
from repro.compressors.sz.sz import DEFAULT_RADIUS
from repro.encoding import HuffmanCodec, deflate, inflate, zigzag_decode, zigzag_encode

__all__ = ["SZ3Compressor"]

_MAX_LEVELS = 6


def _root_level(shape: tuple[int, ...]) -> int:
    """Deepest level whose coarse grid keeps >= 2 samples per axis."""
    level = min(int(math.log2(max(s - 1, 1))) for s in shape)
    return max(0, min(level, _MAX_LEVELS))


def _predict_line(E: np.ndarray, nt: int, cubic: bool) -> np.ndarray:
    """Predict the odd samples of a line from its even samples.

    ``E`` holds the known (even-position) samples along the last axis;
    target ``i`` sits between ``E[i]`` and ``E[i+1]``.  Linear averages
    with copy fallback at the right edge; the cubic kernel
    ``(-1, 9, 9, -1)/16`` (SZ3's choice) refines interior targets.
    """
    ne = E.shape[-1]
    pred = E[..., :nt].copy()
    nr = min(nt, ne - 1)
    if nr > 0:
        pred[..., :nr] = (E[..., :nr] + E[..., 1 : nr + 1]) >> 1
    if cubic and ne >= 4:
        i1 = min(nr, ne - 3) + 1  # targets needing E[i+2] stop at ne-3
        if i1 > 1:
            a = E[..., 0 : i1 - 1]
            b = E[..., 1:i1]
            c = E[..., 2 : i1 + 1]
            d = E[..., 3 : i1 + 2]
            pred[..., 1:i1] = (-a + 9 * b + 9 * c - d + 8) >> 4
    return pred


def _traverse(k: np.ndarray, q: np.ndarray, level: int, cubic: bool, encode: bool) -> None:
    """Shared encoder/decoder traversal.

    encode: fill ``q`` with interpolation residuals of the known ``k``.
    decode: fill ``k`` from ``q`` progressively (prediction + residual).
    """
    ndim = k.ndim
    stride = 1 << level
    root = tuple(slice(None, None, stride) for _ in range(ndim))
    if encode:
        q[root] = k[root]  # roots predicted as 0
    else:
        k[root] = q[root]

    s = stride
    while s >= 1:
        for axis in range(ndim):
            steps = tuple(
                s if j <= axis else 2 * s for j in range(ndim)
            )
            view_k = np.moveaxis(k[tuple(slice(None, None, st) for st in steps)], axis, -1)
            view_q = np.moveaxis(q[tuple(slice(None, None, st) for st in steps)], axis, -1)
            E = view_k[..., ::2]
            T = view_k[..., 1::2]
            if T.shape[-1] == 0:
                continue
            pred = _predict_line(E, T.shape[-1], cubic)
            if encode:
                view_q[..., 1::2] = T - pred
            else:
                view_k[..., 1::2] = pred + view_q[..., 1::2]
        s //= 2


class SZ3Compressor(Compressor):
    """Hierarchical-interpolation compressor, absolute error bound.

    Parameters
    ----------
    interp:
        ``"cubic"`` (SZ3's default kernel) or ``"linear"``.
    """

    name = "SZ3_ABS"
    supported_bounds = (AbsoluteBound,)

    def __init__(self, interp: str = "cubic", radius: int = DEFAULT_RADIUS) -> None:
        if interp not in ("cubic", "linear"):
            raise ValueError(f"interp must be 'cubic' or 'linear', got {interp!r}")
        self.interp = interp
        self.radius = radius
        self._huffman = HuffmanCodec()

    # -- compression -------------------------------------------------------

    def compress(self, data: np.ndarray, bound: ErrorBound) -> bytes:
        self._check_bound(bound)
        data = self._check_input(data)
        eb = float(bound.value)

        k, risky = lattice_quantize(data, eb)
        level = _root_level(data.shape)
        q = np.zeros_like(k)
        _traverse(k, q, level, self.interp == "cubic", encode=True)

        escape = (np.abs(q) > self.radius) | risky
        codes = np.where(escape, 0, q + (self.radius + 1)).ravel()
        esc_q = q[escape]

        recon = lattice_reconstruct(k, eb, data.dtype)
        viol = np.abs(data.astype(np.float64) - recon.astype(np.float64)) > eb
        patch = (viol | risky).ravel()
        patch_idx = np.flatnonzero(patch).astype(np.uint64)
        patch_val = data.ravel()[patch_idx.astype(np.int64)]

        box = self._new_container(self.name, data)
        box.put_f64("eb", eb)
        box.put_u64("radius", self.radius)
        box.put_u64("level", level)
        box.put_str("interp", self.interp)

        blob = self._huffman.encode(codes)
        squeezed = deflate(blob)
        if len(squeezed) < len(blob):
            box.put_u64("stage3", 1)
            blob = squeezed
        else:
            box.put_u64("stage3", 0)
        box.put("codes", blob)
        box.put("escq", deflate(zigzag_encode(esc_q).tobytes()))
        box.put_u64("n_esc", esc_q.size)
        box.put("patch_idx", deflate(patch_idx.tobytes()))
        box.put("patch_val", deflate(np.ascontiguousarray(patch_val).tobytes()))
        box.put_u64("n_patch", patch_idx.size)
        return box.to_bytes()

    # -- decompression -----------------------------------------------------

    def decompress(self, blob: bytes) -> np.ndarray:
        box, shape, dtype = self._open_container(blob, self.name)
        eb = box.get_f64("eb")
        radius = box.get_u64("radius")
        level = box.get_u64("level")
        cubic = box.get_str("interp") == "cubic"

        payload = box.get("codes")
        if box.get_u64("stage3"):
            payload = inflate(payload)
        codes = self._huffman.decode(payload)
        q = codes - (radius + 1)
        escape = codes == 0
        esc_q = zigzag_decode(np.frombuffer(inflate(box.get("escq")), dtype=np.uint64))
        if esc_q.size != box.get_u64("n_esc") or int(escape.sum()) != esc_q.size:
            raise ValueError("corrupt SZ3 stream: escape channel size mismatch")
        q[escape] = esc_q
        q = q.reshape(shape)

        k = np.zeros(shape, dtype=np.int64)
        _traverse(k, q, level, cubic, encode=False)

        recon = lattice_reconstruct(k, eb, dtype)
        patch_idx = np.frombuffer(inflate(box.get("patch_idx")), dtype=np.uint64)
        patch_val = np.frombuffer(inflate(box.get("patch_val")), dtype=dtype)
        if patch_idx.size != box.get_u64("n_patch") or patch_val.size != patch_idx.size:
            raise ValueError("corrupt SZ3 stream: patch channel size mismatch")
        flat = recon.ravel()
        flat[patch_idx.astype(np.int64)] = patch_val
        return flat.reshape(shape)
