r"""Lorenzo prediction on integer lattice indices.

SZ predicts every value from its already-reconstructed causal neighbours:
1 neighbour in 1-D, 3 in 2-D, 7 in 3-D (the Lorenzo stencil; Ibarria et
al. 2003).  On the lattice-index formulation used by this library (see
DESIGN.md section 5.1) the quantization code of a point is exactly the
d-dimensional discrete derivative of its lattice index ``k``:

.. math::

    q_{1D}[i]     &= k[i] - k[i-1] \\
    q_{2D}[i,j]   &= k[i,j] - k[i-1,j] - k[i,j-1] + k[i-1,j-1] \\
    q_{3D}[i,j,l] &= \Delta_i \Delta_j \Delta_l \, k

with ``k == 0`` outside the domain, and reconstruction is the inverse
cumulative sum.  Both directions are therefore single numpy passes per
axis with no sequential scan.

All functions operate on the *last* ``ndim`` axes so callers can batch an
arbitrary leading block dimension (used by the blockwise SZ_PWR mode and
by the theory-validation experiments).
"""

from __future__ import annotations

import numpy as np

__all__ = ["lorenzo_residual", "lorenzo_reconstruct", "lorenzo_predict"]


def lorenzo_residual(k: np.ndarray, ndim: int, order: int = 1) -> np.ndarray:
    """Quantization residuals ``q = k - lorenzo_prediction(k)``.

    Parameters
    ----------
    k:
        int64 lattice-index array.  Only the last ``ndim`` axes are treated
        as spatial; leading axes are independent batches.
    ndim:
        Spatial dimensionality (1, 2 or 3).
    order:
        Prediction order (SZ 1.4's "layer" setting).  Order 1 is the
        classic Lorenzo stencil; order 2 differences twice per axis, i.e.
        linear extrapolation from two causal layers -- better on smooth
        ramps, noisier on rough data.
    """
    _check(k, ndim, order)
    q = np.asarray(k, dtype=np.int64)
    for ax in range(k.ndim - ndim, k.ndim):
        for _ in range(order):
            q = np.diff(q, axis=ax, prepend=0)
    return q


def lorenzo_reconstruct(q: np.ndarray, ndim: int, order: int = 1) -> np.ndarray:
    """Invert :func:`lorenzo_residual` via cumulative sums."""
    _check(q, ndim, order)
    k = np.asarray(q, dtype=np.int64)
    for ax in range(q.ndim - ndim, q.ndim):
        for _ in range(order):
            k = np.cumsum(k, axis=ax, dtype=np.int64)
    return k


def lorenzo_predict(k: np.ndarray, ndim: int, order: int = 1) -> np.ndarray:
    """The Lorenzo prediction itself (``k - residual``); used by tests and
    by the theory module's quantization-index analysis (Theorem 3)."""
    return np.asarray(k, dtype=np.int64) - lorenzo_residual(k, ndim, order)


def _check(arr: np.ndarray, ndim: int, order: int) -> None:
    if ndim not in (1, 2, 3):
        raise ValueError(f"ndim must be 1, 2 or 3, got {ndim}")
    if order not in (1, 2):
        raise ValueError(f"order must be 1 or 2, got {order}")
    if arr.ndim < ndim:
        raise ValueError(f"array has {arr.ndim} axes, needs at least {ndim}")
