r"""SZ's blockwise point-wise-relative mode (``SZ_PWR``).

This is the strategy of Di, Tao & Cappello (DRBSD-2 2017) that the paper
uses as its main baseline: split the array into non-overlapping blocks and
run absolute-error-bounded compression inside each block with

.. math:: eb_{block} = b_r \cdot \min_{x \in block, x \ne 0} |x|

The design weaknesses the paper calls out fall out of this construction
naturally: per-block metadata and a per-block unpredictable first point cap
the achievable ratio, and a single small magnitude in an otherwise large
block collapses ``eb_block``, blowing residuals out of the quantization
range (visible on spiky data such as HACC).
"""

from __future__ import annotations

import numpy as np

from repro.compressors.base import Compressor, ErrorBound, RelativeBound
from repro.compressors.sz.predictor import lorenzo_reconstruct, lorenzo_residual
from repro.compressors.sz.quantizer import CLIP_INDEX, EB_SHRINK, RISKY_INDEX
from repro.compressors.sz.sz import DEFAULT_RADIUS
from repro.encoding import HuffmanCodec, deflate, inflate, zigzag_decode, zigzag_encode
from repro.utils.blocking import block_merge, block_partition

__all__ = ["SZPointwiseRelative", "DEFAULT_BLOCKS"]

#: Default block edge per dimensionality (elements per block stay ~512).
DEFAULT_BLOCKS = {1: 256, 2: 16, 3: 8}


class SZPointwiseRelative(Compressor):
    """Blockwise point-wise-relative SZ (the paper's ``SZ_PWR`` baseline)."""

    name = "SZ_PWR"
    supported_bounds = (RelativeBound,)

    def __init__(self, block: int | None = None, radius: int = DEFAULT_RADIUS) -> None:
        if block is not None and block <= 1:
            raise ValueError(f"block edge must be > 1, got {block}")
        self.block = block
        self.radius = radius
        self._huffman = HuffmanCodec()

    def _edge(self, ndim: int) -> int:
        return self.block if self.block is not None else DEFAULT_BLOCKS[ndim]

    # -- compression -------------------------------------------------------

    def compress(self, data: np.ndarray, bound: ErrorBound) -> bytes:
        self._check_bound(bound)
        data = self._check_input(data)
        br = float(bound.value)
        ndim = data.ndim
        edge = self._edge(ndim)

        tiles, padded_shape = block_partition(data, edge)
        tiles64 = tiles.astype(np.float64)
        nblocks = tiles.shape[0]
        flat = np.abs(tiles64).reshape(nblocks, -1)

        # Per-block bound from the smallest non-zero magnitude; all-zero
        # blocks get a dummy bound (they quantize to exact zeros anyway).
        masked = np.where(flat > 0, flat, np.inf)
        min_abs = masked.min(axis=1)
        all_zero = ~np.isfinite(min_abs)
        eb_block = np.where(all_zero, 1.0, br * min_abs)

        step = (2.0 * EB_SHRINK) * eb_block.reshape((nblocks,) + (1,) * ndim)
        kf = np.rint(tiles64 / step)
        risky = np.abs(kf) > RISKY_INDEX
        k = np.clip(kf, -CLIP_INDEX, CLIP_INDEX).astype(np.int64)

        q = lorenzo_residual(k, ndim)
        escape = (np.abs(q) > self.radius) | risky
        codes = np.where(escape, 0, q + (self.radius + 1)).ravel()
        esc_q = q[escape]

        # Verify against the per-block absolute bound and patch stragglers.
        recon = (k.astype(np.float64) * step).astype(data.dtype)
        viol = np.abs(tiles64 - recon.astype(np.float64)) > eb_block.reshape(
            (nblocks,) + (1,) * ndim
        )
        patch = (viol | risky).reshape(-1)
        patch_idx = np.flatnonzero(patch).astype(np.uint64)
        patch_val = tiles.reshape(-1)[patch_idx.astype(np.int64)]

        box = self._new_container(self.name, data)
        box.put_f64("br", br)
        box.put_u64("radius", self.radius)
        box.put_u64("edge", edge)
        box.put_shape("padded", padded_shape)
        box.put("eb_block", deflate(eb_block.tobytes()))
        box.put_u64("nblocks", nblocks)

        blob = self._huffman.encode(codes)
        squeezed = deflate(blob)
        if len(squeezed) < len(blob):
            box.put_u64("stage3", 1)
            blob = squeezed
        else:
            box.put_u64("stage3", 0)
        box.put("codes", blob)
        box.put("escq", deflate(zigzag_encode(esc_q).tobytes()))
        box.put_u64("n_esc", esc_q.size)
        box.put("patch_idx", deflate(patch_idx.tobytes()))
        box.put("patch_val", deflate(np.ascontiguousarray(patch_val).tobytes()))
        box.put_u64("n_patch", patch_idx.size)
        return box.to_bytes()

    # -- decompression -----------------------------------------------------

    def decompress(self, blob: bytes) -> np.ndarray:
        box, shape, dtype = self._open_container(blob, self.name)
        radius = box.get_u64("radius")
        edge = box.get_u64("edge")
        padded_shape = box.get_shape("padded")
        nblocks = box.get_u64("nblocks")
        ndim = len(shape)

        eb_block = np.frombuffer(inflate(box.get("eb_block")), dtype=np.float64)
        if eb_block.size != nblocks:
            raise ValueError("corrupt SZ_PWR stream: bound table size mismatch")

        payload = box.get("codes")
        if box.get_u64("stage3"):
            payload = inflate(payload)
        codes = self._huffman.decode(payload)

        q = codes - (radius + 1)
        escape = codes == 0
        esc_q = zigzag_decode(np.frombuffer(inflate(box.get("escq")), dtype=np.uint64))
        if esc_q.size != box.get_u64("n_esc") or int(escape.sum()) != esc_q.size:
            raise ValueError("corrupt SZ_PWR stream: escape channel size mismatch")
        q[escape] = esc_q

        q = q.reshape((nblocks,) + (edge,) * ndim)
        k = lorenzo_reconstruct(q, ndim)
        step = (2.0 * EB_SHRINK) * eb_block.reshape((nblocks,) + (1,) * ndim)
        tiles = (k.astype(np.float64) * step).astype(dtype)

        patch_idx = np.frombuffer(inflate(box.get("patch_idx")), dtype=np.uint64)
        patch_val = np.frombuffer(inflate(box.get("patch_val")), dtype=dtype)
        if patch_idx.size != box.get_u64("n_patch") or patch_val.size != patch_idx.size:
            raise ValueError("corrupt SZ_PWR stream: patch channel size mismatch")
        flat = tiles.reshape(-1)
        flat[patch_idx.astype(np.int64)] = patch_val
        tiles = flat.reshape((nblocks,) + (edge,) * ndim)

        return block_merge(tiles, padded_shape, edge, shape)
