"""Linear-scaling quantization on the absolute-error lattice.

SZ's linear-scaling quantization snaps reconstructions onto the lattice
``2*eb*Z``; a value quantized to index ``k`` reconstructs to ``k * 2 * eb``
with ``|x - x_d| <= eb`` by construction.  This module owns the float
subtleties:

* indices are computed in float64 and clipped to ``+-2**55`` so that the
  3-D Lorenzo residual (an 8-term signed sum) can never overflow int64;
* points whose index magnitude exceeds ``RISKY_INDEX`` (``2**40``) are
  flagged *risky*: for them the quotient/product round-off can eat into
  the bound, so the caller stores the original value verbatim;
* the internal bound is shrunk by ``EB_SHRINK`` so that quantization,
  reconstruction multiply and the final cast back to the input dtype stay
  inside the user's bound for every non-risky point (the compressor still
  re-verifies and patches any stragglers -- see ``sz.py``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "EB_SHRINK",
    "RISKY_INDEX",
    "CLIP_INDEX",
    "lattice_quantize",
    "lattice_reconstruct",
    "quantize_lorenzo",
    "residual_codes",
    "restore_residuals",
]

#: Fractional shrink applied to the user's bound before quantization.
EB_SHRINK = 1.0 - 2.0**-9

#: Index magnitude beyond which float64 round-off may violate the bound.
RISKY_INDEX = 2.0**40

#: Hard clip keeping the 8-term Lorenzo sums inside int64.
CLIP_INDEX = 2.0**55


def lattice_quantize(data: np.ndarray, eb: float) -> tuple[np.ndarray, np.ndarray]:
    """Quantize ``data`` onto the ``2*eb_int`` lattice.

    Returns ``(k, risky)`` where ``k`` is the int64 index array and
    ``risky`` a boolean mask of points that must be stored verbatim.
    The computation is deliberately expressed so a decompressor holding the
    verbatim value of a risky point reproduces the identical ``k`` (the
    index feeds neighbouring predictions on both sides).
    """
    if eb <= 0 or not np.isfinite(eb):
        raise ValueError(f"absolute bound must be positive and finite, got {eb}")
    x = np.asarray(data, dtype=np.float64)
    if not np.isfinite(x).all():
        # A NaN index compares False against RISKY_INDEX and casting a
        # non-finite float to int64 is undefined behaviour; pinning such
        # points to index 0 (the pre-safeguards behaviour) poisons the
        # Lorenzo predictions of every neighbour.  Lattice quantization of
        # non-finite values is undefined, full stop: callers sanitize
        # NaN/Inf out and restore them bit-exactly through the safeguard
        # patch channel (see SZCompressor / repro.safeguards).
        raise ValueError(
            "cannot quantize non-finite values; sanitize NaN/Inf and route "
            "them through the safeguard patch channel"
        )
    step = 2.0 * internal_bound(eb)
    with np.errstate(over="ignore"):
        # |x| / step may overflow to Inf for huge inputs and tiny bounds;
        # the Inf index lands in the risky mask below, not in a warning.
        kf = np.rint(x / step)
    risky = np.abs(kf) > RISKY_INDEX
    finite = np.isfinite(kf)
    if not finite.all():
        # |x| / step can still overflow to Inf for huge finite inputs;
        # those points are already flagged risky (Inf > RISKY_INDEX), so
        # the caller stores them verbatim -- the index only needs to be
        # safely castable.
        kf = np.where(finite, kf, 0.0)
    k = np.clip(kf, -CLIP_INDEX, CLIP_INDEX).astype(np.int64)
    return k, risky


def lattice_reconstruct(k: np.ndarray, eb: float, dtype: np.dtype) -> np.ndarray:
    """Reconstruct values ``k * 2 * eb_int`` in the target dtype."""
    step = 2.0 * internal_bound(eb)
    return (np.asarray(k, dtype=np.float64) * step).astype(dtype)


def quantize_lorenzo(
    data: np.ndarray, eb: float, ndim: int, order: int = 1
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused lattice quantization + Lorenzo prediction.

    One call covering SZ's first two stages: quantizes ``data`` onto the
    lattice and differences the index array along the last ``ndim`` axes
    (whole-array numpy passes, no per-point work).  Returns
    ``(k, q, risky)`` -- indices, residuals, verbatim mask.  Shared by the
    plain and blockwise SZ compressors so the float subtleties (non-finite
    rejection, clipping) live in exactly one place.
    """
    from repro.compressors.sz.predictor import lorenzo_residual

    k, risky = lattice_quantize(data, eb)
    q = lorenzo_residual(k, ndim, order)
    return k, q, risky


def residual_codes(
    q: np.ndarray, risky: np.ndarray, radius: int
) -> tuple[np.ndarray, np.ndarray]:
    """Map residuals to Huffman symbols with an escape channel.

    Residuals inside ``[-radius, radius]`` (and not risky) become codes
    ``q + radius + 1``; everything else gets the escape code 0 and its
    exact residual is returned in ``esc_q`` (encounter order).  Returns
    ``(codes, esc_q)`` with ``codes`` flattened.
    """
    escape = (np.abs(q) > radius) | risky
    codes = np.where(escape, 0, q + (radius + 1)).ravel()
    return codes, q[escape]


def restore_residuals(
    codes: np.ndarray, esc_q: np.ndarray, radius: int, codec: str = "SZ"
) -> np.ndarray:
    """Inverse of :func:`residual_codes` (flat residual array).

    Raises ``ValueError`` when the escape channel does not match the
    number of escape codes in the stream; ``codec`` labels the message.
    """
    q = codes - (radius + 1)
    escape = codes == 0
    if int(escape.sum()) != esc_q.size:
        raise ValueError(f"corrupt {codec} stream: escape channel size mismatch")
    q[escape] = esc_q
    return q


def internal_bound(eb: float) -> float:
    """The shrunk bound actually used for the lattice step."""
    return eb * EB_SHRINK
