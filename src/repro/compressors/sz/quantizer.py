"""Linear-scaling quantization on the absolute-error lattice.

SZ's linear-scaling quantization snaps reconstructions onto the lattice
``2*eb*Z``; a value quantized to index ``k`` reconstructs to ``k * 2 * eb``
with ``|x - x_d| <= eb`` by construction.  This module owns the float
subtleties:

* indices are computed in float64 and clipped to ``+-2**55`` so that the
  3-D Lorenzo residual (an 8-term signed sum) can never overflow int64;
* points whose index magnitude exceeds ``RISKY_INDEX`` (``2**40``) are
  flagged *risky*: for them the quotient/product round-off can eat into
  the bound, so the caller stores the original value verbatim;
* the internal bound is shrunk by ``EB_SHRINK`` so that quantization,
  reconstruction multiply and the final cast back to the input dtype stay
  inside the user's bound for every non-risky point (the compressor still
  re-verifies and patches any stragglers -- see ``sz.py``).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "EB_SHRINK",
    "RISKY_INDEX",
    "CLIP_INDEX",
    "lattice_quantize",
    "lattice_reconstruct",
]

#: Fractional shrink applied to the user's bound before quantization.
EB_SHRINK = 1.0 - 2.0**-9

#: Index magnitude beyond which float64 round-off may violate the bound.
RISKY_INDEX = 2.0**40

#: Hard clip keeping the 8-term Lorenzo sums inside int64.
CLIP_INDEX = 2.0**55


def lattice_quantize(data: np.ndarray, eb: float) -> tuple[np.ndarray, np.ndarray]:
    """Quantize ``data`` onto the ``2*eb_int`` lattice.

    Returns ``(k, risky)`` where ``k`` is the int64 index array and
    ``risky`` a boolean mask of points that must be stored verbatim.
    The computation is deliberately expressed so a decompressor holding the
    verbatim value of a risky point reproduces the identical ``k`` (the
    index feeds neighbouring predictions on both sides).
    """
    if eb <= 0 or not np.isfinite(eb):
        raise ValueError(f"absolute bound must be positive and finite, got {eb}")
    x = np.asarray(data, dtype=np.float64)
    step = 2.0 * internal_bound(eb)
    kf = np.rint(x / step)
    risky = np.abs(kf) > RISKY_INDEX
    k = np.clip(kf, -CLIP_INDEX, CLIP_INDEX).astype(np.int64)
    return k, risky


def lattice_reconstruct(k: np.ndarray, eb: float, dtype: np.dtype) -> np.ndarray:
    """Reconstruct values ``k * 2 * eb_int`` in the target dtype."""
    step = 2.0 * internal_bound(eb)
    return (np.asarray(k, dtype=np.float64) * step).astype(dtype)


def internal_bound(eb: float) -> float:
    """The shrunk bound actually used for the lattice step."""
    return eb * EB_SHRINK
