"""SZ: prediction-based error-bounded lossy compressor (pure numpy).

Pipeline (Tao et al., IPDPS'17; Di & Cappello, IPDPS'16):

1. **Prediction** -- Lorenzo predictor over 1/3/7 neighbours for 1-D/2-D/3-D
   data (:mod:`repro.compressors.sz.predictor`).
2. **Linear-scaling quantization** -- prediction errors quantized into
   ``2*radius + 1`` bins of width ``2*eb``
   (:mod:`repro.compressors.sz.quantizer`).
3. **Entropy coding** -- canonical Huffman over the quantization codes,
   followed by an optional DEFLATE stage.

``SZ_ABS`` (:class:`SZCompressor`) honours absolute bounds; ``SZ_PWR``
(:class:`SZPointwiseRelative`) is the blockwise point-wise-relative mode the
paper compares against (per-block bound from the smallest magnitude in the
block).
"""

from repro.compressors.sz.predictor import lorenzo_reconstruct, lorenzo_residual
from repro.compressors.sz.pwr_block import SZPointwiseRelative
from repro.compressors.sz.quantizer import lattice_quantize, lattice_reconstruct
from repro.compressors.sz.sz import SZCompressor
from repro.compressors.sz.sz2 import SZ2Compressor
from repro.compressors.sz.sz3 import SZ3Compressor

__all__ = [
    "SZ2Compressor",
    "SZ3Compressor",
    "SZCompressor",
    "SZPointwiseRelative",
    "lattice_quantize",
    "lattice_reconstruct",
    "lorenzo_reconstruct",
    "lorenzo_residual",
]
