"""SZ 2.x-style blockwise regression/Lorenzo hybrid (``SZ2_ABS``).

An extension beyond the paper's SZ 1.4: Liang et al. (SC'18, the same
group) improved SZ by splitting the array into blocks and choosing, per
block, between the Lorenzo predictor and a fitted *linear regression*
``f(i,j,k) = b0 + b1*i + b2*j + b3*k``, which predicts smooth-gradient
regions far better than the one-step Lorenzo stencil.

The lattice formulation (DESIGN.md section 5.1) makes the hybrid sound by
construction: predictions only shape the *residual coding*, never the
reconstruction (always ``k * 2 * eb``), so any deterministic predictor --
including one fitted on original data and quantized for storage -- keeps
the absolute bound intact.

Per block this coder stores 1 selector bit plus, for regression blocks,
``d+1`` quantized coefficients; residuals from both predictor families
share one Huffman alphabet.  Wrapped in the log transform
(``TransformedCompressor``) it becomes ``SZ2_T``, the natural "better
inner compressor" extension the paper's scheme was designed to enable.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.compressors.base import AbsoluteBound, Compressor, ErrorBound
from repro.compressors.sz.predictor import lorenzo_reconstruct, lorenzo_residual
from repro.compressors.sz.quantizer import (
    CLIP_INDEX,
    EB_SHRINK,
    lattice_quantize,
    lattice_reconstruct,
    residual_codes,
    restore_residuals,
)
from repro.compressors.sz.sz import DEFAULT_RADIUS
from repro.encoding import HuffmanCodec, deflate, inflate, zigzag_decode, zigzag_encode
from repro.observe.events import emit as _emit_event
from repro.observe.tracer import span as _span
from repro.utils.blocking import block_merge, block_partition

__all__ = ["SZ2Compressor", "DEFAULT_EDGES"]

#: Block edge per dimensionality (SZ 2.x uses 6^d blocks; ours are larger
#: so the per-block selector/coefficient overhead stays small in Python).
DEFAULT_EDGES = {1: 128, 2: 12, 3: 6}


@lru_cache(maxsize=None)
def _design(ndim: int, edge: int) -> tuple[np.ndarray, np.ndarray]:
    """Regression design matrix over block coordinates and its pseudo-inverse.

    Columns: intercept then one linear term per axis, coordinates centred
    so the intercept is the block mean (better-conditioned and cheaper to
    quantize).
    """
    coords = np.indices((edge,) * ndim).reshape(ndim, -1).astype(np.float64)
    coords -= (edge - 1) / 2.0
    X = np.vstack([np.ones(edge**ndim), coords]).T
    return X, np.linalg.pinv(X)


class SZ2Compressor(Compressor):
    """Blockwise Lorenzo-vs-regression hybrid, absolute error bound."""

    name = "SZ2_ABS"
    supported_bounds = (AbsoluteBound,)

    def __init__(self, edge: int | None = None, radius: int = DEFAULT_RADIUS) -> None:
        if edge is not None and edge < 4:
            raise ValueError(f"block edge must be >= 4, got {edge}")
        self.edge = edge
        self.radius = radius
        self._huffman = HuffmanCodec()

    def _edge_for(self, ndim: int) -> int:
        return self.edge if self.edge is not None else DEFAULT_EDGES[ndim]

    # -- compression -------------------------------------------------------

    def compress(self, data: np.ndarray, bound: ErrorBound) -> bytes:
        return self._compress_impl(data, bound)[0]

    def compress_verified(self, data: np.ndarray, bound: ErrorBound) -> tuple[bytes, np.ndarray]:
        # Mirrors the automatic `compress` span so traces look the same
        # whichever entry point a wrapper uses.
        with _span("compress", codec=self.name) as sp:
            blob, recon = self._compress_impl(data, bound)
            sp.add_bytes(in_=getattr(data, "nbytes", 0), out=len(blob))
            _emit_event(
                "compress",
                span=sp,
                codec=self.name,
                bytes_in=getattr(data, "nbytes", 0),
                bytes_out=len(blob),
            )
        return blob, recon

    def _compress_impl(self, data: np.ndarray, bound: ErrorBound) -> tuple[bytes, np.ndarray]:
        """Shared pipeline; returns ``(blob, exact decoder output)``."""
        self._check_bound(bound)
        data = self._check_input(data)
        eb = float(bound.value)
        ndim = data.ndim
        edge = self._edge_for(ndim)

        tiles, padded_shape = block_partition(data, edge)
        nblocks = tiles.shape[0]
        step = 2.0 * eb * EB_SHRINK

        x64 = tiles.astype(np.float64)
        # Shared lattice quantizer (same step: 2*eb*EB_SHRINK associates
        # exactly -- doubling is a power-of-two scale), including the
        # non-finite -> risky masking.
        k, risky = lattice_quantize(x64, eb)

        # Candidate 1: within-block Lorenzo residuals.
        q_lor = lorenzo_residual(k, ndim)

        # Candidate 2: linear regression fitted per block, coefficients
        # quantized for storage so the decoder predicts identically.
        X, pinv = _design(ndim, edge)
        flat = x64.reshape(nblocks, -1)
        coeffs = flat @ pinv.T
        cq = self._quantize_coeffs(coeffs, eb, edge)
        pred = (self._dequantize_coeffs(cq, eb, edge) @ X.T)
        kp = np.clip(np.rint(pred / step), -CLIP_INDEX, CLIP_INDEX).astype(np.int64)
        q_reg = (k.reshape(nblocks, -1) - kp).reshape(q_lor.shape)

        # Selector: per-block coding-cost proxy (bits ~ log2(1 + |q|)).
        cost_lor = np.log2(1.0 + np.abs(q_lor.reshape(nblocks, -1))).sum(axis=1)
        cost_reg = (
            np.log2(1.0 + np.abs(q_reg.reshape(nblocks, -1))).sum(axis=1)
            + 12.0 * cq.shape[1]  # stored coefficient overhead
        )
        use_reg = cost_reg < cost_lor
        q = np.where(use_reg.reshape((-1,) + (1,) * ndim), q_reg, q_lor)

        codes, esc_q = residual_codes(q, risky, self.radius)

        recon = lattice_reconstruct(k, eb, data.dtype)
        viol = np.abs(x64 - recon.astype(np.float64)) > eb
        patch = (viol | risky).reshape(-1)
        patch_idx = np.flatnonzero(patch).astype(np.uint64)
        patch_val = tiles.reshape(-1)[patch_idx.astype(np.int64)]

        box = self._new_container(self.name, data)
        box.put_f64("eb", eb)
        box.put_u64("radius", self.radius)
        box.put_u64("edge", edge)
        box.put_shape("padded", padded_shape)
        box.put_u64("nblocks", nblocks)
        box.put("selector", deflate(np.packbits(use_reg).tobytes()))
        box.put("coeffs", deflate(zigzag_encode(cq[use_reg].ravel()).tobytes()))

        blob = self._huffman.encode(codes)
        squeezed = deflate(blob)
        if len(squeezed) < len(blob):
            box.put_u64("stage3", 1)
            blob = squeezed
        else:
            box.put_u64("stage3", 0)
        box.put("codes", blob)
        box.put("escq", deflate(zigzag_encode(esc_q).tobytes()))
        box.put_u64("n_esc", esc_q.size)
        box.put("patch_idx", deflate(patch_idx.tobytes()))
        box.put("patch_val", deflate(np.ascontiguousarray(patch_val).tobytes()))
        box.put_u64("n_patch", patch_idx.size)
        blob = box.to_bytes()

        # Exact decoder output: patched reconstruction tiles, merged back
        # to the original shape.
        flat = recon.reshape(-1)
        if patch_idx.size:
            flat = flat.copy()
            flat[patch_idx.astype(np.int64)] = patch_val
        merged = block_merge(
            flat.reshape((nblocks,) + (edge,) * ndim), padded_shape, edge, data.shape
        )
        return blob, merged

    @staticmethod
    def _quantize_coeffs(coeffs: np.ndarray, eb: float, edge: int) -> np.ndarray:
        """Quantize regression coefficients.

        Grids: intercept at ``eb/4``; slopes at ``eb/(4*edge)`` so a
        worst-case corner deviates by ~eb/2 from the exact fit -- plenty
        for *prediction* (the bound never depends on this).
        """
        grids = np.full(coeffs.shape[1], eb / (4.0 * edge))
        grids[0] = eb / 4.0
        q = np.rint(coeffs / grids)
        return np.clip(q, -(2.0**45), 2.0**45).astype(np.int64)

    @staticmethod
    def _dequantize_coeffs(cq: np.ndarray, eb: float, edge: int) -> np.ndarray:
        grids = np.full(cq.shape[1], eb / (4.0 * edge))
        grids[0] = eb / 4.0
        return cq.astype(np.float64) * grids

    # -- decompression -----------------------------------------------------

    def decompress(self, blob: bytes) -> np.ndarray:
        box, shape, dtype = self._open_container(blob, self.name)
        eb = box.get_f64("eb")
        radius = box.get_u64("radius")
        edge = box.get_u64("edge")
        padded_shape = box.get_shape("padded")
        nblocks = box.get_u64("nblocks")
        ndim = len(shape)
        step = 2.0 * eb * EB_SHRINK

        use_reg = np.unpackbits(
            np.frombuffer(inflate(box.get("selector")), dtype=np.uint8), count=nblocks
        ).astype(bool)
        ncoef = ndim + 1
        cq_flat = zigzag_decode(
            np.frombuffer(inflate(box.get("coeffs")), dtype=np.uint64)
        )
        if cq_flat.size != int(use_reg.sum()) * ncoef:
            raise ValueError("corrupt SZ2 stream: coefficient table size mismatch")

        payload = box.get("codes")
        if box.get_u64("stage3"):
            payload = inflate(payload)
        codes = self._huffman.decode(payload)
        esc_q = zigzag_decode(np.frombuffer(inflate(box.get("escq")), dtype=np.uint64))
        if esc_q.size != box.get_u64("n_esc"):
            raise ValueError("corrupt SZ2 stream: escape channel size mismatch")
        q = restore_residuals(codes, esc_q, radius, codec="SZ2")
        q = q.reshape((nblocks,) + (edge,) * ndim)

        # Lorenzo blocks: invert the in-block stencil.  Regression blocks:
        # add back the quantized-coefficient prediction.
        k = np.zeros_like(q)
        lor = ~use_reg
        if lor.any():
            k[lor] = lorenzo_reconstruct(q[lor], ndim)
        if use_reg.any():
            X, _ = _design(ndim, edge)
            cq = cq_flat.reshape(-1, ncoef)
            pred = self._dequantize_coeffs(cq, eb, edge) @ X.T
            kp = np.clip(np.rint(pred / step), -CLIP_INDEX, CLIP_INDEX).astype(np.int64)
            sel_shape = q[use_reg].shape
            k[use_reg] = (q[use_reg].reshape(kp.shape[0], -1) + kp).reshape(sel_shape)

        tiles = (k.astype(np.float64) * step).astype(dtype)
        patch_idx = np.frombuffer(inflate(box.get("patch_idx")), dtype=np.uint64)
        patch_val = np.frombuffer(inflate(box.get("patch_val")), dtype=dtype)
        if patch_idx.size != box.get_u64("n_patch") or patch_val.size != patch_idx.size:
            raise ValueError("corrupt SZ2 stream: patch channel size mismatch")
        flat = tiles.reshape(-1)
        flat[patch_idx.astype(np.int64)] = patch_val
        tiles = flat.reshape((nblocks,) + (edge,) * ndim)
        return block_merge(tiles, padded_shape, edge, shape)
