"""SZ in absolute-error-bound mode (``SZ_ABS``).

Stages: Lorenzo prediction -> linear-scaling quantization -> canonical
Huffman -> optional DEFLATE (SZ's stage III).  Unpredictable points (their
residual falls outside the quantization radius) escape to an exact side
channel, and the encoder re-verifies the reconstruction it will produce
through the safeguard engine (absolute bound + non-finite preservation),
patching any point where float round-off would break the bound -- so the
advertised absolute bound holds for 100% of points, always.  NaN/±Inf
inputs are sanitized to 0.0 for the prediction stages and restored
bit-exactly from the patch channel.

Because the encoder materializes the decoder's exact output anyway (for
the patch pass), :meth:`SZCompressor.compress_verified` hands it to
verifying wrappers for free, sparing them a full decode.
"""

from __future__ import annotations

import numpy as np

from repro.compressors.base import AbsoluteBound, Compressor, ErrorBound
from repro.compressors.sz.predictor import lorenzo_reconstruct
from repro.compressors.sz.quantizer import (
    lattice_reconstruct,
    quantize_lorenzo,
    residual_codes,
    restore_residuals,
)
from repro.encoding import (
    HuffmanCodec,
    deflate,
    inflate,
    zigzag_decode,
    zigzag_encode,
)
from repro.encoding.container import Container
from repro.observe.events import emit as _emit_event
from repro.observe.tracer import span
from repro.safeguards.engine import (
    compute_patch_channel,
    put_patch_sections,
    read_patch_sections,
)
from repro.safeguards.kinds import AbsErrorSafeguard, NonFiniteSafeguard

__all__ = ["SZCompressor", "DEFAULT_RADIUS"]

#: Default quantization radius; capacity = 2*radius + 2 codes, matching
#: SZ's default 65536-interval configuration.
DEFAULT_RADIUS = 32767


class SZCompressor(Compressor):
    """Prediction-based compressor honouring an absolute error bound.

    Parameters
    ----------
    radius:
        Quantization radius; residuals in ``[-radius, radius]`` are Huffman
        coded, everything else escapes to the exact side channel.
    use_stage3:
        Apply SZ's optional DEFLATE pass over the Huffman payload when it
        shrinks the stream.
    order:
        Lorenzo prediction order (1 = classic stencil, 2 = two causal
        layers / linear extrapolation, SZ 1.4's "layer" option).
    """

    name = "SZ_ABS"
    supported_bounds = (AbsoluteBound,)
    #: NaN/±Inf ride the patch channel (stored verbatim), so the advertised
    #: bound on finite points is unaffected by non-finite neighbours.
    allows_nonfinite = True

    def __init__(
        self,
        radius: int = DEFAULT_RADIUS,
        use_stage3: bool = True,
        order: int = 1,
    ) -> None:
        if not 1 <= radius <= 2**20:
            raise ValueError(f"radius must be in [1, 2**20], got {radius}")
        if order not in (1, 2):
            raise ValueError(f"prediction order must be 1 or 2, got {order}")
        self.radius = radius
        self.use_stage3 = use_stage3
        self.order = order
        self._huffman = HuffmanCodec()

    # -- compression -------------------------------------------------------

    def compress(self, data: np.ndarray, bound: ErrorBound) -> bytes:
        return self._compress_impl(data, bound)[0]

    def compress_verified(self, data: np.ndarray, bound: ErrorBound) -> tuple[bytes, np.ndarray]:
        # Mirrors the automatic `compress` span so traces look the same
        # whichever entry point a wrapper uses.
        with span("compress", codec=self.name) as sp:
            blob, recon = self._compress_impl(data, bound)
            sp.add_bytes(in_=getattr(data, "nbytes", 0), out=len(blob))
            _emit_event(
                "compress",
                span=sp,
                codec=self.name,
                bytes_in=getattr(data, "nbytes", 0),
                bytes_out=len(blob),
            )
        return blob, recon

    def _compress_impl(self, data: np.ndarray, bound: ErrorBound) -> tuple[bytes, np.ndarray]:
        """Shared pipeline; returns ``(blob, exact decoder output)``."""
        self._check_bound(bound)
        data = self._check_input(data, allow_nonfinite=True)
        eb = float(bound.value)

        # Non-finite points cannot ride the lattice; sanitize them to 0.0
        # for the prediction stages -- the safeguard pass below restores
        # their original bit patterns through the patch channel.
        quantizable = data
        nonfinite = ~np.isfinite(data)
        if nonfinite.any():
            quantizable = np.where(nonfinite, 0.0, data).astype(data.dtype, copy=False)

        with span("quantize-predict", order=self.order):
            k, q, risky = quantize_lorenzo(quantizable, eb, data.ndim, self.order)
            codes, esc_q = residual_codes(q, risky, self.radius)

        # Verify the exact reconstruction the decoder will compute and move
        # every safeguard violator (risky points included) to the patch
        # channel: absolute bound on finite points, bit-exact NaN/±Inf.
        with span("verify"):
            recon = lattice_reconstruct(k, eb, data.dtype)
            channel = compute_patch_channel(
                (AbsErrorSafeguard(eb), NonFiniteSafeguard()), data, recon
            )
            patch_idx, patch_val = channel.patch_idx, channel.patch_val
            if risky.any():
                patch_idx = np.union1d(
                    patch_idx, np.flatnonzero(risky.ravel()).astype(np.uint64)
                ).astype(np.uint64)
                patch_val = data.ravel()[patch_idx.astype(np.int64)]

        box = self._new_container(self.name, data)
        box.put_f64("eb", eb)
        box.put_u64("radius", self.radius)
        box.put_u64("order", self.order)
        with span("entropy-encode"):
            self._pack_payload(box, codes, esc_q, patch_idx, patch_val)
        with span("serialize") as sp:
            blob = box.to_bytes()
            sp.add_bytes(out=len(blob))

        final = recon.ravel()
        if patch_idx.size:
            final = final.copy()
            final[patch_idx.astype(np.int64)] = patch_val
        return blob, final.reshape(data.shape)

    def _pack_payload(
        self,
        box: Container,
        codes: np.ndarray,
        esc_q: np.ndarray,
        patch_idx: np.ndarray,
        patch_val: np.ndarray,
    ) -> None:
        """Entropy-code the quantization codes and side channels into ``box``."""
        with span("huffman-encode"):
            blob = self._huffman.encode(codes)
        if self.use_stage3:
            with span("stage3-deflate"):
                squeezed = deflate(blob)
            if len(squeezed) < len(blob):
                box.put_u64("stage3", 1)
                blob = squeezed
            else:
                box.put_u64("stage3", 0)
        else:
            box.put_u64("stage3", 0)
        box.put("codes", blob)
        box.put("escq", deflate(zigzag_encode(esc_q).tobytes()))
        box.put_u64("n_esc", esc_q.size)
        put_patch_sections(box, patch_idx, patch_val)

    # -- decompression -----------------------------------------------------

    def decompress(self, blob: bytes) -> np.ndarray:
        with span("parse") as sp:
            box, shape, dtype = self._open_container(blob, self.name)
            sp.add_bytes(in_=len(blob))
        eb = box.get_f64("eb")
        radius = box.get_u64("radius")
        order = box.get_u64("order") if "order" in box else 1
        with span("entropy-decode"):
            q, patch_idx, patch_val = self._unpack_payload(box, dtype, radius)
        with span("reconstruct", order=order):
            q = q.reshape(shape)
            k = lorenzo_reconstruct(q, len(shape), order)
            recon = lattice_reconstruct(k, eb, dtype)
            flat = recon.ravel()
            flat[patch_idx.astype(np.int64)] = patch_val
        return flat.reshape(shape)

    def _unpack_payload(
        self, box: Container, dtype: np.dtype, radius: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Recover the residual array and patch channel from ``box``."""
        payload = box.get("codes")
        if box.get_u64("stage3"):
            payload = inflate(payload)
        with span("huffman-decode"):
            codes = self._huffman.decode(payload)

        n_esc = box.get_u64("n_esc")
        esc_q = zigzag_decode(np.frombuffer(inflate(box.get("escq")), dtype=np.uint64))
        if esc_q.size != n_esc:
            raise ValueError("corrupt SZ stream: escape channel size mismatch")
        q = restore_residuals(codes, esc_q, radius)

        patch_idx, patch_val = read_patch_sections(box, dtype, "SZ")
        return q, patch_idx, patch_val
