r"""FPZIP: precision-truncating predictive floating-point coder.

Reimplementation of Lindstrom & Isenburg (TVCG 2006) as evaluated by the
paper.  FPZIP takes a *precision* ``p`` -- the number of most-significant
bits kept per value -- rather than an error bound; the paper's complaint is
precisely that ``p`` maps only piecewise onto a relative bound.  For IEEE
formats the kept bits split into sign + exponent + leading mantissa bits,
so the maximum point-wise relative error is

.. math:: 2^{-(p - 1 - e_{bits})},\qquad e_{bits} = 8\ (f32)\ /\ 11\ (f64)

(``p=19`` on float32 keeps 10 mantissa bits: max error ``2^-10 = 9.8e-4``,
the exact value in the paper's Table IV).  :func:`precision_for_relbound`
performs the user-facing inverse mapping.

Pipeline:

1. map each float to its *ordered* sign-magnitude integer (a monotone
   bijection under which truncation is exactly a relative-style rounding),
2. truncate to the top ``p`` bits -- the only lossy step, with no feedback,
   so the rest of the coder is lossless and fully vectorizable,
3. Lorenzo-predict the truncated integers and entropy-code the residuals
   as (Huffman-coded bit-length class, raw remainder bits), mirroring
   FPZIP's range-coded leading-zero classes.

Zeros survive exactly (+0 maps to a fixed point of the truncation).
"""

from __future__ import annotations

import math

import numpy as np

from repro.compressors.base import Compressor, ErrorBound, PrecisionBound
from repro.compressors.sz.predictor import lorenzo_reconstruct, lorenzo_residual
from repro.encoding import (
    HuffmanCodec,
    RangeCodec,
    pack_varbits,
    unpack_varbits,
    zigzag_decode,
    zigzag_encode,
)

__all__ = ["FpzipCompressor", "precision_for_relbound", "max_relative_error"]

#: Maximum usable precision per dtype (float64 capped so the 3-D Lorenzo
#: residual of truncated integers can never overflow int64).
_MAX_PREC = {np.dtype(np.float32): 32, np.dtype(np.float64): 58}
_EXP_BITS = {np.dtype(np.float32): 8, np.dtype(np.float64): 11}
_WIDTH = {np.dtype(np.float32): 32, np.dtype(np.float64): 64}


def max_relative_error(precision: int, dtype: np.dtype) -> float:
    """Worst-case point-wise relative error of FPZIP at ``precision``.

    Infinite when ``p`` keeps no mantissa bits; zero when nothing is
    truncated (lossless mode).  Denormal inputs are excluded from the
    guarantee, as in FPZIP itself.
    """
    dtype = np.dtype(dtype)
    kept_mantissa = precision - 1 - _EXP_BITS[dtype]
    if kept_mantissa < 0:
        return math.inf
    if precision >= _MAX_PREC[dtype] and dtype == np.dtype(np.float32):
        return 0.0
    return 2.0**-kept_mantissa


def precision_for_relbound(rel_bound: float, dtype: np.dtype) -> int:
    """Smallest precision whose truncation error stays within ``rel_bound``."""
    if not 0 < rel_bound < 1:
        raise ValueError(f"relative bound must be in (0, 1), got {rel_bound}")
    dtype = np.dtype(dtype)
    p = 1 + _EXP_BITS[dtype] + math.ceil(-math.log2(rel_bound))
    return min(p, _MAX_PREC[dtype])


def _to_ordered(data: np.ndarray) -> np.ndarray:
    """Monotone map float -> unsigned int (sign-magnitude reordering)."""
    dtype = data.dtype
    if dtype == np.float32:
        u = data.view(np.uint32)
        sign = np.uint32(1) << np.uint32(31)
        return np.where(u & sign, ~u, u | sign)
    u = data.view(np.uint64)
    sign = np.uint64(1) << np.uint64(63)
    return np.where(u & sign, ~u, u | sign)


def _from_ordered(s: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """Inverse of :func:`_to_ordered`."""
    if np.dtype(dtype) == np.float32:
        sign = np.uint32(1) << np.uint32(31)
        u = np.where(s & sign, s ^ sign, ~s).astype(np.uint32)
        return u.view(np.float32)
    sign = np.uint64(1) << np.uint64(63)
    u = np.where(s & sign, s ^ sign, ~s).astype(np.uint64)
    return u.view(np.float64)


class FpzipCompressor(Compressor):
    """Lorenzo-predictive coder controlled by bit precision (FPZIP).

    Parameters
    ----------
    entropy:
        Residual-class entropy stage: ``"huffman"`` (static canonical
        code, the default) or ``"range"`` (adaptive range coder, as in
        the FPZIP reference implementation -- wins when the class
        distribution drifts across the array).
    """

    name = "FPZIP"
    supported_bounds = (PrecisionBound,)
    _CLASS_ALPHABET = 72  # residual bit-length classes (<= 64 used)

    def __init__(self, entropy: str = "huffman") -> None:
        if entropy not in ("huffman", "range"):
            raise ValueError(f"entropy must be 'huffman' or 'range', got {entropy!r}")
        self.entropy = entropy
        self._huffman = HuffmanCodec()
        self._range = RangeCodec(self._CLASS_ALPHABET)

    def compress(self, data: np.ndarray, bound: ErrorBound) -> bytes:
        self._check_bound(bound)
        data = self._check_input(data)
        # Normalize -0.0 to +0.0 so zeros are fixed points of truncation.
        data = data + np.zeros((), dtype=data.dtype)
        p = bound.bits
        width = _WIDTH[data.dtype]
        p = min(p, _MAX_PREC[data.dtype])
        drop = width - p

        s = _to_ordered(data)
        t = (s >> np.uint64(drop) if width == 64 else s >> np.uint32(drop)).astype(np.int64)

        r = lorenzo_residual(t, data.ndim)
        zz = zigzag_encode(r)

        # Residual classes: class 0 encodes value 0; class c >= 1 encodes a
        # (c)-bit value whose leading 1 is implied (c-1 raw remainder bits).
        nbits = np.zeros(zz.shape, dtype=np.int64)
        nz = zz > 0
        nbits[nz] = np.floor(np.log2(zz[nz].astype(np.float64))).astype(np.int64) + 1
        # float log2 is exact for < 2^53 but can misround at the boundary
        # for huge residuals; fix up both directions explicitly.
        while True:
            too_low = nz & (zz >> nbits.astype(np.uint64) > 0)
            too_high = nz & (nbits > 1) & (zz >> (nbits - 1).astype(np.uint64) == 0)
            if not (too_low.any() or too_high.any()):
                break
            nbits[too_low] += 1
            nbits[too_high] -= 1
        remainder = np.where(nz, zz - (np.uint64(1) << np.maximum(nbits - 1, 0).astype(np.uint64)), 0)
        rem_width = np.maximum(nbits - 1, 0)

        box = self._new_container(self.name, data)
        box.put_u64("precision", p)
        box.put_str("entropy", self.entropy)
        if self.entropy == "range":
            classes = self._range.encode(nbits.ravel())
        else:
            classes = self._huffman.encode(nbits.ravel())
        box.put("classes", classes)
        box.put("remainders", pack_varbits(remainder.ravel(), rem_width.ravel()))
        return box.to_bytes()

    def decompress(self, blob: bytes) -> np.ndarray:
        box, shape, dtype = self._open_container(blob, self.name)
        p = box.get_u64("precision")
        width = _WIDTH[np.dtype(dtype)]
        drop = width - p

        entropy = box.get_str("entropy") if "entropy" in box else "huffman"
        if entropy == "range":
            nbits = self._range.decode(box.get("classes"))
        else:
            nbits = self._huffman.decode(box.get("classes"))
        rem_width = np.maximum(nbits - 1, 0)
        remainder = unpack_varbits(box.get("remainders"), rem_width)
        zz = np.where(
            nbits > 0,
            remainder + (np.uint64(1) << np.maximum(nbits - 1, 0).astype(np.uint64)),
            np.uint64(0),
        )
        r = zigzag_decode(zz).reshape(shape)
        t = lorenzo_reconstruct(r, len(shape))

        if width == 32:
            s = (t.astype(np.uint32)) << np.uint32(drop)
        else:
            s = (t.astype(np.uint64)) << np.uint64(drop)
        return _from_ordered(s, dtype).reshape(shape)
