"""Block partitioning shared by ZFP (4^d blocks) and SZ's PWR mode.

``block_partition`` pads an array to block multiples (edge replication, so
padded samples share the statistics of the block they extend) and returns a
``(nblocks, b1, ..., bd)`` view-ordering copy; ``block_merge`` inverts it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pad_to_blocks", "block_partition", "block_merge", "chunk_spans"]


def chunk_spans(n_items: int, item_bytes: int, chunk_bytes: int) -> list[tuple[int, int]]:
    """Split ``n_items`` consecutive items into near-equal byte-bounded spans.

    Returns ``[(start, stop), ...]`` half-open ranges covering
    ``range(n_items)`` such that every span holds at most ``chunk_bytes``
    worth of items (but always at least one item, even when a single item
    exceeds the budget).  Spans are balanced: their sizes differ by at most
    one item, which keeps parallel workers evenly loaded instead of leaving
    a runt chunk at the tail.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be non-negative, got {n_items}")
    if item_bytes <= 0 or chunk_bytes <= 0:
        raise ValueError(
            f"item_bytes and chunk_bytes must be positive, got {item_bytes}, {chunk_bytes}"
        )
    if n_items == 0:
        return []
    per_chunk = max(1, chunk_bytes // item_bytes)
    n_chunks = -(-n_items // per_chunk)  # ceil
    base, extra = divmod(n_items, n_chunks)
    spans = []
    start = 0
    for i in range(n_chunks):
        stop = start + base + (1 if i < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


def pad_to_blocks(data: np.ndarray, block: int) -> np.ndarray:
    """Pad every axis of ``data`` up to a multiple of ``block`` (edge mode)."""
    if block <= 0:
        raise ValueError(f"block must be positive, got {block}")
    pads = [(0, (-s) % block) for s in data.shape]
    if all(p == (0, 0) for p in pads):
        return data
    return np.pad(data, pads, mode="edge")


def block_partition(data: np.ndarray, block: int) -> tuple[np.ndarray, tuple[int, ...]]:
    """Cut ``data`` into ``block**d`` tiles.

    Returns ``(tiles, padded_shape)`` where ``tiles`` has shape
    ``(nblocks, block, ..., block)`` with blocks ordered C-style over the
    block grid.
    """
    padded = pad_to_blocks(np.asarray(data), block)
    d = padded.ndim
    grid = tuple(s // block for s in padded.shape)
    # reshape to interleaved (g1, b, g2, b, ...) then bring grid axes first
    inter = padded.reshape(tuple(x for g in grid for x in (g, block)))
    order = tuple(range(0, 2 * d, 2)) + tuple(range(1, 2 * d, 2))
    tiles = inter.transpose(order).reshape((-1,) + (block,) * d)
    return np.ascontiguousarray(tiles), padded.shape


def block_merge(
    tiles: np.ndarray,
    padded_shape: tuple[int, ...],
    block: int,
    orig_shape: tuple[int, ...],
) -> np.ndarray:
    """Invert :func:`block_partition`, cropping back to ``orig_shape``."""
    d = len(padded_shape)
    grid = tuple(s // block for s in padded_shape)
    inter = tiles.reshape(grid + (block,) * d)
    # interleave grid and block axes back: (g1, b, g2, b, ...)
    order = []
    for i in range(d):
        order.extend([i, d + i])
    padded = inter.transpose(order).reshape(padded_shape)
    slices = tuple(slice(0, s) for s in orig_shape)
    return np.ascontiguousarray(padded[slices])
