"""Shared utilities: block partitioning, timers, deterministic RNG."""

from repro.utils.blocking import block_merge, block_partition, chunk_spans, pad_to_blocks
from repro.utils.timers import Timer

__all__ = ["Timer", "block_merge", "block_partition", "chunk_spans", "pad_to_blocks"]
