"""Ragged-array helpers for batched variable-length bit emission."""

from __future__ import annotations

import numpy as np

__all__ = ["ragged_arange"]


def ragged_arange(counts: np.ndarray) -> np.ndarray:
    """``concatenate([arange(c) for c in counts])`` without the loop.

    The workhorse of the vectorized codecs: paired with ``np.repeat`` of
    row indices it turns per-item variable-length loops into single
    gather/scatter passes.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
