"""Wall-clock timing helpers used by the rate experiments (Table III, Fig 3).

``Timer`` is kept for backward compatibility as a thin wrapper over a
:class:`repro.observe.Span`: the span does the measuring, ``Timer`` adds
the accumulate-across-entries surface the experiment harness uses.  New
code should open spans directly (``with repro.observe.span("stage"):``)
so the measurement lands in the traced pipeline breakdown.
"""

from __future__ import annotations

from repro.observe.tracer import Span

__all__ = ["Timer"]


class Timer:
    """Context-manager stopwatch accumulating seconds across entries.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.seconds >= 0
    True
    """

    def __init__(self, name: str = "timer") -> None:
        #: The measuring span; detached from any tracer, so Timers never
        #: pollute the global span buffer however hot the loop.
        self.span = Span(name)
        self.entries = 0

    @property
    def seconds(self) -> float:
        return self.span.wall_s

    @seconds.setter
    def seconds(self, value: float) -> None:
        self.span.wall_s = float(value)

    @property
    def cpu_seconds(self) -> float:
        return self.span.cpu_s

    def __enter__(self) -> "Timer":
        self.span.__enter__()
        return self

    def __exit__(self, exc_type=None, exc=None, tb=None) -> None:
        self.span.__exit__(exc_type, exc, tb)
        self.entries += 1

    def rate_mbs(self, nbytes: int) -> float:
        """Throughput in MB/s over the total time (0.0 when nothing ran).

        Returning 0.0 -- not ``inf`` -- for an empty timer keeps JSON
        exports free of non-finite values.
        """
        if self.seconds <= 0:
            return 0.0
        return nbytes / self.seconds / 1e6
