"""Wall-clock timing helpers used by the rate experiments (Table III, Fig 3)."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context-manager stopwatch accumulating seconds across entries.

    >>> t = Timer()
    >>> with t:
    ...     pass
    >>> t.seconds >= 0
    True
    """

    def __init__(self) -> None:
        self.seconds = 0.0
        self.entries = 0
        self._t0 = 0.0

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.seconds += time.perf_counter() - self._t0
        self.entries += 1

    def rate_mbs(self, nbytes: int) -> float:
        """Throughput in MB/s for ``nbytes`` processed over the total time."""
        if self.seconds <= 0:
            return float("inf")
        return nbytes / self.seconds / 1e6
