"""Point-wise quality observability: error digests, byte attribution, explain.

The paper's contribution is a *point-wise relative* error guarantee, but a
binary audit verdict and a single compression-ratio scalar say nothing
about the error *distribution* -- the bias and tail shape where lossy
compressors actually differ.  This module closes that gap with three
pieces:

* :class:`ErrorHistogram` -- a streaming, mergeable digest of point-wise
  errors: log-binned relative and absolute magnitudes (``QUALITY_SCALE``
  buckets per octave, so p50/p90/p99 resolve to ~9% instead of 2x), a
  signed-error accumulator whose mean is the reconstruction *bias*, and
  exact min/max.  Digests merge associatively, so per-chunk records
  aggregate across thread/process pools exactly like the ``audit.*``
  metrics: :func:`record_quality_metrics` folds a digest into the metrics
  registry as scaled histograms, ``run_traced``/``absorb`` ship them over
  the pool boundary, and :func:`quality_summary_from_metrics` turns the
  merged delta back into percentiles via
  :func:`~repro.observe.metrics.percentile_from_snapshot`.

* :func:`attribute_bytes` -- a byte-attribution tree decomposing any
  v1--v4 container into who-owns-each-byte: framing, CRCs, Huffman table
  vs packed bits, quantizer escape/outlier streams, safeguard patches, RS
  parity, chunk tables -- per section, per chunk (nested containers and
  CHUNKED payloads recurse), per stage.  Attribution is *exhaustive by
  construction*: the leaves of the returned tree partition
  ``[0, len(blob))`` exactly, with damage or unknown regions attributed
  to explicit ``damaged``/``unattributed`` leaves instead of being
  skipped, and it never raises on corrupt input.

* :func:`explain_stream` -- the ``repro explain`` engine: attribution +
  per-chunk ratio/error statistics with anomaly flags for chunks whose
  ratio or max relative error deviates >= k*MAD from the stream median,
  rendered as markdown or JSON by :class:`ExplainReport`.

Collection is observation-only: compressed streams are byte-identical
with quality collection on or off (``REPRO_QUALITY=off`` or
:func:`set_quality_enabled` disable the per-chunk digests on the
compress path).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

import numpy as np

from repro.observe.metrics import (
    _NONPOS_BUCKET,
    metrics as _metrics,
    percentile_from_snapshot,
)

__all__ = [
    "QUALITY_SCALE",
    "ByteNode",
    "ErrorHistogram",
    "ExplainReport",
    "attribute_bytes",
    "explain_stream",
    "mad_outliers",
    "quality_enabled",
    "quality_summary_from_metrics",
    "record_quality_metrics",
    "set_quality_enabled",
]

#: Buckets per binary octave in the error digests.  8 sub-divisions put
#: neighbouring bucket edges a factor of 2**(1/8) ~ 1.09 apart, so the
#: digest percentiles carry ~9% relative resolution while staying a few
#: hundred integers per digest.
QUALITY_SCALE = 8

_REL_METRIC = "quality.rel_err"
_ABS_METRIC = "quality.abs_err"

#: Above this many magnitudes per :meth:`_Digest.add` call, bucket counts
#: are estimated from a deterministic cache-line sample (count and max
#: stay exact over every point; a signed total handed in pre-reduced
#: stays exact too, one derived from raw residuals is sampled).  32Ki
#: samples keep the p99 position well inside one bucket of sampling noise.
_BUCKET_SAMPLE = 1 << 15


# ---------------------------------------------------------------------------
# collection gate
# ---------------------------------------------------------------------------

_FORCED: bool | None = None


def quality_enabled() -> bool:
    """Whether the compress-path verify hook builds error digests.

    Defaults to on (the digest is a handful of vectorized passes over
    arrays the verify hook already computed); ``REPRO_QUALITY=off`` in the
    environment or :func:`set_quality_enabled` turn it off.  Streams are
    byte-identical either way -- this gates observation, never encoding.
    """
    if _FORCED is not None:
        return _FORCED
    return os.environ.get("REPRO_QUALITY", "").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
        "none",
    )


def set_quality_enabled(on: bool | None) -> None:
    """Force quality collection on/off; ``None`` restores the env default."""
    global _FORCED
    _FORCED = on


# ---------------------------------------------------------------------------
# error digests
# ---------------------------------------------------------------------------


class _Digest:
    """One mergeable log-binned magnitude digest with a signed total.

    Shaped exactly like a :class:`~repro.observe.metrics.Histogram`
    snapshot (plus ``scale``), so it folds into the metrics registry and
    feeds :func:`percentile_from_snapshot` unchanged.  ``total`` is the
    *signed* error sum -- ``total / n`` is the bias -- while min/max and
    the buckets describe magnitudes.
    """

    __slots__ = ("scale", "n", "total", "min", "max", "buckets")

    def __init__(self, scale: int) -> None:
        self.scale = int(scale)
        self.n = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}

    def add(
        self,
        mags: np.ndarray,
        signed_total: float | None = None,
        mx: float | None = None,
        *,
        signs: np.ndarray | None = None,
    ) -> None:
        k = int(mags.size)
        if not k:
            return
        self.n += k
        # Count and max are exact over every point.  Bucket *counts* are
        # where the time goes, so past _BUCKET_SAMPLE magnitudes they
        # (and the min) are estimated from a deterministic sample,
        # rescaled to sum back to ~k, with the min/max buckets pinned so
        # the digest's tails never dangle beyond its occupied buckets.
        # The sample takes every ``stride``-th run of 8 contiguous
        # values -- whole cache lines, so it touches ~1/stride of the
        # memory a flat ``mags[::stride]`` would (flat striding still
        # loads every 64-byte line).  This sits on the compress verify
        # path under a 5% overhead budget; exhaustive binning costs more
        # than the whole budget on large chunks, and the percentile
        # resolution is a bucket (~9% at the default scale) anyway.
        stride = -(-k // _BUCKET_SAMPLE)
        if stride == 1:
            sample = mags
        else:
            rows = k >> 3
            sample = mags[: rows << 3].reshape(rows, 8)[::stride]
        if signed_total is None:
            # Caller handed the signed residuals instead of a reduced
            # sum: estimate the signed total from the same sample (exact
            # when the sample is the whole array).
            if stride == 1:
                src = signs
            else:
                src = signs[: rows << 3].reshape(rows, 8)[::stride]
            signed_total = float(np.copysign(sample, src).sum())
            if stride > 1:
                signed_total *= k / sample.size
        self.total += float(signed_total)
        # Bucket key for v > 0 is ceil(scale * log2(v)): bucket k holds
        # (2^((k-1)/scale), 2^(k/scale)].  Quantized as one in-place
        # float32 log2/mul/ceil chain plus a bincount -- the exact frexp
        # route costs ~4x more.  The float32 round-off can move a value
        # within ~1e-7 of an edge by one bucket; zeros, NaN, and
        # sub-float32 magnitudes (< 2^-149) land in the nonpos bucket,
        # and magnitudes beyond float32 range (> 2^128) saturate into an
        # overflow bucket above every finite-valued key, where percentile
        # lookups fall back to the observed max.  The cast's saturation
        # to inf is that path, not an error -- silence the warning.
        with np.errstate(over="ignore"):
            s = sample.astype(np.float32)
        mn = float(mags.min()) if stride == 1 else float(s.min())
        if mx is None:
            mx = float(mags.max())
        if mn < self.min:
            self.min = mn
        if mx > self.max:
            self.max = mx
        with np.errstate(divide="ignore"):
            np.log2(s, out=s)
        np.multiply(s, self.scale, out=s)
        np.ceil(s, out=s)
        # Nonpos magnitudes (-inf after log2) are floored to a sentinel
        # just below the lowest float32-representable key (2^-149 gives
        # ceil(scale*log2) >= -150*scale) rather than straight to the
        # distant _NONPOS_BUCKET key, keeping the bincount range compact.
        floor = -(150 * self.scale + 1)
        np.fmax(s, floor, out=s)
        np.fmin(s, 1024 * self.scale, out=s)
        keys = s.astype(np.int64).ravel()
        kmin = int(keys.min())
        counts = np.bincount(keys - kmin)
        if stride > 1:
            counts = np.rint(counts * (k / sample.size)).astype(np.int64)
        nonpos = _NONPOS_BUCKET * self.scale
        for idx in np.flatnonzero(counts).tolist():
            b = idx + kmin
            if b <= floor:
                b = nonpos
            self.buckets[b] = self.buckets.get(b, 0) + int(counts[idx])
        if stride > 1:
            self._pin(mn)
            self._pin(mx)

    def _pin(self, v: float) -> None:
        """Ensure the bucket holding ``v`` is occupied (sampled adds only).

        A stride sample can miss the extremes, and downstream consumers
        (percentile clamp-to-max, the registry-diff min/max clamp) assume
        the occupied buckets span the observed range.
        """
        if v > 0.0:
            if math.isfinite(v):
                m, e = math.frexp(v)
                b = min(
                    math.ceil(self.scale * (e + math.log2(m))), 1024 * self.scale
                )
            else:
                b = 1024 * self.scale
        else:
            b = _NONPOS_BUCKET * self.scale
        if b not in self.buckets:
            self.buckets[b] = 1

    def merge_snapshot(self, snap: dict) -> None:
        n = int(snap.get("n", 0))
        if not n:
            return
        if int(snap.get("scale", 1)) != self.scale:
            raise ValueError(
                f"cannot merge digest of scale {snap.get('scale', 1)} into scale {self.scale}"
            )
        self.n += n
        self.total += float(snap.get("total", 0.0))
        if "min" in snap and float(snap["min"]) < self.min:
            self.min = float(snap["min"])
        if "max" in snap and float(snap["max"]) > self.max:
            self.max = float(snap["max"])
        for k, c in snap.get("buckets") or ():
            self.buckets[int(k)] = self.buckets.get(int(k), 0) + int(c)

    def snapshot(self) -> dict:
        out = {
            "type": "histogram",
            "n": self.n,
            "total": self.total,
            "mean": self.total / self.n if self.n else 0.0,
            "scale": self.scale,
        }
        if self.n:
            out["min"] = self.min
            out["max"] = self.max
            out["buckets"] = [[k, self.buckets[k]] for k in sorted(self.buckets)]
        return out

    def percentile(self, q: float) -> float:
        return percentile_from_snapshot(self.snapshot(), q)

    @property
    def bias(self) -> float:
        return self.total / self.n if self.n else 0.0


class ErrorHistogram:
    """Streaming, mergeable digest of point-wise compression errors.

    Tracks two magnitude digests -- relative error over points with
    ``x != 0`` and absolute error over every finite point -- plus counts
    of exact zeros (which have no relative error; the paper's transform
    preserves them bit-exactly) and non-finite points.  ``total`` in each
    digest is the *signed* error sum, so ``bias_rel``/``bias_abs`` expose
    systematic over/under-shoot, which single max-error scalars hide.

    Not thread-safe: build one per chunk and :meth:`merge`, or go through
    :func:`record_quality_metrics` and the (thread-safe) registry.
    """

    __slots__ = ("scale", "zeros", "nonfinite", "rel", "abs")

    def __init__(self, scale: int = QUALITY_SCALE) -> None:
        self.scale = int(scale)
        self.zeros = 0
        self.nonfinite = 0
        self.rel = _Digest(self.scale)
        self.abs = _Digest(self.scale)

    # -- feeding -----------------------------------------------------------

    def observe(self, original, recon) -> None:
        """Digest ``recon - original`` point-wise (arrays of equal size)."""
        x = np.asarray(original, dtype=np.float64).ravel()
        xd = np.asarray(recon, dtype=np.float64).ravel()
        if x.size != xd.size:
            raise ValueError(f"size mismatch: original {x.size} vs recon {xd.size}")
        finite = np.isfinite(x) & np.isfinite(xd)
        nf = int(x.size - np.count_nonzero(finite))
        if nf:
            self.nonfinite += nf
            x = x[finite]
            xd = xd[finite]
        self.observe_errors(np.abs(x), xd - x)

    def observe_errors(
        self,
        absx: np.ndarray,
        diff: np.ndarray,
        *,
        err: np.ndarray | None = None,
        nz: np.ndarray | None = None,
        rel: np.ndarray | None = None,
        max_abs: float | None = None,
        max_rel: float | None = None,
    ) -> None:
        """Digest pre-computed residuals (the compress-path fast lane).

        ``absx`` is ``|original|`` and ``diff`` the signed residual
        ``recon - original``, both finite 1-D float64 -- exactly the
        intermediates the verify hook already holds.  The keyword
        arguments accept further intermediates the hook has in hand --
        ``err`` is ``|diff|``, ``nz`` the ``absx != 0`` mask, ``rel`` the
        full-size ``|diff| / absx`` with exact zeros at the masked-out
        points, and ``max_abs``/``max_rel`` the already-reduced maxima --
        so the digest re-derives nothing the bound check computed anyway.
        """
        if err is None:
            err = np.abs(diff)
        self.abs.add(err, float(diff.sum()), mx=max_abs)
        if nz is None:
            nz = absx > 0.0
        nzeros = int(absx.size - np.count_nonzero(nz))
        if nzeros:
            self.zeros += nzeros
        if rel is not None:
            # The verify pass's `rel` holds exact 0.0 at the x == 0
            # points it masked out of the divide: bucket the full array
            # (no extraction/divide pass), then retract those points
            # from the rel digest's count and nonpos bucket.  Exact at
            # stride 1, within the sampling estimate otherwise (the
            # masked points contribute exact +/-0 to the signed total
            # either way).
            if nzeros < absx.size:
                self.rel.add(rel, mx=max_rel, signs=diff)
                if nzeros:
                    self.rel.n -= nzeros
                    b = _NONPOS_BUCKET * self.rel.scale
                    cur = self.rel.buckets.get(b, 0)
                    if cur > nzeros:
                        self.rel.buckets[b] = cur - nzeros
                    else:
                        self.rel.buckets.pop(b, None)
            return
        if nzeros:
            absx = absx[nz]
            diff = diff[nz]
        if absx.size:
            r = diff / absx
            self.rel.add(np.abs(r), float(r.sum()), mx=max_rel)

    # -- merging -----------------------------------------------------------

    def merge(self, other: "ErrorHistogram | dict") -> None:
        snap = other.snapshot() if isinstance(other, ErrorHistogram) else other
        self.zeros += int(snap.get("zeros", 0))
        self.nonfinite += int(snap.get("nonfinite", 0))
        self.rel.merge_snapshot(snap.get("rel") or {})
        self.abs.merge_snapshot(snap.get("abs") or {})

    def snapshot(self) -> dict:
        return {
            "scale": self.scale,
            "zeros": self.zeros,
            "nonfinite": self.nonfinite,
            "rel": self.rel.snapshot(),
            "abs": self.abs.snapshot(),
        }

    @classmethod
    def from_snapshot(cls, snap: dict) -> "ErrorHistogram":
        out = cls(int(snap.get("scale", QUALITY_SCALE)))
        out.merge(snap)
        return out

    # -- reading -----------------------------------------------------------

    @property
    def points(self) -> int:
        """Total points observed (finite + non-finite)."""
        return self.abs.n + self.nonfinite

    def percentile_rel(self, q: float) -> float:
        return self.rel.percentile(q)

    def percentile_abs(self, q: float) -> float:
        return self.abs.percentile(q)

    def summary(self) -> dict:
        """Flat scalar summary (ledger/JSON friendly)."""
        return _summary(
            self.rel.snapshot(), self.abs.snapshot(), self.zeros, self.nonfinite
        )


def _summary(rel: dict, abs_: dict, zeros: int, nonfinite: int) -> dict:
    def pct(snap: dict, q: float) -> float:
        return percentile_from_snapshot(snap, q) if snap.get("n") else 0.0

    def bias(snap: dict) -> float:
        n = int(snap.get("n", 0))
        return float(snap.get("total", 0.0)) / n if n else 0.0

    return {
        "n": int(abs_.get("n", 0)) + int(nonfinite),
        "zeros": int(zeros),
        "nonfinite": int(nonfinite),
        "rel_n": int(rel.get("n", 0)),
        "rel_bias": bias(rel),
        "rel_p50": pct(rel, 50),
        "rel_p90": pct(rel, 90),
        "rel_p99": pct(rel, 99),
        "max_rel": float(rel.get("max", 0.0)) if rel.get("n") else 0.0,
        "abs_bias": bias(abs_),
        "abs_p50": pct(abs_, 50),
        "abs_p90": pct(abs_, 90),
        "abs_p99": pct(abs_, 99),
        "max_abs": float(abs_.get("max", 0.0)) if abs_.get("n") else 0.0,
    }


# ---------------------------------------------------------------------------
# registry plumbing (pool-boundary aggregation, same road as audit.*)
# ---------------------------------------------------------------------------


def record_quality_metrics(hist: ErrorHistogram, registry=None) -> None:
    """Fold a digest into the metrics registry as ``quality.*`` entries.

    The registry already survives thread/process pools (``run_traced``
    ships ``diff``, ``absorb`` merges), so per-chunk digests recorded here
    aggregate across workers with no extra machinery -- identical to how
    the ``audit.*`` counters travel.
    """
    if hist.points == 0 and hist.zeros == 0:
        return
    record_quality_snapshot(hist.snapshot(), registry)


def record_quality_snapshot(snap: dict, registry=None) -> None:
    """Fold an :class:`ErrorHistogram` *snapshot* into the registry.

    Same effect as inflating the snapshot with
    :meth:`ErrorHistogram.from_snapshot` and calling
    :func:`record_quality_metrics`, minus the inflate/re-snapshot round
    trip -- this runs per chunk on the compress verify path, where the
    snapshot dict is already in hand.
    """
    rel = snap.get("rel") or {}
    abs_ = snap.get("abs") or {}
    nonfinite = int(snap.get("nonfinite", 0))
    zeros = int(snap.get("zeros", 0))
    points = int(abs_.get("n", 0)) + nonfinite
    if points == 0 and zeros == 0:
        return
    reg = registry if registry is not None else _metrics()
    reg.counter("quality.points").inc(points)
    if zeros:
        reg.counter("quality.zeros").inc(zeros)
    if nonfinite:
        reg.counter("quality.nonfinite").inc(nonfinite)
    reg.merge({_REL_METRIC: rel, _ABS_METRIC: abs_})


def _clamp_to_buckets(snap: dict) -> dict:
    """Run-scope a registry *diff* histogram's min/max.

    ``MetricsRegistry.diff`` reports a histogram's post-state min/max
    (bounds cannot be un-observed), so in a long-lived process they can
    belong to an earlier run.  The delta's *buckets* are run-scoped,
    though: the run's observations all lie within the occupied buckets'
    edges, so cap min/max there.  Costs at most one bucket (~9% at the
    quality scale) of precision, and only when the same process
    previously saw more extreme errors.
    """
    buckets = snap.get("buckets")
    if not buckets:
        return snap
    scale = int(snap.get("scale", 1)) or 1
    keys = [int(k) for k, _ in buckets]
    lo_key, hi_key = min(keys), max(keys)
    nonpos = _NONPOS_BUCKET * scale
    out = dict(snap)
    if "max" in out and hi_key != nonpos and hi_key <= 1023 * scale:
        out["max"] = min(float(out["max"]), 2.0 ** (hi_key / scale))
    if "min" in out:
        floor = 0.0 if lo_key == nonpos else 2.0 ** ((lo_key - 1) / scale)
        out["min"] = max(float(out["min"]), floor)
    return out


def quality_summary_from_metrics(delta: dict) -> dict | None:
    """Rebuild the flat quality summary from a registry snapshot/diff.

    Returns ``None`` when the delta carries no ``quality.*`` histograms
    (collection off, or nothing compressed).  Percentiles come from
    :func:`percentile_from_snapshot` on the merged scaled histograms;
    min/max are run-scoped via :func:`_clamp_to_buckets`.
    """
    rel = _clamp_to_buckets(delta.get(_REL_METRIC) or {})
    abs_ = _clamp_to_buckets(delta.get(_ABS_METRIC) or {})
    if not rel.get("n") and not abs_.get("n"):
        return None

    def counter(name: str) -> int:
        return int((delta.get(name) or {}).get("value", 0))

    return _summary(rel, abs_, counter("quality.zeros"), counter("quality.nonfinite"))


# ---------------------------------------------------------------------------
# byte attribution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ByteNode:
    """One node of the byte-attribution tree.

    ``[start, stop)`` are absolute offsets into the original stream.
    Leaves (no children) carry the attribution ``kind``; the leaves of any
    node partition its range exactly -- :meth:`check_exhaustive` enforces
    the invariant and the test matrix asserts it for every codec/version.
    """

    name: str
    kind: str
    start: int
    stop: int
    children: tuple["ByteNode", ...] = ()
    note: str | None = None

    @property
    def nbytes(self) -> int:
        return self.stop - self.start

    def leaves(self):
        if not self.children:
            yield self
            return
        for child in self.children:
            yield from child.leaves()

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def kind_totals(self) -> dict[str, int]:
        """Bytes per leaf kind, descending."""
        totals: dict[str, int] = {}
        for leaf in self.leaves():
            totals[leaf.kind] = totals.get(leaf.kind, 0) + leaf.nbytes
        return dict(sorted(totals.items(), key=lambda kv: (-kv[1], kv[0])))

    def damage_notes(self) -> list[str]:
        """Human-readable notes from every damaged region (ordered)."""
        notes = []
        for node in self.walk():
            if node.kind == "damaged":
                what = node.note or "unreadable bytes"
                notes.append(f"{what} at bytes [{node.start}, {node.stop})")
            elif node.note and node is self and "missing" in node.note:
                notes.append(node.note)
        return notes

    def check_exhaustive(self) -> None:
        """Raise ValueError unless children exactly tile every node's range."""
        if self.stop < self.start:
            raise ValueError(f"{self.name}: negative range [{self.start}, {self.stop})")
        if not self.children:
            return
        cursor = self.start
        for child in self.children:
            if child.start != cursor:
                raise ValueError(
                    f"{self.name}: gap/overlap at {cursor} (child {child.name} "
                    f"starts at {child.start})"
                )
            child.check_exhaustive()
            cursor = child.stop
        if cursor != self.stop:
            raise ValueError(f"{self.name}: children end at {cursor}, node at {self.stop}")

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "stop": self.stop,
            "nbytes": self.nbytes,
        }
        if self.note:
            out["note"] = self.note
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def format(self, max_depth: int | None = None) -> str:
        """Indented tree rendering (sizes right-aligned)."""
        lines: list[str] = []

        def visit(node: "ByteNode", depth: int) -> None:
            note = f"  ({node.note})" if node.note else ""
            lines.append(f"{node.nbytes:>10,} B  {'  ' * depth}{node.name} [{node.kind}]{note}")
            if max_depth is not None and depth >= max_depth:
                return
            for child in node.children:
                visit(child, depth + 1)

        visit(self, 0)
        return "\n".join(lines)


def _leaf(name: str, kind: str, start: int, stop: int, note: str | None = None) -> ByteNode:
    return ByteNode(name, kind, start, stop, (), note)


def _tile(start: int, stop: int, children: list[ByteNode]) -> tuple[ByteNode, ...]:
    """Sort children and fill gaps so the result tiles ``[start, stop)``.

    Malformed children (out of range or overlapping) are dropped -- the
    filler then covers their bytes as ``unattributed`` -- so exhaustiveness
    holds even over corrupt geometry.
    """
    out: list[ByteNode] = []
    cursor = start
    for child in sorted(children, key=lambda c: (c.start, c.stop)):
        if child.start < cursor or child.stop > stop or child.stop < child.start:
            continue
        if child.start > cursor:
            out.append(_leaf("gap", "unattributed", cursor, child.start))
        out.append(child)
        cursor = child.stop
    if cursor < stop:
        out.append(_leaf("gap", "unattributed", cursor, stop))
    return tuple(out)


#: Attribution kind per known section key; anything absent is small typed
#: metadata.  Section *payload* bytes only -- framing and CRCs have their
#: own kinds.
_KEY_KINDS = {
    "payload": "payload",
    "inner": "payload",  # refined to a nested tree when it parses
    "codes": "entropy",  # refined into table/offsets/bits below
    "escq": "outliers",
    "patch_idx": "patch",
    "patch_val": "patch",
    "signs": "signs",
    "parity": "parity",
    "coeffs": "coefficients",
    "selector": "coefficients",
    "emax": "coefficients",
    "remainders": "coefficients",
    "classes": "coefficients",
    "eb_block": "coefficients",
    "offs": "chunk-table",
    "lens": "chunk-table",
    "elems": "chunk-table",
    "parity_lens": "chunk-table",
    "index": "chunk-table",
}


def _attr_entropy(blob: bytes, s: int, t: int, off: int, name: str, deflated: bool) -> ByteNode:
    """Split a Huffman blob into code-length table, chunk offsets, packed bits.

    ``s``/``t`` index ``blob``; nodes are emitted at ``off + local``.
    """
    from repro.encoding.codecs import read_varint

    if deflated:
        return _leaf(name, "entropy", off + s, off + t,
                     "whole-stream deflated (stage-3 recompression)")
    pay = blob[s:t]
    try:
        _nsym, p = read_varint(pay)
        _cs, p = read_varint(pay, p)
        sz, p = read_varint(pay, p)
        table_end = p + sz
        if table_end > len(pay):
            raise ValueError("truncated code-length table")
    except ValueError as exc:
        return _leaf(name, "entropy", off + s, off + t, f"unparsed entropy stream: {exc}")
    a = off + s
    kids = [_leaf(f"{name}.table", "entropy-table", a, a + table_end)]
    if table_end < len(pay):
        try:
            osz, p = read_varint(pay, table_end)
            offs_end = p + osz
            if offs_end > len(pay):
                raise ValueError("truncated chunk offsets")
            kids.append(_leaf(f"{name}.offsets", "chunk-table", a + table_end, a + offs_end))
            kids.append(_leaf(f"{name}.bits", "entropy-payload", a + offs_end, off + t))
        except ValueError as exc:
            kids.append(
                _leaf(f"{name}.bits", "entropy-payload", a + table_end, off + t, str(exc))
            )
    return ByteNode(name, "entropy", a, off + t, _tile(a, off + t, kids))


def _attr_chunked_payload(blob: bytes, s: int, t: int, off: int, box) -> ByteNode:
    """Recurse into each chunk container of a CHUNKED payload section."""
    a, b = off + s, off + t
    try:
        offs = box.get_array("offs").tolist()
        lens = box.get_array("lens").tolist()
    except Exception:  # noqa: BLE001 - corrupt geometry degrades, never raises
        return _leaf("payload", "payload", a, b, "chunk table unreadable")
    kids = []
    for i, (coff, ln) in enumerate(zip(offs, lens)):
        cs, ct = s + int(coff), s + int(coff) + int(ln)
        if cs < s or ct > t or ct < cs:
            break
        kids.append(attribute_bytes(blob[cs:ct], offset=off + cs, name=f"chunk[{i}]"))
    return ByteNode("payload", "chunks", a, b, _tile(a, b, kids))


def _attr_parity(blob: bytes, s: int, t: int, off: int, box) -> ByteNode:
    """Split the RS parity section into per-group blocks."""
    a, b = off + s, off + t
    try:
        plens = [int(v) for v in box.get_array("parity_lens")]
    except Exception:  # noqa: BLE001
        return _leaf("parity", "parity", a, b)
    if sum(plens) != t - s:
        return _leaf("parity", "parity", a, b, "parity_lens disagrees with section size")
    kids, cursor = [], a
    for g, ln in enumerate(plens):
        kids.append(_leaf(f"parity[{g}]", "parity", cursor, cursor + ln))
        cursor += ln
    return ByteNode("parity", "parity", a, b, _tile(a, b, kids))


def _classify_payload(
    codec: str, key: str, blob: bytes, s: int, t: int, off: int, box
) -> ByteNode:
    """Attribute one section payload at ``blob[s:t]``; nodes at ``off + local``."""
    from repro.encoding.container import _MAGIC

    if key == "inner" and t - s >= 4 and blob[s : s + 4] == _MAGIC:
        return attribute_bytes(blob[s:t], offset=off + s, name="inner")
    if key == "codes":
        deflated = False
        if box is not None and "stage3" in box:
            try:
                deflated = box.get_u64("stage3") == 1
            except Exception:  # noqa: BLE001
                deflated = False
        return _attr_entropy(blob, s, t, off, key, deflated)
    if codec == "CHUNKED" and key == "payload" and box is not None:
        return _attr_chunked_payload(blob, s, t, off, box)
    if codec == "CHUNKED" and key == "parity" and box is not None:
        return _attr_parity(blob, s, t, off, box)
    return _leaf(key, _KEY_KINDS.get(key, "metadata"), off + s, off + t)


def attribute_bytes(blob: bytes, offset: int = 0, name: str = "stream") -> ByteNode:
    """Decompose container bytes into an exhaustive byte-attribution tree.

    Walks the v1--v4 framing by hand (same layout the header-peek parsers
    in ``repro.decompress`` rely on) without verifying checksums, so it
    works on streams :class:`Container` would reject.  Never raises:
    structurally unreadable regions become ``damaged`` leaves and the tree
    still tiles ``[0, len(blob))`` exactly.  ``offset`` shifts all
    coordinates (used when recursing into nested containers).
    """
    from repro.encoding.codecs import read_varint
    from repro.encoding.container import _CRC_BYTES, _KNOWN_VERSIONS, _MAGIC, Container, StreamError

    blob = bytes(blob)
    n = len(blob)
    end = offset + n

    def leaf(nm, kind, s, t, note=None):
        return _leaf(nm, kind, offset + s, offset + t, note)

    if n == 0:
        return ByteNode(name, "damaged", offset, end, (), "empty stream")
    if n < 5 or blob[:4] != _MAGIC:
        return ByteNode(name, "damaged", offset, end, (), "bad magic: not a repro container")
    version = blob[4]
    if version not in _KNOWN_VERSIONS:
        return ByteNode(
            name, "damaged", offset, end, (), f"unsupported container version {version}"
        )
    crc = _CRC_BYTES if version >= 2 else 0
    children: list[ByteNode] = []

    def finish(note: str | None = None) -> ByteNode:
        return ByteNode(name, "container", offset, end, _tile(offset, end, children), note)

    def bail(pos: int, why: str) -> ByteNode:
        children.append(leaf("unparsed", "damaged", pos, n, why))
        return finish()

    try:
        k, pos = read_varint(blob, 5)
        if pos + k > n:
            raise ValueError("truncated codec name")
        codec = blob[pos : pos + k].decode("utf-8", "replace")
        pos += k
        nsec, pos = read_varint(blob, pos)
    except ValueError as exc:
        children.append(leaf("header", "framing", 0, min(5, n)))
        return bail(min(5, n), f"truncated header: {exc}")
    children.append(leaf("header", "framing", 0, pos, f"magic+version+codec({codec})+nsec"))

    # The typed accessors (chunk geometry, stage-3 flag) come from a
    # damage-tolerant parse; attribution itself never needs it to succeed.
    try:
        box = Container.from_bytes(blob, verify_checksums=False, partial=True)
    except StreamError:
        box = None

    for _ in range(nsec):
        sec_start = pos
        try:
            klen, p = read_varint(blob, pos)
            if p + klen > n:
                raise ValueError("truncated section key")
            key = blob[p : p + klen].decode("utf-8", "replace")
            p += klen
            plen, p = read_varint(blob, p)
        except ValueError as exc:
            return bail(sec_start, f"truncated section header: {exc}")
        pay_start, pay_end = p, p + plen
        if pay_end > n:
            children.append(leaf(f"{key}.frame", "framing", sec_start, pay_start))
            return bail(pay_start, f"truncated section {key!r} payload")
        sec_children = [
            leaf(f"{key}.frame", "framing", sec_start, pay_start),
            _classify_payload(codec, key, blob, pay_start, pay_end, offset, box),
        ]
        pos = pay_end
        if crc:
            if pos + crc > n:
                children.append(
                    ByteNode(
                        key,
                        "section",
                        offset + sec_start,
                        offset + pos,
                        _tile(offset + sec_start, offset + pos, sec_children),
                    )
                )
                return bail(pos, f"truncated checksum of section {key!r}")
            sec_children.append(leaf(f"{key}.crc", "checksum", pos, pos + crc))
            pos += crc
        children.append(
            ByteNode(
                key,
                "section",
                offset + sec_start,
                offset + pos,
                _tile(offset + sec_start, offset + pos, sec_children),
            )
        )

    note = None
    if crc:
        if n - pos == crc:
            children.append(leaf("stream.crc", "checksum", pos, n))
            pos = n
        elif pos == n:
            note = "missing stream CRC trailer (truncated)"
        elif n - pos < crc:
            children.append(leaf("stream.crc", "damaged", pos, n, "truncated stream CRC trailer"))
            pos = n
    if pos != n:
        children.append(
            leaf("trailing", "damaged", pos, n, f"{n - pos} unexpected trailing bytes")
        )
    return finish(note)


def section_kind_map(tree: ByteNode) -> dict[str, str]:
    """Dominant payload kind per top-level section of an attribution tree.

    Framing and checksum bytes are excluded so the answer is "what the
    section's payload actually is" (``repro info``/``repro stats`` print
    it next to the section sizes).
    """
    out: dict[str, str] = {}
    for child in tree.children:
        if child.kind != "section":
            continue
        weights: dict[str, int] = {}
        for leaf in child.leaves():
            if leaf.kind not in ("framing", "checksum"):
                weights[leaf.kind] = weights.get(leaf.kind, 0) + leaf.nbytes
        if weights:
            out[child.name] = max(weights, key=weights.get)  # type: ignore[arg-type]
    return out


# ---------------------------------------------------------------------------
# anomaly flags + explain
# ---------------------------------------------------------------------------

#: Default deviation threshold for anomaly flags, in MADs from the median.
DEFAULT_MAD_K = 5.0


def mad_outliers(values, k: float = DEFAULT_MAD_K) -> tuple[list[dict], float, float]:
    """Flag values deviating >= ``k`` * MAD from the median.

    Returns ``(flags, median, mad)`` where each flag is
    ``{"index", "value", "deviation"}`` (deviation in MADs).  The MAD is
    floored at a relative epsilon of the median so perfectly uniform
    streams (MAD = 0) do not flag every chunk over float noise.
    """
    vals = np.asarray(list(values), dtype=np.float64)
    if vals.size < 3:
        return [], float(np.median(vals)) if vals.size else 0.0, 0.0
    med = float(np.median(vals))
    mad = float(np.median(np.abs(vals - med)))
    scale = max(mad, 1e-12 + 1e-6 * abs(med))
    dev = np.abs(vals - med) / scale
    flags = [
        {"index": int(i), "value": float(vals[i]), "deviation": float(dev[i])}
        for i in np.nonzero(dev >= k)[0]
    ]
    return flags, med, mad


@dataclass
class ExplainReport:
    """Everything ``repro explain`` knows about one stream."""

    codec: str | None
    version: int | None
    nbytes: int
    tree: ByteNode
    kind_totals: dict[str, int]
    decoded_nbytes: int | None = None
    ratio: float | None = None
    rel_bound: float | None = None
    #: Degradation-ladder chain recorded in the stream ("SZ_T>GZIP").
    ladder: str | None = None
    chunks: list[dict] = field(default_factory=list)
    anomalies: list[dict] = field(default_factory=list)
    quality: dict | None = None
    audit_ok: bool | None = None
    notes: list[str] = field(default_factory=list)
    mad_k: float = DEFAULT_MAD_K

    @property
    def ok(self) -> bool:
        """False when the stream carries structural damage."""
        return not any(note.startswith("StreamError") for note in self.notes)

    def to_dict(self) -> dict:
        return {
            "codec": self.codec,
            "version": self.version,
            "nbytes": self.nbytes,
            "ok": self.ok,
            "decoded_nbytes": self.decoded_nbytes,
            "ratio": self.ratio,
            "rel_bound": self.rel_bound,
            "ladder": self.ladder,
            "kind_totals": self.kind_totals,
            "attribution": self.tree.to_dict(),
            "chunks": self.chunks,
            "anomalies": self.anomalies,
            "quality": self.quality,
            "audit_ok": self.audit_ok,
            "notes": self.notes,
            "mad_k": self.mad_k,
        }

    def format(self, max_depth: int | None = 3) -> str:
        """Markdown report."""
        head = self.codec or "?"
        ver = f"v{self.version}" if self.version is not None else "v?"
        lines = [f"# repro explain — {head} ({ver}, {self.nbytes:,} bytes)", ""]
        status = "OK" if self.ok else "DAMAGED"
        bits = [f"status: **{status}**"]
        if self.ratio is not None:
            bits.append(f"ratio: **{self.ratio:.2f}x**")
        if self.rel_bound is not None:
            bits.append(f"rel bound: {self.rel_bound:g}")
        if self.ladder is not None:
            fallbacks = sum(1 for a in self.anomalies if a["metric"] == "fallback")
            bits.append(f"ladder: {self.ladder}"
                        + (f" ({fallbacks} fallback(s))" if fallbacks else ""))
        if self.audit_ok is not None:
            bits.append(f"audit: {'pass' if self.audit_ok else 'VIOLATED'}")
        lines.append(" · ".join(bits))
        lines += ["", "## Byte attribution", ""]
        lines.append("| kind | bytes | share |")
        lines.append("| --- | ---: | ---: |")
        for kind, nb in self.kind_totals.items():
            share = 100.0 * nb / self.nbytes if self.nbytes else 0.0
            lines.append(f"| {kind} | {nb:,} | {share:.2f}% |")
        lines += ["", "```", self.tree.format(max_depth=max_depth), "```"]
        if self.chunks:
            ratios = [c["ratio"] for c in self.chunks if c.get("ratio") is not None]
            lines += ["", f"## Chunks ({len(self.chunks)})", ""]
            if ratios:
                lines.append(
                    f"ratio median {float(np.median(ratios)):.2f}x, "
                    f"min {min(ratios):.2f}x, max {max(ratios):.2f}x"
                )
        if self.anomalies:
            lines += ["", f"## Anomalies (≥{self.mad_k:g}·MAD from the median)", ""]
            lines.append("| chunk | metric | value | deviation |")
            lines.append("| ---: | --- | ---: | ---: |")
            for a in self.anomalies:
                value = a["value"]
                vtxt = f"{value:.4g}" if isinstance(value, (int, float)) else str(value)
                dtxt = (
                    "—" if a["metric"] == "fallback"
                    else f"{a['deviation']:.1f}·MAD"
                )
                lines.append(f"| {a['index']} | {a['metric']} | {vtxt} | {dtxt} |")
        elif self.chunks:
            lines += ["", f"No chunk deviates ≥{self.mad_k:g}·MAD from the stream median."]
        if self.quality:
            q = self.quality
            lines += ["", "## Point-wise error quality", ""]
            lines.append(
                f"- points: {q['n']:,} ({q['zeros']:,} exact zeros, "
                f"{q['nonfinite']:,} non-finite)"
            )
            lines.append(
                f"- relative error: p50 {q['rel_p50']:.3g} · p90 {q['rel_p90']:.3g} "
                f"· p99 {q['rel_p99']:.3g} · max {q['max_rel']:.3g}"
            )
            lines.append(f"- signed relative bias: {q['rel_bias']:+.3g}")
            lines.append(
                f"- absolute error: p99 {q['abs_p99']:.3g} · max {q['max_abs']:.3g} "
                f"· bias {q['abs_bias']:+.3g}"
            )
        if self.notes:
            lines += ["", "## Notes", ""]
            lines += [f"- {note}" for note in self.notes]
        return "\n".join(lines) + "\n"


def explain_stream(
    blob: bytes,
    original=None,
    *,
    mad_k: float = DEFAULT_MAD_K,
    check_theorem3: bool = False,
) -> ExplainReport:
    """Build the full explain report for one compressed stream.

    Always succeeds: damage degrades to a partial attribution tree plus
    ``StreamError`` notes.  With ``original`` supplied, the stream is
    decompressed and audited (:func:`repro.observe.audit.audit_stream`)
    so the report carries the per-chunk max-error anomalies and the
    point-wise quality summary.
    """
    from repro.encoding.container import Container, StreamError, peek_codec

    blob = bytes(blob)
    tree = attribute_bytes(blob)
    notes = [f"StreamError: {note}" for note in tree.damage_notes()]

    codec: str | None = None
    version: int | None = None
    try:
        codec = peek_codec(blob)
        version = blob[4]
    except StreamError as exc:
        note = f"StreamError: {exc}"
        if note not in notes:
            notes.append(note)

    box = None
    if codec is not None:
        try:
            box = Container.from_bytes(blob, verify_checksums=False, partial=True)
        except StreamError as exc:
            notes.append(f"StreamError: {exc}")

    if codec is not None:
        # Attribution walks structure with checksums off so damaged
        # streams still tile; a corrupt payload behind intact framing
        # would then read as "OK".  Run the integrity pass (structure +
        # stream/section/chunk CRCs, no decompression) and surface its
        # problems as StreamError notes so ``ok`` means what `repro
        # verify` means.
        from repro.integrity import verify_stream

        for problem in verify_stream(blob).problems:
            note = f"StreamError: {problem}"
            if note not in notes:
                notes.append(note)

    report = ExplainReport(
        codec=codec,
        version=version,
        nbytes=len(blob),
        tree=tree,
        kind_totals=tree.kind_totals(),
        notes=notes,
        mad_k=mad_k,
    )

    itemsize = None
    if box is not None:
        try:
            if "dtype" in box and "shape" in box:
                dtype = box.get_dtype("dtype")
                shape = box.get_shape("shape")
                itemsize = dtype.itemsize
                report.decoded_nbytes = int(np.prod(shape, dtype=np.int64)) * itemsize
                if len(blob):
                    report.ratio = report.decoded_nbytes / len(blob)
        except StreamError:
            pass
        try:
            from repro.report import stream_bound

            kind, value = stream_bound(box)
            report.rel_bound = value if kind == "rel" else None
        except Exception:  # noqa: BLE001 - bound recovery is best-effort here
            report.rel_bound = None

    # Per-chunk geometry (CHUNKED streams): size + ratio per chunk, plus
    # the codec that actually compressed each chunk when the stream was
    # written through a degradation ladder.  A chunk a fallback rung had
    # to handle is flagged as a "fallback" anomaly: the bytes are valid
    # and the bound holds, but the operator should know the primary codec
    # failed there.
    if box is not None and codec == "CHUNKED":
        chunk_codecs: list[str] = []
        primary = None
        try:
            if "chunk_codecs" in box:
                chunk_codecs = [
                    c for c in box.get_str("chunk_codecs").split(";") if c
                ]
            if "ladder" in box:
                report.ladder = box.get_str("ladder")
                primary = report.ladder.split(">")[0]
            elif chunk_codecs:
                primary = chunk_codecs[0]
        except StreamError:
            pass
        try:
            lens = [int(v) for v in box.get_array("lens")]
            elems = [int(v) for v in box.get_array("elems")]
            for i, (ln, ne) in enumerate(zip(lens, elems)):
                rec = {"index": i, "nbytes": ln, "elems": ne}
                if itemsize and ln:
                    rec["ratio"] = ne * itemsize / ln
                if i < len(chunk_codecs):
                    rec["codec"] = chunk_codecs[i]
                    if primary is not None and chunk_codecs[i] != primary:
                        report.anomalies.append(
                            {
                                "index": i,
                                "metric": "fallback",
                                "value": chunk_codecs[i],
                                "deviation": 0.0,
                            }
                        )
                report.chunks.append(rec)
        except StreamError:
            notes.append("StreamError: chunk table unreadable")

    # Offline audit + quality when the original field is available.
    audit = None
    if original is not None:
        from repro.observe.audit import audit_stream

        try:
            audit = audit_stream(blob, np.asarray(original), check_theorem3=check_theorem3)
            report.audit_ok = audit.ok
            summary = getattr(audit, "error_summary", None)
            if summary:
                report.quality = dict(summary)
            for i, chunk in enumerate(audit.chunks):
                if i < len(report.chunks):
                    report.chunks[i]["max_rel_err"] = chunk.max_rel
                elif not report.chunks and len(audit.chunks) == 1:
                    break
        except (StreamError, ValueError) as exc:
            notes.append(f"StreamError: audit failed: {exc}")

    # Anomaly flags: ratio and (when audited) max relative error per chunk.
    for metric in ("ratio", "max_rel_err"):
        vals = [c.get(metric) for c in report.chunks]
        if len(vals) >= 3 and all(v is not None for v in vals):
            flags, _med, _mad = mad_outliers(vals, mad_k)
            for flag in flags:
                report.anomalies.append(
                    {
                        "index": report.chunks[flag["index"]]["index"],
                        "metric": metric,
                        "value": flag["value"],
                        "deviation": flag["deviation"],
                    }
                )
    return report
