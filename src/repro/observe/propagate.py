"""Telemetry propagation across thread/process pool boundaries.

A span opened inside a pool worker cannot attach to the dispatching
thread's span stack -- for process pools it lives in a different
interpreter entirely.  :func:`run_traced` is the worker-side half: it
runs the task under a :meth:`Tracer.capture` sink, measures wall/CPU
time, and snapshots what the task added to the worker's metrics
registry.  The resulting :class:`TaskTelemetry` is a plain picklable
object that travels back with the task's result; the parent calls
:func:`absorb` to stitch the worker's span trees under the dispatching
span and -- only when the task ran in *another process* -- fold the
metrics delta into the parent registry (same-process workers already
share it, so merging again would double count).

Queue-wait attribution relies on ``time.perf_counter`` being a
system-wide clock (CLOCK_MONOTONIC on Linux), so a submit stamp taken in
the parent is comparable with the start stamp taken in the worker.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.observe.metrics import metrics
from repro.observe.tracer import export_spans, get_tracer

__all__ = ["TaskTelemetry", "absorb", "run_traced"]


@dataclass
class TaskTelemetry:
    """What one pool task reports back to the dispatching thread."""

    pid: int
    t_start: float  # perf_counter stamp when the task began executing
    wall_s: float
    cpu_s: float
    spans: list = field(default_factory=list)  # exported span dicts
    metrics: dict = field(default_factory=dict)  # registry diff of this task
    profile: dict | None = None  # Profile.to_dict() from a worker-process sampler


def run_traced(fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)`` capturing its telemetry.

    Returns ``(result, TaskTelemetry)``.  Module-level so process-pool
    submissions can pickle it: ``pool.submit(run_traced, fn, *job)``.
    Exceptions propagate unchanged (their telemetry is discarded -- the
    caller's retry path re-runs the task anyway).
    """
    tracer = get_tracer()
    reg = metrics()
    before = reg.snapshot()
    # Worker-process profiling: when the parent installed a profiler it
    # exported REPRO_PROFILE, which this (possibly child) process
    # inherited.  task_sampler() returns a sampler only when no in-process
    # profiler is already watching this thread (the process-pool case);
    # it returns None in thread-pool/serial workers so samples are never
    # double-counted.  Import is deferred so the common untraced path
    # stays allocation-free.
    sampler = None
    if os.environ.get("REPRO_PROFILE"):
        from repro.observe.profile import task_sampler

        sampler = task_sampler()
    t_start = time.perf_counter()
    c0 = time.process_time()
    if sampler is not None:
        sampler.start()
    try:
        if tracer.enabled:
            with tracer.capture() as sink:
                result = fn(*args, **kwargs)
            spans = export_spans(sink)
        else:
            result = fn(*args, **kwargs)
            spans = []
    finally:
        profile = sampler.stop().to_dict() if sampler is not None else None
    wall = time.perf_counter() - t_start
    cpu = time.process_time() - c0
    return result, TaskTelemetry(
        pid=os.getpid(),
        t_start=t_start,
        wall_s=wall,
        cpu_s=cpu,
        spans=spans,
        metrics=reg.diff(before),
        profile=profile,
    )


def absorb(parent_span, telem: TaskTelemetry, label: str = "task",
           t_submit: float | None = None, **attrs) -> float | None:
    """Stitch one task's telemetry under ``parent_span``.

    Appends a ``label`` child span carrying the task's wall/CPU time,
    adopts the worker's captured span trees beneath it, and merges the
    metrics delta into this process's registry when the task ran in a
    different process.  Returns the queue wait (seconds between
    ``t_submit`` and the task starting to execute), or None when no
    submit stamp was given.
    """
    sp = parent_span.child(label, wall_s=telem.wall_s, cpu_s=telem.cpu_s, **attrs)
    sp.adopt(telem.spans)
    wait = None
    if t_submit is not None:
        wait = max(0.0, telem.t_start - t_submit)
        sp.set(queue_wait_s=round(wait, 6))
    if telem.metrics and telem.pid != os.getpid():
        metrics().merge(telem.metrics)
    if telem.profile:
        # Stitch worker-process samples into the installed profiler under
        # the dispatching span, mirroring what adopt() did for span trees.
        from repro.observe.profile import get_profiler
        from repro.observe.tracer import span_label

        prof = get_profiler()
        if prof is not None and prof.profile is not None:
            prof.profile.ingest(
                telem.profile, prefix=(span_label(parent_span), label)
            )
    return wait
