"""Zero-dependency pipeline telemetry: tracing, metrics, audit, export.

Eight parts (see ``docs/observability.md``):

* :mod:`repro.observe.tracer` -- nested :class:`Span` trees with wall/CPU
  time and byte counters per pipeline stage, rendered as a tree
  (``repro-compress ... --trace``) or exported as JSON;
* :mod:`repro.observe.metrics` -- named counters/gauges/histograms in a
  process-global :class:`MetricsRegistry` with snapshot/diff/merge;
* :mod:`repro.observe.propagate` -- plumbing that carries spans and
  counters across thread/process pool boundaries, so parallel chunk
  workers report into the dispatching span;
* :mod:`repro.observe.audit` -- error-bound conformance auditing: a
  streaming :class:`BoundAuditor` fed by the compressor verify hooks and
  :func:`audit_stream` for offline stream audits (Theorem 1 / Lemma 2 /
  Theorem 3 checks), surfaced as :class:`AuditReport`;
* :mod:`repro.observe.export` / :mod:`repro.observe.events` -- renderers
  for standard formats (OpenMetrics text, JSON lines) and a structured
  JSON-lines event log (``REPRO_EVENTS=<path>``) whose records carry
  trace-span correlation ids;
* :mod:`repro.observe.profile` -- span-attached sampling profiler
  (``sys._current_frames`` at a configurable Hz) with per-function
  self/cumulative tables, collapsed stacks and speedscope flamegraph
  export, propagated across process pools like spans are;
* :mod:`repro.observe.ledger` -- append-only JSON-lines perf history
  (``results/ledger.jsonl``) every benchmark run appends to, plus the
  markdown trend report behind ``repro perf report``;
* :mod:`repro.observe.quality` -- point-wise error analytics: a
  streaming, mergeable :class:`ErrorHistogram` (log-binned rel/abs
  error with signed bias and percentiles) fed by the verify hooks,
  :func:`attribute_bytes` decomposing any stream into an exhaustive
  byte-attribution tree, and :func:`explain_stream` behind
  ``repro-compress explain``.

Tracing is on by default; ``REPRO_TRACE=off`` (or
:func:`enable_tracing(False) <enable_tracing>`) reduces every
instrumentation point to a no-op attribute check.  Metrics are cheap
enough to stay on unconditionally.
"""

from repro.observe.audit import (
    AuditReport,
    BoundAuditor,
    ChunkAudit,
    Theorem3Check,
    audit_stream,
    auditing,
    get_auditor,
    install_auditor,
    theorem3_check,
)
from repro.observe.events import (
    EventLog,
    emit,
    event_log_enabled,
    get_event_log,
    install_event_log,
    read_events,
)
from repro.observe.export import (
    metric_name,
    metrics_to_jsonl,
    parse_openmetrics,
    spans_to_jsonl,
    to_openmetrics,
)
from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics,
)
from repro.observe.ledger import (
    append_entry,
    machine_fingerprint,
    make_entry,
    read_ledger,
    render_trend_report,
)
from repro.observe.profile import (
    Profile,
    SamplingProfiler,
    get_profiler,
    install_profiler,
    profiler_active,
    profiling,
    uninstall_profiler,
)
from repro.observe.propagate import TaskTelemetry, absorb, run_traced
from repro.observe.quality import (
    ByteNode,
    ErrorHistogram,
    ExplainReport,
    attribute_bytes,
    explain_stream,
    mad_outliers,
    quality_enabled,
    quality_summary_from_metrics,
    record_quality_metrics,
    record_quality_snapshot,
    set_quality_enabled,
)
from repro.observe.tracer import (
    Span,
    Tracer,
    current_span,
    enable_tracing,
    export_spans,
    get_tracer,
    render_spans,
    render_top_spans,
    span,
    span_label,
    spans_from_dicts,
    top_spans,
    tracing_enabled,
)

__all__ = [
    "AuditReport",
    "BoundAuditor",
    "ByteNode",
    "ChunkAudit",
    "Counter",
    "ErrorHistogram",
    "EventLog",
    "ExplainReport",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Profile",
    "SamplingProfiler",
    "Span",
    "TaskTelemetry",
    "Theorem3Check",
    "Tracer",
    "absorb",
    "append_entry",
    "attribute_bytes",
    "audit_stream",
    "auditing",
    "current_span",
    "explain_stream",
    "emit",
    "enable_tracing",
    "event_log_enabled",
    "export_spans",
    "get_auditor",
    "get_event_log",
    "get_profiler",
    "get_tracer",
    "install_auditor",
    "install_event_log",
    "install_profiler",
    "machine_fingerprint",
    "mad_outliers",
    "make_entry",
    "metric_name",
    "metrics",
    "metrics_to_jsonl",
    "parse_openmetrics",
    "profiler_active",
    "profiling",
    "quality_enabled",
    "quality_summary_from_metrics",
    "read_events",
    "read_ledger",
    "record_quality_metrics",
    "record_quality_snapshot",
    "render_spans",
    "render_top_spans",
    "render_trend_report",
    "run_traced",
    "set_quality_enabled",
    "span",
    "span_label",
    "spans_from_dicts",
    "spans_to_jsonl",
    "theorem3_check",
    "to_openmetrics",
    "top_spans",
    "tracing_enabled",
    "uninstall_profiler",
]
