"""Zero-dependency pipeline telemetry: tracing spans and metrics.

Three parts (see ``docs/observability.md``):

* :mod:`repro.observe.tracer` -- nested :class:`Span` trees with wall/CPU
  time and byte counters per pipeline stage, rendered as a tree
  (``repro-compress ... --trace``) or exported as JSON;
* :mod:`repro.observe.metrics` -- named counters/gauges/histograms in a
  process-global :class:`MetricsRegistry` with snapshot/diff/merge;
* :mod:`repro.observe.propagate` -- plumbing that carries spans and
  counters across thread/process pool boundaries, so parallel chunk
  workers report into the dispatching span.

Tracing is on by default; ``REPRO_TRACE=off`` (or
:func:`enable_tracing(False) <enable_tracing>`) reduces every
instrumentation point to a no-op attribute check.  Metrics are cheap
enough to stay on unconditionally.
"""

from repro.observe.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics,
)
from repro.observe.propagate import TaskTelemetry, absorb, run_traced
from repro.observe.tracer import (
    Span,
    Tracer,
    current_span,
    enable_tracing,
    export_spans,
    get_tracer,
    render_spans,
    span,
    spans_from_dicts,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TaskTelemetry",
    "Tracer",
    "absorb",
    "current_span",
    "enable_tracing",
    "export_spans",
    "get_tracer",
    "metrics",
    "render_spans",
    "run_traced",
    "span",
    "spans_from_dicts",
    "tracing_enabled",
]
