"""Error-bound conformance auditing (Theorem 1 / Lemma 2 / Theorem 3).

The paper's contract is a *guarantee*: after the log transform, every
point satisfies ``|x - x_d| <= b_r * |x|`` (Theorem 1), using an absolute
bound shrunk by Lemma 2 to absorb mapping round-off, with quantization
indices that deviate across bases by no more than Theorem 3's ceiling.
This module continuously *watches* that guarantee:

* :class:`BoundAuditor` -- a streaming per-chunk auditor.  The verify
  step of :class:`~repro.core.pwr.TransformedCompressor` feeds it (when
  installed via :func:`install_auditor` / :func:`auditing`), and always
  feeds the cheap aggregate counters (``audit.points``,
  ``audit.violations``, ``audit.max_rel`` ...) in the global metrics
  registry -- which already travel across thread/process pools via
  :mod:`repro.observe.propagate`, so chunked parallel runs aggregate for
  free.
* :func:`audit_stream` -- offline audit of a serialized stream: per
  chunk, the max point-wise relative error and bounded fraction against
  the original (when given), the effective ``b_a'`` actually recorded in
  the stream vs Lemma 2's formula recomputed from the decoded data,
  sentinel/sign/patch statistics, and Theorem 3's cross-base
  quantization-index deviation on the original.  Surfaced as
  :class:`AuditReport` (also reachable as ``repro.report.audit_report``);
  the CLI's ``repro-compress audit`` prints it and exits non-zero on any
  violation.
"""

from __future__ import annotations

import math
import threading
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.observe.metrics import MetricsRegistry
from repro.observe.metrics import metrics as _metrics
from repro.observe.quality import (
    ErrorHistogram,
    quality_enabled,
    record_quality_snapshot,
)

__all__ = [
    "AuditReport",
    "BoundAuditor",
    "ChunkAudit",
    "Theorem3Check",
    "audit_stream",
    "auditing",
    "get_auditor",
    "install_auditor",
    "theorem3_check",
]


@dataclass(frozen=True)
class ChunkAudit:
    """Bound-conformance findings for one chunk (or one whole stream).

    Error fields are ``None`` when no original data was available (decode
    -side audits can only check the stream's internal invariants).
    ``violations`` counts points whose final reconstruction -- patch
    channel included -- exceeds the native bound.
    """

    index: int | None
    codec: str
    n: int
    bound_kind: str | None  # "rel" / "abs" / "prec" / "rate" / None
    bound_value: float | None
    max_rel: float | None
    max_abs: float | None
    bounded_fraction: float | None
    violations: int | None
    zeros: int  # exact zeros in the reconstruction (sentinel-coded)
    negatives: int  # sign-bitmap-restored negative values
    patched: int | None  # patch-channel entries (transformed streams)
    effective_ba: float | None  # the b_a' the stream actually recorded
    theorem2_ba: float | None  # unshrunk g(b_r) for the stream's base
    lemma2_ba: float | None  # Lemma 2's b_a' recomputed from decoded data
    lemma2_ok: bool | None  # effective_ba within Lemma 2's formula
    safeguards: tuple[str, ...] | None = None  # declared safeguard specs
    #: Per-spec recomputed violation counts (SAFE streams with original).
    safeguard_violations: dict[str, int] | None = None
    #: :class:`~repro.observe.quality.ErrorHistogram` snapshot of this
    #: chunk's point-wise errors (None when quality collection is off or
    #: no original was available).  Mergeable: the aggregate report folds
    #: the per-chunk digests into ``error_summary``.
    error_hist: dict | None = None

    @property
    def ok(self) -> bool:
        """No bound violation, no looser-than-Lemma-2 bound, safeguards hold."""
        if (self.violations or 0) != 0 or self.lemma2_ok is False:
            return False
        return not any((self.safeguard_violations or {}).values())


@dataclass(frozen=True)
class Theorem3Check:
    """Cross-base quantization-index deviation vs Theorem 3's ceiling."""

    ndim: int
    rel_bound: float
    bases: tuple[float, ...]
    max_deviation: float  # max |q_base - q_2| over all points and bases
    ceiling: float  # 1,3,7 * |log_{1+br}(1-br) - 1|  (+1 for rounding)

    @property
    def ok(self) -> bool:
        return self.max_deviation <= self.ceiling


@dataclass(frozen=True)
class AuditReport:
    """Aggregated bound-conformance audit over one stream or run."""

    codec: str
    bound_kind: str | None
    bound_value: float | None
    n_points: int
    n_chunks: int
    violations: int
    max_rel: float | None
    max_abs: float | None
    bounded_fraction: float | None
    zeros: int
    negatives: int
    patched: int
    chunks: tuple[ChunkAudit, ...] = ()
    theorem3: Theorem3Check | None = None
    notes: tuple[str, ...] = ()
    safeguards: tuple[str, ...] = ()
    #: Per-spec violation counts summed over chunks (empty when clean).
    safeguard_violations: dict[str, int] = field(default_factory=dict)
    #: Flat point-wise error-distribution summary (percentiles + signed
    #: bias) merged over every chunk's error digest; ``None`` when no
    #: digest was collected.  See ``repro.observe.quality``.
    error_summary: dict | None = None

    @property
    def ok(self) -> bool:
        if self.violations:
            return False
        if any(self.safeguard_violations.values()):
            return False
        if any(not c.ok for c in self.chunks):
            return False
        return self.theorem3 is None or self.theorem3.ok

    @property
    def violating_chunks(self) -> tuple[int, ...]:
        return tuple(
            c.index for c in self.chunks if not c.ok and c.index is not None
        )

    def to_dict(self) -> dict:
        return asdict(self)

    def format(self) -> str:
        lines = [f"codec:          {self.codec}"]
        if self.bound_kind is not None:
            lines.append(
                f"bound:          {self.bound_kind} {self.bound_value:g}"
            )
        lines.append(
            f"audited:        {self.n_points} points in {self.n_chunks} chunk(s)"
        )
        if self.max_rel is not None:
            bounded = (
                f"   bounded: {100.0 * self.bounded_fraction:.4f}%"
                if self.bounded_fraction is not None
                else ""
            )
            lines.append(
                f"max rel error:  {self.max_rel:.3e}   max abs: "
                f"{self.max_abs:.3e}{bounded}"
            )
        if self.error_summary:
            q = self.error_summary
            lines.append(
                f"rel err p50/p90/p99: {q['rel_p50']:.3e} / {q['rel_p90']:.3e} "
                f"/ {q['rel_p99']:.3e}   signed bias: {q['rel_bias']:+.3e}"
            )
        lines.append(
            f"zeros/negatives/patched: {self.zeros}/{self.negatives}/{self.patched}"
        )
        if self.safeguards:
            counts = self.safeguard_violations
            status = (
                "all hold"
                if not any(counts.values())
                else ", ".join(f"{s}: {n}" for s, n in counts.items() if n)
            )
            lines.append(
                f"safeguards:     {'; '.join(self.safeguards)} ({status})"
            )
        bad = [c for c in self.chunks if not c.ok]
        for c in bad:
            where = "stream" if c.index is None else f"chunk {c.index}"
            why = []
            if c.violations:
                why.append(f"{c.violations} point(s) out of bound"
                           + (f" (max rel {c.max_rel:.3e})" if c.max_rel else ""))
            if c.lemma2_ok is False:
                why.append(
                    f"b_a'={c.effective_ba:.9g} looser than Lemma 2's "
                    f"{c.lemma2_ba:.9g}"
                )
            for spec, n_bad in (c.safeguard_violations or {}).items():
                if n_bad:
                    why.append(f"safeguard {spec} violated at {n_bad} point(s)")
            lines.append(f"VIOLATION:      {where}: {'; '.join(why)}")
        if self.theorem3 is not None:
            t = self.theorem3
            lines.append(
                f"theorem 3:      max index deviation {t.max_deviation:g} "
                f"<= ceiling {t.ceiling:g} ({t.ndim}-D): "
                + ("ok" if t.ok else "VIOLATED")
            )
        for note in self.notes:
            lines.append(f"note:           {note}")
        lines.append("verdict:        " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)

    @classmethod
    def from_chunks(
        cls,
        chunks: list[ChunkAudit],
        codec: str = "?",
        theorem3: Theorem3Check | None = None,
        notes: tuple[str, ...] = (),
    ) -> "AuditReport":
        rels = [c.max_rel for c in chunks if c.max_rel is not None]
        abss = [c.max_abs for c in chunks if c.max_abs is not None]
        n = sum(c.n for c in chunks)
        with_bf = [c for c in chunks if c.bounded_fraction is not None]
        bf = (
            sum(c.bounded_fraction * c.n for c in with_bf)
            / max(1, sum(c.n for c in with_bf))
            if with_bf
            else None
        )
        first = next((c for c in chunks if c.bound_kind is not None), None)
        safeguards: tuple[str, ...] = ()
        sg_viol: dict[str, int] = {}
        for c in chunks:
            if c.safeguards and not safeguards:
                safeguards = c.safeguards
            for spec, count in (c.safeguard_violations or {}).items():
                sg_viol[spec] = sg_viol.get(spec, 0) + count
        error_summary = None
        hists = [c.error_hist for c in chunks if c.error_hist]
        if hists:
            from repro.observe.quality import ErrorHistogram

            merged = ErrorHistogram.from_snapshot(hists[0])
            for snap in hists[1:]:
                merged.merge(snap)
            error_summary = merged.summary()
        return cls(
            codec=codec,
            bound_kind=first.bound_kind if first else None,
            bound_value=first.bound_value if first else None,
            n_points=n,
            n_chunks=len(chunks),
            violations=sum(c.violations or 0 for c in chunks),
            max_rel=max(rels) if rels else None,
            max_abs=max(abss) if abss else None,
            bounded_fraction=bf,
            zeros=sum(c.zeros for c in chunks),
            negatives=sum(c.negatives for c in chunks),
            patched=sum(c.patched or 0 for c in chunks),
            chunks=tuple(chunks),
            theorem3=theorem3,
            notes=notes,
            safeguards=safeguards,
            safeguard_violations=sg_viol,
            error_summary=error_summary,
        )

    @classmethod
    def from_metrics(
        cls, delta: dict[str, dict], codec: str = "?",
        bound_value: float | None = None,
    ) -> "AuditReport":
        """Aggregate-only report from a registry diff.

        This is how a parallel run's audit survives the pool boundary:
        workers move the ``audit.*`` counters/histograms, the existing
        telemetry propagation merges them, and the dispatching side
        rebuilds the aggregate (per-chunk detail stays worker-local).
        """

        def val(name: str) -> float:
            snap = delta.get(name)
            return float(snap.get("value", 0.0)) if snap else 0.0

        # A safeguarded wrapper moves safeguard.* counters; its inner codec
        # (when it audits itself, like SZ_T) moves audit.* for the same
        # points.  Prefer the inner audit's coverage, fall back to the
        # safeguard pass, and count patches from both layers.
        from repro.observe.quality import quality_summary_from_metrics

        h = delta.get("audit.max_rel") or {}
        hs = delta.get("safeguard.max_rel") or {}
        n_points = int(val("audit.points")) or int(val("safeguard.points"))
        violations = int(val("audit.violations"))
        maxima = [float(src["max"]) for src in (h, hs) if "max" in src]
        return cls(
            codec=codec,
            bound_kind="rel" if bound_value is not None else None,
            bound_value=bound_value,
            n_points=n_points,
            n_chunks=max(int(h.get("n", 0)), int(hs.get("n", 0))),
            violations=violations,
            max_rel=max(maxima) if maxima else None,
            max_abs=None,
            bounded_fraction=(
                1.0 - violations / n_points if n_points else None
            ),
            zeros=int(val("audit.zeros")),
            negatives=int(val("audit.negatives")),
            patched=int(val("audit.patched")) + int(val("safeguard.patched")),
            error_summary=quality_summary_from_metrics(delta),
        )


class BoundAuditor:
    """Streaming per-chunk bound auditor.

    ``observe_chunk`` computes one :class:`ChunkAudit` from an original /
    reconstruction pair and accumulates it; ``record`` accepts an audit
    computed elsewhere.  Every observation also moves the ``audit.*``
    metrics in ``registry`` (the process-global one by default), which is
    what makes parallel aggregation work: the registry already propagates
    across thread/process pools.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._lock = threading.Lock()
        self._chunks: list[ChunkAudit] = []
        self._registry = registry

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else _metrics()

    def record(self, audit: ChunkAudit) -> ChunkAudit:
        with self._lock:
            self._chunks.append(audit)
        record_audit_metrics(audit, self.registry)
        return audit

    def observe_chunk(
        self,
        original: np.ndarray,
        recon: np.ndarray,
        rel_bound: float,
        index: int | None = None,
        codec: str = "?",
        effective_ba: float | None = None,
        theorem2_ba: float | None = None,
        lemma2_ba: float | None = None,
        patched: int | None = None,
    ) -> ChunkAudit:
        x = np.asarray(original, dtype=np.float64).ravel()
        xd = np.asarray(recon, dtype=np.float64).ravel()
        err = np.abs(xd - x)
        nz = x != 0
        rel = err[nz] / np.abs(x[nz])
        viol = int((rel > rel_bound).sum()) + int((err[~nz] > 0).sum())
        hist_snap = None
        if quality_enabled():
            hist = ErrorHistogram()
            hist.observe(x, xd)
            hist_snap = hist.snapshot()
        lemma2_ok = None
        if effective_ba is not None and lemma2_ba is not None:
            lemma2_ok = bool(effective_ba <= lemma2_ba * (1.0 + 1e-12) + 1e-300)
        audit = ChunkAudit(
            index=index,
            codec=codec,
            n=int(x.size),
            bound_kind="rel",
            bound_value=float(rel_bound),
            max_rel=float(rel.max(initial=0.0)),
            max_abs=float(err.max(initial=0.0)),
            bounded_fraction=1.0 - viol / x.size if x.size else 1.0,
            violations=viol,
            zeros=int((xd == 0).sum()),
            negatives=int((xd < 0).sum()),
            patched=patched,
            effective_ba=effective_ba,
            theorem2_ba=theorem2_ba,
            lemma2_ba=lemma2_ba,
            lemma2_ok=lemma2_ok,
            error_hist=hist_snap,
        )
        return self.record(audit)

    def chunks(self) -> list[ChunkAudit]:
        with self._lock:
            return list(self._chunks)

    def clear(self) -> None:
        with self._lock:
            self._chunks.clear()

    def report(self, codec: str = "?") -> AuditReport:
        return AuditReport.from_chunks(self.chunks(), codec=codec)


def record_audit_metrics(audit: ChunkAudit, registry: MetricsRegistry | None = None) -> None:
    """Move the aggregate ``audit.*`` metrics for one chunk audit.

    Called unconditionally from the encoder-side verify hook (cheap), so
    the aggregate survives pool boundaries even when no detailed
    :class:`BoundAuditor` is installed in the worker process.
    """
    reg = registry if registry is not None else _metrics()
    reg.counter("audit.points").inc(audit.n)
    reg.counter("audit.zeros").inc(audit.zeros)
    reg.counter("audit.negatives").inc(audit.negatives)
    if audit.violations is not None:
        reg.counter("audit.violations").inc(audit.violations)
    if audit.patched is not None:
        reg.counter("audit.patched").inc(audit.patched)
    if audit.max_rel is not None:
        reg.histogram("audit.max_rel").observe(audit.max_rel)
    if audit.error_hist:
        # The per-chunk quality digest rides the same registry road as the
        # audit counters, so it too survives thread/process pools.
        record_quality_snapshot(audit.error_hist, reg)


# -- global auditor hook ------------------------------------------------------

_AUDITOR: BoundAuditor | None = None


def install_auditor(auditor: BoundAuditor | None) -> BoundAuditor | None:
    """Install (or with ``None``, remove) the process-global auditor."""
    global _AUDITOR
    _AUDITOR = auditor
    return auditor


def get_auditor() -> BoundAuditor | None:
    return _AUDITOR


class auditing:
    """Context manager: install a fresh auditor, yield it, restore.

    >>> with auditing() as auditor:
    ...     compress(data, RelativeBound(1e-3))
    >>> auditor.report().ok
    """

    def __init__(self) -> None:
        self.auditor = BoundAuditor()
        self._prev: BoundAuditor | None = None

    def __enter__(self) -> BoundAuditor:
        self._prev = get_auditor()
        install_auditor(self.auditor)
        return self.auditor

    def __exit__(self, *exc) -> None:
        install_auditor(self._prev)


# -- Theorem 3 ----------------------------------------------------------------


def theorem3_check(
    data: np.ndarray,
    rel_bound: float,
    ndim: int | None = None,
    bases: tuple[float, ...] = (2.0, math.e, 10.0),
) -> Theorem3Check:
    """Cross-base quantization-index deviation vs Theorem 3's ceiling.

    Computes the SZ/Lorenzo quantization indices of the log-mapped data in
    every base and compares the worst cross-base disagreement against the
    theorem's ``1,3,7 * |log_{1+br}(1-br) - 1|`` ceiling (+1 for the
    rounding step).  Requires strictly positive data (the analysis is
    stated on magnitudes).
    """
    from repro.core.theory import quant_index_bound, quantization_indices

    data = np.asarray(data)
    ndim = data.ndim if ndim is None else int(ndim)
    ref = quantization_indices(data, rel_bound, bases[0], ndim)
    dev = 0.0
    for base in bases[1:]:
        q = quantization_indices(data, rel_bound, base, ndim)
        dev = max(dev, float(np.abs(q - ref).max(initial=0)))
    return Theorem3Check(
        ndim=ndim,
        rel_bound=float(rel_bound),
        bases=tuple(float(b) for b in bases),
        max_deviation=dev,
        ceiling=quant_index_bound(rel_bound, ndim) + 1.0,
    )


# -- offline stream audit -----------------------------------------------------


def lemma2_recomputed(
    recon: np.ndarray, rel_bound: float, base: float, dtype: np.dtype
) -> tuple[float, float]:
    """(theorem2_ba, lemma2_ba) recomputed from decoded data.

    Mirrors the encoder: ``max |log x|`` is floored at the zero-sentinel
    headroom term so streams of all-moderate values compare equal, then a
    small tolerance absorbs the original-vs-reconstruction drift (their
    ``max |log|`` can differ by up to the inner absolute bound).
    """
    from repro.core.error_bounds import abs_bound_for, machine_eps0
    from repro.core.transform import LogTransform

    tf = LogTransform(base)
    ba0 = abs_bound_for(rel_bound, base)
    eps0 = machine_eps0(dtype)
    mags = np.abs(np.asarray(recon, dtype=np.float64)).ravel()
    mags = mags[mags > 0]
    max_log = 0.0
    if mags.size:
        logs = np.log2(mags) / math.log2(base)
        max_log = float(np.abs(logs).max())
    max_log = max(max_log, abs(tf.floor_log(dtype)) + 4.0 * ba0 + 1.0)
    lemma2 = ba0 - max_log * eps0
    # Drift tolerance: reconstruction logs sit within ba0 of the originals.
    return ba0, lemma2 + eps0 * (ba0 + 1.0)


def _recheck_safeguards(
    specs: tuple[str, ...], original: np.ndarray, recon: np.ndarray
) -> dict[str, int]:
    """Recompute a SAFE stream's declared properties against the original.

    Bit-identical points are never violations (mirroring the encoder-side
    engine); unparseable specs -- e.g. kinds from a future version -- are
    reported with a count of -1 rather than crashing the audit, so the
    verdict stays conservative without hiding the unknown declaration.
    """
    from repro.safeguards.kinds import bit_view, parse_safeguard

    x = np.asarray(original).reshape(recon.shape).astype(recon.dtype, copy=False)
    x = np.ascontiguousarray(x)
    same = bit_view(x) == bit_view(np.ascontiguousarray(recon))
    counts: dict[str, int] = {}
    for spec in specs:
        try:
            sg = parse_safeguard(spec)
            mask = sg.violation_mask(x, recon) & ~same
            counts[spec] = int(np.count_nonzero(mask))
        except ValueError:
            counts[spec] = -1
    return counts


def _audit_one(
    chunk_blob: bytes, original: np.ndarray | None, index: int | None
) -> ChunkAudit:
    """Audit one self-contained (non-CHUNKED) stream."""
    from repro import decompress
    from repro.encoding.container import Container
    from repro.report import stream_bound

    box = Container.from_bytes(chunk_blob)
    recon = decompress(chunk_blob)
    kind, value = stream_bound(box)
    flat = recon.ravel()
    zeros = int((flat == 0).sum())
    negatives = int((flat < 0).sum())

    effective_ba = theorem2_ba = lemma2_ba = None
    lemma2_ok = None
    patched = int(box.get_u64("n_patch")) if "n_patch" in box else None
    if kind == "rel" and "ba" in box and "base" in box and value is not None:
        effective_ba = box.get_f64("ba")
        theorem2_ba, lemma2_ba = lemma2_recomputed(
            recon, value, box.get_f64("base"), recon.dtype
        )
        lemma2_ok = bool(effective_ba <= lemma2_ba)

    safeguards = None
    safeguard_violations = None
    if box.codec == "SAFE" and "safeguards" in box:
        safeguards = tuple(
            s for s in box.get_str("safeguards").split(";") if s.strip()
        )
        if original is not None:
            safeguard_violations = _recheck_safeguards(
                safeguards, original, recon
            )

    max_rel = max_abs = bf = None
    violations = None
    hist_snap = None
    if original is not None:
        with np.errstate(invalid="ignore"):
            x = np.asarray(original, dtype=np.float64).ravel()
            if x.size != flat.size:
                raise ValueError(
                    f"original has {x.size} elements, stream reconstructs {flat.size}"
                )
            xd = flat.astype(np.float64)
            if quality_enabled():
                hist = ErrorHistogram()
                hist.observe(x, xd)
                hist_snap = hist.snapshot()
            err = np.abs(xd - x)
            nz = (x != 0) & np.isfinite(x)
            rel = err[nz] / np.abs(x[nz])
            max_rel = float(rel.max(initial=0.0))
            max_abs = float(err[~np.isnan(err)].max(initial=0.0))
            if kind == "rel":
                zero = np.isfinite(x) & (x == 0)
                violations = int((rel > value).sum()) + int((err[zero] > 0).sum())
            elif kind == "abs":
                violations = int((err > value).sum())
            if violations is not None:
                bf = 1.0 - violations / x.size if x.size else 1.0

    return ChunkAudit(
        index=index,
        codec=box.codec,
        n=int(flat.size),
        bound_kind=kind,
        bound_value=value,
        max_rel=max_rel,
        max_abs=max_abs,
        bounded_fraction=bf,
        violations=violations,
        zeros=zeros,
        negatives=negatives,
        patched=patched,
        effective_ba=effective_ba,
        theorem2_ba=theorem2_ba,
        lemma2_ba=lemma2_ba,
        lemma2_ok=lemma2_ok,
        safeguards=safeguards,
        safeguard_violations=safeguard_violations,
        error_hist=hist_snap,
    )


def audit_stream(
    blob: bytes,
    original: np.ndarray | None = None,
    check_theorem3: bool = True,
) -> AuditReport:
    """Audit a serialized stream's bound conformance chunk by chunk.

    With ``original`` the audit is complete: point-wise errors, bounded
    fraction and violations per chunk.  Without it only the stream's
    internal invariants are checked (effective ``b_a'`` vs Lemma 2,
    sentinel/sign/patch statistics).  Theorem 3's cross-base index
    deviation runs when the original is strictly positive (the analysis
    is stated on positive data) and the stream carries a relative bound.
    """
    from repro.core.chunked import ChunkedCompressor, iter_chunk_blobs
    from repro.encoding.container import Container

    box = Container.from_bytes(blob)
    notes: list[str] = []
    if original is not None:
        original = np.asarray(original)

    chunks: list[ChunkAudit] = []
    if box.codec == ChunkedCompressor.name:
        elems = box.get_array("elems").astype(np.int64)
        starts = np.concatenate([[0], np.cumsum(elems)])
        flat = original.ravel() if original is not None else None
        if flat is not None and flat.size != int(starts[-1]):
            raise ValueError(
                f"original has {flat.size} elements, stream reconstructs "
                f"{int(starts[-1])}"
            )
        for i, chunk_blob in enumerate(iter_chunk_blobs(blob)):
            part = flat[starts[i] : starts[i + 1]] if flat is not None else None
            chunks.append(_audit_one(chunk_blob, part, i))
    else:
        chunks.append(_audit_one(blob, original, None))

    rel_chunks = [c for c in chunks if c.bound_kind == "rel"]
    theorem3 = None
    if check_theorem3 and original is not None and rel_chunks:
        if original.ndim in (1, 2, 3) and original.size and (original > 0).all():
            theorem3 = theorem3_check(
                original, rel_chunks[0].bound_value, original.ndim
            )
        else:
            notes.append(
                "theorem 3 check skipped: requires strictly positive 1-3D data"
            )
    if original is None:
        notes.append("no original supplied: point-wise errors not audited")
    if not rel_chunks and all(c.bound_kind is None for c in chunks):
        notes.append("stream carries no recoverable native bound")

    return AuditReport.from_chunks(
        chunks, codec=box.codec, theorem3=theorem3, notes=tuple(notes)
    )


# Keep the dataclass import from being flagged as unused when only
# asdict is exercised at runtime.
_ = field
