"""Named counters, gauges and histograms with snapshot/diff/merge.

The process-global default registry (:func:`metrics`) collects pipeline
statistics -- bytes in/out, chunks compressed, worker retries, CRC
verification time, exact-zero and sign-bitmap stats from the log
transform -- cheaply enough to stay on even when tracing is off.

``snapshot()`` freezes the registry into plain dicts; ``diff(before)``
returns what changed since an earlier snapshot (how ``repro stats``
isolates the cost of one decode); ``merge(delta)`` folds a worker
process's diff back into the parent registry, which is how counters
survive the process-pool boundary.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "percentile_from_snapshot",
]


class Counter:
    """Monotonically increasing value (counts, bytes, accumulated seconds)."""

    __slots__ = ("_lock", "value")
    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self.value += n

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value (queue depth, active workers)."""

    __slots__ = ("_lock", "value")
    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, v: float) -> None:
        with self._lock:
            self.value = float(v)

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


#: Bucket key for observations <= 0 (no binary exponent exists for them).
#: Sits below every float64 exponent so it always sorts first.
_NONPOS_BUCKET = -4999


class Histogram:
    """Streaming summary of observations: count, total, min, max, mean.

    Observations are additionally counted into power-of-two buckets (one
    per binary exponent: bucket ``k`` holds values in ``[2^(k-1), 2^k)``,
    non-positive values share a single underflow bucket), which makes
    approximate percentiles available without storing samples and keeps
    the structure mergeable across process boundaries.

    ``scale`` refines the binning to ``scale`` buckets per octave: bucket
    ``k`` then holds values in ``(2^((k-1)/scale), 2^(k/scale)]``.  Scaled
    histograms are populated by merging pre-binned snapshots (the quality
    digests in :mod:`repro.observe.quality` do this); ``observe`` always
    bins at scale 1, so a histogram only ever holds keys of one scale.
    """

    __slots__ = ("_lock", "n", "total", "min", "max", "buckets", "scale")
    kind = "histogram"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.n = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: dict[int, int] = {}
        self.scale = 1

    def observe(self, v: float) -> None:
        v = float(v)
        key = math.frexp(v)[1] if v > 0.0 else _NONPOS_BUCKET
        with self._lock:
            self.n += 1
            self.total += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v
            self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (``q`` in [0, 100]).

        Resolution is one binary order of magnitude (the bucket width);
        the result is clamped to the observed ``[min, max]``.  An empty
        histogram is well-defined and returns 0.0.
        """
        with self._lock:
            return percentile_from_snapshot(self.snapshot(), q)

    def snapshot(self) -> dict:
        out = {"type": "histogram", "n": self.n, "total": self.total, "mean": self.mean}
        if self.scale != 1:
            out["scale"] = self.scale
        if self.n:
            out["min"] = self.min
            out["max"] = self.max
            out["buckets"] = [[k, self.buckets[k]] for k in sorted(self.buckets)]
        return out


def percentile_from_snapshot(snap: dict, q: float) -> float:
    """Approximate ``q``-th percentile from a histogram snapshot dict.

    Shared by :meth:`Histogram.percentile` (live metric), the OpenMetrics
    exporter and the quality digests (frozen snapshots): resolution is one
    bucket width (a binary order of magnitude divided by the snapshot's
    ``scale``), the result is clamped to the observed ``[min, max]``, and
    an empty histogram returns 0.0.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    n = int(snap.get("n", 0))
    if n == 0:
        return 0.0
    scale = int(snap.get("scale", 1)) or 1
    lo = float(snap.get("min", 0.0))
    hi = float(snap.get("max", 0.0))
    buckets = sorted((int(k), int(c)) for k, c in snap.get("buckets") or ())
    if not buckets:
        return hi
    target = q / 100.0 * n
    cum = 0
    for key, count in buckets:
        cum += count
        if cum >= target:
            if key == _NONPOS_BUCKET * scale:
                return lo
            edge = 2.0 ** (key / scale) if key <= 1023 * scale else hi
            return min(max(edge, lo), hi)
    return hi


class MetricsRegistry:
    """Thread-safe name -> metric mapping with get-or-create accessors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        with self._lock:
            m = self._metrics.get(name)
            if m is None:
                m = self._metrics[name] = cls()
            elif not isinstance(m, cls):
                raise TypeError(f"metric {name!r} is a {type(m).__name__}, not a {cls.__name__}")
            return m

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    # -- snapshot / diff / merge -----------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        """Plain-dict freeze of every metric (JSON- and pickle-friendly)."""
        with self._lock:
            items = list(self._metrics.items())
        return {name: m.snapshot() for name, m in items}

    def diff(self, before: dict[str, dict]) -> dict[str, dict]:
        """What changed since ``before`` (an earlier :meth:`snapshot`).

        Counters and histogram count/total/buckets subtract; gauges report
        their current value; histogram min/max are the post-state's (bounds
        cannot be un-observed).  Metrics that did not move are omitted.
        A key present only in the newer snapshot diffs against an implicit
        zero (its full value is reported), never raises.
        """
        after = self.snapshot()
        out: dict[str, dict] = {}
        for name, snap in after.items():
            prev = before.get(name)
            if snap["type"] == "counter":
                delta = snap["value"] - (prev["value"] if prev else 0.0)
                if delta:
                    out[name] = {"type": "counter", "value": delta}
            elif snap["type"] == "gauge":
                if prev is None or prev["value"] != snap["value"]:
                    out[name] = snap
            else:
                dn = snap["n"] - (prev.get("n", 0) if prev else 0)
                if dn:
                    dt = snap["total"] - (prev.get("total", 0.0) if prev else 0.0)
                    entry = {"type": "histogram", "n": dn, "total": dt,
                             "mean": dt / dn if dn else 0.0}
                    if "scale" in snap:
                        entry["scale"] = snap["scale"]
                    if "min" in snap:
                        entry["min"] = snap["min"]
                        entry["max"] = snap["max"]
                    prev_buckets = dict(prev.get("buckets") or ()) if prev else {}
                    db = [
                        [k, c - prev_buckets.get(k, 0)]
                        for k, c in snap.get("buckets", ())
                        if c - prev_buckets.get(k, 0) > 0
                    ]
                    if db:
                        entry["buckets"] = db
                    out[name] = entry
        return out

    def merge(self, delta: dict[str, dict] | None) -> None:
        """Fold a snapshot/diff (e.g. from a worker process) into this registry."""
        if not delta:
            return
        for name, snap in delta.items():
            kind = snap.get("type")
            if kind == "counter":
                self.counter(name).inc(snap.get("value", 0.0))
            elif kind == "gauge":
                self.gauge(name).set(snap.get("value", 0.0))
            elif kind == "histogram":
                h = self.histogram(name)
                with h._lock:
                    if "scale" in snap and not h.n:
                        h.scale = int(snap["scale"])
                    h.n += int(snap.get("n", 0))
                    h.total += float(snap.get("total", 0.0))
                    if "min" in snap and snap["min"] < h.min:
                        h.min = float(snap["min"])
                    if "max" in snap and snap["max"] > h.max:
                        h.max = float(snap["max"])
                    for k, c in snap.get("buckets", ()):
                        h.buckets[int(k)] = h.buckets.get(int(k), 0) + int(c)


_DEFAULT = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-global default registry."""
    return _DEFAULT
