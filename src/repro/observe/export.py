"""Standard-format renderers for telemetry: OpenMetrics and JSON lines.

Everything in :mod:`repro.observe` snapshots to plain dicts; this module
turns those dicts into the two formats monitoring stacks actually ingest:

* :func:`to_openmetrics` -- the Prometheus/OpenMetrics text exposition
  format, one metric family per registry entry.  Counters map to
  ``repro_<name>_total``, gauges to ``repro_<name>``, histograms to a
  family with cumulative ``_bucket{le=...}`` series (power-of-two edges,
  see :class:`~repro.observe.metrics.Histogram`) plus ``_count``/``_sum``
  and ``_min``/``_max`` gauges.  Names are sanitized (``.``/``-`` to
  ``_``) per the OpenMetrics grammar.
* :func:`parse_openmetrics` -- a dependency-free lint/parser for the same
  format, strict enough to catch malformed output in tests (missing
  ``# EOF``, samples without a ``# TYPE`` declaration, non-numeric
  values, out-of-order buckets).
* :func:`metrics_to_jsonl` / :func:`spans_to_jsonl` -- one JSON object
  per line.  Span trees are flattened with explicit ``span_id`` /
  ``parent_id`` references so line-oriented consumers can rebuild the
  tree and the event log (:mod:`repro.observe.events`) can join on
  ``span_id``.

See ``docs/observability.md`` for the naming scheme and examples.
"""

from __future__ import annotations

import json
import math
import re

__all__ = [
    "metric_name",
    "metrics_to_jsonl",
    "parse_openmetrics",
    "spans_to_jsonl",
    "to_openmetrics",
]

#: Percentiles exported as ``<family>_p<q>`` gauges next to each histogram.
_QUANTILES = (50, 90, 99)

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<ts>\S+))?$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitize a registry key into a legal OpenMetrics metric name."""
    clean = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    full = f"{prefix}_{clean}" if prefix else clean
    if not _NAME_OK.match(full):
        full = "_" + full
    return full


def _fmt(v: float) -> str:
    """A float the exposition format accepts (no inf/nan surprises)."""
    if isinstance(v, float):
        if math.isnan(v):
            return "NaN"
        if math.isinf(v):
            return "+Inf" if v > 0 else "-Inf"
    return repr(float(v))


def to_openmetrics(snapshot: dict[str, dict], prefix: str = "repro") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` (or ``diff``) as OpenMetrics.

    The output is a complete exposition: every family is declared with a
    ``# TYPE`` line and the text ends with ``# EOF`` as the spec requires.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        snap = snapshot[name]
        kind = snap.get("type")
        base = metric_name(name, prefix)
        if kind == "counter":
            fam = base if base.endswith("_total") else base + "_total"
            family = fam[: -len("_total")]
            lines.append(f"# TYPE {family} counter")
            lines.append(f"{fam} {_fmt(snap.get('value', 0.0))}")
        elif kind == "gauge":
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base} {_fmt(snap.get('value', 0.0))}")
        elif kind == "histogram":
            lines.append(f"# TYPE {base} histogram")
            scale = int(snap.get("scale", 1)) or 1
            cum = 0
            for key, count in snap.get("buckets", ()):
                cum += count
                in_range = -1074 * scale <= key <= 1023 * scale
                edge = 2.0 ** (key / scale) if in_range else snap.get("min", 0.0)
                lines.append(f'{base}_bucket{{le="{_fmt(edge)}"}} {cum}')
            lines.append(f'{base}_bucket{{le="+Inf"}} {snap.get("n", 0)}')
            lines.append(f"{base}_count {snap.get('n', 0)}")
            lines.append(f"{base}_sum {_fmt(snap.get('total', 0.0))}")
            for stat in ("min", "max"):
                if stat in snap:
                    lines.append(f"# TYPE {base}_{stat} gauge")
                    lines.append(f"{base}_{stat} {_fmt(snap[stat])}")
            if snap.get("n", 0) and snap.get("buckets"):
                # Quantile gauges dashboards can plot directly, computed
                # from the power-of-two buckets (same resolution caveats
                # as Histogram.percentile; see percentile_from_snapshot).
                from repro.observe.metrics import percentile_from_snapshot

                for q in _QUANTILES:
                    val = percentile_from_snapshot(snap, q)
                    lines.append(f"# TYPE {base}_p{q:g} gauge")
                    lines.append(f"{base}_p{q:g} {_fmt(val)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_openmetrics(text: str) -> dict[str, dict]:
    """Parse/lint an OpenMetrics exposition produced by :func:`to_openmetrics`.

    Returns ``{family: {"type": kind, "samples": [(name, labels, value)]}}``.
    Raises :class:`ValueError` on structural defects: no ``# EOF``
    terminator, a sample whose family was never declared, an unparseable
    sample line, a non-numeric value, or non-monotonic histogram buckets.
    This is the round-trip check the tests (and CI) run on every export.
    """
    lines = text.splitlines()
    if not lines or lines[-1].strip() != "# EOF":
        raise ValueError("exposition must end with '# EOF'")
    families: dict[str, dict] = {}
    for ln in lines[:-1]:
        ln = ln.strip()
        if not ln:
            continue
        if ln.startswith("#"):
            parts = ln.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                family, kind = parts[2], parts[3]
                if family in families:
                    raise ValueError(f"duplicate TYPE declaration for {family}")
                families[family] = {"type": kind, "samples": []}
            continue
        m = _SAMPLE.match(ln)
        if m is None:
            raise ValueError(f"unparseable sample line: {ln!r}")
        name = m.group("name")
        family = next(
            (
                f
                for f in sorted(families, key=len, reverse=True)
                if name == f
                or name.startswith(f + "_")
                or (families[f]["type"] == "counter" and name == f + "_total")
            ),
            None,
        )
        if family is None:
            raise ValueError(f"sample {name!r} has no TYPE declaration")
        labels = dict(_LABEL.findall(m.group("labels") or ""))
        raw = m.group("value")
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(f"non-numeric value {raw!r} for {name}") from None
        families[family]["samples"].append((name, labels, value))
    for family, fam in families.items():
        if fam["type"] != "histogram":
            continue
        cum = [
            (float(labels["le"]) if labels.get("le") != "+Inf" else math.inf, value)
            for name, labels, value in fam["samples"]
            if name == family + "_bucket"
        ]
        if any(b[1] > a[1] or b[0] > a[0] for a, b in zip(cum[1:], cum)):
            raise ValueError(f"histogram {family} buckets not cumulative/ordered")

        def _gauge(suffix: str) -> float | None:
            fam = families.get(family + suffix)
            if fam is None or fam["type"] != "gauge" or not fam["samples"]:
                return None
            return fam["samples"][0][2]

        quantiles = [(q, v) for q in _QUANTILES if (v := _gauge(f"_p{q:g}")) is not None]
        if quantiles:
            if [q for q, _ in quantiles] != list(_QUANTILES):
                raise ValueError(
                    f"histogram {family} exports only a subset of the "
                    f"p{'/p'.join(str(q) for q in _QUANTILES)} quantile gauges"
                )
            count = next(
                (v for nm, _, v in fam["samples"] if nm == family + "_count"), None
            )
            if count == 0:
                # A zero-sample histogram has no observed range: its
                # quantile gauges are placeholders (typically 0.0) and
                # there is nothing for monotonicity/containment to check.
                continue
            values = [v for _, v in quantiles]
            if any(b < a for a, b in zip(values, values[1:])):
                raise ValueError(f"histogram {family} quantiles not non-decreasing")
            lo, hi = _gauge("_min"), _gauge("_max")
            if lo is not None and hi is not None and lo <= hi and not all(
                lo <= v <= hi for v in values
            ):
                raise ValueError(
                    f"histogram {family} quantiles outside the observed [min, max]"
                )
    return families


def metrics_to_jsonl(snapshot: dict[str, dict]) -> str:
    """One JSON object per metric: ``{"metric": name, ...snapshot fields}``."""
    lines = [
        json.dumps({"metric": name, **snapshot[name]}, sort_keys=True)
        for name in sorted(snapshot)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def spans_to_jsonl(spans) -> str:
    """Flatten span trees (dicts or Spans) to JSON lines with parent links."""
    out: list[str] = []

    def walk(sp: dict, parent_id: str | None, depth: int) -> None:
        rec = {
            "span": sp.get("name"),
            "span_id": sp.get("span_id"),
            "parent_id": parent_id,
            "depth": depth,
            "wall_s": sp.get("wall_s", 0.0),
            "cpu_s": sp.get("cpu_s", 0.0),
            "bytes_in": sp.get("bytes_in", 0),
            "bytes_out": sp.get("bytes_out", 0),
            "attrs": sp.get("attrs") or {},
        }
        out.append(json.dumps(rec, sort_keys=True))
        for child in sp.get("children", ()):
            walk(child, sp.get("span_id"), depth + 1)

    for sp in spans:
        walk(sp if isinstance(sp, dict) else sp.to_dict(), None, 0)
    return "\n".join(out) + ("\n" if out else "")
