"""Low-overhead sampling profiler attached to the tracing layer.

Where spans answer *which stage* is slow, the profiler answers *which
function inside the stage*: a background thread samples every Python
thread's call stack (``sys._current_frames``) at a configurable rate and
attributes each sample to the innermost tracing span open on the sampled
thread (via :meth:`Tracer.active_stacks`).  The result is a
:class:`Profile` that renders as

* a per-function self/cumulative time table (:meth:`Profile.table`),
* collapsed-stack lines for ``flamegraph.pl``-style tooling
  (:meth:`Profile.collapsed`), and
* a speedscope-compatible JSON document
  (:meth:`Profile.to_speedscope` / :meth:`Profile.speedscope_json`) --
  drop it on https://www.speedscope.app for an interactive flamegraph.

Span attribution is prepended to every stack as synthetic ``span:<name>``
frames, so flamegraphs group by pipeline stage and the per-span tables
(:meth:`Profile.by_span`) fall out of the same samples.

An optional memory mode (``memory=True``) runs ``tracemalloc`` alongside
the sampler and records the traced-allocation high-water mark seen while
each span was innermost (:attr:`Profile.memory`).

The profiler is stdlib-only and observational: it never touches the
pipeline's data path, so compressed streams are byte-identical with and
without it (tested), and CI enforces a <5% wall-clock overhead budget at
the default rate (``scripts/check_trace_overhead.py --profile-hz``).

Process pools: :func:`install_profiler` exports ``REPRO_PROFILE=<hz>``
into the environment, worker processes see it inside
:func:`repro.observe.propagate.run_traced` (via :func:`task_sampler`) and
sample themselves for the duration of the task; the exported samples ride
back on :class:`TaskTelemetry` and :func:`absorb` stitches them into the
installed profiler under the dispatching span -- the same route the
worker's span trees take.

The default rate is 97 Hz: prime, so sampling cannot phase-lock with
periodic work, and low enough that the sampler itself stays well under
the overhead budget.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from contextlib import contextmanager

from repro.observe.tracer import get_tracer, span_label

__all__ = [
    "DEFAULT_HZ",
    "PROFILE_ENV",
    "Profile",
    "SamplingProfiler",
    "get_profiler",
    "install_profiler",
    "profiler_active",
    "profiling",
    "task_sampler",
    "uninstall_profiler",
]

DEFAULT_HZ = 97.0

#: Environment variable carrying the requested sampling rate into worker
#: processes (set by :func:`install_profiler`, read by :func:`task_sampler`).
PROFILE_ENV = "REPRO_PROFILE"

#: Distinct (thread, span path, stack) combinations kept per profile; the
#: cap bounds memory on pathological workloads (deep recursion with
#: varying stacks).  Beyond it, new combinations are counted in
#: ``Profile.dropped`` instead of stored.
MAX_UNIQUE_STACKS = 100_000

#: Leaf frames from these files, sampled on a thread with no open span,
#: are executor/interpreter idle time (workers parked on a queue), not
#: pipeline work; tables hide them by default.
_IDLE_FILES = ("threading.py", "queue.py", "selectors.py", "_base.py", "connection.py")


def _short_file(path: str) -> str:
    """Project-relative file label: ``repro/encoding/huffman.py``."""
    norm = path.replace(os.sep, "/")
    for anchor in ("/repro/", "/benchmarks/", "/scripts/", "/tests/"):
        idx = norm.rfind(anchor)
        if idx >= 0:
            return norm[idx + 1 :]
    return "/".join(norm.rsplit("/", 2)[-2:])


class _FrameNames:
    """Cache of code object -> display name (one lookup per unique code)."""

    __slots__ = ("_cache",)

    def __init__(self) -> None:
        self._cache: dict[int, str] = {}

    def name(self, code) -> str:
        key = id(code)
        got = self._cache.get(key)
        if got is None:
            got = f"{code.co_name} ({_short_file(code.co_filename)}:{code.co_firstlineno})"
            self._cache[key] = got
        return got


def _extract_stack(frame, names: _FrameNames, limit: int = 128) -> tuple[str, ...]:
    """Root-first tuple of frame names for one sampled thread."""
    out: list[str] = []
    while frame is not None and len(out) < limit:
        out.append(names.name(frame.f_code))
        frame = frame.f_back
    out.reverse()
    return tuple(out)


class Profile:
    """Aggregated samples from one profiling session.

    ``samples`` maps ``(thread name, span path, stack)`` -- span path and
    stack both root-first tuples of strings -- to accumulated seconds.
    ``memory`` maps a span label to the tracemalloc high-water mark (bytes)
    observed while that span was innermost (empty unless ``memory=True``).
    """

    def __init__(self, hz: float) -> None:
        self.hz = float(hz)
        self.duration_s = 0.0
        self.n_samples = 0
        self.dropped = 0
        self.samples: dict[tuple[str, tuple[str, ...], tuple[str, ...]], float] = {}
        self.memory: dict[str, int] = {}

    # -- accumulation (profiler-side) -------------------------------------------

    def add(
        self,
        thread: str,
        span_path: tuple[str, ...],
        stack: tuple[str, ...],
        weight: float,
    ) -> None:
        key = (thread, span_path, stack)
        if key not in self.samples and len(self.samples) >= MAX_UNIQUE_STACKS:
            self.dropped += 1
            return
        self.samples[key] = self.samples.get(key, 0.0) + weight
        self.n_samples += 1

    def note_memory(self, label: str, current_bytes: int) -> None:
        if current_bytes > self.memory.get(label, -1):
            self.memory[label] = int(current_bytes)

    def ingest(self, exported: dict, prefix: tuple[str, ...] = ()) -> None:
        """Fold a :meth:`to_dict` export (e.g. from a pool worker) in.

        ``prefix`` is prepended to every ingested sample's span path, so a
        chunk worker's samples stitch under the dispatching span the same
        way its span trees do.
        """
        for thread, path, stack, weight in exported.get("samples", ()):
            self.add(str(thread), prefix + tuple(path), tuple(stack), float(weight))
        # add() counts one sample per call; preserve the worker's true count
        self.n_samples += int(exported.get("n_samples", 0)) - len(
            exported.get("samples", ())
        )
        self.dropped += int(exported.get("dropped", 0))
        for label, hw in (exported.get("memory") or {}).items():
            key = "/".join(prefix + (label,)) if prefix else label
            self.note_memory(key, int(hw))
        self.duration_s = max(self.duration_s, float(exported.get("duration_s", 0.0)))

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "hz": self.hz,
            "duration_s": self.duration_s,
            "n_samples": self.n_samples,
            "dropped": self.dropped,
            "samples": [
                [thread, list(path), list(stack), weight]
                for (thread, path, stack), weight in self.samples.items()
            ],
            "memory": dict(self.memory),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Profile":
        prof = cls(float(data.get("hz", DEFAULT_HZ)))
        prof.ingest(data)
        prof.n_samples = int(data.get("n_samples", prof.n_samples))
        return prof

    # -- analysis ---------------------------------------------------------------

    def total_weight(self) -> float:
        return sum(self.samples.values())

    def _is_idle(self, span_path: tuple[str, ...], stack: tuple[str, ...]) -> bool:
        if span_path or not stack:
            return False
        leaf = stack[-1]
        return any(f"{name}:" in leaf for name in _IDLE_FILES)

    def self_time(self, hide_idle: bool = True) -> dict[str, float]:
        """Seconds each function was the sampled leaf frame."""
        out: dict[str, float] = {}
        for (_, path, stack), weight in self.samples.items():
            if not stack or (hide_idle and self._is_idle(path, stack)):
                continue
            leaf = stack[-1]
            out[leaf] = out.get(leaf, 0.0) + weight
        return out

    def cumulative_time(self, hide_idle: bool = True) -> dict[str, float]:
        """Seconds each function was anywhere on a sampled stack."""
        out: dict[str, float] = {}
        for (_, path, stack), weight in self.samples.items():
            if not stack or (hide_idle and self._is_idle(path, stack)):
                continue
            for name in set(stack):  # dedup: recursion counts once per sample
                out[name] = out.get(name, 0.0) + weight
        return out

    def by_span(self) -> dict[str, float]:
        """Seconds attributed to each innermost span label."""
        out: dict[str, float] = {}
        for (_, path, _stack), weight in self.samples.items():
            label = path[-1] if path else "(no span)"
            out[label] = out.get(label, 0.0) + weight
        return out

    def table(self, top: int = 20, hide_idle: bool = True) -> str:
        """Per-span and per-function self/cumulative time tables."""
        lines = [
            f"sampled {self.n_samples} stacks over {self.duration_s:.3f}s "
            f"at {self.hz:g} Hz"
            + (f" ({self.dropped} unique stacks dropped)" if self.dropped else "")
        ]
        spans = sorted(self.by_span().items(), key=lambda kv: kv[1], reverse=True)
        if spans:
            lines.append("")
            lines.append(f"  {'span':<40s} {'time':>9s} {'%':>6s}")
            total = sum(w for _, w in spans) or 1.0
            for label, weight in spans[:top]:
                lines.append(
                    f"  {label:<40s} {weight:8.3f}s {100.0 * weight / total:5.1f}%"
                )
        selfs = self.self_time(hide_idle)
        cums = self.cumulative_time(hide_idle)
        rows = sorted(selfs.items(), key=lambda kv: kv[1], reverse=True)[:top]
        if rows:
            lines.append("")
            lines.append(f"  {'function':<56s} {'self':>9s} {'%':>6s} {'cumul':>9s}")
            total = sum(selfs.values()) or 1.0
            for name, self_s in rows:
                lines.append(
                    f"  {name:<56s} {self_s:8.3f}s {100.0 * self_s / total:5.1f}% "
                    f"{cums.get(name, self_s):8.3f}s"
                )
        if self.memory:
            lines.append("")
            lines.append(f"  {'span (memory high-water)':<48s} {'bytes':>12s}")
            mem = sorted(self.memory.items(), key=lambda kv: kv[1], reverse=True)
            for label, hw in mem[:top]:
                lines.append(f"  {label:<48s} {hw:>12d}")
        return "\n".join(lines)

    def collapsed(self) -> str:
        """Collapsed-stack lines: ``span:a;frame;frame <microseconds>``.

        The Brendan Gregg format every flamegraph tool ingests; weights
        are integer microseconds (the conventional unit-less count).
        """
        agg: dict[str, float] = {}
        for (_, path, stack), weight in self.samples.items():
            key = ";".join(tuple(f"span:{p}" for p in path) + stack)
            if key:
                agg[key] = agg.get(key, 0.0) + weight
        lines = [
            f"{key} {max(1, round(weight * 1e6))}"
            for key, weight in sorted(agg.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_speedscope(self, name: str = "repro profile") -> dict:
        """Speedscope file-format document (one sampled profile per thread)."""
        frame_index: dict[str, int] = {}
        frames: list[dict] = []

        def fid(label: str) -> int:
            got = frame_index.get(label)
            if got is None:
                got = frame_index[label] = len(frames)
                frames.append({"name": label})
            return got

        by_thread: dict[str, list[tuple[list[int], float]]] = {}
        for (thread, path, stack), weight in sorted(self.samples.items()):
            ids = [fid(f"span:{p}") for p in path] + [fid(f) for f in stack]
            by_thread.setdefault(thread, []).append((ids, weight))

        profiles = []
        for thread in sorted(by_thread):
            entries = by_thread[thread]
            total = sum(w for _, w in entries)
            profiles.append(
                {
                    "type": "sampled",
                    "name": thread,
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": total,
                    "samples": [ids for ids, _ in entries],
                    "weights": [w for _, w in entries],
                }
            )
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "exporter": "repro.observe.profile",
            "activeProfileIndex": 0,
            "shared": {"frames": frames},
            "profiles": profiles,
        }

    def speedscope_json(self, name: str = "repro profile", indent: int | None = None) -> str:
        return json.dumps(self.to_speedscope(name), indent=indent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Profile(hz={self.hz:g}, n_samples={self.n_samples}, "
            f"duration={self.duration_s:.3f}s)"
        )


class SamplingProfiler:
    """Background thread sampling every Python thread's stack.

    ``start()`` spawns the sampler; ``stop()`` joins it and returns the
    accumulated :class:`Profile` (also kept as :attr:`profile`).  Use
    :func:`profiling` for the context-managed form and
    :func:`install_profiler` for the process-global one that pool workers
    inherit.
    """

    def __init__(
        self,
        hz: float = DEFAULT_HZ,
        memory: bool = False,
        tracer=None,
    ) -> None:
        if not 1.0 <= float(hz) <= 10_000.0:
            raise ValueError(f"sampling rate must be in [1, 10000] Hz, got {hz}")
        self.hz = float(hz)
        self.memory = bool(memory)
        self.profile: Profile | None = None
        self._tracer = tracer if tracer is not None else get_tracer()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._names = _FrameNames()
        self._started_tracemalloc = False
        self._pid = os.getpid()

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        if self.running:
            raise RuntimeError("profiler already running")
        self._pid = os.getpid()
        self.profile = Profile(self.hz)
        self._stop.clear()
        if self.memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> Profile:
        if self._thread is None:
            raise RuntimeError("profiler was never started")
        self._stop.set()
        self._thread.join()
        self._thread = None
        if self._started_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._started_tracemalloc = False
        assert self.profile is not None
        return self.profile

    # -- sampler loop -----------------------------------------------------------

    def _run(self) -> None:
        prof = self.profile
        period = 1.0 / self.hz
        own = threading.get_ident()
        t_begin = time.perf_counter()
        last = t_begin
        next_t = t_begin + period
        while not self._stop.wait(max(0.0, next_t - time.perf_counter())):
            now = time.perf_counter()
            weight = now - last
            last = now
            next_t += period
            if next_t < now:  # fell behind (GIL contention); skip, don't burst
                next_t = now + period
            self._sample_once(prof, own, weight)
        prof.duration_s = time.perf_counter() - t_begin

    def _sample_once(self, prof: Profile, own_ident: int, weight: float) -> None:
        try:
            frames = sys._current_frames()
            stacks = self._tracer.active_stacks()
            thread_names = {t.ident: t.name for t in threading.enumerate()}
            mem_now = None
            if self.memory:
                import tracemalloc

                if tracemalloc.is_tracing():
                    mem_now = tracemalloc.get_traced_memory()[0]
            for tid, frame in frames.items():
                if tid == own_ident:
                    continue
                span_stack = stacks.get(tid)
                path = (
                    tuple(span_label(sp) for sp in span_stack) if span_stack else ()
                )
                stack = _extract_stack(frame, self._names)
                prof.add(thread_names.get(tid, f"thread-{tid}"), path, stack, weight)
                if mem_now is not None and path:
                    prof.note_memory(path[-1], mem_now)
        except Exception:
            # A sampler crash must never take the workload down; one lost
            # tick is invisible, a dead sampler just under-reports.
            pass
        finally:
            del frames  # frames hold other threads' locals; drop promptly


# -- process-global installation ------------------------------------------------

_INSTALLED: SamplingProfiler | None = None
_LOCK = threading.Lock()


def get_profiler() -> SamplingProfiler | None:
    """The installed process-global profiler, if any."""
    return _INSTALLED


def profiler_active() -> bool:
    return _INSTALLED is not None


def install_profiler(hz: float = DEFAULT_HZ, memory: bool = False) -> SamplingProfiler:
    """Start a process-global sampler that pool workers inherit.

    Exports ``REPRO_PROFILE=<hz>`` so worker *processes* (which cannot see
    this process's sampler) profile their own tasks inside ``run_traced``
    and ship the samples back.  Replaces any previously installed
    profiler (its profile is discarded -- call :func:`uninstall_profiler`
    first to keep it).
    """
    global _INSTALLED
    with _LOCK:
        if _INSTALLED is not None and _INSTALLED.running:
            _INSTALLED.stop()
        prof = SamplingProfiler(hz=hz, memory=memory)
        prof.start()
        _INSTALLED = prof
        os.environ[PROFILE_ENV] = repr(float(hz))
    return prof


def uninstall_profiler() -> Profile | None:
    """Stop the process-global sampler; returns its :class:`Profile`."""
    global _INSTALLED
    with _LOCK:
        if _INSTALLED is None:
            return None
        prof = _INSTALLED.stop() if _INSTALLED.running else _INSTALLED.profile
        _INSTALLED = None
        os.environ.pop(PROFILE_ENV, None)
    return prof


@contextmanager
def profiling(hz: float = DEFAULT_HZ, memory: bool = False):
    """``with profiling() as p: ...`` -- read ``p.profile`` after the block."""
    prof = install_profiler(hz=hz, memory=memory)
    try:
        yield prof
    finally:
        uninstall_profiler()


def task_sampler() -> SamplingProfiler | None:
    """Worker-side sampler for one pool task, or None when not needed.

    Returns a *not yet started* sampler when profiling was requested
    (``REPRO_PROFILE`` is set, typically inherited from the parent's
    :func:`install_profiler`) but no in-process sampler is running -- the
    worker-process case.  In-process (thread pool / serial) workers return
    None: the installed sampler already watches their threads, so a
    second one would double-count.  A *forked* worker inherits the
    parent's installed-profiler object, but its sampler thread did not
    survive the fork -- only a profiler started in this very process
    counts as coverage.
    """
    if _INSTALLED is not None and _INSTALLED._pid == os.getpid():
        return None
    raw = os.environ.get(PROFILE_ENV)
    if not raw:
        return None
    try:
        hz = float(raw)
    except ValueError:
        return None
    if not 1.0 <= hz <= 10_000.0:
        return None
    return SamplingProfiler(hz=hz)
