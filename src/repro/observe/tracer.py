"""Nested tracing spans with wall/CPU time and byte counters.

A :class:`Span` measures one pipeline stage; spans nest per thread, so a
``compress`` span naturally contains ``log-transform`` and ``quantize``
children.  Finished root spans land in a thread-safe in-memory buffer on
the owning :class:`Tracer` and can be exported as plain dicts
(:func:`export_spans`), JSON, or a rendered tree with per-stage
percentages (:func:`render_spans`).

Tracing is on by default and controlled by the ``REPRO_TRACE``
environment variable (``off``/``0``/``false``/``no`` disable it) or
:func:`enable_tracing` at runtime.  When disabled, :func:`span` returns a
shared no-op span so instrumented code pays only an attribute check.

Worker processes and threads cannot push onto the dispatching thread's
stack; they record into a :meth:`Tracer.capture` sink instead, ship the
exported dicts across the pool boundary, and the parent re-attaches them
with :meth:`Span.adopt` (see :mod:`repro.observe.propagate`).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time

__all__ = [
    "Span",
    "Tracer",
    "current_span",
    "enable_tracing",
    "export_spans",
    "get_tracer",
    "render_spans",
    "render_top_spans",
    "span",
    "span_label",
    "spans_from_dicts",
    "top_spans",
    "tracing_enabled",
]

_ENV_VAR = "REPRO_TRACE"
_OFF_VALUES = ("off", "0", "false", "no")

#: Finished root spans kept per tracer; beyond this the oldest are kept
#: and new roots are counted in ``Tracer.dropped`` instead of stored, so
#: long-running processes cannot grow the buffer without bound.
DEFAULT_MAX_ROOTS = 4096


def _env_enabled() -> bool:
    return os.environ.get(_ENV_VAR, "on").strip().lower() not in _OFF_VALUES


#: Process-wide span id sequence; ids are ``<pid hex>-<seq hex>`` so ids
#: minted in pool workers never collide with the parent's.
_SPAN_SEQ = itertools.count(1)


class Span:
    """One timed pipeline stage: name, attrs, byte counters, children.

    Every span carries a process-unique ``span_id`` which survives
    export/adopt round-trips; the structured event log
    (:mod:`repro.observe.events`) stamps records with the id of the span
    they occurred under, so events resolve against a captured trace tree.
    """

    __slots__ = (
        "name",
        "attrs",
        "children",
        "wall_s",
        "cpu_s",
        "bytes_in",
        "bytes_out",
        "span_id",
        "_tracer",
        "_t0",
        "_c0",
    )

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.attrs: dict = dict(attrs) if attrs else {}
        self.children: list[Span] = []
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.bytes_in = 0
        self.bytes_out = 0
        self.span_id = f"{os.getpid():x}-{next(_SPAN_SEQ):x}"
        self._tracer: Tracer | None = None
        self._t0 = 0.0
        self._c0 = 0.0

    # -- recording -----------------------------------------------------------

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def add_bytes(self, in_: int = 0, out: int = 0) -> "Span":
        self.bytes_in += int(in_)
        self.bytes_out += int(out)
        return self

    def child(self, name: str, wall_s: float = 0.0, cpu_s: float = 0.0, **attrs) -> "Span":
        """Append an already-finished child span with explicit timings.

        Used to record work measured elsewhere -- e.g. a chunk job whose
        execution happened in a worker process.
        """
        sp = Span(name, attrs)
        sp.wall_s = float(wall_s)
        sp.cpu_s = float(cpu_s)
        self.children.append(sp)
        return sp

    def adopt(self, exported) -> "Span":
        """Re-attach spans exported by a worker (list of dicts or Spans)."""
        if exported:
            for item in exported:
                self.children.append(item if isinstance(item, Span) else Span.from_dict(item))
        return self

    # -- context manager -------------------------------------------------------

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer is not None:
            tracer._push(self)
        self._c0 = time.thread_time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_s += time.perf_counter() - self._t0
        self.cpu_s += time.thread_time() - self._c0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        tracer = self._tracer
        if tracer is not None:
            tracer._pop(self)

    # -- derived ---------------------------------------------------------------

    @property
    def child_wall_s(self) -> float:
        return sum(c.wall_s for c in self.children)

    @property
    def self_s(self) -> float:
        """Wall time not covered by any child span."""
        return max(0.0, self.wall_s - self.child_wall_s)

    def coverage(self) -> float:
        """Fraction of this span's wall time covered by its children."""
        if self.wall_s <= 0.0 or not self.children:
            return 1.0 if not self.children else 0.0
        return min(1.0, self.child_wall_s / self.wall_s)

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "attrs": dict(self.attrs),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        sp = cls(str(data.get("name", "?")), data.get("attrs") or {})
        if data.get("span_id"):
            sp.span_id = str(data["span_id"])
        sp.wall_s = float(data.get("wall_s", 0.0))
        sp.cpu_s = float(data.get("cpu_s", 0.0))
        sp.bytes_in = int(data.get("bytes_in", 0))
        sp.bytes_out = int(data.get("bytes_out", 0))
        sp.children = [cls.from_dict(c) for c in data.get("children", ())]
        return sp

    def iter_ids(self):
        """Yield this span's id and every descendant's (DFS order)."""
        yield self.span_id
        for c in self.children:
            yield from c.iter_ids()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, wall={self.wall_s:.6f}s, children={len(self.children)})"


class _NullSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()
    name = ""
    attrs: dict = {}
    children: list = []
    wall_s = cpu_s = 0.0
    bytes_in = bytes_out = 0
    span_id = ""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs) -> "_NullSpan":
        return self

    def add_bytes(self, in_: int = 0, out: int = 0) -> "_NullSpan":
        return self

    def child(self, name: str, wall_s: float = 0.0, cpu_s: float = 0.0, **attrs) -> "_NullSpan":
        return self

    def adopt(self, exported) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-safe factory and buffer for :class:`Span` trees.

    Each thread keeps its own span stack, so concurrent compressions
    trace independently.  A span finishing with an empty stack is a root:
    it goes to the thread's active :meth:`capture` sink if one is set,
    otherwise to the shared ``roots`` buffer (capped at ``max_roots``).
    """

    def __init__(self, enabled: bool | None = None, max_roots: int = DEFAULT_MAX_ROOTS) -> None:
        self.enabled = _env_enabled() if enabled is None else bool(enabled)
        self.max_roots = int(max_roots)
        self.dropped = 0
        self._lock = threading.Lock()
        self._roots: list[Span] = []
        self._tl = threading.local()
        # thread ident -> that thread's live span stack (the same list
        # object the thread mutates).  Lets out-of-thread observers -- the
        # sampling profiler -- see which span each thread is inside
        # without touching the thread-local.  Entries for dead threads
        # are just empty lists; bounded by the number of threads ever
        # seen, which the pool executors reuse.
        self._stacks: dict[int, list[Span]] = {}

    # -- span lifecycle --------------------------------------------------------

    def span(self, name: str, **attrs):
        """A context-managed span, or the shared no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN
        sp = Span(name, attrs)
        sp._tracer = self
        return sp

    def _stack(self) -> list[Span]:
        stack = getattr(self._tl, "stack", None)
        if stack is None:
            stack = self._install_stack([])
        return stack

    def _install_stack(self, stack: list[Span]) -> list[Span]:
        """Make ``stack`` the calling thread's span stack (and publish it)."""
        self._tl.stack = stack
        self._stacks[threading.get_ident()] = stack
        return stack

    def _push(self, sp: Span) -> None:
        self._stack().append(sp)

    def _pop(self, sp: Span) -> None:
        stack = self._stack()
        while stack and stack[-1] is not sp:  # unwound through an exception
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1].children.append(sp)
            return
        sink = getattr(self._tl, "sink", None)
        if sink is not None:
            sink.append(sp)
            return
        with self._lock:
            if len(self._roots) >= self.max_roots:
                self.dropped += 1
            else:
                self._roots.append(sp)

    def current(self) -> Span | _NullSpan:
        """The innermost open span of this thread, or the no-op span."""
        stack = getattr(self._tl, "stack", None)
        return stack[-1] if stack else NULL_SPAN

    def active_stacks(self) -> dict[int, list[Span]]:
        """Snapshot of every thread's open span stack, root first.

        ``{thread ident: [root span, ..., innermost span]}``, omitting
        threads with nothing open.  Read from *outside* the owning
        threads (the sampling profiler calls this between samples); the
        returned lists are copies, but the spans inside are live -- treat
        them as read-only.
        """
        out: dict[int, list[Span]] = {}
        for tid, stack in list(self._stacks.items()):
            snap = stack[:]
            if snap:
                out[tid] = snap
        return out

    # -- capture (worker isolation) ---------------------------------------------

    class _Capture:
        def __init__(self, tracer: "Tracer") -> None:
            self._tracer = tracer
            self.spans: list[Span] = []

        def __enter__(self) -> list[Span]:
            tl = self._tracer._tl
            self._old_stack = getattr(tl, "stack", None)
            self._old_sink = getattr(tl, "sink", None)
            self._tracer._install_stack([])
            tl.sink = self.spans
            return self.spans

        def __exit__(self, *exc) -> None:
            tl = self._tracer._tl
            self._tracer._install_stack(
                self._old_stack if self._old_stack is not None else []
            )
            tl.sink = self._old_sink

    def capture(self) -> "Tracer._Capture":
        """Divert this thread's finished root spans into a private list.

        Used at process/thread-pool boundaries: the worker captures the
        spans its task produced and ships them back to the parent, which
        re-attaches them under the dispatching span.
        """
        return Tracer._Capture(self)

    # -- buffer access -----------------------------------------------------------

    def roots(self) -> list[Span]:
        with self._lock:
            return list(self._roots)

    def clear(self) -> None:
        with self._lock:
            self._roots.clear()
            self.dropped = 0

    def export(self) -> list[dict]:
        return export_spans(self.roots())

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps({"version": 1, "spans": self.export()}, indent=indent)

    def render(self) -> str:
        return render_spans(self.roots())


# -- module-level default tracer -----------------------------------------------

_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global default tracer."""
    return _TRACER


def span(name: str, **attrs):
    """Open a span on the default tracer: ``with span("quantize") as sp:``.

    When tracing is disabled this returns the shared no-op span without
    calling into the tracer, so instrumented hot paths pay one attribute
    check and allocate nothing that outlives the call.
    """
    if not _TRACER.enabled:
        return NULL_SPAN
    return _TRACER.span(name, **attrs)


def current_span():
    """The innermost open span of the calling thread (no-op span if none)."""
    if not _TRACER.enabled:
        return NULL_SPAN
    return _TRACER.current()


def tracing_enabled() -> bool:
    return _TRACER.enabled


def enable_tracing(on: bool = True) -> None:
    """Turn the default tracer on/off at runtime (overrides ``REPRO_TRACE``)."""
    _TRACER.enabled = bool(on)


# -- export / render -------------------------------------------------------------


def export_spans(spans) -> list[dict]:
    """Plain-dict form of a list of spans (JSON- and pickle-friendly)."""
    return [sp.to_dict() for sp in spans]


def spans_from_dicts(dicts) -> list[Span]:
    return [Span.from_dict(d) for d in dicts or ()]


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:8.3f}s "
    if s >= 1e-3:
        return f"{s * 1e3:8.3f}ms"
    return f"{s * 1e6:8.1f}us"


def _fmt_bytes(n: int) -> str:
    for unit, scale in (("GB", 1e9), ("MB", 1e6), ("kB", 1e3)):
        if n >= scale:
            return f"{n / scale:.1f}{unit}"
    return f"{n}B"


def span_label(sp) -> str:
    """Short stable label for one span: ``name`` or ``name[codec]``.

    Shared by the tree renderer, the hot-spot table and the sampling
    profiler, so the same stage shows up under the same label everywhere.
    """
    codec = sp.attrs.get("codec") if sp.attrs else None
    return f"{sp.name}[{codec}]" if codec else sp.name


def _label(sp: Span) -> str:
    label = span_label(sp)
    extras = [f"{k}={v}" for k, v in sp.attrs.items() if k != "codec"]
    if sp.bytes_in:
        extras.append(f"in {_fmt_bytes(sp.bytes_in)}")
    if sp.bytes_out:
        extras.append(f"out {_fmt_bytes(sp.bytes_out)}")
    return label + (f"  ({', '.join(extras)})" if extras else "")


def render_spans(spans) -> str:
    """Human-readable tree with per-stage wall times and percentages.

    Percentages are relative to each tree's root span, so the numbers
    directly answer "where does the time go" for one compress/decompress.
    """
    lines: list[str] = []

    def walk(sp: Span, root_wall: float, prefix: str, is_last: bool, depth: int) -> None:
        pct = 100.0 * sp.wall_s / root_wall if root_wall > 0 else 0.0
        if depth == 0:
            head, child_prefix = "", ""
        else:
            head = prefix + ("└─ " if is_last else "├─ ")
            child_prefix = prefix + ("   " if is_last else "│  ")
        lines.append(f"{head}{_label(sp):<52s} {_fmt_seconds(sp.wall_s)} {pct:6.1f}%")
        for i, c in enumerate(sp.children):
            walk(c, root_wall, child_prefix, i == len(sp.children) - 1, depth + 1)

    for root in spans:
        walk(root, root.wall_s, "", True, 0)
        if root.children:
            lines.append(
                f"   stage coverage: {100.0 * root.coverage():.1f}% of root span "
                f"({_fmt_seconds(root.self_s).strip()} untraced)"
            )
    return "\n".join(lines)


# -- hot-spot aggregation ---------------------------------------------------------


def top_spans(spans, n: int = 10) -> list[dict]:
    """The ``n`` hottest span labels by *self* wall time across trees.

    Aggregates every span in the given trees (Spans or exported dicts) by
    :func:`span_label`; self time is the span's wall/CPU time not covered
    by its children, so a parent busy only dispatching does not obscure
    the stage doing the work.  Rows are dicts with ``label``, ``count``,
    ``self_wall_s``, ``self_cpu_s``, ``total_wall_s``, sorted by
    ``self_wall_s`` descending.
    """
    agg: dict[str, dict] = {}

    def visit(sp: Span) -> None:
        child_wall = sum(c.wall_s for c in sp.children)
        child_cpu = sum(c.cpu_s for c in sp.children)
        row = agg.setdefault(
            span_label(sp),
            {"count": 0, "self_wall_s": 0.0, "self_cpu_s": 0.0, "total_wall_s": 0.0},
        )
        row["count"] += 1
        row["self_wall_s"] += max(0.0, sp.wall_s - child_wall)
        row["self_cpu_s"] += max(0.0, sp.cpu_s - child_cpu)
        row["total_wall_s"] += sp.wall_s
        for c in sp.children:
            visit(c)

    for root in spans or ():
        visit(root if isinstance(root, Span) else Span.from_dict(root))
    rows = [{"label": label, **row} for label, row in agg.items()]
    rows.sort(key=lambda r: r["self_wall_s"], reverse=True)
    return rows[: max(0, int(n))]


def render_top_spans(spans, n: int = 10) -> str:
    """Text table of :func:`top_spans` (the ``stats --top N`` view)."""
    all_rows = top_spans(spans, n=1 << 30)
    if not all_rows:
        return "no spans captured"
    total_self = sum(r["self_wall_s"] for r in all_rows) or 1.0
    rows = all_rows[: max(0, int(n))]
    lines = [
        f"top {len(rows)} spans by self time:",
        f"  {'span':<32s} {'calls':>6s} {'self wall':>10s} "
        f"{'self cpu':>10s} {'total':>10s} {'%':>6s}",
    ]
    for r in rows:
        lines.append(
            f"  {r['label']:<32s} {r['count']:>6d} "
            f"{_fmt_seconds(r['self_wall_s'])} {_fmt_seconds(r['self_cpu_s'])} "
            f"{_fmt_seconds(r['total_wall_s'])} "
            f"{100.0 * r['self_wall_s'] / total_self:5.1f}%"
        )
    return "\n".join(lines)
