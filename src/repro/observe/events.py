"""Structured JSON-lines event log with trace-span correlation.

While spans answer *where the time went* and metrics answer *how much*,
the event log answers *what happened, in order*: one JSON record per
notable pipeline occurrence -- a compress or decompress finishing, a
chunk worker being retried, a CRC failing verification, a damaged rank
being recovered.  Records are append-only JSON lines::

    {"seq": 12, "t": 1754524800.123, "pid": 4711, "event": "compress",
     "span_id": "1267-3f", "codec": "SZ_T", "bytes_in": 4194304, ...}

``span_id`` is the id of the tracing span the event occurred under (or
the span that *is* the event, for compress/decompress), so a captured
trace tree and an event log taken from the same run join losslessly.

The log is off unless a sink is installed: set ``REPRO_EVENTS=<path>``
before the process starts, or call :func:`install_event_log` at runtime.
Instrumentation points call :func:`emit`, which is a no-op attribute
check when no sink is installed -- same contract as disabled tracing.
"""

from __future__ import annotations

import json
import os
import threading
import time

__all__ = [
    "EventLog",
    "emit",
    "event_log_enabled",
    "get_event_log",
    "install_event_log",
    "read_events",
]

_ENV_VAR = "REPRO_EVENTS"


class EventLog:
    """Thread-safe append-only JSON-lines sink."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._seq = 0
        # Line-buffered append; one write per record keeps interleaving
        # from concurrent threads at line granularity.
        self._fh = open(path, "a", buffering=1)

    def emit(self, event: str, **fields) -> dict:
        """Append one record; returns the dict that was written."""
        rec = {"event": event, "t": time.time(), "pid": os.getpid()}
        rec.update({k: v for k, v in fields.items() if v is not None})
        with self._lock:
            self._seq += 1
            rec["seq"] = self._seq
            self._fh.write(json.dumps(rec, sort_keys=True, default=str) + "\n")
        return rec

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


_LOG: EventLog | None = None
_CHECKED_ENV = False
_INIT_LOCK = threading.Lock()


def get_event_log() -> EventLog | None:
    """The installed event log, opening ``$REPRO_EVENTS`` on first use."""
    global _LOG, _CHECKED_ENV
    if _LOG is None and not _CHECKED_ENV:
        with _INIT_LOCK:
            if _LOG is None and not _CHECKED_ENV:
                path = os.environ.get(_ENV_VAR)
                if path:
                    try:
                        _LOG = EventLog(path)
                    except OSError:
                        _LOG = None  # unwritable path: stay silent, stay off
                _CHECKED_ENV = True
    return _LOG


def install_event_log(path: str | None) -> EventLog | None:
    """Install (or with ``None``, remove) the process event log."""
    global _LOG, _CHECKED_ENV
    with _INIT_LOCK:
        if _LOG is not None:
            _LOG.close()
        _LOG = EventLog(path) if path else None
        _CHECKED_ENV = True
    return _LOG


def event_log_enabled() -> bool:
    return get_event_log() is not None


def emit(event: str, span=None, **fields) -> None:
    """Record one event if a log is installed; otherwise free.

    ``span`` may be a :class:`~repro.observe.tracer.Span` whose id should
    stamp the record; when omitted the calling thread's innermost open
    span is used (no id when tracing is off).
    """
    log = get_event_log()
    if log is None:
        return
    if span is None:
        from repro.observe.tracer import current_span

        span = current_span()
    span_id = getattr(span, "span_id", "") or None
    log.emit(event, span_id=span_id, **fields)


def read_events(path: str) -> list[dict]:
    """Load a JSON-lines event log back into dicts (testing/tooling)."""
    out: list[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
