"""Append-only performance ledger: every bench run leaves a line behind.

``BENCH_<name>.json`` reports are point-in-time snapshots; the ledger is
their history.  ``benchmarks/_emit.py`` appends one JSON line per bench
per run to ``results/ledger.jsonl`` (override with ``REPRO_LEDGER=<path>``
or disable with ``REPRO_LEDGER=off``), each stamped with the git
revision, a machine fingerprint, a unique run id and the machine-speed
normalization reference (the preprocessing anchor throughput), so
multi-PR perf trajectories are reconstructable and comparable across
hosts.

Consumers:

* ``scripts/perf_report.py`` / ``repro perf report`` -- the markdown
  trend report (:func:`render_trend_report`): per-test latest throughput
  and ratio, delta vs the median of the previous runs, sparkline
  history, top regressions/improvements;
* ``scripts/check_bench_regression.py --ledger`` -- gates fresh bench
  runs against the median of the last N ledger entries instead of only
  the single frozen baseline file.

The file format is deliberately dumb: one self-contained JSON object per
line, append-only, never rewritten.  A crash mid-append leaves at most
one partial trailing line, which :func:`read_ledger` silently drops;
corruption *before* the tail means something other than an interrupted
append touched the file, so it raises :class:`LedgerError` (pass
``strict=False`` to skip bad interior lines instead).

Entry schema (version 1)::

    {
      "version": 1,
      "bench": "table3",
      "ts": 1754524800.0,
      "run_id": "8f0c2c...",          # unique per write_reports() call
      "git": {"rev": "0f85358...", "dirty": false},
      "machine": {"hostname": ..., "platform": ..., "machine": ...,
                  "python": ..., "cpu_count": ..., "numpy": ...},
      "codec_path": "vectorized",
      "normalization": {"anchor_tests": [...], "anchor_MB_s": 747.1},
      "records": [...]                 # BENCH records, span trees dropped
    }
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import time

__all__ = [
    "DEFAULT_LEDGER_RELPATH",
    "LEDGER_ENV",
    "LedgerError",
    "append_entry",
    "bench_series",
    "git_revision",
    "machine_fingerprint",
    "make_entry",
    "read_ledger",
    "render_trend_report",
    "resolve_ledger_path",
    "sparkline",
]

LEDGER_ENV = "REPRO_LEDGER"
DEFAULT_LEDGER_RELPATH = os.path.join("results", "ledger.jsonl")

#: Record keys dropped from ledger entries: span trees dominate report
#: size and the trend tooling only reads scalar metrics.
_TRIM_KEYS = ("spans",)


class LedgerError(ValueError):
    """A ledger file is corrupt somewhere other than its trailing line."""


def resolve_ledger_path(base_dir: str | None = None) -> str | None:
    """Where the ledger lives, or None when disabled.

    ``REPRO_LEDGER`` overrides (``off``/``none``/``0`` disables); the
    default is ``<base_dir>/results/ledger.jsonl`` with ``base_dir``
    defaulting to the current working directory.
    """
    override = os.environ.get(LEDGER_ENV)
    if override is not None:
        if override.strip().lower() in ("", "off", "none", "0"):
            return None
        return override
    return os.path.join(base_dir or os.getcwd(), DEFAULT_LEDGER_RELPATH)


def git_revision(cwd: str | None = None) -> dict:
    """``{"rev": <sha or None>, "dirty": <bool or None>}`` for ``cwd``."""
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        if rev.returncode != 0:
            return {"rev": None, "dirty": None}
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
        dirty = bool(status.stdout.strip()) if status.returncode == 0 else None
        return {"rev": rev.stdout.strip(), "dirty": dirty}
    except (OSError, subprocess.SubprocessError):
        return {"rev": None, "dirty": None}


def machine_fingerprint() -> dict:
    """Stable-enough identity of the host a bench ran on."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version,
    }


def _trim(rec: dict) -> dict:
    return {k: v for k, v in rec.items() if k not in _TRIM_KEYS}


def make_entry(
    bench: str,
    records: list[dict],
    run_id: str,
    *,
    git: dict | None = None,
    machine: dict | None = None,
    normalization: dict | None = None,
    ts: float | None = None,
    repo_dir: str | None = None,
) -> dict:
    """Build one ledger entry for a finished bench run."""
    codec_paths = {r.get("codec_path") for r in records if r.get("codec_path")}
    entry = {
        "version": 1,
        "bench": bench,
        "ts": time.time() if ts is None else float(ts),
        "run_id": run_id,
        "git": git if git is not None else git_revision(repo_dir),
        "machine": machine if machine is not None else machine_fingerprint(),
        "codec_path": codec_paths.pop() if len(codec_paths) == 1 else None,
        "records": [_trim(r) for r in records],
    }
    if normalization:
        entry["normalization"] = normalization
    return entry


def append_entry(path: str, entry: dict) -> None:
    """Append one entry as a single JSON line (one write, flushed)."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    line = json.dumps(entry, sort_keys=False, separators=(",", ":")) + "\n"
    with open(path, "a") as fh:
        fh.write(line)
        fh.flush()


def read_ledger(path: str, strict: bool = True) -> list[dict]:
    """Parse a ledger file into entries, oldest first.

    A corrupt *trailing* line is always tolerated (an interrupted append
    leaves exactly that).  A corrupt line anywhere else raises
    :class:`LedgerError` when ``strict`` (the default) and is skipped
    otherwise.  Missing file reads as an empty ledger.
    """
    if not os.path.exists(path):
        return []
    with open(path) as fh:
        lines = fh.read().splitlines()
    entries: list[dict] = []
    last_idx = max((i for i, ln in enumerate(lines) if ln.strip()), default=-1)
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
            if not isinstance(entry, dict):
                raise ValueError("entry is not an object")
        except ValueError as exc:
            if i == last_idx:
                continue  # partial trailing append
            if strict:
                raise LedgerError(
                    f"{path}:{i + 1}: corrupt interior ledger line ({exc})"
                ) from exc
            continue
        entries.append(entry)
    return entries


# -- trend analysis -------------------------------------------------------------


#: Scalar metrics lifted from ledger records into trend points.  The
#: quality keys appear only on audited benchmarks (benchmarks stamp them
#: via ``benchmarks/_emit.py:quality_info``).
_POINT_KEYS = ("MB_per_s", "ratio", "rel_p99", "rel_bias", "max_rel_err")


def bench_series(
    entries: list[dict], last_n: int | None = None
) -> dict[str, dict[str, list[dict]]]:
    """``{bench: {test: [point, ...]}}``, points oldest -> newest.

    Each point is ``{"ts", "run_id", "rev"}`` plus whichever of
    ``MB_per_s`` / ``ratio`` / ``rel_p99`` / ``rel_bias`` /
    ``max_rel_err`` the record carried.  ``last_n`` keeps only each
    bench's newest N entries.
    """
    by_bench: dict[str, list[dict]] = {}
    for entry in entries:
        bench = entry.get("bench")
        if isinstance(bench, str):
            by_bench.setdefault(bench, []).append(entry)
    out: dict[str, dict[str, list[dict]]] = {}
    for bench, runs in by_bench.items():
        runs.sort(key=lambda e: e.get("ts") or 0.0)
        if last_n is not None:
            runs = runs[-last_n:]
        tests: dict[str, list[dict]] = {}
        for entry in runs:
            rev = (entry.get("git") or {}).get("rev")
            for rec in entry.get("records", ()):
                test = rec.get("test")
                if not isinstance(test, str):
                    continue
                point = {
                    "ts": entry.get("ts"),
                    "run_id": entry.get("run_id"),
                    "rev": rev[:10] if isinstance(rev, str) else None,
                }
                for key in _POINT_KEYS:
                    if isinstance(rec.get(key), (int, float)):
                        point[key] = float(rec[key])
                tests.setdefault(test, []).append(point)
        out[bench] = tests
    return out


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """Unicode block sparkline of a metric history (empty for no data)."""
    vals = [v for v in values if isinstance(v, (int, float))]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return _SPARK[3] * len(vals)
    scale = (len(_SPARK) - 1) / (hi - lo)
    return "".join(_SPARK[int(round((v - lo) * scale))] for v in vals)


def _delta_vs_history(series: list[float]) -> float | None:
    """Latest value vs the median of everything before it, as a fraction."""
    if len(series) < 2:
        return None
    prev = _median(series[:-1])
    if prev <= 0:
        return None
    return series[-1] / prev - 1.0


def render_trend_report(entries: list[dict], last_n: int = 10) -> str:
    """Markdown trend report over the last ``last_n`` runs per bench."""
    lines = ["# Performance trend report", ""]
    if not entries:
        lines.append("_Ledger is empty — run the benchmark suite to populate it._")
        return "\n".join(lines) + "\n"
    n_runs = len({e.get("run_id") for e in entries})
    ts = [e.get("ts") for e in entries if isinstance(e.get("ts"), (int, float))]
    span = ""
    if ts:
        fmt = "%Y-%m-%d %H:%M"
        span = (
            f" spanning {time.strftime(fmt, time.gmtime(min(ts)))} — "
            f"{time.strftime(fmt, time.gmtime(max(ts)))} UTC"
        )
    lines.append(
        f"{len(entries)} ledger entries from {n_runs} run(s){span}; "
        f"trends over the last {last_n} runs per bench."
    )
    series = bench_series(entries, last_n=last_n)
    movers: list[tuple[float, str]] = []
    for bench in sorted(series):
        tests = series[bench]
        if not tests:
            continue
        lines += ["", f"## bench_{bench}", ""]
        lines.append("| test | runs | MB/s | Δ vs median | history | ratio | Δ ratio |")
        lines.append("|---|---:|---:|---:|---|---:|---:|")
        for test in sorted(tests):
            points = tests[test]
            tp = [p["MB_per_s"] for p in points if "MB_per_s" in p]
            ratios = [p["ratio"] for p in points if "ratio" in p]
            d_tp = _delta_vs_history(tp)
            d_ratio = _delta_vs_history(ratios)
            if d_tp is not None:
                movers.append((d_tp, f"{bench}:{test}"))
            lines.append(
                "| {test} | {runs} | {tp} | {dtp} | {spark} | {ratio} | {dratio} |".format(
                    test=f"`{test}`",
                    runs=len(points),
                    tp=f"{tp[-1]:.3f}" if tp else "—",
                    dtp=f"{d_tp * 100:+.1f}%" if d_tp is not None else "—",
                    spark=sparkline(tp) or "—",
                    ratio=f"{ratios[-1]:.3f}" if ratios else "—",
                    dratio=f"{d_ratio * 100:+.1f}%" if d_ratio is not None else "—",
                )
            )
    quality_rows: list[str] = []
    for bench in sorted(series):
        for test in sorted(series[bench]):
            points = series[bench][test]
            p99 = [p["rel_p99"] for p in points if "rel_p99" in p]
            bias = [p["rel_bias"] for p in points if "rel_bias" in p]
            max_rel = [p["max_rel_err"] for p in points if "max_rel_err" in p]
            if not (p99 or bias or max_rel):
                continue
            d_p99 = _delta_vs_history(p99)
            quality_rows.append(
                "| {test} | {p99} | {dp99} | {spark} | {bias} | {mx} |".format(
                    test=f"`{bench}:{test}`",
                    p99=f"{p99[-1]:.3e}" if p99 else "—",
                    dp99=f"{d_p99 * 100:+.1f}%" if d_p99 is not None else "—",
                    spark=sparkline(p99) or "—",
                    bias=f"{bias[-1]:+.2e}" if bias else "—",
                    mx=f"{max_rel[-1]:.3e}" if max_rel else "—",
                )
            )
    if quality_rows:
        lines += [
            "",
            "## Quality trend (point-wise error)",
            "",
            "| test | rel p99 | Δ vs median | history | signed bias | max rel |",
            "|---|---:|---:|---|---:|---:|",
        ]
        lines += quality_rows
    movers.sort(key=lambda kv: kv[0])
    regressions = [(d, t) for d, t in movers if d < -0.02]
    improvements = [(d, t) for d, t in reversed(movers) if d > 0.02]
    lines += ["", "## Top movers (latest vs median of prior runs)", ""]
    if not regressions and not improvements:
        lines.append("_No test moved more than ±2%._")
    for d, test in regressions[:5]:
        lines.append(f"- **regression** `{test}`: {d * 100:+.1f}%")
    for d, test in improvements[:5]:
        lines.append(f"- **improvement** `{test}`: {d * 100:+.1f}%")
    latest = max(entries, key=lambda e: e.get("ts") or 0.0)
    git = latest.get("git") or {}
    machine = latest.get("machine") or {}
    lines += [
        "",
        "---",
        "",
        "Latest run: `{rev}`{dirty} on {host} ({plat}, python {py}).".format(
            rev=(git.get("rev") or "unknown")[:10],
            dirty=" (dirty)" if git.get("dirty") else "",
            host=machine.get("hostname", "unknown"),
            plat=machine.get("platform", "unknown"),
            py=machine.get("python", "?"),
        ),
    ]
    return "\n".join(lines) + "\n"
