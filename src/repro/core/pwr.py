"""Algorithm 1: point-wise-relative compression via the log transform.

:class:`TransformedCompressor` wraps *any* absolute-error-bounded
compressor:

1. strip signs (DEFLATE-compressed bitmap; skipped when single-signed),
2. map magnitudes to log space, planting zeros at the sentinel,
3. compute the adjusted absolute bound ``b_a'`` (Theorem 2 + Lemma 2),
4. run the inner compressor on the transformed data with ``b_a'``,
5. *verify*: decompress what was just produced, map it back, and repair
   every violating point through a safeguard stack (relative bound +
   non-finite preservation, evaluated by :mod:`repro.safeguards`) whose
   bit-exact patches land in the stream's patch channel.  With the
   Lemma-2 adjustment in place this channel is empty in practice (the
   tests assert as much); it turns "bounded with probability 1 minus
   round-off" into "bounded, period", and its size is reported so the
   round-off ablation can quantify Lemma 2's effect.

``make_sz_t()`` / ``make_zfp_t()`` build the paper's ``SZ_T`` and
``ZFP_T``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.compressors.base import (
    AbsoluteBound,
    Compressor,
    ErrorBound,
    RelativeBound,
)
from repro.core.error_bounds import abs_bound_for, adjusted_abs_bound, machine_eps0
from repro.core.transform import LogTransform
from repro.encoding import decode_sign_bitmap, encode_sign_bitmap
from repro.observe.metrics import metrics
from repro.observe.tracer import span
from repro.safeguards.engine import (
    apply_patch_sections,
    compute_patch_channel,
    put_patch_sections,
)
from repro.safeguards.kinds import NonFiniteSafeguard, RelErrorSafeguard

__all__ = ["TransformedCompressor", "make_sz_t", "make_zfp_t"]


class TransformedCompressor(Compressor):
    """Wrap an absolute-error-bounded compressor into a PWR compressor.

    Parameters
    ----------
    inner:
        Any compressor accepting :class:`AbsoluteBound` (SZ_ABS, ZFP_A...).
    base:
        Logarithm base; the paper proves the choice does not affect
        quality (Theorem 3 / Lemma 4) and picks 2 for speed (Table III).
    name:
        Experiment-table name; defaults to ``<family>_T``.
    verify:
        Enable the encoder-side verification + patch channel (step 5).
    apply_lemma2:
        Apply Lemma 2's round-off shrink to the absolute bound.  Disabling
        it (used by the round-off ablation) makes the bound mapping the
        naive ``g(b_r)`` of Theorem 2; bound violations caused by mapping
        round-off then land in the patch channel and are counted in
        :attr:`last_patch_count`.
    nonfinite:
        Policy for NaN/±Inf input.  ``"error"`` (default) rejects it --
        ``log2(|x|)`` of a non-finite value silently voids the relative
        bound, the failure mode Fallin & Burtscher call out.
        ``"preserve"`` stores non-finite points exactly through the same
        patch channel exact zeros and verify failures use: they are
        sanitized to 0.0 before the transform (riding the sentinel) and
        patched back bit-exactly on decompression.
    """

    supported_bounds = (RelativeBound,)

    _NONFINITE_POLICIES = ("error", "preserve")

    def __init__(
        self,
        inner: Compressor,
        base: float = 2.0,
        name: str | None = None,
        verify: bool = True,
        apply_lemma2: bool = True,
        nonfinite: str = "error",
    ) -> None:
        if AbsoluteBound not in inner.supported_bounds:
            raise TypeError(
                f"inner compressor {inner.name} does not support absolute bounds"
            )
        if nonfinite not in self._NONFINITE_POLICIES:
            raise ValueError(
                f"nonfinite must be one of {self._NONFINITE_POLICIES}, got {nonfinite!r}"
            )
        self.inner = inner
        self.transform = LogTransform(base)
        self.name = name if name is not None else f"{inner.name.split('_')[0]}_T"
        self.verify = verify
        self.apply_lemma2 = apply_lemma2
        self.nonfinite = nonfinite
        self.allows_nonfinite = nonfinite == "preserve"
        #: Number of patched points in the most recent compress() call.
        self.last_patch_count = 0

    # -- compression -------------------------------------------------------

    def compress(self, data: np.ndarray, bound: ErrorBound) -> bytes:
        return self._compress_impl(data, bound)[0]

    def compress_verified(
        self, data: np.ndarray, bound: ErrorBound
    ) -> tuple[bytes, np.ndarray]:
        """Compress and return the exact array ``decompress`` yields.

        With ``verify`` on, the bound check already materializes the
        decoder's reconstruction (the inner codec hands back its own
        decode, the inverse transform is deterministic, and the patch
        channel is applied on top) — so the round trip the base-class
        default would run is pure waste.  Wrappers like the safeguards
        adapter rely on this to keep compliant-codec overhead near zero.
        """
        with span("compress", codec=self.name) as sp:
            blob, final = self._compress_impl(data, bound)
            sp.add_bytes(in_=getattr(data, "nbytes", 0), out=len(blob))
        if final is None:
            return blob, self.decompress(blob)
        return blob, final

    def _compress_impl(
        self, data: np.ndarray, bound: ErrorBound
    ) -> tuple[bytes, np.ndarray | None]:
        self._check_bound(bound)
        br = float(bound.value)
        tf = self.transform
        if np.asarray(data).size == 0:
            return self._compress_empty(np.asarray(data), br), None
        data = self._check_input(data, allow_nonfinite=self.allows_nonfinite)
        reg = metrics()

        # Non-finite points cannot ride the log transform; sanitize them to
        # 0.0 (the exact-zero sentinel path) and remember where they were --
        # their original bit patterns are merged into the patch channel.
        nonfinite_idx = np.zeros(0, dtype=np.uint64)
        original = data
        if self.allows_nonfinite:
            nf = ~np.isfinite(data)
            if nf.any():
                nonfinite_idx = np.flatnonzero(nf.ravel()).astype(np.uint64)
                data = np.where(nf, 0.0, data)
                reg.counter("transform.nonfinite_points").inc(nonfinite_idx.size)

        with span("sign-encode") as sp:
            magnitudes = np.abs(data)
            all_nonneg, sign_payload = encode_sign_bitmap(data)
            sp.add_bytes(out=len(sign_payload))
        reg.counter("transform.sign_bitmap_bytes").inc(len(sign_payload))

        with span("log-transform", base=tf.base):
            # Provisional bound to break the sentinel <-> max|log| circularity:
            # nonzero magnitudes bound their own logs; the sentinel magnitude
            # is known analytically from the format floor.  The logs are
            # taken once; only the zero sentinel depends on the bound.
            ba0 = abs_bound_for(br, tf.base)
            eps0 = machine_eps0(data.dtype)
            raw_logs = tf.forward_logs(magnitudes)
            logs_nz = tf.plant_sentinel(raw_logs, magnitudes, ba0)
            max_log = max(
                tf.max_log_magnitude(logs_nz),
                abs(tf.floor_log(data.dtype)) + 4.0 * ba0 + 1.0,
            )
            if self.apply_lemma2:
                ba = adjusted_abs_bound(br, max_log, eps0, tf.base)
            else:
                ba = ba0

            d = tf.plant_sentinel(raw_logs, magnitudes, ba)
            n_zeros = int(magnitudes.size - np.count_nonzero(magnitudes))
        reg.counter("transform.exact_zeros").inc(n_zeros)

        patch_idx = np.zeros(0, dtype=np.uint64)
        patch_val = np.zeros(0, dtype=data.dtype)
        final: np.ndarray | None = None
        if self.verify:
            # The inner codec hands back the exact array its decoder will
            # produce (SZ materializes it anyway for its own patch pass),
            # so verification costs one inverse transform instead of a
            # full second decode of the blob just produced.  The patch set
            # is the safeguard stack's: relative bound + non-finite
            # preservation evaluated against the pristine input.
            inner_blob, d_rec = self.inner.compress_verified(d, AbsoluteBound(ba))
            with span("verify"):
                recon = self._postprocess(
                    d_rec, ba, data.shape, data.dtype, all_nonneg, sign_payload
                )
                stack = (RelErrorSafeguard(br), NonFiniteSafeguard())
                channel = compute_patch_channel(stack, original, recon)
                patch_idx, patch_val = channel.patch_idx, channel.patch_val
                # |x| as float64 equals the float64 cast of the float32
                # |x| already in hand -- abs and widening are both exact.
                x64 = data.astype(np.float64).ravel()
                absx = magnitudes.astype(np.float64, copy=False).ravel()
                diff = recon.astype(np.float64).ravel() - x64
                err = np.abs(diff)
                viol = channel.masks[stack[0].spec()]
                self._feed_audit(
                    recon, br, absx, err, diff, viol,
                    channel.counts.get(stack[0].spec(), 0),
                    ba, ba0, eps0, max_log,
                )
            # What decompress() will produce: the verified reconstruction
            # with the patch channel applied on top.
            final = np.ascontiguousarray(recon)
            if patch_idx.size:
                final.ravel()[patch_idx.astype(np.int64)] = patch_val
        else:
            inner_blob = self.inner.compress(d, AbsoluteBound(ba))
            if nonfinite_idx.size:
                patch_idx = nonfinite_idx
                patch_val = original.ravel()[patch_idx.astype(np.int64)]
        self.last_patch_count = int(patch_idx.size)
        reg.counter("transform.patched_points").inc(self.last_patch_count)

        with span("serialize") as sp:
            box = self._new_container(self.name, data)
            box.put_f64("br", br)
            box.put_f64("ba", ba)
            box.put_f64("base", tf.base)
            box.put_u64("all_nonneg", int(all_nonneg))
            box.put("signs", sign_payload)
            box.put("inner", inner_blob)
            put_patch_sections(box, patch_idx, patch_val)
            blob = box.to_bytes()
            sp.add_bytes(out=len(blob))
        return blob, final

    def _feed_audit(
        self,
        recon: np.ndarray,
        br: float,
        absx: np.ndarray,
        err: np.ndarray,
        diff: np.ndarray,
        viol: np.ndarray,
        patched: int,
        ba: float,
        ba0: float,
        eps0: float,
        max_log: float,
    ) -> None:
        """Feed the verify pass's findings to the bound auditor.

        Runs whenever verify does: the cheap ``audit.*`` registry counters
        always move (and so cross pool boundaries with the rest of the
        telemetry); the detailed per-chunk record additionally lands in
        the globally installed :class:`~repro.observe.audit.BoundAuditor`,
        if any.  Residuals are reported post-patch -- patched points are
        stored exactly, so the stream's conformance is what's recorded.
        ``absx``/``err``/``viol`` come straight from the verify pass, so
        nothing is recomputed here; patched points are masked out of both
        maxima (they carry no residual error).
        """
        from repro.observe.audit import ChunkAudit, get_auditor, record_audit_metrics
        from repro.observe.events import emit as emit_event
        from repro.observe.quality import ErrorHistogram, quality_enabled

        lemma2_ba = ba0 - max_log * eps0
        nz = absx != 0
        mask = nz if not patched else nz & ~viol
        rel = np.divide(err, absx, out=np.zeros_like(err), where=mask)
        max_abs = err if not patched else np.where(viol, 0.0, err)
        max_rel_seen = float(rel.max(initial=0.0))
        max_abs_seen = float(max_abs.max(initial=0.0))
        flat = recon.ravel()
        hist_snap = None
        if quality_enabled():
            # Digest the post-patch residuals (patched points are stored
            # bit-exactly, so their error is zero in the stream the user
            # decodes).  Non-finite residuals -- non-finite originals, or
            # reconstructions the patch channel replaces -- are counted,
            # not binned.  The hook's overhead budget is 5% of the
            # compress path (CI-gated), so the already-computed |diff|,
            # nonzero mask, and maxima are handed straight to the digest.
            pdiff = np.where(viol, 0.0, diff) if patched else diff
            hist = ErrorHistogram()
            # Zero patches means the reconstruction satisfied both the
            # rel-bound and non-finite safeguards everywhere, so every
            # residual is finite and the isfinite sweep can be skipped.
            finite = None if not patched else np.isfinite(pdiff)
            if finite is None or finite.all():
                hist.observe_errors(
                    absx,
                    pdiff,
                    err=max_abs,
                    nz=nz,
                    rel=rel,
                    max_abs=max_abs_seen,
                    max_rel=max_rel_seen,
                )
            else:
                hist.nonfinite += int(pdiff.size - np.count_nonzero(finite))
                hist.observe_errors(absx[finite], pdiff[finite])
            hist_snap = hist.snapshot()
        audit = ChunkAudit(
            index=None,
            codec=self.name,
            n=int(absx.size),
            bound_kind="rel",
            bound_value=br,
            max_rel=max_rel_seen,
            max_abs=max_abs_seen,
            bounded_fraction=1.0,
            violations=0,
            zeros=int((flat == 0).sum()),
            negatives=int((flat < 0).sum()),
            patched=patched,
            effective_ba=ba,
            theorem2_ba=ba0,
            lemma2_ba=lemma2_ba,
            lemma2_ok=bool(ba <= lemma2_ba + eps0 * (ba0 + 1.0)),
            error_hist=hist_snap,
        )
        auditor = get_auditor()
        if auditor is not None:
            auditor.record(audit)  # record() also moves the audit.* metrics
        else:
            record_audit_metrics(audit)
        if audit.patched:
            emit_event(
                "patch-channel", codec=self.name, patched=audit.patched, n=audit.n
            )

    def _compress_empty(self, data: np.ndarray, br: float) -> bytes:
        """Zero-element stream: no magnitudes, no inner payload to run.

        ``max_log_magnitude`` over nothing is 0, so the Lemma-2 adjustment
        degenerates to the plain Theorem-2 bound, which is what gets
        recorded for the (vacuously satisfied) guarantee.
        """
        if data.dtype not in (np.float32, np.float64):
            raise TypeError(f"expected float32/float64 data, got {data.dtype}")
        if data.ndim not in (1, 2, 3):
            raise ValueError(f"expected 1-D/2-D/3-D data, got ndim={data.ndim}")
        box = self._new_container(self.name, data)
        box.put_f64("br", br)
        box.put_f64("ba", abs_bound_for(br, self.transform.base))
        box.put_f64("base", self.transform.base)
        box.put_u64("all_nonneg", 1)
        box.put("signs", b"")
        box.put("inner", b"")
        self.last_patch_count = 0
        put_patch_sections(
            box, np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=data.dtype)
        )
        return box.to_bytes()

    # -- decompression -----------------------------------------------------

    def decompress(self, blob: bytes) -> np.ndarray:
        with span("parse") as sp:
            box, shape, dtype = self._open_container(blob, self.name)
            sp.add_bytes(in_=len(blob))
        if math.prod(shape) == 0:
            return np.zeros(shape, dtype=dtype)
        ba = box.get_f64("ba")
        base = box.get_f64("base")
        # The stream records its own base, so a decompressor configured
        # with a different one can still decode it faithfully.
        tf = self.transform if base == self.transform.base else LogTransform(base)
        recon = self._reconstruct(
            box.get("inner"),
            ba,
            shape,
            dtype,
            bool(box.get_u64("all_nonneg")),
            box.get("signs"),
            transform=tf,
        )
        with span("patch-apply"):
            flat = recon.ravel()
            apply_patch_sections(flat, box, dtype, self.name)
        return flat.reshape(shape)

    def _reconstruct(
        self,
        inner_blob: bytes,
        ba: float,
        shape: tuple[int, ...],
        dtype: np.dtype,
        all_nonneg: bool,
        sign_payload: bytes,
        transform: LogTransform | None = None,
    ) -> np.ndarray:
        """Inner decompress -> inverse log map -> sign restoration.

        The inner blob is a section of this compressor's own checksummed
        container, so its bytes were already covered by the outer stream
        CRC -- the nested decode skips re-hashing them.
        """
        d_rec = self.inner.decompress_trusted(inner_blob)
        return self._postprocess(
            d_rec, ba, shape, dtype, all_nonneg, sign_payload, transform=transform
        )

    def _postprocess(
        self,
        d_rec: np.ndarray,
        ba: float,
        shape: tuple[int, ...],
        dtype: np.dtype,
        all_nonneg: bool,
        sign_payload: bytes,
        transform: LogTransform | None = None,
    ) -> np.ndarray:
        """Inverse log map + sign restoration over decoded log-space data."""
        tf = transform if transform is not None else self.transform
        with span("inverse-transform", base=tf.base):
            magnitudes = tf.inverse(d_rec, ba, dtype)
        if all_nonneg:
            return magnitudes.reshape(shape)
        with span("sign-restore"):
            negatives = decode_sign_bitmap(False, sign_payload, magnitudes.size)
            signed = np.where(
                negatives.reshape(magnitudes.shape), -magnitudes, magnitudes
            )
        return signed.reshape(shape)


def make_sz_t(
    base: float = 2.0, verify: bool = True, nonfinite: str = "error"
) -> TransformedCompressor:
    """The paper's ``SZ_T``: SZ(abs) wrapped in the log transform."""
    from repro.compressors.sz import SZCompressor

    return TransformedCompressor(
        SZCompressor(), base=base, verify=verify, nonfinite=nonfinite
    )


def make_zfp_t(
    base: float = 2.0, verify: bool = True, nonfinite: str = "error"
) -> TransformedCompressor:
    """The paper's ``ZFP_T``: ZFP(accuracy) wrapped in the log transform."""
    from repro.compressors.zfp import ZFPCompressor

    return TransformedCompressor(
        ZFPCompressor("accuracy"), base=base, verify=verify, nonfinite=nonfinite
    )
