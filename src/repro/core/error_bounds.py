r"""Bound mapping between relative and absolute error (Theorem 2, Lemma 2).

Theorem 2 establishes that under the mapping ``f(x) = log_base(x)`` the
point-wise relative bound ``b_r`` corresponds to the absolute bound

.. math:: b_a = g(b_r) = \log_{base}(1 + b_r)

in the transformed domain.  Lemma 2 then shrinks ``b_a`` to absorb the
round-off error of evaluating the mapping in floating point:

.. math:: b_a' = \log_{base}(1 + b_r) - \max_x |\log_{base} x| \cdot \epsilon_0

where ``eps0`` is the unit round-off of the precision in which the
transform is evaluated (the paper sets it to machine epsilon).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "abs_bound_for",
    "adjusted_abs_bound",
    "rel_bound_from_abs",
    "machine_eps0",
]


def abs_bound_for(rel_bound: float, base: float = 2.0) -> float:
    """Theorem 2: ``b_a = log_base(1 + b_r)``."""
    _validate(rel_bound, base)
    return math.log1p(rel_bound) / math.log(base)


def rel_bound_from_abs(abs_bound: float, base: float = 2.0) -> float:
    """Inverse of :func:`abs_bound_for`: ``b_r = base**b_a - 1``."""
    if abs_bound <= 0:
        raise ValueError(f"absolute bound must be positive, got {abs_bound}")
    if base <= 1:
        raise ValueError(f"base must exceed 1, got {base}")
    return math.expm1(abs_bound * math.log(base))


def adjusted_abs_bound(
    rel_bound: float,
    max_log_abs: float,
    eps0: float,
    base: float = 2.0,
) -> float:
    """Lemma 2: shrink ``b_a`` by the worst-case mapping round-off.

    Parameters
    ----------
    rel_bound:
        User's point-wise relative bound ``b_r``.
    max_log_abs:
        ``max_x |log_base x|`` over the (transformed) dataset.
    eps0:
        Unit round-off of the precision holding the transformed data.

    Raises
    ------
    ValueError
        If the round-off correction consumes the entire bound (the demand
        is finer than the floating-point format can express).
    """
    _validate(rel_bound, base)
    if max_log_abs < 0:
        raise ValueError(f"max_log_abs must be non-negative, got {max_log_abs}")
    ba = abs_bound_for(rel_bound, base)
    adjusted = ba - max_log_abs * eps0
    if adjusted <= 0:
        raise ValueError(
            f"relative bound {rel_bound:g} is below the round-off floor "
            f"({max_log_abs:g} * {eps0:g}) of this data's dynamic range"
        )
    return adjusted


def machine_eps0(dtype: np.dtype) -> float:
    """Machine epsilon of the precision carrying the transformed values."""
    return float(np.finfo(np.dtype(dtype)).eps)


def _validate(rel_bound: float, base: float) -> None:
    if not 0 < rel_bound < 1:
        raise ValueError(f"relative bound must be in (0, 1), got {rel_bound}")
    if base <= 1:
        raise ValueError(f"base must exceed 1, got {base}")
