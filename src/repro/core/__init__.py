"""The paper's contribution: the logarithmic transformation scheme.

``repro.core`` converts a point-wise *relative*-error-bounded compression
problem into an *absolute*-error-bounded one:

* :mod:`repro.core.transform` -- the (unique, Theorem 2) logarithmic data
  mapping, including the zero-sentinel and sign handling of Algorithm 1;
* :mod:`repro.core.error_bounds` -- the bound mapping
  ``b_a = log_base(1 + b_r)`` and its Lemma-2 round-off adjustment;
* :mod:`repro.core.pwr` -- :class:`TransformedCompressor`, which wraps any
  absolute-error-bounded compressor (``SZ_T``, ``ZFP_T`` factories
  included);
* :mod:`repro.core.chunked` -- :class:`ChunkedCompressor`, the block
  decomposition running any inner compressor chunk-parallel;
* :mod:`repro.core.theory` -- executable forms of the paper's theorems
  (mapping uniqueness, Theorem-3 quantization-index deviation bounds,
  Lemma-4 decorrelation/coding-gain invariance).
"""

from repro.core.chunked import (
    DEFAULT_GROUP_SIZE,
    ChunkedCompressor,
    ChunkFailure,
    ChunkTimeoutError,
    RecoveryReport,
    chunk_patch_total,
    iter_chunk_blobs,
    recover_array,
)
from repro.core.error_bounds import abs_bound_for, adjusted_abs_bound, rel_bound_from_abs
from repro.core.pwr import TransformedCompressor, make_sz_t, make_zfp_t
from repro.core.transform import LogTransform

__all__ = [
    "ChunkFailure",
    "ChunkTimeoutError",
    "ChunkedCompressor",
    "DEFAULT_GROUP_SIZE",
    "LogTransform",
    "RecoveryReport",
    "TransformedCompressor",
    "abs_bound_for",
    "adjusted_abs_bound",
    "chunk_patch_total",
    "iter_chunk_blobs",
    "make_sz_t",
    "make_zfp_t",
    "recover_array",
    "rel_bound_from_abs",
]
