"""Executable forms of the paper's theorems and lemmas.

These functions back the property-based tests and the ablation benchmarks:

* **Theorem 1/2 (uniqueness of the log mapping)** --
  :func:`mapping_equation_deviation` measures how far a candidate mapping
  pair ``(f, f_inv)`` is from satisfying Equation (1); the log family
  passes at round-off level, every other smooth bijection fails by orders
  of magnitude.
* **Lemma 3 / Theorem 3 (base invariance for SZ)** --
  :func:`quantization_indices` computes the Lorenzo quantization indices
  in an arbitrary base; :func:`quant_index_bound` is Theorem 3's bound on
  their cross-base deviation (1x/3x/7x ``|log_{1+br}(1-br) - 1|``).
* **Lemma 4 (base invariance for ZFP)** --
  :func:`decorrelation_efficiency` and :func:`coding_gain` implement
  Definition 1 on the coefficient covariance produced by
  :func:`zfp_coefficient_covariance`; rescaling the input (= changing
  the log base) provably cancels.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

from repro.compressors.sz.predictor import lorenzo_residual

__all__ = [
    "mapping_equation_deviation",
    "quantization_indices",
    "quant_index_bound",
    "zfp_coefficient_covariance",
    "decorrelation_efficiency",
    "coding_gain",
    "ZFP_TRANSFORM_MATRIX",
]


def mapping_equation_deviation(
    f: Callable[[np.ndarray], np.ndarray],
    f_inv: Callable[[np.ndarray], np.ndarray],
    g_of_br: float,
    rel_bound: float,
    xs: np.ndarray,
) -> float:
    """Worst-case deviation of a candidate mapping from Equation (1).

    Equation (1) demands ``(f_inv(f(x) + g(b_r)) - x) / x == b_r`` for all
    positive ``x``.  Returns ``max_x |lhs - b_r|``; a valid mapping yields
    round-off-level values, anything else does not.
    """
    xs = np.asarray(xs, dtype=np.float64)
    if (xs <= 0).any():
        raise ValueError("Equation (1) is stated for positive x")
    lhs = (f_inv(f(xs) + g_of_br) - xs) / xs
    return float(np.abs(lhs - rel_bound).max())


def quantization_indices(
    data: np.ndarray, rel_bound: float, base: float, ndim: int
) -> np.ndarray:
    """Lorenzo quantization indices of log-mapped data (Lemma 3).

    ``q = round( lorenzo_residual(log_base x) / log_base(1 + b_r) )`` --
    Lemma 3 shows the exact-arithmetic value is ``log_{1+br}`` of a ratio
    of data products and hence base-independent; Theorem 3 bounds the
    floating-point deviation across bases.
    """
    x = np.asarray(data, dtype=np.float64)
    if (x <= 0).any():
        raise ValueError("quantization-index analysis requires positive data")
    logs = np.log(x) / math.log(base)
    step = math.log1p(rel_bound) / math.log(base)
    # Real-valued Lorenzo residual (prediction from exact neighbours).
    resid = logs.copy()
    for ax in range(logs.ndim - ndim, logs.ndim):
        resid = np.diff(resid, axis=ax, prepend=0.0)
    return np.rint(resid / step).astype(np.int64)


def quant_index_bound(rel_bound: float, ndim: int) -> float:
    """Theorem 3: bound on cross-base quantization-index deviation."""
    if not 0 < rel_bound < 1:
        raise ValueError(f"relative bound must be in (0, 1), got {rel_bound}")
    factor = {1: 1, 2: 3, 3: 7}[ndim]
    return factor * abs(math.log(1 - rel_bound) / math.log1p(rel_bound) - 1.0)


#: The real-valued ZFP decorrelating transform (Lindstrom 2014, eq. for the
#: orthogonal basis the integer lifting approximates).
ZFP_TRANSFORM_MATRIX = (
    np.array(
        [
            [4, 4, 4, 4],
            [5, 1, -1, -5],
            [-4, 4, 4, -4],
            [-2, 6, -6, 2],
        ],
        dtype=np.float64,
    )
    / 16.0
)


def zfp_coefficient_covariance(data: np.ndarray, base: float) -> np.ndarray:
    """Covariance of 1-D ZFP transform coefficients of log-mapped data.

    Blocks of 4 consecutive log-domain samples are treated as draws of the
    random vector ``Y``; returns ``cov(A Y)`` with ``A`` the real ZFP
    transform, the quantity Lemma 4's ``eta``/``gamma`` are defined on.
    """
    x = np.asarray(data, dtype=np.float64).ravel()
    if (x <= 0).any():
        raise ValueError("log mapping requires positive data")
    logs = np.log(x) / math.log(base)
    logs = logs[: logs.size - logs.size % 4].reshape(-1, 4)
    coeffs = logs @ ZFP_TRANSFORM_MATRIX.T
    return np.cov(coeffs, rowvar=False)


def decorrelation_efficiency(cov: np.ndarray) -> float:
    """Definition 1: ``eta = sum_i s_ii^2 / sum_ij s_ij^2``."""
    cov = np.asarray(cov, dtype=np.float64)
    diag = np.diag(cov)
    return float((diag**2).sum() / (cov**2).sum())


def coding_gain(cov: np.ndarray) -> float:
    """Definition 1: ``gamma = sum_i s_ii^2 / (n * prod_i (s_ii^2)^(1/n))``.

    Computed in log space for numerical robustness.
    """
    cov = np.asarray(cov, dtype=np.float64)
    d2 = np.diag(cov) ** 2
    if (d2 <= 0).any():
        raise ValueError("coding gain undefined for singular coefficient variance")
    n = d2.size
    geo = math.exp(np.log(d2).mean())
    return float(d2.sum() / (n * geo))
