"""The logarithmic data mapping (Theorem 2 / Algorithm 1).

``LogTransform`` maps magnitudes into log space and back, handling the two
cases an idealized ``f(x) = log_base x`` cannot:

* **zeros** are planted at a sentinel ``4 * b_a`` *below* the smallest
  exponent the floating-point format can express, so that after
  absolute-error-bounded compression (error ``<= b_a``) reconstructed
  sentinels and reconstructed genuine values remain separated by a
  ``2 * b_a`` guard band and zeros decode to exact zeros (Algorithm 1
  lines 4-5 use a ``2 b_a`` offset from the format's minimum exponent; we
  anchor at the *denormal* minimum with a doubled guard so sub-normal
  inputs can never collide with the sentinel),
* **signs** are stripped before the transform and stored as a
  DEFLATE-compressed bitmap (Algorithm 1 lines 9-17), skipped entirely
  for single-signed data.

The fast-path bases 2, e and 10 call the dedicated libm entry points
(``log2``/``exp2`` etc.); Table III of the paper compares exactly these
three and picks base 2.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["LogTransform", "FLOOR_LOG2"]

#: log2 of the smallest positive (denormal) value per dtype.
FLOOR_LOG2 = {np.dtype(np.float32): -149.0, np.dtype(np.float64): -1074.0}


class LogTransform:
    """Bijective magnitude <-> log-domain mapping with zero sentinel."""

    def __init__(self, base: float = 2.0) -> None:
        if base <= 1:
            raise ValueError(f"base must exceed 1, got {base}")
        self.base = float(base)

    # -- scalar helpers ------------------------------------------------------

    def floor_log(self, dtype: np.dtype) -> float:
        """``log_base`` of the smallest positive value of ``dtype``."""
        return FLOOR_LOG2[np.dtype(dtype)] / math.log2(self.base)

    def zero_sentinel(self, abs_bound: float, dtype: np.dtype) -> float:
        """Log-domain value representing an exact zero (Algorithm 1 l.5)."""
        return self.floor_log(dtype) - 4.0 * abs_bound

    def zero_threshold(self, abs_bound: float, dtype: np.dtype) -> float:
        """Reconstructions at or below this decode to exact zero."""
        return self.floor_log(dtype) - 2.0 * abs_bound

    # -- array mapping -------------------------------------------------------

    def forward(self, magnitudes: np.ndarray, abs_bound: float) -> np.ndarray:
        """Map ``|x|`` into log space (zeros -> sentinel), keeping dtype.

        The output stays in the input's precision -- that precision's
        machine epsilon is the ``eps0`` of Lemma 2.
        """
        return self.plant_sentinel(
            self.forward_logs(magnitudes), magnitudes, abs_bound
        )

    def forward_logs(self, magnitudes: np.ndarray) -> np.ndarray:
        """Raw ``log_base`` of the magnitudes (``-inf`` at zeros).

        The log itself does not depend on the bound -- only the zero
        sentinel does -- so callers that need the same data mapped under
        two bounds (the provisional ``b_a`` and the Lemma-2-adjusted one)
        can take the logs once and call :meth:`plant_sentinel` twice.
        """
        x = np.asarray(magnitudes)
        if (x < 0).any():
            raise ValueError("forward() expects magnitudes (non-negative values)")
        with np.errstate(divide="ignore"):
            if self.base == 2.0:
                d = np.log2(x)
            elif self.base == math.e:
                d = np.log(x)
            elif self.base == 10.0:
                d = np.log10(x)
            else:
                d = np.log2(x) / np.asarray(math.log2(self.base), dtype=x.dtype)
        return d

    def plant_sentinel(
        self, logs: np.ndarray, magnitudes: np.ndarray, abs_bound: float
    ) -> np.ndarray:
        """Replace the logs of exact zeros with the bound's sentinel."""
        x = np.asarray(magnitudes)
        sentinel = np.asarray(self.zero_sentinel(abs_bound, x.dtype), dtype=x.dtype)
        return np.where(x == 0, sentinel, logs)

    def max_finite_log(self, dtype: np.dtype) -> float:
        """``log_base`` of the largest finite value of ``dtype``."""
        return float(np.log2(np.finfo(np.dtype(dtype)).max)) / math.log2(self.base)

    def inverse(self, logs: np.ndarray, abs_bound: float, dtype: np.dtype) -> np.ndarray:
        """Map reconstructed log values back to magnitudes (with zeros).

        Reconstructed logs are clipped to ``log_base(finfo(dtype).max)``:
        for magnitudes near the format's maximum, an inner-compressor error
        of ``+b_a`` would otherwise push ``exp2`` past the exponent range
        and decode to ``inf``.  The clip keeps the result at ``finfo.max``,
        still within the relative bound of any in-range original.
        """
        d = np.asarray(logs)
        threshold = self.zero_threshold(abs_bound, dtype)
        with np.errstate(over="ignore"):
            if self.base == 2.0:
                x = np.exp2(d)
            elif self.base == math.e:
                x = np.exp(d)
            elif self.base == 10.0:
                x = np.power(np.asarray(10.0, dtype=d.dtype), d)
            else:
                x = np.exp2(d * np.asarray(math.log2(self.base), dtype=d.dtype))
        cap = np.asarray(np.finfo(np.dtype(dtype)).max, dtype=x.dtype)
        x = np.minimum(x, cap)
        return np.where(d <= threshold, np.asarray(0, dtype=dtype), x.astype(dtype))

    def max_log_magnitude(self, logs: np.ndarray) -> float:
        """``max |log_base x|`` over the mapped data (input to Lemma 2).

        An empty mapping has no round-off to absorb, so it contributes 0.
        """
        logs = np.asarray(logs)
        if logs.size == 0:
            return 0.0
        return float(np.abs(logs).max())
