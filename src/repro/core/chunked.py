"""Chunked parallel compression pipeline.

:class:`ChunkedCompressor` splits an array into ~1-16 MB blocks and runs
any inner compressor (notably :class:`TransformedCompressor`) on each
block concurrently, the same block decomposition FRaZ uses to parallelize
its search loop and SZx uses for its ultra-fast block-wise kernels.  The
per-chunk streams are framed in a "v2" container record (codec
``CHUNKED``, see ``docs/formats.md``) whose payload is the concatenation
of complete, self-describing single-chunk containers -- each chunk carries
its own sign bitmap and patch channel, and for transformed inner codecs
the Lemma-2 ``b_a'`` is computed from the chunk's own ``max |log x|``,
which tightens the bound locally and removes the global two-pass over the
data.

Splitting policy: multi-dimensional arrays are cut into slabs of whole
rows along axis 0 (preserving the dimensionality the inner predictors
exploit); 1-D arrays -- and arrays whose single row already exceeds the
chunk budget -- are cut as flat element ranges.  Either way every chunk is
a C-contiguous span of the flattened array, so reassembly is always
"concatenate raveled chunks, reshape".

Executors: ``process`` (default when more than one worker is available;
compression is CPU-bound Python so separate interpreters are required for
real speedup), ``thread`` (used e.g. inside the SPMD ranks of
:mod:`repro.parallel.runner`, where forking from worker threads is
unsafe), or ``serial``.  The compressed bytes are identical whichever
executor produced them.
"""

from __future__ import annotations

import math
import os
import time
from collections.abc import Iterator
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field

import numpy as np

from repro.compressors.base import Compressor, ErrorBound, RelativeBound
from repro.encoding.container import (
    ChecksumError,
    Container,
    ContainerError,
    StreamError,
)
from repro.encoding.rs import MAX_GROUP_BLOCKS, encode_parity
from repro.observe.events import emit as emit_event
from repro.resilience.policy import (
    ChunkIncident,
    CircuitOpenError,
    JobDeadlineError,
    ResiliencePolicy,
    ResilienceReport,
    parse_policy,
)
from repro.observe.metrics import metrics
from repro.observe.propagate import absorb, run_traced
from repro.observe.tracer import current_span, span
from repro.utils.blocking import chunk_spans

__all__ = [
    "ChunkFailure",
    "ChunkTimeoutError",
    "ChunkedCompressor",
    "DEFAULT_GROUP_SIZE",
    "RecoveryReport",
    "chunk_patch_total",
    "iter_chunk_blobs",
    "recover_array",
]

#: Default chunk budget: 4 MB sits in the paper-motivated 1-16 MB window.
DEFAULT_CHUNK_BYTES = 4 * 2**20

#: Default parity-group width: 8 data chunks per group, so ``parity=2``
#: costs ~25% of the *compressed* bytes (a few percent of the raw data)
#: and survives any two lost chunks per group.
DEFAULT_GROUP_SIZE = 8

_EXECUTORS = ("auto", "serial", "thread", "process")

#: Named fill policies for unrecoverable chunk spans (a float is also
#: accepted anywhere a fill is).
_FILL_MODES = ("nan", "zero", "nearest")


class ChunkTimeoutError(TimeoutError):
    """A chunk worker exceeded its deadline on every allowed attempt.

    Deliberately *not* a :class:`StreamError`: the bytes are fine, the
    execution environment is not, so recovery paths must not treat it as
    stream damage.
    """


def _fill_scalar(fill: float | str) -> float:
    """The scalar planted in lost spans (``nearest`` resolves later)."""
    if isinstance(fill, str):
        if fill not in _FILL_MODES:
            raise ValueError(f"fill must be a float or one of {_FILL_MODES}, got {fill!r}")
        return 0.0 if fill == "zero" else float("nan")
    return float(fill)


def _apply_nearest_fill(out: np.ndarray, lost_spans: list[tuple[int, int]]) -> None:
    """Overwrite lost flat spans with the nearest surviving element.

    Ties round down; an array with no survivors keeps NaN so the loss
    stays visible.
    """
    if not lost_spans:
        return
    bad = np.zeros(out.size, dtype=bool)
    for start, stop in lost_spans:
        bad[start:stop] = True
    good_idx = np.flatnonzero(~bad)
    bad_idx = np.flatnonzero(bad)
    if good_idx.size == 0:
        out[bad_idx] = np.nan
        return
    pos = np.searchsorted(good_idx, bad_idx)
    left = np.clip(pos - 1, 0, good_idx.size - 1)
    right = np.clip(pos, 0, good_idx.size - 1)
    use_right = (good_idx[right] - bad_idx) < (bad_idx - good_idx[left])
    nearest = np.where(use_right, good_idx[right], good_idx[left])
    out[bad_idx] = out[nearest]


def _available_workers() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _compress_chunk(inner: Compressor, chunk: np.ndarray, bound: ErrorBound) -> bytes:
    """Module-level so process-pool workers can unpickle the task."""
    return inner.compress(chunk, bound)


def _decompress_chunk(blob: bytes) -> np.ndarray:
    from repro import decompress

    return decompress(blob)


@dataclass(frozen=True)
class ChunkFailure:
    """One damaged chunk (or whole stream) skipped during recovery.

    ``index`` is the chunk position, or None when the whole stream was
    unusable; ``span`` is the half-open flat-element range that could not
    be reconstructed (None when even the geometry was unreadable).
    """

    index: int | None
    span: tuple[int, int] | None
    error: str


@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of a damage-tolerant decompression.

    ``total_elements`` counts the array's elements; every element inside a
    failure span holds a fill value (``fill_mode``) instead of real data.
    ``repaired_chunks`` lists chunks that *were* damaged but were rebuilt
    byte-exactly from parity -- their spans hold true data and do not
    appear in ``failures``.  An empty ``failures`` tuple means every
    element is genuine.
    """

    n_chunks: int
    total_elements: int
    failures: tuple[ChunkFailure, ...] = ()
    #: How unrecoverable spans were filled: "nan", "zero", "nearest", or
    #: the string form of a caller-supplied float.
    fill_mode: str = "nan"
    #: Chunks reconstructed from Reed-Solomon parity (true data).
    repaired_chunks: tuple[int, ...] = field(default=())

    @property
    def complete(self) -> bool:
        return not self.failures

    @property
    def n_lost_chunks(self) -> int:
        return len(self.failures)

    @property
    def n_repaired_chunks(self) -> int:
        return len(self.repaired_chunks)

    @property
    def lost_elements(self) -> int:
        if any(f.span is None for f in self.failures):
            return self.total_elements
        return sum(stop - start for f in self.failures for start, stop in [f.span])

    @property
    def filled_elements(self) -> int:
        """Elements holding fill/interpolated values rather than data."""
        return self.lost_elements

    @property
    def recovered_elements(self) -> int:
        return self.total_elements - self.lost_elements

    def summary(self) -> str:
        repaired = (
            f" ({self.n_repaired_chunks} chunk(s) rebuilt from parity)"
            if self.repaired_chunks
            else ""
        )
        if self.complete:
            return f"all {self.n_chunks} chunks intact{repaired}"
        return (
            f"lost {self.n_lost_chunks}/{self.n_chunks} chunks "
            f"({self.lost_elements}/{self.total_elements} elements, "
            f"filled with {self.fill_mode}){repaired}: "
            + "; ".join(
                f"chunk {f.index if f.index is not None else '?'}: {f.error}"
                for f in self.failures
            )
        )


class ChunkedCompressor(Compressor):
    """Block-decomposed wrapper running ``inner`` on ~``chunk_bytes`` spans.

    Parameters
    ----------
    inner:
        Inner compressor instance, or a registry name resolved lazily
        ("SZ_T" by default).  Decompression never needs it: every chunk
        stream self-identifies.
    chunk_bytes:
        Uncompressed byte budget per chunk (default 4 MB).  Spans are
        balanced, so actual chunks are near-equal and never exceed this
        (except single items larger than the budget).
    workers:
        Concurrent chunk jobs; defaults to the CPUs available to this
        process.
    executor:
        ``"auto"`` (process pool when ``workers > 1``), ``"serial"``,
        ``"thread"`` or ``"process"``.  A callable ``f(nworkers) ->
        Executor`` is also accepted -- the hook fault-injection tests use
        to wrap a pool with crash injectors.
    parity:
        Reed-Solomon parity blocks per group of ``group_size`` chunks
        (0 = off).  With ``parity=k`` any ``k`` damaged or truncated
        chunk streams per group are rebuilt byte-exactly at recovery
        time; the stream is written as a v3 container record (see
        ``docs/formats.md`` and ``docs/recovery.md``).
    group_size:
        Data chunks per parity group (default 8; ``group_size + parity``
        is capped at 255 by GF(256)).
    timeout:
        Per-chunk watchdog deadline in seconds (None = no watchdog).  A
        chunk whose worker has not delivered within ``timeout`` of being
        submitted is cancelled and retried on a fresh worker -- up to
        ``timeout_retries`` times with exponential backoff starting at
        ``timeout_backoff_s`` -- before :class:`ChunkTimeoutError` is
        raised.  With a timeout set, even ``serial`` runs go through a
        single-slot pool so the deadline is enforceable.
    policy:
        A :class:`repro.resilience.ResiliencePolicy` (or its spec string,
        e.g. ``"retries=3;chunk-timeout=2;breaker=0.5/8;ladder=GZIP"``)
        that supersedes the individual retry/backoff/timeout knobs above,
        adds a whole-job deadline and memory-budgeted worker cap, arms a
        failure-rate circuit breaker, and may wrap ``inner`` in a
        :class:`~repro.resilience.DegradationLadder` of fallback codecs.
        See ``docs/resilience.md``.

    A worker failure that is not a :class:`StreamError` (a crashed
    process pool, a transient executor fault) does not fail the array:
    the affected chunks are re-run serially in the parent process, and
    :attr:`last_retried_chunks` reports how many needed that.  The bytes
    produced are identical either way.
    """

    name = "CHUNKED"

    def __init__(
        self,
        inner: Compressor | str = "SZ_T",
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        workers: int | None = None,
        executor: str = "auto",
        parity: int = 0,
        group_size: int = DEFAULT_GROUP_SIZE,
        timeout: float | None = None,
        timeout_retries: int = 2,
        timeout_backoff_s: float = 0.05,
        policy: "ResiliencePolicy | str | None" = None,
    ) -> None:
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        if workers is not None and workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if not callable(executor) and executor not in _EXECUTORS:
            raise ValueError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
        if parity < 0:
            raise ValueError(f"parity must be non-negative, got {parity}")
        if group_size < 1:
            raise ValueError(f"group_size must be positive, got {group_size}")
        if parity and group_size + parity > MAX_GROUP_BLOCKS:
            raise ValueError(
                f"group_size + parity must not exceed {MAX_GROUP_BLOCKS} "
                f"(GF(256)), got {group_size} + {parity}"
            )
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if timeout_retries < 0:
            raise ValueError(f"timeout_retries must be >= 0, got {timeout_retries}")
        if timeout_backoff_s < 0:
            raise ValueError(f"timeout_backoff_s must be >= 0, got {timeout_backoff_s}")
        self._inner = inner
        self.chunk_bytes = int(chunk_bytes)
        self.workers = int(workers) if workers is not None else _available_workers()
        self.executor = executor
        self.parity = int(parity)
        self.group_size = int(group_size)
        self.timeout = float(timeout) if timeout is not None else None
        self.timeout_retries = int(timeout_retries)
        self.timeout_backoff_s = float(timeout_backoff_s)
        self.policy = parse_policy(policy) if isinstance(policy, str) else policy
        if self.policy is not None:
            # A policy is the single source of truth for the knobs it
            # covers: its retry/backoff/deadline fields supersede the
            # legacy per-knob arguments, its memory budget caps workers,
            # and its ladder wraps the inner codec in fallback rungs.
            pol = self.policy
            if pol.chunk_timeout_s is not None:
                self.timeout = pol.chunk_timeout_s
            self.timeout_retries = pol.retries
            self.timeout_backoff_s = pol.backoff_s
            self.workers = pol.max_workers(self.workers, self.chunk_bytes)
            if pol.ladder:
                from repro.resilience.ladder import DegradationLadder

                if not isinstance(self._inner, DegradationLadder):
                    self._inner = DegradationLadder.with_fallbacks(
                        self._inner, pol.ladder
                    )
        self._job_started: float | None = None
        self._incidents: list[ChunkIncident] = []
        #: Resilience outcome of the most recent compress() call (None
        #: until one has run).
        self.last_resilience: ResilienceReport | None = None
        #: Chunk count of the most recent compress() call.
        self.last_chunk_count = 0
        #: Chunks the most recent _map had to re-run serially after a
        #: worker/executor failure.
        self.last_retried_chunks = 0
        #: Chunks whose worker hit the watchdog deadline in the most
        #: recent _map (each was cancelled and retried on a fresh worker).
        self.last_timed_out_chunks = 0
        #: Aggregated bound audit of the most recent compress() call,
        #: rebuilt from the ``audit.*`` registry delta the chunk workers'
        #: verify passes moved (and telemetry propagation merged back),
        #: so it covers process-pool runs too.  None until a compress
        #: with a verifying inner codec has run.
        self.last_audit = None

    # -- configuration -------------------------------------------------------

    @property
    def inner(self) -> Compressor:
        """The inner compressor, resolving a registry name on first use."""
        if isinstance(self._inner, str):
            from repro.compressors.base import get_compressor

            self._inner = get_compressor(self._inner)
        return self._inner

    @property
    def supported_bounds(self) -> tuple[type, ...]:  # type: ignore[override]
        return self.inner.supported_bounds

    def _make_pool(self, njobs: int) -> Executor | None:
        """An executor for ``njobs`` chunk tasks, or None to run serially."""
        nworkers = min(self.workers, njobs)
        if callable(self.executor):
            return self.executor(nworkers)
        mode = self.executor
        if mode == "auto":
            mode = "process" if nworkers > 1 else "serial"
        if mode == "serial" or nworkers < 2:
            if self.timeout is not None:
                # A deadline is only enforceable on work we can abandon:
                # run nominally-serial jobs through one pool thread.
                return ThreadPoolExecutor(max_workers=1)
            return None
        if mode == "thread":
            return ThreadPoolExecutor(max_workers=nworkers)
        return ProcessPoolExecutor(max_workers=nworkers)

    def _fresh_worker(self) -> Executor:
        """A disposable single-slot pool for retrying a timed-out chunk.

        Process mode gets a brand-new process (the hung one may be
        wedged beyond recovery); every other mode -- thread, serial-with-
        timeout, injected test executors -- gets a fresh thread, which
        insulates the retry from whatever stalled the original pool.
        """
        if not callable(self.executor) and (
            self.executor == "process"
            or (self.executor == "auto" and min(self.workers, 2) > 1)
        ):
            return ProcessPoolExecutor(max_workers=1)
        return ThreadPoolExecutor(max_workers=1)

    @staticmethod
    def _shutdown_pool(pool: Executor, abandon: bool) -> None:
        """Release a pool; ``abandon`` skips the join and kills stragglers.

        Joining a pool that still owns a hung worker would hang this
        thread too, so the watchdog path cancels what it can, refuses to
        wait, and terminates any worker *processes* outright (threads
        cannot be killed, only orphaned).
        """
        if not abandon:
            pool.shutdown(wait=True)
            return
        pool.shutdown(wait=False, cancel_futures=True)
        procs = getattr(pool, "_processes", None)
        if procs:
            for proc in list(procs.values()):
                proc.terminate()

    def _job_deadline_at(self) -> float | None:
        """Absolute perf-counter time the whole job must finish by."""
        if (
            self.policy is None
            or self.policy.job_timeout_s is None
            or self._job_started is None
        ):
            return None
        return self._job_started + self.policy.job_timeout_s

    def _check_job_deadline(self) -> None:
        deadline = self._job_deadline_at()
        if deadline is not None and time.perf_counter() > deadline:
            metrics().counter("resilience.job_deadline").inc()
            emit_event("job-deadline", codec=self.name,
                       job_timeout_s=self.policy.job_timeout_s)
            raise JobDeadlineError(
                f"job exceeded its {self.policy.job_timeout_s}s deadline"
            )

    def _wait(self, fut: Future, submitted_at: float):
        """``fut.result()`` honouring the chunk watchdog and job deadline."""
        deadlines = []
        if self.timeout is not None:
            deadlines.append(submitted_at + self.timeout)
        job_deadline = self._job_deadline_at()
        if job_deadline is not None:
            deadlines.append(job_deadline)
        if not deadlines:
            return fut.result()
        try:
            return fut.result(timeout=max(min(deadlines) - time.perf_counter(), 0.0))
        except FuturesTimeoutError:
            # Distinguish "this chunk's worker hung" (retryable) from
            # "the whole job is out of budget" (fatal).
            self._check_job_deadline()
            raise

    def _retry_timed_out(self, fn, job, index: int, parent) -> object:
        """Bounded fresh-worker retry of a chunk whose worker hung.

        Each attempt gets its own single-slot pool and the full
        ``timeout`` budget, after an exponential-backoff pause; the hung
        attempt's pool is abandoned, never joined.  Exhausting
        ``timeout_retries`` raises :class:`ChunkTimeoutError`.
        """
        reg = metrics()
        delay = self.timeout_backoff_s
        for attempt in range(1, self.timeout_retries + 1):
            self._check_job_deadline()
            if self.policy is not None:
                pause = self.policy.backoff_for(attempt, index)
            else:
                pause = delay
            if pause:
                time.sleep(pause)
            delay *= 2
            emit_event(
                "chunk-retry", index=index, codec=self.name,
                reason="timeout", attempt=attempt,
            )
            worker = self._fresh_worker()
            t0 = time.perf_counter()
            fut = worker.submit(run_traced, fn, *job)
            try:
                result, telem = self._wait(fut, t0)
            except FuturesTimeoutError:
                fut.cancel()
                self._shutdown_pool(worker, abandon=True)
                reg.counter("chunks.timed_out").inc()
                emit_event(
                    "chunk-timeout", index=index, codec=self.name,
                    timeout_s=self.timeout, attempt=attempt,
                )
                continue
            except StreamError:
                self._shutdown_pool(worker, abandon=False)
                raise
            except Exception:
                # Fresh worker died for a non-timeout reason (e.g. a
                # crashed process): fall back to the in-process serial
                # retry used for ordinary worker loss.
                self._shutdown_pool(worker, abandon=True)
                with span("chunk", index=index, retried=True):
                    return fn(*job)
            self._shutdown_pool(worker, abandon=False)
            absorb(parent, telem, label="chunk", index=index, t_submit=t0)
            reg.histogram("chunk.exec_s").observe(telem.wall_s)
            return result
        raise ChunkTimeoutError(
            f"chunk {index} exceeded its {self.timeout}s deadline on "
            f"{self.timeout_retries + 1} worker(s) (initial + "
            f"{self.timeout_retries} retries)"
        )

    def _map(self, fn, jobs: list) -> list:
        """Run ``fn(*job)`` for every job, retrying worker failures serially.

        A :class:`StreamError` from a worker is deterministic (corrupt
        chunk bytes) and propagates immediately.  Anything else -- a
        ``BrokenProcessPool`` after a worker crash, a flaky executor, a
        pickling failure -- marks the affected jobs for a serial re-run in
        this process, so one lost worker never fails the whole array.

        Every pooled job runs under :func:`repro.observe.run_traced`: the
        worker ships its span trees and metrics delta back with the
        result, and this thread stitches them under the open dispatching
        span as ``chunk`` children carrying queue-wait and execute times.
        """
        self.last_retried_chunks = 0
        self.last_timed_out_chunks = 0
        self._incidents = []
        breaker = self.policy.breaker() if self.policy is not None else None
        reg = metrics()
        pool = self._make_pool(len(jobs))
        if pool is None:
            out = []
            for i, job in enumerate(jobs):
                self._check_job_deadline()
                with span("chunk", index=i):
                    out.append(fn(*job))
            return out
        parent = current_span()
        results: list = [None] * len(jobs)
        done = [False] * len(jobs)
        futures: dict[int, Future] = {}
        submitted: dict[int, float] = {}
        timed_out: list[int] = []
        hard_stop = False
        try:
            try:
                for i, job in enumerate(jobs):
                    submitted[i] = time.perf_counter()
                    futures[i] = pool.submit(run_traced, fn, *job)
            except Exception:
                pass  # pool died mid-submit; unsubmitted jobs retry below
            for i, fut in futures.items():
                try:
                    results[i], telem = self._wait(fut, submitted[i])
                    done[i] = True
                except FuturesTimeoutError:
                    # Hung worker: cancel the straggler and hand the chunk
                    # to the fresh-worker retry path below.
                    fut.cancel()
                    timed_out.append(i)
                    reg.counter("chunks.timed_out").inc()
                    emit_event(
                        "chunk-timeout", index=i, codec=self.name,
                        timeout_s=self.timeout, attempt=0,
                    )
                    continue
                except StreamError:
                    raise
                except JobDeadlineError:
                    # Out of whole-job budget: abandon stragglers, fail loud.
                    hard_stop = True
                    raise
                except Exception:
                    continue  # worker lost; retry serially below
                wait = absorb(parent, telem, label="chunk", index=i,
                              t_submit=submitted[i])
                reg.histogram("chunk.exec_s").observe(telem.wall_s)
                if wait is not None:
                    reg.histogram("chunk.queue_wait_s").observe(wait)
        finally:
            self._shutdown_pool(pool, abandon=bool(timed_out) or hard_stop)
        self.last_timed_out_chunks = len(timed_out)
        if timed_out:
            parent.set(timed_out=len(timed_out))
        pending = [
            i for i in range(len(jobs)) if not done[i] and i not in timed_out
        ]
        if breaker is not None:
            # First-attempt outcomes feed the breaker; a failure rate over
            # the threshold means the codec/executor is failing
            # systematically, so stop instead of grinding serial retries.
            for i in range(len(jobs)):
                if done[i]:
                    breaker.record(True)
            for i in timed_out + pending:
                breaker.record(False)
            if breaker.tripped:
                reg.counter("resilience.breaker_open").inc()
                emit_event("circuit-open", codec=self.name,
                           detail=breaker.describe())
                raise CircuitOpenError(breaker.describe())
        for i in timed_out:
            self._incidents.append(ChunkIncident(
                i, "timeout", f"worker hung past {self.timeout}s"
            ))
            self._check_job_deadline()
            results[i] = self._retry_timed_out(fn, jobs[i], i, parent)
            done[i] = True
        self.last_retried_chunks = len(pending)
        if pending:
            reg.counter("chunks.retried").inc(len(pending))
            parent.set(retried=len(pending))
        for i in pending:
            self._incidents.append(ChunkIncident(
                i, "retry", "worker lost; re-run in-process"
            ))
            self._check_job_deadline()
            emit_event("chunk-retry", index=i, codec=self.name)
            with span("chunk", index=i, retried=True):
                results[i] = fn(*jobs[i])
        return results

    def _build_audit(self, before: dict, bound: ErrorBound) -> None:
        """Rebuild the pool-wide audit aggregate from the registry delta.

        Worker processes' verify passes move the ``audit.*`` counters and
        histograms -- and a safeguarded inner codec moves ``safeguard.*`` per
        chunk; :func:`repro.observe.run_traced` ships the deltas back
        and :func:`absorb` merges them into this process's registry, so by
        the time ``_map`` returns the delta since ``before`` is the whole
        run's audit -- whichever executor ran the chunks.
        """
        from repro.observe.audit import AuditReport

        delta = {
            k: v
            for k, v in metrics().diff(before).items()
            if k.startswith(("audit.", "safeguard.", "quality."))
        }
        if delta:
            bound_value = (
                float(bound.value) if isinstance(bound, RelativeBound) else None
            )
            if bound_value is None:
                # A safeguarded inner codec guarantees its declared relative
                # bound regardless of the bound kind handed to it.
                bound_value = getattr(self.inner, "declared_rel_bound", None)
            self.last_audit = AuditReport.from_metrics(
                delta, codec=self.name, bound_value=bound_value
            )

    # -- chunk geometry ------------------------------------------------------

    def _split(self, data: np.ndarray) -> list[np.ndarray]:
        """Cut ``data`` into C-contiguous spans of <= ``chunk_bytes``."""
        if data.ndim > 1:
            row_bytes = int(np.prod(data.shape[1:])) * data.itemsize
            if row_bytes <= self.chunk_bytes:
                spans = chunk_spans(data.shape[0], row_bytes, self.chunk_bytes)
                return [data[start:stop] for start, stop in spans]
        flat = data.ravel()
        spans = chunk_spans(flat.size, data.itemsize, self.chunk_bytes)
        return [flat[start:stop] for start, stop in spans]

    # -- compression ---------------------------------------------------------

    def compress(self, data: np.ndarray, bound: ErrorBound) -> bytes:
        inner = self.inner
        inner._check_bound(bound)
        self._job_started = time.perf_counter()
        data = np.asarray(data)
        if data.size == 0:
            if data.dtype not in (np.float32, np.float64):
                raise TypeError(f"expected float32/float64 data, got {data.dtype}")
            if data.ndim not in (1, 2, 3):
                raise ValueError(f"expected 1-D/2-D/3-D data, got ndim={data.ndim}")
            chunks, blobs = [], []
        else:
            data = self._check_input(
                data, allow_nonfinite=getattr(inner, "allows_nonfinite", False)
            )
            chunks = self._split(data)
            audit_before = metrics().snapshot()
            blobs = self._map(_compress_chunk, [(inner, c, bound) for c in chunks])
            self._build_audit(audit_before, bound)
        self._build_resilience(blobs)
        return self._assemble(data, chunks, blobs)

    def _build_resilience(self, blobs: list[bytes]) -> None:
        """Summarize what the resilience machinery did for this compress."""
        incidents = list(self._incidents)
        degraded = 0
        codecs = self._chunk_codecs(blobs)
        if codecs is not None:
            primary = self.inner.rung_names[0]
            for i, codec in enumerate(codecs):
                if codec != primary:
                    degraded += 1
                    incidents.append(
                        ChunkIncident(i, "fallback", f"{primary} -> {codec}")
                    )
        self.last_resilience = ResilienceReport(
            n_chunks=len(blobs),
            retried=self.last_retried_chunks,
            timed_out=self.last_timed_out_chunks,
            fallbacks=degraded,
            incidents=tuple(incidents),
        )

    def _chunk_codecs(self, blobs: list[bytes]) -> list[str] | None:
        """Per-chunk winning codec names when the inner is a ladder."""
        from repro.encoding.container import peek_codec
        from repro.resilience.ladder import DegradationLadder

        if not isinstance(self.inner, DegradationLadder) or not blobs:
            return None
        return [peek_codec(b) for b in blobs]

    def _assemble(
        self, data: np.ndarray, chunks: list[np.ndarray], blobs: list[bytes]
    ) -> bytes:
        """Frame finished chunk streams into the CHUNKED container.

        Shared verbatim by :meth:`compress` and the journaled job runner
        (:mod:`repro.resilience.jobs`), so a resumed job's container is
        byte-identical to an uninterrupted run's.
        """
        self.last_chunk_count = len(blobs)
        metrics().counter("chunks.compressed").inc(len(blobs))
        current_span().set(chunks=len(blobs), workers=self.workers)

        box = self._new_container(self.name, data)
        box.put_str("inner_codec", self.inner.name)
        box.put_u64("n_chunks", len(blobs))
        lens = np.array([len(b) for b in blobs], dtype=np.uint64)
        offs = np.concatenate([[0], np.cumsum(lens)])[:-1].astype(np.uint64)
        box.put_array("offs", offs)
        box.put_array("lens", lens)
        box.put_array("elems", np.array([c.size for c in chunks], dtype=np.uint64))
        codecs = self._chunk_codecs(blobs)
        if codecs is not None:
            # Record the ladder and each chunk's winning rung in the
            # stream itself, so stats/explain/info can show which chunks
            # degraded long after the run (and any process can decode
            # them -- chunk streams self-identify regardless).
            box.put_str("ladder", self.inner.chain)
            box.put_str("chunk_codecs", ";".join(codecs))
        # Parity sections precede the payload on purpose: a tail
        # truncation then erases trailing *chunks* -- exactly the erasure
        # pattern the parity can repair -- instead of the parity itself.
        version = None
        if self.parity and blobs:
            with span("parity-encode", k=self.parity, m=self.group_size):
                self._put_parity_sections(box, blobs)
            version = 3
        box.put("payload", b"".join(blobs))
        return box.to_bytes(version=version)

    def _put_parity_sections(self, box: Container, blobs: list[bytes]) -> None:
        """Append the v3 parity sections for ``blobs`` (see docs/formats.md)."""
        t0 = time.perf_counter()
        m, k = self.group_size, self.parity
        parity_blocks: list[bytes] = []
        group_lens: list[int] = []
        for g in range(0, len(blobs), m):
            blocks = encode_parity(blobs[g : g + m], k)
            group_lens.append(len(blocks[0]) if blocks else 0)
            parity_blocks.extend(blocks)
        box.put_u64("parity_k", k)
        box.put_u64("group_size", m)
        box.put_array("parity_lens", np.array(group_lens, dtype=np.uint64))
        box.put("parity", b"".join(parity_blocks))
        reg = metrics()
        reg.counter("parity.encode_s").inc(time.perf_counter() - t0)
        reg.counter("parity.bytes").inc(sum(len(p) for p in parity_blocks))
        reg.counter("parity.groups").inc(len(group_lens))
        current_span().set(parity=k, groups=len(group_lens))

    # -- decompression -------------------------------------------------------

    @staticmethod
    def _read_chunk_table(
        box: Container, shape: tuple[int, ...]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Validated (offs, lens, elems) of a CHUNKED container.

        Raises :class:`ContainerError` on any internal inconsistency;
        ``payload`` length is *not* checked here so the partial-recovery
        path can work on truncated payloads.
        """
        n = box.get_u64("n_chunks")
        offs = box.get_array("offs").astype(np.int64)
        lens = box.get_array("lens").astype(np.int64)
        elems = box.get_array("elems").astype(np.int64)
        if not (offs.size == lens.size == elems.size == n):
            raise ContainerError("corrupt CHUNKED stream: chunk table size mismatch")
        if n and (
            (lens < 0).any()
            or (offs != np.concatenate([[0], np.cumsum(lens)[:-1]])).any()
        ):
            raise ContainerError("corrupt CHUNKED stream: offsets not cumulative")
        if (elems <= 0).any() or int(elems.sum()) != math.prod(shape):
            raise ContainerError("corrupt CHUNKED stream: element count mismatch")
        return offs, lens, elems

    def decompress(self, blob: bytes) -> np.ndarray:
        self._job_started = time.perf_counter()
        codec = Container.from_bytes(blob).codec
        if codec != self.name:
            # v1 (monolithic) stream: dispatch to its own codec unchanged.
            return _decompress_chunk(blob)
        box, shape, dtype = self._open_container(blob, self.name)
        n = box.get_u64("n_chunks")
        if n == 0:
            if math.prod(shape) != 0:
                raise ContainerError("corrupt CHUNKED stream: no chunks for non-empty shape")
            return np.zeros(shape, dtype=dtype)
        offs, lens, elems = self._read_chunk_table(box, shape)
        payload = box.get("payload")
        if offs[-1] + lens[-1] != len(payload):
            raise ContainerError("corrupt CHUNKED stream: payload length mismatch")
        jobs = [(payload[o : o + ln],) for o, ln in zip(offs, lens)]
        parts = self._map(_decompress_chunk, jobs)
        metrics().counter("chunks.decompressed").inc(len(jobs))
        current_span().set(chunks=len(jobs), workers=self.workers)
        for part, want in zip(parts, elems):
            if part.size != want:
                raise ContainerError("corrupt CHUNKED stream: chunk element mismatch")
        flat = np.concatenate([p.ravel() for p in parts])
        return flat.astype(dtype, copy=False).reshape(shape)

    def decompress_partial(
        self, blob: bytes, fill: float | str = "nan", repair: bool = True
    ) -> tuple[np.ndarray, RecoveryReport]:
        """Decode every intact chunk of a damaged CHUNKED stream.

        When the stream carries Reed-Solomon parity (a v3 record) and
        ``repair`` is true, damaged chunks are first rebuilt byte-exactly
        via :func:`repro.integrity.repair_stream`; only chunks the parity
        could not cover are lost.  Lost chunks are replaced by ``fill``
        across their span -- a float, or ``"nan"``/``"zero"``/``"nearest"``
        (nearest surviving element) -- and reported in the returned
        :class:`RecoveryReport`.  Raises :class:`StreamError` only when
        the stream's *geometry* (shape, dtype, chunk table) is itself
        unreadable -- without it there is nothing to recover into.
        """
        fill_value = _fill_scalar(fill)
        fill_mode = fill if isinstance(fill, str) else repr(float(fill))
        box = Container.from_bytes(blob, verify_checksums=False, partial=True)
        if box.codec != self.name:
            raise ContainerError(
                f"stream was produced by {box.codec!r}, expected {self.name!r}"
            )
        # The metadata sections must be individually intact; their CRCs
        # are still trustworthy even when the stream CRC is not.
        for key in ("dtype", "shape", "inner_codec", "n_chunks", "offs", "lens", "elems"):
            if key in box and not box.check_section(key):
                raise ChecksumError(f"CHUNKED metadata section {key!r} is corrupt")
        shape = box.get_shape("shape")
        dtype = box.get_dtype("dtype")
        total = math.prod(shape)
        n = box.get_u64("n_chunks")
        if n == 0:
            if total != 0:
                raise ContainerError("corrupt CHUNKED stream: no chunks for non-empty shape")
            return np.zeros(shape, dtype=dtype), RecoveryReport(0, 0, fill_mode=fill_mode)
        offs, lens, elems = self._read_chunk_table(box, shape)
        repaired: tuple[int, ...] = ()
        if repair and "parity_k" in box:
            from repro.integrity import repair_stream

            try:
                fixed, rep = repair_stream(blob)
            except StreamError:
                pass  # parity metadata itself damaged: recover unrepaired
            else:
                if rep.repaired:
                    blob = fixed
                    repaired = rep.repaired
                    box = Container.from_bytes(
                        blob, verify_checksums=False, partial=True
                    )
        payload = box.get("payload") if "payload" in box else b""
        starts = np.concatenate([[0], np.cumsum(elems)])
        out = np.full(total, fill_value, dtype=dtype)
        failures: list[ChunkFailure] = []
        for i, (o, ln) in enumerate(zip(offs, lens)):
            chunk_span = (int(starts[i]), int(starts[i + 1]))
            try:
                if o + ln > len(payload):
                    raise ContainerError("chunk bytes missing (truncated payload)")
                part = _decompress_chunk(payload[o : o + ln])
                if part.size != elems[i]:
                    raise ContainerError("chunk decoded to the wrong element count")
                out[chunk_span[0] : chunk_span[1]] = part.ravel().astype(dtype, copy=False)
            except StreamError as exc:
                failures.append(ChunkFailure(i, chunk_span, str(exc)))
        if fill == "nearest" and failures:
            _apply_nearest_fill(out, [f.span for f in failures])
        return out.reshape(shape), RecoveryReport(
            int(n), total, tuple(failures), fill_mode=fill_mode, repaired_chunks=repaired
        )


# -- stream introspection ----------------------------------------------------


def iter_chunk_blobs(blob: bytes) -> Iterator[bytes]:
    """Yield the complete per-chunk container streams of a CHUNKED blob."""
    box = Container.from_bytes(blob)
    if box.codec != ChunkedCompressor.name:
        raise ValueError(f"stream was produced by {box.codec!r}, expected 'CHUNKED'")
    offs = box.get_array("offs").astype(np.int64)
    lens = box.get_array("lens").astype(np.int64)
    payload = box.get("payload")
    for o, ln in zip(offs, lens):
        yield payload[o : o + ln]


def chunk_patch_total(blob: bytes) -> int:
    """Sum of per-chunk patch-channel sizes (0 = Lemma 2 held everywhere)."""
    total = 0
    for chunk in iter_chunk_blobs(blob):
        box = Container.from_bytes(chunk)
        if "n_patch" in box:
            total += box.get_u64("n_patch")
    return total


# -- damage-tolerant loading -------------------------------------------------


def recover_array(
    blob: bytes, fill: float | str = "nan"
) -> tuple[np.ndarray | None, RecoveryReport | None]:
    """Best-effort decode of any stream: ``(array, report)``.

    Clean streams return ``(array, None)``.  Damaged CHUNKED streams
    first rebuild what the stream's Reed-Solomon parity covers, then
    recover the remaining intact chunks via
    :meth:`ChunkedCompressor.decompress_partial`; unrecoverable spans are
    filled per ``fill`` -- a float, or ``"nan"``/``"zero"``/``"nearest"``.
    Damaged monolithic streams whose shape/dtype header is still readable
    return a fully filled array; when even the geometry is gone the
    array is None.  Never raises on corrupt bytes.
    """
    from repro import decompress

    fill_value = _fill_scalar(fill)
    fill_mode = fill if isinstance(fill, str) else repr(float(fill))
    try:
        return decompress(blob), None
    except StreamError as exc:
        cause = f"{type(exc).__name__}: {exc}"
    try:
        box = Container.from_bytes(blob, verify_checksums=False, partial=True)
        if box.codec == ChunkedCompressor.name:
            return ChunkedCompressor(executor="serial").decompress_partial(blob, fill)
        shape = box.get_shape("shape")
        dtype = box.get_dtype("dtype")
        report = RecoveryReport(
            1,
            math.prod(shape),
            (ChunkFailure(None, (0, math.prod(shape)), cause),),
            fill_mode=fill_mode,
        )
        # "nearest" has no survivors in a whole-stream loss; keep NaN so
        # the damage stays visible.
        return np.full(shape, fill_value, dtype=dtype), report
    except ValueError:  # StreamError, or np.full of a corrupt non-float dtype
        return None, RecoveryReport(
            0, 0, (ChunkFailure(None, None, cause),), fill_mode=fill_mode
        )
