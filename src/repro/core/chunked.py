"""Chunked parallel compression pipeline.

:class:`ChunkedCompressor` splits an array into ~1-16 MB blocks and runs
any inner compressor (notably :class:`TransformedCompressor`) on each
block concurrently, the same block decomposition FRaZ uses to parallelize
its search loop and SZx uses for its ultra-fast block-wise kernels.  The
per-chunk streams are framed in a "v2" container record (codec
``CHUNKED``, see ``docs/formats.md``) whose payload is the concatenation
of complete, self-describing single-chunk containers -- each chunk carries
its own sign bitmap and patch channel, and for transformed inner codecs
the Lemma-2 ``b_a'`` is computed from the chunk's own ``max |log x|``,
which tightens the bound locally and removes the global two-pass over the
data.

Splitting policy: multi-dimensional arrays are cut into slabs of whole
rows along axis 0 (preserving the dimensionality the inner predictors
exploit); 1-D arrays -- and arrays whose single row already exceeds the
chunk budget -- are cut as flat element ranges.  Either way every chunk is
a C-contiguous span of the flattened array, so reassembly is always
"concatenate raveled chunks, reshape".

Executors: ``process`` (default when more than one worker is available;
compression is CPU-bound Python so separate interpreters are required for
real speedup), ``thread`` (used e.g. inside the SPMD ranks of
:mod:`repro.parallel.runner`, where forking from worker threads is
unsafe), or ``serial``.  The compressed bytes are identical whichever
executor produced them.
"""

from __future__ import annotations

import math
import os
import time
from collections.abc import Iterator
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.compressors.base import Compressor, ErrorBound, RelativeBound
from repro.encoding.container import (
    ChecksumError,
    Container,
    ContainerError,
    StreamError,
)
from repro.observe.events import emit as emit_event
from repro.observe.metrics import metrics
from repro.observe.propagate import absorb, run_traced
from repro.observe.tracer import current_span, span
from repro.utils.blocking import chunk_spans

__all__ = [
    "ChunkFailure",
    "ChunkedCompressor",
    "RecoveryReport",
    "chunk_patch_total",
    "iter_chunk_blobs",
    "recover_array",
]

#: Default chunk budget: 4 MB sits in the paper-motivated 1-16 MB window.
DEFAULT_CHUNK_BYTES = 4 * 2**20

_EXECUTORS = ("auto", "serial", "thread", "process")


def _available_workers() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _compress_chunk(inner: Compressor, chunk: np.ndarray, bound: ErrorBound) -> bytes:
    """Module-level so process-pool workers can unpickle the task."""
    return inner.compress(chunk, bound)


def _decompress_chunk(blob: bytes) -> np.ndarray:
    from repro import decompress

    return decompress(blob)


@dataclass(frozen=True)
class ChunkFailure:
    """One damaged chunk (or whole stream) skipped during recovery.

    ``index`` is the chunk position, or None when the whole stream was
    unusable; ``span`` is the half-open flat-element range that could not
    be reconstructed (None when even the geometry was unreadable).
    """

    index: int | None
    span: tuple[int, int] | None
    error: str


@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of a damage-tolerant decompression.

    ``total_elements`` counts the array's elements; every element inside a
    failure span was filled with the caller's fill value instead of real
    data.  An empty ``failures`` tuple means the stream decoded fully.
    """

    n_chunks: int
    total_elements: int
    failures: tuple[ChunkFailure, ...] = ()

    @property
    def complete(self) -> bool:
        return not self.failures

    @property
    def n_lost_chunks(self) -> int:
        return len(self.failures)

    @property
    def lost_elements(self) -> int:
        if any(f.span is None for f in self.failures):
            return self.total_elements
        return sum(stop - start for f in self.failures for start, stop in [f.span])

    @property
    def recovered_elements(self) -> int:
        return self.total_elements - self.lost_elements

    def summary(self) -> str:
        if self.complete:
            return f"all {self.n_chunks} chunks intact"
        return (
            f"lost {self.n_lost_chunks}/{self.n_chunks} chunks "
            f"({self.lost_elements}/{self.total_elements} elements): "
            + "; ".join(
                f"chunk {f.index if f.index is not None else '?'}: {f.error}"
                for f in self.failures
            )
        )


class ChunkedCompressor(Compressor):
    """Block-decomposed wrapper running ``inner`` on ~``chunk_bytes`` spans.

    Parameters
    ----------
    inner:
        Inner compressor instance, or a registry name resolved lazily
        ("SZ_T" by default).  Decompression never needs it: every chunk
        stream self-identifies.
    chunk_bytes:
        Uncompressed byte budget per chunk (default 4 MB).  Spans are
        balanced, so actual chunks are near-equal and never exceed this
        (except single items larger than the budget).
    workers:
        Concurrent chunk jobs; defaults to the CPUs available to this
        process.
    executor:
        ``"auto"`` (process pool when ``workers > 1``), ``"serial"``,
        ``"thread"`` or ``"process"``.  A callable ``f(nworkers) ->
        Executor`` is also accepted -- the hook fault-injection tests use
        to wrap a pool with crash injectors.

    A worker failure that is not a :class:`StreamError` (a crashed
    process pool, a transient executor fault) does not fail the array:
    the affected chunks are re-run serially in the parent process, and
    :attr:`last_retried_chunks` reports how many needed that.  The bytes
    produced are identical either way.
    """

    name = "CHUNKED"

    def __init__(
        self,
        inner: Compressor | str = "SZ_T",
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        workers: int | None = None,
        executor: str = "auto",
    ) -> None:
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        if workers is not None and workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if not callable(executor) and executor not in _EXECUTORS:
            raise ValueError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
        self._inner = inner
        self.chunk_bytes = int(chunk_bytes)
        self.workers = int(workers) if workers is not None else _available_workers()
        self.executor = executor
        #: Chunk count of the most recent compress() call.
        self.last_chunk_count = 0
        #: Chunks the most recent _map had to re-run serially after a
        #: worker/executor failure.
        self.last_retried_chunks = 0
        #: Aggregated bound audit of the most recent compress() call,
        #: rebuilt from the ``audit.*`` registry delta the chunk workers'
        #: verify passes moved (and telemetry propagation merged back),
        #: so it covers process-pool runs too.  None until a compress
        #: with a verifying inner codec has run.
        self.last_audit = None

    # -- configuration -------------------------------------------------------

    @property
    def inner(self) -> Compressor:
        """The inner compressor, resolving a registry name on first use."""
        if isinstance(self._inner, str):
            from repro.compressors.base import get_compressor

            self._inner = get_compressor(self._inner)
        return self._inner

    @property
    def supported_bounds(self) -> tuple[type, ...]:  # type: ignore[override]
        return self.inner.supported_bounds

    def _make_pool(self, njobs: int) -> Executor | None:
        """An executor for ``njobs`` chunk tasks, or None to run serially."""
        nworkers = min(self.workers, njobs)
        if callable(self.executor):
            return self.executor(nworkers)
        mode = self.executor
        if mode == "auto":
            mode = "process" if nworkers > 1 else "serial"
        if mode == "serial" or nworkers < 2:
            return None
        if mode == "thread":
            return ThreadPoolExecutor(max_workers=nworkers)
        return ProcessPoolExecutor(max_workers=nworkers)

    def _map(self, fn, jobs: list) -> list:
        """Run ``fn(*job)`` for every job, retrying worker failures serially.

        A :class:`StreamError` from a worker is deterministic (corrupt
        chunk bytes) and propagates immediately.  Anything else -- a
        ``BrokenProcessPool`` after a worker crash, a flaky executor, a
        pickling failure -- marks the affected jobs for a serial re-run in
        this process, so one lost worker never fails the whole array.

        Every pooled job runs under :func:`repro.observe.run_traced`: the
        worker ships its span trees and metrics delta back with the
        result, and this thread stitches them under the open dispatching
        span as ``chunk`` children carrying queue-wait and execute times.
        """
        self.last_retried_chunks = 0
        reg = metrics()
        pool = self._make_pool(len(jobs))
        if pool is None:
            out = []
            for i, job in enumerate(jobs):
                with span("chunk", index=i):
                    out.append(fn(*job))
            return out
        parent = current_span()
        results: list = [None] * len(jobs)
        done = [False] * len(jobs)
        futures: dict[int, Future] = {}
        submitted: dict[int, float] = {}
        with pool:
            try:
                for i, job in enumerate(jobs):
                    submitted[i] = time.perf_counter()
                    futures[i] = pool.submit(run_traced, fn, *job)
            except Exception:
                pass  # pool died mid-submit; unsubmitted jobs retry below
            for i, fut in futures.items():
                try:
                    results[i], telem = fut.result()
                    done[i] = True
                except StreamError:
                    raise
                except Exception:
                    continue  # worker lost; retry serially below
                wait = absorb(parent, telem, label="chunk", index=i,
                              t_submit=submitted[i])
                reg.histogram("chunk.exec_s").observe(telem.wall_s)
                if wait is not None:
                    reg.histogram("chunk.queue_wait_s").observe(wait)
        pending = [i for i in range(len(jobs)) if not done[i]]
        self.last_retried_chunks = len(pending)
        if pending:
            reg.counter("chunks.retried").inc(len(pending))
            parent.set(retried=len(pending))
        for i in pending:
            emit_event("chunk-retry", index=i, codec=self.name)
            with span("chunk", index=i, retried=True):
                results[i] = fn(*jobs[i])
        return results

    def _build_audit(self, before: dict, bound: ErrorBound) -> None:
        """Rebuild the pool-wide audit aggregate from the registry delta.

        Worker processes' verify passes move the ``audit.*`` counters and
        histograms; :func:`repro.observe.run_traced` ships the deltas back
        and :func:`absorb` merges them into this process's registry, so by
        the time ``_map`` returns the delta since ``before`` is the whole
        run's audit -- whichever executor ran the chunks.
        """
        from repro.observe.audit import AuditReport

        delta = {
            k: v
            for k, v in metrics().diff(before).items()
            if k.startswith("audit.")
        }
        if delta:
            self.last_audit = AuditReport.from_metrics(
                delta,
                codec=self.name,
                bound_value=(
                    float(bound.value) if isinstance(bound, RelativeBound) else None
                ),
            )

    # -- chunk geometry ------------------------------------------------------

    def _split(self, data: np.ndarray) -> list[np.ndarray]:
        """Cut ``data`` into C-contiguous spans of <= ``chunk_bytes``."""
        if data.ndim > 1:
            row_bytes = int(np.prod(data.shape[1:])) * data.itemsize
            if row_bytes <= self.chunk_bytes:
                spans = chunk_spans(data.shape[0], row_bytes, self.chunk_bytes)
                return [data[start:stop] for start, stop in spans]
        flat = data.ravel()
        spans = chunk_spans(flat.size, data.itemsize, self.chunk_bytes)
        return [flat[start:stop] for start, stop in spans]

    # -- compression ---------------------------------------------------------

    def compress(self, data: np.ndarray, bound: ErrorBound) -> bytes:
        inner = self.inner
        inner._check_bound(bound)
        data = np.asarray(data)
        if data.size == 0:
            if data.dtype not in (np.float32, np.float64):
                raise TypeError(f"expected float32/float64 data, got {data.dtype}")
            if data.ndim not in (1, 2, 3):
                raise ValueError(f"expected 1-D/2-D/3-D data, got ndim={data.ndim}")
            chunks, blobs = [], []
        else:
            data = self._check_input(data)
            chunks = self._split(data)
            audit_before = metrics().snapshot()
            blobs = self._map(_compress_chunk, [(inner, c, bound) for c in chunks])
            self._build_audit(audit_before, bound)
        self.last_chunk_count = len(blobs)
        metrics().counter("chunks.compressed").inc(len(blobs))
        current_span().set(chunks=len(blobs), workers=self.workers)

        box = self._new_container(self.name, data)
        box.put_str("inner_codec", inner.name)
        box.put_u64("n_chunks", len(blobs))
        lens = np.array([len(b) for b in blobs], dtype=np.uint64)
        offs = np.concatenate([[0], np.cumsum(lens)])[:-1].astype(np.uint64)
        box.put_array("offs", offs)
        box.put_array("lens", lens)
        box.put_array("elems", np.array([c.size for c in chunks], dtype=np.uint64))
        box.put("payload", b"".join(blobs))
        return box.to_bytes()

    # -- decompression -------------------------------------------------------

    @staticmethod
    def _read_chunk_table(
        box: Container, shape: tuple[int, ...]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Validated (offs, lens, elems) of a CHUNKED container.

        Raises :class:`ContainerError` on any internal inconsistency;
        ``payload`` length is *not* checked here so the partial-recovery
        path can work on truncated payloads.
        """
        n = box.get_u64("n_chunks")
        offs = box.get_array("offs").astype(np.int64)
        lens = box.get_array("lens").astype(np.int64)
        elems = box.get_array("elems").astype(np.int64)
        if not (offs.size == lens.size == elems.size == n):
            raise ContainerError("corrupt CHUNKED stream: chunk table size mismatch")
        if n and (
            (lens < 0).any()
            or (offs != np.concatenate([[0], np.cumsum(lens)[:-1]])).any()
        ):
            raise ContainerError("corrupt CHUNKED stream: offsets not cumulative")
        if (elems <= 0).any() or int(elems.sum()) != math.prod(shape):
            raise ContainerError("corrupt CHUNKED stream: element count mismatch")
        return offs, lens, elems

    def decompress(self, blob: bytes) -> np.ndarray:
        codec = Container.from_bytes(blob).codec
        if codec != self.name:
            # v1 (monolithic) stream: dispatch to its own codec unchanged.
            return _decompress_chunk(blob)
        box, shape, dtype = self._open_container(blob, self.name)
        n = box.get_u64("n_chunks")
        if n == 0:
            if math.prod(shape) != 0:
                raise ContainerError("corrupt CHUNKED stream: no chunks for non-empty shape")
            return np.zeros(shape, dtype=dtype)
        offs, lens, elems = self._read_chunk_table(box, shape)
        payload = box.get("payload")
        if offs[-1] + lens[-1] != len(payload):
            raise ContainerError("corrupt CHUNKED stream: payload length mismatch")
        jobs = [(payload[o : o + ln],) for o, ln in zip(offs, lens)]
        parts = self._map(_decompress_chunk, jobs)
        metrics().counter("chunks.decompressed").inc(len(jobs))
        current_span().set(chunks=len(jobs), workers=self.workers)
        for part, want in zip(parts, elems):
            if part.size != want:
                raise ContainerError("corrupt CHUNKED stream: chunk element mismatch")
        flat = np.concatenate([p.ravel() for p in parts])
        return flat.astype(dtype, copy=False).reshape(shape)

    def decompress_partial(
        self, blob: bytes, fill: float = float("nan")
    ) -> tuple[np.ndarray, RecoveryReport]:
        """Decode every intact chunk of a damaged CHUNKED stream.

        Chunks whose bytes fail their own checksums (or decode to the
        wrong element count) are replaced by ``fill`` across their span
        and reported in the returned :class:`RecoveryReport`.  Raises
        :class:`StreamError` only when the stream's *geometry* (shape,
        dtype, chunk table) is itself unreadable -- without it there is
        nothing to recover into.
        """
        box = Container.from_bytes(blob, verify_checksums=False, partial=True)
        if box.codec != self.name:
            raise ContainerError(
                f"stream was produced by {box.codec!r}, expected {self.name!r}"
            )
        # The metadata sections must be individually intact; their CRCs
        # are still trustworthy even when the stream CRC is not.
        for key in ("dtype", "shape", "inner_codec", "n_chunks", "offs", "lens", "elems"):
            if key in box and not box.check_section(key):
                raise ChecksumError(f"CHUNKED metadata section {key!r} is corrupt")
        shape = box.get_shape("shape")
        dtype = box.get_dtype("dtype")
        total = math.prod(shape)
        n = box.get_u64("n_chunks")
        if n == 0:
            if total != 0:
                raise ContainerError("corrupt CHUNKED stream: no chunks for non-empty shape")
            return np.zeros(shape, dtype=dtype), RecoveryReport(0, 0)
        offs, lens, elems = self._read_chunk_table(box, shape)
        payload = box.get("payload") if "payload" in box else b""
        starts = np.concatenate([[0], np.cumsum(elems)])
        out = np.full(total, fill, dtype=dtype)
        failures: list[ChunkFailure] = []
        for i, (o, ln) in enumerate(zip(offs, lens)):
            span = (int(starts[i]), int(starts[i + 1]))
            try:
                if o + ln > len(payload):
                    raise ContainerError("chunk bytes missing (truncated payload)")
                part = _decompress_chunk(payload[o : o + ln])
                if part.size != elems[i]:
                    raise ContainerError("chunk decoded to the wrong element count")
                out[span[0] : span[1]] = part.ravel().astype(dtype, copy=False)
            except StreamError as exc:
                failures.append(ChunkFailure(i, span, str(exc)))
        return out.reshape(shape), RecoveryReport(int(n), total, tuple(failures))


# -- stream introspection ----------------------------------------------------


def iter_chunk_blobs(blob: bytes) -> Iterator[bytes]:
    """Yield the complete per-chunk container streams of a CHUNKED blob."""
    box = Container.from_bytes(blob)
    if box.codec != ChunkedCompressor.name:
        raise ValueError(f"stream was produced by {box.codec!r}, expected 'CHUNKED'")
    offs = box.get_array("offs").astype(np.int64)
    lens = box.get_array("lens").astype(np.int64)
    payload = box.get("payload")
    for o, ln in zip(offs, lens):
        yield payload[o : o + ln]


def chunk_patch_total(blob: bytes) -> int:
    """Sum of per-chunk patch-channel sizes (0 = Lemma 2 held everywhere)."""
    total = 0
    for chunk in iter_chunk_blobs(blob):
        box = Container.from_bytes(chunk)
        if "n_patch" in box:
            total += box.get_u64("n_patch")
    return total


# -- damage-tolerant loading -------------------------------------------------


def recover_array(
    blob: bytes, fill: float = float("nan")
) -> tuple[np.ndarray | None, RecoveryReport | None]:
    """Best-effort decode of any stream: ``(array, report)``.

    Clean streams return ``(array, None)``.  Damaged CHUNKED streams
    recover their intact chunks via :meth:`ChunkedCompressor.decompress_partial`.
    Damaged monolithic streams whose shape/dtype header is still readable
    return a fully ``fill``-ed array; when even the geometry is gone the
    array is None.  Never raises on corrupt bytes.
    """
    from repro import decompress

    try:
        return decompress(blob), None
    except StreamError as exc:
        cause = f"{type(exc).__name__}: {exc}"
    try:
        box = Container.from_bytes(blob, verify_checksums=False, partial=True)
        if box.codec == ChunkedCompressor.name:
            return ChunkedCompressor(executor="serial").decompress_partial(blob, fill)
        shape = box.get_shape("shape")
        dtype = box.get_dtype("dtype")
        report = RecoveryReport(
            1, math.prod(shape), (ChunkFailure(None, (0, math.prod(shape)), cause),)
        )
        return np.full(shape, fill, dtype=dtype), report
    except ValueError:  # StreamError, or np.full of a corrupt non-float dtype
        return None, RecoveryReport(0, 0, (ChunkFailure(None, None, cause),))
