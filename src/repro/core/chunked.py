"""Chunked parallel compression pipeline.

:class:`ChunkedCompressor` splits an array into ~1-16 MB blocks and runs
any inner compressor (notably :class:`TransformedCompressor`) on each
block concurrently, the same block decomposition FRaZ uses to parallelize
its search loop and SZx uses for its ultra-fast block-wise kernels.  The
per-chunk streams are framed in a "v2" container record (codec
``CHUNKED``, see ``docs/formats.md``) whose payload is the concatenation
of complete, self-describing single-chunk containers -- each chunk carries
its own sign bitmap and patch channel, and for transformed inner codecs
the Lemma-2 ``b_a'`` is computed from the chunk's own ``max |log x|``,
which tightens the bound locally and removes the global two-pass over the
data.

Splitting policy: multi-dimensional arrays are cut into slabs of whole
rows along axis 0 (preserving the dimensionality the inner predictors
exploit); 1-D arrays -- and arrays whose single row already exceeds the
chunk budget -- are cut as flat element ranges.  Either way every chunk is
a C-contiguous span of the flattened array, so reassembly is always
"concatenate raveled chunks, reshape".

Executors: ``process`` (default when more than one worker is available;
compression is CPU-bound Python so separate interpreters are required for
real speedup), ``thread`` (used e.g. inside the SPMD ranks of
:mod:`repro.parallel.runner`, where forking from worker threads is
unsafe), or ``serial``.  The compressed bytes are identical whichever
executor produced them.
"""

from __future__ import annotations

import math
import os
from collections.abc import Iterator
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.compressors.base import Compressor, ErrorBound
from repro.encoding.container import Container
from repro.utils.blocking import chunk_spans

__all__ = ["ChunkedCompressor", "iter_chunk_blobs", "chunk_patch_total"]

#: Default chunk budget: 4 MB sits in the paper-motivated 1-16 MB window.
DEFAULT_CHUNK_BYTES = 4 * 2**20

_EXECUTORS = ("auto", "serial", "thread", "process")


def _available_workers() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _compress_chunk(inner: Compressor, chunk: np.ndarray, bound: ErrorBound) -> bytes:
    """Module-level so process-pool workers can unpickle the task."""
    return inner.compress(chunk, bound)


def _decompress_chunk(blob: bytes) -> np.ndarray:
    from repro import decompress

    return decompress(blob)


class ChunkedCompressor(Compressor):
    """Block-decomposed wrapper running ``inner`` on ~``chunk_bytes`` spans.

    Parameters
    ----------
    inner:
        Inner compressor instance, or a registry name resolved lazily
        ("SZ_T" by default).  Decompression never needs it: every chunk
        stream self-identifies.
    chunk_bytes:
        Uncompressed byte budget per chunk (default 4 MB).  Spans are
        balanced, so actual chunks are near-equal and never exceed this
        (except single items larger than the budget).
    workers:
        Concurrent chunk jobs; defaults to the CPUs available to this
        process.
    executor:
        ``"auto"`` (process pool when ``workers > 1``), ``"serial"``,
        ``"thread"`` or ``"process"``.
    """

    name = "CHUNKED"

    def __init__(
        self,
        inner: Compressor | str = "SZ_T",
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        workers: int | None = None,
        executor: str = "auto",
    ) -> None:
        if chunk_bytes <= 0:
            raise ValueError(f"chunk_bytes must be positive, got {chunk_bytes}")
        if workers is not None and workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        if executor not in _EXECUTORS:
            raise ValueError(f"executor must be one of {_EXECUTORS}, got {executor!r}")
        self._inner = inner
        self.chunk_bytes = int(chunk_bytes)
        self.workers = int(workers) if workers is not None else _available_workers()
        self.executor = executor
        #: Chunk count of the most recent compress() call.
        self.last_chunk_count = 0

    # -- configuration -------------------------------------------------------

    @property
    def inner(self) -> Compressor:
        """The inner compressor, resolving a registry name on first use."""
        if isinstance(self._inner, str):
            from repro.compressors.base import get_compressor

            self._inner = get_compressor(self._inner)
        return self._inner

    @property
    def supported_bounds(self) -> tuple[type, ...]:  # type: ignore[override]
        return self.inner.supported_bounds

    def _make_pool(self, njobs: int) -> Executor | None:
        """An executor for ``njobs`` chunk tasks, or None to run serially."""
        nworkers = min(self.workers, njobs)
        mode = self.executor
        if mode == "auto":
            mode = "process" if nworkers > 1 else "serial"
        if mode == "serial" or nworkers < 2:
            return None
        if mode == "thread":
            return ThreadPoolExecutor(max_workers=nworkers)
        return ProcessPoolExecutor(max_workers=nworkers)

    def _map(self, fn, jobs: list) -> list:
        pool = self._make_pool(len(jobs))
        if pool is None:
            return [fn(*job) for job in jobs]
        with pool:
            return list(pool.map(fn, *zip(*jobs)))

    # -- chunk geometry ------------------------------------------------------

    def _split(self, data: np.ndarray) -> list[np.ndarray]:
        """Cut ``data`` into C-contiguous spans of <= ``chunk_bytes``."""
        if data.ndim > 1:
            row_bytes = int(np.prod(data.shape[1:])) * data.itemsize
            if row_bytes <= self.chunk_bytes:
                spans = chunk_spans(data.shape[0], row_bytes, self.chunk_bytes)
                return [data[start:stop] for start, stop in spans]
        flat = data.ravel()
        spans = chunk_spans(flat.size, data.itemsize, self.chunk_bytes)
        return [flat[start:stop] for start, stop in spans]

    # -- compression ---------------------------------------------------------

    def compress(self, data: np.ndarray, bound: ErrorBound) -> bytes:
        inner = self.inner
        inner._check_bound(bound)
        data = np.asarray(data)
        if data.size == 0:
            if data.dtype not in (np.float32, np.float64):
                raise TypeError(f"expected float32/float64 data, got {data.dtype}")
            if data.ndim not in (1, 2, 3):
                raise ValueError(f"expected 1-D/2-D/3-D data, got ndim={data.ndim}")
            chunks, blobs = [], []
        else:
            data = self._check_input(data)
            chunks = self._split(data)
            blobs = self._map(_compress_chunk, [(inner, c, bound) for c in chunks])
        self.last_chunk_count = len(blobs)

        box = self._new_container(self.name, data)
        box.put_str("inner_codec", inner.name)
        box.put_u64("n_chunks", len(blobs))
        lens = np.array([len(b) for b in blobs], dtype=np.uint64)
        offs = np.concatenate([[0], np.cumsum(lens)])[:-1].astype(np.uint64)
        box.put_array("offs", offs)
        box.put_array("lens", lens)
        box.put_array("elems", np.array([c.size for c in chunks], dtype=np.uint64))
        box.put("payload", b"".join(blobs))
        return box.to_bytes()

    # -- decompression -------------------------------------------------------

    def decompress(self, blob: bytes) -> np.ndarray:
        codec = Container.from_bytes(blob).codec
        if codec != self.name:
            # v1 (monolithic) stream: dispatch to its own codec unchanged.
            return _decompress_chunk(blob)
        box, shape, dtype = self._open_container(blob, self.name)
        n = box.get_u64("n_chunks")
        if n == 0:
            if math.prod(shape) != 0:
                raise ValueError("corrupt CHUNKED stream: no chunks for non-empty shape")
            return np.zeros(shape, dtype=dtype)
        offs = box.get_array("offs").astype(np.int64)
        lens = box.get_array("lens").astype(np.int64)
        elems = box.get_array("elems").astype(np.int64)
        payload = box.get("payload")
        if not (offs.size == lens.size == elems.size == n):
            raise ValueError("corrupt CHUNKED stream: chunk table size mismatch")
        if offs[-1] + lens[-1] != len(payload):
            raise ValueError("corrupt CHUNKED stream: payload length mismatch")
        if int(elems.sum()) != math.prod(shape):
            raise ValueError("corrupt CHUNKED stream: element count mismatch")
        jobs = [(payload[o : o + ln],) for o, ln in zip(offs, lens)]
        parts = self._map(_decompress_chunk, jobs)
        for part, want in zip(parts, elems):
            if part.size != want:
                raise ValueError("corrupt CHUNKED stream: chunk element mismatch")
        flat = np.concatenate([p.ravel() for p in parts])
        return flat.astype(dtype, copy=False).reshape(shape)


# -- stream introspection ----------------------------------------------------


def iter_chunk_blobs(blob: bytes) -> Iterator[bytes]:
    """Yield the complete per-chunk container streams of a CHUNKED blob."""
    box = Container.from_bytes(blob)
    if box.codec != ChunkedCompressor.name:
        raise ValueError(f"stream was produced by {box.codec!r}, expected 'CHUNKED'")
    offs = box.get_array("offs").astype(np.int64)
    lens = box.get_array("lens").astype(np.int64)
    payload = box.get("payload")
    for o, ln in zip(offs, lens):
        yield payload[o : o + ln]


def chunk_patch_total(blob: bytes) -> int:
    """Sum of per-chunk patch-channel sizes (0 = Lemma 2 held everywhere)."""
    total = 0
    for chunk in iter_chunk_blobs(blob):
        box = Container.from_bytes(chunk)
        if "n_patch" in box:
            total += box.get_u64("n_patch")
    return total
