"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` provides the deterministic fault injectors
(bit flips, truncation, section drops, flaky-filesystem shim, crashing
and stalling executors) behind the corruption/fault test suites and the
``repro-compress faults`` CLI.
"""

from repro.testing.faults import (
    CrashingExecutor,
    FlakyFilesystem,
    StallingExecutor,
    corrupt_chunk,
    corrupt_section,
    drop_section,
    flip_bit,
    flip_random_bits,
    truncate,
)

__all__ = [
    "CrashingExecutor",
    "FlakyFilesystem",
    "StallingExecutor",
    "corrupt_chunk",
    "corrupt_section",
    "drop_section",
    "flip_bit",
    "flip_random_bits",
    "truncate",
]
