"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` provides the deterministic fault injectors
(bit flips, truncation, section drops, flaky/failing-filesystem shims,
crashing and stalling executors) behind the corruption/fault test suites
and the ``repro-compress faults`` CLI.  :mod:`repro.testing.chaos` is the
crash-point chaos harness: it kills journaled jobs at every durability
boundary and asserts resume converges to byte-identical output.
"""

from repro.testing.chaos import (
    ChaosOutcome,
    ChaosReport,
    CrashPoint,
    chaos_compress,
    kill_at,
    record_crash_points,
)
from repro.testing.faults import (
    CrashingExecutor,
    FailingFilesystem,
    FlakyFilesystem,
    StallingExecutor,
    corrupt_chunk,
    corrupt_section,
    drop_section,
    flip_bit,
    flip_random_bits,
    truncate,
)

__all__ = [
    "ChaosOutcome",
    "ChaosReport",
    "CrashPoint",
    "CrashingExecutor",
    "FailingFilesystem",
    "FlakyFilesystem",
    "StallingExecutor",
    "chaos_compress",
    "corrupt_chunk",
    "corrupt_section",
    "drop_section",
    "flip_bit",
    "flip_random_bits",
    "kill_at",
    "record_crash_points",
    "truncate",
]
