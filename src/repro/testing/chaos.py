"""Crash-point chaos harness: kill a job at every durability boundary.

The resilience layer marks each of its durability boundaries with a named
crash point (:func:`repro.resilience.crashpoints.reach`).  This module
turns those marks into a systematic fault-space exploration:

1. run the job once, uninterrupted, recording the ordered crash points it
   reaches (and keeping its output as the byte-identity reference);
2. for every point ``k``, re-run the job with a hook that raises
   :class:`CrashPoint` -- a ``BaseException``, so no recovery code can
   accidentally swallow the simulated kill -- at exactly the ``k``-th
   point;
3. resume the interrupted job with :func:`repro.resilience.resume_job`
   and assert the recovery invariants: the output file is never torn
   (absent or fully valid at every kill), resume converges, and the
   resumed container is byte-identical to the uninterrupted run.

:func:`chaos_compress` packages the whole enumeration for journaled
compress jobs (``repro-compress compress --journal`` / ``resume``);
:func:`record_crash_points` and :func:`kill_at` are the primitives for
building other cases (e.g. the ``atomic_write_bytes`` dir-fsync
regression test).  Enumeration order is deterministic; ``sample``/
``seed`` select a reproducible subset when the full space is too big.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.resilience.crashpoints import crash_hook

__all__ = [
    "ChaosOutcome",
    "ChaosReport",
    "CrashPoint",
    "chaos_compress",
    "kill_at",
    "record_crash_points",
]


class CrashPoint(BaseException):
    """A simulated kill at a named crash point.

    Deliberately a ``BaseException``: production error handling catches
    ``Exception`` at most, so a simulated kill tears through every
    recovery path exactly like ``SIGKILL`` would -- if any ``except``
    clause could absorb it, the chaos run would be testing nothing.
    """

    def __init__(self, name: str, index: int) -> None:
        super().__init__(f"simulated kill at crash point {index} ({name})")
        self.name = name
        self.index = index


def record_crash_points(fn, *args, **kwargs):
    """``(result, ordered crash-point names)`` of one uninterrupted run."""
    names: list[str] = []
    with crash_hook(lambda name, info: names.append(name)):
        result = fn(*args, **kwargs)
    return result, names


@contextmanager
def kill_at(index: int):
    """Raise :class:`CrashPoint` at the ``index``-th (0-based) crash point
    reached inside the block."""
    state = {"n": -1}

    def hook(name: str, info: dict) -> None:
        state["n"] += 1
        if state["n"] == index:
            raise CrashPoint(name, index)

    with crash_hook(hook):
        yield


@dataclass(frozen=True)
class ChaosOutcome:
    """One kill-and-recover case of the enumeration."""

    point: int
    name: str
    #: False when the job finished before reaching the point (only
    #: possible with nondeterministic point counts; never in enumeration
    #: over recorded points).
    killed: bool
    #: The output file was either absent or fully decodable at kill time.
    output_intact: bool
    #: resume_job completed without error.
    resumed: bool
    #: Final output byte-identical to the uninterrupted run.
    identical: bool
    error: str = ""

    @property
    def ok(self) -> bool:
        return self.output_intact and self.resumed and self.identical


@dataclass(frozen=True)
class ChaosReport:
    """Outcome of a full crash-point enumeration."""

    n_points: int
    crash_points: tuple[str, ...]
    outcomes: tuple[ChaosOutcome, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def failures(self) -> tuple[ChaosOutcome, ...]:
        return tuple(o for o in self.outcomes if not o.ok)

    def summary(self) -> str:
        if self.ok:
            return (
                f"killed at {len(self.outcomes)}/{self.n_points} crash points: "
                f"every job resumed to a byte-identical container"
            )
        bad = self.failures
        detail = "; ".join(
            f"point {o.point} ({o.name}): "
            + (o.error or "recovery invariant violated")
            for o in bad[:5]
        )
        return f"{len(bad)}/{len(self.outcomes)} crash points failed recovery: {detail}"

    def to_dict(self) -> dict:
        return {
            "n_points": self.n_points,
            "crash_points": list(self.crash_points),
            "ok": self.ok,
            "outcomes": [
                {
                    "point": o.point,
                    "name": o.name,
                    "killed": o.killed,
                    "output_intact": o.output_intact,
                    "resumed": o.resumed,
                    "identical": o.identical,
                    "error": o.error,
                }
                for o in self.outcomes
            ],
        }


def _output_intact(path: str) -> bool:
    """True when ``path`` is absent or holds a fully decodable stream."""
    if not os.path.exists(path):
        return True
    from repro import decompress

    try:
        with open(path, "rb") as fh:
            decompress(fh.read())
    except Exception:  # noqa: BLE001 - any decode failure means torn output
        return False
    return True


def chaos_compress(
    input_path: str,
    bound,
    workdir: str,
    sample: int | None = None,
    seed: int = 0,
    shape: tuple[int, ...] | None = None,
    dtype: str = "float32",
    **spec,
) -> ChaosReport:
    """Kill-at-every-crash-point enumeration of a journaled compress job.

    Runs the job once uninterrupted (recording the crash-point sequence
    and the reference container), then for each point kills a fresh job
    there and resumes it, asserting the recovery invariants.  ``spec``
    is the job pipeline description passed straight to
    :func:`repro.resilience.run_compress_job` (compressor, safeguards,
    ladder, policy, chunk knobs).  ``sample`` limits the enumeration to
    a reproducible ``seed``-chosen subset of points.
    """
    from repro.resilience import resume_job, run_compress_job

    os.makedirs(workdir, exist_ok=True)
    ref_out = os.path.join(workdir, "reference.rpz")
    _, points = record_crash_points(
        run_compress_job,
        input_path,
        ref_out,
        bound,
        journal_dir=os.path.join(workdir, "reference.journal"),
        shape=shape,
        dtype=dtype,
        **spec,
    )
    with open(ref_out, "rb") as fh:
        reference = fh.read()

    indices = list(range(len(points)))
    if sample is not None and sample < len(indices):
        rng = np.random.default_rng(seed)
        indices = sorted(
            int(i) for i in rng.choice(len(indices), size=sample, replace=False)
        )

    outcomes = []
    for k in indices:
        out = os.path.join(workdir, f"kill_{k:03d}.rpz")
        journal_dir = out + ".journal"
        killed = resumed = identical = False
        error = ""
        try:
            with kill_at(k):
                run_compress_job(
                    input_path, out, bound, journal_dir=journal_dir,
                    shape=shape, dtype=dtype, **spec,
                )
        except CrashPoint:
            killed = True
        output_intact = _output_intact(out)
        try:
            if killed:
                resume_job(journal_dir)
            resumed = True
        except Exception as exc:  # noqa: BLE001 - recorded per-point
            error = f"resume failed: {type(exc).__name__}: {exc}"
        if resumed:
            try:
                with open(out, "rb") as fh:
                    identical = fh.read() == reference
                if not identical and not error:
                    error = "resumed container differs from uninterrupted run"
            except OSError as exc:
                error = f"no output after resume: {exc}"
        if not output_intact and not error:
            error = "output file torn at kill time"
        outcomes.append(ChaosOutcome(
            point=k, name=points[k], killed=killed, output_intact=output_intact,
            resumed=resumed, identical=identical, error=error,
        ))
    return ChaosReport(
        n_points=len(points), crash_points=tuple(points), outcomes=tuple(outcomes)
    )
