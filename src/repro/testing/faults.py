"""Deterministic, seedable fault injectors for stream and I/O robustness.

Every injector is a pure function of its inputs (bytes in, bytes out, a
seed where randomness is involved), so a failing corruption test can be
reproduced exactly from its seed -- including from the command line via
``repro-compress faults``.  The two stateful shims
(:class:`FlakyFilesystem`, :class:`CrashingExecutor`) fail a *configured,
counted* number of times, never randomly.

Injector catalogue:

* :func:`flip_bit` / :func:`flip_random_bits` -- bit-level corruption,
* :func:`truncate` -- mid-write cuts,
* :func:`drop_section` -- a container section vanishes (re-serialized
  with valid checksums, exercising structural validation),
* :func:`corrupt_section` / :func:`corrupt_chunk` -- damage aimed at a
  named section or a single chunk of a CHUNKED stream,
* :func:`corrupt_safeguards` -- damage aimed at the safeguard machinery
  of a SAFE stream (spec list, patch channel, patch count),
* :class:`FlakyFilesystem` -- ``open()`` for writing fails N times,
* :class:`FailingFilesystem` -- ``write()`` on open files fails N times
  with a real errno (``ENOSPC``/``EIO``), modelling a disk that fills or
  errors mid-write rather than at ``open()``,
* :class:`CrashingExecutor` -- the Nth submitted chunk task dies like a
  crashed process-pool worker,
* :class:`StallingExecutor` -- the Nth submitted chunk task hangs (or is
  delayed), for exercising the watchdog's timeout -> cancel -> retry path.
"""

from __future__ import annotations

import builtins
import errno
import os
import time
from concurrent.futures import Executor, Future
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.encoding.container import Container, ContainerError, section_byte_ranges

__all__ = [
    "CrashingExecutor",
    "FailingFilesystem",
    "FlakyFilesystem",
    "StallingExecutor",
    "corrupt_chunk",
    "corrupt_safeguards",
    "corrupt_section",
    "drop_section",
    "flip_bit",
    "flip_random_bits",
    "truncate",
]


# -- byte-stream injectors ---------------------------------------------------


def flip_bit(blob: bytes, bit_index: int) -> bytes:
    """Flip exactly one bit; ``bit_index`` counts MSB-first from byte 0."""
    if not 0 <= bit_index < 8 * len(blob):
        raise ValueError(f"bit_index {bit_index} outside stream of {len(blob)} bytes")
    out = bytearray(blob)
    out[bit_index // 8] ^= 0x80 >> (bit_index % 8)
    return bytes(out)


def flip_random_bits(
    blob: bytes, n: int = 1, seed: int = 0, start: int = 0, stop: int | None = None
) -> bytes:
    """Flip ``n`` distinct random bits within ``blob[start:stop]``."""
    stop = len(blob) if stop is None else stop
    nbits = 8 * (stop - start)
    if n > nbits:
        raise ValueError(f"cannot flip {n} distinct bits in {nbits} available")
    rng = np.random.default_rng(seed)
    out = blob
    for bit in rng.choice(nbits, size=n, replace=False):
        out = flip_bit(out, 8 * start + int(bit))
    return out


def truncate(blob: bytes, keep: int | float) -> bytes:
    """Cut the stream: ``keep`` is a byte count (int) or a fraction (float)."""
    if isinstance(keep, float):
        if not 0.0 <= keep <= 1.0:
            raise ValueError(f"fractional keep must be in [0, 1], got {keep}")
        keep = int(len(blob) * keep)
    if not 0 <= keep <= len(blob):
        raise ValueError(f"keep {keep} outside stream of {len(blob)} bytes")
    return blob[:keep]


def drop_section(blob: bytes, key: str) -> bytes:
    """Remove a named section and re-serialize (checksums made valid again).

    Models a buggy writer rather than wire damage: the resulting stream
    is self-consistent, so only structural validation can reject it.
    """
    box = Container.from_bytes(blob, verify_checksums=False)
    if key not in box:
        raise ContainerError(f"stream has no section {key!r} to drop")
    out = Container(box.codec)
    out.version = box.version
    for k in box.keys():
        if k != key:
            out.put(k, box.get(k))
    return out.to_bytes(checksums=box.version >= 2, version=box.version)


def corrupt_section(blob: bytes, key: str, n_bits: int = 1, seed: int = 0) -> bytes:
    """Flip ``n_bits`` random bits inside the named section's payload."""
    ranges = section_byte_ranges(blob)
    if key not in ranges:
        raise ContainerError(f"stream has no section {key!r} to corrupt")
    start, stop = ranges[key]
    if stop == start:
        raise ValueError(f"section {key!r} is empty; nothing to corrupt")
    return flip_random_bits(blob, n=n_bits, seed=seed, start=start, stop=stop)


def corrupt_chunk(blob: bytes, index: int, n_bits: int = 1, seed: int = 0) -> bytes:
    """Flip ``n_bits`` random bits inside chunk ``index`` of a CHUNKED stream."""
    box = Container.from_bytes(blob, verify_checksums=False)
    if box.codec != "CHUNKED":
        raise ContainerError(f"stream is {box.codec!r}, not CHUNKED")
    offs = box.get_array("offs").astype(np.int64)
    lens = box.get_array("lens").astype(np.int64)
    if not 0 <= index < offs.size:
        raise ValueError(f"chunk index {index} outside table of {offs.size} chunks")
    pstart, _ = section_byte_ranges(blob)["payload"]
    start = pstart + int(offs[index])
    return flip_random_bits(
        blob, n=n_bits, seed=seed, start=start, stop=start + int(lens[index])
    )


def corrupt_safeguards(blob: bytes, n_bits: int = 1, seed: int = 0) -> bytes:
    """Flip ``n_bits`` random bits inside a SAFE stream's safeguard machinery.

    Picks one of the safeguard-bearing sections -- the spec list
    (``safeguards``), the patch channel (``patch_idx``, ``patch_val``) or
    the patch count (``n_patch``) -- by ``seed``, skipping empty ones, so a
    seed sweep covers every part of the machinery.  Decoding the result
    must raise a clean ``StreamError``; a guaranteed property silently not
    holding is the one failure mode the safeguards layer may never have.
    """
    box = Container.from_bytes(blob, verify_checksums=False)
    if box.codec != "SAFE":
        raise ContainerError(f"stream is {box.codec!r}, not SAFE")
    targets = [
        key
        for key in ("safeguards", "patch_idx", "patch_val", "n_patch")
        if key in box and len(box.get(key))
    ]
    if not targets:
        raise ValueError("stream has no non-empty safeguard sections to corrupt")
    return corrupt_section(blob, targets[seed % len(targets)], n_bits=n_bits, seed=seed)


# -- environment shims -------------------------------------------------------


class FlakyFilesystem:
    """Context manager: the first ``failures`` writable ``open()`` calls fail.

    Patches :func:`builtins.open` for the duration of the ``with`` block;
    opens with a write/append mode raise ``OSError`` until the failure
    budget is spent, then behave normally.  Reads are never touched.
    Thread-safe enough for the SPMD runner's rank threads: the counter
    decrement is guarded by the GIL.
    """

    def __init__(self, failures: int = 1, message: str = "injected filesystem fault"):
        if failures < 0:
            raise ValueError(f"failures must be >= 0, got {failures}")
        self.failures = failures
        self.message = message
        self.calls = 0
        self._real_open = None

    def __enter__(self) -> "FlakyFilesystem":
        self._real_open = builtins.open

        def flaky_open(file, mode="r", *args, **kwargs):
            if any(c in str(mode) for c in "wax+"):
                self.calls += 1
                if self.failures > 0:
                    self.failures -= 1
                    raise OSError(f"{self.message}: open({file!r}, {mode!r})")
            return self._real_open(file, mode, *args, **kwargs)

        builtins.open = flaky_open
        return self

    def __exit__(self, *exc_info) -> None:
        builtins.open = self._real_open


class _FailingFile:
    """File proxy whose ``write()`` draws from a shared failure budget."""

    def __init__(self, fh, fs: "FailingFilesystem"):
        self._fh = fh
        self._fs = fs

    def write(self, data):
        self._fs._on_write()
        return self._fh.write(data)

    def writelines(self, lines):
        self._fs._on_write()
        return self._fh.writelines(lines)

    def __enter__(self) -> "_FailingFile":
        self._fh.__enter__()
        return self

    def __exit__(self, *exc_info):
        return self._fh.__exit__(*exc_info)

    def __iter__(self):
        return iter(self._fh)

    def __getattr__(self, name):
        return getattr(self._fh, name)


class FailingFilesystem:
    """Context manager: the first ``failures`` ``write()`` calls fail with
    a real errno.

    Where :class:`FlakyFilesystem` rejects the ``open()`` itself, this shim
    lets the file open fine and fails *mid-write* -- the shape of a disk
    filling up (``ENOSPC``, the default) or erroring (``EIO``) halfway
    through a stream.  Patches :func:`builtins.open` for the ``with``
    block; files opened with a write/append mode come back wrapped in a
    proxy whose ``write``/``writelines`` raise ``OSError(code, ...)``
    until the budget is spent.  Reads, and writes after the budget, are
    untouched; an optional ``match`` substring restricts the fault to
    paths containing it.  Deterministic: the budget is counted, never
    random.
    """

    def __init__(
        self,
        failures: int = 1,
        code: int = errno.ENOSPC,
        match: str | None = None,
    ):
        if failures < 0:
            raise ValueError(f"failures must be >= 0, got {failures}")
        self.failures = failures
        self.code = code
        self.match = match
        self.write_calls = 0
        self._real_open = None

    def _on_write(self) -> None:
        self.write_calls += 1
        if self.failures > 0:
            self.failures -= 1
            raise OSError(self.code, os.strerror(self.code))

    def __enter__(self) -> "FailingFilesystem":
        self._real_open = builtins.open

        def failing_open(file, mode="r", *args, **kwargs):
            fh = self._real_open(file, mode, *args, **kwargs)
            if any(c in str(mode) for c in "wax+") and (
                self.match is None or self.match in str(file)
            ):
                return _FailingFile(fh, self)
            return fh

        builtins.open = failing_open
        return self

    def __exit__(self, *exc_info) -> None:
        builtins.open = self._real_open


class _FailedFuture(Future):
    def __init__(self, exc: BaseException) -> None:
        super().__init__()
        self.set_exception(exc)


class CrashingExecutor(Executor):
    """Executor wrapper whose ``crash_on``-th submitted task dies.

    The doomed task's future raises ``BrokenProcessPool`` -- exactly what
    callers observe when a real process-pool worker is OOM-killed -- while
    every other task runs on the wrapped executor.  ``crash_on`` counts
    from 1; pass a collection to kill several tasks.
    """

    def __init__(self, inner: Executor, crash_on: int | tuple[int, ...] = 1):
        self.inner = inner
        self.crash_on = (crash_on,) if isinstance(crash_on, int) else tuple(crash_on)
        self.submitted = 0

    def submit(self, fn, /, *args, **kwargs) -> Future:
        self.submitted += 1
        if self.submitted in self.crash_on:
            return _FailedFuture(
                BrokenProcessPool(f"injected worker crash on task {self.submitted}")
            )
        return self.inner.submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True, **kwargs) -> None:
        self.inner.shutdown(wait=wait, **kwargs)


class StallingExecutor(Executor):
    """Executor wrapper whose ``stall_on``-th submitted task hangs.

    The deterministic companion to :class:`CrashingExecutor` for the
    watchdog path: the doomed task's future never completes (the default,
    ``delay_s=None`` -- a bare pending :class:`Future` that holds no
    thread, so nothing blocks interpreter exit), or completes only after
    ``delay_s`` seconds (a straggler rather than a corpse).  Every other
    task runs on the wrapped executor untouched.  ``stall_on`` counts
    submissions from 1; pass a collection to stall several.
    """

    def __init__(
        self,
        inner: Executor,
        stall_on: int | tuple[int, ...] = 1,
        delay_s: float | None = None,
    ):
        if delay_s is not None and delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {delay_s}")
        self.inner = inner
        self.stall_on = (stall_on,) if isinstance(stall_on, int) else tuple(stall_on)
        self.delay_s = delay_s
        self.submitted = 0

    def submit(self, fn, /, *args, **kwargs) -> Future:
        self.submitted += 1
        if self.submitted in self.stall_on:
            if self.delay_s is None:
                return Future()  # pending forever; cancellable, joinless
            delay = self.delay_s

            def delayed(*a, **kw):
                time.sleep(delay)
                return fn(*a, **kw)

            return self.inner.submit(delayed, *args, **kwargs)
        return self.inner.submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True, **kwargs) -> None:
        self.inner.shutdown(wait=wait, **kwargs)
