"""Pluggable point-wise safeguards over any registered codec.

See ``docs/safeguards.md``.  The subsystem has three layers:

* :mod:`repro.safeguards.kinds` — the :class:`Safeguard` protocol and the
  concrete kinds (``abs``, ``rel``, ``ulp``, ``sign``, ``zero``,
  ``nonfinite``, ``monotone``, ``range``) plus the spec-string parser.
* :mod:`repro.safeguards.engine` — vectorized violation evaluation to a
  fixed point and the single shared patch-channel serialization used by
  every patching codec in the repo.
* :mod:`repro.safeguards.adapter` — :class:`SafeguardedCompressor`, the
  blackbox wrapper registered as codec ``SAFE``.
"""
from .kinds import (
    SAFEGUARD_KINDS,
    AbsErrorSafeguard,
    bit_view,
    MonotoneSafeguard,
    NonFiniteSafeguard,
    RangeSafeguard,
    RelErrorSafeguard,
    Safeguard,
    SignSafeguard,
    UlpSafeguard,
    ZeroSafeguard,
    parse_safeguard,
    parse_safeguards,
)
from .engine import (
    PatchChannel,
    apply_patch_sections,
    compute_patch_channel,
    put_patch_sections,
    read_patch_sections,
)
from .adapter import SafeguardedCompressor, read_stream_safeguards

__all__ = [
    "Safeguard",
    "AbsErrorSafeguard",
    "RelErrorSafeguard",
    "UlpSafeguard",
    "SignSafeguard",
    "ZeroSafeguard",
    "NonFiniteSafeguard",
    "MonotoneSafeguard",
    "RangeSafeguard",
    "SAFEGUARD_KINDS",
    "bit_view",
    "parse_safeguard",
    "parse_safeguards",
    "PatchChannel",
    "compute_patch_channel",
    "put_patch_sections",
    "read_patch_sections",
    "apply_patch_sections",
    "SafeguardedCompressor",
    "read_stream_safeguards",
]
