"""Point-wise safeguard kinds.

A :class:`Safeguard` declares a property the *reconstruction* of an array must
satisfy relative to the original.  Each kind evaluates vectorized over whole
arrays and reports a boolean violation mask; the engine
(:mod:`repro.safeguards.engine`) repairs every flagged point with a bit-exact
patch, so after repair the declared property holds exactly.

Safeguards serialize to short ``kind[:params]`` spec strings (``rel:0.001``,
``sign``, ``monotone:axis=0``) that travel inside the container, are accepted
by the CLI ``--safeguard`` flag, and are re-parsed by the offline auditor to
recheck declared-vs-actual properties.  Spec strings never contain ``;`` —
the container joins multiple specs with it.
"""
from __future__ import annotations

import numpy as np

__all__ = [
    "Safeguard",
    "AbsErrorSafeguard",
    "RelErrorSafeguard",
    "UlpSafeguard",
    "SignSafeguard",
    "ZeroSafeguard",
    "NonFiniteSafeguard",
    "MonotoneSafeguard",
    "RangeSafeguard",
    "SAFEGUARD_KINDS",
    "parse_safeguard",
    "parse_safeguards",
]


def _f64(a: np.ndarray) -> np.ndarray:
    return a.astype(np.float64, copy=False)


def bit_view(a: np.ndarray) -> np.ndarray:
    """Same-width integer view of a float array (for bit-exact comparison)."""
    if a.dtype == np.float32:
        return a.view(np.int32)
    if a.dtype == np.float64:
        return a.view(np.int64)
    raise TypeError(f"unsupported dtype for safeguards: {a.dtype}")


class Safeguard:
    """A declared point-wise property of a reconstruction.

    Subclasses define ``kind`` and implement :meth:`violation_mask`.  Masks
    are evaluated on same-shape ``(original, reconstruction)`` pairs; flagged
    points are patched with their original bits.  Points whose reconstruction
    is already bit-identical to the original are never violations — the
    engine strips them, which also guarantees the repair loop terminates.
    """

    kind: str = ""

    def params(self) -> str | None:
        """Parameter part of the spec string, or None for bare kinds."""
        return None

    def spec(self) -> str:
        p = self.params()
        return self.kind if p is None else f"{self.kind}:{p}"

    def resolve(self, data: np.ndarray) -> "Safeguard":
        """Bind data-dependent parameters (e.g. an implicit value range)."""
        return self

    def violation_mask(self, x: np.ndarray, xd: np.ndarray) -> np.ndarray:
        """Boolean mask (shape of ``x``) of points violating the property."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.spec()!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Safeguard) and other.spec() == self.spec()

    def __hash__(self) -> int:
        return hash(self.spec())


class AbsErrorSafeguard(Safeguard):
    """``abs:EB`` — absolute error at every point stays within ``EB``.

    Comparisons run in float64.  NaN originals never satisfy the arithmetic
    test (``NaN > eb`` is False), so pair this with ``nonfinite`` when inputs
    may contain NaN/Inf — the adapter does that automatically.
    """

    kind = "abs"

    def __init__(self, value: float) -> None:
        value = float(value)
        if not (value >= 0.0) or not np.isfinite(value):
            raise ValueError(f"abs safeguard needs a finite bound >= 0, got {value!r}")
        self.value = value

    def params(self) -> str:
        return repr(self.value)

    def violation_mask(self, x: np.ndarray, xd: np.ndarray) -> np.ndarray:
        # ~(err <= eb), not err > eb: a NaN/Inf reconstruction of a finite
        # point has NaN/Inf error, which must flag, not slip through the
        # comparison.  Non-finite *originals* stay this safeguard's
        # non-business (pair with ``nonfinite``).
        with np.errstate(invalid="ignore"):
            x64 = _f64(x)
            err = np.abs(_f64(xd) - x64)
            return ~(err <= self.value) & np.isfinite(x64)


class RelErrorSafeguard(Safeguard):
    """``rel:BR`` — point-wise relative error stays within ``BR``.

    Exact zeros admit no error: any nonzero reconstruction of a zero point is
    a violation (``|xd - 0| > br * 0``), matching the transform pipeline's
    sentinel semantics.
    """

    kind = "rel"

    def __init__(self, value: float) -> None:
        value = float(value)
        if not (0.0 < value < 1.0):
            raise ValueError(f"rel safeguard needs a bound in (0, 1), got {value!r}")
        self.value = value

    def params(self) -> str:
        return repr(self.value)

    #: float32 screening slack: wide enough to cover the worst relative
    #: rounding of the float32 ``|xd - x|`` / ``br * |x|`` evaluation, so the
    #: coarse pass can only over-select, never miss a float64 violation.
    _F32_SLACK = 1e-6

    def violation_mask(self, x: np.ndarray, xd: np.ndarray) -> np.ndarray:
        # ~(err <= tol) so that a NaN/Inf reconstruction of a finite point
        # flags (its error is NaN/Inf, and ``NaN > tol`` would be False).
        if x.dtype == np.float32 and xd.dtype == np.float32 and x.size > 4096:
            return self._violation_mask_f32(x, xd)
        with np.errstate(invalid="ignore"):
            x64 = _f64(x)
            err = np.abs(_f64(xd) - x64)
            return ~(err <= self.value * np.abs(x64)) & np.isfinite(x64)

    def _violation_mask_f32(self, x: np.ndarray, xd: np.ndarray) -> np.ndarray:
        """Two-stage evaluation for float32 arrays, bit-identical in result.

        A float32 screen with the tolerance *shrunk* by ``_F32_SLACK`` keeps
        every point the exact float64 test could flag (plus a sliver of
        near-boundary neighbours); the float64 expression then re-runs on
        that candidate set only.  Roughly 2.5x less memory traffic than the
        full float64 pass — this is the safeguards layer's hot loop.
        """
        with np.errstate(invalid="ignore", over="ignore", under="ignore"):
            absx = np.abs(x)
            screen_tol = np.float32(self.value * (1.0 - self._F32_SLACK))
            cand = ~(np.abs(xd - x) <= screen_tol * absx)
            # Below this magnitude ``br * |x|`` (or the error itself) can land
            # in the float32 subnormal range, where rounding stops being a
            # small *relative* error and the slack no longer covers it.
            cand |= absx < np.float32(1e-35 / self.value)
            mask = np.zeros(x.shape, dtype=bool)
            idx = np.flatnonzero(cand)
            if idx.size:
                xs = x.ravel()[idx].astype(np.float64)
                err = np.abs(xd.ravel()[idx].astype(np.float64) - xs)
                hit = ~(err <= self.value * np.abs(xs)) & np.isfinite(xs)
                mask.ravel()[idx[hit]] = True
        return mask


class UlpSafeguard(Safeguard):
    """``ulp:K`` — reconstruction within ``K`` units-in-the-last-place.

    Floats are mapped to a monotonic integer line (sign-magnitude to ordered),
    so the distance is exact for every finite pair; ``+0.0`` and ``-0.0`` are
    one ULP apart.  NaN/Inf bits land on the same line — a NaN reconstructed
    as anything but the identical bit pattern is flagged.
    """

    kind = "ulp"

    def __init__(self, value: int) -> None:
        value = int(value)
        if value < 0:
            raise ValueError(f"ulp safeguard needs a distance >= 0, got {value!r}")
        self.value = value

    def params(self) -> str:
        return str(self.value)

    @staticmethod
    def _ordered(a: np.ndarray) -> np.ndarray:
        bits = bit_view(a)
        u = bits.view(np.uint32 if bits.dtype == np.int32 else np.uint64)
        sign = np.uint32(1 << 31) if u.dtype == np.uint32 else np.uint64(1 << 63)
        return np.where(u & sign, ~u, u | sign)

    def violation_mask(self, x: np.ndarray, xd: np.ndarray) -> np.ndarray:
        a, b = self._ordered(x), self._ordered(xd)
        dist = np.where(a > b, a - b, b - a)
        return dist > np.asarray(self.value, dtype=dist.dtype)


class SignSafeguard(Safeguard):
    """``sign`` — the sign (negative / zero / positive) of every point holds."""

    kind = "sign"

    def violation_mask(self, x: np.ndarray, xd: np.ndarray) -> np.ndarray:
        with np.errstate(invalid="ignore"):
            return np.sign(_f64(x)) != np.sign(_f64(xd))


class ZeroSafeguard(Safeguard):
    """``zero`` — exact zeros decode bit-identically (``-0.0`` keeps its sign)."""

    kind = "zero"

    def violation_mask(self, x: np.ndarray, xd: np.ndarray) -> np.ndarray:
        return (x == 0) & (bit_view(x) != bit_view(xd))


class NonFiniteSafeguard(Safeguard):
    """``nonfinite`` — NaN and ±Inf decode bit-identically."""

    kind = "nonfinite"

    def violation_mask(self, x: np.ndarray, xd: np.ndarray) -> np.ndarray:
        return ~np.isfinite(x) & (bit_view(x) != bit_view(xd))


class MonotoneSafeguard(Safeguard):
    """``monotone[:axis=N]`` — strict orderings along an axis are never flipped.

    For every adjacent pair along ``axis`` where the original strictly
    increases (decreases), the reconstruction must not strictly decrease
    (increase).  Ties in the original impose no constraint.  Both endpoints
    of a flipped pair are flagged; patching them restores the original
    ordering exactly.
    """

    kind = "monotone"

    def __init__(self, axis: int = 0) -> None:
        axis = int(axis)
        if axis < 0:
            raise ValueError(f"monotone safeguard needs axis >= 0, got {axis!r}")
        self.axis = axis

    def params(self) -> str:
        return f"axis={self.axis}"

    def violation_mask(self, x: np.ndarray, xd: np.ndarray) -> np.ndarray:
        if self.axis >= x.ndim:
            raise ValueError(
                f"monotone safeguard axis {self.axis} out of range for "
                f"{x.ndim}-d data"
            )
        dx = np.diff(_f64(x), axis=self.axis)
        dxd = np.diff(_f64(xd), axis=self.axis)
        with np.errstate(invalid="ignore"):
            flipped = ((dx > 0) & (dxd < 0)) | ((dx < 0) & (dxd > 0))
        mask = np.zeros(x.shape, dtype=bool)
        lo = [slice(None)] * x.ndim
        hi = [slice(None)] * x.ndim
        lo[self.axis] = slice(None, -1)
        hi[self.axis] = slice(1, None)
        mask[tuple(lo)] |= flipped
        mask[tuple(hi)] |= flipped
        return mask


class RangeSafeguard(Safeguard):
    """``range[:LO,HI]`` — reconstructed values stay inside ``[LO, HI]``.

    The bare ``range`` form binds to the finite min/max of the data at
    compress time (via :meth:`resolve`); the serialized spec always carries
    concrete bounds so the auditor can recheck offline.  NaN reconstructions
    are not range violations — declare ``nonfinite`` to pin those.
    """

    kind = "range"

    def __init__(self, lo: float | None = None, hi: float | None = None) -> None:
        if (lo is None) != (hi is None):
            raise ValueError("range safeguard needs both bounds or neither")
        if lo is not None:
            lo, hi = float(lo), float(hi)
            if not lo <= hi:
                raise ValueError(f"range safeguard needs lo <= hi, got {lo!r}, {hi!r}")
        self.lo = lo
        self.hi = hi

    def params(self) -> str | None:
        if self.lo is None:
            return None
        return f"{self.lo!r},{self.hi!r}"

    def resolve(self, data: np.ndarray) -> "RangeSafeguard":
        if self.lo is not None:
            return self
        finite = data[np.isfinite(data)]
        if finite.size == 0:
            return RangeSafeguard(-np.inf, np.inf)
        return RangeSafeguard(float(finite.min()), float(finite.max()))

    def violation_mask(self, x: np.ndarray, xd: np.ndarray) -> np.ndarray:
        if self.lo is None:
            raise ValueError("range safeguard must be resolved against data first")
        with np.errstate(invalid="ignore"):
            return (xd < self.lo) | (xd > self.hi)


SAFEGUARD_KINDS: dict[str, type[Safeguard]] = {
    cls.kind: cls
    for cls in (
        AbsErrorSafeguard,
        RelErrorSafeguard,
        UlpSafeguard,
        SignSafeguard,
        ZeroSafeguard,
        NonFiniteSafeguard,
        MonotoneSafeguard,
        RangeSafeguard,
    )
}


def parse_safeguard(spec: str) -> Safeguard:
    """Parse one ``kind[:params]`` spec string into a :class:`Safeguard`."""
    text = spec.strip()
    kind, sep, params = text.partition(":")
    kind = kind.strip()
    cls = SAFEGUARD_KINDS.get(kind)
    if cls is None:
        known = ", ".join(sorted(SAFEGUARD_KINDS))
        raise ValueError(f"unknown safeguard kind {kind!r} (known: {known})")
    params = params.strip()
    try:
        if not sep or not params:
            return cls()
        if cls is AbsErrorSafeguard or cls is RelErrorSafeguard:
            return cls(float(params))
        if cls is UlpSafeguard:
            return cls(int(params))
        if cls is MonotoneSafeguard:
            key, _, axis = params.partition("=")
            if key.strip() != "axis":
                raise ValueError(f"expected axis=N, got {params!r}")
            return cls(int(axis))
        if cls is RangeSafeguard:
            lo, sep2, hi = params.partition(",")
            if not sep2:
                raise ValueError(f"expected LO,HI, got {params!r}")
            return cls(float(lo), float(hi))
        raise ValueError(f"safeguard {kind!r} takes no parameters, got {params!r}")
    except (TypeError, ValueError) as exc:
        raise ValueError(f"bad safeguard spec {spec!r}: {exc}") from None


def parse_safeguards(text: str) -> tuple[Safeguard, ...]:
    """Parse a ``;``-joined list of specs (the container serialization)."""
    return tuple(parse_safeguard(s) for s in text.split(";") if s.strip())
